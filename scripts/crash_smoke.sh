#!/usr/bin/env bash
# Crash-injection smoke of the durable control plane: start sdiqd with
# -state, attach two sdiqw workers, launch a remote sweep, SIGKILL the
# server the moment real progress has landed, restart it over the same
# state/cache directories at the same address, and require:
#   - the client (sdiq -remote, reconnecting with backoff) finishes the
#     campaign and its export is byte-identical to a local run;
#   - the restarted server recovered the campaign from its WAL
#     (sdiqd_campaigns_recovered_total >= 1);
#   - both workers re-registered instead of dying
#     (sdiqd_worker_reconnects_total >= 1);
#   - work finished before the kill came back as cache hits, never
#     duplicate simulations (sdiqd_job_cache_hits_total >= 1).
# The exports and their diff land in ${CRASH_ARTIFACTS:-$WORK/artifacts}
# so CI can upload the recovered-vs-local evidence.
# CI runs this on every push; it needs only bash, curl and go.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SDIQD_ADDR:-127.0.0.1:8474}"
WORK="$(mktemp -d)"
ART="${CRASH_ARTIFACTS:-$WORK/artifacts}"
mkdir -p "$ART"
trap 'kill -9 "$SRV_PID" "$SRV2_PID" "$W1_PID" "$W2_PID" "$CLIENT_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
SRV_PID=""; SRV2_PID=""; W1_PID=""; W2_PID=""; CLIENT_PID=""

echo "== build"
go build -o "$WORK/sdiqd" ./cmd/sdiqd
go build -o "$WORK/sdiqw" ./cmd/sdiqw
go build -o "$WORK/sdiq" ./cmd/sdiq

DFLAGS=(-addr "$ADDR" -cache "$WORK/cache" -state "$WORK/state" -lease-ttl 3s)

echo "== start sdiqd on $ADDR (durable state in $WORK/state)"
"$WORK/sdiqd" "${DFLAGS[@]}" >"$ART/sdiqd-1.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

echo "== start 2 sdiqw workers"
"$WORK/sdiqw" -server "http://$ADDR" -name crash-1 -scratch "$WORK/scratch1" -parallel 2 >"$ART/sdiqw1.log" 2>&1 &
W1_PID=$!
"$WORK/sdiqw" -server "http://$ADDR" -name crash-2 -scratch "$WORK/scratch2" -parallel 2 >"$ART/sdiqw2.log" 2>&1 &
W2_PID=$!
for _ in $(seq 1 50); do
    N=$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')
    [ "${N:-0}" = "2" ] && break
    sleep 0.2
done

SPEC=(-experiment sweep -sweep "iq.entries=16,32,48,64,80,96" -budget 60000 -seed 7 -sample on -format csv)

echo "== launch remote sweep in the background"
"$WORK/sdiq" -remote "http://$ADDR" "${SPEC[@]}" -export "$ART/remote.csv" >"$ART/client.log" 2>&1 &
CLIENT_PID=$!

echo "== wait for real progress, then SIGKILL sdiqd mid-campaign"
for _ in $(seq 1 150); do
    DONEJOBS=$(curl -fs "http://$ADDR/metrics" 2>/dev/null |
        awk '/^sdiqd_jobs_executed_total |^sdiqd_jobs_remote_total /{s+=$2} END{print s+0}')
    [ "${DONEJOBS:-0}" -ge 1 ] && break
    sleep 0.2
done
[ "${DONEJOBS:-0}" -ge 1 ] || { echo "no job ever finished"; cat "$ART/sdiqd-1.log"; exit 1; }
kill -9 "$SRV_PID"
echo "   killed after $DONEJOBS finished jobs"

echo "== restart sdiqd over the same state, cache and address"
"$WORK/sdiqd" "${DFLAGS[@]}" >"$ART/sdiqd-2.log" 2>&1 &
SRV2_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

echo "== client must ride across the restart and finish"
if ! wait "$CLIENT_PID"; then
    echo "client failed across the restart"; cat "$ART/client.log"; exit 1
fi

echo "== same sweep locally"
"$WORK/sdiq" "${SPEC[@]}" -export "$ART/local.csv" >/dev/null

echo "== recovered export must be byte-identical to the local run"
if ! diff "$ART/remote.csv" "$ART/local.csv" >"$ART/export.diff"; then
    echo "exports differ"; cat "$ART/export.diff"; exit 1
fi

echo "== durability metrics"
curl -fs "http://$ADDR/metrics" |
    grep -E '^sdiqd_(campaigns_recovered_total|worker_reconnects_total|job_cache_hits_total|jobs_executed_total|jobs_remote_total|wal_appends_total|jobs_failed_total) ' |
    tee "$ART/metrics.txt"
grep -q '^sdiqd_campaigns_recovered_total [1-9]' "$ART/metrics.txt" || { echo "campaign not recovered from WAL"; exit 1; }
grep -q '^sdiqd_worker_reconnects_total [1-9]' "$ART/metrics.txt" || { echo "no worker re-registered"; exit 1; }
grep -q '^sdiqd_job_cache_hits_total [1-9]' "$ART/metrics.txt" || { echo "finished work re-simulated instead of cache-hit"; exit 1; }
grep -q '^sdiqd_jobs_failed_total 0' "$ART/metrics.txt" || { echo "jobs failed"; exit 1; }

echo "== shut everything down"
kill -TERM "$W1_PID" "$W2_PID" "$SRV2_PID" 2>/dev/null || true
for _ in $(seq 1 50); do
    kill -0 "$SRV2_PID" 2>/dev/null || break
    sleep 0.2
done

echo "crash smoke OK"
