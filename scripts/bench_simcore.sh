#!/bin/sh
# bench_simcore.sh — run the simulator-core throughput benchmarks and emit
# BENCH_simcore.json, the machine-readable trajectory record tracked from
# PR 2 on. CI runs this and uploads the JSON as an artifact; run it locally
# before/after perf work to quantify a change:
#
#	./scripts/bench_simcore.sh            # writes ./BENCH_simcore.json
#	./scripts/bench_simcore.sh out.json   # custom output path
#	BENCHTIME=30x ./scripts/bench_simcore.sh
#
# The script fails on build/bench errors only; it never fails on a
# regression (trajectory tracking first — compare against the committed
# baseline by hand or in review).
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_simcore.json}"
benchtime="${BENCHTIME:-10x}"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# No pipe: a panicking benchmark must fail the script, and POSIX sh has
# no pipefail to catch it through tee.
if ! go test -bench 'Benchmark((Simulator|Emulator)Throughput|Emulator(DecodeCache|Uncached)|SampledCampaign|Sweep(No)?Ckpt|LockstepSweep)$' \
	-benchtime "$benchtime" -run '^$' . > "$tmp" 2>&1; then
	cat "$tmp" >&2
	echo "bench_simcore: go test -bench failed" >&2
	exit 1
fi
cat "$tmp"

go_version=$(go version | awk '{print $3}')
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v go_version="$go_version" -v commit="$commit" -v stamp="$stamp" '
/^Benchmark((Simulator|Emulator)Throughput|Emulator(DecodeCache|Uncached)|SampledCampaign|Sweep(No)?Ckpt|LockstepSweep)/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	ns[name] = $3
	# MB/s with B = instructions, so MB/s reads as M inst/s.
	ips[name] = $5 * 1e6
	order[n++] = name
}
END {
	if (n == 0) { print "bench_simcore: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	printf "{\n"
	printf "  \"schema\": \"bench_simcore/v1\",\n"
	printf "  \"generated\": \"%s\",\n", stamp
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"go\": \"%s\",\n", go_version
	# checkpoint_speedup is the acceptance ratio of the checkpoint store:
	# the same 8-cell sampled IQ sweep, warm-from-scratch over resumed.
	if (ns["SweepNoCkpt"] > 0 && ns["SweepCkpt"] > 0)
		printf "  \"checkpoint_speedup\": %.2f,\n", ns["SweepNoCkpt"] / ns["SweepCkpt"]
	# lockstep_speedup: the same sweep per-cell over lockstep-batched
	# (one emulator stream feeding all 8 cores). Acceptance gate: >= 2x.
	if (ns["SweepNoCkpt"] > 0 && ns["LockstepSweep"] > 0)
		printf "  \"lockstep_speedup\": %.2f,\n", ns["SweepNoCkpt"] / ns["LockstepSweep"]
	# decode_cache_speedup: the emulator reference interpreter over the
	# decoded-dispatch path (the default since the decode cache landed).
	if (ns["EmulatorUncached"] > 0 && ns["EmulatorDecodeCache"] > 0)
		printf "  \"decode_cache_speedup\": %.2f,\n", ns["EmulatorUncached"] / ns["EmulatorDecodeCache"]
	printf "  \"benchmarks\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_per_op\": %d, \"inst_per_sec\": %d}%s\n", \
			name, ns[name], ips[name], (i < n-1 ? "," : "")
	}
	printf "  }\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
