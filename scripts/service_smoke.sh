#!/usr/bin/env bash
# End-to-end smoke of the campaign service: start sdiqd, run a tiny
# sampled campaign against it with sdiq -remote, and require the
# client-side AND server-side CSV exports to be byte-identical to the
# same spec run locally. Also exercises /metrics and graceful SIGTERM
# drain, then re-runs the service with -auth: unauthenticated probes
# must be refused with 401 and the authenticated sweep must still be
# byte-identical. CI runs this on every push; it needs only bash, curl
# and go.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SDIQD_ADDR:-127.0.0.1:8471}"
WORK="$(mktemp -d)"
SRV_PID=""
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/sdiqd" ./cmd/sdiqd
go build -o "$WORK/sdiq" ./cmd/sdiq

echo "== start sdiqd on $ADDR"
"$WORK/sdiqd" -addr "$ADDR" -cache "$WORK/cache" -quota 8 >"$WORK/sdiqd.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

SPEC=(-experiment sweep -sweep "iq.entries=32,80" -budget 60000 -seed 7 -sample on -format csv)

echo "== remote campaign via sdiq -remote"
"$WORK/sdiq" -remote "http://$ADDR" "${SPEC[@]}" -export "$WORK/remote.csv" >/dev/null

echo "== same campaign locally"
"$WORK/sdiq" "${SPEC[@]}" -export "$WORK/local.csv" >/dev/null

echo "== compare client-side export"
diff "$WORK/remote.csv" "$WORK/local.csv"

echo "== compare server-side export"
ID=$(curl -fs "http://$ADDR/v1/campaigns" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(c[0-9]*\)"/\1/')
[ -n "$ID" ] || { echo "no campaign id found"; exit 1; }
curl -fs "http://$ADDR/v1/campaigns/$ID/export?format=csv" >"$WORK/server.csv"
diff "$WORK/server.csv" "$WORK/local.csv"

echo "== metrics"
curl -fs "http://$ADDR/metrics" | grep -E '^sdiqd_(jobs_executed_total|job_cache_hits_total|job_dedup_hits_total|insts_per_second) ' | tee "$WORK/metrics.txt"
grep -q '^sdiqd_jobs_executed_total [1-9]' "$WORK/metrics.txt"

echo "== graceful drain"
kill -TERM "$SRV_PID"
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "sdiqd ignored SIGTERM"; exit 1
fi
grep -q "drained" "$WORK/sdiqd.log"

echo "== restart sdiqd with -auth"
TOKEN="smoke-tenant-secret"
cat >"$WORK/tokens.json" <<EOF
{"tokens": [{"token": "$TOKEN", "principal": "smoke", "role": "tenant"}]}
EOF
"$WORK/sdiqd" -addr "$ADDR" -cache "$WORK/cache" -quota 8 -auth "$WORK/tokens.json" >"$WORK/sdiqd-auth.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

echo "== unauthenticated and bad-token probes must be 401"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/campaigns")
[ "$CODE" = "401" ] || { echo "no-token probe got $CODE, want 401"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer wrong-token" "http://$ADDR/v1/campaigns")
[ "$CODE" = "401" ] || { echo "bad-token probe got $CODE, want 401"; exit 1; }

echo "== authenticated campaign must still be byte-identical"
"$WORK/sdiq" -remote "http://$ADDR" -token "$TOKEN" "${SPEC[@]}" -export "$WORK/authed.csv" >/dev/null
diff "$WORK/authed.csv" "$WORK/local.csv"
# Snapshot metrics to a file before grepping: grep -q closing the pipe
# early would fail curl (and the script, under pipefail) spuriously.
curl -fs "http://$ADDR/metrics" >"$WORK/metrics-auth.txt"
grep -q '^sdiqd_auth_failures_total [1-9]' "$WORK/metrics-auth.txt" || {
    echo "refused probes were not counted"; exit 1
}

kill -TERM "$SRV_PID"

echo "service smoke OK"
