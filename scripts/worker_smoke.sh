#!/usr/bin/env bash
# End-to-end smoke of the distributed worker pool: start sdiqd, attach
# two sdiqw workers, run a sweep against the server with sdiq -remote,
# and require the export to be byte-identical to the same spec run
# locally — with at least one job actually executed by a remote worker.
# Then drain both workers (SIGTERM: finish, upload, deregister) and the
# server. The server and both workers run with -ckpt, so the sampled
# sweep also smokes checkpoint sharing: warm state generated on one
# worker must be shipped through the server and reused, never recomputed.
# A second phase re-runs the whole fleet with -auth: the worker carries
# its bearer token, bad-token probes are refused with 401, and the
# authed remote sweep is still byte-identical to the local run. CI runs
# this on every push; it needs only bash, curl and go.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SDIQD_ADDR:-127.0.0.1:8473}"
WORK="$(mktemp -d)"
SRV_PID=""; W1_PID=""; W2_PID=""
trap 'kill "$SRV_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/sdiqd" ./cmd/sdiqd
go build -o "$WORK/sdiqw" ./cmd/sdiqw
go build -o "$WORK/sdiq" ./cmd/sdiq

echo "== start sdiqd on $ADDR"
"$WORK/sdiqd" -addr "$ADDR" -cache "$WORK/cache" -ckpt "$WORK/ckpt" -lease-ttl 5s >"$WORK/sdiqd.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

echo "== start 2 sdiqw workers"
"$WORK/sdiqw" -server "http://$ADDR" -name smoke-1 -scratch "$WORK/scratch1" -ckpt "$WORK/ckpt1" -parallel 2 >"$WORK/sdiqw1.log" 2>&1 &
W1_PID=$!
"$WORK/sdiqw" -server "http://$ADDR" -name smoke-2 -scratch "$WORK/scratch2" -ckpt "$WORK/ckpt2" -parallel 2 >"$WORK/sdiqw2.log" 2>&1 &
W2_PID=$!
for _ in $(seq 1 50); do
    N=$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')
    [ "${N:-0}" = "2" ] && break
    sleep 0.2
done
[ "$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')" = "2" ] || {
    echo "workers never connected"; cat "$WORK"/sdiqw*.log; exit 1
}

SPEC=(-experiment sweep -sweep "iq.entries=32,80" -budget 60000 -seed 7 -sample on -format csv)

echo "== remote sweep via sdiq -remote (jobs leased to the fleet)"
"$WORK/sdiq" -remote "http://$ADDR" "${SPEC[@]}" -export "$WORK/remote.csv" >/dev/null

echo "== same sweep locally"
"$WORK/sdiq" "${SPEC[@]}" -export "$WORK/local.csv" >/dev/null

echo "== exports must be byte-identical"
diff "$WORK/remote.csv" "$WORK/local.csv"

echo "== worker/lease metrics"
curl -fs "http://$ADDR/metrics" | grep -E '^sdiqd_(workers_connected|jobs_remote_total|jobs_local_total|leases_granted_total|leases_expired_total|jobs_failed_total) ' | tee "$WORK/metrics.txt"
grep -q '^sdiqd_jobs_remote_total [1-9]' "$WORK/metrics.txt" || { echo "no job ran remotely"; exit 1; }
grep -q '^sdiqd_leases_expired_total 0' "$WORK/metrics.txt" || { echo "leases expired under a healthy fleet"; exit 1; }
grep -q '^sdiqd_jobs_failed_total 0' "$WORK/metrics.txt" || { echo "jobs failed"; exit 1; }

echo "== checkpoint reuse (warm state shipped through the server, not recomputed)"
curl -fs "http://$ADDR/metrics" | grep -E '^sdiqd_ckpt_(artifacts|generated_total|hits_total|bytes_shipped_total) ' | tee "$WORK/ckpt.txt"
grep -q '^sdiqd_ckpt_artifacts [1-9]' "$WORK/ckpt.txt" || { echo "no artifact published on the server"; exit 1; }
grep -q '^sdiqd_ckpt_bytes_shipped_total [1-9]' "$WORK/ckpt.txt" || { echo "no artifact crossed the wire"; exit 1; }

echo "== graceful worker drain (finish, upload, deregister)"
kill -TERM "$W1_PID" "$W2_PID"
for _ in $(seq 1 50); do
    kill -0 "$W1_PID" 2>/dev/null || kill -0 "$W2_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$W1_PID" 2>/dev/null || kill -0 "$W2_PID" 2>/dev/null; then
    echo "a worker ignored SIGTERM"; exit 1
fi
grep -q "deregistered" "$WORK/sdiqw1.log"
grep -q "deregistered" "$WORK/sdiqw2.log"
[ "$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')" = "0" ] || {
    echo "server still counts drained workers as connected"; exit 1
}

echo "== server drain"
kill -TERM "$SRV_PID"
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "sdiqd ignored SIGTERM"; exit 1
fi
grep -q "drained" "$WORK/sdiqd.log"

echo "== authed fleet: restart server with -auth, worker presents its token"
TENANT_TOKEN="smoke-tenant-secret"
WORKER_TOKEN="smoke-worker-secret"
cat >"$WORK/tokens.json" <<EOF
{"tokens": [
  {"token": "$TENANT_TOKEN", "principal": "smoke", "role": "tenant"},
  {"token": "$WORKER_TOKEN", "principal": "fleet", "role": "worker"}
]}
EOF
"$WORK/sdiqd" -addr "$ADDR" -cache "$WORK/cache-auth" -ckpt "$WORK/ckpt-auth" -lease-ttl 5s \
    -auth "$WORK/tokens.json" >"$WORK/sdiqd-auth.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null

echo "== bad-token probes must be 401 (register and submit)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H "Authorization: Bearer wrong-token" "http://$ADDR/v1/workers")
[ "$CODE" = "401" ] || { echo "bad-token register probe got $CODE, want 401"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/campaigns")
[ "$CODE" = "401" ] || { echo "no-token submit probe got $CODE, want 401"; exit 1; }

echo "== authed worker connects, tenant-token probe of the worker API is 403"
SDIQ_TOKEN="$WORKER_TOKEN" "$WORK/sdiqw" -server "http://$ADDR" -name smoke-auth \
    -scratch "$WORK/scratch-auth" -ckpt "$WORK/ckptw-auth" -parallel 2 >"$WORK/sdiqw-auth.log" 2>&1 &
W1_PID=$!
for _ in $(seq 1 50); do
    N=$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')
    [ "${N:-0}" = "1" ] && break
    sleep 0.2
done
[ "$(curl -fs "http://$ADDR/metrics" | awk '/^sdiqd_workers_connected /{print $2}')" = "1" ] || {
    echo "authed worker never connected"; cat "$WORK/sdiqw-auth.log"; exit 1
}
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H "Authorization: Bearer $TENANT_TOKEN" "http://$ADDR/v1/workers")
[ "$CODE" = "403" ] || { echo "tenant-token register probe got $CODE, want 403"; exit 1; }

echo "== authed remote sweep must be byte-identical, with remote execution"
"$WORK/sdiq" -remote "http://$ADDR" -token "$TENANT_TOKEN" "${SPEC[@]}" -export "$WORK/authed.csv" >/dev/null
diff "$WORK/authed.csv" "$WORK/local.csv"
# Snapshot metrics to a file before grepping: grep -q closing the pipe
# early would fail curl (and the script, under pipefail) spuriously.
curl -fs "http://$ADDR/metrics" >"$WORK/metrics-auth.txt"
grep -q '^sdiqd_jobs_remote_total [1-9]' "$WORK/metrics-auth.txt" || {
    echo "no job ran remotely under auth"; cat "$WORK/sdiqw-auth.log"; exit 1
}

kill -TERM "$W1_PID" "$SRV_PID"

echo "worker smoke OK"
