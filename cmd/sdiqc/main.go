// Command sdiqc is the compiler driver: it reads a program in sdasm form,
// runs the paper's issue-queue analysis, and writes the program back with
// hints installed — special NOOPs (-mode noop) or instruction tags
// (-mode tag). With -report it prints the per-procedure analysis instead.
//
// Usage:
//
//	sdiqc [-mode noop|tag] [-improved] [-report] [-o out.sdasm] in.sdasm
//	sdiqgen -bench gzip | sdiqc -mode tag -o gzip_tagged.sdasm -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/prog"
)

func main() {
	mode := flag.String("mode", "noop", "hint encoding: noop (inserted NOOPs) or tag (Extension)")
	improved := flag.Bool("improved", false, "enable inter-procedural FU contention analysis")
	report := flag.Bool("report", false, "print the analysis report instead of instrumenting")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdiqc [flags] in.sdasm   (use - for stdin)")
		os.Exit(2)
	}
	in, err := openInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	p, err := prog.ParseAsm(in)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}
	in.Close()

	opt := core.Options{Improved: *improved}
	switch *mode {
	case "noop":
		opt.Mode = core.ModeNOOP
	case "tag":
		opt.Mode = core.ModeTag
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	if *report {
		rep, err := core.AnalyzeOnly(p, opt)
		if err != nil {
			fail(err)
		}
		printReport(os.Stdout, rep)
		return
	}

	rep, err := core.Instrument(p, opt)
	if err != nil {
		fail(err)
	}
	w, err := openOutput(*out)
	if err != nil {
		fail(err)
	}
	if err := prog.WriteAsm(w, p); err != nil {
		fail(err)
	}
	if c, ok := w.(io.Closer); ok && w != os.Stdout {
		c.Close()
	}
	fmt.Fprintf(os.Stderr, "sdiqc: %d hint NOOPs inserted, %d tags applied\n",
		rep.HintsInserted, rep.TagsApplied)
}

func printReport(w io.Writer, rep *core.Report) {
	for _, pr := range rep.Procs {
		fmt.Fprintf(w, "proc %s\n", pr.Proc)
		for bi, n := range pr.BlockNeeds {
			fmt.Fprintf(w, "  block %-3d needs %d entries\n", bi, n)
		}
		for _, l := range pr.LoopNeeds {
			fmt.Fprintf(w, "  loop@block%-3d needs %d entries (II=%d)\n", l.Header, l.Need, l.II)
		}
	}
}

func openInput(name string) (io.ReadCloser, error) {
	if name == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(name)
}

func openOutput(name string) (io.Writer, error) {
	if name == "-" {
		return os.Stdout, nil
	}
	return os.Create(name)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sdiqc: %v\n", err)
	os.Exit(1)
}
