// Command sdiqgen emits one of the synthetic SPECint-like benchmark
// programs in sdasm form, for inspection or for feeding to sdiqc.
//
// Usage:
//
//	sdiqgen -bench gzip [-seed 42] [-o gzip.sdasm]
//	sdiqgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/prog"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "-", "output file (- = stdout)")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		for _, b := range workload.Suite() {
			fmt.Printf("%-8s %s\n", b.Name, b.Description)
		}
		return
	}
	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "sdiqgen: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	p := b.Build(*seed)
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdiqgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := prog.WriteAsm(w, p); err != nil {
		fmt.Fprintf(os.Stderr, "sdiqgen: %v\n", err)
		os.Exit(1)
	}
}
