// Command sdiqsim runs one benchmark under one technique and prints a
// detailed machine report: IPC, stall breakdown, branch and cache rates,
// and occupancy histograms for the issue queue and register file — the
// inspection companion to the sdiq experiment driver.
//
// Usage:
//
//	sdiqsim -bench gzip [-tech baseline|noop|tag|improved|abella]
//	        [-budget N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// histProbe accumulates per-cycle occupancy histograms.
type histProbe struct {
	iq, rf, rob *stats.Histogram
}

func (h *histProbe) Sample(cycle int64, s sim.ProbeSample) {
	h.iq.Add(float64(s.IQCount))
	h.rf.Add(float64(s.IntRFLive))
	h.rob.Add(float64(s.ROBCount))
}

func main() {
	bench := flag.String("bench", "gzip", "benchmark name")
	tech := flag.String("tech", "baseline", "baseline, noop, tag, improved or abella")
	budget := flag.Int64("budget", 200_000, "committed instructions")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "sdiqsim: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	p := b.Build(*seed)
	cfg := sim.DefaultConfig()
	switch *tech {
	case "baseline":
	case "noop":
		mustInstrument(p, core.Options{Mode: core.ModeNOOP})
		cfg.Control = sim.ControlHints
	case "tag":
		mustInstrument(p, core.Options{Mode: core.ModeTag})
		cfg.Control = sim.ControlHints
	case "improved":
		mustInstrument(p, core.Options{Mode: core.ModeTag, Improved: true})
		cfg.Control = sim.ControlHints
	case "abella":
		cfg.Control = sim.ControlAdaptive
	default:
		fmt.Fprintf(os.Stderr, "sdiqsim: unknown technique %q\n", *tech)
		os.Exit(2)
	}

	probe := &histProbe{
		iq:  stats.NewHistogram(0, float64(cfg.IQ.Entries), 10),
		rf:  stats.NewHistogram(0, float64(cfg.IntRF.Regs), 14),
		rob: stats.NewHistogram(0, float64(cfg.ROBSize), 8),
	}
	cfg.Probe = probe

	st, err := sim.RunProgram(cfg, p, *budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdiqsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s under %s: %d instructions in %d cycles (IPC %.3f)\n\n",
		*bench, *tech, st.CommittedReal, st.Cycles, st.IPC())
	fmt.Printf("front end:  %.2f%% cond mispredict, %.2f%% L1I miss, %d BTB bubbles\n",
		100*st.Bpred.MispredictRate(), 100*st.IL1.MissRate(), st.BTBBubbles)
	fmt.Printf("memory:     %.2f%% L1D miss, %.2f%% L2 miss\n",
		100*st.DL1.MissRate(), 100*st.L2.MissRate())
	fmt.Printf("hints:      %d applied, %d NOOP slots consumed\n",
		st.HintsApplied, st.CommittedHints)
	fmt.Printf("dispatch stalls (cycles): iqFull=%d hint=%d sizeLimit=%d rob=%d physReg=%d lsq=%d\n\n",
		st.StallIQFull, st.StallHintLimit, st.StallSizeLimit,
		st.StallROBFull, st.StallNoPhysReg, st.StallLSQFull)
	fmt.Printf("issue queue occupancy (mean %.1f of %d; %.1f banks on):\n%s\n",
		st.AvgIQOccupancy(), cfg.IQ.Entries, st.AvgIQBanksOn(), probe.iq)
	fmt.Printf("live integer registers (mean %.1f of %d):\n%s\n",
		st.AvgIntRFLive(), cfg.IntRF.Regs, probe.rf)
	fmt.Printf("reorder buffer occupancy:\n%s", probe.rob)
}

func mustInstrument(p *prog.Program, opt core.Options) {
	if _, err := core.Instrument(p, opt); err != nil {
		fmt.Fprintf(os.Stderr, "sdiqsim: %v\n", err)
		os.Exit(1)
	}
}
