// Command sdiqsim runs one benchmark under one technique and prints a
// detailed machine report: IPC, stall breakdown, branch and cache rates,
// and occupancy histograms for the issue queue and register file — the
// inspection companion to the sdiq experiment driver.
//
// The run is one campaign job (internal/campaign) with a per-cycle probe
// attached, so the cell inspected here is configured exactly as the same
// cell of a full sdiq campaign.
//
// Usage:
//
//	sdiqsim -bench gzip [-tech baseline|noop|tag|improved|abella]
//	        [-budget N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/stats"
)

// histProbe accumulates per-cycle occupancy histograms.
type histProbe struct {
	iq, rf, rob *stats.Histogram
}

func (h *histProbe) Sample(cycle int64, s sim.ProbeSample) {
	h.iq.Add(float64(s.IQCount))
	h.rf.Add(float64(s.IntRFLive))
	h.rob.Add(float64(s.ROBCount))
}

func main() {
	bench := flag.String("bench", "gzip", "benchmark name")
	tech := flag.String("tech", "baseline", "baseline, noop, tag, improved or abella")
	budget := flag.Int64("budget", 200_000, "committed instructions")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	technique, err := campaign.ParseTechnique(*tech)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdiqsim: %v\n", err)
		os.Exit(2)
	}
	spec := campaign.DefaultSpec(*budget)
	spec.Name = "inspect"
	spec.Benchmarks = []string{*bench}
	spec.Techniques = []campaign.Technique{technique}
	spec.Seed = *seed
	jobs, err := spec.Jobs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdiqsim: %v\n", err)
		os.Exit(1)
	}
	job := jobs[0]

	probe := &histProbe{
		iq:  stats.NewHistogram(0, float64(job.Config.IQ.Entries), 10),
		rf:  stats.NewHistogram(0, float64(job.Config.IntRF.Regs), 14),
		rob: stats.NewHistogram(0, float64(job.Config.ROBSize), 8),
	}
	job.Config.Probe = probe

	res, err := campaign.Execute(context.Background(), &job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdiqsim: %v\n", err)
		os.Exit(1)
	}
	st := res.Stats

	fmt.Printf("%s under %s: %d instructions in %d cycles (IPC %.3f)\n\n",
		*bench, technique, st.CommittedReal, st.Cycles, st.IPC())
	fmt.Printf("compile:    %d static hints in %.1fms (generation %.1fms)\n",
		res.Hints, res.CompileMS, res.GenMS)
	fmt.Printf("front end:  %.2f%% cond mispredict, %.2f%% L1I miss, %d BTB bubbles\n",
		100*st.Bpred.MispredictRate(), 100*st.IL1.MissRate(), st.BTBBubbles)
	fmt.Printf("memory:     %.2f%% L1D miss, %.2f%% L2 miss\n",
		100*st.DL1.MissRate(), 100*st.L2.MissRate())
	fmt.Printf("hints:      %d applied, %d NOOP slots consumed\n",
		st.HintsApplied, st.CommittedHints)
	fmt.Printf("dispatch stalls (cycles): iqFull=%d hint=%d sizeLimit=%d rob=%d physReg=%d lsq=%d\n\n",
		st.StallIQFull, st.StallHintLimit, st.StallSizeLimit,
		st.StallROBFull, st.StallNoPhysReg, st.StallLSQFull)
	fmt.Printf("issue queue occupancy (mean %.1f of %d; %.1f banks on):\n%s\n",
		st.AvgIQOccupancy(), job.Config.IQ.Entries, st.AvgIQBanksOn(), probe.iq)
	fmt.Printf("live integer registers (mean %.1f of %d):\n%s\n",
		st.AvgIntRFLive(), job.Config.IntRF.Regs, probe.rf)
	fmt.Printf("reorder buffer occupancy:\n%s", probe.rob)
}
