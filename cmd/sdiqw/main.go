// Command sdiqw is the remote simulation worker: it registers with a
// sdiqd campaign server, pulls jobs over HTTP leases, runs them with
// the same executor the server and CLI use (so results are
// byte-identical wherever a job lands), heartbeats while they run, and
// uploads the results. Point any number of sdiqw processes — on any
// machines — at one sdiqd to scale a campaign fleet horizontally.
//
// Usage:
//
//	sdiqw -server http://host:8080 [-name NAME] [-scratch DIR]
//	      [-scratch-max-bytes N] [-ckpt DIR] [-parallel N] [-token TOKEN]
//
// -scratch is the worker's local result cache: a job this worker has
// run before is answered from disk (-scratch-max-bytes bounds it,
// evicting least recently used results). -ckpt is the worker's local
// checkpoint artifact store: sampled jobs download the sweep's shared
// warm state from the server (or generate and push it back) instead of
// re-warming per cell. -parallel is how many jobs run concurrently
// (default: GOMAXPROCS). -token is the worker-role bearer credential,
// required against a server running with -auth (also read from
// SDIQ_TOKEN so the secret stays out of process listings).
//
// The worker survives coordinator restarts: registration and lease
// polls retry with jittered exponential backoff, and when the server
// comes back with no memory of this worker it simply re-registers —
// scratch-cached results make any re-leased jobs cheap.
//
// On SIGTERM/SIGINT the worker drains: it stops taking leases, finishes
// and uploads in-flight jobs, then deregisters. A second signal aborts
// immediately — in-flight jobs are abandoned and the server's lease TTL
// re-queues them on the rest of the fleet.
//
//	sdiqd -addr :8080 -cache /var/cache/sdiq &
//	sdiqw -server http://localhost:8080 -scratch /tmp/sdiqw &
//	sdiq -remote http://localhost:8080 -experiment fig8
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/worker"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "sdiqd base URL")
	name := flag.String("name", "", "worker name (default: hostname)")
	scratch := flag.String("scratch", "", "local result cache directory (recommended)")
	scratchMax := flag.Int64("scratch-max-bytes", 0, "scratch cache size bound, LRU-evicted (0 = unbounded)")
	ckptDir := flag.String("ckpt", "", "local checkpoint artifact store directory")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent jobs")
	token := flag.String("token", os.Getenv("SDIQ_TOKEN"), "worker bearer token (default $SDIQ_TOKEN; required when the server runs -auth)")
	flag.Parse()

	log.SetPrefix("sdiqw: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	w := &worker.Worker{
		Server:          *server,
		Name:            *name,
		Scratch:         *scratch,
		ScratchMaxBytes: *scratchMax,
		Ckpt:            *ckptDir,
		Concurrency:     *parallel,
		Token:           *token,
		Logf:            log.Printf,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("draining: finishing in-flight jobs (signal again to abort)")
		w.Shutdown()
		<-sigs
		log.Printf("aborting")
		cancel()
	}()

	if err := w.Run(ctx); err != nil && err != context.Canceled {
		log.Fatalf("worker: %v", err)
	}
	log.Printf("drained, bye")
}
