// Command sdiqd is the long-running campaign service: it accepts
// campaign specifications over HTTP from any number of sdiq clients,
// schedules their jobs on one shared bounded executor over one on-disk
// result cache, deduplicates identical in-flight jobs fleet-wide, and
// streams progress and exports back. See internal/serve for the API.
//
// Usage:
//
//	sdiqd [-addr :8080] [-cache DIR] [-ckpt DIR] [-state DIR] [-parallel N]
//	      [-quota N] [-drain 30s] [-lease-ttl 15s] [-job-retries 2]
//	      [-registry-ttl 0] [-cache-max-bytes 0] [-gc-interval 1m]
//	      [-auth tokens.json] [-tenant-isolation]
//
// -parallel bounds concurrent in-process simulations across all
// campaigns (0 = GOMAXPROCS); -quota caps active campaigns per client
// (0 = unlimited). On SIGTERM/SIGINT the server drains: new submissions
// are refused with 503, running campaigns get up to -drain to finish,
// then are cancelled at job granularity.
//
// Remote workers (sdiqw) may register at any time; cache-missed jobs
// are then offered to the fleet over leases. -lease-ttl is how long a
// worker may go silent before its job is re-queued; -job-retries bounds
// re-leases before a job falls back to local execution.
//
// -ckpt enables the checkpoint artifact store: sampled sweep cells that
// share a warming identity reuse one functional-warming pass instead of
// each recomputing it, locally and across the fleet (workers download
// artifacts from /v1/checkpoints and push ones they generate).
// DELETE /v1/campaigns/{id} garbage-collects artifacts no remaining
// campaign references.
//
// -state makes the control plane durable: campaign submissions and
// every job-state transition are written (fsync'd) to a per-campaign
// write-ahead log with periodic snapshot compaction. After a crash or
// restart, sdiqd recovers every campaign, re-runs unfinished ones —
// already-finished jobs come back as result-cache hits, never duplicate
// simulations (pair -state with -cache) — and resumes serving status,
// events and exports to reconnecting clients and workers.
//
// -registry-ttl evicts finished campaigns (memory, durable state and
// orphaned checkpoint artifacts) that long after completion;
// -cache-max-bytes bounds the result cache, evicting least recently
// used entries; -gc-interval is how often both bounds are enforced.
//
// -auth turns authentication on: every /v1/* request must present a
// bearer token from the given token file (JSON mapping tokens to
// principals with role "tenant" or "worker" — see internal/auth), and
// client identity comes from the token's principal, never a header.
// SIGHUP re-reads the file, so tokens rotate without a restart (a
// broken file keeps the previous set in force). -tenant-isolation
// additionally namespaces the result cache, in-flight dedup and
// checkpoint store per client, so tenants never share artifacts and
// -cache-max-bytes bounds each tenant separately.
//
//	sdiqd -addr :8080 -cache /var/cache/sdiq &
//	sdiqw -server http://localhost:8080 -scratch /tmp/sdiqw &
//	sdiq -remote http://localhost:8080 -experiment fig8
//	curl -s localhost:8080/metrics | grep sdiqd_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "shared on-disk result cache directory (strongly recommended)")
	ckptDir := flag.String("ckpt", "", "checkpoint artifact store directory (amortizes sampled-sweep warming)")
	stateDir := flag.String("state", "", "durable control-plane state directory (campaigns survive restarts)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations fleet-wide (0 = GOMAXPROCS)")
	quota := flag.Int("quota", 0, "max active campaigns per client (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "grace period for running campaigns on shutdown")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "worker lease lifetime between heartbeats")
	jobRetries := flag.Int("job-retries", 2, "re-lease attempts after a failed lease before local fallback (negative = none)")
	registryTTL := flag.Duration("registry-ttl", 0, "evict finished campaigns this long after completion (0 = keep until DELETE)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "result cache size bound, LRU-evicted (0 = unbounded)")
	gcInterval := flag.Duration("gc-interval", 0, "how often registry/cache bounds are enforced (0 = 1m)")
	authFile := flag.String("auth", "", "bearer token file (JSON); enables authentication on every /v1/* endpoint")
	tenantIsolation := flag.Bool("tenant-isolation", false, "namespace result cache and checkpoint store per client")
	flag.Parse()

	log.SetPrefix("sdiqd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var authenticator *auth.Authenticator
	if *authFile != "" {
		var err error
		if authenticator, err = auth.LoadFile(*authFile); err != nil {
			// Unlike the optional stores, a broken token file must not
			// degrade to an open server.
			log.Fatalf("auth: %v", err)
		}
		log.Printf("authentication on: %d token(s) from %s (SIGHUP reloads)", authenticator.Len(), *authFile)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := authenticator.Reload(); err != nil {
					log.Printf("auth reload failed, previous tokens still in force: %v", err)
				} else {
					log.Printf("auth reloaded: %d token(s)", authenticator.Len())
				}
			}
		}()
	}

	s := serve.New(serve.Config{
		CacheDir:        *cacheDir,
		CkptDir:         *ckptDir,
		StateDir:        *stateDir,
		Workers:         *parallel,
		QuotaPerClient:  *quota,
		LeaseTTL:        *leaseTTL,
		JobRetries:      *jobRetries,
		RegistryTTL:     *registryTTL,
		CacheMaxBytes:   *cacheMaxBytes,
		GCInterval:      *gcInterval,
		Auth:            authenticator,
		TenantIsolation: *tenantIsolation,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache=%q, parallel=%d, quota=%d)",
			*addr, *cacheDir, *parallel, *quota)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills us the default way

	log.Printf("draining: refusing new campaigns, waiting up to %s for running ones", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain timed out, campaigns cancelled: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "sdiqd: drained, bye")
}
