// First end-to-end tests for the CLI: build the real sdiq binary and
// pin its CSV outputs byte-for-byte against committed goldens. The
// goldens are the public face of the reproduction — if a refactor
// shifts a single digit of a figure export, these fail.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/sdiq -run TestGolden -update
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current binary")

// sdiqBin is the binary under test, built once by TestMain.
var sdiqBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "sdiq-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	sdiqBin = filepath.Join(dir, "sdiq")
	out, err := exec.Command("go", "build", "-o", sdiqBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building sdiq: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// runSdiq executes the binary and returns stdout, failing the test on a
// non-zero exit.
func runSdiq(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(sdiqBin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sdiq %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

// checkGolden compares got against testdata/name, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden.\n--- got ---\n%s--- want ---\n%s"+
			"(intentional change? regenerate with: go test ./cmd/sdiq -run TestGolden -update)",
			name, got, want)
	}
}

// TestGoldenFig8CSV pins the headline power-savings figure (figure 8)
// at a small budget: full suite, all techniques, CSV format.
func TestGoldenFig8CSV(t *testing.T) {
	got := runSdiq(t, "-experiment", "fig8", "-format", "csv", "-budget", "20000", "-seed", "42")
	checkGolden(t, "fig8_budget20k.csv", got)
}

// TestGoldenSweepExportCSV pins a two-point IQ-size sweep through the
// campaign CSV exporter (-export), the byte format the campaign
// service must reproduce exactly.
func TestGoldenSweepExportCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	runSdiq(t, "-experiment", "sweep", "-sweep", "iq.entries=16,80",
		"-budget", "8000", "-seed", "42", "-format", "csv", "-export", out)
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep_iq16_80_budget8k.csv", got)
}

// TestGoldenDeterminism guards the premise the goldens stand on: two
// fresh processes at different worker counts must emit identical bytes.
func TestGoldenDeterminism(t *testing.T) {
	a := runSdiq(t, "-experiment", "fig8", "-format", "csv", "-budget", "20000", "-parallel", "1")
	b := runSdiq(t, "-experiment", "fig8", "-format", "csv", "-budget", "20000", "-parallel", "8")
	if !bytes.Equal(a, b) {
		t.Errorf("fig8 CSV differs across worker counts:\n%s\nvs\n%s", a, b)
	}
}
