// Command sdiq runs the paper's evaluation: every table and figure of
// "Software Directed Issue Queue Power Reduction" (HPCA 2005), on the
// synthetic SPECint-like suite. All simulation goes through the campaign
// engine (internal/campaign): runs execute on a cancellable parallel
// worker pool, optionally sweep configuration axes, cache per-run
// results on disk, and export for re-plotting without re-simulating.
//
// Usage:
//
//	sdiq [-experiment all|table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|summary|sweep]
//	     [-budget N] [-seed N] [-parallel N] [-format table|csv]
//	     [-config cfg.json] [-dumpconfig]
//	     [-sweep "axis=v1,v2,...;axis=..."] [-cache DIR] [-ckpt DIR]
//	     [-sample on|window/period/warmup|window=N,period=N,...]
//	     [-lockstep=false]
//	     [-remote http://host:port]
//	     [-export FILE.json|FILE.csv] [-load FILE.json]
//	     [-cpuprofile FILE] [-memprofile FILE]
//
// The budget is the number of committed (real) instructions per run; the
// paper uses 100M, the default here is 500k which reproduces the same
// shape in seconds. A JSON config file overrides table-1 parameters
// (emit a template with -dumpconfig).
//
// -sample switches every run to the sampled-simulation engine
// (internal/sample): detailed windows every period instructions with
// functional warming between them, ~5-6x faster than exact at well under
// 1% mean IPC error with the default regime (-sample on). Results carry
// confidence intervals, printed after the figures and exported in the
// CSV; sampling parameters are part of the campaign cache key, so
// sampled and exact results never mix in -cache.
//
// -sweep runs the grid at every point of the axis cross product, e.g.
// -sweep "iq.entries=16,32,48,64,80" simulates all techniques at five
// static queue sizes. -cache makes re-runs of any unchanged cell
// near-instant. -ckpt adds the checkpoint artifact store to sampled
// sweeps: cells that share a warming identity (same benchmark, cache
// geometry, predictor config and sampling regime — IQ/power axes
// excluded) reuse one functional-warming pass, bit-identically.
// -export saves the campaign (spec + results); -load renders
// tables/figures from a saved campaign without simulating.
//
// -lockstep (on by default) executes sampled sweep cells that share a
// warming identity as one batch: a single emulator + functional-warming
// stream fans each detailed window out to every cell's detailed core,
// so the grid pays the shared functional work once instead of once per
// cell. Results, caching and exports are bit-identical to per-cell
// execution (-lockstep=false); exact runs are unaffected, and it
// composes with -ckpt (a warm-resumed batch reads the artifact once).
//
// -remote executes the campaign on a sdiqd campaign service instead of
// in-process: the spec is POSTed to the server, jobs run on its shared
// executor and cache (deduplicated against every other client's
// in-flight jobs), progress streams back, and tables/figures/exports
// render locally from the server's result set — byte-identical to a
// local run. Every experiment and sweep flag combines with -remote;
// -parallel and -cache are then server-side concerns and ignored.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the whole
// campaign, including the worker pool), so simulator performance work can
// be diagnosed with `go tool pprof` without editing code.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/exp"
	"repro/internal/serve"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table1, table2, fig6..fig12, summary, sweep")
	budget := flag.Int64("budget", 500_000, "committed instructions per run")
	seed := flag.Int64("seed", 42, "workload generator seed")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table or csv")
	configPath := flag.String("config", "", "JSON processor configuration overriding table 1")
	dumpConfig := flag.Bool("dumpconfig", false, "print the default configuration as JSON and exit")
	sweepFlag := flag.String("sweep", "",
		fmt.Sprintf("config axes to sweep, e.g. \"iq.entries=16,32,48,64,80\" (axes: %s)",
			strings.Join(campaign.AxisNames(), ", ")))
	cacheDir := flag.String("cache", "", "directory for the on-disk result cache")
	ckptDir := flag.String("ckpt", "",
		"directory for the checkpoint artifact store (sampled sweeps share one warming pass per grid)")
	sampleFlag := flag.String("sample", "",
		"sampled simulation: \"on\" for the default regime, \"window/period/warmup\" or \"window=N,period=N,warmup=N,detailwarmup=N\" (empty = exact)")
	lockstep := flag.Bool("lockstep", true,
		"batch sampled cells sharing a warming identity into one emulator stream feeding K cores (local runs; exact runs unaffected)")
	remote := flag.String("remote", "",
		"run campaigns on a sdiqd campaign service at this base URL instead of in-process")
	token := flag.String("token", os.Getenv("SDIQ_TOKEN"),
		"tenant bearer token for -remote (default $SDIQ_TOKEN; required when the server runs -auth)")
	exportPath := flag.String("export", "", "write the campaign to FILE (.json or .csv)")
	loadPath := flag.String("load", "", "load a saved campaign JSON instead of simulating")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE at exit")
	flag.Parse()

	setupProfiles(*cpuProfile, *memProfile)
	defer flushProfiles()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := exp.NewRunner(*budget)
	r.Seed = *seed
	r.Parallel = *parallel
	r.CacheDir = *cacheDir
	r.CkptDir = *ckptDir
	// An explicitly requested store that cannot open is an error here,
	// not the engine's silent warm-from-scratch degradation: the user
	// asked for shared warming and should learn they aren't getting it.
	if *ckptDir != "" {
		if _, err := ckpt.Open(*ckptDir); err != nil {
			fail(fmt.Errorf("-ckpt %s: %w", *ckptDir, err))
		}
	}
	r.Remote = *remote
	r.RemoteToken = *token
	if *remote != "" {
		r.OnRemoteEvent = func(ev serve.Event) {
			if ev.Type == serve.EventSubmitted {
				fmt.Fprintf(os.Stderr, "sdiq: remote campaign %s on %s\n", ev.Campaign, *remote)
			}
		}
	}
	sampling, err := campaign.ParseSampling(*sampleFlag)
	if err != nil {
		fail(err)
	}
	r.Sampling = sampling
	r.Lockstep = *lockstep

	if *dumpConfig {
		if err := exp.WriteConfig(os.Stdout, r.Config); err != nil {
			fail(err)
		}
		return
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fail(err)
		}
		cfg, err := exp.LoadConfig(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		r.Config = cfg
	}
	csv := false
	switch *format {
	case "table":
	case "csv":
		csv = true
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}
	axes, err := campaign.ParseAxes(*sweepFlag)
	if err != nil {
		fail(err)
	}

	name := strings.ToLower(*experiment)

	// Experiments that need no simulation runs.
	switch name {
	case "table1":
		fmt.Print(exp.Table1(r.Config))
		return
	case "table2":
		fmt.Print(exp.Table2(*seed))
		return
	}

	var rs *campaign.ResultSet
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fail(err)
		}
		rs, err = campaign.ReadJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	if len(axes) > 0 && name != "sweep" {
		fail(fmt.Errorf("-sweep only combines with -experiment sweep (figures need a base grid); got -experiment %s", name))
	}
	if name == "sweep" {
		if rs == nil {
			spec := r.Spec(exp.AllTechniques())
			spec.Name = "sweep"
			spec.Axes = axes
			rs, err = r.RunCampaign(ctx, spec)
			if err != nil {
				fail(err)
			}
		}
		if csv {
			if err := rs.WriteCSV(os.Stdout); err != nil {
				fail(err)
			}
		} else {
			fmt.Print(exp.SweepReport(rs))
		}
		export(*exportPath, rs)
		return
	}

	var s *exp.SuiteResults
	if rs != nil {
		s, err = exp.FromCampaign(rs)
	} else {
		s, err = r.RunSuiteContext(ctx, exp.AllTechniques())
	}
	if err != nil {
		fail(err)
	}
	pick := func(tbl, csvText string) string {
		if csv {
			return csvText
		}
		return tbl
	}
	switch name {
	case "all":
		if csv {
			fmt.Print(exp.Figure6CSV(s), "\n", exp.Figure7CSV(s), "\n", exp.Figure8CSV(s), "\n",
				exp.Figure9CSV(s), "\n", exp.Figure10CSV(s), "\n", exp.Figure11CSV(s), "\n",
				exp.Figure12CSV(s), "\n", exp.SummaryCSV(s))
			if s.Sampled() {
				fmt.Print("\n", exp.SamplingReportCSV(s))
			}
		} else {
			fmt.Print(exp.AllFigures(s, r.Config, *seed))
			if s.Sampled() {
				fmt.Print("\n", exp.SamplingReport(s))
			}
		}
	case "fig6":
		fmt.Print(pick(exp.Figure6(s), exp.Figure6CSV(s)))
	case "fig7":
		fmt.Print(pick(exp.Figure7(s), exp.Figure7CSV(s)))
	case "fig8":
		fmt.Print(pick(exp.Figure8(s), exp.Figure8CSV(s)))
	case "fig9":
		fmt.Print(pick(exp.Figure9(s), exp.Figure9CSV(s)))
	case "fig10":
		fmt.Print(pick(exp.Figure10(s), exp.Figure10CSV(s)))
	case "fig11":
		fmt.Print(pick(exp.Figure11(s), exp.Figure11CSV(s)))
	case "fig12":
		fmt.Print(pick(exp.Figure12(s), exp.Figure12CSV(s)))
	case "summary":
		fmt.Print(pick(exp.Summary(s), exp.SummaryCSV(s)))
		if s.Sampled() {
			fmt.Print("\n", pick(exp.SamplingReport(s), exp.SamplingReportCSV(s)))
		}
	default:
		fmt.Fprintf(os.Stderr, "sdiq: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	export(*exportPath, s.Campaign)
}

// export writes the campaign to path, as JSON or CSV by extension.
func export(path string, rs *campaign.ResultSet) {
	if path == "" {
		return
	}
	if rs == nil {
		fail(fmt.Errorf("nothing to export"))
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = rs.WriteCSV(f)
	default:
		err = rs.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail(err)
	}
}

// flushProfiles stops the CPU profile and writes the heap profile; it is
// a no-op until setupProfiles installs it. fail() must call it because
// os.Exit skips defers — a profile of a run that errored or was
// interrupted is often exactly the one wanted.
var flushProfiles = func() {}

// setupProfiles starts the requested pprof collection and installs
// flushProfiles (idempotent, so the deferred call and a fail() can race
// harmlessly).
func setupProfiles(cpuPath, memPath string) {
	if cpuPath == "" && memPath == "" {
		return
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		cpuFile = f
	}
	var once sync.Once
	flushProfiles = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "sdiq: %v\n", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "sdiq: %v\n", err)
				}
			}
		})
	}
}

func fail(err error) {
	flushProfiles()
	fmt.Fprintf(os.Stderr, "sdiq: %v\n", err)
	os.Exit(1)
}
