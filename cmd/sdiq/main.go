// Command sdiq runs the paper's evaluation: every table and figure of
// "Software Directed Issue Queue Power Reduction" (HPCA 2005), on the
// synthetic SPECint-like suite.
//
// Usage:
//
//	sdiq [-experiment all|table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|summary]
//	     [-budget N] [-seed N] [-parallel N] [-format table|csv]
//	     [-config cfg.json] [-dumpconfig]
//
// The budget is the number of committed (real) instructions per run; the
// paper uses 100M, the default here is 500k which reproduces the same
// shape in seconds. A JSON config file overrides table-1 parameters
// (emit a template with -dumpconfig).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table1, table2, fig6..fig12, summary")
	budget := flag.Int64("budget", 500_000, "committed instructions per run")
	seed := flag.Int64("seed", 42, "workload generator seed")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table or csv")
	configPath := flag.String("config", "", "JSON processor configuration overriding table 1")
	dumpConfig := flag.Bool("dumpconfig", false, "print the default configuration as JSON and exit")
	flag.Parse()

	r := exp.NewRunner(*budget)
	r.Seed = *seed
	r.Parallel = *parallel

	if *dumpConfig {
		if err := exp.WriteConfig(os.Stdout, r.Config); err != nil {
			fail(err)
		}
		return
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fail(err)
		}
		cfg, err := exp.LoadConfig(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		r.Config = cfg
	}
	csv := false
	switch *format {
	case "table":
	case "csv":
		csv = true
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}

	name := strings.ToLower(*experiment)

	// Experiments that need no simulation runs.
	switch name {
	case "table1":
		fmt.Print(exp.Table1(r.Config))
		return
	case "table2":
		fmt.Print(exp.Table2(*seed))
		return
	}

	s, err := r.RunSuite(exp.AllTechniques())
	if err != nil {
		fail(err)
	}
	pick := func(tbl, csvText string) string {
		if csv {
			return csvText
		}
		return tbl
	}
	switch name {
	case "all":
		if csv {
			fmt.Print(exp.Figure6CSV(s), "\n", exp.Figure7CSV(s), "\n", exp.Figure8CSV(s), "\n",
				exp.Figure9CSV(s), "\n", exp.Figure10CSV(s), "\n", exp.Figure11CSV(s), "\n",
				exp.Figure12CSV(s), "\n", exp.SummaryCSV(s))
		} else {
			fmt.Print(exp.AllFigures(s, r.Config, *seed))
		}
	case "fig6":
		fmt.Print(pick(exp.Figure6(s), exp.Figure6CSV(s)))
	case "fig7":
		fmt.Print(pick(exp.Figure7(s), exp.Figure7CSV(s)))
	case "fig8":
		fmt.Print(pick(exp.Figure8(s), exp.Figure8CSV(s)))
	case "fig9":
		fmt.Print(pick(exp.Figure9(s), exp.Figure9CSV(s)))
	case "fig10":
		fmt.Print(pick(exp.Figure10(s), exp.Figure10CSV(s)))
	case "fig11":
		fmt.Print(pick(exp.Figure11(s), exp.Figure11CSV(s)))
	case "fig12":
		fmt.Print(pick(exp.Figure12(s), exp.Figure12CSV(s)))
	case "summary":
		fmt.Print(pick(exp.Summary(s), exp.SummaryCSV(s)))
	default:
		fmt.Fprintf(os.Stderr, "sdiq: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sdiq: %v\n", err)
	os.Exit(1)
}
