// Quickstart: build a small program with the IR builder, run the paper's
// compiler analysis over it, simulate baseline vs compiler-controlled
// issue queue, and print the power savings — the whole pipeline in one
// file. A final sampled run shows the fast path: the same baseline
// simulated by the sampled-simulation engine, with its error bars and
// wall-clock win.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/prog"
	"repro/internal/sample"
	"repro/internal/sim"
)

// buildKernel returns a fresh copy of the demo program: a serial
// accumulation loop (which needs almost no issue queue — prime resizing
// territory) around a small helper procedure.
func buildKernel() *prog.Program {
	b := prog.NewBuilder("quickstart")
	b.Proc("main").Entry().
		Li(isa.R(1), 1<<30). // outer trip count; the budget cuts the run
		Label("outer").
		Li(isa.R(2), 64).
		Label("loop").
		Add(isa.R(3), isa.R(3), isa.R(2)). // serial accumulation chain
		Muli(isa.R(4), isa.R(3), 3).
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "loop").
		Call("mix").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	b.Proc("mix").
		Xori(isa.R(5), isa.R(3), 0x5a5a).
		Shri(isa.R(6), isa.R(5), 3).
		Ret()
	return b.MustBuild()
}

func main() {
	const budget = 200_000

	// Baseline run: unconstrained 80-entry queue.
	t0 := time.Now()
	base, err := sim.RunProgram(sim.DefaultConfig(), buildKernel(), budget)
	if err != nil {
		log.Fatal(err)
	}
	exactWall := time.Since(t0)

	// Compiler-controlled run: analyse, insert hint NOOPs, simulate with
	// hint control enabled.
	controlled := buildKernel()
	rep, err := core.Instrument(controlled, core.Options{Mode: core.ModeNOOP})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Control = sim.ControlHints
	tech, err := sim.RunProgram(cfg, controlled, budget)
	if err != nil {
		log.Fatal(err)
	}

	params := power.DefaultParams()
	sv := params.Compute(&base, &tech, 10, 14)

	fmt.Printf("hints inserted:         %d\n", rep.HintsInserted)
	fmt.Printf("baseline IPC:           %.3f (occupancy %.1f entries)\n", base.IPC(), base.AvgIQOccupancy())
	fmt.Printf("controlled IPC:         %.3f (occupancy %.1f entries)\n", tech.IPC(), tech.AvgIQOccupancy())
	fmt.Printf("IPC loss:               %.2f%%\n", (1-tech.IPC()/base.IPC())*100)
	fmt.Printf("IQ dynamic saving:      %.1f%%\n", sv.IQDynamicPct)
	fmt.Printf("IQ static saving:       %.1f%%\n", sv.IQStaticPct)
	fmt.Printf("regfile dynamic saving: %.1f%%\n", sv.RFDynamicPct)
	fmt.Printf("overall dynamic saving: %.1f%% of whole-processor power\n", sv.OverallDynamicPct)

	// The same baseline, sampled: detailed windows every few thousand
	// instructions with functional warming between them. Exact mode stays
	// the default everywhere; sampling is the fast path for big budgets.
	scfg := sample.Config{WindowInsts: 500, PeriodInsts: 5_000, WarmupInsts: 1_000, DetailWarmupInsts: 1_000}
	t0 = time.Now()
	srep, err := sample.Run(context.Background(), sim.DefaultConfig(), buildKernel(), budget, scfg)
	if err != nil {
		log.Fatal(err)
	}
	sampledWall := time.Since(t0)
	fmt.Printf("\nsampled baseline IPC:   %.3f ±%.3f (95%% CI, %d windows, %.0f%% of stream measured)\n",
		srep.IPC.Mean, srep.IPC.Half, len(srep.Windows), 100*srep.SampledFraction())
	fmt.Printf("sampled vs exact:       %+.2f%% IPC error, %.1fx wall-clock (%v vs %v)\n",
		100*(srep.Stats.IPC()-base.IPC())/base.IPC(),
		float64(exactWall)/float64(sampledWall), sampledWall, exactWall)
}
