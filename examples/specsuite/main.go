// Specsuite: runs the full benchmark suite under every technique at a
// configurable budget and prints the paper's headline comparison plus the
// per-benchmark IPC-loss figure — a smaller, programmatic version of
// `sdiq -experiment all`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	budget := flag.Int64("budget", 150_000, "committed instructions per run")
	flag.Parse()

	r := exp.NewRunner(*budget)
	fmt.Printf("running 11 benchmarks x 5 techniques at %d instructions each...\n\n", *budget)
	s, err := r.RunSuite(exp.AllTechniques())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.Figure6(s))
	fmt.Println(exp.Figure8(s))
	fmt.Println(exp.Summary(s))
}
