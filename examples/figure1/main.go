// Figure 1: reproduces the paper's motivating example exactly. The
// six-instruction basic block
//
//	a: add r1, 1, r1    b: add r2, 2, r2    c: mul r1, 5, r3
//	d: mul r2, 5, r4    e: add r3, r4, r5   f: add r2, r4, r6
//
// executes in the same number of cycles whether the issue queue is
// unconstrained (18 operand wakeups) or limited to 2 entries (10
// wakeups) — a 44% wakeup saving for free. This example drives the
// banked issue queue structure directly, cycle by cycle, mirroring the
// paper's figures 1(c) and 1(d).
package main

import (
	"fmt"

	"repro/internal/iq"
)

const (
	tagA = 1
	tagB = 2
	tagC = 3
	tagD = 4
)

func main() {
	fmt.Println("Paper figure 1: issue-queue wakeups, baseline vs limited")
	fmt.Println()

	baseline := runBaseline()
	fmt.Printf("baseline  (80 entries): %2d wakeups over 4 cycles\n", baseline.Stats.GatedWakeups)

	limited := runLimited()
	fmt.Printf("limited   (2 entries):  %2d wakeups over 4 cycles\n", limited.Stats.GatedWakeups)

	saving := 100 * (1 - float64(limited.Stats.GatedWakeups)/float64(baseline.Stats.GatedWakeups))
	fmt.Printf("wakeup saving:          %2.0f%% with no slowdown (paper: 44%%)\n", saving)
}

// runBaseline is figure 1(c): all six instructions dispatch on cycle 0.
func runBaseline() *iq.Queue {
	q := iq.MustNew(iq.DefaultConfig())
	// Cycle 0: dispatch a..f.
	q.BeginCycle()
	pa, _ := q.Dispatch(0, [2]int{-1, -1}, [2]bool{false, false})
	pb, _ := q.Dispatch(1, [2]int{-1, -1}, [2]bool{false, false})
	pc, _ := q.Dispatch(2, [2]int{tagA, -1}, [2]bool{true, false})
	pd, _ := q.Dispatch(3, [2]int{tagB, -1}, [2]bool{true, false})
	pe, _ := q.Dispatch(4, [2]int{tagC, tagD}, [2]bool{true, true})
	pf, _ := q.Dispatch(5, [2]int{tagB, tagD}, [2]bool{true, true})
	// Cycle 1: a, b issue.
	q.BeginCycle()
	q.Issue(pa)
	q.Issue(pb)
	// Cycle 2: a, b write back (6 wakeups each); c, d issue.
	q.BeginCycle()
	q.Broadcast(tagA)
	q.Broadcast(tagB)
	q.Issue(pc)
	q.Issue(pd)
	// Cycle 3: c, d write back (3 wakeups each); e, f issue.
	q.BeginCycle()
	q.Broadcast(tagC)
	q.Broadcast(tagD)
	q.Issue(pe)
	q.Issue(pf)
	return q
}

// runLimited is figure 1(d): max_new_range = 2 staggers dispatch without
// delaying any issue.
func runLimited() *iq.Queue {
	q := iq.MustNew(iq.DefaultConfig())
	// Cycle 0: hint 2; only a and b fit.
	q.BeginCycle()
	q.SetHint(2)
	pa, _ := q.Dispatch(0, [2]int{-1, -1}, [2]bool{false, false})
	pb, _ := q.Dispatch(1, [2]int{-1, -1}, [2]bool{false, false})
	// Cycle 1: a, b issue; c, d dispatch into the freed region.
	q.BeginCycle()
	q.Issue(pa)
	q.Issue(pb)
	pc, _ := q.Dispatch(2, [2]int{tagA, -1}, [2]bool{true, false})
	pd, _ := q.Dispatch(3, [2]int{tagB, -1}, [2]bool{true, false})
	// Cycle 2: a, b write back (2 wakeups each); c, d issue; e, f enter
	// (f's first operand already arrived with b's broadcast).
	q.BeginCycle()
	q.Broadcast(tagA)
	q.Broadcast(tagB)
	q.Issue(pc)
	q.Issue(pd)
	pe, _ := q.Dispatch(4, [2]int{tagC, tagD}, [2]bool{true, true})
	pf, _ := q.Dispatch(5, [2]int{tagB, tagD}, [2]bool{false, true})
	// Cycle 3: c, d write back (3 wakeups each); e, f issue.
	q.BeginCycle()
	q.Broadcast(tagC)
	q.Broadcast(tagD)
	q.Issue(pe)
	q.Issue(pf)
	return q
}
