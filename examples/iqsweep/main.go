// IQ-size sweep: an extension experiment beyond the paper. The paper
// fixes the issue queue at 80 entries and resizes it dynamically; this
// sweep asks how *statically* smaller queues would compare. The answer
// motivates the whole line of work: no single static size fits — a
// serial-ish benchmark (gzip) runs happily in 16 entries, while a
// latency-tolerant one (twolf) needs most of the 80 — so a fixed queue
// either wastes power or loses IPC on part of the workload, and only a
// dynamic scheme can track the per-program (indeed per-region) need.
//
// The grid — four benchmarks × baseline at four static sizes, plus the
// dynamic tag technique at full size — is two declarative campaign
// specs; the engine runs the twenty cells in parallel. Pass a directory
// argument to cache the results and make re-runs instant.
//
// The dynamic-tag spec then runs a second time with Spec.Sampling set:
// the same campaign through the sampled-simulation engine, whose
// extrapolated IPC (with confidence half-width) prints beside the exact
// value — both paths, one spec field apart. Sampled cells hash to their
// own cache keys, so the two campaigns share a cache directory safely.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/campaign"
)

const budget = 150_000

func main() {
	cacheDir := ""
	if len(os.Args) > 1 {
		cacheDir = os.Args[1]
	}
	sizes := []int{80, 48, 32, 16}
	engine := &campaign.Engine{CacheDir: cacheDir}

	// Sixteen cells: every benchmark at every static queue size.
	static := campaign.DefaultSpec(budget)
	static.Name = "static-iq-sweep"
	static.Benchmarks = []string{"gzip", "twolf", "vpr", "gap"}
	static.Techniques = []campaign.Technique{campaign.TechBaseline}
	static.Axes = []campaign.Axis{{Name: "iq.entries", Values: sizes}}

	// Four more: the dynamic tag technique on the full-size queue.
	dynamic := static
	dynamic.Name = "dynamic-tag"
	dynamic.Techniques = []campaign.Technique{campaign.TechExtension}
	dynamic.Axes = nil

	// The same dynamic-tag campaign, sampled: short detailed windows with
	// functional warming between them instead of exact simulation.
	sampled := dynamic
	sampled.Name = "dynamic-tag-sampled"
	regime := campaign.Sampling{Window: 500, Period: 5_000, Warmup: 1_000, DetailWarmup: 1_000}
	sampled.Sampling = &regime

	rs, err := engine.Run(context.Background(), static)
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := engine.Run(context.Background(), dynamic)
	if err != nil {
		log.Fatal(err)
	}
	smp, err := engine.Run(context.Background(), sampled)
	if err != nil {
		log.Fatal(err)
	}

	points := rs.Points() // one per static size, in axis order
	full := points[0]     // iq.entries=80: the paper's queue
	base := rs.Spec.Base
	iqBanks := base.IQ.Entries / base.IQ.BankSize
	rfBanks := base.IntRF.Regs / base.IntRF.BankSize

	fmt.Println("static issue-queue size sweep: IPC loss % vs the 80-entry baseline")
	fmt.Printf("%-8s", "bench")
	for _, s := range sizes {
		fmt.Printf("  %6d", s)
	}
	fmt.Println("   dynamic(tag)                 sampled(tag)")

	for _, bench := range rs.Benchmarks() {
		ref := rs.MustGet(bench, campaign.TechBaseline, full)
		fmt.Printf("%-8s", bench)
		for _, pt := range points {
			st := rs.MustGet(bench, campaign.TechBaseline, pt).Stats
			fmt.Printf("  %6.2f", (1-st.IPC()/ref.Stats.IPC())*100)
		}
		// The dynamic technique, compared against the same full-size
		// baseline (the two campaigns share a base configuration), exact
		// and sampled side by side.
		st := dyn.MustGet(bench, campaign.TechExtension, nil).Stats
		sv := rs.Spec.Params.Compute(&ref.Stats, &st, iqBanks, rfBanks)
		sr := smp.MustGet(bench, campaign.TechExtension, nil)
		fmt.Printf("   %.2f%% loss, %.1f%% dyn saving   IPC %.3f ±%.3f (%d windows)\n",
			(1-st.IPC()/ref.Stats.IPC())*100, sv.IQDynamicPct,
			sr.Sampled.IPC.Mean, sr.Sampled.IPC.Half, sr.Sampled.Windows)
	}
	if hits := rs.CacheHits + dyn.CacheHits + smp.CacheHits; hits > 0 {
		fmt.Printf("\n(%d of %d cells served from cache)\n",
			hits, len(rs.Results)+len(dyn.Results)+len(smp.Results))
	}
	fmt.Println("\nreading: a 16-entry queue is free for gzip but ruinous where the")
	fmt.Println("window matters; the compiler-controlled queue adapts per region.")
}
