// IQ-size sweep: an extension experiment beyond the paper. The paper
// fixes the issue queue at 80 entries and resizes it dynamically; this
// sweep asks how *statically* smaller queues would compare. The answer
// motivates the whole line of work: no single static size fits — a
// serial-ish benchmark (gzip) runs happily in 16 entries, while a
// latency-tolerant one (twolf) needs most of the 80 — so a fixed queue
// either wastes power or loses IPC on part of the workload, and only a
// dynamic scheme can track the per-program (indeed per-region) need.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

const budget = 150_000

func main() {
	params := power.DefaultParams()
	sizes := []int{80, 48, 32, 16}

	fmt.Println("static issue-queue size sweep: IPC loss % vs the 80-entry baseline")
	fmt.Printf("%-8s", "bench")
	for _, s := range sizes {
		fmt.Printf("  %6d", s)
	}
	fmt.Println("   dynamic(tag)")

	for _, name := range []string{"gzip", "twolf", "vpr", "gap"} {
		bench, _ := workload.ByName(name)
		ref, err := sim.RunProgram(sim.DefaultConfig(), bench.Build(42), budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", name)
		for _, entries := range sizes {
			cfg := sim.DefaultConfig()
			cfg.IQ.Entries = entries
			st, err := sim.RunProgram(cfg, bench.Build(42), budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2f", (1-st.IPC()/ref.IPC())*100)
		}
		// The dynamic technique on the full-size queue.
		p := bench.Build(42)
		if _, err := core.Instrument(p, core.Options{Mode: core.ModeTag}); err != nil {
			log.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Control = sim.ControlHints
		st, err := sim.RunProgram(cfg, p, budget)
		if err != nil {
			log.Fatal(err)
		}
		sv := params.Compute(&ref, &st, 10, 14)
		fmt.Printf("   %.2f%% loss, %.1f%% dyn saving\n",
			(1-st.IPC()/ref.IPC())*100, sv.IQDynamicPct)
	}
	fmt.Println("\nreading: a 16-entry queue is free for gzip but ruinous where the")
	fmt.Println("window matters; the compiler-controlled queue adapts per region.")
}
