// Loop CDS analysis: reproduces the paper's figure 4. The loop body
//
//	a: a_i = a_{i-1} + 1    (the cyclic dependence set: a depends on its
//	b: b = a + 1             own previous-iteration value, so II = 1)
//	c: c = b + 1
//	d: d = b + 1
//	e: e = d + 1
//	f: f = c + 1
//
// pipelines across iterations: e and f of iteration i issue together
// with a of iteration i+3, so 15 entries must be available — e, f, the
// twelve instructions of iterations i+1 and i+2, and a itself. This
// example shows the dependence graph, the cyclic dependence sets, the
// derived equations, and both of the analyser's estimates.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/prog"
)

func main() {
	names := []string{"a", "b", "c", "d", "e", "f"}
	mk := func(dst, src int) prog.Inst {
		in := prog.NewInst(isa.Addi)
		in.Dst, in.Src1, in.Imm = isa.R(dst), isa.R(src), 1
		return in
	}
	body := []prog.Inst{
		mk(1, 1), // a = a_{i-1}+1
		mk(2, 1), // b = a+1
		mk(3, 2), // c = b+1
		mk(4, 2), // d = b+1
		mk(5, 4), // e = d+1
		mk(6, 3), // f = c+1
	}

	g := ddg.BuildLoop(body)
	fmt.Println("dependence edges (D = iteration distance):")
	for v := range body {
		for _, e := range g.Out[v] {
			fmt.Printf("  %s -> %s  (latency %d, D=%d)\n",
				names[e.From], names[e.To], e.Latency, e.Distance)
		}
	}

	fmt.Println("\ncyclic dependence sets:")
	for _, comp := range g.CyclicSCCs() {
		fmt.Printf("  {")
		for i, v := range comp {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(names[v])
		}
		fmt.Printf("}  II = %d\n", g.RecurrenceII(comp))
	}

	need, ii := core.LoopEquationsNeed(body, core.DefaultOptions())
	fmt.Printf("\nequations method (paper figure 4): %d entries at II=%d (paper: 15)\n", need, ii)

	combined := core.CombinedLoopNeed(body, core.DefaultOptions())
	fmt.Printf("combined with resident-population measurement: %d entries\n", combined)
}
