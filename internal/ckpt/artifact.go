package ckpt

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/binio"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/prog"
)

// Artifact container: gzip over a record stream. Each record is a
// one-byte tag plus a u32-length-prefixed binio payload, so a reader
// holds exactly one window's state in memory at a time — the fix for
// the unbounded rep.Checkpoints accumulation the in-memory predecessor
// suffered from.
const (
	artifactMagic   = "SDIQCKP1"
	artifactVersion = 1

	recWindow  = 1
	recTrailer = 2

	// maxRecordBytes bounds a single record so a corrupt length prefix
	// cannot ask for an absurd allocation. Checkpoints are dominated by
	// the benchmark's mapped pages; the synthetic workloads sit far
	// below this.
	maxRecordBytes = 1 << 30
)

// Window is one sampling window's resume state: everything a detailed
// window needs to run bit-identically to the generating pass —
// architectural checkpoint, warm hierarchy and predictor, the active
// IQ hint, and the window's position in the committed-instruction
// stream.
type Window struct {
	// StartReal is the committed real (non-hint) instruction count at
	// the window start; the resume path derives the window's detailed
	// length from it exactly as the generate path did.
	StartReal int64
	// LastHint is the most recent issue-queue hint at the window start
	// (Core.PresetHint input).
	LastHint int
	// Ckpt is the architectural state at the window start.
	Ckpt emu.Checkpoint
	// Mem and Bp are the functionally-warmed microarchitectural state at
	// the window start. The consumer owns them (they are rebuilt per
	// record on read, cloned on write).
	Mem *cache.Hierarchy
	Bp  *bpred.Predictor
}

// Trailer closes an artifact with the generating run's phase totals, so
// a resumed run reports the same instruction accounting without ever
// touching the functional stream.
type Trailer struct {
	TotalReal       int64
	WarmedReal      int64
	FastForwardReal int64
	Windows         int
}

// Writer streams an artifact to disk; Commit publishes it atomically,
// anything less leaves no trace. Create one via Store.Create.
type Writer struct {
	s     *Store
	key   string
	f     *os.File
	gz    *gzip.Writer
	n     int
	done  bool
	wrote countingWriter
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Create starts a new artifact for key. The budget is recorded in the
// header as a sanity cross-check for resumers. A nil store returns
// (nil, nil); callers treat a nil writer as "not recording".
func (s *Store) Create(key string, budget int64) (*Writer, error) {
	if s == nil {
		return nil, nil
	}
	p := s.path(key)
	if p == "" {
		return nil, fmt.Errorf("ckpt: invalid key %q", key)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(s.dir, "gen-*")
	if err != nil {
		return nil, err
	}
	w := &Writer{s: s, key: key, f: f}
	w.wrote = countingWriter{w: f}
	w.gz, _ = gzip.NewWriterLevel(&w.wrote, gzip.BestSpeed)
	var hdr binio.Writer
	hdr.Raw([]byte(artifactMagic))
	hdr.U32(artifactVersion)
	hdr.I64(budget)
	if _, err := w.gz.Write(hdr.Bytes()); err != nil {
		discard(f)
		return nil, err
	}
	return w, nil
}

// record writes one tagged, length-prefixed payload.
func (w *Writer) record(tag uint8, payload []byte) error {
	var hdr binio.Writer
	hdr.U8(tag)
	hdr.U32(uint32(len(payload)))
	if _, err := w.gz.Write(hdr.Bytes()); err != nil {
		return err
	}
	_, err := w.gz.Write(payload)
	return err
}

// Append adds one window's resume state.
func (w *Writer) Append(win *Window) error {
	ck, err := win.Ckpt.MarshalBinary()
	if err != nil {
		return err
	}
	mem := win.Mem.MarshalState()
	bp := win.Bp.MarshalState()
	var b binio.Writer
	b.I64(win.StartReal)
	b.I64(int64(win.LastHint))
	b.U32(uint32(len(ck)))
	b.Raw(ck)
	b.U32(uint32(len(mem)))
	b.Raw(mem)
	b.U32(uint32(len(bp)))
	b.Raw(bp)
	w.n++
	return w.record(recWindow, b.Bytes())
}

// Commit writes the trailer, finishes the stream and atomically
// publishes the artifact under its key.
func (w *Writer) Commit(tr Trailer) error {
	if w.done {
		return errors.New("ckpt: writer already finished")
	}
	w.done = true
	tr.Windows = w.n
	var b binio.Writer
	b.I64(tr.TotalReal)
	b.I64(tr.WarmedReal)
	b.I64(tr.FastForwardReal)
	b.U32(uint32(tr.Windows))
	if err := w.record(recTrailer, b.Bytes()); err != nil {
		discard(w.f)
		return err
	}
	if err := w.gz.Close(); err != nil {
		discard(w.f)
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	if err := os.Rename(w.f.Name(), w.s.path(w.key)); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	w.s.generated.Add(1)
	w.s.bytesWritten.Add(w.wrote.n)
	return nil
}

// Abort abandons the artifact; the store is left as if Create never
// happened. Safe after Commit (no-op) and on a nil writer.
func (w *Writer) Abort() {
	if w == nil || w.done {
		return
	}
	w.done = true
	discard(w.f)
}

// Reader consumes a published artifact window by window. Create one via
// Store.OpenArtifact.
type Reader struct {
	f       *os.File
	gz      *gzip.Reader
	prog    *prog.Program
	ccfg    cache.HierarchyConfig
	bcfg    bpred.Config
	budget  int64
	trailer *Trailer
	read    int
}

// OpenArtifact opens the artifact for key and prepares to deserialize
// its windows against the given program and configuration. A missing
// artifact returns an error wrapping fs.ErrNotExist and counts a store
// miss; an open counts a hit. A nil store always misses.
func (s *Store) OpenArtifact(key string, p *prog.Program, ccfg cache.HierarchyConfig, bcfg bpred.Config) (*Reader, error) {
	if s == nil {
		return nil, os.ErrNotExist
	}
	path := s.path(key)
	if path == "" {
		return nil, os.ErrNotExist
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.misses.Add(1)
		}
		return nil, err
	}
	if info, err := f.Stat(); err == nil {
		s.bytesRead.Add(info.Size())
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: %s: %w", key, err)
	}
	r := &Reader{f: f, gz: gz, prog: p, ccfg: ccfg, bcfg: bcfg}
	hdr := make([]byte, len(artifactMagic)+4+8)
	if _, err := io.ReadFull(gz, hdr); err != nil {
		r.Close()
		return nil, fmt.Errorf("ckpt: %s: short header: %w", key, err)
	}
	b := binio.NewReader(hdr)
	if string(b.Raw(len(artifactMagic))) != artifactMagic {
		r.Close()
		return nil, fmt.Errorf("ckpt: %s: bad artifact magic", key)
	}
	if v := b.U32(); v != artifactVersion {
		r.Close()
		return nil, fmt.Errorf("ckpt: %s: artifact version %d, want %d", key, v, artifactVersion)
	}
	r.budget = b.I64()
	s.hits.Add(1)
	return r, nil
}

// Budget returns the generating run's instruction budget (header field).
func (r *Reader) Budget() int64 { return r.budget }

// Next returns the next window, or io.EOF after the trailer.
func (r *Reader) Next() (*Window, error) {
	if r.trailer != nil {
		return nil, io.EOF
	}
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r.gz, hdr); err != nil {
		return nil, fmt.Errorf("ckpt: truncated artifact (no trailer): %w", err)
	}
	h := binio.NewReader(hdr)
	tag := h.U8()
	n := int(h.U32())
	if n < 0 || n > maxRecordBytes {
		return nil, fmt.Errorf("ckpt: implausible record size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.gz, payload); err != nil {
		return nil, fmt.Errorf("ckpt: truncated record: %w", err)
	}
	b := binio.NewReader(payload)
	switch tag {
	case recTrailer:
		tr := Trailer{
			TotalReal:       b.I64(),
			WarmedReal:      b.I64(),
			FastForwardReal: b.I64(),
			Windows:         int(b.U32()),
		}
		if err := b.Err(); err != nil {
			return nil, err
		}
		if tr.Windows != r.read {
			return nil, fmt.Errorf("ckpt: trailer records %d windows, artifact held %d", tr.Windows, r.read)
		}
		r.trailer = &tr
		return nil, io.EOF
	case recWindow:
		win := &Window{StartReal: b.I64(), LastHint: int(b.I64())}
		ckBytes := b.Raw(int(b.U32()))
		memBytes := b.Raw(int(b.U32()))
		bpBytes := b.Raw(int(b.U32()))
		if err := b.Err(); err != nil {
			return nil, err
		}
		ck, err := emu.UnmarshalCheckpoint(ckBytes, r.prog)
		if err != nil {
			return nil, err
		}
		win.Ckpt = ck
		mem, err := cache.NewHierarchy(r.ccfg)
		if err != nil {
			return nil, err
		}
		if err := mem.UnmarshalState(memBytes); err != nil {
			return nil, err
		}
		win.Mem = mem
		bp := bpred.New(r.bcfg)
		if err := bp.UnmarshalState(bpBytes); err != nil {
			return nil, err
		}
		win.Bp = bp
		r.read++
		return win, nil
	default:
		return nil, fmt.Errorf("ckpt: unknown record tag %d", tag)
	}
}

// Trailer returns the artifact's trailer; ok is false until Next has
// returned io.EOF.
func (r *Reader) Trailer() (Trailer, bool) {
	if r.trailer == nil {
		return Trailer{}, false
	}
	return *r.trailer, true
}

// Close releases the reader.
func (r *Reader) Close() error {
	if r.gz != nil {
		r.gz.Close()
	}
	return r.f.Close()
}

// checkContainer validates that data parses as an artifact container
// header (gzip + magic + version) before WriteRaw publishes it.
func checkContainer(data []byte) error {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("ckpt: upload is not an artifact: %w", err)
	}
	defer gz.Close()
	hdr := make([]byte, len(artifactMagic)+4)
	if _, err := io.ReadFull(gz, hdr); err != nil {
		return fmt.Errorf("ckpt: upload header: %w", err)
	}
	if string(hdr[:len(artifactMagic)]) != artifactMagic {
		return errors.New("ckpt: upload has wrong artifact magic")
	}
	b := binio.NewReader(hdr[len(artifactMagic):])
	if v := b.U32(); v != artifactVersion {
		return fmt.Errorf("ckpt: upload artifact version %d, want %d", v, artifactVersion)
	}
	return nil
}
