// Package ckpt is the content-addressed checkpoint artifact store: the
// campaign-level cache of warm simulation state that amortizes
// functional warming across a sweep grid. A sweep varies IQ/power
// configuration over the same benchmark stream, so the expensive ~95%
// of a sampled job — fast-forward plus functional warming — is
// identical for every cell that shares a warming identity. The first
// job to run generates an artifact (write-through from internal/sample)
// holding, for each sampling window, the architectural checkpoint
// (emu.Checkpoint) plus the warm cache-hierarchy and branch-predictor
// state at the window start; every other cell resumes its detailed
// windows directly from the artifact and never touches the functional
// stream.
//
// Keys are computed by the campaign layer (campaign.CheckpointKey):
// SHA-256 over the benchmark identity, seed, budget, the
// warming-relevant config slice (cache geometry + predictor
// configuration + instrumentation class — IQ and power axes excluded),
// and the sampling regime. The store itself treats keys as opaque.
//
// Disk layout mirrors the campaign result cache: one artifact per key
// at dir/key[:2]/key.ckpt, written to a temp file and renamed, so
// concurrent writers (or crashed ones) can never publish a partial
// artifact. The artifact is a gzip stream of binio-encoded records: a
// header, one record per window, and a trailer with the run's phase
// totals — readable strictly in window order, so resuming never holds
// more than one window's state in memory.
package ckpt

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use; a nil *Store is a valid
// "checkpointing off" store (lookups miss, writes are discarded).
type Store struct {
	dir string

	// genMu serializes artifact generation per key within this process:
	// the first job of a sweep generates, concurrent cells of the same
	// grid block briefly and then resume from the published artifact.
	genMu sync.Mutex
	gen   map[string]*keyLock

	hits, misses, generated, evicted atomic.Int64
	bytesRead, bytesWritten          atomic.Int64
}

type keyLock struct {
	mu   sync.Mutex
	refs int
}

// Open returns a store rooted at dir, creating it if needed. An empty
// dir returns (nil, nil): checkpointing off.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: open store: %w", err)
	}
	return &Store{dir: dir, gen: map[string]*keyLock{}}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// validKey keeps key material safe to splice into paths: content hashes
// are lowercase hex, and anything else (a traversal attempt arriving
// over HTTP, say) is rejected before it reaches the filesystem.
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns the artifact path for key, or "" for an invalid key.
func (s *Store) path(key string) string {
	if s == nil || !validKey(key) {
		return ""
	}
	return filepath.Join(s.dir, key[:2], key+".ckpt")
}

// Has reports whether an artifact for key is published.
func (s *Store) Has(key string) bool {
	p := s.path(key)
	if p == "" {
		return false
	}
	_, err := os.Stat(p)
	return err == nil
}

// Lock serializes in-process generation for key: the caller that gets
// the lock first generates the artifact while later callers block, then
// find it published. The returned function releases the lock. A nil
// store returns a no-op.
func (s *Store) Lock(key string) (unlock func()) {
	if s == nil || !validKey(key) {
		return func() {}
	}
	s.genMu.Lock()
	l := s.gen[key]
	if l == nil {
		l = &keyLock{}
		s.gen[key] = l
	}
	l.refs++
	s.genMu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		s.genMu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(s.gen, key)
		}
		s.genMu.Unlock()
	}
}

// Remove evicts the artifact for key, reporting whether one existed.
func (s *Store) Remove(key string) bool {
	p := s.path(key)
	if p == "" {
		return false
	}
	if err := os.Remove(p); err != nil {
		return false
	}
	s.evicted.Add(1)
	return true
}

// ReadRaw returns the raw artifact bytes for key (for shipping to a
// remote worker); a missing artifact returns fs.ErrNotExist.
func (s *Store) ReadRaw(key string) ([]byte, error) {
	p := s.path(key)
	if p == "" {
		return nil, fs.ErrNotExist
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// WriteRaw atomically installs raw artifact bytes received from a peer.
// The container header is validated so a corrupt upload cannot be
// published; an already-present artifact is left untouched (artifacts
// are content-addressed, so first-writer-wins is safe).
func (s *Store) WriteRaw(key string, data []byte) error {
	p := s.path(key)
	if p == "" {
		return fmt.Errorf("ckpt: invalid key %q", key)
	}
	if err := checkContainer(data); err != nil {
		return err
	}
	if s.Has(key) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.bytesWritten.Add(int64(len(data)))
	return nil
}

// Metrics is a snapshot of the store's counters.
type Metrics struct {
	// Hits and Misses count artifact open attempts (a generate-after-miss
	// counts once as a miss).
	Hits, Misses int64
	// Generated counts artifacts this process produced and published.
	Generated int64
	// Evicted counts artifacts removed by GC.
	Evicted int64
	// BytesRead and BytesWritten count artifact I/O through this store.
	BytesRead, BytesWritten int64
}

// Metrics returns a snapshot of the store's counters (zero for nil).
func (s *Store) Metrics() Metrics {
	if s == nil {
		return Metrics{}
	}
	return Metrics{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Generated:    s.generated.Load(),
		Evicted:      s.evicted.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// DiskStat walks the store and returns the published artifact count and
// total bytes (both 0 for nil).
func (s *Store) DiskStat() (artifacts, bytes int64) {
	if s == nil {
		return 0, 0
	}
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".ckpt") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			artifacts++
			bytes += info.Size()
		}
		return nil
	})
	return artifacts, bytes
}

// discard abandons a temp file (used by the artifact writer).
func discard(f *os.File) {
	name := f.Name()
	f.Close()
	os.Remove(name)
}
