package ckpt

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/workload"
)

const testKey = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

// buildState fabricates realistic window state: a genuinely-executed
// emulator checkpoint plus warmed hierarchy and predictor.
func buildState(t *testing.T, steps int) (*prog.Program, emu.Checkpoint, *cache.Hierarchy, *bpred.Predictor, cache.HierarchyConfig, bpred.Config) {
	t.Helper()
	b, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("no gzip workload")
	}
	p := b.Build(42)
	e, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Restart = true
	for i := 0; i < steps; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatal("emulator halted early")
		}
	}
	ccfg := cache.HierarchyConfig{}.WithDefaults()
	h, err := cache.NewHierarchy(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := bpred.Config{}.WithDefaults()
	bp := bpred.New(bcfg)
	for i := 0; i < 500; i++ {
		h.WarmLoad(uint64(0x1000 + 64*i))
		h.WarmFetch(i % 97)
		bp.TrainCond(i%311, i%3 == 0)
		bp.UpdateBTB(i%311, (i*7)%1024)
	}
	return p, e.Checkpoint(), h, bp, ccfg, bcfg
}

func TestOpenEmptyAndNilStore(t *testing.T) {
	s, err := Open("")
	if err != nil || s != nil {
		t.Fatalf("Open(\"\") = %v, %v; want nil, nil", s, err)
	}
	// Every method must be nil-safe: checkpointing off is a nil store.
	if s.Has(testKey) {
		t.Error("nil store claims an artifact")
	}
	s.Lock(testKey)() // must not panic
	if s.Remove(testKey) {
		t.Error("nil store removed something")
	}
	if _, err := s.ReadRaw(testKey); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("nil ReadRaw err = %v", err)
	}
	if w, err := s.Create(testKey, 1000); w != nil || err != nil {
		t.Errorf("nil Create = %v, %v", w, err)
	}
	if _, err := s.OpenArtifact(testKey, nil, cache.HierarchyConfig{}, bpred.Config{}); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("nil OpenArtifact err = %v", err)
	}
	if m := s.Metrics(); m != (Metrics{}) {
		t.Errorf("nil Metrics = %+v", m)
	}
	if a, b := s.DiskStat(); a != 0 || b != 0 {
		t.Errorf("nil DiskStat = %d, %d", a, b)
	}
	var nilW *Writer
	nilW.Abort() // must not panic
}

func TestArtifactRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, ck, h, bp, ccfg, bcfg := buildState(t, 2000)

	w, err := st.Create(testKey, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	wins := []Window{
		{StartReal: 1000, LastHint: 0, Ckpt: ck, Mem: h.Clone(), Bp: bp.Clone()},
		{StartReal: 6000, LastHint: 3, Ckpt: ck, Mem: h.Clone(), Bp: bp.Clone()},
		{StartReal: 11000, LastHint: 1, Ckpt: ck, Mem: h.Clone(), Bp: bp.Clone()},
	}
	for i := range wins {
		if err := w.Append(&wins[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st.Has(testKey) {
		t.Fatal("artifact visible before Commit")
	}
	tr := Trailer{TotalReal: 50_000, WarmedReal: 9_000, FastForwardReal: 38_000}
	if err := w.Commit(tr); err != nil {
		t.Fatal(err)
	}
	if !st.Has(testKey) {
		t.Fatal("artifact not published after Commit")
	}

	r, err := st.OpenArtifact(testKey, p, ccfg, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Budget() != 50_000 {
		t.Errorf("Budget = %d, want 50000", r.Budget())
	}
	for i := range wins {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if got.StartReal != wins[i].StartReal || got.LastHint != wins[i].LastHint {
			t.Errorf("window %d: got (%d,%d), want (%d,%d)",
				i, got.StartReal, got.LastHint, wins[i].StartReal, wins[i].LastHint)
		}
		if !got.Ckpt.Equal(&wins[i].Ckpt) {
			t.Errorf("window %d: checkpoint round-trip differs", i)
		}
		if !bytes.Equal(got.Mem.MarshalState(), wins[i].Mem.MarshalState()) {
			t.Errorf("window %d: hierarchy state round-trip differs", i)
		}
		if !bytes.Equal(got.Bp.MarshalState(), wins[i].Bp.MarshalState()) {
			t.Errorf("window %d: predictor state round-trip differs", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last window: %v, want io.EOF", err)
	}
	gotTr, ok := r.Trailer()
	if !ok || gotTr.TotalReal != tr.TotalReal || gotTr.WarmedReal != tr.WarmedReal ||
		gotTr.FastForwardReal != tr.FastForwardReal || gotTr.Windows != len(wins) {
		t.Errorf("trailer = %+v (ok=%v), want %+v with %d windows", gotTr, ok, tr, len(wins))
	}

	m := st.Metrics()
	if m.Generated != 1 || m.Hits != 1 || m.BytesWritten == 0 || m.BytesRead == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestOpenArtifactGeometryMismatch: resuming against a different cache
// geometry must fail loudly, never deserialize into the wrong shape.
func TestOpenArtifactGeometryMismatch(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, ck, h, bp, ccfg, bcfg := buildState(t, 500)
	w, err := st.Create(testKey, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Window{StartReal: 100, Ckpt: ck, Mem: h, Bp: bp}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Trailer{TotalReal: 10_000}); err != nil {
		t.Fatal(err)
	}
	wrong := ccfg
	wrong.L2.SizeBytes = ccfg.L2.SizeBytes * 2
	r, err := st.OpenArtifact(testKey, p, wrong, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("mismatched geometry deserialized without error")
	}
}

func TestWriteRawValidation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteRaw(testKey, []byte("garbage")); err == nil {
		t.Fatal("garbage accepted as artifact")
	}
	if st.Has(testKey) {
		t.Fatal("garbage published")
	}

	// A real artifact's bytes must install under another key (the
	// worker-upload path) ...
	p, ck, h, bp, ccfg, bcfg := buildState(t, 500)
	w, _ := st.Create(testKey, 10_000)
	if err := w.Append(&Window{StartReal: 1, Ckpt: ck, Mem: h, Bp: bp}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Trailer{TotalReal: 10_000}); err != nil {
		t.Fatal(err)
	}
	data, err := st.ReadRaw(testKey)
	if err != nil {
		t.Fatal(err)
	}
	other := "abcdabcdabcdabcdabcdabcdabcdabcd"
	if err := st.WriteRaw(other, data); err != nil {
		t.Fatal(err)
	}
	r, err := st.OpenArtifact(other, p, ccfg, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()

	// ... and an already-present key is first-writer-wins: a second
	// write is a silent no-op, never an overwrite.
	before, _ := os.Stat(filepath.Join(st.Dir(), other[:2], other+".ckpt"))
	if err := st.WriteRaw(other, data); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(st.Dir(), other[:2], other+".ckpt"))
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Error("second WriteRaw overwrote an existing artifact")
	}
}

// TestInvalidKeys: anything that is not lowercase hex of sane length —
// e.g. a path-traversal attempt arriving over HTTP — must be rejected
// before it reaches the filesystem.
func TestInvalidKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "../../../../etc/passwd", "ABCDEF0123456789",
		"0123456789abcdeg", "0123/6789abcdef0",
	} {
		if st.Has(key) {
			t.Errorf("Has(%q) = true", key)
		}
		if _, err := st.Create(key, 1); err == nil {
			t.Errorf("Create(%q) accepted", key)
		}
		if err := st.WriteRaw(key, nil); err == nil {
			t.Errorf("WriteRaw(%q) accepted", key)
		}
		if st.Remove(key) {
			t.Errorf("Remove(%q) = true", key)
		}
	}
}

func TestRemoveAndDiskStat(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ck, h, bp, _, _ := buildState(t, 200)
	keys := []string{testKey, "abcdabcdabcdabcdabcdabcdabcdabcd"}
	for _, k := range keys {
		w, err := st.Create(k, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(&Window{StartReal: 1, Ckpt: ck, Mem: h, Bp: bp}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(Trailer{TotalReal: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if n, b := st.DiskStat(); n != 2 || b <= 0 {
		t.Fatalf("DiskStat = %d artifacts, %d bytes; want 2, >0", n, b)
	}
	if !st.Remove(keys[0]) {
		t.Fatal("Remove of existing artifact = false")
	}
	if st.Remove(keys[0]) {
		t.Fatal("second Remove = true")
	}
	if n, _ := st.DiskStat(); n != 1 {
		t.Fatalf("DiskStat after remove = %d, want 1", n)
	}
	if m := st.Metrics(); m.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", m.Evicted)
	}
}

// TestAbortLeavesNoTrace: an aborted generation must leave neither the
// artifact nor temp litter behind.
func TestAbortLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ck, h, bp, _, _ := buildState(t, 200)
	w, err := st.Create(testKey, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Window{StartReal: 1, Ckpt: ck, Mem: h, Bp: bp}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if st.Has(testKey) {
		t.Fatal("aborted artifact published")
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "gen-*"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestLockSerializes: two claimants of one key must never hold the
// generation lock at once.
func TestLockSerializes(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var inside, maxInside int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock := st.Lock(testKey)
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			mu.Lock()
			inside--
			mu.Unlock()
			unlock()
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("lock admitted %d holders at once", maxInside)
	}
	st.genMu.Lock()
	leak := len(st.gen)
	st.genMu.Unlock()
	if leak != 0 {
		t.Errorf("%d key locks leaked after release", leak)
	}
}
