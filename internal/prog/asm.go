package prog

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// The textual assembly format ("sdasm") round-trips programs through the
// command-line tools: sdiqgen emits it, sdiqc reads it, analyses, inserts
// hints, and writes it back. The grammar, one directive or instruction per
// line ('#' starts a comment):
//
//	program NAME
//	database ADDR
//	data W0 W1 ...            (append words to the data segment)
//	datazero N                (append N zero words)
//	proc NAME [lib] [entry]
//	LABEL:
//	  OP operands [!iq=N]
//	endproc
//
// Operand syntax mirrors Inst.String: "ld r1, 8(r2)", "st r3, 0(r2)",
// "beq r1, r2, LABEL", "call name", "hint 12", "li r1, 42",
// "addi r1, r2, 4", "add r1, r2, r3".

// WriteAsm writes the program in sdasm form.
func WriteAsm(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "program %s\n", p.Name)
	if p.DataBase != DefaultDataBase {
		fmt.Fprintf(bw, "database %d\n", p.DataBase)
	}
	writeData(bw, p.Data)
	for _, pr := range p.Procs {
		attrs := ""
		if pr.IsLib {
			attrs += " lib"
		}
		if pr.ID == p.Entry {
			attrs += " entry"
		}
		fmt.Fprintf(bw, "\nproc %s%s\n", pr.Name, attrs)
		labels := blockLabels(pr)
		for _, b := range pr.Blocks {
			if labels[b.ID] != "" {
				fmt.Fprintf(bw, "%s:\n", labels[b.ID])
			}
			for i := range b.Insts {
				fmt.Fprintf(bw, "  %s\n", formatInst(p, pr, &b.Insts[i], labels))
			}
		}
		fmt.Fprintf(bw, "endproc\n")
	}
	return bw.Flush()
}

func writeData(w io.Writer, data []int64) {
	// Runs of zeros compress to datazero; other words print 8 per line.
	i := 0
	for i < len(data) {
		if data[i] == 0 {
			j := i
			for j < len(data) && data[j] == 0 {
				j++
			}
			if j-i >= 4 {
				fmt.Fprintf(w, "datazero %d\n", j-i)
				i = j
				continue
			}
		}
		var line []string
		for len(line) < 8 && i < len(data) {
			if data[i] == 0 && len(line) == 0 {
				break
			}
			line = append(line, strconv.FormatInt(data[i], 10))
			i++
		}
		if len(line) == 0 {
			line = append(line, "0")
			i++
		}
		fmt.Fprintf(w, "data %s\n", strings.Join(line, " "))
	}
}

func blockLabels(pr *Proc) []string {
	labels := make([]string, len(pr.Blocks))
	need := make([]bool, len(pr.Blocks))
	need[0] = true
	for _, b := range pr.Blocks {
		last := b.Last()
		if last != nil && (last.Op.IsBranch() || last.Op == isa.Jmp) {
			need[last.Target] = true
		}
	}
	for i, b := range pr.Blocks {
		switch {
		case b.Label != "":
			labels[i] = b.Label
		case need[i]:
			labels[i] = fmt.Sprintf(".B%d", i)
		}
	}
	return labels
}

func formatInst(p *Program, pr *Proc, in *Inst, labels []string) string {
	tagSuffix := ""
	if in.Hint != 0 && in.Op != isa.HintNop {
		tagSuffix = fmt.Sprintf(" !iq=%d", in.Hint)
	}
	switch {
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %s%s", in.Op, in.Src1, in.Src2, labels[in.Target], tagSuffix)
	case in.Op == isa.Jmp:
		return fmt.Sprintf("jmp %s%s", labels[in.Target], tagSuffix)
	case in.Op.IsCall():
		return fmt.Sprintf("%s %s%s", in.Op, p.Procs[in.Target].Name, tagSuffix)
	default:
		return in.String()
	}
}

var labelRE = regexp.MustCompile(`^([.\w$]+):$`)

// MaxDataWords bounds a parsed program's data segment (32 MiB of
// words). Generated programs sit far below it; it exists so a hostile
// or corrupt "datazero N" line cannot allocate unbounded memory during
// parsing (found by fuzzing).
const MaxDataWords = 1 << 22

// ParseAsm parses an sdasm program.
func ParseAsm(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	name := "a.sdasm"
	var data []int64
	dataBase := DefaultDataBase
	inProc := false
	lineNo := 0
	fail := func(format string, args ...any) (*Program, error) {
		return nil, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return fail("program needs a name")
			}
			name = fields[1]
		case "database":
			if len(fields) != 2 {
				return fail("database needs an address")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return fail("bad database: %v", err)
			}
			dataBase = v
		case "data":
			for _, f := range fields[1:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fail("bad data word %q: %v", f, err)
				}
				data = append(data, v)
			}
			if len(data) > MaxDataWords {
				return fail("data segment exceeds %d words", MaxDataWords)
			}
		case "datazero":
			if len(fields) != 2 {
				return fail("datazero needs a count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return fail("bad datazero count %q", fields[1])
			}
			if n > MaxDataWords-len(data) { // overflow-safe form of len(data)+n > max
				return fail("data segment exceeds %d words", MaxDataWords)
			}
			data = append(data, make([]int64, n)...)
		case "proc":
			if len(fields) < 2 {
				return fail("proc needs a name")
			}
			if b == nil {
				b = NewBuilder(name)
			}
			isLib, isEntry := false, false
			for _, a := range fields[2:] {
				switch a {
				case "lib":
					isLib = true
				case "entry":
					isEntry = true
				default:
					return fail("unknown proc attribute %q", a)
				}
			}
			if isLib {
				b.LibProc(fields[1])
			} else {
				b.Proc(fields[1])
			}
			if isEntry {
				b.Entry()
			}
			inProc = true
		case "endproc":
			inProc = false
		default:
			if !inProc {
				return fail("instruction outside proc: %q", line)
			}
			if m := labelRE.FindStringSubmatch(line); m != nil {
				b.Label(m[1])
				continue
			}
			if err := parseInst(b, line); err != nil {
				return fail("%v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("no procedures in input")
	}
	b.SetData(data)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	p.DataBase = dataBase
	return p, nil
}

var memRE = regexp.MustCompile(`^(-?\d+)\((r\d+|f\d+)\)$`)

func parseInst(b *Builder, line string) error {
	// Split off an !iq=N tag suffix.
	hint := 0
	if i := strings.Index(line, "!iq="); i >= 0 {
		v, err := strconv.Atoi(strings.TrimSpace(line[i+4:]))
		if err != nil {
			return fmt.Errorf("bad !iq tag in %q", line)
		}
		hint = v
		line = strings.TrimSpace(line[:i])
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown opcode %q", mnemonic)
	}
	args := splitArgs(rest)
	in := NewInst(op)
	in.Hint = hint

	reg := func(s string) (isa.Reg, error) {
		if len(s) < 2 {
			return isa.RegNone, fmt.Errorf("bad register %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= 32 {
			return isa.RegNone, fmt.Errorf("bad register %q", s)
		}
		switch s[0] {
		case 'r':
			return isa.R(n), nil
		case 'f':
			return isa.FP(n), nil
		}
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	var err error
	switch {
	case op == isa.Nop:
		if err = need(0); err != nil {
			return err
		}
		b.Emit(in)
	case op == isa.Halt:
		if err = need(0); err != nil {
			return err
		}
		b.Halt()
	case op == isa.Ret:
		if err = need(0); err != nil {
			return err
		}
		b.Ret()
	case op == isa.HintNop:
		if err = need(1); err != nil {
			return err
		}
		v, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("hint: bad value %q", args[0])
		}
		b.Hint(v)
	case op == isa.Li:
		if err = need(2); err != nil {
			return err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return err
		}
		if in.Imm, err = strconv.ParseInt(args[1], 10, 64); err != nil {
			return fmt.Errorf("li: bad immediate %q", args[1])
		}
		b.Emit(in)
	case op == isa.Mov, op == isa.FMov, op == isa.ItoF, op == isa.FtoI:
		if err = need(2); err != nil {
			return err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return err
		}
		if in.Src1, err = reg(args[1]); err != nil {
			return err
		}
		b.Emit(in)
	case op.IsLoad():
		if err = need(2); err != nil {
			return err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return err
		}
		m := memRE.FindStringSubmatch(args[1])
		if m == nil {
			return fmt.Errorf("%s: bad memory operand %q", mnemonic, args[1])
		}
		in.Imm, _ = strconv.ParseInt(m[1], 10, 64)
		if in.Src1, err = reg(m[2]); err != nil {
			return err
		}
		b.Emit(in)
	case op.IsStore():
		if err = need(2); err != nil {
			return err
		}
		if in.Src2, err = reg(args[0]); err != nil {
			return err
		}
		m := memRE.FindStringSubmatch(args[1])
		if m == nil {
			return fmt.Errorf("%s: bad memory operand %q", mnemonic, args[1])
		}
		in.Imm, _ = strconv.ParseInt(m[1], 10, 64)
		if in.Src1, err = reg(m[2]); err != nil {
			return err
		}
		b.Emit(in)
	case op.IsBranch():
		if err = need(3); err != nil {
			return err
		}
		var a, c isa.Reg
		if a, err = reg(args[0]); err != nil {
			return err
		}
		if c, err = reg(args[1]); err != nil {
			return err
		}
		switch op {
		case isa.Beq:
			b.Beq(a, c, args[2])
		case isa.Bne:
			b.Bne(a, c, args[2])
		case isa.Blt:
			b.Blt(a, c, args[2])
		case isa.Bge:
			b.Bge(a, c, args[2])
		}
		b.setLastHint(hint)
	case op == isa.Jmp:
		if err = need(1); err != nil {
			return err
		}
		b.Jmp(args[0])
		b.setLastHint(hint)
	case op.IsCall():
		if err = need(1); err != nil {
			return err
		}
		if op == isa.CallLib {
			b.CallLib(args[0])
		} else {
			b.Call(args[0])
		}
		b.setLastHint(hint)
	case op.HasImm():
		if err = need(3); err != nil {
			return err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return err
		}
		if in.Src1, err = reg(args[1]); err != nil {
			return err
		}
		if in.Imm, err = strconv.ParseInt(args[2], 10, 64); err != nil {
			return fmt.Errorf("%s: bad immediate %q", mnemonic, args[2])
		}
		b.Emit(in)
	default: // three-register ops
		if err = need(3); err != nil {
			return err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return err
		}
		if in.Src1, err = reg(args[1]); err != nil {
			return err
		}
		if in.Src2, err = reg(args[2]); err != nil {
			return err
		}
		b.Emit(in)
	}
	return nil
}

// setLastHint tags the most recently emitted instruction (used by the
// parser for terminators, which the Builder emits itself).
func (b *Builder) setLastHint(hint int) {
	if hint == 0 || b.cur == nil {
		return
	}
	blocks := b.cur.proc.Blocks
	for i := len(blocks) - 1; i >= 0; i-- {
		if n := len(blocks[i].Insts); n > 0 {
			blocks[i].Insts[n-1].Hint = hint
			return
		}
	}
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
