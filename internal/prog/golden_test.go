package prog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// TestGoldenSampleParses pins the sdasm grammar: the checked-in sample
// exercises every construct and must keep parsing as the format evolves.
func TestGoldenSampleParses(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "sample.sdasm"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := ParseAsm(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Procs) != 3 {
		t.Fatalf("procs = %d, want 3", len(p.Procs))
	}
	if p.Procs[p.Entry].Name != "main" {
		t.Errorf("entry = %q", p.Procs[p.Entry].Name)
	}
	lib := p.ProcByName("libfn")
	if lib == nil || !lib.IsLib {
		t.Error("libfn must be a library procedure")
	}
	// Data: 3 words + 8 zeros + 1 word.
	if len(p.Data) != 12 || p.Data[1] != -7 || p.Data[11] != 1 {
		t.Errorf("data = %v", p.Data)
	}
	// The hint NOOP and the !iq tag both survive.
	main := p.Procs[p.Entry]
	if main.Blocks[0].Insts[0].Op != isa.HintNop {
		t.Error("leading hint lost")
	}
	foundTag := false
	for _, blk := range main.Blocks {
		for i := range blk.Insts {
			if blk.Insts[i].Op == isa.Addi && blk.Insts[i].Hint == 12 {
				foundTag = true
			}
		}
	}
	if !foundTag {
		t.Error("!iq tag lost")
	}
	// calllib resolved to the lib proc.
	foundLibCall := false
	for _, blk := range main.Blocks {
		if last := blk.Last(); last != nil && last.Op == isa.CallLib {
			foundLibCall = true
			if p.Procs[last.Target] != lib {
				t.Error("calllib target wrong")
			}
		}
	}
	if !foundLibCall {
		t.Error("calllib lost")
	}
}

// TestGoldenSampleRoundTrips: write-out of the parsed sample must parse
// back to an identical structure (full format round trip on a file that
// exercises everything).
func TestGoldenSampleRoundTrips(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample.sdasm"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ParseAsm(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAsm(&buf, p1); err != nil {
		t.Fatal(err)
	}
	p2, err := ParseAsm(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if p1.NumInsts() != p2.NumInsts() || len(p1.Procs) != len(p2.Procs) {
		t.Fatal("round trip changed structure")
	}
	for pi := range p1.Procs {
		for bi := range p1.Procs[pi].Blocks {
			b1, b2 := p1.Procs[pi].Blocks[bi], p2.Procs[pi].Blocks[bi]
			for ii := range b1.Insts {
				a, b := b1.Insts[ii], b2.Insts[ii]
				if a.Op != b.Op || a.Dst != b.Dst || a.Src1 != b.Src1 ||
					a.Src2 != b.Src2 || a.Imm != b.Imm || a.Target != b.Target || a.Hint != b.Hint {
					t.Fatalf("proc %d block %d inst %d differs: %v vs %v", pi, bi, ii, a, b)
				}
			}
		}
	}
}
