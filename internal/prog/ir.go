// Package prog defines the machine-level intermediate representation the
// compiler passes and the simulators share: programs made of procedures,
// procedures made of basic blocks, blocks made of instructions. It plays
// the role MachineSUIF plays in the paper: the substrate on which the
// issue-queue analysis runs and into which hint NOOPs are inserted.
//
// Structural invariants (established by the builder and checked by Link):
//   - control-transfer instructions (branches, jumps, calls, returns,
//     halt) appear only as the last instruction of a block;
//   - calls terminate their block, so "the first block after a procedure
//     call" (paper section 4.1) is always a block boundary;
//   - every block's successor list is derivable from its last instruction.
package prog

import (
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
)

// Inst is one machine instruction. Target is a block index within the
// procedure for branches and jumps and a procedure index for calls.
// Hint carries an issue-queue size hint: for an isa.HintNop it is the
// NOOP's payload; for any other instruction a non-zero Hint is the
// "Extension" tag encoded in redundant ISA bits. PC is assigned by Link.
type Inst struct {
	Op         isa.Op
	Dst        isa.Reg
	Src1, Src2 isa.Reg
	Imm        int64
	Target     int
	Hint       int
	PC         int
}

// NewInst returns an instruction with no register operands.
func NewInst(op isa.Op) Inst {
	return Inst{Op: op, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Target: -1}
}

// Sources returns the architectural source registers the instruction
// actually reads (reads of the hardwired zero register are dropped, since
// they never create a dependence).
func (in *Inst) Sources() []isa.Reg {
	var out []isa.Reg
	if in.Src1.Valid() && in.Src1 != isa.RZero {
		out = append(out, in.Src1)
	}
	if in.Src2.Valid() && in.Src2 != isa.RZero {
		out = append(out, in.Src2)
	}
	return out
}

// HasDst reports whether the instruction writes an architectural register.
// Writes to the zero register are discarded and reported as no destination.
func (in *Inst) HasDst() bool { return in.Dst.Valid() && in.Dst != isa.RZero }

// Terminates reports whether the instruction must end its basic block.
func (in *Inst) Terminates() bool {
	return in.Op.IsBranch() || in.Op.IsCtrl() || in.Op == isa.Halt
}

// String formats the instruction in the textual assembly syntax.
func (in *Inst) String() string {
	s := in.Op.String()
	switch in.Op.Class() {
	case isa.ClassNop:
		if in.Op == isa.HintNop {
			return fmt.Sprintf("hint %d", in.Imm)
		}
		return s
	case isa.ClassLoad:
		s = fmt.Sprintf("%s %s, %d(%s)", s, in.Dst, in.Imm, in.Src1)
	case isa.ClassStore:
		s = fmt.Sprintf("%s %s, %d(%s)", s, in.Src2, in.Imm, in.Src1)
	case isa.ClassBranch:
		s = fmt.Sprintf("%s %s, %s, @%d", s, in.Src1, in.Src2, in.Target)
	case isa.ClassCtrl:
		switch in.Op {
		case isa.Jmp:
			s = fmt.Sprintf("jmp @%d", in.Target)
		case isa.Call, isa.CallLib:
			s = fmt.Sprintf("%s proc%d", s, in.Target)
		case isa.Ret:
			s = "ret"
		}
	case isa.ClassHalt:
		s = "halt"
	default:
		switch {
		case in.Op == isa.Li:
			s = fmt.Sprintf("li %s, %d", in.Dst, in.Imm)
		case in.Op.HasImm():
			s = fmt.Sprintf("%s %s, %s, %d", s, in.Dst, in.Src1, in.Imm)
		case in.Op == isa.Mov || in.Op == isa.FMov || in.Op == isa.ItoF || in.Op == isa.FtoI:
			s = fmt.Sprintf("%s %s, %s", s, in.Dst, in.Src1)
		default:
			s = fmt.Sprintf("%s %s, %s, %s", s, in.Dst, in.Src1, in.Src2)
		}
	}
	if in.Hint != 0 && in.Op != isa.HintNop {
		s += fmt.Sprintf(" !iq=%d", in.Hint)
	}
	return s
}

// Block is a basic block: straight-line code with a single entry at the
// top and (after Link) explicit successor and predecessor edges.
type Block struct {
	ID    int
	Label string
	Insts []Inst
	Succs []int
	Preds []int
}

// Last returns the final instruction of the block, or nil if empty.
func (b *Block) Last() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

// RealInsts counts instructions excluding hint NOOPs and plain NOOPs.
func (b *Block) RealInsts() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].Op.Class() != isa.ClassNop {
			n++
		}
	}
	return n
}

// Proc is a procedure: an ordered list of basic blocks; block 0 is the
// entry. IsLib marks an opaque library routine (paper section 4.4): its
// body is not analysed and callers allow the IQ its maximum size.
type Proc struct {
	Name   string
	ID     int
	Blocks []*Block
	IsLib  bool
}

// NumInsts returns the total instruction count of the procedure.
func (p *Proc) NumInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Program is a whole linked program plus its initial data image.
type Program struct {
	Name  string
	Procs []*Proc
	Entry int // index of the entry procedure

	// Data is the initial data segment, in 8-byte words, loaded at
	// DataBase. Word i lives at byte address DataBase + 8*i.
	Data     []int64
	DataBase uint64

	linked bool

	// decoded is an opaque per-link cache slot for execution engines
	// (the emulator stashes its decoded dispatch table here so every
	// emulator over this program shares one decode pass). Link clears
	// it: any structural change invalidates a derived table.
	decoded atomic.Pointer[any]
}

// DefaultDataBase is where the data segment is loaded when the program
// does not choose its own base.
const DefaultDataBase uint64 = 0x1_0000

// New returns an empty program.
func New(name string) *Program {
	return &Program{Name: name, Entry: -1, DataBase: DefaultDataBase}
}

// AddProc appends a procedure and returns its index.
func (p *Program) AddProc(pr *Proc) int {
	pr.ID = len(p.Procs)
	p.Procs = append(p.Procs, pr)
	return pr.ID
}

// ProcByName returns the procedure with the given name, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// NumInsts returns the total static instruction count.
func (p *Program) NumInsts() int {
	n := 0
	for _, pr := range p.Procs {
		n += pr.NumInsts()
	}
	return n
}

// Linked reports whether Link has succeeded on this program.
func (p *Program) Linked() bool { return p.linked }

// Decoded returns the value stashed by SetDecoded since the last Link,
// or nil. The program itself attaches no meaning to it.
func (p *Program) Decoded() any {
	if v := p.decoded.Load(); v != nil {
		return *v
	}
	return nil
}

// SetDecoded stashes a value derived from the linked program (e.g. a
// decoded dispatch table). Concurrent stores are safe; the slot holds
// whichever lands last, and Link discards it.
func (p *Program) SetDecoded(v any) { p.decoded.Store(&v) }

// Link validates the program, assigns PCs (4 bytes per instruction,
// procedures laid out in order), and computes successor/predecessor edges.
// It must be called after any structural change and before emulation.
func (p *Program) Link() error {
	p.decoded.Store(nil)
	if p.Entry < 0 || p.Entry >= len(p.Procs) {
		return fmt.Errorf("prog %q: entry procedure %d out of range", p.Name, p.Entry)
	}
	pc := 0
	for _, pr := range p.Procs {
		if len(pr.Blocks) == 0 {
			return fmt.Errorf("proc %q: no blocks", pr.Name)
		}
		for bi, b := range pr.Blocks {
			b.ID = bi
			b.Succs = b.Succs[:0]
			b.Preds = b.Preds[:0]
			if len(b.Insts) == 0 {
				return fmt.Errorf("proc %q block %d: empty basic block", pr.Name, bi)
			}
			for ii := range b.Insts {
				in := &b.Insts[ii]
				in.PC = pc
				pc += isa.InstBytes
				if in.Terminates() && ii != len(b.Insts)-1 {
					return fmt.Errorf("proc %q block %d inst %d (%s): control transfer not at block end",
						pr.Name, bi, ii, in)
				}
				if err := p.checkTargets(pr, in); err != nil {
					return fmt.Errorf("proc %q block %d inst %d: %w", pr.Name, bi, ii, err)
				}
			}
		}
	}
	// Successor edges from terminators; fallthrough to the next block.
	for _, pr := range p.Procs {
		for bi, b := range pr.Blocks {
			last := b.Last()
			switch {
			case last.Op.IsBranch():
				b.Succs = append(b.Succs, last.Target)
				if bi+1 >= len(pr.Blocks) {
					return fmt.Errorf("proc %q block %d: branch falls off procedure end", pr.Name, bi)
				}
				if last.Target != bi+1 {
					b.Succs = append(b.Succs, bi+1)
				}
			case last.Op == isa.Jmp:
				b.Succs = append(b.Succs, last.Target)
			case last.Op == isa.Ret, last.Op == isa.Halt:
				// no intra-procedure successors
			default:
				// Calls and plain fallthrough continue at the next block.
				if bi+1 >= len(pr.Blocks) {
					return fmt.Errorf("proc %q block %d: falls off procedure end", pr.Name, bi)
				}
				b.Succs = append(b.Succs, bi+1)
			}
		}
		for _, b := range pr.Blocks {
			for _, s := range b.Succs {
				pr.Blocks[s].Preds = append(pr.Blocks[s].Preds, b.ID)
			}
		}
	}
	p.linked = true
	return nil
}

func (p *Program) checkTargets(pr *Proc, in *Inst) error {
	switch {
	case in.Op.IsBranch() || in.Op == isa.Jmp:
		if in.Target < 0 || in.Target >= len(pr.Blocks) {
			return fmt.Errorf("%s: block target %d out of range", in, in.Target)
		}
	case in.Op.IsCall():
		if in.Target < 0 || in.Target >= len(p.Procs) {
			return fmt.Errorf("%s: proc target %d out of range", in, in.Target)
		}
	}
	return nil
}

// PCOf returns the PC of the first instruction of the given block.
func (p *Program) PCOf(procID, blockID int) int {
	return p.Procs[procID].Blocks[blockID].Insts[0].PC
}
