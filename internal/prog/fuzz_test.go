// Differential fuzzing of the sdasm toolchain: any text the parser
// accepts must survive the whole pipeline the real tools run — print
// and reparse (sdiqgen | sdiqc), instrument (sdiqc), and execute — and
// the detailed out-of-order core must retire exactly the dynamic
// instruction stream the architectural emulator produces. The oracle
// needs no golden files: the emulator is the reference.
//
// Run locally with:
//
//	go test ./internal/prog -fuzz FuzzAsmDifferential -fuzztime 30s
//
// CI runs a 10-second smoke on every push; the committed seed corpus
// under testdata/fuzz/ keeps the interesting shapes (loops, calls,
// hints, data) in play from the first input.
package prog_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/sim"
)

// fuzz caps: bound one input's work so the fuzzer spends its time on
// coverage, not on a single giant program.
const (
	fuzzMaxSrc   = 1 << 16 // input text bytes
	fuzzMaxInsts = 2_000   // static instructions
	fuzzMaxData  = 1 << 14 // data words
	fuzzTraceCap = 4_000   // dynamic records examined per program
)

func FuzzAsmDifferential(f *testing.F) {
	f.Add(`program tiny
proc main entry
  li r1, 5
  add r2, r1, r1
  halt
endproc
`)
	f.Add(`program loop
data 1 2 3 4 5 6 7 8
datazero 8
proc main entry
  li r1, 0
  li r2, 8
.L:
  ld r3, 0(r1)
  add r4, r4, r3
  st r4, 64(r1)
  addi r1, r1, 8
  blt r1, r2, .L
  halt
endproc
`)
	f.Add(`program calls
proc helper lib
  mul r5, r5, r5
  ret
endproc
proc main entry
  hint 12
  li r5, 3
  call helper
  calllib helper
  add r6, r5, r5 !iq=7
  jmp .done
.done:
  halt
endproc
`)
	f.Add(`program spin
proc main entry
  li r1, 1
.top:
  addi r2, r2, 1
  bne r2, r1, .top
  halt
endproc
`)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > fuzzMaxSrc {
			return
		}
		p, err := prog.ParseAsm(strings.NewReader(src))
		if err != nil {
			return // rejecting bad input cleanly is the contract
		}
		if p.NumInsts() == 0 || p.NumInsts() > fuzzMaxInsts || len(p.Data) > fuzzMaxData {
			return
		}

		// Print → reparse: the writer must emit text the parser takes
		// back, for any program the parser accepted in the first place.
		var buf bytes.Buffer
		if err := prog.WriteAsm(&buf, p); err != nil {
			t.Fatalf("WriteAsm failed on parsed program: %v\ninput:\n%s", err, src)
		}
		p2, err := prog.ParseAsm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of printed program failed: %v\nprinted:\n%s\ninput:\n%s",
				err, buf.String(), src)
		}

		// The raw program and an sdiqc-instrumented copy must both
		// retire identically on emulator and core.
		diffRetirement(t, p, "raw")
		if _, err := core.Instrument(p2, core.Options{Mode: core.ModeNOOP}); err == nil {
			diffRetirement(t, p2, "instrumented")
		}
	})
}

// diffRetirement runs p on the architectural emulator and on the
// detailed core and requires identical retirement: same committed real
// instruction count, same hint-NOP count — for halting programs over
// the whole run, for non-halting ones over a fixed budget.
func diffRetirement(t *testing.T, p *prog.Program, label string) {
	t.Helper()
	e, err := emu.New(p)
	if err != nil {
		return // e.g. unlinked after a failed transform; nothing to compare
	}
	var realN, hintN, total int64
	halted := false
	for total < fuzzTraceCap {
		d, ok := e.Next()
		if !ok {
			halted = true
			break
		}
		total++
		if d.Op == isa.HintNop {
			hintN++
		} else {
			realN++
		}
	}

	// A generous hang ceiling: no legal program averages 400 cycles per
	// instruction on the default machine (worst chains of memory misses
	// sit far below), so hitting it means the core stopped retiring.
	hangCycles := total*400 + 100_000

	cfg := sim.DefaultConfig()
	if halted {
		cfg.MaxCycles = hangCycles
		st, err := sim.RunProgram(cfg, p, 0)
		if err != nil {
			t.Fatalf("%s: core failed on emulatable program: %v", label, err)
		}
		if st.Cycles >= hangCycles {
			t.Fatalf("%s: core hung: %d cycles without finishing %d-inst program",
				label, st.Cycles, total)
		}
		if st.CommittedReal != realN || st.CommittedHints != hintN {
			t.Fatalf("%s: retirement diverges: core %d real + %d hints, emulator %d real + %d hints",
				label, st.CommittedReal, st.CommittedHints, realN, hintN)
		}
		return
	}

	// Non-halting program: fixed real-instruction budget; the core must
	// commit exactly the budget unless it hit the cycle ceiling (which
	// the emulator-side count makes impossible for sane programs).
	if realN == 0 {
		return // nothing but hint NOOPs forever; no budget can close it
	}
	budget := realN / 2
	if budget == 0 {
		budget = 1
	}
	cfg.MaxCycles = hangCycles
	st, err := sim.RunProgram(cfg, p, budget)
	if err != nil {
		t.Fatalf("%s: core failed on emulatable program: %v", label, err)
	}
	if st.Cycles >= hangCycles {
		t.Fatalf("%s: core hung at budget %d: %d cycles, %d committed",
			label, budget, st.Cycles, st.CommittedReal)
	}
	if st.CommittedReal != budget {
		t.Fatalf("%s: budgeted run committed %d real instructions, want exactly %d",
			label, st.CommittedReal, budget)
	}
}
