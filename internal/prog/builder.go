package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Builder assembles a Program procedure by procedure with symbolic labels
// and symbolic procedure names; Build resolves both and links the result.
// The builder enforces the IR invariants: emitting a control transfer
// closes the current block, so calls and branches always end blocks.
type Builder struct {
	prog    *Program
	cur     *procBuilder
	pending []*procBuilder
	errs    []error
}

type procBuilder struct {
	proc      *Proc
	curBlock  *Block
	labels    map[string]int // label -> block index
	fixups    []fixup        // branch/jmp label references
	callSites []callSite     // call name references
	autoLabel int
}

type fixup struct {
	block, inst int
	label       string
}

type callSite struct {
	block, inst int
	name        string
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: New(name)}
}

// SetData installs the initial data segment (8-byte words at DataBase).
func (b *Builder) SetData(words []int64) { b.prog.Data = words }

// AppendData appends words to the data segment and returns the byte
// address of the first appended word.
func (b *Builder) AppendData(words ...int64) uint64 {
	addr := b.prog.DataBase + 8*uint64(len(b.prog.Data))
	b.prog.Data = append(b.prog.Data, words...)
	return addr
}

// Proc starts a new procedure. Subsequent instruction emissions go to it
// until the next Proc call. The first block is created implicitly.
func (b *Builder) Proc(name string) *Builder {
	b.finishProc()
	pb := &procBuilder{
		proc:   &Proc{Name: name},
		labels: map[string]int{},
	}
	b.cur = pb
	b.pending = append(b.pending, pb)
	b.startBlock("")
	return b
}

// LibProc starts a new procedure marked as an opaque library routine.
func (b *Builder) LibProc(name string) *Builder {
	b.Proc(name)
	b.cur.proc.IsLib = true
	return b
}

// Entry marks the procedure being built as the program entry point.
func (b *Builder) Entry() *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Entry: no current procedure"))
		return b
	}
	b.prog.Entry = len(b.prog.Procs) + indexOf(b.pending, b.cur)
	return b
}

func indexOf(s []*procBuilder, pb *procBuilder) int {
	for i, x := range s {
		if x == pb {
			return i
		}
	}
	return -1
}

func (b *Builder) finishProc() {
	if b.cur != nil && b.cur.curBlock != nil && len(b.cur.curBlock.Insts) == 0 {
		// Trailing empty block from a terminator: drop it unless labelled.
		if b.cur.curBlock.Label == "" && len(b.cur.proc.Blocks) > 1 {
			b.cur.proc.Blocks = b.cur.proc.Blocks[:len(b.cur.proc.Blocks)-1]
		}
	}
	b.cur = nil
}

func (b *Builder) startBlock(label string) {
	pb := b.cur
	blk := &Block{ID: len(pb.proc.Blocks), Label: label}
	pb.proc.Blocks = append(pb.proc.Blocks, blk)
	pb.curBlock = blk
	if label != "" {
		if _, dup := pb.labels[label]; dup {
			b.errs = append(b.errs, fmt.Errorf("proc %q: duplicate label %q", pb.proc.Name, label))
		}
		pb.labels[label] = blk.ID
	}
}

// Label starts a new basic block with the given label. If the current
// block is empty and unlabelled it is reused (so a Label directly after a
// terminator does not create an empty block).
func (b *Builder) Label(name string) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Label %q: no current procedure", name))
		return b
	}
	cb := b.cur.curBlock
	if cb != nil && len(cb.Insts) == 0 && cb.Label == "" {
		cb.Label = name
		if _, dup := b.cur.labels[name]; dup {
			b.errs = append(b.errs, fmt.Errorf("proc %q: duplicate label %q", b.cur.proc.Name, name))
		}
		b.cur.labels[name] = cb.ID
		return b
	}
	b.startBlock(name)
	return b
}

// Emit appends a raw instruction, handling block termination.
func (b *Builder) Emit(in Inst) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Emit %s: no current procedure", in.Op))
		return b
	}
	if b.cur.curBlock == nil {
		b.startBlock("")
	}
	b.cur.curBlock.Insts = append(b.cur.curBlock.Insts, in)
	if in.Terminates() {
		b.startBlock("")
	}
	return b
}

func (b *Builder) emit3(op isa.Op, dst, s1, s2 isa.Reg) *Builder {
	in := NewInst(op)
	in.Dst, in.Src1, in.Src2 = dst, s1, s2
	return b.Emit(in)
}

func (b *Builder) emitImm(op isa.Op, dst, s1 isa.Reg, imm int64) *Builder {
	in := NewInst(op)
	in.Dst, in.Src1, in.Imm = dst, s1, imm
	return b.Emit(in)
}

// Li emits dst = imm.
func (b *Builder) Li(dst isa.Reg, imm int64) *Builder {
	return b.emitImm(isa.Li, dst, isa.RegNone, imm)
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src isa.Reg) *Builder { return b.emit3(isa.Mov, dst, src, isa.RegNone) }

// Add emits dst = a + b2.
func (b *Builder) Add(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Add, dst, a, b2) }

// Sub emits dst = a - b2.
func (b *Builder) Sub(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Sub, dst, a, b2) }

// And emits dst = a & b2.
func (b *Builder) And(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.And, dst, a, b2) }

// Or emits dst = a | b2.
func (b *Builder) Or(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Or, dst, a, b2) }

// Xor emits dst = a ^ b2.
func (b *Builder) Xor(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Xor, dst, a, b2) }

// Shl emits dst = a << b2.
func (b *Builder) Shl(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Shl, dst, a, b2) }

// Shr emits dst = a >> b2.
func (b *Builder) Shr(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Shr, dst, a, b2) }

// Slt emits dst = (a < b2).
func (b *Builder) Slt(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Slt, dst, a, b2) }

// Mul emits dst = a * b2.
func (b *Builder) Mul(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Mul, dst, a, b2) }

// Div emits dst = a / b2.
func (b *Builder) Div(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Div, dst, a, b2) }

// Rem emits dst = a % b2.
func (b *Builder) Rem(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.Rem, dst, a, b2) }

// Addi emits dst = a + imm.
func (b *Builder) Addi(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Addi, dst, a, imm) }

// Andi emits dst = a & imm.
func (b *Builder) Andi(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Andi, dst, a, imm) }

// Xori emits dst = a ^ imm.
func (b *Builder) Xori(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Xori, dst, a, imm) }

// Shli emits dst = a << imm.
func (b *Builder) Shli(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Shli, dst, a, imm) }

// Shri emits dst = a >> imm.
func (b *Builder) Shri(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Shri, dst, a, imm) }

// Slti emits dst = (a < imm).
func (b *Builder) Slti(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Slti, dst, a, imm) }

// Muli emits dst = a * imm.
func (b *Builder) Muli(dst, a isa.Reg, imm int64) *Builder { return b.emitImm(isa.Muli, dst, a, imm) }

// FAdd emits dst = a + b2 (fp).
func (b *Builder) FAdd(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.FAdd, dst, a, b2) }

// FSub emits dst = a - b2 (fp).
func (b *Builder) FSub(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.FSub, dst, a, b2) }

// FMul emits dst = a * b2 (fp).
func (b *Builder) FMul(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.FMul, dst, a, b2) }

// FDiv emits dst = a / b2 (fp).
func (b *Builder) FDiv(dst, a, b2 isa.Reg) *Builder { return b.emit3(isa.FDiv, dst, a, b2) }

// ItoF emits dst(fp) = float(a).
func (b *Builder) ItoF(dst, a isa.Reg) *Builder { return b.emit3(isa.ItoF, dst, a, isa.RegNone) }

// FtoI emits dst(int) = int(a).
func (b *Builder) FtoI(dst, a isa.Reg) *Builder { return b.emit3(isa.FtoI, dst, a, isa.RegNone) }

// Ld emits dst = mem[base+off].
func (b *Builder) Ld(dst, base isa.Reg, off int64) *Builder { return b.emitImm(isa.Ld, dst, base, off) }

// LdF emits dst(fp) = mem[base+off].
func (b *Builder) LdF(dst, base isa.Reg, off int64) *Builder {
	return b.emitImm(isa.LdF, dst, base, off)
}

// St emits mem[base+off] = val.
func (b *Builder) St(val, base isa.Reg, off int64) *Builder {
	in := NewInst(isa.St)
	in.Src1, in.Src2, in.Imm = base, val, off
	return b.Emit(in)
}

// StF emits mem[base+off] = val (fp).
func (b *Builder) StF(val, base isa.Reg, off int64) *Builder {
	in := NewInst(isa.StF)
	in.Src1, in.Src2, in.Imm = base, val, off
	return b.Emit(in)
}

// Nop emits a plain NOOP.
func (b *Builder) Nop() *Builder { return b.Emit(NewInst(isa.Nop)) }

// Hint emits a special hint NOOP carrying a max_new_range value.
func (b *Builder) Hint(entries int) *Builder {
	in := NewInst(isa.HintNop)
	in.Imm = int64(entries)
	in.Hint = entries
	return b.Emit(in)
}

func (b *Builder) branch(op isa.Op, a, b2 isa.Reg, label string) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("branch: no current procedure"))
		return b
	}
	in := NewInst(op)
	in.Src1, in.Src2 = a, b2
	pb := b.cur
	blk := pb.curBlock
	pb.fixups = append(pb.fixups, fixup{blk.ID, len(blk.Insts), label})
	return b.Emit(in)
}

// Beq emits: if a == b2 goto label.
func (b *Builder) Beq(a, b2 isa.Reg, label string) *Builder { return b.branch(isa.Beq, a, b2, label) }

// Bne emits: if a != b2 goto label.
func (b *Builder) Bne(a, b2 isa.Reg, label string) *Builder { return b.branch(isa.Bne, a, b2, label) }

// Blt emits: if a < b2 goto label.
func (b *Builder) Blt(a, b2 isa.Reg, label string) *Builder { return b.branch(isa.Blt, a, b2, label) }

// Bge emits: if a >= b2 goto label.
func (b *Builder) Bge(a, b2 isa.Reg, label string) *Builder { return b.branch(isa.Bge, a, b2, label) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.branch(isa.Jmp, isa.RegNone, isa.RegNone, label)
}

// Call emits a call to the named procedure (resolved at Build).
func (b *Builder) Call(name string) *Builder { return b.callOp(isa.Call, name) }

// CallLib emits a call marked as a library call.
func (b *Builder) CallLib(name string) *Builder { return b.callOp(isa.CallLib, name) }

func (b *Builder) callOp(op isa.Op, name string) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("call %q: no current procedure", name))
		return b
	}
	in := NewInst(op)
	pb := b.cur
	blk := pb.curBlock
	pb.callSites = append(pb.callSites, callSite{blk.ID, len(blk.Insts), name})
	return b.Emit(in)
}

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.Emit(NewInst(isa.Ret)) }

// Halt emits program termination.
func (b *Builder) Halt() *Builder { return b.Emit(NewInst(isa.Halt)) }

// Build resolves labels and call targets, links the program, and returns
// it. It fails if any label or procedure name is unresolved or any IR
// invariant is violated.
func (b *Builder) Build() (*Program, error) {
	b.finishProc()
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	// Install procedures, then resolve names.
	for _, pb := range b.pending {
		b.prog.AddProc(pb.proc)
	}
	byName := map[string]int{}
	for _, pr := range b.prog.Procs {
		if _, dup := byName[pr.Name]; dup {
			return nil, fmt.Errorf("duplicate procedure %q", pr.Name)
		}
		byName[pr.Name] = pr.ID
	}
	for _, pb := range b.pending {
		for _, f := range pb.fixups {
			tgt, ok := pb.labels[f.label]
			if !ok {
				return nil, fmt.Errorf("proc %q: undefined label %q", pb.proc.Name, f.label)
			}
			pb.proc.Blocks[f.block].Insts[f.inst].Target = tgt
		}
		for _, c := range pb.callSites {
			tgt, ok := byName[c.name]
			if !ok {
				return nil, fmt.Errorf("proc %q: call to undefined procedure %q", pb.proc.Name, c.name)
			}
			pb.proc.Blocks[c.block].Insts[c.inst].Target = tgt
		}
	}
	if b.prog.Entry < 0 {
		if main := b.prog.ProcByName("main"); main != nil {
			b.prog.Entry = main.ID
		} else {
			b.prog.Entry = 0
		}
	}
	if err := b.prog.Link(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// input is program-controlled.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
