package prog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildCountdown builds a tiny two-proc program used by several tests:
// main initialises r1 and loops calling helper until r1 reaches zero.
func buildCountdown(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("countdown")
	b.Proc("main").Entry().
		Li(isa.R(1), 10).
		Li(isa.R(2), 0).
		Label("loop").
		Call("helper").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.R(2), "loop").
		Halt()
	b.Proc("helper").
		Addi(isa.R(3), isa.R(3), 1).
		Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBasicStructure(t *testing.T) {
	p := buildCountdown(t)
	if len(p.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(p.Procs))
	}
	main := p.Procs[p.Entry]
	if main.Name != "main" {
		t.Fatalf("entry proc = %q, want main", main.Name)
	}
	// Blocks: [li;li] [call] [addi;bne] [halt].
	if got := len(main.Blocks); got != 4 {
		for _, blk := range main.Blocks {
			t.Logf("block %d label=%q insts=%d", blk.ID, blk.Label, len(blk.Insts))
		}
		t.Fatalf("main blocks = %d, want 4", got)
	}
	if main.Blocks[1].Last().Op != isa.Call {
		t.Errorf("block 1 must end in call, got %v", main.Blocks[1].Last().Op)
	}
	// Call must terminate its block (paper section 4.1 requires DAG
	// boundaries at calls).
	if len(main.Blocks[1].Insts) != 1 {
		t.Errorf("call block has %d insts, want 1", len(main.Blocks[1].Insts))
	}
}

func TestLinkEdges(t *testing.T) {
	p := buildCountdown(t)
	main := p.Procs[p.Entry]
	// Block 2 ends with bne -> loop header (block 1) and fallthrough (3).
	b2 := main.Blocks[2]
	if len(b2.Succs) != 2 || b2.Succs[0] != 1 || b2.Succs[1] != 3 {
		t.Errorf("bne succs = %v, want [1 3]", b2.Succs)
	}
	// Loop header preds: entry block and the branch block.
	b1 := main.Blocks[1]
	if len(b1.Preds) != 2 {
		t.Errorf("loop header preds = %v, want 2 entries", b1.Preds)
	}
	// PCs strictly increase by 4 across the program.
	prev := -isa.InstBytes
	for _, pr := range p.Procs {
		for _, blk := range pr.Blocks {
			for i := range blk.Insts {
				if blk.Insts[i].PC != prev+isa.InstBytes {
					t.Fatalf("PC %d after %d", blk.Insts[i].PC, prev)
				}
				prev = blk.Insts[i].PC
			}
		}
	}
}

func TestLinkRejectsMidBlockTerminator(t *testing.T) {
	p := New("bad")
	pr := &Proc{Name: "main"}
	blk := &Block{}
	ret := NewInst(isa.Ret)
	add := NewInst(isa.Add)
	add.Dst, add.Src1, add.Src2 = isa.R(1), isa.R(2), isa.R(3)
	blk.Insts = []Inst{ret, add}
	pr.Blocks = []*Block{blk}
	p.AddProc(pr)
	p.Entry = 0
	if err := p.Link(); err == nil {
		t.Fatal("Link accepted a mid-block terminator")
	}
}

func TestLinkRejectsFallOffEnd(t *testing.T) {
	p := New("bad")
	pr := &Proc{Name: "main"}
	add := NewInst(isa.Add)
	add.Dst, add.Src1, add.Src2 = isa.R(1), isa.R(2), isa.R(3)
	pr.Blocks = []*Block{{Insts: []Inst{add}}}
	p.AddProc(pr)
	p.Entry = 0
	if err := p.Link(); err == nil {
		t.Fatal("Link accepted a block falling off the procedure end")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("x")
	b.Proc("main").Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Build err = %v, want undefined label", err)
	}
}

func TestBuilderUndefinedCall(t *testing.T) {
	b := NewBuilder("x")
	b.Proc("main").Call("ghost").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Build err = %v, want undefined procedure", err)
	}
}

func TestBuilderDuplicateProc(t *testing.T) {
	b := NewBuilder("x")
	b.Proc("main").Halt()
	b.Proc("main").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted duplicate procedure names")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("x")
	b.Proc("main").Label("a").Nop().Label("a").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted duplicate labels")
	}
}

func TestSourcesSkipZeroRegister(t *testing.T) {
	in := NewInst(isa.Add)
	in.Dst, in.Src1, in.Src2 = isa.R(1), isa.RZero, isa.R(2)
	srcs := in.Sources()
	if len(srcs) != 1 || srcs[0] != isa.R(2) {
		t.Errorf("Sources = %v, want [r2]", srcs)
	}
	in.Dst = isa.RZero
	if in.HasDst() {
		t.Error("write to r0 must report no destination")
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("d")
	addr0 := b.AppendData(1, 2, 3)
	addr1 := b.AppendData(9)
	if addr0 != DefaultDataBase {
		t.Errorf("first append at %#x, want %#x", addr0, DefaultDataBase)
	}
	if addr1 != DefaultDataBase+24 {
		t.Errorf("second append at %#x, want %#x", addr1, DefaultDataBase+24)
	}
	b.Proc("main").Halt()
	p := b.MustBuild()
	if len(p.Data) != 4 || p.Data[3] != 9 {
		t.Errorf("data = %v", p.Data)
	}
}

func TestAsmRoundTrip(t *testing.T) {
	p := buildCountdown(t)
	p.Data = []int64{5, 0, 0, 0, 0, 0, 7}
	var buf bytes.Buffer
	if err := WriteAsm(&buf, p); err != nil {
		t.Fatalf("WriteAsm: %v", err)
	}
	q, err := ParseAsm(&buf)
	if err != nil {
		t.Fatalf("ParseAsm: %v\n%s", err, buf.String())
	}
	if q.NumInsts() != p.NumInsts() {
		t.Fatalf("round trip insts %d != %d", q.NumInsts(), p.NumInsts())
	}
	if len(q.Procs) != len(p.Procs) || q.Entry != p.Entry {
		t.Fatalf("round trip procs/entry mismatch")
	}
	for pi, pr := range p.Procs {
		qr := q.Procs[pi]
		if len(qr.Blocks) != len(pr.Blocks) {
			t.Fatalf("proc %s: blocks %d != %d", pr.Name, len(qr.Blocks), len(pr.Blocks))
		}
		for bi, blk := range pr.Blocks {
			qb := qr.Blocks[bi]
			if len(qb.Insts) != len(blk.Insts) {
				t.Fatalf("proc %s block %d: insts %d != %d", pr.Name, bi, len(qb.Insts), len(blk.Insts))
			}
			for ii := range blk.Insts {
				a, bb := blk.Insts[ii], qb.Insts[ii]
				if a.Op != bb.Op || a.Dst != bb.Dst || a.Src1 != bb.Src1 ||
					a.Src2 != bb.Src2 || a.Imm != bb.Imm || a.Target != bb.Target {
					t.Errorf("proc %s block %d inst %d: %v != %v", pr.Name, bi, ii, a.String(), bb.String())
				}
			}
		}
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data round trip: %d != %d words", len(q.Data), len(p.Data))
	}
	for i := range p.Data {
		if q.Data[i] != p.Data[i] {
			t.Fatalf("data[%d] = %d != %d", i, q.Data[i], p.Data[i])
		}
	}
}

func TestAsmParsesHintsAndTags(t *testing.T) {
	src := `
program t
proc main entry
  hint 12
  li r1, 5
  add r2, r1, r1 !iq=7
  st r2, 8(r1)
  ld r3, 8(r1)
  halt
endproc
`
	p, err := ParseAsm(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	insts := p.Procs[0].Blocks[0].Insts
	if insts[0].Op != isa.HintNop || insts[0].Imm != 12 {
		t.Errorf("hint parsed as %v imm=%d", insts[0].Op, insts[0].Imm)
	}
	if insts[2].Hint != 7 {
		t.Errorf("tag parsed as %d, want 7", insts[2].Hint)
	}
	if insts[3].Op != isa.St || insts[3].Src2 != isa.R(2) || insts[3].Src1 != isa.R(1) || insts[3].Imm != 8 {
		t.Errorf("store parsed wrong: %+v", insts[3])
	}
	if insts[4].Op != isa.Ld || insts[4].Dst != isa.R(3) {
		t.Errorf("load parsed wrong: %+v", insts[4])
	}
}

func TestAsmErrors(t *testing.T) {
	cases := []string{
		"proc main entry\n  bogus r1, r2\nendproc",
		"proc main entry\n  jmp nowhere\nendproc",
		"li r1, 5",
		"proc main entry\n  ld r1, r2\nendproc",
		"proc main weird\n  halt\nendproc",
		// Parser hardening (fuzz findings): bare directives and data
		// segments that would overflow or exhaust memory must error,
		// not panic. The MaxInt64 datazero exercises the overflow-safe
		// form of the size check.
		"database\nproc main entry\n  halt\nendproc",
		"datazero\nproc main entry\n  halt\nendproc",
		"datazero 4194305\nproc main entry\n  halt\nendproc",
		"data 1\ndatazero 9223372036854775807\nproc main entry\n  halt\nendproc",
	}
	for _, src := range cases {
		if _, err := ParseAsm(strings.NewReader(src)); err == nil {
			t.Errorf("ParseAsm accepted bad input %q", src)
		}
	}
}

func TestInstStringForms(t *testing.T) {
	in := NewInst(isa.HintNop)
	in.Imm = 9
	if got := in.String(); got != "hint 9" {
		t.Errorf("hint string = %q", got)
	}
	ld := NewInst(isa.Ld)
	ld.Dst, ld.Src1, ld.Imm = isa.R(3), isa.R(4), 16
	if got := ld.String(); got != "ld r3, 16(r4)" {
		t.Errorf("ld string = %q", got)
	}
	st := NewInst(isa.St)
	st.Src1, st.Src2, st.Imm = isa.R(4), isa.R(3), 0
	if got := st.String(); got != "st r3, 0(r4)" {
		t.Errorf("st string = %q", got)
	}
}
