// Package store is the campaign service's durable control plane: a
// per-campaign write-ahead log of job-state transitions plus periodic
// snapshots, so a crashed sdiqd can recover every campaign it was
// running. The layout under the state directory is
//
//	campaigns/<id>/meta.json  — immutable submission record (spec, client)
//	campaigns/<id>/wal.log    — CRC-framed JSON lines, fsync'd per append
//	campaigns/<id>/snap.json  — folded job states up to a WAL sequence
//
// Every record carries a monotone sequence number and every snapshot a
// LastSeq watermark; replay folds the snapshot first and then only WAL
// records newer than the watermark, so a crash between writing a
// snapshot and truncating the log can never resurrect stale state.
// Snapshots are taken every snapshotEvery appends (and at completion)
// and truncate the log, keeping replay O(snapshot + recent tail) rather
// than O(history). All publications use the temp-file + rename idiom so
// readers never observe torn files; a torn WAL tail (the append cut by
// the crash itself) is detected by its CRC and discarded.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/campaign"
)

const (
	metaName = "meta.json"
	walName  = "wal.log"
	snapName = "snap.json"

	// DefaultSnapshotEvery is the WAL-append count between snapshot
	// compactions when the caller passes 0.
	DefaultSnapshotEvery = 256
)

// Meta is the immutable submission record for one campaign — everything
// needed to re-expand its job set after a restart.
type Meta struct {
	ID        string        `json:"id"`
	Client    string        `json:"client,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Jobs      int           `json:"jobs"`
	Spec      campaign.Spec `json:"spec"`
}

// Record is one WAL entry: a job-state transition, or the campaign's
// terminal "done" mark.
type Record struct {
	Seq  int64               `json:"seq"`
	Type string              `json:"type"` // "job" | "done"
	Job  *campaign.JobStatus `json:"job,omitempty"`
	// Error and Finished are set on "done" records; Error carries the
	// campaign-level failure, if any.
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished,omitzero"`
}

// Record types.
const (
	RecJob  = "job"
	RecDone = "done"
)

// Snapshot is the folded state of a campaign up to WAL sequence
// LastSeq. Jobs holds the last observed status per job, in first-touch
// order (stable across snapshot/replay cycles).
type Snapshot struct {
	LastSeq  int64                `json:"last_seq"`
	Done     bool                 `json:"done,omitempty"`
	Error    string               `json:"error,omitempty"`
	Finished time.Time            `json:"finished,omitzero"`
	Jobs     []campaign.JobStatus `json:"jobs"`
}

// Store roots the durable state directory. A nil *Store (from an empty
// dir) disables durability: Create returns a nil *Log, which is safe to
// use everywhere.
type Store struct {
	dir   string // <root>/campaigns
	every int
}

// Open prepares a state store rooted at dir. An empty dir returns
// (nil, nil): durability off. snapshotEvery is the WAL-append count
// between compactions (0 means DefaultSnapshotEvery).
func Open(dir string, snapshotEvery int) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	cdir := filepath.Join(dir, "campaigns")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return nil, fmt.Errorf("store: state dir: %w", err)
	}
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	return &Store{dir: cdir, every: snapshotEvery}, nil
}

func (s *Store) campaignDir(id string) string { return filepath.Join(s.dir, id) }

// Create persists a new campaign's submission record and opens its WAL.
// A nil *Store returns (nil, nil); a nil *Log is safe to append to.
func (s *Store) Create(meta Meta) (*Log, error) {
	if s == nil {
		return nil, nil
	}
	dir := s.campaignDir(meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: campaign dir: %w", err)
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: meta: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, metaName), blob); err != nil {
		return nil, fmt.Errorf("store: meta: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	return &Log{
		dir:    dir,
		every:  s.every,
		f:      f,
		states: make(map[string]campaign.JobStatus),
	}, nil
}

// Remove deletes a campaign's durable state (registry eviction, DELETE).
func (s *Store) Remove(id string) error {
	if s == nil {
		return nil
	}
	return os.RemoveAll(s.campaignDir(id))
}

// Recovered is one campaign folded back from disk: its submission
// record plus the last observed state of every job that moved.
type Recovered struct {
	Meta Meta
	Snap Snapshot // snapshot + newer WAL records applied

	walEnd int64 // byte offset past the last intact WAL record
}

// Recover folds every campaign directory under the store. Corrupt or
// half-deleted campaigns are skipped; their problems are joined into
// the returned error while intact campaigns still come back. Results
// are sorted by campaign ID so recovery order is deterministic.
func (s *Store) Recover() ([]Recovered, error) {
	if s == nil {
		return nil, nil
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: recover: %w", err)
	}
	var out []Recovered
	var errs []error
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		rec, err := s.load(e.Name())
		if err != nil {
			errs = append(errs, fmt.Errorf("campaign %s: %w", e.Name(), err))
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	return out, errors.Join(errs...)
}

func (s *Store) load(id string) (Recovered, error) {
	dir := s.campaignDir(id)
	blob, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return Recovered{}, fmt.Errorf("meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return Recovered{}, fmt.Errorf("meta: %w", err)
	}
	if meta.ID != id {
		return Recovered{}, fmt.Errorf("meta names %q", meta.ID)
	}

	var snap Snapshot
	if blob, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		if err := json.Unmarshal(blob, &snap); err != nil {
			return Recovered{}, fmt.Errorf("snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return Recovered{}, fmt.Errorf("snapshot: %w", err)
	}

	states := make(map[string]campaign.JobStatus, len(snap.Jobs))
	var order []string
	for _, js := range snap.Jobs {
		states[js.ID] = js
		order = append(order, js.ID)
	}

	// Replay the WAL tail: records at or below the snapshot watermark
	// are stale leftovers from a crash between snapshot and truncate.
	lastSeq := snap.LastSeq
	walEnd, err := replayWAL(filepath.Join(dir, walName), func(rec Record) {
		if rec.Seq <= snap.LastSeq {
			return
		}
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		switch rec.Type {
		case RecJob:
			if rec.Job == nil {
				return
			}
			if _, seen := states[rec.Job.ID]; !seen {
				order = append(order, rec.Job.ID)
			}
			states[rec.Job.ID] = *rec.Job
		case RecDone:
			snap.Done = true
			snap.Error = rec.Error
			snap.Finished = rec.Finished
		}
	})
	if err != nil {
		return Recovered{}, err
	}

	snap.LastSeq = lastSeq
	snap.Jobs = snap.Jobs[:0]
	for _, jid := range order {
		snap.Jobs = append(snap.Jobs, states[jid])
	}
	return Recovered{Meta: meta, Snap: snap, walEnd: walEnd}, nil
}

// Resume reopens a recovered campaign's WAL for further appends. Any
// torn tail past the last intact record is truncated away first, so
// post-resume appends are never hidden behind a corrupt line.
func (s *Store) Resume(rec Recovered) (*Log, error) {
	if s == nil {
		return nil, nil
	}
	dir := s.campaignDir(rec.Meta.ID)
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: resume wal: %w", err)
	}
	if err := f.Truncate(rec.walEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: resume wal: %w", err)
	}
	if _, err := f.Seek(rec.walEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: resume wal: %w", err)
	}
	l := &Log{
		dir:    dir,
		every:  s.every,
		f:      f,
		seq:    rec.Snap.LastSeq,
		states: make(map[string]campaign.JobStatus, len(rec.Snap.Jobs)),
	}
	for _, js := range rec.Snap.Jobs {
		l.states[js.ID] = js
		l.order = append(l.order, js.ID)
	}
	return l, nil
}

// replayWAL folds every intact record of a WAL into fn and returns the
// byte offset just past the last one. A missing file is an empty log.
// The scan stops silently at the first short or corrupt line — by
// construction that is the append torn by the crash.
func replayWAL(path string, fn func(Record)) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var off int64
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// io.EOF with a partial line is a torn append; any other
			// error leaves the log readable up to here. Either way the
			// intact prefix stands.
			return off, nil
		}
		rec, ok := decodeLine(line)
		if !ok {
			return off, nil
		}
		fn(rec)
		off += int64(len(line))
	}
}

// decodeLine parses one "%08x <json>\n" WAL line, checking the CRC.
func decodeLine(line []byte) (Record, bool) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	i := bytes.IndexByte(line, ' ')
	if i != 8 {
		return Record{}, false
	}
	want, err := strconv.ParseUint(string(line[:i]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[i+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Log is one campaign's open WAL. Appends are fsync'd before returning;
// every `every` appends the log folds itself into a snapshot and
// truncates. A nil *Log discards everything (durability off).
type Log struct {
	dir   string
	every int

	mu       sync.Mutex
	f        *os.File
	seq      int64
	appends  int // since the last snapshot
	states   map[string]campaign.JobStatus
	order    []string // first-touch, for stable snapshots
	done     bool
	errMsg   string
	finished time.Time
	closed   bool
}

// JobChanged appends one job-state transition.
func (l *Log) JobChanged(js campaign.JobStatus) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: log closed")
	}
	l.seq++
	if err := l.appendLocked(Record{Seq: l.seq, Type: RecJob, Job: &js}); err != nil {
		return err
	}
	if _, seen := l.states[js.ID]; !seen {
		l.order = append(l.order, js.ID)
	}
	l.states[js.ID] = js
	return l.maybeSnapshotLocked()
}

// Done appends the campaign's terminal record and compacts, so a
// finished campaign replays from its snapshot alone.
func (l *Log) Done(errMsg string, finished time.Time) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: log closed")
	}
	l.seq++
	if err := l.appendLocked(Record{Seq: l.seq, Type: RecDone, Error: errMsg, Finished: finished}); err != nil {
		return err
	}
	l.done, l.errMsg, l.finished = true, errMsg, finished
	return l.snapshotLocked()
}

// Close releases the WAL file handle. Idempotent; safe on nil.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

func (l *Log) appendLocked(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	l.appends++
	return nil
}

func (l *Log) maybeSnapshotLocked() error {
	if l.appends < l.every {
		return nil
	}
	return l.snapshotLocked()
}

// snapshotLocked publishes the folded state (watermarked with the
// current sequence) and then truncates the WAL. A crash between the two
// steps is harmless: replay skips records at or below the watermark.
func (l *Log) snapshotLocked() error {
	snap := Snapshot{
		LastSeq:  l.seq,
		Done:     l.done,
		Error:    l.errMsg,
		Finished: l.finished,
		Jobs:     make([]campaign.JobStatus, 0, len(l.order)),
	}
	for _, id := range l.order {
		snap.Jobs = append(snap.Jobs, l.states[id])
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := writeFileSync(filepath.Join(l.dir, snapName), blob); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	l.appends = 0
	return nil
}

// writeFileSync publishes blob at path via temp-file + fsync + rename,
// then fsyncs the directory so the rename itself survives a crash.
func writeFileSync(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
