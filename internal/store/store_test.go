package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
)

func testMeta(id string) Meta {
	spec := campaign.DefaultSpec(4_000)
	spec.Name = "store-test"
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
	return Meta{
		ID:        id,
		Client:    "tester",
		Submitted: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Jobs:      2,
		Spec:      spec,
	}
}

func js(id string, state campaign.JobState) campaign.JobStatus {
	return campaign.JobStatus{ID: id, Bench: "gzip", State: state}
}

func openStore(t *testing.T, dir string, every int) *Store {
	t.Helper()
	st, err := Open(dir, every)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func recoverOne(t *testing.T, st *Store) Recovered {
	t.Helper()
	recs, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(recs))
	}
	return recs[0]
}

// TestRoundTrip is the basic contract: what a log records is what
// recovery folds back, spec included.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)

	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := l.JobChanged(js("gzip/baseline", campaign.JobRunning)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	done := js("gzip/baseline", campaign.JobDone)
	done.IPC = 1.25
	if err := l.JobChanged(done); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	if err := l.JobChanged(js("gzip/noop", campaign.JobRunning)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec := recoverOne(t, openStore(t, dir, 0))
	if rec.Meta.ID != "c0001" || rec.Meta.Client != "tester" || rec.Meta.Jobs != 2 {
		t.Fatalf("meta mismatch: %+v", rec.Meta)
	}
	jobs, err := rec.Meta.Spec.Jobs()
	if err != nil {
		t.Fatalf("recovered spec does not expand: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered spec expands to %d jobs, want 2", len(jobs))
	}
	if rec.Snap.Done {
		t.Fatalf("campaign recovered as done")
	}
	if len(rec.Snap.Jobs) != 2 {
		t.Fatalf("recovered %d job states, want 2: %+v", len(rec.Snap.Jobs), rec.Snap.Jobs)
	}
	if got := rec.Snap.Jobs[0]; got.ID != "gzip/baseline" || got.State != campaign.JobDone || got.IPC != 1.25 {
		t.Fatalf("job 0 folded wrong: %+v", got)
	}
	if got := rec.Snap.Jobs[1]; got.ID != "gzip/noop" || got.State != campaign.JobRunning {
		t.Fatalf("job 1 folded wrong: %+v", got)
	}
}

// TestDoneRecordAndCompaction: Done() snapshots and truncates, so a
// finished campaign recovers from the snapshot alone with an empty WAL.
func TestDoneRecordAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	fin := time.Date(2026, 8, 8, 13, 0, 0, 0, time.UTC)
	if err := l.JobChanged(js("gzip/baseline", campaign.JobDone)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	if err := l.Done("boom", fin); err != nil {
		t.Fatalf("Done: %v", err)
	}
	l.Close()

	wal, err := os.Stat(filepath.Join(dir, "campaigns", "c0001", walName))
	if err != nil {
		t.Fatalf("wal stat: %v", err)
	}
	if wal.Size() != 0 {
		t.Fatalf("wal not truncated after Done: %d bytes", wal.Size())
	}
	rec := recoverOne(t, openStore(t, dir, 0))
	if !rec.Snap.Done || rec.Snap.Error != "boom" || !rec.Snap.Finished.Equal(fin) {
		t.Fatalf("done state lost: %+v", rec.Snap)
	}
}

// TestSnapshotCompactionEquivalence: with aggressive compaction the WAL
// stays bounded and recovery equals what an uncompacted log folds.
func TestSnapshotCompactionEquivalence(t *testing.T) {
	compactDir, plainDir := t.TempDir(), t.TempDir()
	lc, err := openStore(t, compactDir, 3).Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	lp, err := openStore(t, plainDir, 1_000_000).Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ids := []string{"gzip/baseline", "gzip/noop", "mcf/baseline", "mcf/noop"}
	states := []campaign.JobState{campaign.JobRunning, campaign.JobDone}
	for _, state := range states {
		for _, id := range ids {
			for _, l := range []*Log{lc, lp} {
				if err := l.JobChanged(js(id, state)); err != nil {
					t.Fatalf("JobChanged: %v", err)
				}
			}
		}
	}
	lc.Close()
	lp.Close()

	// The compacting log's WAL holds at most `every` records.
	cw, _ := os.ReadFile(filepath.Join(compactDir, "campaigns", "c0001", walName))
	pw, _ := os.ReadFile(filepath.Join(plainDir, "campaigns", "c0001", walName))
	if len(cw) >= len(pw) {
		t.Fatalf("compaction did not shrink the wal: %d vs %d bytes", len(cw), len(pw))
	}

	rc := recoverOne(t, openStore(t, compactDir, 3))
	rp := recoverOne(t, openStore(t, plainDir, 1_000_000))
	if len(rc.Snap.Jobs) != len(rp.Snap.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(rc.Snap.Jobs), len(rp.Snap.Jobs))
	}
	for i := range rc.Snap.Jobs {
		if rc.Snap.Jobs[i] != rp.Snap.Jobs[i] {
			t.Fatalf("job %d differs after compaction:\n compacted %+v\n plain     %+v",
				i, rc.Snap.Jobs[i], rp.Snap.Jobs[i])
		}
	}
}

// TestTornTailDiscardedAndResumable: a WAL whose last line was cut by a
// crash recovers up to the tear, and Resume truncates the tear so new
// appends land on a clean log.
func TestTornTailDiscardedAndResumable(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := l.JobChanged(js("gzip/baseline", campaign.JobDone)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	l.Close()

	wal := filepath.Join(dir, "campaigns", "c0001", walName)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	// Half a record: no newline, garbage CRC.
	if _, err := f.WriteString(`deadbeef {"seq":99,"type":"job"`); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	f.Close()

	st2 := openStore(t, dir, 0)
	rec := recoverOne(t, st2)
	if len(rec.Snap.Jobs) != 1 || rec.Snap.Jobs[0].State != campaign.JobDone {
		t.Fatalf("torn tail corrupted recovery: %+v", rec.Snap.Jobs)
	}

	l2, err := st2.Resume(rec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := l2.JobChanged(js("gzip/noop", campaign.JobDone)); err != nil {
		t.Fatalf("JobChanged after resume: %v", err)
	}
	l2.Close()

	rec2 := recoverOne(t, openStore(t, dir, 0))
	if len(rec2.Snap.Jobs) != 2 {
		t.Fatalf("post-resume append lost behind torn tail: %+v", rec2.Snap.Jobs)
	}
	if rec2.Snap.Jobs[1].ID != "gzip/noop" || rec2.Snap.Jobs[1].State != campaign.JobDone {
		t.Fatalf("post-resume append folded wrong: %+v", rec2.Snap.Jobs[1])
	}
}

// TestSnapshotWatermarkBeatsStaleWAL models a crash between writing a
// snapshot and truncating the WAL: the leftover records' sequence
// numbers are at or below the snapshot watermark and must not
// resurrect older job states.
func TestSnapshotWatermarkBeatsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := l.JobChanged(js("gzip/baseline", campaign.JobRunning)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	wal := filepath.Join(dir, "campaigns", "c0001", walName)
	stale, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Newer state, then a forced snapshot+truncate via Done.
	if err := l.JobChanged(js("gzip/baseline", campaign.JobDone)); err != nil {
		t.Fatalf("JobChanged: %v", err)
	}
	if err := l.Done("", time.Date(2026, 8, 8, 13, 0, 0, 0, time.UTC)); err != nil {
		t.Fatalf("Done: %v", err)
	}
	l.Close()
	// Undo the truncation: put the stale seq-1 record back, as if the
	// crash landed between snapshot publish and WAL truncate.
	if err := os.WriteFile(wal, stale, 0o644); err != nil {
		t.Fatalf("restore stale wal: %v", err)
	}

	rec := recoverOne(t, openStore(t, dir, 0))
	if got := rec.Snap.Jobs[0].State; got != campaign.JobDone {
		t.Fatalf("stale WAL record resurrected state %q over snapshot's done", got)
	}
	if !rec.Snap.Done {
		t.Fatalf("done mark lost: %+v", rec.Snap)
	}
}

// TestRemove deletes all durable state for a campaign.
func TestRemove(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	l.Close()
	if err := st.Remove("c0001"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	recs, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("campaign survived Remove: %+v", recs)
	}
}

// TestNilStoreAndLog: durability off means every call is a safe no-op.
func TestNilStoreAndLog(t *testing.T) {
	st, err := Open("", 0)
	if err != nil || st != nil {
		t.Fatalf("Open(\"\") = %v, %v; want nil, nil", st, err)
	}
	l, err := st.Create(testMeta("c0001"))
	if err != nil || l != nil {
		t.Fatalf("nil store Create = %v, %v; want nil, nil", l, err)
	}
	if err := l.JobChanged(js("gzip/baseline", campaign.JobDone)); err != nil {
		t.Fatalf("nil log JobChanged: %v", err)
	}
	if err := l.Done("", time.Time{}); err != nil {
		t.Fatalf("nil log Done: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil log Close: %v", err)
	}
	recs, err := st.Recover()
	if err != nil || recs != nil {
		t.Fatalf("nil store Recover = %v, %v; want nil, nil", recs, err)
	}
	if err := st.Remove("c0001"); err != nil {
		t.Fatalf("nil store Remove: %v", err)
	}
}

// TestCorruptCampaignSkipped: one unreadable campaign doesn't poison
// recovery of its healthy neighbours.
func TestCorruptCampaignSkipped(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	l, err := st.Create(testMeta("c0001"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	l.Close()
	bad := filepath.Join(dir, "campaigns", "c0002")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, metaName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := openStore(t, dir, 0).Recover()
	if err == nil {
		t.Fatalf("corrupt campaign produced no error")
	}
	if len(recs) != 1 || recs[0].Meta.ID != "c0001" {
		t.Fatalf("healthy campaign lost alongside corrupt one: %+v", recs)
	}
}
