package iq

import (
	"math/rand"
	"testing"
)

// TestCollapsibleIgnoresHoles: in the collapsible ablation model, issuing
// a middle entry frees capacity immediately (no span limit).
func TestCollapsibleIgnoresHoles(t *testing.T) {
	q := MustNew(Config{Entries: 8, BankSize: 4, Collapsible: true})
	var positions []int64
	for i := int64(0); i < 8; i++ {
		p, ok := q.Dispatch(i, [2]int{-1, -1}, [2]bool{false, false})
		if !ok {
			t.Fatalf("dispatch %d failed", i)
		}
		positions = append(positions, p)
	}
	if q.CanDispatch() {
		t.Fatal("8 valid entries must fill an 8-entry queue")
	}
	// Issue a MIDDLE entry: a non-collapsible queue would still be
	// span-blocked; the collapsible one must accept a dispatch.
	q.Issue(positions[3])
	if !q.CanDispatch() {
		t.Fatal("collapsible queue must reuse the hole's capacity")
	}
	if _, ok := q.Dispatch(8, [2]int{-1, -1}, [2]bool{false, false}); !ok {
		t.Fatal("dispatch into freed capacity failed")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCollapsibleCapacityIsCountBound: the valid-entry count can never
// exceed Entries even though the ring is larger.
func TestCollapsibleCapacityIsCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := MustNew(Config{Entries: 16, BankSize: 8, Collapsible: true})
	live := map[int64]bool{}
	var id int64
	for step := 0; step < 20_000; step++ {
		if rng.Intn(3) > 0 && q.CanDispatch() {
			pos, ok := q.Dispatch(id, [2]int{-1, -1}, [2]bool{false, false})
			if !ok {
				t.Fatalf("step %d: CanDispatch lied", step)
			}
			live[pos] = true
			id++
		} else {
			for pos := range live {
				q.Issue(pos)
				delete(live, pos)
				break
			}
		}
		if q.Count() > 16 {
			t.Fatalf("step %d: count %d exceeds capacity", step, q.Count())
		}
		if step%1000 == 0 {
			if err := q.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// The virtual positions must have wrapped the enlarged ring at least
	// once for the test to have exercised wraparound.
	if q.Tail() < int64(16*4) {
		t.Errorf("tail %d: ring never wrapped", q.Tail())
	}
}

// TestNonCollapsibleSpanBound: contrast case — the paper's queue stays
// span-blocked by a hole at the head.
func TestNonCollapsibleSpanBound(t *testing.T) {
	q := MustNew(Config{Entries: 8, BankSize: 4})
	var positions []int64
	for i := int64(0); i < 8; i++ {
		p, _ := q.Dispatch(i, [2]int{-1, -1}, [2]bool{false, false})
		positions = append(positions, p)
	}
	q.Issue(positions[3])
	if q.CanDispatch() {
		t.Fatal("non-collapsible queue must remain span-blocked")
	}
}
