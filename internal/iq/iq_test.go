package iq

import (
	"math/rand"
	"testing"
)

func noOps() [2]int       { return [2]int{-1, -1} }
func notWaiting() [2]bool { return [2]bool{false, false} }
func mustDispatch(t *testing.T, q *Queue, id int64, tags [2]int, waiting [2]bool) int64 {
	t.Helper()
	pos, ok := q.Dispatch(id, tags, waiting)
	if !ok {
		t.Fatalf("dispatch %d failed unexpectedly", id)
	}
	return pos
}

// TestFigure1Wakeups reproduces the paper's figure 1 exactly: the 6-inst
// basic block causes 18 wakeups in the unconstrained queue and 10 when
// max_new_range is 2, completing in the same number of cycles.
func TestFigure1Wakeups(t *testing.T) {
	const tagA, tagB, tagC, tagD = 1, 2, 3, 4

	runBaseline := func() *Queue {
		q := MustNew(Config{Entries: 80, BankSize: 8})
		// Cycle 0: dispatch all six.
		q.BeginCycle()
		pa := mustDispatch(t, q, 0, noOps(), notWaiting())
		pb := mustDispatch(t, q, 1, noOps(), notWaiting())
		pc := mustDispatch(t, q, 2, [2]int{tagA, -1}, [2]bool{true, false})
		pd := mustDispatch(t, q, 3, [2]int{tagB, -1}, [2]bool{true, false})
		pe := mustDispatch(t, q, 4, [2]int{tagC, tagD}, [2]bool{true, true})
		pf := mustDispatch(t, q, 5, [2]int{tagB, tagD}, [2]bool{true, true})
		// Cycle 1: a, b issue.
		q.BeginCycle()
		q.Issue(pa)
		q.Issue(pb)
		// Cycle 2: a, b write back and broadcast; c, d issue.
		q.BeginCycle()
		q.Broadcast(tagA)
		q.Broadcast(tagB)
		q.Issue(pc)
		q.Issue(pd)
		// Cycle 3: c, d broadcast; e, f issue.
		q.BeginCycle()
		q.Broadcast(tagC)
		q.Broadcast(tagD)
		q.Issue(pe)
		q.Issue(pf)
		return q
	}

	q := runBaseline()
	if q.Stats.GatedWakeups != 18 {
		t.Errorf("baseline wakeups = %d, want 18 (paper figure 1(c))", q.Stats.GatedWakeups)
	}

	// Limited to 2 entries (figure 1(d)).
	q = MustNew(Config{Entries: 80, BankSize: 8})
	q.BeginCycle()
	q.SetHint(2)
	pa := mustDispatch(t, q, 0, noOps(), notWaiting())
	pb := mustDispatch(t, q, 1, noOps(), notWaiting())
	if q.CanDispatch() {
		t.Fatal("hint=2 must block the third dispatch")
	}
	if !q.HintBlocked() {
		t.Fatal("block must be attributed to the hint")
	}
	// Cycle 1: a, b issue; c, d dispatch.
	q.BeginCycle()
	q.Issue(pa)
	q.Issue(pb)
	pc := mustDispatch(t, q, 2, [2]int{tagA, -1}, [2]bool{true, false})
	pd := mustDispatch(t, q, 3, [2]int{tagB, -1}, [2]bool{true, false})
	// Cycle 2: a, b broadcast (2 waiting ops each); c, d issue; e, f dispatch.
	q.BeginCycle()
	q.Broadcast(tagA)
	q.Broadcast(tagB)
	q.Issue(pc)
	q.Issue(pd)
	pe := mustDispatch(t, q, 4, [2]int{tagC, tagD}, [2]bool{true, true})
	// f's first operand (from b) already broadcast: dispatches ready.
	pf := mustDispatch(t, q, 5, [2]int{tagB, tagD}, [2]bool{false, true})
	// Cycle 3: c, d broadcast (3 waiting ops); e, f issue.
	q.BeginCycle()
	q.Broadcast(tagC)
	q.Broadcast(tagD)
	q.Issue(pe)
	q.Issue(pf)

	if q.Stats.GatedWakeups != 10 {
		t.Errorf("limited wakeups = %d, want 10 (paper figure 1(d))", q.Stats.GatedWakeups)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFigure2NewHeadAdvance reproduces figure 2: with max_new_range = 4
// and entries a,_,_,d resident in the region, issuing a slides new_head to
// d and exactly three more instructions may dispatch.
func TestFigure2NewHeadAdvance(t *testing.T) {
	q := MustNew(Config{Entries: 80, BankSize: 8})
	q.SetHint(4)
	pa := mustDispatch(t, q, 0, noOps(), notWaiting())
	pb := mustDispatch(t, q, 1, noOps(), notWaiting())
	pc := mustDispatch(t, q, 2, noOps(), notWaiting())
	pd := mustDispatch(t, q, 3, noOps(), notWaiting())
	// Issue b and c leaving holes: region = a,_,_,d with 2 valid entries.
	q.Issue(pb)
	q.Issue(pc)
	if q.NewCount() != 2 {
		t.Fatalf("newCount = %d, want 2", q.NewCount())
	}
	// Two more may enter (4 limit - 2 valid).
	mustDispatch(t, q, 4, noOps(), notWaiting())
	mustDispatch(t, q, 5, noOps(), notWaiting())
	if q.CanDispatch() {
		t.Fatal("region at limit must block dispatch")
	}
	// Issue a: new_head slides past the holes to d; one slot frees.
	q.Issue(pa)
	if q.NewHead() != pd {
		t.Fatalf("newHead = %d, want %d (slid to d)", q.NewHead(), pd)
	}
	if !q.CanDispatch() {
		t.Fatal("issuing a must free one region slot")
	}
	mustDispatch(t, q, 6, noOps(), notWaiting())
	if q.CanDispatch() {
		t.Fatal("region full again")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHintSnapClosesRegion(t *testing.T) {
	q := MustNew(Config{Entries: 16, BankSize: 8})
	q.SetHint(4)
	for i := int64(0); i < 4; i++ {
		mustDispatch(t, q, i, noOps(), notWaiting())
	}
	if q.CanDispatch() {
		t.Fatal("old region full")
	}
	// A new hint opens a fresh region: the 4 old entries stop counting.
	q.SetHint(2)
	if q.NewCount() != 0 {
		t.Fatalf("newCount after hint = %d, want 0", q.NewCount())
	}
	mustDispatch(t, q, 4, noOps(), notWaiting())
	mustDispatch(t, q, 5, noOps(), notWaiting())
	if q.CanDispatch() {
		t.Fatal("new region limit is 2")
	}
	if q.Count() != 6 {
		t.Errorf("count = %d, want 6", q.Count())
	}
}

func TestPhysicalCapacityBlocks(t *testing.T) {
	q := MustNew(Config{Entries: 8, BankSize: 4})
	for i := int64(0); i < 8; i++ {
		mustDispatch(t, q, i, noOps(), notWaiting())
	}
	if q.CanDispatch() {
		t.Fatal("physically full queue accepted dispatch")
	}
	if q.HintBlocked() {
		t.Fatal("block is physical, not hint")
	}
	// Non-collapsible: issuing a middle entry leaves a hole that does NOT
	// free a slot (span still 8).
	q.Issue(3)
	if q.CanDispatch() {
		t.Fatal("hole must not free a tail slot in a non-collapsible queue")
	}
	// Issuing the head frees span.
	q.Issue(0)
	if !q.CanDispatch() {
		t.Fatal("head issue must free span")
	}
}

func TestWraparound(t *testing.T) {
	q := MustNew(Config{Entries: 8, BankSize: 4})
	// Cycle entries through several wraps.
	var positions []int64
	for round := 0; round < 5; round++ {
		for i := 0; i < 8 && q.CanDispatch(); i++ {
			p, _ := q.Dispatch(int64(round*8+i), noOps(), notWaiting())
			positions = append(positions, p)
		}
		// Issue all current entries oldest-first.
		var toIssue []int64
		q.ForEachValid(func(pos int64, e *Entry) bool {
			toIssue = append(toIssue, pos)
			return true
		})
		for _, p := range toIssue {
			q.Issue(p)
		}
		if err := q.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if q.Count() != 0 {
		t.Errorf("count = %d, want 0", q.Count())
	}
	if q.Tail() <= 8 {
		t.Errorf("tail = %d: queue never wrapped", q.Tail())
	}
}

func TestBankGating(t *testing.T) {
	q := MustNew(Config{Entries: 16, BankSize: 4})
	if q.BanksOn() != 0 {
		t.Fatalf("empty queue has %d banks on", q.BanksOn())
	}
	p0 := mustDispatch(t, q, 0, noOps(), notWaiting())
	if q.BanksOn() != 1 {
		t.Errorf("one entry -> 1 bank on, got %d", q.BanksOn())
	}
	for i := int64(1); i < 5; i++ {
		mustDispatch(t, q, i, noOps(), notWaiting())
	}
	if q.BanksOn() != 2 {
		t.Errorf("5 entries -> 2 banks on, got %d", q.BanksOn())
	}
	q.Issue(p0)
	// Bank 0 still has entries 1..3.
	if q.BanksOn() != 2 {
		t.Errorf("after head issue banks on = %d, want 2", q.BanksOn())
	}
}

func TestBroadcastAccountingSchemes(t *testing.T) {
	q := MustNew(Config{Entries: 80, BankSize: 8})
	mustDispatch(t, q, 0, [2]int{7, 8}, [2]bool{true, true})
	mustDispatch(t, q, 1, [2]int{7, -1}, [2]bool{true, false})
	mustDispatch(t, q, 2, noOps(), notWaiting())
	q.BeginCycle()
	woken := q.Broadcast(7)
	if woken != 2 {
		t.Errorf("woken = %d, want 2", woken)
	}
	if q.Stats.GatedWakeups != 3 {
		t.Errorf("gated = %d, want 3 (waiting ops at cycle start)", q.Stats.GatedWakeups)
	}
	if q.Stats.NonEmptyWakeups != 6 {
		t.Errorf("nonEmpty = %d, want 2*3 valid entries", q.Stats.NonEmptyWakeups)
	}
	if q.Stats.UngatedWakeups != 160 {
		t.Errorf("ungated = %d, want 2*80", q.Stats.UngatedWakeups)
	}
	if q.WaitingOperands() != 1 {
		t.Errorf("waiting after broadcast = %d, want 1", q.WaitingOperands())
	}
}

func TestHintClamping(t *testing.T) {
	q := MustNew(Config{Entries: 16, BankSize: 8})
	q.SetHint(-3)
	if q.MaxNewRange() != 1 {
		t.Errorf("clamped low = %d, want 1", q.MaxNewRange())
	}
	q.SetHint(500)
	if q.MaxNewRange() != 16 {
		t.Errorf("clamped high = %d, want 16", q.MaxNewRange())
	}
	q.ClearHint()
	if q.MaxNewRange() != 0 {
		t.Errorf("cleared = %d, want 0", q.MaxNewRange())
	}
}

// TestRandomOperationsInvariant drives the queue with a random but legal
// operation mix and checks the full invariant set after every step.
func TestRandomOperationsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := MustNew(Config{Entries: 24, BankSize: 8})
	live := map[int64]bool{}
	var id int64
	for step := 0; step < 5000; step++ {
		switch rng.Intn(10) {
		case 0:
			q.SetHint(1 + rng.Intn(30))
		case 1, 2, 3, 4:
			if q.CanDispatch() {
				tags := [2]int{rng.Intn(8) - 1, rng.Intn(8) - 1}
				waiting := [2]bool{tags[0] >= 0 && rng.Intn(2) == 0, tags[1] >= 0 && rng.Intn(2) == 0}
				pos, ok := q.Dispatch(id, tags, waiting)
				if !ok {
					t.Fatalf("step %d: CanDispatch lied", step)
				}
				live[pos] = true
				id++
			}
		case 5, 6, 7:
			// Issue a random live entry.
			for pos := range live {
				q.Issue(pos)
				delete(live, pos)
				break
			}
		case 8:
			q.BeginCycle()
			q.Broadcast(rng.Intn(8))
		case 9:
			q.BeginCycle()
		}
		if err := q.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestBadGeometry(t *testing.T) {
	if _, err := New(Config{Entries: 10, BankSize: 4}); err == nil {
		t.Error("accepted entries not multiple of bank size")
	}
	if _, err := New(Config{Entries: 0, BankSize: 4}); err == nil {
		t.Error("accepted zero entries")
	}
}
