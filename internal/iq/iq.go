// Package iq implements the paper's issue queue (section 3.1): a
// non-collapsible, multi-banked circular buffer with a conventional head
// and tail pointer plus a second head pointer, new_head, that gives the
// compiler control over the youngest entries. A hint sets max_new_range —
// the maximum number of valid entries allowed between new_head and tail —
// and snaps new_head to the tail, so older entries belong to older program
// regions and do not count against the new region's budget.
//
// The queue also performs the power accounting of Folegnani & González
// style wakeup gating: on every result broadcast it records how many
// operand comparators would precharge under three schemes — ungated (every
// operand of every entry, 2×capacity), non-empty gating (every operand of
// every valid entry), and full gating (only waiting, i.e. non-ready,
// operands of valid entries). Broadcast energy is charged against the
// waiting-operand population at the start of the cycle, which reproduces
// the wakeup counts of the paper's figure 1 exactly (see the tests).
package iq

import (
	"fmt"
	"math/bits"
)

// OperandsPerEntry is the number of source-operand CAM fields per entry.
const OperandsPerEntry = 2

// Config sizes the queue. The paper uses 80 entries in banks of 8.
// Collapsible models a compacting queue for the ablation benchmarks: the
// paper's design is non-collapsible ("a compaction scheme would cause a
// significant amount of extra energy", section 3.1), so holes left by
// out-of-order issue waste physical slots; a collapsible queue is
// count-limited instead of span-limited, trading compaction energy (not
// modelled) for effective capacity.
type Config struct {
	Entries     int
	BankSize    int
	Collapsible bool
}

// DefaultConfig is the paper's issue queue: 80 entries, 10 banks of 8.
func DefaultConfig() Config { return Config{Entries: 80, BankSize: 8} }

// Entry is one issue-queue slot. Tags are physical register numbers; a
// negative tag marks an absent operand (an "empty" operand in the paper's
// figure 1, which is never woken).
type Entry struct {
	Valid   bool
	ID      int64 // client identifier (ROB index)
	Tag     [OperandsPerEntry]int
	Waiting [OperandsPerEntry]bool
}

// Ready reports whether all present operands have arrived.
func (e *Entry) Ready() bool {
	return !e.Waiting[0] && !e.Waiting[1]
}

// Stats accumulates the power-relevant event counts.
type Stats struct {
	Dispatches int64
	Issues     int64
	Broadcasts int64
	// Woken counts operands actually transitioned to ready by a broadcast.
	Woken int64
	// GatedWakeups: comparators precharged with full gating (waiting
	// operands of valid entries at cycle start) summed over broadcasts.
	GatedWakeups int64
	// NonEmptyWakeups: comparators precharged when only empty entries are
	// gated (2 × valid entries at cycle start) summed over broadcasts.
	NonEmptyWakeups int64
	// UngatedWakeups: comparators with no gating (2 × capacity per
	// broadcast).
	UngatedWakeups int64
	// HintSets counts max_new_range updates.
	HintSets int64
	// OccupancySum/SpanSum/BanksOnSum accumulate per-cycle samples via Tick.
	OccupancySum int64
	SpanSum      int64
	BanksOnSum   int64
	NewCountSum  int64
	Cycles       int64
}

// Queue is the issue queue. Positions are virtual (monotonically
// increasing); the physical slot of position p is p mod the ring size
// (Entries for the paper's non-collapsible queue; larger when modelling
// a collapsible one, where holes do not consume capacity).
type Queue struct {
	cfg      Config
	banks    int
	ringSize int
	ring     []Entry
	head     int64 // oldest valid position, or == tail when empty
	newHead  int64 // oldest position of the current program region
	tail     int64 // next position to fill

	count      int // valid entries
	newCount   int // valid entries in [newHead, tail)
	waiting    int // waiting operands over all valid entries
	bankCount  []int
	bankOfSlot []int // slot -> bank, precomputed (avoids div on hot paths)
	banksOn    int   // banks with bankCount > 0

	// Event-indexed wakeup: tag -> subscribers dispatched with a waiting
	// operand on that tag. Entries are validated lazily against posOf (a
	// slot may have been reissued), and a list is consumed whole on
	// broadcast — every live subscriber of a tag wakes on that tag. The
	// table is a dense slice (tags are small physical-register numbers,
	// plus an FP offset) grown on demand, so broadcast and dispatch avoid
	// map hashing on the hot path.
	waiters [][]waiter
	posOf   []int64 // virtual position of each slot's current occupant

	// Ready list: bit set = slot holds a valid entry whose operands have
	// all arrived. Iterated oldest-first by ForEachReady.
	ready      []uint64
	readyCount int

	// reference switches Broadcast to the original full-window scan; the
	// differential tests run an indexed and a reference queue side by side.
	reference bool

	maxNewRange int // 0 = unlimited (no compiler control)
	sizeLimit   int // 0 = unlimited; hardware-adaptive cap on valid entries

	// latched at BeginCycle for broadcast energy accounting
	latchedWaiting int
	latchedCount   int

	Stats Stats
}

// New builds a queue; Entries must be a positive multiple of BankSize.
func New(cfg Config) (*Queue, error) {
	if cfg.Entries <= 0 || cfg.BankSize <= 0 || cfg.Entries%cfg.BankSize != 0 {
		return nil, fmt.Errorf("iq: bad geometry entries=%d bankSize=%d", cfg.Entries, cfg.BankSize)
	}
	ringSize := cfg.Entries
	if cfg.Collapsible {
		// Headroom for holes: the span can reach the in-flight window
		// even though only Entries slots are logically occupied.
		ringSize = cfg.Entries * 4
	}
	bankOfSlot := make([]int, ringSize)
	for s := range bankOfSlot {
		bankOfSlot[s] = s / cfg.BankSize
	}
	return &Queue{
		cfg:        cfg,
		banks:      cfg.Entries / cfg.BankSize,
		ringSize:   ringSize,
		ring:       make([]Entry, ringSize),
		bankCount:  make([]int, ringSize/cfg.BankSize),
		bankOfSlot: bankOfSlot,
		posOf:      make([]int64, ringSize),
		ready:      make([]uint64, (ringSize+63)/64),
	}, nil
}

// waiter records one subscribed operand in the wakeup index. pos pins the
// subscription to a particular occupancy of the slot: if the entry has
// issued and the slot been refilled, posOf no longer matches and the
// subscriber is stale.
type waiter struct {
	pos int64
	op  int
}

// SetReference switches Broadcast between the indexed wakeup (default)
// and the original full-window scan. The two are behaviourally identical;
// the scan is kept as the reference implementation for the differential
// and fuzz tests.
func (q *Queue) SetReference(on bool) { q.reference = on }

// MustNew is New that panics on error.
func MustNew(cfg Config) *Queue {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Capacity returns the total entry count.
func (q *Queue) Capacity() int { return q.cfg.Entries }

// Banks returns the number of banks.
func (q *Queue) Banks() int { return q.banks }

// Count returns the number of valid entries.
func (q *Queue) Count() int { return q.count }

// NewCount returns the number of valid entries in the current region.
func (q *Queue) NewCount() int { return q.newCount }

// Span returns tail-head: the physical region the queue occupies (holes
// included), which bounds dispatch in a non-collapsible queue.
func (q *Queue) Span() int { return int(q.tail - q.head) }

// WaitingOperands returns the number of non-ready operands of valid
// entries right now.
func (q *Queue) WaitingOperands() int { return q.waiting }

// MaxNewRange returns the current compiler-imposed limit (0 = none).
func (q *Queue) MaxNewRange() int { return q.maxNewRange }

// BanksOn returns how many banks hold at least one valid entry; the rest
// are gated off this cycle. The count is maintained incrementally on
// dispatch and issue.
func (q *Queue) BanksOn() int { return q.banksOn }

// ReadyCount returns the number of valid entries whose operands have all
// arrived (the ready-list population).
func (q *Queue) ReadyCount() int { return q.readyCount }

func (q *Queue) slot(pos int64) *Entry { return &q.ring[int(pos%int64(q.ringSize))] }

func (q *Queue) bankOf(pos int64) int {
	return int(pos%int64(q.ringSize)) / q.cfg.BankSize
}

// SetHint installs a new max_new_range from a compiler hint: the current
// region closes (new_head snaps to tail) and subsequent dispatches are
// limited to entries valid entries in the new region. Values are clamped
// to [1, capacity].
func (q *Queue) SetHint(entries int) {
	if entries < 1 {
		entries = 1
	}
	if entries > q.cfg.Entries {
		entries = q.cfg.Entries
	}
	q.maxNewRange = entries
	q.newHead = q.tail
	q.newCount = 0
	q.Stats.HintSets++
}

// ClearHint removes compiler control (used by the uncontrolled baseline).
func (q *Queue) ClearHint() {
	q.maxNewRange = 0
	q.newHead = q.tail
	q.newCount = 0
}

// SetSizeLimit installs a hardware-adaptive cap on the number of valid
// entries (bank-granular resizing à la Abella & González / Buyuktosunoglu
// et al.). Zero removes the cap.
func (q *Queue) SetSizeLimit(entries int) {
	if entries < 0 {
		entries = 0
	}
	if entries > q.cfg.Entries {
		entries = q.cfg.Entries
	}
	q.sizeLimit = entries
}

// SizeLimit returns the adaptive cap (0 = none).
func (q *Queue) SizeLimit() int { return q.sizeLimit }

// SizeLimitBlocked reports whether dispatch is blocked specifically by
// the adaptive size limit.
func (q *Queue) SizeLimitBlocked() bool {
	return !q.physicallyFull() && q.sizeLimit > 0 && q.count >= q.sizeLimit
}

// CanDispatch reports whether one more instruction may enter the queue:
// there must be physical capacity — span-limited for the paper's
// non-collapsible queue, count-limited for the collapsible ablation —
// the current region must have hint budget left, and any adaptive size
// limit must not be exceeded.
func (q *Queue) CanDispatch() bool {
	if q.physicallyFull() {
		return false
	}
	if q.maxNewRange > 0 && q.newCount >= q.maxNewRange {
		return false
	}
	if q.sizeLimit > 0 && q.count >= q.sizeLimit {
		return false
	}
	return true
}

// physicallyFull reports whether the queue itself (ignoring hints and
// adaptive limits) can accept no more instructions.
func (q *Queue) physicallyFull() bool {
	if q.cfg.Collapsible {
		return q.count >= q.cfg.Entries || q.Span() >= q.ringSize
	}
	return q.Span() >= q.cfg.Entries
}

// HintBlocked reports whether dispatch is blocked specifically by the
// compiler hint rather than by physical capacity.
func (q *Queue) HintBlocked() bool {
	return !q.physicallyFull() && q.maxNewRange > 0 && q.newCount >= q.maxNewRange
}

// Dispatch places an instruction at the tail. tags are the physical
// source registers (negative = no operand); waiting marks operands whose
// producers have not completed. Returns the entry's position, or ok=false
// if the queue cannot accept it.
func (q *Queue) Dispatch(id int64, tags [OperandsPerEntry]int, waiting [OperandsPerEntry]bool) (pos int64, ok bool) {
	if !q.CanDispatch() {
		return 0, false
	}
	pos = q.tail
	s := int(pos % int64(q.ringSize))
	e := &q.ring[s]
	*e = Entry{Valid: true, ID: id, Tag: tags, Waiting: waiting}
	q.posOf[s] = pos
	for i := 0; i < OperandsPerEntry; i++ {
		if tags[i] < 0 {
			e.Waiting[i] = false
		}
		if e.Waiting[i] {
			q.waiting++
			q.subscribe(tags[i], waiter{pos: pos, op: i})
		}
	}
	if e.Ready() {
		q.markReady(s)
	}
	q.tail++
	q.count++
	q.newCount++
	b := q.bankOfSlot[s]
	if q.bankCount[b] == 0 {
		q.banksOn++
	}
	q.bankCount[b]++
	q.Stats.Dispatches++
	return pos, true
}

// subscribe records a waiting operand in the wakeup index, growing the
// dense tag table on first sight of a tag.
func (q *Queue) subscribe(tag int, w waiter) {
	if tag >= len(q.waiters) {
		grown := make([][]waiter, tag+1)
		copy(grown, q.waiters)
		q.waiters = grown
	}
	q.waiters[tag] = append(q.waiters[tag], w)
}

func (q *Queue) markReady(slot int) {
	q.ready[slot>>6] |= 1 << uint(slot&63)
	q.readyCount++
}

func (q *Queue) clearReady(slot int) {
	w := slot >> 6
	bit := uint64(1) << uint(slot&63)
	if q.ready[w]&bit != 0 {
		q.ready[w] &^= bit
		q.readyCount--
	}
}

// Issue removes the valid entry at pos (it has been selected and read its
// payload). The head and new_head pointers slide past any invalid entries
// they now point to, exactly like the paper's figure 2.
func (q *Queue) Issue(pos int64) {
	s := int(pos % int64(q.ringSize))
	e := &q.ring[s]
	if !e.Valid {
		panic(fmt.Sprintf("iq: issuing invalid entry at pos %d", pos))
	}
	for i := 0; i < OperandsPerEntry; i++ {
		if e.Waiting[i] {
			q.waiting--
			q.unsubscribe(e.Tag[i], pos, i)
		}
	}
	e.Valid = false
	q.clearReady(s)
	q.count--
	if pos >= q.newHead {
		q.newCount--
	}
	b := q.bankOfSlot[s]
	q.bankCount[b]--
	if q.bankCount[b] == 0 {
		q.banksOn--
	}
	q.Stats.Issues++
	q.advanceHeads()
}

// unsubscribe removes one waiter from the wakeup index. It only runs when
// an entry is issued with operands still waiting — a path the simulator
// never takes (only ready entries issue) but the Queue API permits.
func (q *Queue) unsubscribe(tag int, pos int64, op int) {
	if tag < 0 || tag >= len(q.waiters) {
		return
	}
	list := q.waiters[tag]
	for i := range list {
		if list[i].pos == pos && list[i].op == op {
			list[i] = list[len(list)-1]
			q.waiters[tag] = list[:len(list)-1]
			return
		}
	}
}

func (q *Queue) advanceHeads() {
	for q.head < q.tail && !q.slot(q.head).Valid {
		q.head++
	}
	if q.newHead < q.head {
		q.newHead = q.head
	}
	for q.newHead < q.tail && !q.slot(q.newHead).Valid {
		q.newHead++
	}
}

// BeginCycle latches the waiting-operand and occupancy counts used to
// charge this cycle's broadcasts, and samples occupancy statistics.
func (q *Queue) BeginCycle() {
	q.latchedWaiting = q.waiting
	q.latchedCount = q.count
	q.Stats.Cycles++
	q.Stats.OccupancySum += int64(q.count)
	q.Stats.SpanSum += int64(q.Span())
	q.Stats.BanksOnSum += int64(q.BanksOn())
	q.Stats.NewCountSum += int64(q.newCount)
}

// Broadcast wakes all operands waiting on tag and charges wakeup energy
// under the three gating schemes. It returns the number of operands woken.
//
// The energy accounting is independent of the wakeup mechanism: it always
// charges the latched CAM populations (what the modelled hardware
// precharges), whether the simulator finds the woken operands through the
// tag index or the reference scan.
func (q *Queue) Broadcast(tag int) int {
	q.Stats.Broadcasts++
	q.Stats.GatedWakeups += int64(q.latchedWaiting)
	q.Stats.NonEmptyWakeups += int64(OperandsPerEntry * q.latchedCount)
	q.Stats.UngatedWakeups += int64(OperandsPerEntry * q.cfg.Entries)
	var woken int
	if q.reference {
		woken = q.broadcastScan(tag)
	} else {
		woken = q.broadcastIndexed(tag)
	}
	q.Stats.Woken += int64(woken)
	return woken
}

// broadcastIndexed consumes the tag's subscriber list. A subscriber is
// stale when its slot has been reissued (posOf mismatch) or its operand
// already woke; every live subscriber necessarily waits on this tag, so
// the whole list empties.
func (q *Queue) broadcastIndexed(tag int) int {
	if tag < 0 || tag >= len(q.waiters) {
		return 0
	}
	list := q.waiters[tag]
	if len(list) == 0 {
		return 0
	}
	woken := 0
	for _, w := range list {
		s := int(w.pos % int64(q.ringSize))
		e := &q.ring[s]
		if !e.Valid || q.posOf[s] != w.pos || !e.Waiting[w.op] {
			continue
		}
		e.Waiting[w.op] = false
		q.waiting--
		woken++
		if e.Ready() {
			q.markReady(s)
		}
	}
	q.waiters[tag] = list[:0]
	return woken
}

// broadcastScan is the original O(window) CAM-style wakeup, kept as the
// reference implementation. It maintains the same derived state (ready
// list, index hygiene) so a queue can run entirely in reference mode.
func (q *Queue) broadcastScan(tag int) int {
	woken := 0
	for pos := q.head; pos < q.tail; pos++ {
		s := int(pos % int64(q.ringSize))
		e := &q.ring[s]
		if !e.Valid {
			continue
		}
		for i := 0; i < OperandsPerEntry; i++ {
			if e.Waiting[i] && e.Tag[i] == tag {
				e.Waiting[i] = false
				q.waiting--
				woken++
			}
		}
		if e.Ready() {
			w := s >> 6
			if q.ready[w]&(1<<uint(s&63)) == 0 {
				q.markReady(s)
			}
		}
	}
	// The tag's subscribers (if any) all just woke or were already stale.
	if tag >= 0 && tag < len(q.waiters) {
		q.waiters[tag] = q.waiters[tag][:0]
	}
	return woken
}

// ForEachValid visits valid entries oldest-first; the visitor returns
// false to stop early.
func (q *Queue) ForEachValid(f func(pos int64, e *Entry) bool) {
	for pos := q.head; pos < q.tail; pos++ {
		e := q.slot(pos)
		if !e.Valid {
			continue
		}
		if !f(pos, e) {
			return
		}
	}
}

// ForEachReady visits ready entries oldest-first (by position, like
// ForEachValid restricted to Ready entries) using the incrementally
// maintained ready list, so the cost scales with the ready population
// rather than the window span. The visitor returns false to stop early;
// it must not dispatch or issue during the walk.
func (q *Queue) ForEachReady(f func(pos int64, e *Entry) bool) {
	if q.readyCount == 0 || q.head == q.tail {
		return
	}
	start := int(q.head % int64(q.ringSize))
	span := int(q.tail - q.head)
	end := start + span
	if end <= q.ringSize {
		q.scanReady(start, end, q.head-int64(start), f)
		return
	}
	if !q.scanReady(start, q.ringSize, q.head-int64(start), f) {
		return
	}
	q.scanReady(0, end-q.ringSize, q.head+int64(q.ringSize-start), f)
}

// scanReady visits set ready bits in slot range [lo, hi); the virtual
// position of slot s is base+s. Returns false if the visitor stopped.
func (q *Queue) scanReady(lo, hi int, base int64, f func(pos int64, e *Entry) bool) bool {
	if lo >= hi {
		return true
	}
	first, last := lo>>6, (hi-1)>>6
	for w := first; w <= last; w++ {
		word := q.ready[w]
		if w == first {
			word &= ^uint64(0) << uint(lo&63)
		}
		if w == last && (hi&63) != 0 {
			word &= ^uint64(0) >> uint(64-hi&63)
		}
		for word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if !f(base+int64(s), &q.ring[s]) {
				return false
			}
		}
	}
	return true
}

// Head, NewHead, Tail expose the virtual pointers (tests, debugging).
func (q *Queue) Head() int64    { return q.head }
func (q *Queue) NewHead() int64 { return q.newHead }
func (q *Queue) Tail() int64    { return q.tail }

// CheckInvariants verifies internal consistency; tests call it after
// random operation sequences.
func (q *Queue) CheckInvariants() error {
	if q.head > q.newHead || q.newHead > q.tail {
		return fmt.Errorf("pointer order violated: head=%d newHead=%d tail=%d", q.head, q.newHead, q.tail)
	}
	if q.Span() > q.ringSize {
		return fmt.Errorf("span %d exceeds ring %d", q.Span(), q.ringSize)
	}
	if q.cfg.Collapsible && q.count > q.cfg.Entries {
		return fmt.Errorf("count %d exceeds capacity %d", q.count, q.cfg.Entries)
	}
	count, waiting, newCount, ready := 0, 0, 0, 0
	bank := make([]int, len(q.bankCount))
	for pos := q.head; pos < q.tail; pos++ {
		e := q.slot(pos)
		if !e.Valid {
			continue
		}
		count++
		bank[q.bankOf(pos)]++
		if pos >= q.newHead {
			newCount++
		}
		s := int(pos % int64(q.ringSize))
		if q.posOf[s] != pos {
			return fmt.Errorf("posOf[%d] = %d, want %d", s, q.posOf[s], pos)
		}
		if got := q.ready[s>>6]&(1<<uint(s&63)) != 0; got != e.Ready() {
			return fmt.Errorf("ready bit for pos %d = %v, entry ready = %v", pos, got, e.Ready())
		}
		if e.Ready() {
			ready++
		}
		for i := 0; i < OperandsPerEntry; i++ {
			if e.Waiting[i] {
				waiting++
				if !q.subscribed(e.Tag[i], pos, i) {
					return fmt.Errorf("waiting operand %d of pos %d (tag %d) missing from wakeup index", i, pos, e.Tag[i])
				}
			}
		}
	}
	if ready != q.readyCount {
		return fmt.Errorf("readyCount %d != recomputed %d", q.readyCount, ready)
	}
	banksOn := 0
	for _, c := range q.bankCount {
		if c > 0 {
			banksOn++
		}
	}
	if banksOn != q.banksOn {
		return fmt.Errorf("banksOn %d != recomputed %d", q.banksOn, banksOn)
	}
	if count != q.count {
		return fmt.Errorf("count %d != recomputed %d", q.count, count)
	}
	if waiting != q.waiting {
		return fmt.Errorf("waiting %d != recomputed %d", q.waiting, waiting)
	}
	if newCount != q.newCount {
		return fmt.Errorf("newCount %d != recomputed %d", q.newCount, newCount)
	}
	for b := range bank {
		if bank[b] != q.bankCount[b] {
			return fmt.Errorf("bank %d count %d != recomputed %d", b, q.bankCount[b], bank[b])
		}
	}
	if q.head < q.tail && !q.slot(q.head).Valid {
		return fmt.Errorf("head points at invalid entry")
	}
	if q.newHead < q.tail && !q.slot(q.newHead).Valid {
		return fmt.Errorf("newHead points at invalid entry")
	}
	if q.maxNewRange > 0 && q.newCount > q.maxNewRange {
		return fmt.Errorf("newCount %d exceeds maxNewRange %d", q.newCount, q.maxNewRange)
	}
	return nil
}

// subscribed reports whether (pos, op) appears in the wakeup index under
// tag (invariant checking only).
func (q *Queue) subscribed(tag int, pos int64, op int) bool {
	if tag < 0 || tag >= len(q.waiters) {
		return false
	}
	for _, w := range q.waiters[tag] {
		if w.pos == pos && w.op == op {
			return true
		}
	}
	return false
}
