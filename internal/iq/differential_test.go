// Fuzz-style differential workout: a mirrored pair of queues — one using
// the indexed wakeup + ready list, one forced onto the reference full-scan
// broadcast — receives an identical random operation stream. After every
// operation both must agree with each other and with a from-scratch scan
// of their own windows (readiness, banks, waiting population, invariants).
package iq

import (
	"math/rand"
	"reflect"
	"testing"
)

// readySnapshot collects ForEachReady's visit order.
func readySnapshot(q *Queue) []int64 {
	var out []int64
	q.ForEachReady(func(pos int64, e *Entry) bool {
		out = append(out, pos)
		return true
	})
	return out
}

// readyScan recomputes the ready set the slow way: valid entries,
// oldest-first, whose operands have all arrived.
func readyScan(q *Queue) []int64 {
	var out []int64
	q.ForEachValid(func(pos int64, e *Entry) bool {
		if e.Ready() {
			out = append(out, pos)
		}
		return true
	})
	return out
}

// banksOnScan recomputes BanksOn from the valid entries.
func banksOnScan(q *Queue) int {
	banks := map[int]bool{}
	q.ForEachValid(func(pos int64, e *Entry) bool {
		banks[q.bankOf(pos)] = true
		return true
	})
	return len(banks)
}

func compareQueues(t *testing.T, step int, fast, ref *Queue) {
	t.Helper()
	if err := fast.CheckInvariants(); err != nil {
		t.Fatalf("step %d: fast invariants: %v", step, err)
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Fatalf("step %d: reference invariants: %v", step, err)
	}
	if fast.Count() != ref.Count() || fast.WaitingOperands() != ref.WaitingOperands() ||
		fast.Span() != ref.Span() || fast.NewCount() != ref.NewCount() {
		t.Fatalf("step %d: populations diverge: fast count=%d waiting=%d span=%d new=%d, ref count=%d waiting=%d span=%d new=%d",
			step, fast.Count(), fast.WaitingOperands(), fast.Span(), fast.NewCount(),
			ref.Count(), ref.WaitingOperands(), ref.Span(), ref.NewCount())
	}
	if fast.BanksOn() != ref.BanksOn() || fast.BanksOn() != banksOnScan(fast) {
		t.Fatalf("step %d: banksOn diverges: fast=%d ref=%d scan=%d",
			step, fast.BanksOn(), ref.BanksOn(), banksOnScan(fast))
	}
	fastReady, scanReady := readySnapshot(fast), readyScan(fast)
	if !reflect.DeepEqual(fastReady, scanReady) {
		t.Fatalf("step %d: fast ready list %v disagrees with its own scan %v", step, fastReady, scanReady)
	}
	if refReady := readyScan(ref); !reflect.DeepEqual(fastReady, refReady) {
		t.Fatalf("step %d: ready sets diverge: fast=%v ref=%v", step, fastReady, refReady)
	}
}

// TestRandomizedIndexMatchesScan drives the mirrored pair through ~2000
// random dispatch/issue/broadcast/hint/resize operations per seed and
// geometry, including issuing entries that still wait (the unsubscribe
// path) and rebroadcasting dead tags (the stale-subscriber path).
func TestRandomizedIndexMatchesScan(t *testing.T) {
	geometries := []Config{
		{Entries: 80, BankSize: 8},
		{Entries: 16, BankSize: 4},
		{Entries: 24, BankSize: 8, Collapsible: true},
	}
	const tagSpace = 24
	for _, seed := range []int64{1, 7, 42, 20260730} {
		for _, cfg := range geometries {
			fast := MustNew(cfg)
			ref := MustNew(cfg)
			ref.SetReference(true)
			rng := rand.New(rand.NewSource(seed))
			randTag := func() int {
				if rng.Intn(8) == 0 {
					return -1 // absent operand
				}
				return rng.Intn(tagSpace)
			}
			var id int64
			for step := 0; step < 2000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // dispatch
					tags := [OperandsPerEntry]int{randTag(), randTag()}
					var waiting [OperandsPerEntry]bool
					for i, tg := range tags {
						waiting[i] = tg >= 0 && rng.Intn(2) == 0
					}
					pf, okf := fast.Dispatch(id, tags, waiting)
					pr, okr := ref.Dispatch(id, tags, waiting)
					if okf != okr || pf != pr {
						t.Fatalf("step %d: dispatch diverges: fast=(%d,%v) ref=(%d,%v)", step, pf, okf, pr, okr)
					}
					id++
				case op < 7: // broadcast (sometimes a tag nobody waits on)
					tag := rng.Intn(tagSpace + 4)
					fast.BeginCycle()
					ref.BeginCycle()
					if wf, wr := fast.Broadcast(tag), ref.Broadcast(tag); wf != wr {
						t.Fatalf("step %d: broadcast(%d) woke %d fast vs %d ref", step, tag, wf, wr)
					}
				case op < 9: // issue a ready entry, occasionally a waiting one
					pool := readyScan(fast)
					if rng.Intn(10) == 0 || len(pool) == 0 {
						pool = pool[:0]
						fast.ForEachValid(func(pos int64, e *Entry) bool {
							pool = append(pool, pos)
							return true
						})
					}
					if len(pool) == 0 {
						continue
					}
					pos := pool[rng.Intn(len(pool))]
					fast.Issue(pos)
					ref.Issue(pos)
				default: // control operations
					switch rng.Intn(3) {
					case 0:
						n := 1 + rng.Intn(cfg.Entries)
						fast.SetHint(n)
						ref.SetHint(n)
					case 1:
						fast.ClearHint()
						ref.ClearHint()
					case 2:
						n := rng.Intn(cfg.Entries + 1)
						fast.SetSizeLimit(n)
						ref.SetSizeLimit(n)
					}
				}
				compareQueues(t, step, fast, ref)
			}
			if !reflect.DeepEqual(fast.Stats, ref.Stats) {
				t.Fatalf("seed %d cfg %+v: stats diverge:\nfast: %+v\nref:  %+v", seed, cfg, fast.Stats, ref.Stats)
			}
		}
	}
}
