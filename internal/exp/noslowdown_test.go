package exp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/sim"
)

// randomLoopProgram generates a random but well-formed loop kernel:
// a mix of ALU ops, multiplies and loads over a small register window,
// with a serial counter. These are the structures the paper's analysis
// claims to size without delaying the critical path.
func randomLoopProgram(rng *rand.Rand) *prog.Program {
	b := prog.NewBuilder("rand")
	tab := b.AppendData(make([]int64, 512)...)
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Li(isa.R(2), int64(tab)).
		Label("loop")
	n := 6 + rng.Intn(18)
	for i := 0; i < n; i++ {
		dst := isa.R(3 + rng.Intn(12))
		src := isa.R(3 + rng.Intn(12))
		switch rng.Intn(6) {
		case 0:
			pb.Muli(dst, src, int64(1+rng.Intn(7)))
		case 1:
			pb.Ld(dst, isa.R(2), int64(8*rng.Intn(64)))
		case 2:
			pb.Add(dst, src, isa.R(3+rng.Intn(12)))
		case 3:
			pb.Shri(dst, src, int64(rng.Intn(5)))
		case 4:
			pb.Xori(dst, src, int64(rng.Intn(1024)))
		default:
			pb.Addi(dst, src, int64(rng.Intn(16)))
		}
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	return pb.MustBuild()
}

// TestNoSlowdownProperty is the paper's central claim, property-tested:
// for generated loop kernels, Extension-mode instrumentation (no NOOP
// slot cost) must not slow execution by more than a small epsilon, while
// never increasing issue-queue occupancy. The bound is 6%: the paper's
// own per-benchmark losses reach 5.4% from exactly the second-order
// effects the analysis assumes away (the pseudo issue queue has no
// front-end, no fetch-group breaks, and perfect L1 hits), and the
// worst generated kernels here run near peak width where every residual
// modelling gap costs real slots.
func TestNoSlowdownProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs many simulations")
	}
	rng := rand.New(rand.NewSource(1234))
	const budget = 25_000
	for trial := 0; trial < 12; trial++ {
		seed := rng.Int63()
		gen := rand.New(rand.NewSource(seed))
		base, err := sim.RunProgram(sim.DefaultConfig(), randomLoopProgram(gen), budget)
		if err != nil {
			t.Fatal(err)
		}
		gen = rand.New(rand.NewSource(seed))
		p := randomLoopProgram(gen)
		if _, err := core.Instrument(p, core.Options{Mode: core.ModeTag}); err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Control = sim.ControlHints
		tech, err := sim.RunProgram(cfg, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		lossPct := (1 - tech.IPC()/base.IPC()) * 100
		if lossPct > 6.0 {
			t.Errorf("trial %d (seed %d): IPC loss %.2f%% exceeds 6%% (base %.2f, tech %.2f)",
				trial, seed, lossPct, base.IPC(), tech.IPC())
		}
		if tech.AvgIQOccupancy() > base.AvgIQOccupancy()*1.05 {
			t.Errorf("trial %d: occupancy grew %.1f -> %.1f under control",
				trial, base.AvgIQOccupancy(), tech.AvgIQOccupancy())
		}
	}
}

// TestParallelSerialEquivalence: the suite runner must produce identical
// statistics regardless of worker count (no shared-state leakage between
// parallel runs).
func TestParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	techs := []Technique{TechBaseline, TechNOOP}
	serial := NewRunner(20_000)
	serial.Parallel = 1
	s1, err := serial.RunSuite(techs)
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewRunner(20_000)
	parallel.Parallel = 8
	s2, err := parallel.RunSuite(techs)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s1.Benchmarks {
		for _, tech := range techs {
			a, c := s1.Results[b][tech].Stats, s2.Results[b][tech].Stats
			if a.Cycles != c.Cycles || a.CommittedReal != c.CommittedReal ||
				a.IQ.GatedWakeups != c.IQ.GatedWakeups {
				t.Errorf("%s/%s: serial and parallel runs diverge", b, tech)
			}
		}
	}
}
