package exp

import (
	"fmt"
)

// Sampled reports whether the suite ran through the sampled-simulation
// engine (and therefore carries error bars).
func (s *SuiteResults) Sampled() bool {
	return s.Campaign != nil && s.Campaign.Spec.Sampling != nil
}

// samplingTable builds the error-bar table: per benchmark and technique,
// the sampled IPC with its confidence half-width, the window count and
// the measured fraction of the stream.
func (s *SuiteResults) samplingTable() *table {
	sp := s.Campaign.Spec.Sampling
	conf := 0.0
	cols := []string{"bench"}
	techs := []Technique{}
	for _, t := range AllTechniques() {
		for _, b := range s.Benchmarks {
			if _, ok := s.Results[b][t]; ok {
				techs = append(techs, t)
				cols = append(cols, t.String())
				break
			}
		}
	}
	cols = append(cols, "windows", "sampled%")
	t := newTable("", cols...)
	for _, b := range s.Benchmarks {
		row := []string{b}
		// windows and sampled% can in principle differ per technique (a
		// cancelled cell, a future per-technique regime); report the range
		// rather than silently showing the last technique's values.
		minW, maxW := -1, -1
		minF, maxF := 0.0, 0.0
		for _, tech := range techs {
			r, ok := s.Results[b][tech]
			if !ok || r.Sampled == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f ±%.3f", r.Sampled.IPC.Mean, r.Sampled.IPC.Half))
			conf = r.Sampled.Confidence
			frac := 0.0
			if r.Sampled.TotalInsts > 0 {
				frac = 100 * float64(r.Sampled.SampledInsts) / float64(r.Sampled.TotalInsts)
			}
			if minW < 0 {
				minW, maxW = r.Sampled.Windows, r.Sampled.Windows
				minF, maxF = frac, frac
				continue
			}
			minW, maxW = min(minW, r.Sampled.Windows), max(maxW, r.Sampled.Windows)
			minF, maxF = min(minF, frac), max(maxF, frac)
		}
		row = append(row, rangeLabel(minW, maxW), rangeLabelF(minF, maxF))
		t.addRow(row...)
	}
	t.title = fmt.Sprintf("Sampled simulation: per-window IPC (mean ± %.0f%% CI half-width)\n"+
		"regime: window %d / period %d / warmup %d (+%d detailed fill) instructions",
		100*conf, sp.Window, sp.Period, sp.Warmup, sp.DetailWarmup)
	t.addNote("Stats above are population-extrapolated totals; intervals estimate per-window dispersion.")
	return t
}

// rangeLabel renders an int range, collapsing equal endpoints.
func rangeLabel(lo, hi int) string {
	if lo < 0 {
		return "-"
	}
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// rangeLabelF renders a percentage range, collapsing equal endpoints.
func rangeLabelF(lo, hi float64) string {
	if lo == hi {
		return fmt.Sprintf("%.1f", lo)
	}
	return fmt.Sprintf("%.1f-%.1f", lo, hi)
}

// SamplingReport renders the error-bar table for a sampled suite; for an
// exact suite it returns the empty string.
func SamplingReport(s *SuiteResults) string {
	if !s.Sampled() {
		return ""
	}
	return s.samplingTable().String()
}

// SamplingReportCSV is SamplingReport in CSV form.
func SamplingReportCSV(s *SuiteResults) string {
	if !s.Sampled() {
		return ""
	}
	return s.samplingTable().CSV()
}
