package exp

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// suite runs the full evaluation once per test binary at a reduced budget
// and shares it across tests (the shape assertions all read it).
var sharedSuite *SuiteResults

func getSuite(t *testing.T) *SuiteResults {
	t.Helper()
	if sharedSuite != nil {
		return sharedSuite
	}
	r := NewRunner(120_000)
	s, err := r.RunSuite(AllTechniques())
	if err != nil {
		t.Fatal(err)
	}
	sharedSuite = s
	return s
}

func TestRunSingleBenchmark(t *testing.T) {
	r := NewRunner(20_000)
	b, _ := workload.ByName("gzip")
	res, err := r.Run(b, TechNOOP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CommittedReal != 20_000 {
		t.Errorf("committed = %d, want budget", res.Stats.CommittedReal)
	}
	if res.Hints == 0 {
		t.Error("NOOP technique inserted no hints")
	}
	if res.Stats.HintsApplied == 0 {
		t.Error("no hints applied at runtime")
	}
}

func TestTechniqueNames(t *testing.T) {
	want := map[Technique]string{
		TechBaseline:  "baseline",
		TechNOOP:      "NOOP",
		TechExtension: "Extension",
		TechImproved:  "Improved",
		TechAbella:    "abella",
	}
	for tech, name := range want {
		if tech.String() != name {
			t.Errorf("technique %d = %q, want %q", int(tech), tech.String(), name)
		}
	}
	if len(AllTechniques()) != int(numTechniques) {
		t.Errorf("AllTechniques incomplete")
	}
}

// TestPaperShapeIPCLoss asserts the paper's figure 6/10 orderings: the
// compiler techniques lose less than the hardware-adaptive abella, the
// tag-based Extension loses no more than NOOP insertion, and Improved
// loses no more than Extension. Absolute values are substrate-dependent
// and not asserted (see EXPERIMENTS.md).
func TestPaperShapeIPCLoss(t *testing.T) {
	s := getSuite(t)
	loss := func(tech Technique) float64 {
		return s.Mean(func(b string) float64 { return s.IPCLossPct(b, tech) })
	}
	noop, ext, imp, abella := loss(TechNOOP), loss(TechExtension), loss(TechImproved), loss(TechAbella)
	t.Logf("IPC loss: NOOP=%.2f Extension=%.2f Improved=%.2f abella=%.2f", noop, ext, imp, abella)
	if noop >= abella {
		t.Errorf("NOOP loss %.2f must be below abella %.2f (paper fig 6)", noop, abella)
	}
	if ext > noop+0.2 {
		t.Errorf("Extension loss %.2f must not exceed NOOP %.2f (paper fig 10)", ext, noop)
	}
	if imp > ext+0.2 {
		t.Errorf("Improved loss %.2f must not exceed Extension %.2f (paper fig 10)", imp, ext)
	}
	if noop < 0 || noop > 8 {
		t.Errorf("NOOP loss %.2f out of plausible range (paper 2.2%%)", noop)
	}
}

// TestPaperShapePowerSavings asserts the figure 8/9 orderings: the
// technique's IQ dynamic saving beats both the nonEmpty accounting bar
// and abella's, at lower IPC loss; register-file savings are positive and
// smaller than IQ savings.
func TestPaperShapePowerSavings(t *testing.T) {
	s := getSuite(t)
	dyn := s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQDynamicPct })
	stat := s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQStaticPct })
	abellaDyn := s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).IQDynamicPct })
	nonEmpty := s.Mean(s.NonEmptyPct)
	rfDyn := s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFDynamicPct })
	rfStat := s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFStaticPct })
	t.Logf("IQ dyn=%.1f stat=%.1f nonEmpty=%.1f abellaDyn=%.1f RF dyn=%.1f stat=%.1f",
		dyn, stat, nonEmpty, abellaDyn, rfDyn, rfStat)
	if dyn <= nonEmpty {
		t.Errorf("technique dyn %.1f must beat nonEmpty gating alone %.1f", dyn, nonEmpty)
	}
	if dyn < abellaDyn-1.0 {
		t.Errorf("technique dyn %.1f must be at least abella's %.1f", dyn, abellaDyn)
	}
	if dyn < 30 || dyn > 65 {
		t.Errorf("IQ dynamic saving %.1f implausible (paper 47%%)", dyn)
	}
	if stat < 20 || stat > 60 {
		t.Errorf("IQ static saving %.1f implausible (paper 31%%)", stat)
	}
	if rfDyn <= 0 || rfStat <= 0 {
		t.Errorf("regfile savings must be positive: %.1f/%.1f", rfDyn, rfStat)
	}
	if rfDyn >= dyn {
		t.Errorf("regfile dyn %.1f must be below IQ dyn %.1f (paper fig 8 vs 9)", rfDyn, dyn)
	}
}

// TestPaperShapePerBenchmark asserts the benchmark-level stories the
// paper tells: mcf (memory-bound) has the lowest IPC loss; the call-dense
// interpreter benchmark suffers most under NOOP insertion and is fixed by
// Extension; occupancy reduction is substantial on average.
func TestPaperShapePerBenchmark(t *testing.T) {
	s := getSuite(t)
	if l := s.IPCLossPct("mcf", TechNOOP); l > 0.5 {
		t.Errorf("mcf NOOP loss %.2f, want ~0 (memory-bound)", l)
	}
	// Among the benchmarks the NOOP technique hurts, at least one must be
	// rescued by Extension — the paper's vortex story (NOOP-slot cost
	// vanishes under tagging). Not every hurt benchmark is slot-driven
	// (some losses come from hint values), so the assertion is
	// existential, exactly like the paper's narrative.
	rescued := false
	var hurt []string
	for _, b := range s.Benchmarks {
		noopLoss := s.IPCLossPct(b, TechNOOP)
		if noopLoss < 1.0 {
			continue
		}
		hurt = append(hurt, b)
		extLoss := s.IPCLossPct(b, TechExtension)
		t.Logf("%s: NOOP %.2f%% -> Extension %.2f%%", b, noopLoss, extLoss)
		if extLoss < noopLoss*0.4 {
			rescued = true
		}
	}
	if len(hurt) > 0 && !rescued {
		t.Errorf("no NOOP-hurt benchmark (%v) was rescued by Extension", hurt)
	}
	occ := s.Mean(func(b string) float64 { return s.OccupancyReductionPct(b, TechNOOP) })
	if occ < 8 {
		t.Errorf("mean occupancy reduction %.1f%% too small (paper 23%%)", occ)
	}
	if mcfOcc := s.OccupancyReductionPct("mcf", TechNOOP); mcfOcc < 40 {
		t.Errorf("mcf occupancy reduction %.1f%%, want large (serial chain)", mcfOcc)
	}
}

func TestFigureRenderings(t *testing.T) {
	s := getSuite(t)
	figs := map[string]string{
		"fig6":  Figure6(s),
		"fig7":  Figure7(s),
		"fig8":  Figure8(s),
		"fig9":  Figure9(s),
		"fig10": Figure10(s),
		"fig11": Figure11(s),
		"fig12": Figure12(s),
		"sum":   Summary(s),
	}
	for name, text := range figs {
		if !strings.Contains(text, "SPECINT") && name != "sum" {
			t.Errorf("%s: missing SPECINT mean row", name)
		}
		for _, b := range s.Benchmarks {
			if name != "sum" && !strings.Contains(text, b) {
				t.Errorf("%s: missing benchmark %s", name, b)
			}
		}
		if len(text) < 100 {
			t.Errorf("%s: suspiciously short rendering", name)
		}
	}
	if !strings.Contains(figs["fig8"], "nonEmpty") {
		t.Error("figure 8 must include the nonEmpty bar")
	}
	if !strings.Contains(figs["fig8"], "abella") {
		t.Error("figure 8 must include the abella bar")
	}
}

func TestTable1Rendering(t *testing.T) {
	r := NewRunner(0)
	text := Table1(r.Config)
	for _, want := range []string{"80 entries", "128 entries", "112 entries",
		"Hybrid 2K gshare", "64KB", "512KB", "6 ALU (1 cycle), 3 Mul (3 cycles)"} {
		if !strings.Contains(text, want) {
			t.Errorf("table 1 missing %q:\n%s", want, text)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	text := Table2(42)
	for _, b := range workload.Suite() {
		if !strings.Contains(text, b.Name) {
			t.Errorf("table 2 missing %s", b.Name)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	tb := newTable("x", "A", "B")
	tb.addRow("1", "2")
	csv := tb.CSV()
	if csv != "A,B\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestMeanHelper(t *testing.T) {
	s := &SuiteResults{Benchmarks: []string{"a", "b"}}
	got := s.Mean(func(b string) float64 {
		if b == "a" {
			return 2
		}
		return 4
	})
	if got != 3 {
		t.Errorf("mean = %f, want 3", got)
	}
	empty := &SuiteResults{}
	if empty.Mean(func(string) float64 { return 1 }) != 0 {
		t.Error("empty mean must be 0")
	}
}
