package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/iq"
	"repro/internal/power"
	"repro/internal/sim"
)

// fixtureSuite builds a SuiteResults by hand with arithmetic chosen so
// every derived metric has an exact expected value — no simulation.
func fixtureSuite() *SuiteResults {
	mk := func(committed, cycles, occSum, occCycles int64) sim.Stats {
		return sim.Stats{
			CommittedReal: committed,
			Cycles:        cycles,
			IQ:            iq.Stats{OccupancySum: occSum, Cycles: occCycles},
		}
	}
	s := &SuiteResults{
		Benchmarks: []string{"alpha", "beta"},
		Results:    map[string]map[Technique]RunResult{},
		Params:     power.DefaultParams(),
		IQBanks:    10,
		RFBanks:    14,
	}
	// alpha: baseline IPC 2.0 (1000/500), NOOP IPC 1.5 (750/500) -> 25% loss.
	//        occupancy 40 -> 30 -> 25% reduction.
	s.Results["alpha"] = map[Technique]RunResult{
		TechBaseline: {Bench: "alpha", Tech: TechBaseline, Stats: mk(1000, 500, 20000, 500)},
		TechNOOP:     {Bench: "alpha", Tech: TechNOOP, Stats: mk(750, 500, 15000, 500)},
	}
	// beta: baseline IPC 1.0, NOOP IPC 0.9 -> 10% loss.
	//       occupancy 60 -> 15 -> 75% reduction.
	s.Results["beta"] = map[Technique]RunResult{
		TechBaseline: {Bench: "beta", Tech: TechBaseline, Stats: mk(500, 500, 30000, 500)},
		TechNOOP:     {Bench: "beta", Tech: TechNOOP, Stats: mk(450, 500, 7500, 500)},
	}
	return s
}

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestIPCLossPctFixture(t *testing.T) {
	s := fixtureSuite()
	if got := s.IPCLossPct("alpha", TechNOOP); !almost(got, 25) {
		t.Errorf("alpha loss = %f, want 25", got)
	}
	if got := s.IPCLossPct("beta", TechNOOP); !almost(got, 10) {
		t.Errorf("beta loss = %f, want 10", got)
	}
	if got := s.IPCLossPct("alpha", TechBaseline); !almost(got, 0) {
		t.Errorf("baseline self-loss = %f, want 0", got)
	}
	// Zero-IPC baseline must not divide by zero.
	s.Results["alpha"][TechBaseline] = RunResult{}
	if got := s.IPCLossPct("alpha", TechNOOP); got != 0 {
		t.Errorf("zero baseline loss = %f, want 0", got)
	}
}

func TestOccupancyReductionPctFixture(t *testing.T) {
	s := fixtureSuite()
	if got := s.OccupancyReductionPct("alpha", TechNOOP); !almost(got, 25) {
		t.Errorf("alpha reduction = %f, want 25", got)
	}
	if got := s.OccupancyReductionPct("beta", TechNOOP); !almost(got, 75) {
		t.Errorf("beta reduction = %f, want 75", got)
	}
	s.Results["beta"][TechBaseline] = RunResult{}
	if got := s.OccupancyReductionPct("beta", TechNOOP); got != 0 {
		t.Errorf("zero-occupancy baseline = %f, want 0", got)
	}
}

func TestMeanAndSpreadFixture(t *testing.T) {
	s := fixtureSuite()
	loss := func(b string) float64 { return s.IPCLossPct(b, TechNOOP) }
	if got := s.Mean(loss); !almost(got, 17.5) { // (25+10)/2
		t.Errorf("mean = %f, want 17.5", got)
	}
	min, max, sd := s.Spread(loss)
	if !almost(min, 10) || !almost(max, 25) {
		t.Errorf("spread min/max = %f/%f, want 10/25", min, max)
	}
	if !almost(sd, 7.5) { // population stddev of {25,10}
		t.Errorf("stddev = %f, want 7.5", sd)
	}
}

func TestBanksOffPctFixture(t *testing.T) {
	s := fixtureSuite()
	// 6 of 10 banks on -> 40% off.
	st := s.Results["alpha"][TechNOOP]
	st.Stats.IQ.BanksOnSum = 3000
	st.Stats.IQ.Cycles = 500
	s.Results["alpha"][TechNOOP] = st
	if got := s.BanksOffPct("alpha", TechNOOP); !almost(got, 40) {
		t.Errorf("banks off = %f, want 40", got)
	}
}

// TestRunSuiteErrorPropagation is the harness-level regression test for
// the silent-error-dropping bug: a failing cell must fail the suite with
// an error naming the cell, not hang or vanish.
func TestRunSuiteErrorPropagation(t *testing.T) {
	r := NewRunner(5_000)
	r.Benchmarks = []string{"doesnotexist", "gzip"}
	r.Parallel = 1
	s, err := r.RunSuite([]Technique{TechBaseline})
	if err == nil {
		t.Fatal("suite with unknown benchmark returned nil error")
	}
	if s != nil {
		t.Error("failed suite must not return results")
	}
	if !strings.Contains(err.Error(), "doesnotexist") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// TestRunSuiteContextCancellation: a cancelled context aborts the suite.
func TestRunSuiteContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(5_000)
	if _, err := r.RunSuiteContext(ctx, []Technique{TechBaseline}); err == nil {
		t.Fatal("cancelled suite returned nil error")
	}
}

// TestRunSuiteCacheReuse: the harness inherits the engine's cache — a
// second identical suite run must be served entirely from disk.
func TestRunSuiteCacheReuse(t *testing.T) {
	r := NewRunner(5_000)
	r.Benchmarks = []string{"gzip"}
	r.CacheDir = t.TempDir()
	s1, err := r.RunSuite([]Technique{TechBaseline, TechNOOP})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Campaign.Executed != 2 {
		t.Fatalf("first run executed %d", s1.Campaign.Executed)
	}
	s2, err := r.RunSuite([]Technique{TechBaseline, TechNOOP})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Campaign.CacheHits != 2 || s2.Campaign.Executed != 0 {
		t.Errorf("second run: executed=%d hits=%d", s2.Campaign.Executed, s2.Campaign.CacheHits)
	}
	if s1.Results["gzip"][TechNOOP].Stats != s2.Results["gzip"][TechNOOP].Stats {
		t.Error("cached suite stats diverge")
	}
}
