package exp

import (
	"fmt"
	"strings"
)

// table is a minimal aligned-column text table.
type table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.title)) + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(c, widths[i], i != 0))
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		sb.WriteString(n + "\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.headers, ",") + "\n")
	for _, r := range t.rows {
		sb.WriteString(strings.Join(r, ",") + "\n")
	}
	return sb.String()
}

// pad left- or right-aligns a cell.
func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
