// Package exp is the experiment harness: it prepares each benchmark under
// each technique, runs the timing simulator, applies the power model, and
// regenerates every table and figure of the paper's evaluation (section
// 5). See DESIGN.md section 4 for the experiment index.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Technique identifies one experimental configuration.
type Technique int

// Techniques, in the paper's naming.
const (
	// TechBaseline: uncontrolled 80-entry queue (the reference).
	TechBaseline Technique = iota
	// TechNOOP: compiler hints via special NOOPs (section 5.2).
	TechNOOP
	// TechExtension: compiler hints via instruction tags (section 5.3).
	TechExtension
	// TechImproved: tags plus inter-procedural FU contention analysis.
	TechImproved
	// TechAbella: hardware-adaptive IqRob64 (Abella & González).
	TechAbella
	numTechniques
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case TechBaseline:
		return "baseline"
	case TechNOOP:
		return "NOOP"
	case TechExtension:
		return "Extension"
	case TechImproved:
		return "Improved"
	case TechAbella:
		return "abella"
	default:
		return fmt.Sprintf("tech?%d", int(t))
	}
}

// AllTechniques lists every technique including the baseline.
func AllTechniques() []Technique {
	return []Technique{TechBaseline, TechNOOP, TechExtension, TechImproved, TechAbella}
}

// RunResult is one (benchmark, technique) run.
type RunResult struct {
	Bench     string
	Tech      Technique
	Stats     sim.Stats
	CompileMS float64 // instrumentation/analysis wall time
	GenMS     float64 // program generation+link wall time ("baseline" compile)
	Hints     int     // static hints materialised
}

// Runner executes the evaluation.
type Runner struct {
	Budget   int64 // committed real instructions per run
	Seed     int64
	Params   power.Params
	Config   sim.Config // base configuration; technique fields overridden
	Parallel int        // worker count; 0 = GOMAXPROCS
}

// NewRunner returns a runner with the paper's configuration.
func NewRunner(budget int64) *Runner {
	return &Runner{
		Budget: budget,
		Seed:   42,
		Params: power.DefaultParams(),
		Config: sim.DefaultConfig(),
	}
}

// prepare builds and instruments the benchmark program for a technique.
func (r *Runner) prepare(b workload.Benchmark, tech Technique) (*prog.Program, RunResult, error) {
	res := RunResult{Bench: b.Name, Tech: tech}
	t0 := time.Now()
	p := b.Build(r.Seed)
	res.GenMS = float64(time.Since(t0).Microseconds()) / 1000

	opt := core.Options{}
	switch tech {
	case TechNOOP:
		opt.Mode = core.ModeNOOP
	case TechExtension:
		opt.Mode = core.ModeTag
	case TechImproved:
		opt.Mode = core.ModeTag
		opt.Improved = true
	default:
		return p, res, nil
	}
	t1 := time.Now()
	rep, err := core.Instrument(p, opt)
	if err != nil {
		return nil, res, fmt.Errorf("%s/%s: %w", b.Name, tech, err)
	}
	res.CompileMS = float64(time.Since(t1).Microseconds()) / 1000
	res.Hints = rep.HintsInserted + rep.TagsApplied
	return p, res, nil
}

// simConfig derives the simulator configuration for a technique.
func (r *Runner) simConfig(tech Technique) sim.Config {
	cfg := r.Config
	switch tech {
	case TechNOOP, TechExtension, TechImproved:
		cfg.Control = sim.ControlHints
	case TechAbella:
		cfg.Control = sim.ControlAdaptive
	default:
		cfg.Control = sim.ControlNone
	}
	return cfg
}

// Run executes one benchmark under one technique.
func (r *Runner) Run(b workload.Benchmark, tech Technique) (RunResult, error) {
	p, res, err := r.prepare(b, tech)
	if err != nil {
		return res, err
	}
	st, err := sim.RunProgram(r.simConfig(tech), p, r.Budget)
	if err != nil {
		return res, fmt.Errorf("%s/%s: %w", b.Name, tech, err)
	}
	res.Stats = st
	return res, nil
}

// SuiteResults holds every run of the evaluation, indexed by benchmark
// name and technique.
type SuiteResults struct {
	Benchmarks []string
	Results    map[string]map[Technique]RunResult
	Params     power.Params
	IQBanks    int
	RFBanks    int
}

// RunSuite runs all benchmarks under the given techniques in parallel.
func (r *Runner) RunSuite(techs []Technique) (*SuiteResults, error) {
	benches := workload.Suite()
	out := &SuiteResults{
		Results: map[string]map[Technique]RunResult{},
		Params:  r.Params,
		IQBanks: r.Config.IQ.Entries / r.Config.IQ.BankSize,
		RFBanks: r.Config.IntRF.Regs / r.Config.IntRF.BankSize,
	}
	for _, b := range benches {
		out.Benchmarks = append(out.Benchmarks, b.Name)
		out.Results[b.Name] = map[Technique]RunResult{}
	}

	type job struct {
		b    workload.Benchmark
		tech Technique
	}
	var jobs []job
	for _, b := range benches {
		for _, t := range techs {
			jobs = append(jobs, job{b, t})
		}
	}
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				res, err := r.Run(j.b, j.tech)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				out.Results[j.b.Name][j.tech] = res
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// --- derived metrics ---

// IPCLossPct returns the IPC loss of tech vs baseline for one benchmark.
func (s *SuiteResults) IPCLossPct(bench string, tech Technique) float64 {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	if base.IPC() == 0 {
		return 0
	}
	return (1 - t.IPC()/base.IPC()) * 100
}

// OccupancyReductionPct returns the IQ occupancy reduction vs baseline.
func (s *SuiteResults) OccupancyReductionPct(bench string, tech Technique) float64 {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	if base.AvgIQOccupancy() == 0 {
		return 0
	}
	return (1 - t.AvgIQOccupancy()/base.AvgIQOccupancy()) * 100
}

// BanksOffPct returns the fraction of IQ banks gated off under tech.
func (s *SuiteResults) BanksOffPct(bench string, tech Technique) float64 {
	t := s.Results[bench][tech].Stats
	return (1 - t.AvgIQBanksOn()/float64(s.IQBanks)) * 100
}

// Savings returns the power savings of tech vs the baseline run.
func (s *SuiteResults) Savings(bench string, tech Technique) power.Savings {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	return s.Params.Compute(&base, &t, s.IQBanks, s.RFBanks)
}

// NonEmptyPct returns the paper's nonEmpty accounting bar for a benchmark.
func (s *SuiteResults) NonEmptyPct(bench string) float64 {
	base := s.Results[bench][TechBaseline].Stats
	return s.Params.NonEmptySavings(&base)
}

// Mean returns the arithmetic mean of f over all benchmarks (the paper's
// SPECINT bar).
func (s *SuiteResults) Mean(f func(bench string) float64) float64 {
	xs := make([]float64, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		xs = append(xs, f(b))
	}
	return stats.Mean(xs)
}

// Spread returns the min, max and standard deviation of f across the
// suite — the per-benchmark variation the paper's bar charts show.
func (s *SuiteResults) Spread(f func(bench string) float64) (min, max, stddev float64) {
	xs := make([]float64, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		xs = append(xs, f(b))
	}
	min, max = stats.MinMax(xs)
	return min, max, stats.StdDev(xs)
}
