// Package exp is the experiment harness: it prepares each benchmark under
// each technique, runs the timing simulator, applies the power model, and
// regenerates every table and figure of the paper's evaluation (section
// 5). See DESIGN.md section 4 for the experiment index.
//
// Execution is delegated to the campaign engine (internal/campaign):
// RunSuite builds a campaign spec for the paper's grid and SuiteResults
// is a thin view over the engine's ResultSet, so the harness inherits
// parallelism, cancellation and on-disk result caching.
package exp

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Technique identifies one experimental configuration.
type Technique int

// Techniques, in the paper's naming.
const (
	// TechBaseline: uncontrolled 80-entry queue (the reference).
	TechBaseline Technique = iota
	// TechNOOP: compiler hints via special NOOPs (section 5.2).
	TechNOOP
	// TechExtension: compiler hints via instruction tags (section 5.3).
	TechExtension
	// TechImproved: tags plus inter-procedural FU contention analysis.
	TechImproved
	// TechAbella: hardware-adaptive IqRob64 (Abella & González).
	TechAbella
	numTechniques
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case TechBaseline:
		return "baseline"
	case TechNOOP:
		return "NOOP"
	case TechExtension:
		return "Extension"
	case TechImproved:
		return "Improved"
	case TechAbella:
		return "abella"
	default:
		return fmt.Sprintf("tech?%d", int(t))
	}
}

// Campaign returns the campaign engine's name for the technique.
func (t Technique) Campaign() campaign.Technique {
	return campaign.Technique(t.String())
}

// techniqueOf inverts Campaign; ok is false for unknown names.
func techniqueOf(ct campaign.Technique) (Technique, bool) {
	for t := TechBaseline; t < numTechniques; t++ {
		if t.Campaign() == ct {
			return t, true
		}
	}
	return 0, false
}

// AllTechniques lists every technique including the baseline.
func AllTechniques() []Technique {
	return []Technique{TechBaseline, TechNOOP, TechExtension, TechImproved, TechAbella}
}

// RunResult is one (benchmark, technique) run.
type RunResult struct {
	Bench     string
	Tech      Technique
	Stats     sim.Stats
	CompileMS float64 // instrumentation/analysis wall time
	GenMS     float64 // program generation+link wall time ("baseline" compile)
	Hints     int     // static hints materialised
	// Sampled carries the error bars of a sampled run (nil for exact):
	// Stats then holds population-extrapolated totals.
	Sampled *campaign.SampledMeta
}

// Runner executes the evaluation.
type Runner struct {
	Budget     int64 // committed real instructions per run
	Seed       int64
	Params     power.Params
	Config     sim.Config // base configuration; technique fields overridden
	Parallel   int        // worker count; 0 = GOMAXPROCS
	CacheDir   string     // on-disk result cache; "" = no caching
	CkptDir    string     // checkpoint artifact store; "" = warm from scratch
	Benchmarks []string   // benchmark subset; empty = full suite
	// Sampling runs the suite through the sampled-simulation engine
	// (nil = exact). Results then carry error bars; see SamplingReport.
	Sampling *campaign.Sampling
	// Lockstep batches sampled cells that share a warming identity into
	// one emulator stream feeding every cell's core (Engine.Lockstep).
	// Exact runs are unaffected. Local execution only: a Remote server
	// schedules its own work.
	Lockstep bool
	// Remote, when non-empty, executes campaigns on a sdiqd campaign
	// service at this base URL instead of the local engine: every
	// experiment and sweep transparently becomes a POST + event stream +
	// export fetch, sharing the server's cache and in-flight dedup with
	// every other client. Parallel and CacheDir then configure nothing
	// (the server owns both).
	Remote string
	// RemoteToken is the tenant-role bearer credential sent with every
	// remote request — required when the server runs with -auth.
	RemoteToken string
	// OnRemoteEvent, when non-nil, observes the remote event stream
	// (progress reporting for CLI drivers).
	OnRemoteEvent func(serve.Event)
}

// NewRunner returns a runner with the paper's configuration.
func NewRunner(budget int64) *Runner {
	return &Runner{
		Budget: budget,
		Seed:   42,
		Params: power.DefaultParams(),
		Config: sim.DefaultConfig(),
	}
}

// Spec builds the campaign specification for the runner's grid under the
// given techniques.
func (r *Runner) Spec(techs []Technique) campaign.Spec {
	cts := make([]campaign.Technique, len(techs))
	for i, t := range techs {
		cts[i] = t.Campaign()
	}
	return campaign.Spec{
		Name:       "paper-evaluation",
		Benchmarks: r.Benchmarks,
		Techniques: cts,
		Budget:     r.Budget,
		Seed:       r.Seed,
		Base:       r.Config,
		Params:     r.Params,
		Sampling:   r.Sampling,
	}
}

// engine builds the campaign engine for this runner. A checkpoint
// store that fails to open degrades to warm-from-scratch execution.
func (r *Runner) engine() *campaign.Engine {
	store, _ := ckpt.Open(r.CkptDir)
	return &campaign.Engine{Workers: r.Parallel, CacheDir: r.CacheDir, Ckpt: store, Lockstep: r.Lockstep}
}

// RunCampaign executes an arbitrary campaign spec the way this runner
// is configured: on the local engine, or — with Remote set — on a
// campaign service, returning the server's result set. This is the one
// execution path of every CLI experiment and sweep.
func (r *Runner) RunCampaign(ctx context.Context, spec campaign.Spec) (*campaign.ResultSet, error) {
	if r.Remote != "" {
		cl := serve.NewClient(r.Remote)
		cl.Token = r.RemoteToken
		cl.OnEvent = r.OnRemoteEvent
		return cl.Run(ctx, spec)
	}
	return r.engine().Run(ctx, spec)
}

// Run executes one benchmark under one technique.
func (r *Runner) Run(b workload.Benchmark, tech Technique) (RunResult, error) {
	spec := r.Spec([]Technique{tech})
	spec.Benchmarks = []string{b.Name}
	jobs, err := spec.Jobs()
	if err != nil {
		return RunResult{Bench: b.Name, Tech: tech}, err
	}
	res, err := campaign.Execute(context.Background(), &jobs[0])
	return runResultOf(res), err
}

// runResultOf converts an engine result into the harness view.
func runResultOf(cr campaign.Result) RunResult {
	t, _ := techniqueOf(cr.Tech)
	return RunResult{
		Bench:     cr.Bench,
		Tech:      t,
		Stats:     cr.Stats,
		CompileMS: cr.CompileMS,
		GenMS:     cr.GenMS,
		Hints:     cr.Hints,
		Sampled:   cr.Sampled,
	}
}

// SuiteResults holds every run of the evaluation, indexed by benchmark
// name and technique — the harness view over a campaign ResultSet.
type SuiteResults struct {
	Benchmarks []string
	Results    map[string]map[Technique]RunResult
	Params     power.Params
	IQBanks    int
	RFBanks    int
	// Campaign is the underlying result set (export, cache statistics).
	Campaign *campaign.ResultSet
}

// RunSuite runs all benchmarks under the given techniques in parallel.
func (r *Runner) RunSuite(techs []Technique) (*SuiteResults, error) {
	return r.RunSuiteContext(context.Background(), techs)
}

// RunSuiteContext is RunSuite with cancellation: cancelling ctx stops
// the campaign at job granularity. On a job failure the engine cancels
// the rest of the grid and the joined error of every failure observed is
// returned.
func (r *Runner) RunSuiteContext(ctx context.Context, techs []Technique) (*SuiteResults, error) {
	rs, err := r.RunCampaign(ctx, r.Spec(techs))
	if err != nil {
		return nil, err
	}
	return FromCampaign(rs)
}

// FromCampaign builds the harness view over a campaign result set — the
// bridge that lets figures render from a freshly-simulated campaign or
// one loaded from a JSON export alike. The campaign must be a base
// (no-axes) grid whose techniques are the paper's.
func FromCampaign(rs *campaign.ResultSet) (*SuiteResults, error) {
	if len(rs.Spec.Axes) > 0 {
		return nil, fmt.Errorf("exp: campaign %q sweeps axes; figures need a base grid", rs.Spec.Name)
	}
	if rs.Spec.Base.IQ.BankSize < 1 || rs.Spec.Base.IntRF.BankSize < 1 {
		return nil, fmt.Errorf("exp: campaign %q has no base configuration (truncated export?)", rs.Spec.Name)
	}
	out := &SuiteResults{
		Results:  map[string]map[Technique]RunResult{},
		Params:   rs.Spec.Params,
		IQBanks:  rs.Spec.Base.IQ.Entries / rs.Spec.Base.IQ.BankSize,
		RFBanks:  rs.Spec.Base.IntRF.Regs / rs.Spec.Base.IntRF.BankSize,
		Campaign: rs,
	}
	for _, b := range rs.Benchmarks() {
		out.Benchmarks = append(out.Benchmarks, b)
		out.Results[b] = map[Technique]RunResult{}
	}
	for _, cr := range rs.Results {
		t, ok := techniqueOf(cr.Tech)
		if !ok {
			return nil, fmt.Errorf("exp: campaign has non-paper technique %q", cr.Tech)
		}
		if _, ok := out.Results[cr.Bench]; !ok {
			out.Benchmarks = append(out.Benchmarks, cr.Bench)
			out.Results[cr.Bench] = map[Technique]RunResult{}
		}
		out.Results[cr.Bench][t] = runResultOf(cr)
	}
	return out, nil
}

// --- derived metrics ---

// IPCLossPct returns the IPC loss of tech vs baseline for one benchmark.
func (s *SuiteResults) IPCLossPct(bench string, tech Technique) float64 {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	if base.IPC() == 0 {
		return 0
	}
	return (1 - t.IPC()/base.IPC()) * 100
}

// OccupancyReductionPct returns the IQ occupancy reduction vs baseline.
func (s *SuiteResults) OccupancyReductionPct(bench string, tech Technique) float64 {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	if base.AvgIQOccupancy() == 0 {
		return 0
	}
	return (1 - t.AvgIQOccupancy()/base.AvgIQOccupancy()) * 100
}

// BanksOffPct returns the fraction of IQ banks gated off under tech.
func (s *SuiteResults) BanksOffPct(bench string, tech Technique) float64 {
	t := s.Results[bench][tech].Stats
	return (1 - t.AvgIQBanksOn()/float64(s.IQBanks)) * 100
}

// Savings returns the power savings of tech vs the baseline run.
func (s *SuiteResults) Savings(bench string, tech Technique) power.Savings {
	base := s.Results[bench][TechBaseline].Stats
	t := s.Results[bench][tech].Stats
	return s.Params.Compute(&base, &t, s.IQBanks, s.RFBanks)
}

// NonEmptyPct returns the paper's nonEmpty accounting bar for a benchmark.
func (s *SuiteResults) NonEmptyPct(bench string) float64 {
	base := s.Results[bench][TechBaseline].Stats
	return s.Params.NonEmptySavings(&base)
}

// Mean returns the arithmetic mean of f over all benchmarks (the paper's
// SPECINT bar).
func (s *SuiteResults) Mean(f func(bench string) float64) float64 {
	xs := make([]float64, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		xs = append(xs, f(b))
	}
	return stats.Mean(xs)
}

// Spread returns the min, max and standard deviation of f across the
// suite — the per-benchmark variation the paper's bar charts show.
func (s *SuiteResults) Spread(f func(bench string) float64) (min, max, stddev float64) {
	xs := make([]float64, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		xs = append(xs, f(b))
	}
	min, max = stats.MinMax(xs)
	return min, max, stats.StdDev(xs)
}
