package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// LoadConfig reads a simulator configuration from JSON. Fields left out
// of the document keep the paper's table-1 defaults, so a config file
// needs to state only what it changes, e.g.:
//
//	{"IQ": {"Entries": 64, "BankSize": 8}, "ROBSize": 96}
func LoadConfig(r io.Reader) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return sim.Config{}, fmt.Errorf("config: %w", err)
	}
	if err := validateConfig(&cfg); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// WriteConfig emits a configuration as indented JSON (the template a
// user edits).
func WriteConfig(w io.Writer, cfg sim.Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

func validateConfig(cfg *sim.Config) error {
	switch {
	case cfg.FetchWidth < 1 || cfg.DispatchWidth < 1 || cfg.IssueWidth < 1 || cfg.CommitWidth < 1:
		return fmt.Errorf("config: widths must be positive")
	case cfg.ROBSize < 1:
		return fmt.Errorf("config: ROB size must be positive")
	case cfg.IQ.Entries < 1 || cfg.IQ.BankSize < 1 || cfg.IQ.Entries%cfg.IQ.BankSize != 0:
		return fmt.Errorf("config: issue queue must be a positive multiple of its bank size")
	case cfg.IntRF.Regs < cfg.IntRF.ArchRegs:
		return fmt.Errorf("config: physical registers must cover architectural registers")
	}
	return nil
}
