package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(0)
	if err := WriteConfig(&buf, r.Config); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IQ.Entries != 80 || cfg.ROBSize != 128 || cfg.FU.IntALU != 6 {
		t.Errorf("round trip lost fields: %+v", cfg)
	}
}

func TestConfigPartialOverride(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"ROBSize": 96, "IQ": {"Entries": 64, "BankSize": 8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ROBSize != 96 || cfg.IQ.Entries != 64 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	// Untouched fields keep defaults.
	if cfg.FetchWidth != 8 || cfg.IntRF.Regs != 112 {
		t.Errorf("defaults lost: %+v", cfg)
	}
}

func TestConfigRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"ROBSize": 0}`,
		`{"IQ": {"Entries": 10, "BankSize": 4}}`,
		`{"FetchWidth": -1}`,
		`{"IntRF": {"Regs": 8, "BankSize": 8, "ArchRegs": 32}}`,
		`{"NotAField": 1}`,
		`{bad json`,
	}
	for _, c := range cases {
		if _, err := LoadConfig(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid config %q", c)
		}
	}
}
