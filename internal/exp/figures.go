package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PaperValues records the paper's reported averages for side-by-side
// comparison in the rendered output and in EXPERIMENTS.md.
var PaperValues = struct {
	NOOPIPCLoss, AbellaIPCLoss                 float64
	ExtensionIPCLoss, ImprovedIPCLoss          float64
	OccupancyReduction                         float64
	BanksOff, AbellaBanksOff                   float64
	NOOPIQDyn, NOOPIQStatic                    float64
	AbellaIQDyn, AbellaIQStatic                float64
	ExtIQDyn, ExtIQStatic                      float64
	NOOPRFDyn, NOOPRFStatic                    float64
	AbellaRFDyn, AbellaRFStatic                float64
	ExtRFDyn, ExtRFStatic, ImpRFDyn, ImpRFStat float64
	OverallDyn                                 float64
}{
	NOOPIPCLoss: 2.2, AbellaIPCLoss: 3.1,
	ExtensionIPCLoss: 1.7, ImprovedIPCLoss: 1.3,
	OccupancyReduction: 23,
	BanksOff:           37, AbellaBanksOff: 34,
	NOOPIQDyn: 47, NOOPIQStatic: 31,
	AbellaIQDyn: 39, AbellaIQStatic: 30,
	ExtIQDyn: 45, ExtIQStatic: 30,
	NOOPRFDyn: 22, NOOPRFStatic: 21,
	AbellaRFDyn: 14, AbellaRFStatic: 17,
	ExtRFDyn: 21, ExtRFStatic: 21, ImpRFDyn: 22, ImpRFStat: 20,
	OverallDyn: 11,
}

// Table1 renders the processor configuration (paper table 1).
func Table1(cfg sim.Config) string {
	t := newTable("Table 1: processor configuration", "Parameter", "Configuration")
	t.addRow("Fetch, decode and commit width", fmt.Sprintf("%d instructions", cfg.FetchWidth))
	t.addRow("Branch predictor", "Hybrid 2K gshare, 2K bimodal, 1K selector")
	t.addRow("BTB", fmt.Sprintf("%d entries, %d-way", cfg.Bpred.BTBEntries, cfg.Bpred.BTBAssoc))
	t.addRow("L1 Icache", "64KB, 2-way, 32B line, 1 cycle hit")
	t.addRow("L1 Dcache", "64KB, 4-way, 32B line, 2 cycles hit")
	t.addRow("Unified L2 cache", "512KB, 8-way, 64B line, 10 cycles hit, 50 cycles miss")
	t.addRow("ROB size", fmt.Sprintf("%d entries", cfg.ROBSize))
	t.addRow("Issue queue", fmt.Sprintf("%d entries (%d banks of %d)",
		cfg.IQ.Entries, cfg.IQ.Entries/cfg.IQ.BankSize, cfg.IQ.BankSize))
	t.addRow("Int register file", fmt.Sprintf("%d entries (%d banks of %d)",
		cfg.IntRF.Regs, cfg.IntRF.Regs/cfg.IntRF.BankSize, cfg.IntRF.BankSize))
	t.addRow("FP register file", fmt.Sprintf("%d entries (%d banks of %d)",
		cfg.FPRF.Regs, cfg.FPRF.Regs/cfg.FPRF.BankSize, cfg.FPRF.BankSize))
	t.addRow("Int FUs", fmt.Sprintf("%d ALU (1 cycle), %d Mul (3 cycles)", cfg.FU.IntALU, cfg.FU.IntMul))
	t.addRow("FP FUs", fmt.Sprintf("%d ALU (2 cycles), %d MultDiv (4/12 cycles)", cfg.FU.FPALU, cfg.FU.FPMulDiv))
	t.addRow("Memory ports", fmt.Sprintf("%d", cfg.MemPorts))
	return t.String()
}

// Table2 measures compilation time per benchmark: program generation
// ("Baseline") versus generation plus the full analysis and
// instrumentation ("Limited"), mirroring the paper's table 2 (where SUIF
// took minutes; our pass takes milliseconds — the ordering across
// benchmarks is the comparable shape).
func Table2(seed int64) string {
	t := newTable("Table 2: compilation times (ms)", "Benchmark", "Baseline", "Limited", "Ratio")
	for _, b := range workload.Suite() {
		t0 := time.Now()
		p := b.Build(seed)
		genMS := float64(time.Since(t0).Microseconds()) / 1000
		t1 := time.Now()
		if _, err := core.Instrument(p, core.Options{Mode: core.ModeNOOP}); err != nil {
			t.addRow(b.Name, "error", err.Error(), "")
			continue
		}
		anaMS := float64(time.Since(t1).Microseconds()) / 1000
		ratio := 0.0
		if genMS > 0 {
			ratio = (genMS + anaMS) / genMS
		}
		t.addRow(b.Name, f2(genMS), f2(genMS+anaMS), f1(ratio))
	}
	t.addNote("Paper: SUIF-based pass, minutes on a Pentium 4 (gcc slowest at 186 min).")
	t.addNote("Here: Go analysis pass on synthetic programs; compare relative ordering.")
	return t.String()
}

// Figure6 renders the per-benchmark IPC loss of the NOOP technique, with
// the abella baseline and the SPECINT mean (paper figure 6).
func figure6Table(s *SuiteResults) *table {
	t := newTable("Figure 6: normalised IPC loss, NOOP technique (%)",
		"Benchmark", "NOOP", "abella")
	for _, b := range s.Benchmarks {
		t.addRow(b, f2(s.IPCLossPct(b, TechNOOP)), f2(s.IPCLossPct(b, TechAbella)))
	}
	t.addRow("SPECINT",
		f2(s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechNOOP) })),
		f2(s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechAbella) })))
	t.addNote("Paper SPECINT: NOOP %.1f%%, abella %.1f%%.", PaperValues.NOOPIPCLoss, PaperValues.AbellaIPCLoss)
	return t
}

// Figure7 renders the IQ occupancy reduction of the NOOP technique
// (paper figure 7), plus the banks-off fractions of section 5.2.2.
func figure7Table(s *SuiteResults) *table {
	t := newTable("Figure 7: normalised IQ occupancy reduction, NOOP technique (%)",
		"Benchmark", "OccRed", "BanksOff", "abellaBanksOff")
	for _, b := range s.Benchmarks {
		t.addRow(b, f1(s.OccupancyReductionPct(b, TechNOOP)),
			f1(s.BanksOffPct(b, TechNOOP)), f1(s.BanksOffPct(b, TechAbella)))
	}
	t.addRow("SPECINT",
		f1(s.Mean(func(b string) float64 { return s.OccupancyReductionPct(b, TechNOOP) })),
		f1(s.Mean(func(b string) float64 { return s.BanksOffPct(b, TechNOOP) })),
		f1(s.Mean(func(b string) float64 { return s.BanksOffPct(b, TechAbella) })))
	t.addNote("Paper: occupancy reduction %.0f%%, banks off %.0f%% (abella %.0f%%).",
		PaperValues.OccupancyReduction, PaperValues.BanksOff, PaperValues.AbellaBanksOff)
	return t
}

// Figure8 renders the IQ dynamic and static power savings of the NOOP
// technique, with the nonEmpty and abella bars (paper figure 8).
func figure8Table(s *SuiteResults) *table {
	t := newTable("Figure 8: normalised IQ power savings, NOOP technique (%)",
		"Benchmark", "Dynamic", "Static")
	for _, b := range s.Benchmarks {
		sv := s.Savings(b, TechNOOP)
		t.addRow(b, f1(sv.IQDynamicPct), f1(sv.IQStaticPct))
	}
	t.addRow("SPECINT",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQStaticPct })))
	t.addRow("abella",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).IQDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).IQStaticPct })))
	t.addRow("nonEmpty", f1(s.Mean(s.NonEmptyPct)), "-")
	t.addNote("Paper SPECINT: dynamic %.0f%%, static %.0f%%; abella %.0f%%/%.0f%%.",
		PaperValues.NOOPIQDyn, PaperValues.NOOPIQStatic,
		PaperValues.AbellaIQDyn, PaperValues.AbellaIQStatic)
	return t
}

// Figure9 renders the integer register file power savings of the NOOP
// technique with the abella bar (paper figure 9).
func figure9Table(s *SuiteResults) *table {
	t := newTable("Figure 9: normalised int regfile power savings, NOOP technique (%)",
		"Benchmark", "Dynamic", "Static")
	for _, b := range s.Benchmarks {
		sv := s.Savings(b, TechNOOP)
		t.addRow(b, f1(sv.RFDynamicPct), f1(sv.RFStaticPct))
	}
	t.addRow("SPECINT",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFStaticPct })))
	t.addRow("abella",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).RFDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).RFStaticPct })))
	t.addNote("Paper SPECINT: dynamic %.0f%%, static %.0f%%; abella %.0f%%/%.0f%%.",
		PaperValues.NOOPRFDyn, PaperValues.NOOPRFStatic,
		PaperValues.AbellaRFDyn, PaperValues.AbellaRFStatic)
	return t
}

// Figure10 renders the IPC loss of Extension and Improved with NOOP and
// abella for comparison (paper figure 10).
func figure10Table(s *SuiteResults) *table {
	t := newTable("Figure 10: normalised IPC loss, Extension and Improved (%)",
		"Benchmark", "Extension", "Improved", "NOOP", "abella")
	for _, b := range s.Benchmarks {
		t.addRow(b,
			f2(s.IPCLossPct(b, TechExtension)), f2(s.IPCLossPct(b, TechImproved)),
			f2(s.IPCLossPct(b, TechNOOP)), f2(s.IPCLossPct(b, TechAbella)))
	}
	mean := func(tech Technique) string {
		return f2(s.Mean(func(b string) float64 { return s.IPCLossPct(b, tech) }))
	}
	t.addRow("SPECINT", mean(TechExtension), mean(TechImproved), mean(TechNOOP), mean(TechAbella))
	t.addNote("Paper SPECINT: Extension %.1f%%, Improved <%.1f%%.",
		PaperValues.ExtensionIPCLoss, PaperValues.ImprovedIPCLoss)
	return t
}

// Figure11 renders the IQ power savings of Extension and Improved
// (paper figure 11), plus the section 6 overall-processor saving.
func figure11Table(s *SuiteResults) *table {
	t := newTable("Figure 11: normalised IQ power savings, Extension and Improved (%)",
		"Benchmark", "ExtDyn", "ExtStat", "ImpDyn", "ImpStat")
	for _, b := range s.Benchmarks {
		e := s.Savings(b, TechExtension)
		i := s.Savings(b, TechImproved)
		t.addRow(b, f1(e.IQDynamicPct), f1(e.IQStaticPct), f1(i.IQDynamicPct), f1(i.IQStaticPct))
	}
	t.addRow("SPECINT",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechExtension).IQDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechExtension).IQStaticPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechImproved).IQDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechImproved).IQStaticPct })))
	overall := s.Mean(func(b string) float64 { return s.Savings(b, TechImproved).OverallDynamicPct })
	t.addNote("Paper SPECINT: dynamic %.0f%%, static %.0f%% (both techniques).",
		PaperValues.ExtIQDyn, PaperValues.ExtIQStatic)
	t.addNote("Overall processor dynamic saving (Improved, section 6 shares): %.1f%% (paper ~%.0f%%).",
		overall, PaperValues.OverallDyn)
	return t
}

// Figure12 renders the regfile power savings of Extension and Improved
// (paper figure 12).
func figure12Table(s *SuiteResults) *table {
	t := newTable("Figure 12: normalised int regfile power savings, Extension and Improved (%)",
		"Benchmark", "ExtDyn", "ExtStat", "ImpDyn", "ImpStat")
	for _, b := range s.Benchmarks {
		e := s.Savings(b, TechExtension)
		i := s.Savings(b, TechImproved)
		t.addRow(b, f1(e.RFDynamicPct), f1(e.RFStaticPct), f1(i.RFDynamicPct), f1(i.RFStaticPct))
	}
	t.addRow("SPECINT",
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechExtension).RFDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechExtension).RFStaticPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechImproved).RFDynamicPct })),
		f1(s.Mean(func(b string) float64 { return s.Savings(b, TechImproved).RFStaticPct })))
	t.addNote("Paper SPECINT: Extension %.0f%%/%.0f%%, Improved %.0f%%/%.0f%%.",
		PaperValues.ExtRFDyn, PaperValues.ExtRFStatic, PaperValues.ImpRFDyn, PaperValues.ImpRFStat)
	return t
}

// Summary renders a one-screen overview of every headline number against
// the paper.
func summaryTable(s *SuiteResults) *table {
	t := newTable("Headline comparison: paper vs measured (SPECINT means)",
		"Metric", "Paper", "Measured")
	add := func(name string, paper float64, measured float64) {
		t.addRow(name, f1(paper), f1(measured))
	}
	add("NOOP IPC loss %", PaperValues.NOOPIPCLoss,
		s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechNOOP) }))
	add("abella IPC loss %", PaperValues.AbellaIPCLoss,
		s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechAbella) }))
	add("Extension IPC loss %", PaperValues.ExtensionIPCLoss,
		s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechExtension) }))
	add("Improved IPC loss %", PaperValues.ImprovedIPCLoss,
		s.Mean(func(b string) float64 { return s.IPCLossPct(b, TechImproved) }))
	add("IQ occupancy reduction %", PaperValues.OccupancyReduction,
		s.Mean(func(b string) float64 { return s.OccupancyReductionPct(b, TechNOOP) }))
	add("IQ banks off %", PaperValues.BanksOff,
		s.Mean(func(b string) float64 { return s.BanksOffPct(b, TechNOOP) }))
	add("NOOP IQ dynamic saving %", PaperValues.NOOPIQDyn,
		s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQDynamicPct }))
	add("NOOP IQ static saving %", PaperValues.NOOPIQStatic,
		s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).IQStaticPct }))
	add("abella IQ dynamic saving %", PaperValues.AbellaIQDyn,
		s.Mean(func(b string) float64 { return s.Savings(b, TechAbella).IQDynamicPct }))
	add("NOOP RF dynamic saving %", PaperValues.NOOPRFDyn,
		s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFDynamicPct }))
	add("NOOP RF static saving %", PaperValues.NOOPRFStatic,
		s.Mean(func(b string) float64 { return s.Savings(b, TechNOOP).RFStaticPct }))
	return t
}

// AllFigures renders the complete evaluation.
func AllFigures(s *SuiteResults, cfg sim.Config, seed int64) string {
	var sb strings.Builder
	sb.WriteString(Table1(cfg) + "\n")
	sb.WriteString(Table2(seed) + "\n")
	sb.WriteString(Figure6(s) + "\n")
	sb.WriteString(Figure7(s) + "\n")
	sb.WriteString(Figure8(s) + "\n")
	sb.WriteString(Figure9(s) + "\n")
	sb.WriteString(Figure10(s) + "\n")
	sb.WriteString(Figure11(s) + "\n")
	sb.WriteString(Figure12(s) + "\n")
	sb.WriteString(Summary(s))
	return sb.String()
}

// Rendered and CSV forms of each figure.

func Figure6(s *SuiteResults) string { return figure6Table(s).String() }

// Figure6CSV renders the same data as comma-separated values.
func Figure6CSV(s *SuiteResults) string { return figure6Table(s).CSV() }

func Figure7(s *SuiteResults) string { return figure7Table(s).String() }

// Figure7CSV renders the same data as comma-separated values.
func Figure7CSV(s *SuiteResults) string { return figure7Table(s).CSV() }

func Figure8(s *SuiteResults) string { return figure8Table(s).String() }

// Figure8CSV renders the same data as comma-separated values.
func Figure8CSV(s *SuiteResults) string { return figure8Table(s).CSV() }

func Figure9(s *SuiteResults) string { return figure9Table(s).String() }

// Figure9CSV renders the same data as comma-separated values.
func Figure9CSV(s *SuiteResults) string { return figure9Table(s).CSV() }

func Figure10(s *SuiteResults) string { return figure10Table(s).String() }

// Figure10CSV renders the same data as comma-separated values.
func Figure10CSV(s *SuiteResults) string { return figure10Table(s).CSV() }

func Figure11(s *SuiteResults) string { return figure11Table(s).String() }

// Figure11CSV renders the same data as comma-separated values.
func Figure11CSV(s *SuiteResults) string { return figure11Table(s).CSV() }

func Figure12(s *SuiteResults) string { return figure12Table(s).String() }

// Figure12CSV renders the same data as comma-separated values.
func Figure12CSV(s *SuiteResults) string { return figure12Table(s).CSV() }

func Summary(s *SuiteResults) string { return summaryTable(s).String() }

// SummaryCSV renders the same data as comma-separated values.
func SummaryCSV(s *SuiteResults) string { return summaryTable(s).CSV() }
