package exp

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
)

// SweepReport renders a multi-point campaign as one aligned table per
// technique: benchmarks down, sweep points across, IPC at each cell with
// the loss vs that point's baseline in parentheses. It is the textual
// view of what ResultSet.WriteCSV exports.
func SweepReport(rs *campaign.ResultSet) string {
	points := rs.Points()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign %q: %d benchmarks x %d techniques x %d points (budget %d, seed %d)\n",
		rs.Spec.Name, len(rs.Benchmarks()), len(rs.Techniques()), len(points),
		rs.Spec.Budget, rs.Spec.Seed)
	if rs.CacheHits > 0 || rs.Executed > 0 {
		fmt.Fprintf(&sb, "%d simulated, %d served from cache\n", rs.Executed, rs.CacheHits)
	}
	cols := make([]string, 0, 1+len(points))
	cols = append(cols, "bench")
	for _, pt := range points {
		label := pt.String()
		if label == "" {
			label = "base"
		}
		cols = append(cols, label)
	}
	for _, tech := range rs.Techniques() {
		t := newTable(fmt.Sprintf("\n%s: IPC (loss%% vs baseline at the same point)", tech), cols...)
		for _, bench := range rs.Benchmarks() {
			row := []string{bench}
			for _, pt := range points {
				res, ok := rs.Get(bench, tech, pt)
				switch {
				case !ok:
					row = append(row, "-")
				case tech == campaign.TechBaseline:
					row = append(row, fmt.Sprintf("%.3f", res.Stats.IPC()))
				default:
					row = append(row, fmt.Sprintf("%.3f (%+.2f%%)",
						res.Stats.IPC(), rs.IPCLossPct(bench, tech, pt)))
				}
			}
			t.addRow(row...)
		}
		sb.WriteString(t.String())
	}
	return sb.String()
}
