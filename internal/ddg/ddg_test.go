package ddg

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

func inst3(op isa.Op, d, a, b int) prog.Inst {
	in := prog.NewInst(op)
	in.Dst, in.Src1, in.Src2 = isa.R(d), isa.R(a), isa.R(b)
	return in
}

func instImm(op isa.Op, d, a int, imm int64) prog.Inst {
	in := prog.NewInst(op)
	in.Dst, in.Src1, in.Imm = isa.R(d), isa.R(a), imm
	return in
}

// figure1Block is the paper's figure 1(a):
//
//	a: add r1, 1, r1   b: add r2, 2, r2   c: mul r1, 5, r3
//	d: mul r2, 5, r4   e: add r3, r4, r5  f: add r2, r4, r6
func figure1Block() []prog.Inst {
	return []prog.Inst{
		instImm(isa.Addi, 1, 1, 1), // a
		instImm(isa.Addi, 2, 2, 2), // b
		instImm(isa.Muli, 3, 1, 5), // c
		instImm(isa.Muli, 4, 2, 5), // d
		inst3(isa.Add, 5, 3, 4),    // e
		inst3(isa.Add, 6, 2, 4),    // f
	}
}

func TestBuildBlockFigure1(t *testing.T) {
	g := BuildBlock(figure1Block())
	if g.N() != 6 {
		t.Fatalf("nodes = %d, want 6", g.N())
	}
	// Expected edges (paper figure 1(b)): a->c, b->d, b->f, c->e, d->e, d->f.
	want := map[[2]int]bool{
		{0, 2}: true, {1, 3}: true, {1, 5}: true,
		{2, 4}: true, {3, 4}: true, {3, 5}: true,
	}
	got := map[[2]int]bool{}
	for v := range g.Out {
		for _, e := range g.Out[v] {
			got[[2]int{e.From, e.To}] = true
			if e.Distance != 0 {
				t.Errorf("block graph has carried edge %v", e)
			}
		}
	}
	if len(got) != len(want) {
		t.Errorf("edges = %v, want %v", got, want)
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %v", e)
		}
	}
	// Multiply latency labels the mul producers' out-edges.
	for _, e := range g.Out[2] {
		if e.Latency != isa.Muli.Latency() {
			t.Errorf("c out-edge latency %d, want %d", e.Latency, isa.Muli.Latency())
		}
	}
}

// figure4Loop is the paper's figure 4: a self-recurrent chain
//
//	a: a_i = a_{i-1}+1; b = a+1; c = b+1; d = b+1; e = d+1; f = c+1
func figure4Loop() []prog.Inst {
	return []prog.Inst{
		instImm(isa.Addi, 1, 1, 1), // a (self-recurrent)
		instImm(isa.Addi, 2, 1, 1), // b = a+1
		instImm(isa.Addi, 3, 2, 1), // c = b+1
		instImm(isa.Addi, 4, 2, 1), // d = b+1
		instImm(isa.Addi, 5, 4, 1), // e = d+1
		instImm(isa.Addi, 6, 3, 1), // f = c+1
	}
}

func TestBuildLoopFigure4(t *testing.T) {
	g := BuildLoop(figure4Loop())
	// a reads r1 with no earlier def -> carried self edge.
	var self *Edge
	for i := range g.Out[0] {
		if g.Out[0][i].To == 0 {
			self = &g.Out[0][i]
		}
	}
	if self == nil || self.Distance != 1 {
		t.Fatalf("missing carried self edge on a: %+v", g.Out[0])
	}
	sccs := g.CyclicSCCs()
	if len(sccs) != 1 || len(sccs[0]) != 1 || sccs[0][0] != 0 {
		t.Fatalf("CDS = %v, want [[0]]", sccs)
	}
	if ii := g.RecurrenceII(sccs[0]); ii != 1 {
		t.Errorf("II = %d, want 1", ii)
	}
}

func TestCarriedCrossDependence(t *testing.T) {
	// x uses y's value from the previous iteration and vice versa:
	//   p: r1 = r2 + 1
	//   q: r2 = r1 + 1   (same iteration: q depends on p)
	// p's read of r2 is carried from q. SCC = {p,q}, II = 2 (two 1-cycle ops
	// around a distance-1 cycle).
	body := []prog.Inst{
		instImm(isa.Addi, 1, 2, 1),
		instImm(isa.Addi, 2, 1, 1),
	}
	g := BuildLoop(body)
	sccs := g.CyclicSCCs()
	if len(sccs) != 1 || len(sccs[0]) != 2 {
		t.Fatalf("SCCs = %v, want one of size 2", sccs)
	}
	if ii := g.RecurrenceII(sccs[0]); ii != 2 {
		t.Errorf("II = %d, want 2", ii)
	}
}

func TestRecurrenceIIWithLatency(t *testing.T) {
	// Self-recurrent multiply: II = mul latency (3).
	body := []prog.Inst{instImm(isa.Muli, 1, 1, 3)}
	g := BuildLoop(body)
	sccs := g.CyclicSCCs()
	if len(sccs) != 1 {
		t.Fatalf("SCCs = %v", sccs)
	}
	if ii := g.RecurrenceII(sccs[0]); ii != 3 {
		t.Errorf("II = %d, want 3", ii)
	}
}

func TestNopsExcluded(t *testing.T) {
	insts := []prog.Inst{
		prog.NewInst(isa.Nop),
		instImm(isa.Addi, 1, 1, 1),
		func() prog.Inst { h := prog.NewInst(isa.HintNop); h.Imm = 4; return h }(),
		instImm(isa.Addi, 2, 1, 1),
	}
	g := BuildBlock(insts)
	if g.N() != 2 {
		t.Fatalf("nodes = %d, want 2 (nops excluded)", g.N())
	}
	if len(g.Out[0]) != 1 || g.Out[0][0].To != 1 {
		t.Errorf("dependence lost across removed nops: %v", g.Out[0])
	}
}

func TestLongestPathTimes(t *testing.T) {
	g := BuildBlock(figure1Block())
	times := g.LongestPathTimes()
	// a,b at 0; c,d at 1 (after the 1-cycle addis); e at 1+3=4; f at 4.
	want := []int{0, 0, 1, 1, 4, 4}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("t[%d] = %d, want %d", i, times[i], w)
		}
	}
}

func TestZeroRegisterCreatesNoEdges(t *testing.T) {
	insts := []prog.Inst{
		inst3(isa.Add, 0, 1, 2), // writes r0: discarded
		inst3(isa.Add, 3, 0, 1), // reads r0: no dependence
	}
	g := BuildBlock(insts)
	if len(g.Out[0]) != 0 {
		t.Errorf("write to r0 must not produce dependences: %v", g.Out[0])
	}
}

func TestSCCsPartitionNodes(t *testing.T) {
	f := func(seed uint16) bool {
		// Random chain with random extra deps: SCCs must partition nodes.
		n := int(seed%17) + 2
		var body []prog.Inst
		for i := 0; i < n; i++ {
			src := 1 + (int(seed)+i*7)%(i+1) // some earlier or same reg
			body = append(body, instImm(isa.Addi, 1+i%8, src%8+1, 1))
		}
		g := BuildLoop(body)
		seen := make([]int, g.N())
		for _, c := range g.SCCs() {
			for _, v := range c {
				seen[v]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlockGraphIsAcyclic(t *testing.T) {
	f := func(seed uint16) bool {
		n := int(seed%17) + 2
		var body []prog.Inst
		for i := 0; i < n; i++ {
			body = append(body, inst3(isa.Add, 1+(i*3)%8, 1+i%8, 1+(i*5)%8))
		}
		g := BuildBlock(body)
		// Every edge goes forward in program order -> acyclic.
		for v := range g.Out {
			for _, e := range g.Out[v] {
				if e.To <= e.From {
					return false
				}
			}
		}
		return len(g.CyclicSCCs()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
