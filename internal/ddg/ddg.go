// Package ddg builds the data dependence graphs the paper's analysis runs
// on (section 4.1: "Within each loop and DAG the DDG is constructed and its
// edges labelled with the latencies of the instructions"). Graphs are built
// over an instruction sequence — a basic block or a linearised loop body —
// with true (register def-use) dependences. Loop graphs additionally carry
// edges around the back edge with iteration distance 1, which is what makes
// cyclic dependence sets (CDSs, section 4.3) visible as strongly connected
// components.
package ddg

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Edge is a dependence from the producer node From to the consumer node To.
// Latency is the producer's operation latency; Distance is the iteration
// distance (0 = same iteration, 1 = carried around the loop back edge).
type Edge struct {
	From, To int
	Latency  int
	Distance int
}

// Graph is a dependence graph over a fixed instruction sequence. Node i
// corresponds to Insts[i]. NOOPs (including hint NOOPs) are excluded when
// the graph is built, since they never issue.
type Graph struct {
	Insts []prog.Inst
	Out   [][]Edge
	In    [][]Edge
}

// N returns the node count.
func (g *Graph) N() int { return len(g.Insts) }

func realInsts(insts []prog.Inst) []prog.Inst {
	out := make([]prog.Inst, 0, len(insts))
	for _, in := range insts {
		if in.Op.Class() != isa.ClassNop {
			out = append(out, in)
		}
	}
	return out
}

func newGraph(insts []prog.Inst) *Graph {
	return &Graph{
		Insts: insts,
		Out:   make([][]Edge, len(insts)),
		In:    make([][]Edge, len(insts)),
	}
}

func (g *Graph) addEdge(e Edge) {
	g.Out[e.From] = append(g.Out[e.From], e)
	g.In[e.To] = append(g.In[e.To], e)
}

// BuildBlock builds the intra-block dependence graph of a basic block:
// true register dependences only, distance 0. The paper's analysis assumes
// memory accesses hit in cache and carries no memory dependences
// (section 4.2), so loads and stores participate only through their
// address and value registers.
func BuildBlock(insts []prog.Inst) *Graph {
	g := newGraph(realInsts(insts))
	lastDef := map[isa.Reg]int{}
	for i := range g.Insts {
		in := &g.Insts[i]
		for _, s := range in.Sources() {
			if p, ok := lastDef[s]; ok {
				g.addEdge(Edge{From: p, To: i, Latency: g.Insts[p].Op.Latency()})
			}
		}
		if in.HasDst() {
			lastDef[in.Dst] = i
		}
	}
	return g
}

// BuildLoop builds the dependence graph of a linearised loop body,
// including loop-carried edges with distance 1: a source with no earlier
// definition in the body but a later one depends on that definition from
// the previous iteration. Multi-block bodies are treated as straight-line
// code in layout order, a conservative summary of the paper's per-loop
// analysis.
func BuildLoop(body []prog.Inst) *Graph {
	g := newGraph(realInsts(body))
	// Final definition of each register anywhere in the body, for the
	// wrap-around edges.
	finalDef := map[isa.Reg]int{}
	for i := range g.Insts {
		if g.Insts[i].HasDst() {
			finalDef[g.Insts[i].Dst] = i
		}
	}
	lastDef := map[isa.Reg]int{}
	for i := range g.Insts {
		in := &g.Insts[i]
		for _, s := range in.Sources() {
			if p, ok := lastDef[s]; ok {
				g.addEdge(Edge{From: p, To: i, Latency: g.Insts[p].Op.Latency()})
			} else if p, ok := finalDef[s]; ok {
				g.addEdge(Edge{From: p, To: i, Latency: g.Insts[p].Op.Latency(), Distance: 1})
			}
		}
		if in.HasDst() {
			lastDef[in.Dst] = i
		}
	}
	return g
}

// SCCs returns the strongly connected components of the graph (all edge
// distances considered) in Tarjan order (reverse topological). Components
// are the paper's cyclic dependence sets when they contain a cycle; use
// CyclicSCCs to filter.
func (g *Graph) SCCs() [][]int {
	n := g.N()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to survive large generated bodies.
	type frame struct{ v, ei int }
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.Out[f.v]) {
				w := g.Out[f.v][f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			dfs(v)
		}
	}
	return comps
}

// CyclicSCCs returns only the components that contain a dependence cycle:
// more than one node, or a single node with a self edge. These are the
// paper's cyclic dependence sets.
func (g *Graph) CyclicSCCs() [][]int {
	var out [][]int
	for _, c := range g.SCCs() {
		if len(c) > 1 {
			out = append(out, c)
			continue
		}
		v := c[0]
		for _, e := range g.Out[v] {
			if e.To == v {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// RecurrenceII returns the minimum initiation interval imposed by the
// dependence cycles through the given component: the maximum over simple
// cycles of ceil(total latency / total distance). It is computed with the
// standard iterative algorithm (binary search is unnecessary at our sizes:
// we enumerate cycles via DFS limited to the component, which the small
// CDS sizes keep cheap) — here approximated by Howard-style value
// iteration on the cycle ratio, which is exact for integer latencies.
func (g *Graph) RecurrenceII(comp []int) int {
	inComp := map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	// Iterate Bellman-Ford style on t[v] with the constraint
	// t[to] >= t[from] + lat - II*dist; the smallest II with no positive
	// cycle is the recurrence II. Search II upward from 1; latencies are
	// small so the loop terminates quickly.
	maxLat := 1
	for _, v := range comp {
		for _, e := range g.Out[v] {
			if inComp[e.To] && e.Latency > maxLat {
				maxLat = e.Latency
			}
		}
	}
	sumLat := 0
	for _, v := range comp {
		for _, e := range g.Out[v] {
			if inComp[e.To] {
				sumLat += e.Latency
			}
		}
	}
	for ii := 1; ii <= sumLat+maxLat; ii++ {
		if !g.hasPositiveCycle(comp, inComp, ii) {
			return ii
		}
	}
	return sumLat + maxLat
}

func (g *Graph) hasPositiveCycle(comp []int, inComp map[int]bool, ii int) bool {
	t := map[int]int{}
	for _, v := range comp {
		t[v] = 0
	}
	for iter := 0; iter <= len(comp); iter++ {
		changed := false
		for _, v := range comp {
			for _, e := range g.Out[v] {
				if !inComp[e.To] {
					continue
				}
				nt := t[v] + e.Latency - ii*e.Distance
				if nt > t[e.To] {
					t[e.To] = nt
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// LongestPathTimes returns, for each node, the earliest data-ready time
// under infinite resources considering only distance-0 edges — the
// critical-path schedule of a DAG region.
func (g *Graph) LongestPathTimes() []int {
	t := make([]int, g.N())
	for i := 0; i < g.N(); i++ { // nodes are in program order; edges go forward
		for _, e := range g.In[i] {
			if e.Distance != 0 {
				continue
			}
			if v := t[e.From] + e.Latency; v > t[i] {
				t[i] = v
			}
		}
	}
	return t
}
