package adaptive

import "testing"

func drain(c *Controller, cycles int64, stalled bool, issues, young int) (int, bool) {
	var limit int
	var changed bool
	for i := int64(0); i < cycles; i++ {
		for j := 0; j < issues; j++ {
			c.OnIssue(j < young)
		}
		l, ch := c.OnCycle(stalled)
		limit = l
		changed = changed || ch
	}
	return limit, changed
}

func TestStartsFullyEnabled(t *testing.T) {
	c := New(DefaultConfig(), 10, 8)
	if c.EnabledBanks() != 10 || c.Limit() != 80 {
		t.Fatalf("start = %d banks limit %d, want 10/80", c.EnabledBanks(), c.Limit())
	}
}

func TestShrinksWhenYoungIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeIntervals = 0 // isolate shrink behaviour
	c := New(cfg, 10, 8)
	// Zero young contribution for several intervals: must shrink each time.
	limit, changed := drain(c, cfg.IntervalCycles, false, 4, 0)
	if !changed || limit != 72 {
		t.Fatalf("after one idle interval: limit %d changed %v, want 72 true", limit, changed)
	}
	for i := 0; i < 20; i++ {
		drain(c, cfg.IntervalCycles, false, 4, 0)
	}
	if c.EnabledBanks() != cfg.MinBanks {
		t.Errorf("floor = %d banks, want MinBanks %d", c.EnabledBanks(), cfg.MinBanks)
	}
}

func TestGrowsOnStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeIntervals = 0
	c := New(cfg, 10, 8)
	for i := 0; i < 5; i++ {
		drain(c, cfg.IntervalCycles, false, 4, 0)
	}
	shrunk := c.EnabledBanks()
	drain(c, cfg.IntervalCycles, true, 4, 0) // stalling every cycle
	if c.EnabledBanks() != shrunk+1 {
		t.Errorf("banks = %d after stalls, want %d", c.EnabledBanks(), shrunk+1)
	}
}

func TestProbePeriodicallyGrows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeIntervals = 2
	c := New(cfg, 10, 8)
	// Shrink once, then hold young share high enough to avoid shrinking;
	// every second interval the probe must re-enable a bank.
	drain(c, cfg.IntervalCycles, false, 4, 0)
	start := c.EnabledBanks()
	drain(c, cfg.IntervalCycles, false, 4, 2) // interval 2: probe fires
	if c.EnabledBanks() != start+1 {
		t.Errorf("probe did not grow: %d -> %d", start, c.EnabledBanks())
	}
}

func TestNeverExceedsBounds(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg, 10, 8)
	for i := 0; i < 50; i++ {
		drain(c, cfg.IntervalCycles, i%2 == 0, 8, 8)
	}
	if c.EnabledBanks() > 10 || c.EnabledBanks() < cfg.MinBanks {
		t.Errorf("banks %d out of [min,total]", c.EnabledBanks())
	}
}

func TestHighYoungShareHolds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeIntervals = 0
	c := New(cfg, 10, 8)
	// All issues young: no shrink.
	_, changed := drain(c, cfg.IntervalCycles, false, 4, 4)
	if changed {
		t.Error("controller resized despite fully-young issue mix")
	}
}
