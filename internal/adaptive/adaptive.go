// Package adaptive implements the hardware-adaptive issue-queue resizing
// baseline the paper compares against: the IqRob64 technique of Abella &
// González ("Power-aware adaptive issue queue and rename buffers", HiPC
// 2003), which the paper calls "abella". The queue is resized at bank
// granularity from periodic measurements: a bank is disabled when the
// youngest enabled bank contributes too few issues over an interval
// (the extra entries are not earning their keep), re-enabled when
// dispatch stalls against the size limit, and periodically probed upward
// to bound the performance loss. IqRob64 also caps the reorder buffer at
// 64 entries, which is enforced by the simulator via Config.ROBLimit.
package adaptive

// Config parameterises the controller.
type Config struct {
	// IntervalCycles is the measurement window.
	IntervalCycles int64
	// ShrinkThreshold: disable the youngest enabled bank when its share
	// of the interval's issues falls below this fraction.
	ShrinkThreshold float64
	// GrowStallFrac: enable a bank when size-limit dispatch stalls exceed
	// this fraction of the interval's cycles.
	GrowStallFrac float64
	// ProbeIntervals: force-enable one bank every this many intervals
	// (0 disables probing).
	ProbeIntervals int
	// MinBanks is the floor on enabled banks.
	MinBanks int
	// ROBLimit caps the reorder buffer (0 = no cap); the simulator
	// enforces it.
	ROBLimit int
}

// DefaultConfig is the tuned abella/IqRob64 configuration.
func DefaultConfig() Config {
	return Config{
		IntervalCycles:  2_000,
		ShrinkThreshold: 0.02,
		GrowStallFrac:   0.02,
		ProbeIntervals:  6,
		MinBanks:        3,
		ROBLimit:        64,
	}
}

// FolegnaniConfig approximates the earlier Folegnani & González resizing
// (ISCA 2001) that both the paper and IqRob64 build on: issue-queue-only
// adaptation (no ROB cap), with a slightly more eager shrink and a slower
// upward probe. Used by the ablation benchmarks.
func FolegnaniConfig() Config {
	c := DefaultConfig()
	c.ROBLimit = 0
	c.ShrinkThreshold = 0.04
	c.ProbeIntervals = 8
	return c
}

// Controller drives bank-granular issue-queue resizing.
type Controller struct {
	cfg      Config
	banks    int
	bankSize int

	enabledBanks int
	cycleCount   int64
	issuesTotal  int64
	issuesYoung  int64
	stallCycles  int64
	intervals    int

	// Degradation bound: if the issue rate drops right after a shrink,
	// the shrink is reverted, shrinking pauses for a few intervals, and
	// the reverted level becomes a floor that decays slowly — preventing
	// a shrink/degrade/revert oscillation from parking the queue small on
	// workloads that need the full window.
	lastIssues int64
	lastShrank bool
	holdoff    int
	floorBanks int
	floorDecay int

	resizes int64
}

// New returns a controller starting with all banks enabled.
func New(cfg Config, totalBanks, bankSize int) *Controller {
	if cfg.IntervalCycles <= 0 {
		cfg.IntervalCycles = DefaultConfig().IntervalCycles
	}
	if cfg.MinBanks <= 0 {
		cfg.MinBanks = 1
	}
	if cfg.MinBanks > totalBanks {
		cfg.MinBanks = totalBanks
	}
	return &Controller{
		cfg:          cfg,
		banks:        totalBanks,
		bankSize:     bankSize,
		enabledBanks: totalBanks,
	}
}

// Limit returns the current entry limit the queue should enforce.
func (c *Controller) Limit() int { return c.enabledBanks * c.bankSize }

// EnabledBanks returns the current enabled bank count.
func (c *Controller) EnabledBanks() int { return c.enabledBanks }

// Resizes returns how many resize decisions have been taken.
func (c *Controller) Resizes() int64 { return c.resizes }

// OnIssue records one instruction issue; young marks issues coming from
// the youngest enabled bank's worth of entries (those that would not have
// been resident with one bank fewer).
func (c *Controller) OnIssue(young bool) {
	c.issuesTotal++
	if young {
		c.issuesYoung++
	}
}

// OnCycle advances the interval clock; stalled reports whether dispatch
// was blocked by the size limit this cycle. It returns the new entry
// limit and whether it changed.
func (c *Controller) OnCycle(stalled bool) (limit int, changed bool) {
	c.cycleCount++
	if stalled {
		c.stallCycles++
	}
	if c.cycleCount < c.cfg.IntervalCycles {
		return c.Limit(), false
	}
	// Interval boundary: decide.
	c.intervals++
	prev := c.enabledBanks
	stallFrac := float64(c.stallCycles) / float64(c.cycleCount)
	youngShare := 0.0
	if c.issuesTotal > 0 {
		youngShare = float64(c.issuesYoung) / float64(c.issuesTotal)
	}
	floor := c.cfg.MinBanks
	if c.floorBanks > floor {
		floor = c.floorBanks
	}
	shrank := false
	switch {
	case c.lastShrank && c.issuesTotal*100 < c.lastIssues*97 && c.enabledBanks < c.banks:
		// The last shrink cost more than 10% issue rate: revert it, make
		// the reverted level a floor, and hold off further shrinking
		// (the technique's performance bound).
		c.enabledBanks++
		c.holdoff = 4
		c.floorBanks = c.enabledBanks
		c.floorDecay = 40
	case stallFrac > c.cfg.GrowStallFrac && c.enabledBanks < c.banks:
		c.enabledBanks++
	case c.cfg.ProbeIntervals > 0 && c.intervals%c.cfg.ProbeIntervals == 0 && c.enabledBanks < c.banks:
		c.enabledBanks++
	case c.holdoff == 0 && c.issuesTotal > 0 && youngShare < c.cfg.ShrinkThreshold &&
		c.enabledBanks > floor:
		c.enabledBanks--
		shrank = true
	}
	if c.holdoff > 0 {
		c.holdoff--
	}
	if c.floorDecay > 0 {
		c.floorDecay--
		if c.floorDecay == 0 {
			c.floorBanks = 0
		}
	}
	c.lastShrank = shrank
	c.lastIssues = c.issuesTotal
	c.cycleCount = 0
	c.issuesTotal = 0
	c.issuesYoung = 0
	c.stallCycles = 0
	if c.enabledBanks != prev {
		c.resizes++
		return c.Limit(), true
	}
	return c.Limit(), false
}
