package worker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/ckpt"
)

// Worker is the pull-based remote simulation worker: it registers with
// a campaign server, leases jobs, executes them with
// campaign.ExecuteStored against a local scratch cache and checkpoint
// store, heartbeats while they run, and uploads the results. Run drives it until ctx ends (hard stop: in-flight jobs
// are abandoned and the server re-leases them) or Shutdown is called
// (graceful: stop leasing, finish in-flight jobs, deregister).
type Worker struct {
	// Server is the sdiqd base URL.
	Server string
	// Name labels the worker (hostname when empty).
	Name string
	// Scratch is the local result cache directory ("" = none): a job the
	// worker has run before is answered from disk without re-simulating.
	Scratch string
	// Ckpt is the local checkpoint artifact store directory ("" = none):
	// sampled jobs whose lease names a checkpoint key download the
	// sweep's shared warm state from the server (or generate and push it
	// back) instead of each re-warming from scratch.
	Ckpt string
	// Concurrency is how many leases run at once (min 1).
	Concurrency int
	// ScratchMaxBytes bounds the scratch cache, evicting least recently
	// used results after each store; 0 means unbounded.
	ScratchMaxBytes int64
	// RetryBase/RetryMax shape the jittered exponential backoff used for
	// registration and lease-poll failures (defaults 500ms / 15s). A
	// coordinator restart is survived by waiting, not by dying.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Token is the worker-role bearer credential, required against a
	// server running with -auth; "" sends no Authorization header.
	Token string
	// API overrides the protocol client (tests); nil builds one from
	// Server.
	API *API

	// Logf, when non-nil, receives worker lifecycle logging.
	Logf func(format string, args ...any)
	// OnLease, when non-nil, observes every granted lease before the job
	// executes — the failure-injection tests' kill hook.
	OnLease func(Lease)
	// OnDone, when non-nil, observes every execution outcome before its
	// upload.
	OnDone func(l Lease, res campaign.Result, err error)

	// insts/simNanos accumulate completed-job work for the heartbeat's
	// insts-per-second progress figure.
	insts    atomic.Int64
	simNanos atomic.Int64
	// reconnects counts re-registrations after the server forgot us —
	// reported on the wire so the coordinator can surface fleet churn.
	reconnects atomic.Int64

	quitOnce sync.Once
	quit     chan struct{}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// quitCh lazily builds the graceful-shutdown channel so Shutdown works
// whether or not Run has started.
func (w *Worker) quitCh() chan struct{} {
	w.quitOnce.Do(func() { w.quit = make(chan struct{}) })
	return w.quit
}

// Shutdown stops the worker gracefully: no new leases are taken,
// in-flight jobs finish and upload, then Run deregisters and returns.
// Safe to call from any goroutine, more than once, before or after Run.
func (w *Worker) Shutdown() {
	ch := w.quitCh()
	select {
	case <-ch:
	default:
		close(ch)
	}
}

// backoff returns the nth (0-based) retry delay: exponential from
// RetryBase, capped at RetryMax, with ±25% jitter so a restarted
// coordinator isn't stampeded by its whole fleet at once.
func (w *Worker) backoff(n int) time.Duration {
	base := w.RetryBase
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	ceil := w.RetryMax
	if ceil <= 0 {
		ceil = 15 * time.Second
	}
	d := base
	for i := 0; i < n && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	// Jitter in [0.75, 1.25) of the nominal delay.
	return d*3/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// register joins (or rejoins) the server, retrying transient failures
// with jittered backoff until ctx ends. Terminal 4xx refusals —
// protocol version drift — return immediately: waiting cannot fix them.
func (w *Worker) register(ctx context.Context, api *API, name string, conc int, reconnect bool) (RegisterResponse, error) {
	req := RegisterRequest{Name: name, Capacity: conc}
	if reconnect {
		req.Reconnects = int(w.reconnects.Add(1))
	}
	for attempt := 0; ; attempt++ {
		reg, err := api.Register(ctx, req)
		if err == nil {
			return reg, nil
		}
		if terminal(err) || ctx.Err() != nil {
			return RegisterResponse{}, err
		}
		w.logf("register: %v (retrying)", err)
		select {
		case <-time.After(w.backoff(attempt)):
		case <-ctx.Done():
			return RegisterResponse{}, ctx.Err()
		}
	}
}

// rate returns the worker's committed-instructions-per-second over its
// completed jobs (0 until the first one lands).
func (w *Worker) rate() float64 {
	ns := w.simNanos.Load()
	if ns <= 0 {
		return 0
	}
	return float64(w.insts.Load()) / (float64(ns) / float64(time.Second))
}

// Run registers and serves leases until ctx ends or Shutdown is called.
// Cancelling ctx is a hard stop — running jobs abort mid-simulation and
// nothing more is sent, exactly like a crashed machine; the server's
// lease TTL recovers their jobs.
func (w *Worker) Run(ctx context.Context) error {
	api := w.API
	if api == nil {
		api = NewAPI(w.Server)
	}
	if api.Token == "" {
		api.Token = w.Token
	}
	conc := w.Concurrency
	if conc < 1 {
		conc = 1
	}
	name := w.Name
	if name == "" {
		name, _ = os.Hostname()
	}
	scratch, err := campaign.OpenCache(w.Scratch)
	if err != nil {
		return fmt.Errorf("worker: scratch cache: %w", err)
	}
	store, err := ckpt.Open(w.Ckpt)
	if err != nil {
		// Checkpointing is an optimization: a broken store directory
		// degrades to warm-from-scratch execution, not a dead worker.
		w.logf("checkpoint store disabled: %v", err)
		store = nil
	}

	// pollCtx ends on either stop signal, cutting the long-poll (and any
	// registration backoff) short.
	pollCtx, cancelPoll := context.WithCancel(ctx)
	defer cancelPoll()
	quit := w.quitCh()
	go func() {
		select {
		case <-quit:
			cancelPoll()
		case <-pollCtx.Done():
		}
	}()

	// Registration retries transient failures forever: a worker that
	// boots before its coordinator (or during a coordinator restart)
	// waits, it doesn't die.
	reg, err := w.register(pollCtx, api, name, conc, false)
	if err != nil {
		return err
	}
	w.logf("registered as %s (lease ttl %dms, heartbeat %dms)",
		reg.WorkerID, reg.LeaseTTLMS, reg.HeartbeatMS)

	slots := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var regErr error
	fails := 0
lease:
	for {
		select {
		case slots <- struct{}{}:
		case <-pollCtx.Done():
			break lease
		}
		l, ok, err := api.Lease(pollCtx, LeaseRequest{WorkerID: reg.WorkerID, WaitMS: reg.MaxPollMS})
		if err != nil {
			<-slots
			if pollCtx.Err() != nil {
				break lease
			}
			if errors.Is(err, ErrUnknownWorker) {
				// The server lost our registration (it restarted):
				// register again instead of retrying a doomed identity.
				nr, rerr := w.register(pollCtx, api, name, conc, true)
				if rerr != nil {
					if pollCtx.Err() != nil {
						break lease
					}
					regErr = rerr // terminal refusal: protocol drift
					break lease
				}
				w.logf("server forgot us; re-registered as %s", nr.WorkerID)
				reg = nr
				fails = 0
				continue
			}
			fails++
			w.logf("lease poll: %v (retrying)", err)
			select {
			case <-time.After(w.backoff(fails - 1)):
			case <-pollCtx.Done():
				break lease
			}
			continue
		}
		fails = 0
		if !ok {
			<-slots
			continue
		}
		wg.Add(1)
		go func(l Lease) {
			defer wg.Done()
			defer func() { <-slots }()
			w.serve(ctx, api, reg, scratch, store, l)
		}(l)
	}
	wg.Wait()
	if regErr != nil {
		return regErr
	}

	// Deregister only on the graceful path. A hard stop (ctx cancelled)
	// models a crashed machine: it says nothing, and the server's lease
	// TTL is the cleanup — which is exactly what the failure-injection
	// suite exercises.
	if ctx.Err() == nil {
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := api.Deregister(dctx, reg.WorkerID); err == nil {
			w.logf("deregistered %s", reg.WorkerID)
		}
	}
	return ctx.Err()
}

// serve executes one lease: scratch-cache check, checkpoint artifact
// fetch, heartbeat loop, execution, upload (plus a best-effort artifact
// push when this worker generated the sweep's warm state). A worker
// whose ctx dies mid-job goes silent — no upload, no error report —
// which is precisely the failure the server's lease expiry exists to
// absorb.
func (w *Worker) serve(ctx context.Context, api *API, reg RegisterResponse, scratch *campaign.Cache, store *ckpt.Store, l Lease) {
	if w.OnLease != nil {
		w.OnLease(l)
	}
	if ctx.Err() != nil {
		return // killed before the job started; the lease will expire
	}
	job := l.Job.Job()
	w.logf("lease %s: %s (attempt %d)", l.ID, job.ID(), l.Attempt)

	// Conformance self-check: the lease's key must be the hash this
	// worker derives from the same job. A mismatch means protocol or
	// version drift — refuse rather than poison the shared cache.
	key, err := campaign.JobKey(&job, l.Job.Params)
	if err != nil || key != l.Key {
		if err == nil {
			err = fmt.Errorf("job key mismatch: lease says %.12s, worker derives %.12s", l.Key, key)
		}
		w.upload(ctx, api, reg.WorkerID, l, campaign.Result{}, fmt.Errorf("worker %s: %w", reg.WorkerID, err))
		return
	}

	if res, ok := scratch.Get(key); ok {
		res.Point = job.Point
		w.logf("lease %s: scratch hit", l.ID)
		if w.OnDone != nil {
			w.OnDone(l, res, nil)
		}
		w.upload(ctx, api, reg.WorkerID, l, res, nil)
		return
	}

	// Checkpoint artifact: fetch the sweep's shared warm state before
	// executing. A miss (first cell of the sweep landing here, or a
	// store-less server) is fine — the execution generates the artifact
	// locally and pushes it back afterwards. Failures at every step
	// degrade to warm-from-scratch.
	ckptKey := l.CkptKey
	if store == nil {
		ckptKey = ""
	}
	fetched := false
	if ckptKey != "" && !store.Has(ckptKey) {
		if data, err := api.FetchCkpt(ctx, ckptKey); err != nil {
			w.logf("lease %s: no artifact %.12s… from server: %v", l.ID, ckptKey, err)
		} else if err := store.WriteRaw(ckptKey, data); err != nil {
			w.logf("lease %s: artifact %.12s… rejected locally: %v", l.ID, ckptKey, err)
		} else {
			fetched = true
			w.logf("lease %s: fetched artifact %.12s… (%d bytes)", l.ID, ckptKey, len(data))
		}
	}

	// Heartbeat until the job finishes; a Cancel response (or a gone
	// lease) aborts the execution.
	jobCtx, cancelJob := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	started := time.Now()
	go func() {
		defer close(hbDone)
		every := time.Duration(reg.HeartbeatMS) * time.Millisecond
		if every <= 0 {
			every = 5 * time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-t.C:
			}
			resp, err := api.Heartbeat(jobCtx, l.ID, Heartbeat{
				WorkerID:    reg.WorkerID,
				ElapsedMS:   time.Since(started).Milliseconds(),
				InstsPerSec: w.rate(),
			})
			if err == ErrLeaseGone || resp.Cancel {
				w.logf("lease %s: server cancelled (gone=%v)", l.ID, err == ErrLeaseGone)
				cancelJob()
				return
			}
			// Transient heartbeat errors are survivable as long as one
			// lands within the lease TTL; keep trying.
		}
	}()

	res, execErr := campaign.ExecuteStored(jobCtx, &job, store)
	cancelJob()
	<-hbDone

	if ctx.Err() != nil {
		return // hard-stopped: vanish; the server re-leases the job
	}
	if execErr == nil {
		w.insts.Add(res.Stats.CommittedReal)
		w.simNanos.Add(res.FinishedAt.Sub(res.StartedAt).Nanoseconds())
		_ = scratch.Put(key, res)
		if w.ScratchMaxBytes > 0 {
			_, _, _ = scratch.GC(w.ScratchMaxBytes)
		}
		if ckptKey != "" && !fetched && store.Has(ckptKey) {
			// This worker generated the sweep's warm state: publish it so
			// the server and the rest of the fleet skip their warming.
			// Best-effort — the server may refuse (another cell beat us
			// to it) and correctness never depends on the push landing.
			if data, err := store.ReadRaw(ckptKey); err == nil {
				if err := api.PushCkpt(ctx, ckptKey, data); err != nil {
					w.logf("lease %s: artifact push: %v", l.ID, err)
				} else {
					w.logf("lease %s: pushed artifact %.12s… (%d bytes)", l.ID, ckptKey, len(data))
				}
			}
		}
	}
	if w.OnDone != nil {
		w.OnDone(l, res, execErr)
	}
	w.upload(ctx, api, reg.WorkerID, l, res, execErr)
}

// upload sends a lease's outcome, retrying briefly: the lease TTL gives
// room, and if every attempt fails the server's expiry re-queues the
// job anyway — correctness never depends on the upload landing.
func (w *Worker) upload(ctx context.Context, api *API, workerID string, l Lease, res campaign.Result, execErr error) {
	up := ResultUpload{WorkerID: workerID, Key: l.Key}
	if execErr != nil {
		up.Error = execErr.Error()
	} else {
		up.Result = &res
	}
	for attempt := 0; attempt < 3; attempt++ {
		if ctx.Err() != nil {
			return
		}
		_, err := api.Complete(ctx, l.ID, up)
		if err == nil || err == ErrLeaseGone {
			if err == ErrLeaseGone {
				w.logf("lease %s: upload after expiry, discarded by server", l.ID)
			}
			return
		}
		if terminal(err) {
			// A 4xx (e.g. the server rejected the result's identity) is
			// final; re-sending identical bytes can only earn a 410 —
			// the server has already re-queued or resolved the job.
			w.logf("lease %s: upload refused: %v", l.ID, err)
			return
		}
		w.logf("lease %s: upload failed: %v", l.ID, err)
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return
		}
	}
}
