// Protocol conformance: every lease/heartbeat/result wire message is
// pinned byte-for-byte against a committed golden JSON fixture, so any
// drift in the wire format — field renames, type changes, a sim.Config
// reshape leaking into leases — fails here before it strands a mixed
// fleet. Regenerate after an intentional protocol change with:
//
//	go test ./internal/worker -run TestProtocolGolden -update
package worker

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures from the current wire types")

// fixtureJob is the deterministic job every fixture derives from: the
// paper's default spec narrowed to one cell.
func fixtureJob(t *testing.T) (campaign.Job, campaign.Spec) {
	t.Helper()
	spec := campaign.DefaultSpec(8_000)
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechExtension}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("fixture spec expands to %d jobs, want 1", len(jobs))
	}
	return jobs[0], spec
}

// checkGolden pins got (indented JSON of msg) against testdata/name and
// verifies the bytes decode back into an equal message (round-trip).
func checkGolden(t *testing.T, name string, msg any) {
	t.Helper()
	got, err := json.MarshalIndent(msg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from its golden.\n--- got ---\n%s--- want ---\n%s"+
				"(intentional protocol change? regenerate with: go test ./internal/worker -run TestProtocolGolden -update)",
				name, got, want)
		}
	}
	// Round-trip: the golden bytes must decode into an equal message.
	back := reflect.New(reflect.TypeOf(msg)).Interface()
	if err := json.Unmarshal(got, back); err != nil {
		t.Fatalf("%s does not round-trip: %v", name, err)
	}
	if got2 := reflect.ValueOf(back).Elem().Interface(); !reflect.DeepEqual(got2, msg) {
		t.Errorf("%s round-trip mismatch:\ndecoded %+v\noriginal %+v", name, got2, msg)
	}
}

// TestProtocolGoldenMessages pins every wire message of the
// lease/heartbeat/result protocol.
func TestProtocolGoldenMessages(t *testing.T) {
	job, spec := fixtureJob(t)
	key, err := campaign.JobKey(&job, spec.Params)
	if err != nil {
		t.Fatal(err)
	}

	checkGolden(t, "register_request.json", RegisterRequest{
		Name: "bench-03", Capacity: 4, Protocol: ProtocolVersion,
	})
	checkGolden(t, "register_response.json", RegisterResponse{
		WorkerID: "w0003", LeaseTTLMS: 15000, HeartbeatMS: 5000, MaxPollMS: 7500,
	})
	checkGolden(t, "lease_request.json", LeaseRequest{
		WorkerID: "w0003", WaitMS: 7500,
	})
	checkGolden(t, "lease.json", Lease{
		ID: "l000042", Key: key, Attempt: 2, DeadlineMS: 15000,
		Job: JobSpecOf(&job, spec.Params),
	})
	checkGolden(t, "heartbeat.json", Heartbeat{
		WorkerID: "w0003", ElapsedMS: 2500, InstsPerSec: 4.5e6,
	})
	checkGolden(t, "heartbeat_response.json", HeartbeatResponse{
		Cancel: false, DeadlineMS: 15000,
	})
	res := campaign.Result{
		Bench: job.Bench, Tech: job.Tech, Point: job.Point,
		CompileMS: 1.25, GenMS: 0.5, Hints: 17,
	}
	res.Stats.CommittedReal = 8_000
	checkGolden(t, "result_upload.json", ResultUpload{
		WorkerID: "w0003", Key: key, Result: &res,
	})
	checkGolden(t, "result_upload_error.json", ResultUpload{
		WorkerID: "w0003", Key: key, Error: "gzip/ext: something broke",
	})
	checkGolden(t, "result_response.json", ResultResponse{Accepted: true})
}

// TestJobSpecRoundTrip: the wire job must rebuild the exact engine job,
// and the rebuilt job must derive the same JobKey the lease carries —
// the identity the whole validation chain hangs on.
func TestJobSpecRoundTrip(t *testing.T) {
	job, spec := fixtureJob(t)
	key, err := campaign.JobKey(&job, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	ws := JobSpecOf(&job, spec.Params)
	blob, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	rebuilt := back.Job()
	if !reflect.DeepEqual(rebuilt, job) {
		t.Fatalf("wire round-trip changed the job:\nwire %+v\norig %+v", rebuilt, job)
	}
	key2, err := campaign.JobKey(&rebuilt, back.Params)
	if err != nil {
		t.Fatal(err)
	}
	if key2 != key {
		t.Errorf("rebuilt job derives key %.12s, original %.12s — remote validation would reject every lease", key2, key)
	}
}

// TestJobSpecSampledRoundTrip covers the sampled-job wire path: the
// sampling regime must survive and keep its (distinct) JobKey.
func TestJobSpecSampledRoundTrip(t *testing.T) {
	job, spec := fixtureJob(t)
	exactKey, err := campaign.JobKey(&job, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	sampling := campaign.DefaultSampling()
	job.Sampling = &sampling
	ws := JobSpecOf(&job, spec.Params)
	blob, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	rebuilt := back.Job()
	if !reflect.DeepEqual(rebuilt, job) {
		t.Fatalf("sampled wire round-trip changed the job")
	}
	key, err := campaign.JobKey(&rebuilt, back.Params)
	if err != nil {
		t.Fatal(err)
	}
	if key == exactKey {
		t.Error("sampled job shares the exact job's key after the wire round-trip")
	}
}
