package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ErrLeaseGone reports a heartbeat or upload against a lease the server
// no longer holds — it expired (the job is already re-queued) or its
// campaign is gone. The worker's move is always the same: drop the job
// and lease the next one.
var ErrLeaseGone = errors.New("worker: lease gone")

// ErrUnknownWorker reports a lease request from an identity the server
// does not hold — typically a server restart wiped the registry. The
// worker's move is to register again, not to retry.
var ErrUnknownWorker = errors.New("worker: unknown to the server")

// APIError is a non-2xx protocol response. Status lets callers separate
// terminal refusals (4xx: retrying the identical request is pointless)
// from transient server trouble.
type APIError struct {
	Status int
	Method string
	Path   string
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("worker: %s %s: %s (status %d)", e.Method, e.Path, e.Msg, e.Status)
}

// terminal reports a 4xx refusal that no retry of the same request can
// fix.
func terminal(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status >= 400 && ae.Status < 500
}

// API is the low-level protocol client — one method per endpoint, no
// policy. Worker drives it; protocol tests drive it directly to play
// misbehaving fleets (dead workers, late uploads, corrupt results).
type API struct {
	// Base is the server root, e.g. "http://host:8080".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Token, when non-empty, is sent as "Authorization: Bearer" on every
	// request — required against a server running with -auth (a
	// worker-role credential).
	Token string
}

// NewAPI returns a protocol client for the server at base.
func NewAPI(base string) *API {
	return &API{Base: strings.TrimRight(base, "/")}
}

func (a *API) http() *http.Client {
	if a.HTTP != nil {
		return a.HTTP
	}
	return http.DefaultClient
}

// authorize stamps the bearer credential onto an outgoing request.
func (a *API) authorize(req *http.Request) {
	if a.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.Token)
	}
}

// call performs one JSON request. A nil out discards the body. noBody
// status codes (204) succeed with out untouched; 410 maps to
// ErrLeaseGone.
func (a *API) call(ctx context.Context, method, path string, in, out any) (status int, err error) {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("worker: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.Base+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	a.authorize(req)
	resp, err := a.http().Do(req)
	if err != nil {
		return 0, fmt.Errorf("worker: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusGone:
		return resp.StatusCode, ErrLeaseGone
	case resp.StatusCode >= 400:
		msg := resp.Status
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return resp.StatusCode, &APIError{Status: resp.StatusCode, Method: method, Path: path, Msg: msg}
	case resp.StatusCode == http.StatusNoContent || out == nil:
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("worker: decoding %s %s: %w", method, path, err)
	}
	return resp.StatusCode, nil
}

// Register announces the worker and returns its identity and timing
// contract.
func (a *API) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	if req.Protocol == 0 {
		req.Protocol = ProtocolVersion
	}
	var resp RegisterResponse
	_, err := a.call(ctx, http.MethodPost, "/v1/workers", req, &resp)
	return resp, err
}

// Deregister removes the worker; any leases it still holds are
// immediately re-queued.
func (a *API) Deregister(ctx context.Context, workerID string) error {
	_, err := a.call(ctx, http.MethodDelete, "/v1/workers/"+workerID, nil, nil)
	return err
}

// Lease asks for the next job, long-polling up to req.WaitMS. ok is
// false when the wait expired with nothing to do. ErrUnknownWorker
// (wrapped) means the server lost this worker's registration — a
// restart — and the worker must register again.
func (a *API) Lease(ctx context.Context, req LeaseRequest) (Lease, bool, error) {
	var l Lease
	status, err := a.call(ctx, http.MethodPost, "/v1/leases", req, &l)
	if err != nil {
		if status == http.StatusNotFound {
			// The lease endpoint's only 404 is an unregistered worker.
			return Lease{}, false, fmt.Errorf("%w: %v", ErrUnknownWorker, err)
		}
		return Lease{}, false, err
	}
	return l, status != http.StatusNoContent, nil
}

// Heartbeat keeps a lease alive. ErrLeaseGone means the server already
// gave up on it.
func (a *API) Heartbeat(ctx context.Context, leaseID string, hb Heartbeat) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	_, err := a.call(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/heartbeat", hb, &resp)
	return resp, err
}

// Complete uploads a lease's outcome (result or error).
func (a *API) Complete(ctx context.Context, leaseID string, up ResultUpload) (ResultResponse, error) {
	var resp ResultResponse
	_, err := a.call(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/result", up, &resp)
	return resp, err
}

// FetchCkpt downloads the raw checkpoint artifact for key. Artifacts
// are opaque binary blobs, not JSON, so this bypasses call.
func (a *API) FetchCkpt(ctx context.Context, key string) ([]byte, error) {
	path := "/v1/checkpoints/" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.Base+path, nil)
	if err != nil {
		return nil, err
	}
	a.authorize(req)
	resp, err := a.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("worker: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Method: http.MethodGet, Path: path, Msg: resp.Status}
	}
	return io.ReadAll(resp.Body)
}

// PushCkpt uploads a locally generated checkpoint artifact so the rest
// of the sweep — on the server and the fleet — can resume from it.
func (a *API) PushCkpt(ctx context.Context, key string, data []byte) error {
	path := "/v1/checkpoints/" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, a.Base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	a.authorize(req)
	resp, err := a.http().Do(req)
	if err != nil {
		return fmt.Errorf("worker: PUT %s: %w", path, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 300 {
		return &APIError{Status: resp.StatusCode, Method: http.MethodPut, Path: path, Msg: resp.Status}
	}
	return nil
}
