// Package worker is the remote half of the campaign service's
// distributed simulation: a pull-based worker that registers with a
// sdiqd server, leases jobs over HTTP, runs them with the exact
// executor the local engine uses (against a local scratch cache),
// streams heartbeats while a job runs, and uploads the finished
// campaign.Result. The server validates every upload against the job's
// content hash (campaign.JobKey) before the result enters the shared
// cache, so a byzantine or stale worker can never corrupt it.
//
// Wire protocol (all JSON over the server's existing HTTP listener):
//
//	POST   /v1/workers              RegisterRequest  → RegisterResponse
//	DELETE /v1/workers/{id}         deregister (requeues live leases)
//	POST   /v1/leases               LeaseRequest     → Lease | 204 (none)
//	POST   /v1/leases/{id}/heartbeat  Heartbeat      → HeartbeatResponse
//	POST   /v1/leases/{id}/result   ResultUpload     → ResultResponse
//
// The lease request long-polls: the server holds it open until a job is
// available or the wait expires. A lease lives LeaseTTLMS from grant and
// every accepted heartbeat re-arms it; a lease that outlives its TTL is
// presumed dead, and its job is re-queued for another worker (bounded
// retries, then the server runs it locally). A late upload against an
// expired lease is answered 410 Gone and discarded.
package worker

import (
	"repro/internal/campaign"
	"repro/internal/power"
	"repro/internal/sim"
)

// ProtocolVersion guards wire compatibility: the server refuses
// registrations from workers speaking a different version, which turns
// a skewed-binary fleet into a clean startup error instead of subtle
// result corruption.
//
// Version 2 adds transport-layer bearer authentication: against a
// server started with -auth, every request — register, lease,
// heartbeat, upload, checkpoint GET/PUT — carries
// "Authorization: Bearer <token>" for a worker-role principal. The
// wire bodies are unchanged; version 1 workers are refused at
// registration because they cannot know to send the credential.
const ProtocolVersion = 2

// RegisterRequest announces a worker to the server.
type RegisterRequest struct {
	// Name labels the worker in logs and metrics (hostname by default).
	Name string `json:"name"`
	// Capacity is how many jobs the worker runs concurrently; the server
	// uses the fleet total to size campaign parallelism.
	Capacity int `json:"capacity"`
	// Protocol is the worker's ProtocolVersion.
	Protocol int `json:"protocol"`
	// Reconnects counts this worker's re-registrations after losing the
	// coordinator (0 on first contact) — the server surfaces the fleet's
	// churn in its metrics.
	Reconnects int `json:"reconnects,omitempty"`
}

// RegisterResponse hands the worker its identity and the protocol's
// timing contract.
type RegisterResponse struct {
	// WorkerID names this worker in every subsequent request.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long a granted lease lives without a heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is how often the worker must heartbeat a running job.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// MaxPollMS caps the long-poll wait the server will honour.
	MaxPollMS int64 `json:"max_poll_ms"`
}

// LeaseRequest asks for the next job, long-polling up to WaitMS.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms"`
}

// Lease is one granted job: the complete job identity travels with the
// work, so the worker can rebuild and verify it independently.
type Lease struct {
	// ID names the lease in heartbeats and the result upload.
	ID string `json:"id"`
	// Key is the job's content hash (campaign.JobKey). The worker
	// recomputes it from Job and refuses mismatches — a conformance
	// self-check that catches protocol or version drift before any
	// simulation time is spent.
	Key string `json:"key"`
	// Attempt counts leases of this job, starting at 1; retries after a
	// failed or expired lease increment it.
	Attempt int `json:"attempt"`
	// DeadlineMS is the lease TTL from grant.
	DeadlineMS int64 `json:"deadline_ms"`
	// CkptKey, when non-empty, is the job's checkpoint artifact key
	// (campaign.CheckpointKey): the worker may GET the artifact from
	// /v1/checkpoints/{key} to resume sampling without re-warming, and
	// may PUT one it generated back for the rest of the sweep. Absent
	// for exact jobs and on servers without a checkpoint store.
	CkptKey string `json:"ckpt_key,omitempty"`
	// Job is the work itself.
	Job JobSpec `json:"job"`
}

// JobSpec is the wire form of a campaign.Job plus the campaign's power
// parameters (part of the job's cache identity).
type JobSpec struct {
	Bench    string             `json:"bench"`
	Tech     campaign.Technique `json:"tech"`
	Point    campaign.Point     `json:"point,omitempty"`
	Config   sim.Config         `json:"config"`
	Budget   int64              `json:"budget"`
	Seed     int64              `json:"seed"`
	Sampling *campaign.Sampling `json:"sampling,omitempty"`
	Params   power.Params       `json:"params"`
}

// JobSpecOf converts an engine job to its wire form. The config's probe
// is dropped: probes are in-process attachments and never cross the
// wire (JobKey already excludes them).
func JobSpecOf(j *campaign.Job, params power.Params) JobSpec {
	cfg := j.Config
	cfg.Probe = nil
	return JobSpec{
		Bench:    j.Bench,
		Tech:     j.Tech,
		Point:    j.Point,
		Config:   cfg,
		Budget:   j.Budget,
		Seed:     j.Seed,
		Sampling: j.Sampling,
		Params:   params,
	}
}

// Job rebuilds the engine job this spec describes.
func (s *JobSpec) Job() campaign.Job {
	return campaign.Job{
		Bench:    s.Bench,
		Tech:     s.Tech,
		Point:    s.Point,
		Config:   s.Config,
		Budget:   s.Budget,
		Seed:     s.Seed,
		Sampling: s.Sampling,
	}
}

// Heartbeat keeps a lease alive and streams progress.
type Heartbeat struct {
	WorkerID string `json:"worker_id"`
	// ElapsedMS is how long the leased job has been running.
	ElapsedMS int64 `json:"elapsed_ms"`
	// InstsPerSec is the worker's committed-instruction rate over the
	// jobs it has completed this session (0 until the first finishes).
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// Cancel tells the worker to abandon the job: its campaign is gone
	// (cancelled or already satisfied elsewhere).
	Cancel bool `json:"cancel,omitempty"`
	// DeadlineMS is the renewed lease TTL from now.
	DeadlineMS int64 `json:"deadline_ms"`
}

// ResultUpload completes a lease: either a finished result or the
// worker's error. Exactly one of Result and Error is set.
type ResultUpload struct {
	WorkerID string `json:"worker_id"`
	// Key echoes the lease's job hash; the server re-validates it (and
	// the result's identity fields) against the job it actually leased.
	Key string `json:"key"`
	// Error reports a failed execution; the server re-queues the job.
	Error string `json:"error,omitempty"`
	// Result is the finished job's result.
	Result *campaign.Result `json:"result,omitempty"`
}

// ResultResponse acknowledges an upload.
type ResultResponse struct {
	// Accepted means the result entered the campaign (and will enter the
	// shared cache).
	Accepted bool `json:"accepted"`
	// Requeued means the job went back on the queue (failed or rejected
	// upload).
	Requeued bool `json:"requeued,omitempty"`
}
