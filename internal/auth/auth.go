// Package auth is the campaign service's identity layer: a reloadable
// token file mapping bearer tokens to principals, each a (name, role)
// pair. The server's middleware resolves every /v1/* request through
// Lookup; quotas, campaign ownership and tenant namespaces then hang
// off the authenticated principal name instead of a spoofable header.
//
// Token file format (JSON):
//
//	{
//	  "tokens": [
//	    {"token": "s3cret-alice", "principal": "alice", "role": "tenant"},
//	    {"token": "s3cret-fleet", "principal": "fleet", "role": "worker"}
//	  ]
//	}
//
// Roles: "tenant" submits and owns campaigns (sdiq clients); "worker"
// speaks the lease protocol and the checkpoint endpoints (sdiqw).
// Rotation is a rewrite of the file plus SIGHUP to sdiqd (Reload).
package auth

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sync"
)

// Role says which half of the protocol a principal may speak.
type Role string

const (
	// RoleTenant is a campaign client: submits specs, follows events,
	// fetches exports, deletes its own campaigns.
	RoleTenant Role = "tenant"
	// RoleWorker is a fleet worker: registers, leases, heartbeats,
	// uploads results, and ships checkpoint artifacts.
	RoleWorker Role = "worker"
)

// Principal is an authenticated identity.
type Principal struct {
	Name string
	Role Role
}

// nameRE is the principal-name grammar. It is deliberately path- and
// label-safe: names flow into quota maps, durable meta.json, Prometheus
// labels and (under tenant isolation) cache directory paths, so no
// separators, no dots-only traversal components, no uppercase.
var nameRE = regexp.MustCompile(`^[a-z0-9._-]{1,64}$`)

// ValidName reports whether name is a legal principal/client name:
// 1-64 chars of [a-z0-9._-], with no path-traversal components.
func ValidName(name string) bool {
	if !nameRE.MatchString(name) {
		return false
	}
	// "." and ".." are in the charset but are path components; refuse
	// anything that is only dots.
	for i := 0; i < len(name); i++ {
		if name[i] != '.' {
			return true
		}
	}
	return false
}

// Token is one token-file entry.
type Token struct {
	Token     string `json:"token"`
	Principal string `json:"principal"`
	Role      Role   `json:"role"`
}

type tokenFile struct {
	Tokens []Token `json:"tokens"`
}

// entry is a loaded credential: the token is kept only as its SHA-256,
// which both avoids holding secrets longer than needed and gives every
// comparison a fixed length for the constant-time check.
type entry struct {
	hash [sha256.Size]byte
	p    Principal
}

// Authenticator resolves bearer tokens to principals. A nil
// *Authenticator means authentication is disabled. Safe for concurrent
// Lookup and Reload.
type Authenticator struct {
	path string // "" when built from literals (tests)

	mu      sync.RWMutex
	entries []entry
}

// compile builds the entry set from token-file contents, validating
// every principal name and role and refusing duplicate tokens.
func compile(tokens []Token) ([]entry, error) {
	entries := make([]entry, 0, len(tokens))
	seen := make(map[[sha256.Size]byte]string, len(tokens))
	for i, tk := range tokens {
		if tk.Token == "" {
			return nil, fmt.Errorf("auth: token %d: empty token", i)
		}
		if !ValidName(tk.Principal) {
			return nil, fmt.Errorf("auth: token %d: invalid principal %q (want [a-z0-9._-]{1,64})", i, tk.Principal)
		}
		if tk.Role != RoleTenant && tk.Role != RoleWorker {
			return nil, fmt.Errorf("auth: token %d (%s): unknown role %q (want tenant or worker)", i, tk.Principal, tk.Role)
		}
		h := sha256.Sum256([]byte(tk.Token))
		if prev, dup := seen[h]; dup {
			return nil, fmt.Errorf("auth: token %d (%s): duplicate token also issued to %s", i, tk.Principal, prev)
		}
		seen[h] = tk.Principal
		entries = append(entries, entry{hash: h, p: Principal{Name: tk.Principal, Role: tk.Role}})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("auth: no tokens — an empty token file would lock everyone out")
	}
	return entries, nil
}

// New builds an Authenticator from literal tokens (tests, embedding).
func New(tokens []Token) (*Authenticator, error) {
	entries, err := compile(tokens)
	if err != nil {
		return nil, err
	}
	return &Authenticator{entries: entries}, nil
}

// LoadFile reads a token file. The returned Authenticator remembers the
// path so Reload (SIGHUP) can re-read it for rotation.
func LoadFile(path string) (*Authenticator, error) {
	a := &Authenticator{path: path}
	if err := a.Reload(); err != nil {
		return nil, err
	}
	return a, nil
}

// Reload re-reads the token file. On any error the previously loaded
// tokens stay in force — a botched rotation must not lock the fleet
// out mid-flight.
func (a *Authenticator) Reload() error {
	if a.path == "" {
		return nil
	}
	blob, err := os.ReadFile(a.path)
	if err != nil {
		return fmt.Errorf("auth: %w", err)
	}
	var tf tokenFile
	if err := json.Unmarshal(blob, &tf); err != nil {
		return fmt.Errorf("auth: %s: %w", a.path, err)
	}
	entries, err := compile(tf.Tokens)
	if err != nil {
		return fmt.Errorf("%w (in %s)", err, a.path)
	}
	a.mu.Lock()
	a.entries = entries
	a.mu.Unlock()
	return nil
}

// Lookup resolves a presented bearer token. The scan is constant-time
// in the token values: the presented token is hashed once and compared
// against every entry's hash with crypto/subtle, never short-circuiting
// on a match, so response timing reveals neither a near-miss nor which
// entry matched.
func (a *Authenticator) Lookup(token string) (Principal, bool) {
	if a == nil {
		return Principal{}, false
	}
	h := sha256.Sum256([]byte(token))
	a.mu.RLock()
	defer a.mu.RUnlock()
	var (
		found Principal
		ok    int
	)
	for i := range a.entries {
		match := subtle.ConstantTimeCompare(h[:], a.entries[i].hash[:])
		if match == 1 && ok == 0 {
			found = a.entries[i].p
		}
		ok |= match
	}
	return found, ok == 1
}

// Len reports how many tokens are loaded (for startup logging).
func (a *Authenticator) Len() int {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.entries)
}
