package auth

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testTokens() []Token {
	return []Token{
		{Token: "alice-secret", Principal: "alice", Role: RoleTenant},
		{Token: "fleet-secret", Principal: "fleet-1", Role: RoleWorker},
	}
}

func TestLookup(t *testing.T) {
	a, err := New(testTokens())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := a.Lookup("alice-secret")
	if !ok || p.Name != "alice" || p.Role != RoleTenant {
		t.Errorf("Lookup(alice-secret) = %+v, %v; want alice/tenant", p, ok)
	}
	p, ok = a.Lookup("fleet-secret")
	if !ok || p.Name != "fleet-1" || p.Role != RoleWorker {
		t.Errorf("Lookup(fleet-secret) = %+v, %v; want fleet-1/worker", p, ok)
	}
	if _, ok := a.Lookup("wrong"); ok {
		t.Error("unknown token resolved")
	}
	if _, ok := a.Lookup(""); ok {
		t.Error("empty token resolved")
	}
	// A nil authenticator (auth off) resolves nothing.
	var nilA *Authenticator
	if _, ok := nilA.Lookup("alice-secret"); ok {
		t.Error("nil authenticator resolved a token")
	}
}

func TestCompileRejects(t *testing.T) {
	cases := []struct {
		name   string
		tokens []Token
		want   string
	}{
		{"empty token", []Token{{Token: "", Principal: "a", Role: RoleTenant}}, "empty token"},
		{"bad principal", []Token{{Token: "t", Principal: "../../etc", Role: RoleTenant}}, "invalid principal"},
		{"uppercase principal", []Token{{Token: "t", Principal: "Alice", Role: RoleTenant}}, "invalid principal"},
		{"bad role", []Token{{Token: "t", Principal: "alice", Role: "admin"}}, "unknown role"},
		{"duplicate token", []Token{
			{Token: "t", Principal: "alice", Role: RoleTenant},
			{Token: "t", Principal: "bob", Role: RoleTenant},
		}, "duplicate token"},
		{"no tokens", nil, "no tokens"},
	}
	for _, tc := range cases {
		if _, err := New(tc.tokens); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestValidName(t *testing.T) {
	good := []string{"alice", "fleet-1", "a", "x.y_z-0", strings.Repeat("a", 64), "v1.2.3"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{"", "Alice", "a b", "a/b", "../../etc", "..", ".", "...", strings.Repeat("a", 65), "a\n"}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestLoadFileAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tokens": [{"token": "tok-a", "principal": "alice", "role": "tenant"}]}`)
	a, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("tok-a"); !ok {
		t.Fatal("loaded token does not resolve")
	}

	// Rotation: rewrite the file, Reload, and the old token is dead.
	write(`{"tokens": [{"token": "tok-b", "principal": "alice", "role": "tenant"}]}`)
	if err := a.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("tok-a"); ok {
		t.Error("rotated-out token still resolves")
	}
	if _, ok := a.Lookup("tok-b"); !ok {
		t.Error("rotated-in token does not resolve")
	}

	// A broken rotation keeps the previous tokens in force.
	write(`{"tokens": []}`)
	if err := a.Reload(); err == nil {
		t.Error("reload of empty token file succeeded, want error")
	}
	if _, ok := a.Lookup("tok-b"); !ok {
		t.Error("failed reload wiped the working token set")
	}

	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadFile of missing file succeeded")
	}
}
