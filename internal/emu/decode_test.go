package emu_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

// decodeDiffCap bounds the dynamic records compared per program: enough
// to wrap short loops many times and cross every block boundary shape,
// small enough for the fuzzer to stay fast.
const decodeDiffCap = 4_000

// diffStreams runs p twice — decoded dispatch and reference interpreter —
// and requires the two dynamic streams identical record by record, plus
// matching final architectural state.
func diffStreams(t *testing.T, p *prog.Program, restart bool, budget int) {
	t.Helper()
	ed, err := emu.New(p)
	if err != nil {
		return
	}
	er := emu.MustNew(p)
	ed.Restart, er.Restart = restart, restart
	er.SetDecode(false)
	for i := 0; i < budget; i++ {
		dd, okd := ed.Next()
		dr, okr := er.Next()
		if okd != okr {
			t.Fatalf("record %d: decoded ok=%v, reference ok=%v", i, okd, okr)
		}
		if !okd {
			break
		}
		if dd != dr {
			t.Fatalf("record %d diverges:\ndecoded:   %+v\nreference: %+v", i, dd, dr)
		}
	}
	if ed.Halted() != er.Halted() || ed.Seq() != er.Seq() {
		t.Fatalf("final state diverges: decoded halt=%v seq=%d, reference halt=%v seq=%d",
			ed.Halted(), ed.Seq(), er.Halted(), er.Seq())
	}
	for r := 0; r < 8; r++ {
		if ed.IntReg(r) != er.IntReg(r) {
			t.Fatalf("r%d diverges: decoded %d, reference %d", r, ed.IntReg(r), er.IntReg(r))
		}
	}
}

// TestDecodeDifferential holds the decoded and reference paths to
// identical streams on every registered workload, with and without
// Restart wraparound.
func TestDecodeDifferential(t *testing.T) {
	for _, b := range workload.Suite() {
		p := b.Build(42)
		t.Run(b.Name, func(t *testing.T) {
			diffStreams(t, p, true, decodeDiffCap)
			diffStreams(t, p, false, decodeDiffCap)
		})
	}
}

// TestDecodeCheckpointRoundTrip proves a checkpoint taken under decoded
// dispatch restores identically under either mode, mid-loop and with a
// non-empty call stack: the wire representation is mode-independent.
func TestDecodeCheckpointRoundTrip(t *testing.T) {
	b, ok := workload.ByName("crafty")
	if !ok {
		t.Fatal("crafty not registered")
	}
	p := b.Build(42)
	e := emu.MustNew(p)
	e.Restart = true
	for i := 0; i < 12_345; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatal("halted early")
		}
	}
	c := e.Checkpoint()

	var runs [][]trace.DynInst
	for _, dec := range []bool{true, false} {
		f, err := emu.NewFromCheckpoint(p, c)
		if err != nil {
			t.Fatal(err)
		}
		f.Restart = true
		f.SetDecode(dec)
		var out []trace.DynInst
		for i := 0; i < 5_000; i++ {
			d, ok := f.Next()
			if !ok {
				break
			}
			out = append(out, d)
		}
		runs = append(runs, out)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("restored streams diverge between decoded and reference dispatch")
	}
}

// TestDecodeToggleMidStream flips dispatch modes every few instructions
// and requires the interleaved stream to match an all-reference run:
// SetDecode must convert control state losslessly at any point,
// including inside calls.
func TestDecodeToggleMidStream(t *testing.T) {
	b, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip not registered")
	}
	p := b.Build(42)
	toggler := emu.MustNew(p)
	ref := emu.MustNew(p)
	toggler.Restart, ref.Restart = true, true
	ref.SetDecode(false)
	on := true
	for i := 0; i < decodeDiffCap; i++ {
		if i%7 == 0 {
			on = !on
			toggler.SetDecode(on)
		}
		dt, _ := toggler.Next()
		dr, _ := ref.Next()
		if dt != dr {
			t.Fatalf("record %d diverges after toggles:\ntoggled:   %+v\nreference: %+v", i, dt, dr)
		}
	}
}

// FuzzDecodeDifferential feeds arbitrary assembly through both dispatch
// paths and requires identical trace.DynInst sequences — the decoded
// switch is a deliberate duplicate of the reference semantics, and this
// is the harness that keeps the two from drifting. Seeds cover the
// shapes the dispatch table specializes: short loops wrapped many times,
// self-modifying-shaped programs (stores aimed at low/code addresses —
// the ISA executes from the immutable program image, so both paths must
// shrug them off identically), call stacks across procedure boundaries,
// and div/rem poison values.
func FuzzDecodeDifferential(f *testing.F) {
	f.Add(`program shortloop
proc main entry
  li r1, 3
.top:
  addi r2, r2, 1
  rem r3, r2, r1
  bne r3, r1, .top
  halt
endproc
`)
	f.Add(`program selfmod
data 7 7 7 7
proc main entry
  li r1, 0
.w:
  st r1, 0(r1)
  st r1, 4(r1)
  addi r1, r1, 8
  slti r2, r1, 64
  bne r2, r0, .w
  ld r3, 8(r0)
  jmp .out
.out:
  halt
endproc
`)
	f.Add(`program divpoison
proc main entry
  li r1, -9223372036854775808
  li r2, -1
  div r3, r1, r2
  rem r4, r1, r2
  div r5, r1, r0
  rem r6, r1, r0
  itof f1, r2
  fdiv f2, f1, f0
  ftoi r7, f2
  halt
endproc
`)
	f.Add(`program callwrap
proc leaf
  addi r9, r9, 1
  ret
endproc
proc main entry
  li r8, 2
.l:
  call leaf
  calllib leaf
  sub r8, r8, r9
  bge r8, r0, .l
  ret
endproc
`)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		p, err := prog.ParseAsm(strings.NewReader(src))
		if err != nil {
			return
		}
		if p.NumInsts() == 0 || p.NumInsts() > 2_000 || len(p.Data) > 1<<14 {
			return
		}
		// Restart wraps short programs through finish() repeatedly — the
		// highest-traffic edge the decoded path handles specially.
		diffStreams(t, p, true, decodeDiffCap)
		diffStreams(t, p, false, decodeDiffCap)
	})
}
