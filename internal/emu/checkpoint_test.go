package emu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

// checkpointProg builds a program with enough variety to exercise every
// piece of checkpointed state: memory traffic, call stack depth, FP
// registers and data-dependent branches.
func checkpointProg(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("ckpt")
	base := b.AppendData(make([]int64, 64)...)
	b.Proc("main").Entry().
		Li(isa.R(1), 200).
		Li(isa.R(2), int64(base)).
		Li(isa.R(26), 0x9e3779b9).
		Label("loop").
		Shli(isa.R(27), isa.R(26), 13).Xor(isa.R(26), isa.R(26), isa.R(27)).
		Shri(isa.R(27), isa.R(26), 7).Xor(isa.R(26), isa.R(26), isa.R(27)).
		Andi(isa.R(3), isa.R(26), 63*8).
		Add(isa.R(4), isa.R(2), isa.R(3)).
		Ld(isa.R(5), isa.R(4), 0).
		Add(isa.R(5), isa.R(5), isa.R(26)).
		St(isa.R(5), isa.R(4), 0).
		ItoF(isa.FP(0), isa.R(5)).
		FAdd(isa.FP(1), isa.FP(1), isa.FP(0)).
		Call("helper").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	b.Proc("helper").
		Andi(isa.R(10), isa.R(26), 1).
		Beq(isa.R(10), isa.RZero, "even").
		Addi(isa.R(11), isa.R(11), 3).
		Jmp("out").
		Label("even").
		Addi(isa.R(11), isa.R(11), 7).
		Label("out").
		Ret()
	return b.MustBuild()
}

func collect(t *testing.T, s trace.Stream, n int) []trace.DynInst {
	t.Helper()
	out := make([]trace.DynInst, 0, n)
	for len(out) < n {
		d, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out
}

// TestCheckpointDeterminism is the randomized restore contract: a
// checkpoint taken after a random prefix must reproduce the identical
// remaining DynInst sequence — Seq continuity, branch outcomes, and
// memory addresses included — both on in-place Restore and on a fresh
// emulator built from the checkpoint.
func TestCheckpointDeterminism(t *testing.T) {
	p := checkpointProg(t)
	const budget = 3000
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ref := MustNew(p)
		ref.Restart = true
		prefix := rng.Intn(budget - 1)
		collect(t, ref, prefix)
		cp := ref.Checkpoint()
		if cp.Seq() != int64(prefix) {
			t.Fatalf("trial %d: checkpoint Seq = %d, want %d", trial, cp.Seq(), prefix)
		}
		want := collect(t, ref, budget-prefix)

		// In-place restore on a second emulator advanced to a different,
		// unrelated position.
		other := MustNew(p)
		other.Restart = true
		collect(t, other, rng.Intn(budget))
		if err := other.Restore(cp); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if got := collect(t, other, budget-prefix); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: restored stream diverges from original", trial)
		}

		// Fresh emulator from the same checkpoint: the checkpoint must
		// survive the first restore untouched.
		fresh, err := NewFromCheckpoint(p, cp)
		if err != nil {
			t.Fatalf("trial %d: NewFromCheckpoint: %v", trial, err)
		}
		fresh.Restart = true
		if got := collect(t, fresh, budget-prefix); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fresh-from-checkpoint stream diverges", trial)
		}
	}
}

// TestCheckpointIsolation verifies a checkpoint is a true snapshot: state
// mutated after the checkpoint (registers, memory) must not leak into it.
func TestCheckpointIsolation(t *testing.T) {
	p := checkpointProg(t)
	e := MustNew(p)
	collect(t, e, 500)
	cp := e.Checkpoint()
	wantR5 := e.IntReg(5)
	// Advance the emulator: it rewrites r5 and the data table in place.
	collect(t, e, 500)
	r, err := NewFromCheckpoint(p, cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.IntReg(5); got != wantR5 {
		t.Fatalf("restored r5 = %d, want %d (checkpoint mutated by later run)", got, wantR5)
	}
	// The restored emulator's memory writes must not flow back into the
	// checkpoint either: restore twice and compare first instructions.
	collect(t, r, 500)
	r2, err := NewFromCheckpoint(p, cp)
	if err != nil {
		t.Fatal(err)
	}
	a := collect(t, r2, 100)
	r3, _ := NewFromCheckpoint(p, cp)
	b := collect(t, r3, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("second restore from checkpoint differs from first")
	}
}

// TestCheckpointWrongProgram verifies the program-identity guard.
func TestCheckpointWrongProgram(t *testing.T) {
	p1 := checkpointProg(t)
	p2 := checkpointProg(t)
	e1 := MustNew(p1)
	cp := e1.Checkpoint()
	e2 := MustNew(p2)
	if err := e2.Restore(cp); err == nil {
		t.Fatal("restore across programs succeeded; want error")
	}
}

// TestCheckpointAtHalt verifies halting state round-trips.
func TestCheckpointAtHalt(t *testing.T) {
	p := checkpointProg(t)
	e := MustNew(p) // Restart off: the program eventually halts
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	cp := e.Checkpoint()
	r, err := NewFromCheckpoint(p, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted() {
		t.Fatal("restored emulator not halted")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("halted emulator yielded an instruction")
	}
}
