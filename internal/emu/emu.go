// Package emu is the functional emulator: the SimpleScalar "functional
// core" equivalent. It executes a linked program with concrete register
// and memory state and yields the committed dynamic instruction stream the
// timing simulator consumes. Branch outcomes and memory addresses are
// therefore real, not modelled.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

// pageBits gives 4KiB pages of 512 words.
const (
	pageBits  = 12
	pageWords = 1 << (pageBits - 3)
)

// Memory is a sparse, paged, word-granular memory. Addresses are byte
// addresses rounded down to 8-byte alignment.
type Memory struct {
	pages map[uint64]*[pageWords]int64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageWords]int64{}}
}

// Load reads the 8-byte word containing addr; unmapped memory reads 0.
func (m *Memory) Load(addr uint64) int64 {
	pg := m.pages[addr>>pageBits]
	if pg == nil {
		return 0
	}
	return pg[(addr>>3)&(pageWords-1)]
}

// Store writes the 8-byte word containing addr.
func (m *Memory) Store(addr uint64, v int64) {
	key := addr >> pageBits
	pg := m.pages[key]
	if pg == nil {
		pg = new([pageWords]int64)
		m.pages[key] = pg
	}
	pg[(addr>>3)&(pageWords-1)] = v
}

// Pages returns the number of mapped pages (for tests).
func (m *Memory) Pages() int { return len(m.pages) }

// snapshot deep-copies the memory's mapped pages.
func (m *Memory) snapshot() map[uint64]*[pageWords]int64 {
	pages := make(map[uint64]*[pageWords]int64, len(m.pages))
	for k, pg := range m.pages {
		cp := *pg
		pages[k] = &cp
	}
	return pages
}

type position struct {
	proc, block, inst int
}

// Emulator executes one program.
type Emulator struct {
	prog  *prog.Program
	iregs [isa.IntRegs]int64
	fregs [isa.FPRegs]float64
	mem   *Memory
	pos   position
	stack []position
	seq   int64
	halt  bool

	// Decoded-dispatch state (see decode.go). While useDec is true the
	// control position lives in flat/fstack and pos/stack are stale;
	// Checkpoint, Restore and SetDecode convert between the two forms,
	// so checkpoints always use the structural (wire) representation.
	dec    *decProgram
	flat   int32
	fstack []int32
	useDec bool

	// Restart controls behaviour at program completion: when true the
	// architectural state is preserved but control returns to the entry
	// procedure, so short programs can fill any instruction budget (the
	// paper runs fixed 100M-instruction windows of much longer programs).
	Restart bool
}

// New returns an emulator over a linked program with the data segment
// loaded.
func New(p *prog.Program) (*Emulator, error) {
	if !p.Linked() {
		return nil, fmt.Errorf("program %q is not linked", p.Name)
	}
	e := &Emulator{prog: p, mem: NewMemory()}
	for i, w := range p.Data {
		e.mem.Store(p.DataBase+uint64(8*i), w)
	}
	e.pos = position{p.Entry, 0, 0}
	e.SetDecode(true)
	return e, nil
}

// SetDecode switches between the decoded-dispatch fast path (the
// default) and the reference interpreter. Architectural state and the
// dynamic stream are unaffected — the differential tests prove the two
// paths bit-identical — so this is a performance/verification toggle,
// usable mid-stream.
func (e *Emulator) SetDecode(on bool) {
	if on == e.useDec {
		return
	}
	if on {
		e.dec = decodeOf(e.prog)
		e.flat = e.dec.flatOf(e.prog, e.pos)
		e.fstack = e.fstack[:0]
		for _, pos := range e.stack {
			e.fstack = append(e.fstack, e.dec.flatOf(e.prog, pos))
		}
	} else {
		e.pos = e.dec.posOf[e.flat]
		e.stack = e.stack[:0]
		for _, f := range e.fstack {
			e.stack = append(e.stack, e.dec.posOf[f])
		}
	}
	e.useDec = on
}

// MustNew is New that panics on error.
func MustNew(p *prog.Program) *Emulator {
	e, err := New(p)
	if err != nil {
		panic(err)
	}
	return e
}

// Mem exposes the memory (for tests and initialisation).
func (e *Emulator) Mem() *Memory { return e.mem }

// IntReg returns the value of integer register i.
func (e *Emulator) IntReg(i int) int64 { return e.iregs[i] }

// SetIntReg sets integer register i (r0 stays zero).
func (e *Emulator) SetIntReg(i int, v int64) {
	if i != 0 {
		e.iregs[i] = v
	}
}

// Halted reports whether the program has finished.
func (e *Emulator) Halted() bool { return e.halt }

// Checkpoint is a full architectural snapshot of an emulator: registers,
// memory, control position, call stack and the committed-instruction
// count. Restoring it resumes execution mid-stream with the exact same
// remaining dynamic instruction sequence (Seq continuity included).
// Microarchitectural state (caches, predictor) is deliberately not part
// of a checkpoint: a restored stream reproduces a sample window's
// instructions exactly, but re-measuring its timing requires re-warming
// that state first (e.g. by restoring an earlier checkpoint and
// functionally warming forward).
type Checkpoint struct {
	prog  *prog.Program
	iregs [isa.IntRegs]int64
	fregs [isa.FPRegs]float64
	pages map[uint64]*[pageWords]int64
	pos   position
	stack []position
	seq   int64
	halt  bool
}

// Seq returns the number of instructions executed when the checkpoint was
// taken; the next instruction the restored emulator yields carries it.
func (c *Checkpoint) Seq() int64 { return c.seq }

// Checkpoint snapshots the emulator's architectural state. The snapshot
// is independent of the emulator: later execution does not mutate it.
func (e *Emulator) Checkpoint() Checkpoint {
	pos, stack := e.pos, append([]position(nil), e.stack...)
	if e.useDec {
		// Checkpoints are always structural positions (the serialized
		// wire format), independent of the dispatch mode in use.
		pos = e.dec.posOf[e.flat]
		stack = stack[:0]
		for _, f := range e.fstack {
			stack = append(stack, e.dec.posOf[f])
		}
	}
	return Checkpoint{
		prog:  e.prog,
		iregs: e.iregs,
		fregs: e.fregs,
		pages: e.mem.snapshot(),
		pos:   pos,
		stack: stack,
		seq:   e.seq,
		halt:  e.halt,
	}
}

// Restore rewinds the emulator to a checkpoint taken from the same
// program. The checkpoint stays valid and can be restored again.
func (e *Emulator) Restore(c Checkpoint) error {
	if c.prog != e.prog {
		return fmt.Errorf("emu: checkpoint is for program %q, emulator runs %q",
			c.prog.Name, e.prog.Name)
	}
	e.iregs = c.iregs
	e.fregs = c.fregs
	e.mem = &Memory{pages: c.pages}
	// The restored emulator must not write through into the checkpoint's
	// pages, and a second Restore must see them untouched.
	e.mem.pages = e.mem.snapshot()
	e.pos = c.pos
	e.stack = append(e.stack[:0:0], c.stack...)
	if e.useDec {
		e.flat = e.dec.flatOf(e.prog, c.pos)
		e.fstack = e.fstack[:0]
		for _, pos := range c.stack {
			e.fstack = append(e.fstack, e.dec.flatOf(e.prog, pos))
		}
	}
	e.seq = c.seq
	e.halt = c.halt
	return nil
}

// NewFromCheckpoint builds a fresh emulator resuming at a checkpoint of
// the given linked program.
func NewFromCheckpoint(p *prog.Program, c Checkpoint) (*Emulator, error) {
	e, err := New(p)
	if err != nil {
		return nil, err
	}
	if err := e.Restore(c); err != nil {
		return nil, err
	}
	return e, nil
}

// Seq returns the number of instructions executed so far.
func (e *Emulator) Seq() int64 { return e.seq }

func (e *Emulator) cur() *prog.Inst {
	p := e.prog.Procs[e.pos.proc]
	return &p.Blocks[e.pos.block].Insts[e.pos.inst]
}

func (e *Emulator) pcAt(pos position) int {
	return e.prog.Procs[pos.proc].Blocks[pos.block].Insts[pos.inst].PC
}

// advance moves to the next sequential instruction within the procedure.
func (e *Emulator) advance() position {
	p := e.prog.Procs[e.pos.proc]
	n := e.pos
	n.inst++
	if n.inst >= len(p.Blocks[n.block].Insts) {
		n.block++
		n.inst = 0
	}
	return n
}

func (e *Emulator) readInt(r isa.Reg) int64 {
	if !r.IsInt() {
		return 0
	}
	return e.iregs[r]
}

func (e *Emulator) writeInt(r isa.Reg, v int64) {
	if r.IsInt() && r != isa.RZero {
		e.iregs[r] = v
	}
}

func (e *Emulator) readFP(r isa.Reg) float64 {
	if !r.IsFP() {
		return 0
	}
	return e.fregs[int(r)-isa.IntRegs]
}

func (e *Emulator) writeFP(r isa.Reg, v float64) {
	if r.IsFP() {
		e.fregs[int(r)-isa.IntRegs] = v
	}
}

// Next implements trace.Stream: it executes one instruction and returns
// its dynamic record. The decoded dispatch body lives directly in Next
// (not behind a call) so the dominant path pays no extra frame for the
// record copy; the reference interpreter is one call away.
func (e *Emulator) Next() (trace.DynInst, bool) {
	if e.useDec {
		if e.halt {
			return trace.DynInst{}, false
		}
		en := &e.dec.entries[e.flat]
		d := en.d
		d.Seq = e.seq
		e.seq++
		next := e.flat + 1
		switch d.Op {
		case isa.Nop, isa.HintNop:
			// nothing
		case isa.Li:
			e.writeInt(d.Dst, en.imm)
		case isa.Mov:
			e.writeInt(d.Dst, e.readInt(d.Src1))
		case isa.Add:
			e.writeInt(d.Dst, e.readInt(d.Src1)+e.readInt(d.Src2))
		case isa.Sub:
			e.writeInt(d.Dst, e.readInt(d.Src1)-e.readInt(d.Src2))
		case isa.And:
			e.writeInt(d.Dst, e.readInt(d.Src1)&e.readInt(d.Src2))
		case isa.Or:
			e.writeInt(d.Dst, e.readInt(d.Src1)|e.readInt(d.Src2))
		case isa.Xor:
			e.writeInt(d.Dst, e.readInt(d.Src1)^e.readInt(d.Src2))
		case isa.Shl:
			e.writeInt(d.Dst, e.readInt(d.Src1)<<(uint64(e.readInt(d.Src2))&63))
		case isa.Shr:
			e.writeInt(d.Dst, int64(uint64(e.readInt(d.Src1))>>(uint64(e.readInt(d.Src2))&63)))
		case isa.Slt:
			e.writeInt(d.Dst, boolToInt(e.readInt(d.Src1) < e.readInt(d.Src2)))
		case isa.Addi:
			e.writeInt(d.Dst, e.readInt(d.Src1)+en.imm)
		case isa.Andi:
			e.writeInt(d.Dst, e.readInt(d.Src1)&en.imm)
		case isa.Xori:
			e.writeInt(d.Dst, e.readInt(d.Src1)^en.imm)
		case isa.Shli:
			e.writeInt(d.Dst, e.readInt(d.Src1)<<(uint64(en.imm)&63))
		case isa.Shri:
			e.writeInt(d.Dst, int64(uint64(e.readInt(d.Src1))>>(uint64(en.imm)&63)))
		case isa.Slti:
			e.writeInt(d.Dst, boolToInt(e.readInt(d.Src1) < en.imm))
		case isa.Mul:
			e.writeInt(d.Dst, e.readInt(d.Src1)*e.readInt(d.Src2))
		case isa.Muli:
			e.writeInt(d.Dst, e.readInt(d.Src1)*en.imm)
		case isa.Div:
			e.writeInt(d.Dst, safeDiv(e.readInt(d.Src1), e.readInt(d.Src2)))
		case isa.Rem:
			e.writeInt(d.Dst, safeRem(e.readInt(d.Src1), e.readInt(d.Src2)))
		case isa.FAdd:
			e.writeFP(d.Dst, e.readFP(d.Src1)+e.readFP(d.Src2))
		case isa.FSub:
			e.writeFP(d.Dst, e.readFP(d.Src1)-e.readFP(d.Src2))
		case isa.FMul:
			e.writeFP(d.Dst, e.readFP(d.Src1)*e.readFP(d.Src2))
		case isa.FDiv:
			v := e.readFP(d.Src2)
			if v == 0 {
				v = 1
			}
			e.writeFP(d.Dst, e.readFP(d.Src1)/v)
		case isa.FMov:
			e.writeFP(d.Dst, e.readFP(d.Src1))
		case isa.ItoF:
			e.writeFP(d.Dst, float64(e.readInt(d.Src1)))
		case isa.FtoI:
			e.writeInt(d.Dst, int64(e.readFP(d.Src1)))
		case isa.Ld:
			d.Addr = uint64(e.readInt(d.Src1)+en.imm) &^ 7
			e.writeInt(d.Dst, e.mem.Load(d.Addr))
		case isa.LdF:
			d.Addr = uint64(e.readInt(d.Src1)+en.imm) &^ 7
			e.writeFP(d.Dst, float64(e.mem.Load(d.Addr)))
		case isa.St:
			d.Addr = uint64(e.readInt(d.Src1)+en.imm) &^ 7
			e.mem.Store(d.Addr, e.readInt(d.Src2))
		case isa.StF:
			d.Addr = uint64(e.readInt(d.Src1)+en.imm) &^ 7
			e.mem.Store(d.Addr, int64(e.readFP(d.Src2)))
		case isa.Beq:
			d.Taken = e.readInt(d.Src1) == e.readInt(d.Src2)
			if d.Taken {
				next = en.tgt
			}
		case isa.Bne:
			d.Taken = e.readInt(d.Src1) != e.readInt(d.Src2)
			if d.Taken {
				next = en.tgt
			}
		case isa.Blt:
			d.Taken = e.readInt(d.Src1) < e.readInt(d.Src2)
			if d.Taken {
				next = en.tgt
			}
		case isa.Bge:
			d.Taken = e.readInt(d.Src1) >= e.readInt(d.Src2)
			if d.Taken {
				next = en.tgt
			}
		case isa.Jmp:
			d.Taken = true
			next = en.tgt
		case isa.Call, isa.CallLib:
			d.Taken = true
			e.fstack = append(e.fstack, next)
			next = en.tgt
		case isa.Ret:
			d.Taken = true
			if len(e.fstack) == 0 {
				return e.finishDec(d)
			}
			next = e.fstack[len(e.fstack)-1]
			e.fstack = e.fstack[:len(e.fstack)-1]
		case isa.Halt:
			return e.finishDec(d)
		default:
			panic("emu: unhandled opcode in decoded dispatch")
		}
		e.flat = next
		d.NextPC = int(next) * isa.InstBytes
		return d, true
	}
	return e.nextRef()
}

// nextRef is the reference interpreter: structural positions, per-
// instruction decode. Kept verbatim as the oracle the decoded path is
// differentially tested against.
func (e *Emulator) nextRef() (trace.DynInst, bool) {
	if e.halt {
		return trace.DynInst{}, false
	}
	in := e.cur()
	d := trace.DynInst{
		Seq:  e.seq,
		PC:   in.PC,
		Op:   in.Op,
		Dst:  in.Dst,
		Src1: in.Src1,
		Src2: in.Src2,
		Hint: in.Hint,
	}
	if in.Op == isa.HintNop {
		d.Hint = int(in.Imm)
	}
	e.seq++

	next := e.advance()
	switch in.Op {
	case isa.Nop, isa.HintNop:
		// nothing
	case isa.Li:
		e.writeInt(in.Dst, in.Imm)
	case isa.Mov:
		e.writeInt(in.Dst, e.readInt(in.Src1))
	case isa.Add:
		e.writeInt(in.Dst, e.readInt(in.Src1)+e.readInt(in.Src2))
	case isa.Sub:
		e.writeInt(in.Dst, e.readInt(in.Src1)-e.readInt(in.Src2))
	case isa.And:
		e.writeInt(in.Dst, e.readInt(in.Src1)&e.readInt(in.Src2))
	case isa.Or:
		e.writeInt(in.Dst, e.readInt(in.Src1)|e.readInt(in.Src2))
	case isa.Xor:
		e.writeInt(in.Dst, e.readInt(in.Src1)^e.readInt(in.Src2))
	case isa.Shl:
		e.writeInt(in.Dst, e.readInt(in.Src1)<<(uint64(e.readInt(in.Src2))&63))
	case isa.Shr:
		e.writeInt(in.Dst, int64(uint64(e.readInt(in.Src1))>>(uint64(e.readInt(in.Src2))&63)))
	case isa.Slt:
		e.writeInt(in.Dst, boolToInt(e.readInt(in.Src1) < e.readInt(in.Src2)))
	case isa.Addi:
		e.writeInt(in.Dst, e.readInt(in.Src1)+in.Imm)
	case isa.Andi:
		e.writeInt(in.Dst, e.readInt(in.Src1)&in.Imm)
	case isa.Xori:
		e.writeInt(in.Dst, e.readInt(in.Src1)^in.Imm)
	case isa.Shli:
		e.writeInt(in.Dst, e.readInt(in.Src1)<<(uint64(in.Imm)&63))
	case isa.Shri:
		e.writeInt(in.Dst, int64(uint64(e.readInt(in.Src1))>>(uint64(in.Imm)&63)))
	case isa.Slti:
		e.writeInt(in.Dst, boolToInt(e.readInt(in.Src1) < in.Imm))
	case isa.Mul:
		e.writeInt(in.Dst, e.readInt(in.Src1)*e.readInt(in.Src2))
	case isa.Muli:
		e.writeInt(in.Dst, e.readInt(in.Src1)*in.Imm)
	case isa.Div:
		e.writeInt(in.Dst, safeDiv(e.readInt(in.Src1), e.readInt(in.Src2)))
	case isa.Rem:
		e.writeInt(in.Dst, safeRem(e.readInt(in.Src1), e.readInt(in.Src2)))
	case isa.FAdd:
		e.writeFP(in.Dst, e.readFP(in.Src1)+e.readFP(in.Src2))
	case isa.FSub:
		e.writeFP(in.Dst, e.readFP(in.Src1)-e.readFP(in.Src2))
	case isa.FMul:
		e.writeFP(in.Dst, e.readFP(in.Src1)*e.readFP(in.Src2))
	case isa.FDiv:
		v := e.readFP(in.Src2)
		if v == 0 {
			v = 1
		}
		e.writeFP(in.Dst, e.readFP(in.Src1)/v)
	case isa.FMov:
		e.writeFP(in.Dst, e.readFP(in.Src1))
	case isa.ItoF:
		e.writeFP(in.Dst, float64(e.readInt(in.Src1)))
	case isa.FtoI:
		e.writeInt(in.Dst, int64(e.readFP(in.Src1)))
	case isa.Ld:
		d.Addr = uint64(e.readInt(in.Src1)+in.Imm) &^ 7
		e.writeInt(in.Dst, e.mem.Load(d.Addr))
	case isa.LdF:
		d.Addr = uint64(e.readInt(in.Src1)+in.Imm) &^ 7
		e.writeFP(in.Dst, float64(e.mem.Load(d.Addr)))
	case isa.St:
		d.Addr = uint64(e.readInt(in.Src1)+in.Imm) &^ 7
		e.mem.Store(d.Addr, e.readInt(in.Src2))
	case isa.StF:
		d.Addr = uint64(e.readInt(in.Src1)+in.Imm) &^ 7
		e.mem.Store(d.Addr, int64(e.readFP(in.Src2)))
	case isa.Beq:
		d.Taken = e.readInt(in.Src1) == e.readInt(in.Src2)
		if d.Taken {
			next = position{e.pos.proc, in.Target, 0}
		}
	case isa.Bne:
		d.Taken = e.readInt(in.Src1) != e.readInt(in.Src2)
		if d.Taken {
			next = position{e.pos.proc, in.Target, 0}
		}
	case isa.Blt:
		d.Taken = e.readInt(in.Src1) < e.readInt(in.Src2)
		if d.Taken {
			next = position{e.pos.proc, in.Target, 0}
		}
	case isa.Bge:
		d.Taken = e.readInt(in.Src1) >= e.readInt(in.Src2)
		if d.Taken {
			next = position{e.pos.proc, in.Target, 0}
		}
	case isa.Jmp:
		d.Taken = true
		next = position{e.pos.proc, in.Target, 0}
	case isa.Call, isa.CallLib:
		d.Taken = true
		e.stack = append(e.stack, next)
		next = position{in.Target, 0, 0}
	case isa.Ret:
		d.Taken = true
		if len(e.stack) == 0 {
			return e.finish(d)
		}
		next = e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
	case isa.Halt:
		return e.finish(d)
	default:
		panic(fmt.Sprintf("emu: unhandled opcode %v", in.Op))
	}

	e.pos = next
	d.NextPC = e.pcAt(next)
	return d, true
}

// finish handles program completion: either halt or restart at the entry.
func (e *Emulator) finish(d trace.DynInst) (trace.DynInst, bool) {
	if e.Restart {
		e.pos = position{e.prog.Entry, 0, 0}
		e.stack = e.stack[:0]
		d.Taken = true
		d.NextPC = e.pcAt(e.pos)
		return d, true
	}
	e.halt = true
	d.NextPC = d.PC + isa.InstBytes
	return d, true
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == -1<<63 && b == -1 {
		return a
	}
	return a / b
}

func safeRem(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

// Run executes up to budget instructions and returns the trace; a
// convenience for tests.
func Run(p *prog.Program, budget int64) ([]trace.DynInst, error) {
	e, err := New(p)
	if err != nil {
		return nil, err
	}
	var out []trace.DynInst
	for int64(len(out)) < budget {
		d, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out, nil
}
