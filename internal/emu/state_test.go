package emu

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// run builds the gzip workload and executes steps instructions.
func run(t *testing.T, steps int) *Emulator {
	t.Helper()
	b, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("no gzip workload")
	}
	e, err := New(b.Build(7))
	if err != nil {
		t.Fatal(err)
	}
	e.Restart = true
	for i := 0; i < steps; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatalf("halted after %d instructions", i)
		}
	}
	return e
}

func TestCheckpointMarshalRoundTrip(t *testing.T) {
	e := run(t, 5000)
	ck := e.Checkpoint()
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(data, e.prog)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&ck) {
		t.Fatal("deserialized checkpoint differs from original")
	}
	// Identical state must serialize to identical bytes (sorted pages,
	// fixed layout) — what content addressing relies on.
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("re-serialization is not byte-identical")
	}
}

// TestCheckpointResumeEquivalence: an emulator resumed from a
// deserialized checkpoint must emit exactly the dynamic instruction
// stream the original emits from the same point.
func TestCheckpointResumeEquivalence(t *testing.T) {
	e := run(t, 5000)
	orig := e.Checkpoint()
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := UnmarshalCheckpoint(data, e.prog)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewFromCheckpoint(e.prog, ck)
	if err != nil {
		t.Fatal(err)
	}
	r.Restart = true
	for i := 0; i < 5000; i++ {
		da, oka := e.Next()
		db, okb := r.Next()
		if oka != okb || da != db {
			t.Fatalf("instruction %d: original (%+v,%v) vs resumed (%+v,%v)", i, da, oka, db, okb)
		}
	}
	a, b := e.Checkpoint(), r.Checkpoint()
	if !a.Equal(&b) {
		t.Fatal("states diverged after identical resumed execution")
	}
}

func TestUnmarshalCheckpointErrors(t *testing.T) {
	e := run(t, 1000)
	orig := e.Checkpoint()
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCheckpoint(nil, e.prog); err == nil {
		t.Error("empty checkpoint accepted")
	}
	if _, err := UnmarshalCheckpoint(data[:len(data)-9], e.prog); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff // corrupt the magic
	if _, err := UnmarshalCheckpoint(bad, e.prog); err == nil {
		t.Error("wrong-magic checkpoint accepted")
	}
	if _, err := UnmarshalCheckpoint(append(append([]byte(nil), data...), 0), e.prog); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A structurally different program must be rejected by position
	// validation, not executed.
	other, _ := workload.ByName("mcf")
	if _, err := UnmarshalCheckpoint(data, other.Build(7)); err == nil {
		t.Error("checkpoint attached to a different program")
	}
}
