package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if m.Load(0x12345678) != 0 {
		t.Error("unmapped memory must read 0")
	}
	m.Store(0x1000, 42)
	m.Store(0x1008, -7)
	if m.Load(0x1000) != 42 || m.Load(0x1008) != -7 {
		t.Error("store/load round trip failed")
	}
	// Unaligned access rounds down to the containing word.
	if m.Load(0x1003) != 42 {
		t.Error("unaligned load must read containing word")
	}
	if m.Pages() != 1 {
		t.Errorf("pages = %d, want 1", m.Pages())
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v int64) bool {
		addr &= 0xFFFF_FFFF
		m.Store(addr, v)
		return m.Load(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildSumLoop(t *testing.T, n int64) *prog.Program {
	t.Helper()
	// sum = 0; for i = n; i != 0; i-- { sum += i }; store sum
	b := prog.NewBuilder("sum")
	b.Proc("main").Entry().
		Li(isa.R(1), n).       // i
		Li(isa.R(2), 0).       // sum
		Li(isa.R(3), 0x10000). // data base
		Label("loop").
		Add(isa.R(2), isa.R(2), isa.R(1)).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		St(isa.R(2), isa.R(3), 0).
		Halt()
	return b.MustBuild()
}

func TestSumLoopExecution(t *testing.T) {
	p := buildSumLoop(t, 10)
	e := MustNew(p)
	var last trace.DynInst
	steps := 0
	for {
		d, ok := e.Next()
		if !ok {
			break
		}
		last = d
		steps++
		if steps > 1000 {
			t.Fatal("runaway loop")
		}
	}
	if got := e.Mem().Load(0x10000); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if last.Op != isa.Halt {
		t.Errorf("last op = %v, want halt", last.Op)
	}
	// 3 setup + 10*3 loop + 1 store + 1 halt = 35
	if steps != 35 {
		t.Errorf("steps = %d, want 35", steps)
	}
}

func TestBranchOutcomesInTrace(t *testing.T) {
	p := buildSumLoop(t, 3)
	tr, err := Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var branches []trace.DynInst
	for _, d := range tr {
		if d.Op == isa.Bne {
			branches = append(branches, d)
		}
	}
	if len(branches) != 3 {
		t.Fatalf("branch count = %d, want 3", len(branches))
	}
	if !branches[0].Taken || !branches[1].Taken || branches[2].Taken {
		t.Errorf("branch outcomes = %v,%v,%v want taken,taken,not",
			branches[0].Taken, branches[1].Taken, branches[2].Taken)
	}
	// Taken branch's NextPC must equal the loop header PC.
	loopPC := p.Procs[0].Blocks[1].Insts[0].PC
	if branches[0].NextPC != loopPC {
		t.Errorf("taken NextPC = %d, want %d", branches[0].NextPC, loopPC)
	}
	if branches[0].Redirects() != true {
		t.Error("taken backward branch must redirect")
	}
}

func TestCallReturnStack(t *testing.T) {
	b := prog.NewBuilder("calls")
	b.Proc("main").Entry().
		Li(isa.R(1), 5).
		Call("double").
		Call("double").
		St(isa.R(1), isa.R(2), 0). // r2=0 -> addr 0
		Halt()
	b.Proc("double").
		Add(isa.R(1), isa.R(1), isa.R(1)).
		Ret()
	p := b.MustBuild()
	e := MustNew(p)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if got := e.IntReg(1); got != 20 {
		t.Errorf("r1 = %d, want 20", got)
	}
	if got := e.Mem().Load(0); got != 20 {
		t.Errorf("mem[0] = %d, want 20", got)
	}
}

func TestDataSegmentLoaded(t *testing.T) {
	b := prog.NewBuilder("data")
	addr := b.AppendData(111, 222)
	b.Proc("main").Entry().
		Li(isa.R(1), int64(addr)).
		Ld(isa.R(2), isa.R(1), 8).
		Halt()
	p := b.MustBuild()
	e := MustNew(p)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if got := e.IntReg(2); got != 222 {
		t.Errorf("r2 = %d, want 222", got)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := prog.NewBuilder("zero")
	b.Proc("main").Entry().
		Li(isa.RZero, 99).
		Addi(isa.R(1), isa.RZero, 7).
		Halt()
	p := b.MustBuild()
	e := MustNew(p)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if e.IntReg(0) != 0 {
		t.Error("r0 was modified")
	}
	if e.IntReg(1) != 7 {
		t.Errorf("r1 = %d, want 7", e.IntReg(1))
	}
}

func TestDivByZeroAndOverflow(t *testing.T) {
	b := prog.NewBuilder("div")
	b.Proc("main").Entry().
		Li(isa.R(1), 10).
		Li(isa.R(2), 0).
		Div(isa.R(3), isa.R(1), isa.R(2)).
		Rem(isa.R(4), isa.R(1), isa.R(2)).
		Li(isa.R(5), -9223372036854775808).
		Li(isa.R(6), -1).
		Div(isa.R(7), isa.R(5), isa.R(6)).
		Rem(isa.R(8), isa.R(5), isa.R(6)).
		Halt()
	p := b.MustBuild()
	e := MustNew(p)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if e.IntReg(3) != 0 || e.IntReg(4) != 0 {
		t.Errorf("div/rem by zero = %d,%d want 0,0", e.IntReg(3), e.IntReg(4))
	}
	if e.IntReg(7) != -9223372036854775808 || e.IntReg(8) != 0 {
		t.Errorf("overflow div/rem = %d,%d", e.IntReg(7), e.IntReg(8))
	}
}

func TestRestartMode(t *testing.T) {
	p := buildSumLoop(t, 2)
	e := MustNew(p)
	e.Restart = true
	count := 0
	for count < 100 {
		_, ok := e.Next()
		if !ok {
			t.Fatal("restarting emulator must not halt")
		}
		count++
	}
	if e.Halted() {
		t.Error("restarting emulator reports halted")
	}
}

func TestHintsAppearInTrace(t *testing.T) {
	b := prog.NewBuilder("hints")
	b.Proc("main").Entry().
		Hint(12).
		Li(isa.R(1), 1).
		Halt()
	p := b.MustBuild()
	tr, err := Run(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr[0].Op != isa.HintNop || tr[0].Hint != 12 {
		t.Errorf("hint record = %+v", tr[0])
	}
	if !tr[0].IsHintCarrier() {
		t.Error("hint record must be a hint carrier")
	}
}

func TestDeterminism(t *testing.T) {
	p := buildSumLoop(t, 50)
	t1, _ := Run(p, 500)
	t2, _ := Run(p, 500)
	if len(t1) != len(t2) {
		t.Fatalf("lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	b := prog.NewBuilder("fp")
	b.Proc("main").Entry().
		Li(isa.R(1), 6).
		ItoF(isa.FP(0), isa.R(1)).
		FMul(isa.FP(1), isa.FP(0), isa.FP(0)).
		FtoI(isa.R(2), isa.FP(1)).
		Halt()
	p := b.MustBuild()
	e := MustNew(p)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if e.IntReg(2) != 36 {
		t.Errorf("fp square = %d, want 36", e.IntReg(2))
	}
}

func TestStreamLimit(t *testing.T) {
	p := buildSumLoop(t, 100)
	e := MustNew(p)
	lim := &trace.Limit{S: e, N: 7}
	n := 0
	for {
		_, ok := lim.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("limit yielded %d, want 7", n)
	}
}
