package emu

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

// This file is the emulator's decoded-trace cache: a flat dispatch table
// over the linked program, indexed by PC/isa.InstBytes (Link assigns PCs
// sequentially across procedures, so the flat index is total program
// order). Each entry carries a prebuilt trace.DynInst template plus the
// predecoded immediate and control target, so the hot Next() loop does
// one table index, one struct copy and one switch — no per-instruction
// block walking, field-by-field record assembly or PC lookups. The table
// is a pure function of the linked program and is shared by every
// emulator over it via the program's decoded-stash slot; Link invalidates
// it on any structural change.
//
// The decoded path duplicates the reference interpreter's semantics
// deliberately: TestDecodeDifferential, FuzzDecodeDifferential and the
// opcode table tests hold the two executions to identical DynInst
// sequences and architectural state.

// decEntry is one predecoded instruction.
type decEntry struct {
	// d is the DynInst template: PC, Op, Dst, Src1, Src2 and Hint are
	// final (HintNop's payload already promoted); Seq, Taken, NextPC and
	// Addr are filled per dynamic instance.
	d   trace.DynInst
	imm int64
	// tgt is the flat index of the control target: the first instruction
	// of the target block for branches and jumps, the entry instruction
	// of the callee for calls; -1 otherwise.
	tgt int32
}

// decProgram is the decoded form of one linked program.
type decProgram struct {
	entries []decEntry
	posOf   []position // flat index -> (proc, block, inst), for checkpoints
	entry   int32      // flat index of the entry procedure's first instruction
}

// flatOf converts a structural position to its flat index.
func (dp *decProgram) flatOf(p *prog.Program, pos position) int32 {
	return int32(p.Procs[pos.proc].Blocks[pos.block].Insts[pos.inst].PC / isa.InstBytes)
}

// decode builds the dispatch table for a linked program.
func decode(p *prog.Program) *decProgram {
	n := p.NumInsts()
	dp := &decProgram{entries: make([]decEntry, n), posOf: make([]position, n)}
	for pi, pr := range p.Procs {
		for bi, b := range pr.Blocks {
			for ii := range b.Insts {
				in := &b.Insts[ii]
				f := in.PC / isa.InstBytes
				en := &dp.entries[f]
				en.d = trace.DynInst{
					PC:   in.PC,
					Op:   in.Op,
					Dst:  in.Dst,
					Src1: in.Src1,
					Src2: in.Src2,
					Hint: in.Hint,
				}
				if in.Op == isa.HintNop {
					en.d.Hint = int(in.Imm)
				}
				en.imm = in.Imm
				en.tgt = -1
				switch {
				case in.Op.IsBranch() || in.Op == isa.Jmp:
					en.tgt = int32(pr.Blocks[in.Target].Insts[0].PC / isa.InstBytes)
				case in.Op.IsCall():
					en.tgt = int32(p.Procs[in.Target].Blocks[0].Insts[0].PC / isa.InstBytes)
				}
				dp.posOf[f] = position{pi, bi, ii}
			}
		}
	}
	dp.entry = int32(p.Procs[p.Entry].Blocks[0].Insts[0].PC / isa.InstBytes)
	return dp
}

// decodeOf returns the program's shared decode table, building and
// stashing it on first use. Two emulators racing here both build a valid
// table and one wins the stash — either result is correct.
func decodeOf(p *prog.Program) *decProgram {
	if dp, ok := p.Decoded().(*decProgram); ok {
		return dp
	}
	dp := decode(p)
	p.SetDecoded(dp)
	return dp
}

// finishDec mirrors finish for the decoded path.
func (e *Emulator) finishDec(d trace.DynInst) (trace.DynInst, bool) {
	if e.Restart {
		e.flat = e.dec.entry
		e.fstack = e.fstack[:0]
		d.Taken = true
		d.NextPC = int(e.dec.entry) * isa.InstBytes
		return d, true
	}
	e.halt = true
	d.NextPC = d.PC + isa.InstBytes
	return d, true
}
