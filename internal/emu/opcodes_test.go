package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestOpcodeSemantics is a table test over every computational opcode:
// each case builds a two-instruction program (setup + op) and checks the
// architectural result. Together with the control-flow and memory tests
// in emu_test.go this covers the full ISA.
func TestOpcodeSemantics(t *testing.T) {
	type c struct {
		name  string
		build func(b *prog.Builder)
		reg   int   // register to inspect
		want  int64 // expected value
	}
	cases := []c{
		{"li", func(b *prog.Builder) { b.Li(isa.R(5), -42) }, 5, -42},
		{"mov", func(b *prog.Builder) { b.Li(isa.R(1), 7).Mov(isa.R(5), isa.R(1)) }, 5, 7},
		{"add", func(b *prog.Builder) { b.Li(isa.R(1), 3).Li(isa.R(2), 4).Add(isa.R(5), isa.R(1), isa.R(2)) }, 5, 7},
		{"sub", func(b *prog.Builder) { b.Li(isa.R(1), 3).Li(isa.R(2), 4).Sub(isa.R(5), isa.R(1), isa.R(2)) }, 5, -1},
		{"and", func(b *prog.Builder) { b.Li(isa.R(1), 0b1100).Li(isa.R(2), 0b1010).And(isa.R(5), isa.R(1), isa.R(2)) }, 5, 0b1000},
		{"or", func(b *prog.Builder) { b.Li(isa.R(1), 0b1100).Li(isa.R(2), 0b1010).Or(isa.R(5), isa.R(1), isa.R(2)) }, 5, 0b1110},
		{"xor", func(b *prog.Builder) { b.Li(isa.R(1), 0b1100).Li(isa.R(2), 0b1010).Xor(isa.R(5), isa.R(1), isa.R(2)) }, 5, 0b0110},
		{"shl", func(b *prog.Builder) { b.Li(isa.R(1), 3).Li(isa.R(2), 4).Shl(isa.R(5), isa.R(1), isa.R(2)) }, 5, 48},
		{"shr", func(b *prog.Builder) { b.Li(isa.R(1), 48).Li(isa.R(2), 4).Shr(isa.R(5), isa.R(1), isa.R(2)) }, 5, 3},
		{"shr-logical", func(b *prog.Builder) { b.Li(isa.R(1), -8).Li(isa.R(2), 62).Shr(isa.R(5), isa.R(1), isa.R(2)) }, 5, 3},
		{"slt-true", func(b *prog.Builder) { b.Li(isa.R(1), -5).Li(isa.R(2), 4).Slt(isa.R(5), isa.R(1), isa.R(2)) }, 5, 1},
		{"slt-false", func(b *prog.Builder) { b.Li(isa.R(1), 9).Li(isa.R(2), 4).Slt(isa.R(5), isa.R(1), isa.R(2)) }, 5, 0},
		{"addi", func(b *prog.Builder) { b.Li(isa.R(1), 3).Addi(isa.R(5), isa.R(1), -10) }, 5, -7},
		{"andi", func(b *prog.Builder) { b.Li(isa.R(1), 0xff).Andi(isa.R(5), isa.R(1), 0x0f) }, 5, 0x0f},
		{"xori", func(b *prog.Builder) { b.Li(isa.R(1), 0xff).Xori(isa.R(5), isa.R(1), 0x0f) }, 5, 0xf0},
		{"shli", func(b *prog.Builder) { b.Li(isa.R(1), 5).Shli(isa.R(5), isa.R(1), 2) }, 5, 20},
		{"shri", func(b *prog.Builder) { b.Li(isa.R(1), 20).Shri(isa.R(5), isa.R(1), 2) }, 5, 5},
		{"slti", func(b *prog.Builder) { b.Li(isa.R(1), 3).Slti(isa.R(5), isa.R(1), 4) }, 5, 1},
		{"mul", func(b *prog.Builder) { b.Li(isa.R(1), -3).Li(isa.R(2), 4).Mul(isa.R(5), isa.R(1), isa.R(2)) }, 5, -12},
		{"muli", func(b *prog.Builder) { b.Li(isa.R(1), 6).Muli(isa.R(5), isa.R(1), 7) }, 5, 42},
		{"div", func(b *prog.Builder) { b.Li(isa.R(1), -12).Li(isa.R(2), 4).Div(isa.R(5), isa.R(1), isa.R(2)) }, 5, -3},
		{"rem", func(b *prog.Builder) { b.Li(isa.R(1), 14).Li(isa.R(2), 4).Rem(isa.R(5), isa.R(1), isa.R(2)) }, 5, 2},
		{"fadd", func(b *prog.Builder) {
			b.Li(isa.R(1), 3).ItoF(isa.FP(0), isa.R(1)).
				Li(isa.R(2), 4).ItoF(isa.FP(1), isa.R(2)).
				FAdd(isa.FP(2), isa.FP(0), isa.FP(1)).FtoI(isa.R(5), isa.FP(2))
		}, 5, 7},
		{"fsub", func(b *prog.Builder) {
			b.Li(isa.R(1), 9).ItoF(isa.FP(0), isa.R(1)).
				Li(isa.R(2), 4).ItoF(isa.FP(1), isa.R(2)).
				FSub(isa.FP(2), isa.FP(0), isa.FP(1)).FtoI(isa.R(5), isa.FP(2))
		}, 5, 5},
		{"fmul", func(b *prog.Builder) {
			b.Li(isa.R(1), 6).ItoF(isa.FP(0), isa.R(1)).
				FMul(isa.FP(1), isa.FP(0), isa.FP(0)).FtoI(isa.R(5), isa.FP(1))
		}, 5, 36},
		{"fdiv", func(b *prog.Builder) {
			b.Li(isa.R(1), 12).ItoF(isa.FP(0), isa.R(1)).
				Li(isa.R(2), 4).ItoF(isa.FP(1), isa.R(2)).
				FDiv(isa.FP(2), isa.FP(0), isa.FP(1)).FtoI(isa.R(5), isa.FP(2))
		}, 5, 3},
		{"fdiv-by-zero-guard", func(b *prog.Builder) {
			b.Li(isa.R(1), 12).ItoF(isa.FP(0), isa.R(1)).
				FDiv(isa.FP(2), isa.FP(0), isa.FP(3)). // fp3 = 0 -> divisor forced to 1
				FtoI(isa.R(5), isa.FP(2))
		}, 5, 12},
		{"ld-st", func(b *prog.Builder) {
			b.Li(isa.R(1), 0x4000).Li(isa.R(2), 77).
				St(isa.R(2), isa.R(1), 16).
				Ld(isa.R(5), isa.R(1), 16)
		}, 5, 77},
		{"ldf-stf", func(b *prog.Builder) {
			b.Li(isa.R(1), 0x4000).Li(isa.R(2), 9).ItoF(isa.FP(0), isa.R(2)).
				StF(isa.FP(0), isa.R(1), 8).
				LdF(isa.FP(1), isa.R(1), 8).
				FtoI(isa.R(5), isa.FP(1))
		}, 5, 9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := prog.NewBuilder(tc.name)
			pb := b.Proc("main").Entry()
			tc.build(b)
			pb.Halt()
			e := MustNew(b.MustBuild())
			for {
				if _, ok := e.Next(); !ok {
					break
				}
			}
			if got := e.IntReg(tc.reg); got != tc.want {
				t.Errorf("r%d = %d, want %d", tc.reg, got, tc.want)
			}
		})
	}
}

// runBothPaths executes the program under the decoded dispatch table and
// the reference interpreter and returns the final value of reg, failing
// if the two paths disagree on the value or the committed count. The
// edge-case tables below run through this so every specialised decoded
// arm is checked against the reference, not just the default path.
func runBothPaths(t *testing.T, p *prog.Program, reg int) int64 {
	t.Helper()
	run := func(decoded bool) (int64, int64) {
		e := MustNew(p)
		e.SetDecode(decoded)
		n := int64(0)
		for {
			if _, ok := e.Next(); !ok {
				break
			}
			n++
		}
		return e.IntReg(reg), n
	}
	dv, dn := run(true)
	rv, rn := run(false)
	if dv != rv || dn != rn {
		t.Errorf("decoded path (r%d=%d after %d) != reference (r%d=%d after %d)",
			reg, dv, dn, reg, rv, rn)
	}
	return dv
}

// TestOpcodeEdgeSemantics covers the operand classes the decoded path
// specialises: the div/rem safe paths (zero divisors, the MinInt64/-1
// overflow), shift-count masking, integer wraparound, and the FP
// round-trips — each case on both dispatch paths.
func TestOpcodeEdgeSemantics(t *testing.T) {
	const minInt = -9223372036854775808
	type c struct {
		name  string
		build func(b *prog.Builder)
		reg   int
		want  int64
	}
	cases := []c{
		// Safe division: zero divisors produce 0, the two's-complement
		// overflow quotient saturates to MinInt64 and its remainder is 0.
		{"div-by-zero", func(b *prog.Builder) {
			b.Li(isa.R(1), 7).Div(isa.R(5), isa.R(1), isa.R(2))
		}, 5, 0},
		{"rem-by-zero", func(b *prog.Builder) {
			b.Li(isa.R(1), 7).Rem(isa.R(5), isa.R(1), isa.R(2))
		}, 5, 0},
		{"div-overflow", func(b *prog.Builder) {
			b.Li(isa.R(1), minInt).Li(isa.R(2), -1).Div(isa.R(5), isa.R(1), isa.R(2))
		}, 5, minInt},
		{"rem-overflow", func(b *prog.Builder) {
			b.Li(isa.R(1), minInt).Li(isa.R(2), -1).Rem(isa.R(5), isa.R(1), isa.R(2))
		}, 5, 0},
		// Shift counts are masked to 6 bits, register and immediate forms
		// alike; negative counts mask to 63.
		{"shl-count-64", func(b *prog.Builder) {
			b.Li(isa.R(1), 5).Li(isa.R(2), 64).Shl(isa.R(5), isa.R(1), isa.R(2))
		}, 5, 5},
		{"shl-count-neg", func(b *prog.Builder) {
			b.Li(isa.R(1), 5).Li(isa.R(2), -1).Shl(isa.R(5), isa.R(1), isa.R(2))
		}, 5, minInt},
		{"shr-count-neg", func(b *prog.Builder) {
			b.Li(isa.R(1), -8).Li(isa.R(2), -1).Shr(isa.R(5), isa.R(1), isa.R(2))
		}, 5, 1},
		{"shli-imm-mask", func(b *prog.Builder) {
			b.Li(isa.R(1), 3).Shli(isa.R(5), isa.R(1), 65)
		}, 5, 6},
		{"shri-imm-mask", func(b *prog.Builder) {
			b.Li(isa.R(1), 8).Shri(isa.R(5), isa.R(1), 66)
		}, 5, 2},
		// Two's-complement wraparound, no traps.
		{"add-wrap", func(b *prog.Builder) {
			b.Li(isa.R(1), 9223372036854775807).Addi(isa.R(5), isa.R(1), 1)
		}, 5, minInt},
		{"mul-wrap", func(b *prog.Builder) {
			b.Li(isa.R(1), 9223372036854775807).Li(isa.R(2), 2).Mul(isa.R(5), isa.R(1), isa.R(2))
		}, 5, -2},
		// FP conversions: negatives round-trip; the fdiv zero-divisor
		// guard substitutes 1 so the quotient is the dividend.
		{"itof-ftoi-neg", func(b *prog.Builder) {
			b.Li(isa.R(1), -7).ItoF(isa.FP(0), isa.R(1)).FtoI(isa.R(5), isa.FP(0))
		}, 5, -7},
		{"fdiv-zero-neg", func(b *prog.Builder) {
			b.Li(isa.R(1), -12).ItoF(isa.FP(0), isa.R(1)).
				FDiv(isa.FP(2), isa.FP(0), isa.FP(3)).FtoI(isa.R(5), isa.FP(2))
		}, 5, -12},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := prog.NewBuilder(tc.name)
			b.Proc("main").Entry()
			tc.build(b)
			b.Halt()
			if got := runBothPaths(t, b.MustBuild(), tc.reg); got != tc.want {
				t.Errorf("r%d = %d, want %d", tc.reg, got, tc.want)
			}
		})
	}
}

// TestBranchBlockBoundaries exercises branches whose targets sit exactly
// at block seams — the positions the decoded table flattens: a taken
// branch whose target is the very next block (taken and fallthrough
// coincide), a backward branch to a loop header, and a skip over a
// middle block into the program's final block.
func TestBranchBlockBoundaries(t *testing.T) {
	t.Run("taken-to-next-block", func(t *testing.T) {
		b := prog.NewBuilder("seam")
		b.Proc("main").Entry().
			Li(isa.R(1), 1).
			Beq(isa.R(1), isa.R(1), "next"). // last inst of block; target is next block
			Label("next").
			Li(isa.R(5), 11).
			Halt()
		if got := runBothPaths(t, b.MustBuild(), 5); got != 11 {
			t.Errorf("r5 = %d, want 11", got)
		}
	})
	t.Run("backward-to-header", func(t *testing.T) {
		b := prog.NewBuilder("loop")
		b.Proc("main").Entry().
			Li(isa.R(1), 3). // counter
			Li(isa.R(5), 0). // accumulator
			Label("head").
			Add(isa.R(5), isa.R(5), isa.R(1)).
			Addi(isa.R(1), isa.R(1), -1).
			Bne(isa.R(1), isa.R(0), "head").
			Halt()
		if got := runBothPaths(t, b.MustBuild(), 5); got != 6 {
			t.Errorf("r5 = %d, want 3+2+1", got)
		}
	})
	t.Run("skip-into-final-block", func(t *testing.T) {
		b := prog.NewBuilder("skip")
		b.Proc("main").Entry().
			Li(isa.R(1), 1).
			Bne(isa.R(1), isa.R(0), "end").
			Label("mid").
			Li(isa.R(5), 100).
			Label("end").
			Li(isa.R(6), 1).
			Halt()
		if got := runBothPaths(t, b.MustBuild(), 5); got != 0 {
			t.Errorf("r5 = %d, want 0 (middle block skipped)", got)
		}
	})
}

// TestBranchVariants checks every conditional branch opcode both ways.
func TestBranchVariants(t *testing.T) {
	type c struct {
		name  string
		a, b  int64
		brand func(pb *prog.Builder, x, y isa.Reg, label string) *prog.Builder
		taken bool
	}
	cases := []c{
		{"beq-eq", 5, 5, (*prog.Builder).Beq, true},
		{"beq-ne", 5, 6, (*prog.Builder).Beq, false},
		{"bne-ne", 5, 6, (*prog.Builder).Bne, true},
		{"bne-eq", 5, 5, (*prog.Builder).Bne, false},
		{"blt-lt", -1, 0, (*prog.Builder).Blt, true},
		{"blt-ge", 0, 0, (*prog.Builder).Blt, false},
		{"bge-ge", 0, 0, (*prog.Builder).Bge, true},
		{"bge-lt", -1, 0, (*prog.Builder).Bge, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := prog.NewBuilder(tc.name)
			pb := b.Proc("main").Entry().
				Li(isa.R(1), tc.a).
				Li(isa.R(2), tc.b)
			tc.brand(pb, isa.R(1), isa.R(2), "hit")
			pb.Li(isa.R(5), 100). // fallthrough path
						Halt().
						Label("hit").
						Li(isa.R(5), 200).
						Halt()
			e := MustNew(b.MustBuild())
			for {
				if _, ok := e.Next(); !ok {
					break
				}
			}
			want := int64(100)
			if tc.taken {
				want = 200
			}
			if got := e.IntReg(5); got != want {
				t.Errorf("r5 = %d, want %d", got, want)
			}
		})
	}
}
