// Checkpoint serialization for the checkpoint store (internal/ckpt).
// A Checkpoint holds a pointer into its program, so the wire form
// carries only the architectural state; deserialization re-attaches a
// program the caller rebuilt (deterministically, from the same
// benchmark seed) and validates every control position against it. The
// layout is fixed little-endian with sorted page keys, so identical
// states serialize to identical bytes — the property the store's
// content addressing and the bit-identity tests rely on.
package emu

import (
	"fmt"
	"sort"

	"repro/internal/binio"
	"repro/internal/prog"
)

// ckptMagic guards the checkpoint wire layout; bump it on any change.
const ckptMagic uint32 = 0x534b_4331 // "SKC1"

func appendPosition(w *binio.Writer, p position) {
	w.I64(int64(p.proc))
	w.I64(int64(p.block))
	w.I64(int64(p.inst))
}

func readPosition(r *binio.Reader) position {
	return position{proc: int(r.I64()), block: int(r.I64()), inst: int(r.I64())}
}

// validPosition reports whether pos addresses an instruction of p.
func validPosition(p *prog.Program, pos position) bool {
	if pos.proc < 0 || pos.proc >= len(p.Procs) {
		return false
	}
	pr := p.Procs[pos.proc]
	if pos.block < 0 || pos.block >= len(pr.Blocks) {
		return false
	}
	return pos.inst >= 0 && pos.inst < len(pr.Blocks[pos.block].Insts)
}

// MarshalBinary serializes the checkpoint's architectural state. The
// program is not included; UnmarshalCheckpoint re-attaches it.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	var w binio.Writer
	w.U32(ckptMagic)
	for _, v := range c.iregs {
		w.I64(v)
	}
	for _, v := range c.fregs {
		w.F64(v)
	}
	appendPosition(&w, c.pos)
	w.U32(uint32(len(c.stack)))
	for _, pos := range c.stack {
		appendPosition(&w, pos)
	}
	w.I64(c.seq)
	w.Bool(c.halt)
	keys := make([]uint64, 0, len(c.pages))
	for k := range c.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(k)
		pg := c.pages[k]
		for _, word := range pg {
			w.I64(word)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalCheckpoint deserializes a checkpoint and attaches it to the
// given linked program, validating every control position against it.
// The caller must rebuild the exact program the checkpoint was taken
// from (same benchmark, same seed, same instrumentation); a structurally
// incompatible program is rejected, but a same-shaped different program
// would execute garbage — the store's content key is what rules that
// out.
func UnmarshalCheckpoint(data []byte, p *prog.Program) (Checkpoint, error) {
	var c Checkpoint
	if !p.Linked() {
		return c, fmt.Errorf("emu: cannot attach checkpoint to unlinked program %q", p.Name)
	}
	r := binio.NewReader(data)
	if m := r.U32(); m != ckptMagic {
		return c, fmt.Errorf("emu: bad checkpoint magic %#x", m)
	}
	for i := range c.iregs {
		c.iregs[i] = r.I64()
	}
	for i := range c.fregs {
		c.fregs[i] = r.F64()
	}
	c.pos = readPosition(r)
	nstack := int(r.U32())
	if err := r.Err(); err != nil {
		return Checkpoint{}, err
	}
	if nstack > 1<<20 {
		return Checkpoint{}, fmt.Errorf("emu: implausible checkpoint stack depth %d", nstack)
	}
	c.stack = make([]position, nstack)
	for i := range c.stack {
		c.stack[i] = readPosition(r)
	}
	c.seq = r.I64()
	c.halt = r.Bool()
	npages := int(r.U32())
	if err := r.Err(); err != nil {
		return Checkpoint{}, err
	}
	if r.Remaining() < npages*(8+8*pageWords) {
		return Checkpoint{}, binio.ErrCorrupt
	}
	c.pages = make(map[uint64]*[pageWords]int64, npages)
	for i := 0; i < npages; i++ {
		key := r.U64()
		pg := new([pageWords]int64)
		for j := range pg {
			pg[j] = r.I64()
		}
		c.pages[key] = pg
	}
	if err := r.Err(); err != nil {
		return Checkpoint{}, err
	}
	if r.Remaining() != 0 {
		return Checkpoint{}, fmt.Errorf("emu: %d trailing bytes after checkpoint", r.Remaining())
	}
	if !validPosition(p, c.pos) {
		return Checkpoint{}, fmt.Errorf("emu: checkpoint position %+v outside program %q", c.pos, p.Name)
	}
	for _, pos := range c.stack {
		if !validPosition(p, pos) {
			return Checkpoint{}, fmt.Errorf("emu: checkpoint stack entry %+v outside program %q", pos, p.Name)
		}
	}
	c.prog = p
	return c, nil
}

// Equal reports whether two checkpoints hold identical architectural
// state for the same program (test helper for the serialization suite).
func (c *Checkpoint) Equal(o *Checkpoint) bool {
	if c.prog != o.prog || c.iregs != o.iregs || c.fregs != o.fregs ||
		c.pos != o.pos || c.seq != o.seq || c.halt != o.halt ||
		len(c.stack) != len(o.stack) || len(c.pages) != len(o.pages) {
		return false
	}
	for i := range c.stack {
		if c.stack[i] != o.stack[i] {
			return false
		}
	}
	for k, pg := range c.pages {
		opg := o.pages[k]
		if opg == nil || *pg != *opg {
			return false
		}
	}
	return true
}
