package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestDynInstPredicates(t *testing.T) {
	// A not-taken conditional branch controls flow but does not redirect.
	br := DynInst{PC: 100, Op: isa.Beq, Taken: false, NextPC: 104}
	if !br.ControlFlow() || br.Redirects() {
		t.Errorf("not-taken branch: ctrl=%v redirects=%v", br.ControlFlow(), br.Redirects())
	}
	br.Taken = true
	br.NextPC = 200
	if !br.Redirects() {
		t.Error("taken branch to 200 must redirect")
	}
	// A taken branch to the fallthrough address does not redirect fetch.
	br.NextPC = 104
	if br.Redirects() {
		t.Error("branch to fallthrough must not redirect")
	}
	add := DynInst{Op: isa.Add, NextPC: 4}
	if add.ControlFlow() {
		t.Error("add is not control flow")
	}
	if add.Class() != isa.ClassIntALU {
		t.Errorf("class = %v", add.Class())
	}
}

func TestHintCarrier(t *testing.T) {
	h := DynInst{Op: isa.HintNop, Hint: 12}
	if !h.IsHintCarrier() {
		t.Error("hint NOOP must carry")
	}
	tagged := DynInst{Op: isa.Add, Hint: 7}
	if !tagged.IsHintCarrier() {
		t.Error("tagged instruction must carry")
	}
	plain := DynInst{Op: isa.Add}
	if plain.IsHintCarrier() {
		t.Error("untagged instruction must not carry")
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Insts: []DynInst{{Seq: 0}, {Seq: 1}}}
	d, ok := s.Next()
	if !ok || d.Seq != 0 {
		t.Fatalf("first = %v,%v", d, ok)
	}
	d, ok = s.Next()
	if !ok || d.Seq != 1 {
		t.Fatalf("second = %v,%v", d, ok)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream must return false")
	}
}

func TestLimit(t *testing.T) {
	inner := &SliceStream{Insts: make([]DynInst, 10)}
	l := &Limit{S: inner, N: 3}
	n := 0
	for {
		if _, ok := l.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("limit yielded %d, want 3", n)
	}
	// Limit larger than the stream drains naturally.
	l2 := &Limit{S: &SliceStream{Insts: make([]DynInst, 2)}, N: 100}
	n = 0
	for {
		if _, ok := l2.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("oversized limit yielded %d, want 2", n)
	}
}

// countingStream records how many times Next is called — for verifying
// wrappers do not pull past exhaustion.
type countingStream struct {
	calls int
	n     int
}

func (c *countingStream) Next() (DynInst, bool) {
	c.calls++
	if c.n <= 0 {
		return DynInst{}, false
	}
	c.n--
	return DynInst{}, true
}

// TestStreamContract pins the Stream contract the simulator and the
// sampled-simulation engine rely on: once Next returns false it keeps
// returning false, and an exhausted Limit never touches the wrapped
// stream again.
func TestStreamContract(t *testing.T) {
	s := &SliceStream{Insts: []DynInst{{Seq: 5}}}
	s.Next()
	for i := 0; i < 3; i++ {
		if _, ok := s.Next(); ok {
			t.Fatal("exhausted SliceStream yielded an instruction")
		}
	}
	inner := &countingStream{n: 10}
	l := &Limit{S: inner, N: 2}
	l.Next()
	l.Next()
	before := inner.calls
	for i := 0; i < 3; i++ {
		if _, ok := l.Next(); ok {
			t.Fatal("exhausted Limit yielded an instruction")
		}
	}
	if inner.calls != before {
		t.Errorf("exhausted Limit pulled %d extra records from the inner stream",
			inner.calls-before)
	}
}

// TestStreamMidSequence pins that nothing in the record contract assumes
// Seq starts at 0: a stream resuming mid-run (a restored checkpoint, a
// sample window) carries arbitrary starting sequence numbers.
func TestStreamMidSequence(t *testing.T) {
	s := &SliceStream{Insts: []DynInst{{Seq: 1 << 40}, {Seq: 1<<40 + 1}}}
	d, ok := s.Next()
	if !ok || d.Seq != 1<<40 {
		t.Fatalf("mid-sequence first record = %v,%v", d, ok)
	}
	l := &Limit{S: s, N: 1}
	d, ok = l.Next()
	if !ok || d.Seq != 1<<40+1 {
		t.Fatalf("mid-sequence limited record = %v,%v", d, ok)
	}
}
