// Package trace defines the dynamic instruction records that flow from the
// functional emulator to the timing simulator. The timing model is
// trace-driven on the committed path: every record carries its real branch
// outcome and memory address, so the simulator can model predictors and
// caches exactly while never simulating wrong-path data (see DESIGN.md,
// substitution "wrong-path execution").
package trace

import "repro/internal/isa"

// DynInst is one committed dynamic instruction.
type DynInst struct {
	Seq  int64 // commit order, starting at 0
	PC   int   // static instruction address
	Op   isa.Op
	Dst  isa.Reg // destination register (RegNone or RZero = none)
	Src1 isa.Reg
	Src2 isa.Reg

	// Control flow: Taken is the actual outcome for conditional branches
	// (always true for jumps/calls/returns); NextPC is the address of the
	// next committed instruction.
	Taken  bool
	NextPC int

	// Addr is the effective address for loads and stores.
	Addr uint64

	// Hint carries an issue-queue size: for a HintNop it is the NOOP's
	// payload; for a tagged real instruction it is the Extension tag
	// (0 = no hint).
	Hint int
}

// Class returns the functional-unit class.
func (d *DynInst) Class() isa.Class { return d.Op.Class() }

// IsHintCarrier reports whether the record changes max_new_range.
func (d *DynInst) IsHintCarrier() bool { return d.Hint > 0 }

// ControlFlow reports whether the instruction can redirect fetch.
func (d *DynInst) ControlFlow() bool { return d.Op.IsBranch() || d.Op.IsCtrl() }

// Redirects reports whether fetch must continue at a non-sequential PC.
func (d *DynInst) Redirects() bool {
	return d.ControlFlow() && d.NextPC != d.PC+isa.InstBytes
}

// Stream yields dynamic instructions in commit order. Next returns false
// when the program has halted or the budget is exhausted.
type Stream interface {
	Next() (DynInst, bool)
}

// SliceStream adapts a slice to a Stream; used by tests.
type SliceStream struct {
	Insts []DynInst
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next() (DynInst, bool) {
	if s.pos >= len(s.Insts) {
		return DynInst{}, false
	}
	d := s.Insts[s.pos]
	s.pos++
	return d, true
}

// Limit wraps a stream and cuts it after n instructions.
type Limit struct {
	S Stream
	N int64
}

// Next implements Stream.
func (l *Limit) Next() (DynInst, bool) {
	if l.N <= 0 {
		return DynInst{}, false
	}
	l.N--
	return l.S.Next()
}
