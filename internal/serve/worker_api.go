package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/worker"
)

// Worker-pool HTTP surface: thin JSON shims over the dispatcher. The
// wire types live in internal/worker (shared with the sdiqw binary and
// pinned by that package's golden fixtures).

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req worker.RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad registration: %v", err)
		return
	}
	resp, err := s.disp.register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if !s.disp.deregister(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no worker %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req worker.LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	l, t, err := s.disp.nextLease(r.Context(), req.WorkerID, time.Duration(req.WaitMS)*time.Millisecond)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, worker.Lease{
		ID:         l.id,
		Key:        t.key,
		Attempt:    t.attempts,
		DeadlineMS: s.disp.ttl.Milliseconds(),
		CkptKey:    t.ckptKey,
		Job:        worker.JobSpecOf(t.job, t.params),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb worker.Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	resp, ok := s.disp.heartbeat(r.PathValue("id"), hb)
	if !ok {
		writeError(w, http.StatusGone, "lease %q is gone", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLeaseResult(w http.ResponseWriter, r *http.Request) {
	var up worker.ResultUpload
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&up); err != nil {
		writeError(w, http.StatusBadRequest, "bad result upload: %v", err)
		return
	}
	resp, verr, ok := s.disp.complete(r.PathValue("id"), up)
	if !ok {
		writeError(w, http.StatusGone, "lease %q is gone (result discarded)", r.PathValue("id"))
		return
	}
	if verr != nil {
		writeError(w, http.StatusUnprocessableEntity, "result rejected: %v", verr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
