// Event-log compaction: huge sweeps must stay streamable. A late
// subscriber's replay is snapshot + tail, and the satellite's contract
// is that this replay is state-equivalent to the full, uncompacted log.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/campaign"
)

// drain replays a closed hub from sequence zero, like a late joiner.
func drain(t *testing.T, h *hub) []Event {
	t.Helper()
	var out []Event
	next := 0
	for {
		evs, cursor, closed, _ := h.since(next)
		out = append(out, evs...)
		next = cursor
		if closed && len(evs) == 0 {
			return out
		}
		if len(evs) == 0 {
			t.Fatal("hub stalled with no events and not closed")
		}
	}
}

// foldStates reduces a replay to each job's final status plus the
// terminal event — the state a consumer actually builds from a stream.
// Snapshot events contribute their whole roster.
func foldStates(evs []Event) (map[string]campaign.JobStatus, *Event) {
	states := make(map[string]campaign.JobStatus)
	var done *Event
	for _, ev := range evs {
		switch ev.Type {
		case EventJob:
			states[ev.Job.ID] = *ev.Job
		case EventSnapshot:
			for _, js := range ev.Status.Jobs {
				states[js.ID] = js
			}
		case EventDone:
			ev := ev
			done = &ev
		}
	}
	return states, done
}

// publishScript drives a hub through a synthetic 12-job campaign whose
// transitions (running then done, interleaved) far exceed a small
// compaction bound.
func publishScript(h *hub, jobs int) {
	h.publish(Event{Type: EventSubmitted, Campaign: "c0001"})
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("j%02d", i)
		h.publish(Event{Type: EventJob, Campaign: "c0001", Job: &campaign.JobStatus{
			ID: id, Bench: "gzip", State: campaign.JobRunning,
		}})
		h.publish(Event{Type: EventJob, Campaign: "c0001", Job: &campaign.JobStatus{
			ID: id, Bench: "gzip", State: campaign.JobDone, IPC: 1.5,
		}})
	}
	st := campaign.Status{Total: jobs, Done: jobs, Executed: jobs}
	h.publish(Event{Type: EventDone, Campaign: "c0001", Status: &st})
	h.close()
}

// TestCompactedReplayEqualsFullReplay is the satellite's regression
// gate: an aggressively compacted hub and an uncompacted one fed the
// identical event script must replay to identical final state.
func TestCompactedReplayEqualsFullReplay(t *testing.T) {
	const jobs = 12
	full := newHub(jobs, 1<<20) // never compacts
	tight := newHub(jobs, 6)   // compacts repeatedly mid-script
	publishScript(full, jobs)
	publishScript(tight, jobs)

	fullEvs, tightEvs := drain(t, full), drain(t, tight)
	if len(tightEvs) >= len(fullEvs) {
		t.Fatalf("compaction did not shrink replay: %d vs %d events", len(tightEvs), len(fullEvs))
	}
	if tightEvs[0].Type != EventSnapshot {
		t.Fatalf("compacted replay starts with %q, want snapshot", tightEvs[0].Type)
	}

	fullStates, fullDone := foldStates(fullEvs)
	tightStates, tightDone := foldStates(tightEvs)
	if !reflect.DeepEqual(fullStates, tightStates) {
		t.Errorf("replayed job states diverge:\nfull:  %+v\ntight: %+v", fullStates, tightStates)
	}
	if fullDone == nil || tightDone == nil {
		t.Fatalf("done event lost: full=%v tight=%v", fullDone, tightDone)
	}
	if !reflect.DeepEqual(fullDone.Status, tightDone.Status) {
		t.Errorf("done status diverges: %+v vs %+v", fullDone.Status, tightDone.Status)
	}

	// Sequence numbers must stay monotonic across the snapshot seam so
	// a reconnecting client's duplicate filter keeps working.
	for i := 1; i < len(tightEvs); i++ {
		if tightEvs[i].Seq <= tightEvs[i-1].Seq {
			t.Fatalf("non-monotonic seq at %d: %d after %d", i, tightEvs[i].Seq, tightEvs[i-1].Seq)
		}
	}
}

// TestAttachedSubscriberSurvivesCompaction: a subscriber that is
// current (cursor in the tail) must never be handed the snapshot or
// re-sent history when compaction fires beneath it.
func TestAttachedSubscriberSurvivesCompaction(t *testing.T) {
	h := newHub(4, 4)
	seen := 0
	next := 0
	h.publish(Event{Type: EventSubmitted, Campaign: "c0001"})
	for i := 0; i < 20; i++ {
		h.publish(Event{Type: EventJob, Campaign: "c0001", Job: &campaign.JobStatus{
			ID: fmt.Sprintf("j%02d", i%4), State: campaign.JobRunning,
		}})
		evs, cursor, _, _ := h.since(next)
		for _, ev := range evs {
			if ev.Type == EventSnapshot {
				t.Fatalf("current subscriber handed a snapshot at seq %d", ev.Seq)
			}
			if ev.Seq < next {
				t.Fatalf("event %d replayed below cursor %d", ev.Seq, next)
			}
			seen++
		}
		next = cursor
	}
	if seen != 21 {
		t.Fatalf("attached subscriber saw %d events, want 21", seen)
	}
}

// TestServerStreamCompaction drives a real campaign with a tiny
// compaction bound and replays its stream end to end: a snapshot event
// must appear, and the folded states must agree with the status
// endpoint's final roster.
func TestServerStreamCompaction(t *testing.T) {
	ctx := context.Background()
	_, cl := startServer(t, Config{
		CacheDir:          t.TempDir(),
		Workers:           2,
		EventCompactAfter: 4,
	})
	sub, err := cl.Submit(ctx, failureSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, cl, sub.ID, "done", func(info CampaignInfo) bool { return info.Done })

	resp, err := cl.do(ctx, "GET", "/v1/campaigns/"+sub.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	sawSnapshot := false
	for _, ev := range evs {
		if ev.Type == EventSnapshot {
			sawSnapshot = true
		}
	}
	if !sawSnapshot {
		t.Fatalf("no snapshot event in %d-event replay with EventCompactAfter=4", len(evs))
	}

	states, done := foldStates(evs)
	if done == nil {
		t.Fatal("replay lost the done event")
	}
	info, err := cl.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range info.Status.Jobs {
		got, ok := states[js.ID]
		if !ok {
			t.Errorf("job %s missing from compacted replay", js.ID)
			continue
		}
		if got.State != js.State || got.IPC != js.IPC || got.Cached != js.Cached {
			t.Errorf("job %s replayed as %+v, status says %+v", js.ID, got, js)
		}
	}
}

// TestClientRunRelaysSnapshot: a client that joins after compaction
// receives the snapshot through OnEvent and still completes normally.
func TestClientRunRelaysSnapshot(t *testing.T) {
	ctx := context.Background()
	_, cl := startServer(t, Config{
		CacheDir:          t.TempDir(),
		Workers:           2,
		EventCompactAfter: 4,
	})
	// First run populates the log past the compaction bound.
	sub, err := cl.Submit(ctx, failureSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, cl, sub.ID, "done", func(info CampaignInfo) bool { return info.Done })

	var types []string
	err = cl.Stream(ctx, sub.ID, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[0] != EventSnapshot {
		t.Fatalf("late joiner stream starts with %v, want snapshot first", types)
	}
	if types[len(types)-1] != EventDone {
		t.Fatalf("late joiner stream ends with %v, want done", types)
	}
}
