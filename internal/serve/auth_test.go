// Identity-layer tests: the bearer-token matrix over every route, the
// client-identity fallback bugs (shared NAT quota bucket, path-traversal
// client names), ownership scoping, per-tenant namespacing, quota
// accounting across crash recovery, and the restarted-coordinator
// zombie-upload scenario. Like the failure suite, the acceptance oracle
// is byte-identity: an authenticated remote run must export exactly what
// a local run produces.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/campaign"
	"repro/internal/worker"
)

const (
	tokAlice = "secret-alice"
	tokBob   = "secret-bob"
	tokFleet = "secret-fleet"
)

// testAuth is the standing cast: two tenants and one worker credential.
func testAuth(t *testing.T) *auth.Authenticator {
	t.Helper()
	a, err := auth.New([]auth.Token{
		{Token: tokAlice, Principal: "alice", Role: auth.RoleTenant},
		{Token: tokBob, Principal: "bob", Role: auth.RoleTenant},
		{Token: tokFleet, Principal: "fleet", Role: auth.RoleWorker},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// rawStatus issues one bare HTTP request with an optional Authorization
// header and returns the status code.
func rawStatus(t *testing.T, base, method, path, authz string, body []byte) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if authz != "" {
		req.Header.Set("Authorization", authz)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
		t.Errorf("%s %s: 401 without WWW-Authenticate challenge", method, path)
	}
	return resp.StatusCode
}

// TestAuthMatrix drives every route through {no token, malformed
// header, unknown token, wrong-role token, valid token}: the /v1/*
// surface must answer 401/403 for every bad credential and never
// auth-refuse a valid one; /metrics takes any valid token or none;
// /healthz stays open.
func TestAuthMatrix(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2, Auth: testAuth(t)})
	base := cl.Base
	ckptKey := strings.Repeat("ab", 32)

	routes := []struct {
		method, path string
		role         auth.Role
	}{
		{http.MethodPost, "/v1/campaigns", auth.RoleTenant},
		{http.MethodGet, "/v1/campaigns", auth.RoleTenant},
		{http.MethodGet, "/v1/campaigns/c0001", auth.RoleTenant},
		{http.MethodGet, "/v1/campaigns/c0001/events", auth.RoleTenant},
		{http.MethodGet, "/v1/campaigns/c0001/events?format=sse", auth.RoleTenant},
		{http.MethodGet, "/v1/campaigns/c0001/export", auth.RoleTenant},
		{http.MethodDelete, "/v1/campaigns/c0001", auth.RoleTenant},
		{http.MethodPost, "/v1/workers", auth.RoleWorker},
		{http.MethodDelete, "/v1/workers/w1", auth.RoleWorker},
		{http.MethodPost, "/v1/leases", auth.RoleWorker},
		{http.MethodPost, "/v1/leases/l1/heartbeat", auth.RoleWorker},
		{http.MethodPost, "/v1/leases/l1/result", auth.RoleWorker},
		{http.MethodGet, "/v1/checkpoints/" + ckptKey, auth.RoleWorker},
		{http.MethodPut, "/v1/checkpoints/" + ckptKey, auth.RoleWorker},
	}
	tokenOf := map[auth.Role]string{auth.RoleTenant: tokAlice, auth.RoleWorker: tokFleet}
	wrongOf := map[auth.Role]string{auth.RoleTenant: tokFleet, auth.RoleWorker: tokAlice}

	for _, rt := range routes {
		if got := rawStatus(t, base, rt.method, rt.path, "", nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s no token = %d, want 401", rt.method, rt.path, got)
		}
		if got := rawStatus(t, base, rt.method, rt.path, "Basic notbearer", nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s malformed header = %d, want 401", rt.method, rt.path, got)
		}
		if got := rawStatus(t, base, rt.method, rt.path, "Bearer no-such-token", nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s unknown token = %d, want 401", rt.method, rt.path, got)
		}
		if got := rawStatus(t, base, rt.method, rt.path, "Bearer "+wrongOf[rt.role], nil); got != http.StatusForbidden {
			t.Errorf("%s %s wrong-role token = %d, want 403", rt.method, rt.path, got)
		}
		if got := rawStatus(t, base, rt.method, rt.path, "Bearer "+tokenOf[rt.role], nil); got == http.StatusUnauthorized || got == http.StatusForbidden {
			t.Errorf("%s %s valid token = %d, want not 401/403", rt.method, rt.path, got)
		}
	}

	// /metrics: open without a token, 401 on a presented-bad one, fine
	// with either role.
	if got := rawStatus(t, base, http.MethodGet, "/metrics", "", nil); got != http.StatusOK {
		t.Errorf("GET /metrics no token = %d, want 200", got)
	}
	if got := rawStatus(t, base, http.MethodGet, "/metrics", "Bearer no-such-token", nil); got != http.StatusUnauthorized {
		t.Errorf("GET /metrics bad token = %d, want 401", got)
	}
	for _, tok := range []string{tokAlice, tokFleet} {
		if got := rawStatus(t, base, http.MethodGet, "/metrics", "Bearer "+tok, nil); got != http.StatusOK {
			t.Errorf("GET /metrics with valid token = %d, want 200", got)
		}
	}
	if got := rawStatus(t, base, http.MethodGet, "/healthz", "", nil); got != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", got)
	}

	// Every refusal above must have been counted.
	if v := metricValue(t, fetchMetrics(t, cl), "sdiqd_auth_failures_total"); v < float64(4*len(routes)) {
		t.Errorf("sdiqd_auth_failures_total = %g, want >= %d", v, 4*len(routes))
	}
}

// TestAuthEndToEnd is the acceptance gate for the identity layer: a
// fully authenticated fleet — tenant client, worker, checkpoint
// shipping — runs a sampled sweep byte-identical to a local run, and
// identity comes from the token, never the spoofable header.
func TestAuthEndToEnd(t *testing.T) {
	s, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		CkptDir:      t.TempDir(),
		Workers:      2,
		LeaseTTL:     2 * time.Second,
		OfferTimeout: 30 * time.Second,
		WorkerTTL:    60 * time.Second,
		Auth:         testAuth(t),
	})
	ctx := context.Background()
	spec := sampledSpec("authed-fleet", []string{"gzip"}, 48, 80)

	cl.Token = tokAlice
	cl.ID = "mallory" // the spoof header must lose to the principal
	startWorker(t, cl.Base, "authed", 1, func(w *worker.Worker) {
		w.Token = tokFleet
		w.Ckpt = t.TempDir()
	})
	waitMetric(t, cl, "sdiqd_workers_connected", 1)

	rs, err := cl.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var remoteCSV bytes.Buffer
	if err := rs.WriteCSV(&remoteCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteCSV.Bytes(), localCSV(t, spec)) {
		t.Error("authenticated remote run is not byte-identical to a local run")
	}
	if v := metricValue(t, fetchMetrics(t, cl), "sdiqd_jobs_remote_total"); v != 4 {
		t.Errorf("sdiqd_jobs_remote_total = %g, want 4 — the authed worker must run the grid", v)
	}

	s.mu.Lock()
	owner := s.campaigns[s.order[0]].client
	s.mu.Unlock()
	if owner != "alice" {
		t.Errorf("campaign owner = %q, want the authenticated principal %q (header spoof must lose)", owner, "alice")
	}
}

// TestOwnershipScoping: with auth on, a tenant sees only its own
// campaigns — list is filtered and every by-ID route answers 404 for
// another tenant's campaign, including DELETE.
func TestOwnershipScoping(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2, Auth: testAuth(t)})
	ctx := context.Background()
	alice := NewClient(cl.Base)
	alice.Token = tokAlice
	bob := NewClient(cl.Base)
	bob.Token = tokBob

	if _, err := alice.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	var infos []CampaignInfo
	listAs := func(c *Client) []CampaignInfo {
		t.Helper()
		resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []CampaignInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if infos = listAs(alice); len(infos) != 1 {
		t.Fatalf("alice sees %d campaigns, want 1", len(infos))
	}
	id := infos[0].ID
	if got := listAs(bob); len(got) != 0 {
		t.Errorf("bob sees %d of alice's campaigns, want 0", len(got))
	}
	if _, err := bob.Status(ctx, id); httpStatus(err) != http.StatusNotFound {
		t.Errorf("bob status of alice's campaign: %v, want 404", err)
	}
	if _, err := bob.Export(ctx, id, "csv"); httpStatus(err) != http.StatusNotFound {
		t.Errorf("bob export of alice's campaign: %v, want 404", err)
	}
	if err := bob.Delete(ctx, id); httpStatus(err) != http.StatusNotFound {
		t.Errorf("bob delete of alice's campaign: %v, want 404", err)
	}
	if err := alice.Delete(ctx, id); err != nil {
		t.Errorf("alice delete of her own campaign: %v", err)
	}
}

// TestTenantIsolation: two tenants running the identical sampled spec
// under -tenant-isolation must each pay for their own simulations and
// never share a cache or checkpoint artifact — the store accounting
// proves the namespaces are disjoint.
func TestTenantIsolation(t *testing.T) {
	s, cl := startServer(t, Config{
		CacheDir:        t.TempDir(),
		CkptDir:         t.TempDir(),
		Workers:         2,
		Auth:            testAuth(t),
		TenantIsolation: true,
	})
	ctx := context.Background()
	spec := sampledSpec("isolation", []string{"gzip"}, 48)
	want := localCSV(t, spec)

	runAs := func(token string) {
		t.Helper()
		c := NewClient(cl.Base)
		c.Token = token
		rs, err := c.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Error("isolated tenant run is not byte-identical to a local run")
		}
	}
	runAs(tokAlice)
	execAfterAlice := s.met.jobsExecuted.Load()
	runAs(tokBob)

	// Bob's identical grid must simulate again: a shared cache would
	// have answered it for free with alice's results.
	if exec := s.met.jobsExecuted.Load(); exec != 2*execAfterAlice {
		t.Errorf("jobs executed = %d after both tenants, want %d (no cross-tenant result sharing)",
			exec, 2*execAfterAlice)
	}
	// Store accounting: each tenant holds its own artifacts, the shared
	// root store holds none.
	if n, _ := s.ckpt.DiskStat(); n != 0 {
		t.Errorf("shared checkpoint store has %d artifacts under isolation, want 0", n)
	}
	for _, tenant := range []string{"alice", "bob"} {
		st := s.tenant(tenant).ckpt
		if st == nil {
			t.Fatalf("tenant %s has no checkpoint store", tenant)
		}
		if n, _ := st.DiskStat(); n != 2 {
			t.Errorf("tenant %s has %d artifacts, want 2 (one per warm class)", tenant, n)
		}
	}
	// And the per-tenant metrics exist with the right counts.
	text := fetchMetrics(t, cl)
	for _, tenant := range []string{"alice", "bob"} {
		row := fmt.Sprintf(`sdiqd_tenant_campaigns_done_total{tenant=%q} 1`, tenant)
		if !strings.Contains(text, row) {
			t.Errorf("metrics missing %s", row)
		}
	}
}

// TestClientOfFallbackIncludesPort pins the NAT-bucket bug: with auth
// off and no header, two clients behind one address (same host,
// different source ports) must land in different quota buckets, and a
// header that fails the name grammar is an error, not an identity.
func TestClientOfFallbackIncludesPort(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	at := func(remote, header string) (string, error) {
		r := httptest.NewRequest(http.MethodPost, "/v1/campaigns", nil)
		r.RemoteAddr = remote
		if header != "" {
			r.Header.Set("X-Sdiq-Client", header)
		}
		return s.clientOf(r)
	}
	id1, err1 := at("10.1.2.3:4444", "")
	id2, err2 := at("10.1.2.3:5555", "")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if id1 == id2 {
		t.Errorf("two ports behind one address share identity %q — the NAT quota bucket bug", id1)
	}
	for id, port := range map[string]string{id1: "4444", id2: "5555"} {
		if !strings.Contains(id, port) || !auth.ValidName(id) {
			t.Errorf("fallback identity %q: want a valid name containing port %s", id, port)
		}
	}
	if got, err := at("10.1.2.3:4444", "alice"); err != nil || got != "alice" {
		t.Errorf("header identity = %q, %v; want alice", got, err)
	}
	if _, err := at("10.1.2.3:4444", "../../etc"); err == nil {
		t.Error("path-traversal client header accepted")
	}
	if out := sanitizeClient("[::1]:8080"); !auth.ValidName(out) {
		t.Errorf("sanitizeClient of IPv6 address %q is not a valid name", out)
	}
}

// TestSubmitRejectsInvalidClientHeader is the path-traversal regression
// over the wire: a client ID that could escape the tenant namespace is
// refused at submission, not folded into quota maps or cache paths.
func TestSubmitRejectsInvalidClientHeader(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 1})
	ctx := context.Background()
	cl.ID = "../../etc"
	if _, err := cl.Submit(ctx, tinySpec()); httpStatus(err) != http.StatusBadRequest {
		t.Errorf("submit with traversal client ID: %v, want 400", err)
	}
	cl.ID = "alice"
	if _, err := cl.Submit(ctx, tinySpec()); err != nil {
		t.Errorf("submit with valid client ID: %v", err)
	}
}

// TestQuotaSurvivesRecovery audits the quota ledger across the crash
// paths: a recovered unfinished campaign occupies its owner's quota
// slot from the instant the server is up, and releases it exactly once
// when it finishes — no leaked slot that would lock the tenant out, no
// double-free that would let it exceed the cap.
func TestQuotaSurvivesRecovery(t *testing.T) {
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()
	cfg := Config{CacheDir: cache, StateDir: state, Workers: 1, QuotaPerClient: 1}

	s1, cl := startServer(t, cfg)
	cl.ID = "alice"
	if _, err := cl.Submit(ctx, failureSpec()); err != nil {
		t.Fatal(err)
	}
	// Crash mid-campaign, with real progress on disk.
	waitMetric(t, cl, "sdiqd_jobs_executed_total", 1)
	killServer(s1)

	s2 := New(cfg)
	defer s2.Close()
	submitAs := func(client string) int {
		t.Helper()
		blob, err := json.Marshal(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/campaigns", bytes.NewReader(blob))
		req.Header.Set("X-Sdiq-Client", client)
		s2.Handler().ServeHTTP(rec, req)
		return rec.Code
	}
	// The recovered campaign holds alice's only slot the moment New
	// returns (recover() increments synchronously, before the re-run
	// can possibly finish its remaining cache-missed jobs)...
	if code := submitAs("alice"); code != http.StatusTooManyRequests {
		t.Errorf("submit at quota during recovery = %d, want 429", code)
	}
	// ...but no one else's.
	if code := submitAs("bob"); code != http.StatusAccepted {
		t.Errorf("other client's submit during recovery = %d, want 202", code)
	}

	waitIdle := func() {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for s2.met.campaignsActive.Load() != 0 {
			if time.Now().After(deadline) {
				t.Fatal("campaigns never drained")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitIdle()
	// The slot came back — exactly once.
	if code := submitAs("alice"); code != http.StatusAccepted {
		t.Errorf("submit after recovered campaign finished = %d, want 202", code)
	}
	waitIdle()
	s2.mu.Lock()
	leaked := len(s2.active)
	s2.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d quota entries leaked after all campaigns finished", leaked)
	}
}

// TestStaleUploadAcrossRestartRejected pins the zombie-upload hole: a
// restarted coordinator must never reissue worker or lease IDs, so a
// late upload carrying pre-restart identifiers — even for a JobKey that
// is legitimately leased again right now — is answered 410 and
// discarded, not accepted into the new boot's campaign.
func TestStaleUploadAcrossRestartRejected(t *testing.T) {
	ctx := context.Background()
	cfg := Config{
		Workers:      1,
		LeaseTTL:     30 * time.Second,
		OfferTimeout: 30 * time.Second,
		WorkerTTL:    60 * time.Second,
	}
	cfg.CacheDir = t.TempDir()
	s1, hs1, addr := serverAt(t, "127.0.0.1:0", cfg)
	base := "http://" + addr

	api1 := worker.NewAPI(base)
	reg1, err := api1.Register(ctx, worker.RegisterRequest{Name: "zombie", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(base).Submit(ctx, failureSpec()); err != nil {
		t.Fatal(err)
	}
	l1, ok, err := api1.Lease(ctx, worker.LeaseRequest{WorkerID: reg1.WorkerID, WaitMS: 10_000})
	if err != nil || !ok {
		t.Fatalf("first boot lease: ok=%v err=%v", ok, err)
	}
	// The coordinator dies with the lease checked out; the worker
	// vanishes without uploading.
	hs1.Close()
	killServer(s1)
	// Drop pooled keep-alive connections from the first boot: the dead
	// sockets would otherwise answer the next POST with an EOF (a real
	// worker's retry loop absorbs this; these raw calls don't).
	http.DefaultClient.CloseIdleConnections()

	cfg.CacheDir = t.TempDir() // fresh cache: the re-run must lease again
	s2, _, _ := serverAt(t, addr, cfg)
	api2 := worker.NewAPI(base)
	reg2, err := api2.Register(ctx, worker.RegisterRequest{Name: "fresh", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.WorkerID == reg1.WorkerID {
		t.Errorf("restarted coordinator reissued worker ID %q — stale identities can collide", reg1.WorkerID)
	}
	if _, err := NewClient(base).Submit(ctx, failureSpec()); err != nil {
		t.Fatal(err)
	}
	l2, ok, err := api2.Lease(ctx, worker.LeaseRequest{WorkerID: reg2.WorkerID, WaitMS: 30_000})
	if err != nil || !ok {
		t.Fatalf("second boot lease: ok=%v err=%v", ok, err)
	}
	if l2.ID == l1.ID {
		t.Errorf("restarted coordinator reissued lease ID %q", l1.ID)
	}

	// The zombie fires its pre-restart upload, crafted to pass identity
	// validation if the IDs were ever allowed to collide.
	up := worker.ResultUpload{
		WorkerID: reg1.WorkerID,
		Key:      l1.Key,
		Result:   &campaign.Result{Bench: l1.Job.Bench, Tech: l1.Job.Tech},
	}
	if _, err := api1.Complete(ctx, l1.ID, up); !errors.Is(err, worker.ErrLeaseGone) {
		t.Fatalf("stale upload across restart: err = %v, want ErrLeaseGone (410)", err)
	}
	if v := s2.met.lateUploads.Load(); v != 1 {
		t.Errorf("late uploads = %d, want 1", v)
	}
	if v := s2.met.jobsRemote.Load(); v != 0 {
		t.Errorf("jobs remote = %d, want 0 — the zombie result must not have been accepted", v)
	}
}
