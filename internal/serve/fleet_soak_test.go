package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestMixedFleetSoak races a three-worker fleet against the server's
// own local-fallback path under concurrent load: ten campaigns from ten
// clients — eight identical grids plus two sweeps whose single point
// derives the same configurations — over one cache, one dedup group and
// one lease queue, with an offer timeout short enough that slow leases
// are genuinely reclaimed for local execution mid-race.
//
// Required outcomes, exactly as in the in-process soak, now with jobs
// landing on both sides of the wire:
//   - every campaign completes and exports byte-identically to a pure
//     local run;
//   - zero duplicate simulations of identical JobKeys fleet-wide:
//     executed == unique keys, with every execution accounted either
//     remote or local, and no lease ever failing;
//   - the dedup/lease accounting adds up (executed + cache + dedup ==
//     total jobs).
//
// Run under -race (CI does) this soaks the dispatcher's state machine:
// the offer-timer-vs-lease-grant race, queue withdrawal, heartbeat
// renewal and upload validation all under fire.
func TestMixedFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseSpec := func() campaign.Spec {
		spec := campaign.DefaultSpec(5_000)
		spec.Name = "fleet-soak"
		spec.Benchmarks = []string{"gzip", "mcf"}
		spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
		return spec
	}
	sweepSpec := func() campaign.Spec {
		spec := baseSpec()
		spec.Name = "fleet-soak-sweep"
		spec.Axes = []campaign.Axis{{Name: "iq.entries", Values: []int{80}}}
		return spec
	}
	base := baseSpec()
	baseJobs, err := base.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	_, cl := startServer(t, Config{
		CacheDir: t.TempDir(),
		Workers:  4,
		LeaseTTL: 2 * time.Second,
		// Short offer window: jobs the fleet doesn't claim fast enough
		// are reclaimed locally, so both execution paths really race.
		OfferTimeout: 50 * time.Millisecond,
		WorkerTTL:    60 * time.Second,
		JobRetries:   2,
	})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		startWorker(t, cl.Base, fmt.Sprintf("fleet-%d", i), 2, nil)
	}
	waitMetric(t, cl, "sdiqd_workers_connected", 3)

	const identical = 8
	const sweeps = 2
	type outcome struct {
		csv []byte
		err error
	}
	outs := make([]outcome, identical+sweeps)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(cl.Base)
			c.ID = fmt.Sprintf("fleet-client-%d", i)
			spec := baseSpec()
			if i >= identical {
				spec = sweepSpec()
			}
			sub, err := c.Submit(ctx, spec)
			if err != nil {
				outs[i].err = err
				return
			}
			if err := c.Stream(ctx, sub.ID, func(Event) error { return nil }); err != nil {
				outs[i].err = err
				return
			}
			outs[i].csv, outs[i].err = c.Export(ctx, sub.ID, "csv")
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("campaign %d: %v", i, o.err)
		}
	}

	// Byte-identity against a pure-local run, for every campaign.
	local := localCSV(t, baseSpec())
	for i := 0; i < identical; i++ {
		if !bytes.Equal(outs[i].csv, local) {
			t.Errorf("campaign %d CSV differs from the local run", i)
		}
	}
	for i := identical + 1; i < identical+sweeps; i++ {
		if !bytes.Equal(outs[i].csv, outs[identical].csv) {
			t.Errorf("sweep campaign %d CSV differs from sweep campaign %d", i, identical)
		}
	}

	// Exactly-once accounting across both execution paths.
	text := fetchMetrics(t, cl)
	executed := metricValue(t, text, "sdiqd_jobs_executed_total")
	cacheHits := metricValue(t, text, "sdiqd_job_cache_hits_total")
	dedupHits := metricValue(t, text, "sdiqd_job_dedup_hits_total")
	remote := metricValue(t, text, "sdiqd_jobs_remote_total")
	localJobs := metricValue(t, text, "sdiqd_jobs_local_total")
	totalJobs := float64((identical + sweeps) * len(baseJobs))
	if executed != float64(len(baseJobs)) {
		t.Errorf("executed %g simulations for %d unique keys: duplicate simulation slipped through",
			executed, len(baseJobs))
	}
	if executed+cacheHits+dedupHits != totalJobs {
		t.Errorf("job accounting off: %g executed + %g cache + %g dedup != %g total",
			executed, cacheHits, dedupHits, totalJobs)
	}
	if remote+localJobs != executed {
		t.Errorf("execution-path accounting off: %g remote + %g local != %g executed",
			remote, localJobs, executed)
	}
	if failed := metricValue(t, text, "sdiqd_jobs_failed_total"); failed != 0 {
		t.Errorf("%g jobs failed", failed)
	}
	if expired := metricValue(t, text, "sdiqd_leases_expired_total"); expired != 0 {
		t.Errorf("%g leases expired under a healthy fleet", expired)
	}
	if rejected := metricValue(t, text, "sdiqd_results_rejected_total"); rejected != 0 {
		t.Errorf("%g uploads rejected from honest workers", rejected)
	}
}
