package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// tinySpec is a fast two-job campaign for API tests.
func tinySpec() campaign.Spec {
	spec := campaign.DefaultSpec(4_000)
	spec.Name = "tiny"
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
	return spec
}

// startServer spins up a Server over httptest and tears both down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, NewClient(ts.URL)
}

// TestServiceEndToEnd is the happy path: submit, stream events, export
// — and the server-side CSV export must be byte-identical to the same
// spec run locally through the engine.
func TestServiceEndToEnd(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ctx := context.Background()
	spec := tinySpec()

	var events []Event
	cl.OnEvent = func(ev Event) { events = append(events, ev) }
	rs, err := cl.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Complete() || len(rs.Results) != 2 {
		t.Fatalf("remote campaign incomplete: %d results", len(rs.Results))
	}

	if len(events) < 2 {
		t.Fatalf("saw %d events, want at least submitted+done", len(events))
	}
	if events[0].Type != EventSubmitted {
		t.Errorf("first event %q, want submitted", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != EventDone || last.Error != "" {
		t.Errorf("last event %+v, want clean done", last)
	}
	if last.Status == nil || last.Status.Done != 2 {
		t.Errorf("done event status %+v, want 2 done", last.Status)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d; replay must be gapless and ordered", i, ev.Seq)
		}
	}

	// Server-side CSV export vs the same spec run locally.
	sub := events[0].Campaign
	remoteCSV, err := cl.Export(ctx, sub, "csv")
	if err != nil {
		t.Fatal(err)
	}
	local, err := (&campaign.Engine{Workers: 2}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var localCSV bytes.Buffer
	if err := local.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteCSV, localCSV.Bytes()) {
		t.Errorf("server CSV export differs from local run:\nremote:\n%s\nlocal:\n%s",
			remoteCSV, localCSV.String())
	}
}

// TestServiceStatusAndList covers the read-side endpoints.
func TestServiceStatusAndList(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir()})
	ctx := context.Background()
	sub, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Jobs != 2 || sub.ID == "" {
		t.Fatalf("submission %+v", sub)
	}
	// Wait for completion by polling status (exercising that endpoint).
	var info CampaignInfo
	deadline := time.Now().Add(30 * time.Second)
	for !info.Done {
		if time.Now().After(deadline) {
			t.Fatal("campaign never finished")
		}
		if info, err = cl.Status(ctx, sub.ID); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info.Error != "" || info.Status.Done != 2 || len(info.Status.Jobs) != 2 {
		t.Errorf("status %+v", info)
	}
	for _, js := range info.Status.Jobs {
		if js.State != campaign.JobDone || js.IPC <= 0 {
			t.Errorf("job %+v", js)
		}
	}

	resp, err := cl.do(ctx, http.MethodGet, "/v1/campaigns", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []CampaignInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID || len(list[0].Status.Jobs) != 0 {
		t.Errorf("list %+v (per-job detail belongs to the status endpoint only)", list)
	}
}

// TestServiceErrors covers the API's refusals: unknown campaigns,
// malformed and empty specs, exports of unfinished campaigns, failed
// campaigns surfacing their error.
func TestServiceErrors(t *testing.T) {
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 1})
	ctx := context.Background()

	if _, err := cl.Status(ctx, "c9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing campaign: %v", err)
	}
	if _, err := cl.Export(ctx, "c9999", "csv"); err == nil {
		t.Error("export of missing campaign succeeded")
	}

	resp, err := http.Post(cl.Base+"/v1/campaigns", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec: %d, want 400", resp.StatusCode)
	}

	bad := tinySpec()
	bad.Techniques = []campaign.Technique{"quantum"}
	if _, err := cl.Submit(ctx, bad); err == nil {
		t.Error("unknown technique accepted")
	}

	// A campaign whose jobs fail must finish done with an error, and Run
	// must surface it.
	failing := tinySpec()
	failing.Benchmarks = []string{"nosuchbench"}
	if _, err := cl.Run(ctx, failing); err == nil || !strings.Contains(err.Error(), "nosuchbench") {
		t.Errorf("failed campaign error = %v", err)
	}

	// Export while running → 409. A fat campaign on one worker stays
	// running long enough to observe.
	slow := campaign.DefaultSpec(2_000_000)
	slow.Benchmarks = []string{"gzip"}
	slow.Techniques = []campaign.Technique{campaign.TechBaseline}
	sub, err := cl.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Export(ctx, sub.ID, "csv"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("export of running campaign: %v, want 409", err)
	}
	s.Close() // cancel the slow campaign rather than waiting it out
}

// TestServiceQuota: a client at its active-campaign quota is refused
// with 429 until one finishes; other clients are unaffected.
func TestServiceQuota(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 1, QuotaPerClient: 1})
	ctx := context.Background()
	cl.ID = "alice"

	slow := campaign.DefaultSpec(2_000_000)
	slow.Benchmarks = []string{"gzip"}
	slow.Techniques = []campaign.Technique{campaign.TechBaseline}
	sub, err := cl.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(ctx, tinySpec()); err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("over-quota submit: %v, want 429", err)
	}
	bob := NewClient(cl.Base)
	bob.ID = "bob"
	if _, err := bob.Submit(ctx, tinySpec()); err != nil {
		t.Errorf("other client rejected: %v", err)
	}
	// Once alice's campaign finishes her quota frees up.
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := cl.Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow campaign never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := cl.Submit(ctx, tinySpec()); err != nil {
		t.Errorf("post-completion submit rejected: %v", err)
	}
}

// TestServiceDrain: draining refuses new campaigns with 503 while
// running ones finish; Drain returns once they have.
func TestServiceDrain(t *testing.T) {
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ctx := context.Background()
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
	if _, err := cl.Submit(ctx, tinySpec()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("submit to draining server: %v, want 503", err)
	}
}

// TestServiceSSE: the event stream in SSE framing carries the same
// events.
func TestServiceSSE(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir()})
	ctx := context.Background()
	rs, err := cl.Run(ctx, tinySpec())
	if err != nil || !rs.Complete() {
		t.Fatal(err)
	}
	resp, err := cl.do(ctx, http.MethodGet, "/v1/campaigns/c0001/events?format=sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "event: submitted\n") || !strings.Contains(body, "event: done\n") {
		t.Errorf("SSE stream missing framing:\n%s", body)
	}
}

// metricValue digs one sample out of the Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// fetchMetrics grabs /metrics as text.
func fetchMetrics(t *testing.T, cl *Client) string {
	t.Helper()
	resp, err := cl.do(context.Background(), http.MethodGet, "/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServiceMetrics: after one executed campaign and one fully-cached
// re-run, the counters must add up.
func TestServiceMetrics(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ctx := context.Background()
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_campaigns_submitted_total"); got != 2 {
		t.Errorf("submitted = %g, want 2", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_executed_total"); got != 2 {
		t.Errorf("executed = %g, want 2 (second run must be served, not simulated)", got)
	}
	served := metricValue(t, text, "sdiqd_job_cache_hits_total") +
		metricValue(t, text, "sdiqd_job_dedup_hits_total")
	if served != 2 {
		t.Errorf("cache+dedup = %g, want 2", served)
	}
	if got := metricValue(t, text, "sdiqd_insts_committed_total"); got < 2*4_000 {
		t.Errorf("insts committed = %g, want >= 8000", got)
	}
	if got := metricValue(t, text, "sdiqd_insts_per_second"); got <= 0 {
		t.Errorf("insts/s = %g, want positive", got)
	}
	if got := metricValue(t, text, "sdiqd_campaigns_active"); got != 0 {
		t.Errorf("active = %g, want 0", got)
	}
}

// TestServiceDeleteCampaign: DELETE drops a finished campaign from the
// registry — its id 404s afterwards and the registry entry (tracker,
// event log, result set) is released — while running campaigns are
// refused with 409 and unknown ids with 404.
func TestServiceDeleteCampaign(t *testing.T) {
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ctx := context.Background()
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	sub := "c0001"
	if err := cl.Delete(ctx, sub); err != nil {
		t.Fatalf("delete finished campaign: %v", err)
	}
	// Gone from every read path.
	if _, err := cl.Status(ctx, sub); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("status after delete = %v, want 404", err)
	}
	if _, err := cl.Export(ctx, sub, "csv"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("export after delete = %v, want 404", err)
	}
	if err := cl.Delete(ctx, sub); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("double delete = %v, want 404", err)
	}
	// Registry memory actually released, not just hidden.
	s.mu.Lock()
	held, order := len(s.campaigns), len(s.order)
	s.mu.Unlock()
	if held != 0 || order != 0 {
		t.Errorf("registry still holds %d campaigns / %d order entries after delete", held, order)
	}

	// A running campaign must be refused: deletion is GC, not cancel.
	slow := campaign.DefaultSpec(2_000_000)
	slow.Benchmarks = []string{"gzip"}
	slow.Techniques = []campaign.Technique{campaign.TechBaseline}
	sub2, err := cl.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, sub2.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("delete of running campaign = %v, want 409", err)
	}
	s.Close() // cancel the slow campaign rather than waiting it out

	if got := metricValue(t, fetchMetrics(t, cl), "sdiqd_campaigns_deleted_total"); got != 1 {
		t.Errorf("deleted = %g, want 1", got)
	}
}
