// Crash injection for the durable control plane. The oracle is the
// same brutal one the worker failure suite uses: no matter where the
// coordinator dies, a recovered campaign must finish with exports
// byte-identical to an uninterrupted local run, and no JobKey may be
// simulated-and-delivered twice (metrics-asserted). Every test here
// runs under -race in CI.
package serve

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/worker"
)

// killServer simulates a coordinator crash from the campaigns' point of
// view: every engine context dies instantly — no drain, and run() skips
// the WAL's terminal record when the server context is dead, exactly as
// a SIGKILL would have — then waits for the run goroutines so the WAL
// file handles are released before a second Server opens the same dirs.
// (The real SIGKILL, torn writes included, is scripts/crash_smoke.sh's
// job; internal/store's torn-tail tests cover mid-append corruption.)
func killServer(s *Server) {
	s.cancel()
	s.wg.Wait()
}

// waitStatus polls a campaign's status until cond is satisfied.
func waitStatus(t *testing.T, cl *Client, id string, what string, cond func(CampaignInfo) bool) CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := cl.Status(context.Background(), id)
		if err == nil && cond(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %s (last status %+v, err %v)", id, what, info, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRestartRecoveryRandomizedCrashPoints is the PR's acceptance gate:
// kill the server after a randomized number of finished jobs (0 = crash
// before any work sticks, up to all-but-done), restart over the same
// state and cache directories, and the campaign must complete with a
// CSV export byte-identical to an uninterrupted local run. The executed
// counters across both lives must sum to exactly the job count: every
// job simulated once, finished work recovered as cache hits, never
// re-simulated.
func TestRestartRecoveryRandomizedCrashPoints(t *testing.T) {
	spec := failureSpec() // four distinct jobs: gzip,mcf × baseline,noop
	want := localCSV(t, spec)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	for it := 0; it < 3; it++ {
		k := rng.Intn(4) // finished jobs before the crash
		state, cache := t.TempDir(), t.TempDir()

		s1, cl1 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
		sub, err := cl1.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, cl1, sub.ID, "k jobs done", func(info CampaignInfo) bool {
			return info.Status.Done >= k
		})
		killServer(s1)
		exec1 := s1.met.jobsExecuted.Load()

		s2, cl2 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
		if got := s2.met.campaignsRecovered.Load(); got != 1 {
			t.Fatalf("it %d: campaigns recovered = %d, want 1", it, got)
		}
		waitStatus(t, cl2, sub.ID, "done", func(info CampaignInfo) bool { return info.Done })

		csv, err := cl2.Export(ctx, sub.ID, "csv")
		if err != nil {
			t.Fatalf("it %d (crash after %d done): export: %v", it, k, err)
		}
		if !bytes.Equal(csv, want) {
			t.Errorf("it %d (crash after %d done): recovered export differs from local run:\n got: %s\nwant: %s",
				it, k, csv, want)
		}
		exec2 := s2.met.jobsExecuted.Load()
		if exec1+exec2 != 4 {
			t.Errorf("it %d (crash after %d done): executed %d+%d across restart, want exactly 4 (no duplicate simulations)",
				it, k, exec1, exec2)
		}
		// Everything that finished before the crash must come back from
		// the cache, not the simulator.
		if hits := s2.met.cacheHits.Load(); hits != exec1 {
			t.Errorf("it %d: recovered cache hits = %d, want %d (jobs finished before crash)", it, hits, exec1)
		}
	}
}

// TestRestartRecoversFinishedCampaign: a campaign that completed before
// the crash must come back queryable and exportable — its re-run is
// pure cache replay, zero simulations.
func TestRestartRecoversFinishedCampaign(t *testing.T) {
	spec := tinySpec()
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()

	s1, cl1 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	rs, err := cl1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON bytes.Buffer
	if err := rs.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	sub := s1.order[0]
	killServer(s1)

	s2, cl2 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	waitStatus(t, cl2, sub, "done", func(info CampaignInfo) bool { return info.Done })
	got, err := cl2.Export(ctx, sub, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSON.Bytes()) {
		t.Errorf("recovered export differs:\n got: %s\nwant: %s", got, wantJSON.Bytes())
	}
	if exec := s2.met.jobsExecuted.Load(); exec != 0 {
		t.Errorf("recovering a finished campaign executed %d jobs, want 0", exec)
	}
	if hits := s2.met.cacheHits.Load(); hits != 2 {
		t.Errorf("recovering a finished campaign hit cache %d times, want 2", hits)
	}
}

// TestRestartTombstonesFailedCampaign: a campaign that failed on its
// own (not because the server died) must recover as a tombstone — its
// error and job states are served, nothing re-runs.
func TestRestartTombstonesFailedCampaign(t *testing.T) {
	spec := tinySpec()
	spec.Benchmarks = []string{"nosuchbench"}
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()

	s1, cl1 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	if _, err := cl1.Run(ctx, spec); err == nil || !strings.Contains(err.Error(), "nosuchbench") {
		t.Fatalf("campaign error = %v, want nosuchbench failure", err)
	}
	sub := s1.order[0]
	killServer(s1)

	s2, cl2 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	info := waitStatus(t, cl2, sub, "done", func(info CampaignInfo) bool { return info.Done })
	if !strings.Contains(info.Error, "nosuchbench") {
		t.Errorf("recovered error = %q, want the original failure", info.Error)
	}
	if info.Status.Failed == 0 {
		t.Errorf("recovered status lost the failed jobs: %+v", info.Status)
	}
	if _, err := cl2.Export(ctx, sub, "csv"); httpStatus(err) != http.StatusUnprocessableEntity {
		t.Errorf("export of recovered failed campaign = %v, want 422", err)
	}
	if exec := s2.met.jobsExecuted.Load(); exec != 0 {
		t.Errorf("tombstoned campaign executed %d jobs, want 0", exec)
	}
	if rec := s2.met.campaignsRecovered.Load(); rec != 0 {
		t.Errorf("tombstone counted as recovered-and-resumed: %d", rec)
	}
}

// serverAt binds a Server to a fixed address so a restarted instance
// can take over the exact endpoint workers and clients are pointed at —
// the shape of a real coordinator restart.
func serverAt(t *testing.T, addr string, cfg Config) (*Server, *http.Server, string) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ { // the old socket may take a moment to free
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	s := New(cfg)
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		hs.Close()
	})
	return s, hs, ln.Addr().String()
}

// TestRestartWithWorkerAndClientAttached is the full durability story
// in one scene: a worker holds a lease and a client follows the stream
// when the coordinator dies mid-campaign. The restarted coordinator
// (same address, same state) recovers the campaign; the worker's next
// poll earns an unknown-worker error and it re-registers with backoff
// (surfaced in sdiqd_worker_reconnects_total); the client's Run rides
// across the break and still returns a result set byte-identical to a
// local run.
func TestRestartWithWorkerAndClientAttached(t *testing.T) {
	spec := failureSpec()
	want := localCSV(t, spec)
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()
	cfg := Config{
		CacheDir:  cache,
		StateDir:  state,
		Workers:   1,
		LeaseTTL:  500 * time.Millisecond,
		WorkerTTL: 60 * time.Second,
	}

	s1, hs1, addr := serverAt(t, "127.0.0.1:0", cfg)
	base := "http://" + addr
	startWorker(t, base, "steady", 1, func(w *worker.Worker) {
		w.RetryBase, w.RetryMax = 20*time.Millisecond, 200*time.Millisecond
	})

	cl := NewClient(base)
	cl.RetryBase, cl.RetryMax = 20*time.Millisecond, 200*time.Millisecond
	runDone := make(chan struct{})
	var rs *campaign.ResultSet
	var runErr error
	go func() {
		defer close(runDone)
		rs, runErr = cl.Run(ctx, spec)
	}()

	// Let real progress land, then yank the coordinator mid-campaign.
	waitMetric(t, cl, "sdiqd_jobs_executed_total", 1)
	hs1.Close() // severs the worker's poll and the client's stream
	killServer(s1)

	s2, _, _ := serverAt(t, addr, cfg)
	select {
	case <-runDone:
	case <-time.After(90 * time.Second):
		t.Fatal("client Run never finished after coordinator restart")
	}
	if runErr != nil {
		t.Fatalf("client Run across restart: %v", runErr)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export across restart differs from local run:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
	if rec := s2.met.campaignsRecovered.Load(); rec != 1 {
		t.Errorf("campaigns recovered = %d, want 1", rec)
	}
	// The recovered campaign can finish locally (cache hits) before the
	// worker's jittered re-registration backoff fires; the worker keeps
	// running until cleanup, so wait for the metric instead of racing it.
	waitMetric(t, cl, "sdiqd_worker_reconnects_total", 1)
	if rc := s2.met.workerReconnects.Load(); rc < 1 {
		t.Errorf("worker reconnects = %d, want >= 1", rc)
	}
	if exec := s1.met.jobsExecuted.Load() + s2.met.jobsExecuted.Load(); exec != 4 {
		t.Errorf("executed %d jobs across restart, want exactly 4", exec)
	}
}

// TestDeleteRemovesDurableState: DELETE must forget a campaign durably
// — a restart over the same state directory must not resurrect it.
func TestDeleteRemovesDurableState(t *testing.T) {
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()

	s1, cl1 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	if _, err := cl1.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	id := s1.order[0]
	if err := cl1.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	killServer(s1)

	s2, cl2 := startServer(t, Config{CacheDir: cache, StateDir: state, Workers: 2})
	if _, err := cl2.Status(ctx, id); httpStatus(err) != http.StatusNotFound {
		t.Errorf("deleted campaign after restart: status err = %v, want 404", err)
	}
	if n := len(s2.campaigns); n != 0 {
		t.Errorf("registry has %d campaigns after restart, want 0", n)
	}
}

// TestRegistryTTLEviction: finished campaigns past the TTL are dropped
// from the registry and from durable state, and the eviction is
// counted. A restart afterwards must not bring them back.
func TestRegistryTTLEviction(t *testing.T) {
	ctx := context.Background()
	state, cache := t.TempDir(), t.TempDir()
	cfg := Config{
		CacheDir:    cache,
		StateDir:    state,
		Workers:     2,
		RegistryTTL: 50 * time.Millisecond,
		GCInterval:  20 * time.Millisecond,
	}
	s1, cl1 := startServer(t, cfg)
	if _, err := cl1.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	id := s1.order[0]

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := cl1.Status(ctx, id); httpStatus(err) == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never evicted by registry TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s1.met.campaignsEvicted.Load(); n < 1 {
		t.Errorf("campaigns evicted = %d, want >= 1", n)
	}
	killServer(s1)

	s2, _ := startServer(t, cfg)
	if n := len(s2.campaigns); n != 0 {
		t.Errorf("evicted campaign resurrected after restart: %d in registry", n)
	}
}

// TestResultCacheByteBound: the janitor trims the shared result cache
// to -cache-max-bytes and counts the evictions.
func TestResultCacheByteBound(t *testing.T) {
	ctx := context.Background()
	_, cl := startServer(t, Config{
		CacheDir:      t.TempDir(),
		Workers:       2,
		CacheMaxBytes: 1, // evict everything the campaign writes
		GCInterval:    20 * time.Millisecond,
	})
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, cl, "sdiqd_result_cache_evictions_total", 2)
}

// TestWALAppendsCounted: durable servers account their WAL traffic.
func TestWALAppendsCounted(t *testing.T) {
	ctx := context.Background()
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), StateDir: t.TempDir(), Workers: 2})
	if _, err := cl.Run(ctx, tinySpec()); err != nil {
		t.Fatal(err)
	}
	// Two jobs, each at least running→done: four transitions minimum.
	if n := s.met.walAppends.Load(); n < 4 {
		t.Errorf("wal appends = %d, want >= 4", n)
	}
}
