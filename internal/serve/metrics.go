package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics are the service's fleet-wide counters, exposed in Prometheus
// text exposition format at /metrics. All counters are monotonic over
// the process lifetime.
type metrics struct {
	start time.Time

	campaignsSubmitted atomic.Int64
	campaignsDone      atomic.Int64
	campaignsFailed    atomic.Int64
	campaignsActive    atomic.Int64
	campaignsRejected  atomic.Int64 // quota / drain refusals

	jobsExecuted atomic.Int64
	jobsFailed   atomic.Int64
	cacheHits    atomic.Int64
	dedupHits    atomic.Int64

	instsCommitted atomic.Int64 // committed real instructions simulated
	simNanos       atomic.Int64 // wall nanoseconds spent inside simulations
}

// instsPerSecond is the service's aggregate simulation rate: committed
// real instructions per wall-clock second spent actually simulating
// (not per uptime second, which would dilute idle servers to zero).
func (m *metrics) instsPerSecond() float64 {
	ns := m.simNanos.Load()
	if ns <= 0 {
		return 0
	}
	return float64(m.instsCommitted.Load()) / (float64(ns) / float64(time.Second))
}

// handleMetrics renders the Prometheus text format.
func (m *metrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type row struct {
		name, help, typ string
		value           float64
	}
	rows := []row{
		{"sdiqd_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds()},
		{"sdiqd_campaigns_submitted_total", "Campaigns accepted for execution.", "counter", float64(m.campaignsSubmitted.Load())},
		{"sdiqd_campaigns_done_total", "Campaigns that completed successfully.", "counter", float64(m.campaignsDone.Load())},
		{"sdiqd_campaigns_failed_total", "Campaigns that finished with an error.", "counter", float64(m.campaignsFailed.Load())},
		{"sdiqd_campaigns_rejected_total", "Submissions refused (quota or drain).", "counter", float64(m.campaignsRejected.Load())},
		{"sdiqd_campaigns_active", "Campaigns currently running.", "gauge", float64(m.campaignsActive.Load())},
		{"sdiqd_jobs_executed_total", "Jobs actually simulated (cache and dedup hits excluded).", "counter", float64(m.jobsExecuted.Load())},
		{"sdiqd_jobs_failed_total", "Jobs that finished with an error.", "counter", float64(m.jobsFailed.Load())},
		{"sdiqd_job_cache_hits_total", "Jobs served from the on-disk result cache.", "counter", float64(m.cacheHits.Load())},
		{"sdiqd_job_dedup_hits_total", "Jobs shared from a concurrent identical execution.", "counter", float64(m.dedupHits.Load())},
		{"sdiqd_insts_committed_total", "Committed real instructions simulated.", "counter", float64(m.instsCommitted.Load())},
		{"sdiqd_insts_per_second", "Aggregate simulation rate over wall time spent simulating.", "gauge", m.instsPerSecond()},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", r.name, r.help, r.name, r.typ, r.name, r.value)
	}
}
