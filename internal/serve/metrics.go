package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics are the service's fleet-wide counters, exposed in Prometheus
// text exposition format at /metrics. All counters are monotonic over
// the process lifetime.
type metrics struct {
	start time.Time

	campaignsSubmitted atomic.Int64
	campaignsDone      atomic.Int64
	campaignsFailed    atomic.Int64
	campaignsActive    atomic.Int64
	campaignsRejected  atomic.Int64 // quota / drain refusals

	jobsExecuted atomic.Int64
	jobsFailed   atomic.Int64
	cacheHits    atomic.Int64
	dedupHits    atomic.Int64

	instsCommitted atomic.Int64 // committed real instructions simulated
	simNanos       atomic.Int64 // wall nanoseconds spent inside simulations

	// Remote worker pool (see dispatcher).
	workersRegistered atomic.Int64 // workers ever admitted
	leasesGranted     atomic.Int64 // jobs handed to workers
	leasesExpired     atomic.Int64 // leases that missed their TTL (dead worker)
	leaseRequeues     atomic.Int64 // jobs put back on the queue after a failed lease
	jobsRemote        atomic.Int64 // jobs completed by workers (validated uploads)
	jobsLocal         atomic.Int64 // jobs executed in-process
	jobsFellBack      atomic.Int64 // jobs reclaimed from the fleet for local execution
	workerJobFailures atomic.Int64 // worker-reported execution errors
	resultsRejected   atomic.Int64 // uploads that failed JobKey/identity validation
	lateUploads       atomic.Int64 // uploads against expired or unknown leases
	campaignsDeleted  atomic.Int64 // campaigns dropped via DELETE

	// Checkpoint store wire traffic (store-side counters live in ckpt).
	ckptBytesShipped atomic.Int64 // artifact bytes served to / accepted from workers

	// Durability and state bounds.
	campaignsRecovered atomic.Int64 // campaigns resumed from durable state at boot
	campaignsEvicted   atomic.Int64 // finished campaigns evicted by the registry TTL
	cacheEvictions     atomic.Int64 // result-cache entries evicted by the byte bound
	walAppends         atomic.Int64 // job transitions fsync'd to campaign WALs
	workerReconnects   atomic.Int64 // worker re-registrations after losing the coordinator

	// Identity.
	authFailures atomic.Int64 // requests refused 401/403 (bad token or wrong role)
}

// instsPerSecond is the service's aggregate simulation rate: committed
// real instructions per wall-clock second spent actually simulating
// (not per uptime second, which would dilute idle servers to zero).
func (m *metrics) instsPerSecond() float64 {
	ns := m.simNanos.Load()
	if ns <= 0 {
		return 0
	}
	return float64(m.instsCommitted.Load()) / (float64(ns) / float64(time.Second))
}

// row is one Prometheus sample with its metadata.
type row struct {
	name, help, typ string
	value           float64
}

// rows renders every counter; live gauges from other subsystems (the
// dispatcher) are appended by the server's /metrics handler.
func (m *metrics) rows() []row {
	return []row{
		{"sdiqd_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds()},
		{"sdiqd_campaigns_submitted_total", "Campaigns accepted for execution.", "counter", float64(m.campaignsSubmitted.Load())},
		{"sdiqd_campaigns_done_total", "Campaigns that completed successfully.", "counter", float64(m.campaignsDone.Load())},
		{"sdiqd_campaigns_failed_total", "Campaigns that finished with an error.", "counter", float64(m.campaignsFailed.Load())},
		{"sdiqd_campaigns_rejected_total", "Submissions refused (quota or drain).", "counter", float64(m.campaignsRejected.Load())},
		{"sdiqd_campaigns_active", "Campaigns currently running.", "gauge", float64(m.campaignsActive.Load())},
		{"sdiqd_jobs_executed_total", "Jobs actually simulated (cache and dedup hits excluded).", "counter", float64(m.jobsExecuted.Load())},
		{"sdiqd_jobs_failed_total", "Jobs that finished with an error.", "counter", float64(m.jobsFailed.Load())},
		{"sdiqd_job_cache_hits_total", "Jobs served from the on-disk result cache.", "counter", float64(m.cacheHits.Load())},
		{"sdiqd_job_dedup_hits_total", "Jobs shared from a concurrent identical execution.", "counter", float64(m.dedupHits.Load())},
		{"sdiqd_insts_committed_total", "Committed real instructions simulated.", "counter", float64(m.instsCommitted.Load())},
		{"sdiqd_insts_per_second", "Aggregate simulation rate over wall time spent simulating.", "gauge", m.instsPerSecond()},
		{"sdiqd_workers_registered_total", "Workers ever admitted to the pool.", "counter", float64(m.workersRegistered.Load())},
		{"sdiqd_leases_granted_total", "Jobs handed to remote workers.", "counter", float64(m.leasesGranted.Load())},
		{"sdiqd_leases_expired_total", "Leases that missed their TTL (worker presumed dead).", "counter", float64(m.leasesExpired.Load())},
		{"sdiqd_lease_requeues_total", "Jobs re-queued after a failed, expired or rejected lease.", "counter", float64(m.leaseRequeues.Load())},
		{"sdiqd_jobs_remote_total", "Jobs completed by remote workers (validated uploads).", "counter", float64(m.jobsRemote.Load())},
		{"sdiqd_jobs_local_total", "Jobs executed in-process (no fleet, or fallback).", "counter", float64(m.jobsLocal.Load())},
		{"sdiqd_jobs_fellback_total", "Jobs reclaimed from the fleet for local execution.", "counter", float64(m.jobsFellBack.Load())},
		{"sdiqd_worker_job_failures_total", "Worker-reported execution errors.", "counter", float64(m.workerJobFailures.Load())},
		{"sdiqd_results_rejected_total", "Uploads rejected by JobKey/identity validation.", "counter", float64(m.resultsRejected.Load())},
		{"sdiqd_late_uploads_total", "Uploads against expired or unknown leases, discarded.", "counter", float64(m.lateUploads.Load())},
		{"sdiqd_campaigns_deleted_total", "Campaigns dropped from the registry via DELETE.", "counter", float64(m.campaignsDeleted.Load())},
		{"sdiqd_campaigns_recovered_total", "Campaigns resumed from durable state at boot.", "counter", float64(m.campaignsRecovered.Load())},
		{"sdiqd_campaigns_evicted_total", "Finished campaigns evicted by the registry TTL.", "counter", float64(m.campaignsEvicted.Load())},
		{"sdiqd_result_cache_evictions_total", "Result-cache entries evicted by the byte bound.", "counter", float64(m.cacheEvictions.Load())},
		{"sdiqd_wal_appends_total", "Job transitions appended to campaign write-ahead logs.", "counter", float64(m.walAppends.Load())},
		{"sdiqd_worker_reconnects_total", "Worker re-registrations after losing the coordinator.", "counter", float64(m.workerReconnects.Load())},
		{"sdiqd_auth_failures_total", "Requests refused with 401/403 (bad token or wrong role).", "counter", float64(m.authFailures.Load())},
	}
}

// writeRows emits rows in the Prometheus text exposition format.
func writeRows(w http.ResponseWriter, rows []row) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", r.name, r.help, r.name, r.typ, r.name, r.value)
	}
}

// labelRow is one Prometheus sample carrying a label set (the
// per-tenant rows). labels is pre-rendered, e.g. `{tenant="alice"}`.
type labelRow struct {
	name, help, typ string
	labels          string
	value           float64
}

// writeLabelRows emits labeled samples, writing each metric's HELP/TYPE
// header once even when many label sets share the name.
func writeLabelRows(w http.ResponseWriter, rows []labelRow) {
	seen := make(map[string]bool, len(rows))
	for _, r := range rows {
		if !seen[r.name] {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", r.name, r.help, r.name, r.typ)
			seen[r.name] = true
		}
		fmt.Fprintf(w, "%s%s %g\n", r.name, r.labels, r.value)
	}
}
