package serve

import (
	"errors"
	"io"
	"io/fs"
	"net/http"
)

// Checkpoint artifact shipping: workers GET the sweep's shared warm
// state instead of re-warming, and PUT artifacts they generated so the
// rest of the grid (and the server's own local fallback) can resume
// from them. Artifacts are opaque content-addressed blobs here; the
// store validates keys and container headers, and the dispatcher gates
// uploads to keys it actually handed out in leases.

// maxArtifactBytes bounds a PUT body. Artifacts are gzip streams of
// per-window state — tens of megabytes for realistic regimes — so a
// generous fixed cap protects the server without constraining real use.
const maxArtifactBytes = 1 << 30

func (s *Server) handleCkptGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.ckpt == nil {
		writeError(w, http.StatusNotFound, "no checkpoint store")
		return
	}
	// Reads route through the store the key's lease granted — under
	// tenant isolation that is the owning tenant's store, and a key the
	// server never leased names nothing a worker has business fetching.
	st := s.ckpt
	if granted, ok := s.disp.grantedStore(key); ok {
		st = granted
	} else if s.cfg.TenantIsolation {
		writeError(w, http.StatusNotFound, "no artifact %.12s…", key)
		return
	}
	data, err := st.ReadRaw(key)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no artifact %.12s…", key)
			return
		}
		writeError(w, http.StatusInternalServerError, "reading artifact: %v", err)
		return
	}
	s.met.ckptBytesShipped.Add(int64(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleCkptPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.ckpt == nil {
		writeError(w, http.StatusNotFound, "no checkpoint store")
		return
	}
	st, ok := s.disp.grantedStore(key)
	if !ok || st == nil {
		// Only keys the server itself named in a lease are writable:
		// anything else is a confused or hostile client.
		writeError(w, http.StatusForbidden, "artifact key %.12s… was never leased", key)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading artifact body: %v", err)
		return
	}
	if err := st.WriteRaw(key, data); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "artifact rejected: %v", err)
		return
	}
	s.met.ckptBytesShipped.Add(int64(len(data)))
	w.WriteHeader(http.StatusNoContent)
}
