package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/auth"
)

// Authentication middleware. With Config.Auth unset every wrapper is a
// pass-through and the service behaves exactly as before (identity from
// the X-Sdiq-Client header, fleet open). With Config.Auth set, every
// /v1/* route demands a bearer token mapping to a principal of the
// route's role: campaign endpoints (submit, list, status, events,
// export, delete) are tenant-only; the worker protocol (register,
// lease, heartbeat, result) and the checkpoint endpoints are
// worker-only; /metrics accepts any valid token or none; /healthz stays
// open for load balancers.

// principalKey carries the authenticated principal in the request
// context.
type principalKey struct{}

// principalFrom returns the principal the middleware authenticated.
func principalFrom(r *http.Request) (auth.Principal, bool) {
	p, ok := r.Context().Value(principalKey{}).(auth.Principal)
	return p, ok
}

// bearerToken extracts the Authorization bearer credential. present is
// false when no Authorization header was sent; a present header that is
// not a bearer credential is a malformed error.
func bearerToken(r *http.Request) (token string, present bool, err error) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", false, nil
	}
	scheme, rest, found := strings.Cut(h, " ")
	if !found || !strings.EqualFold(scheme, "Bearer") || strings.TrimSpace(rest) == "" {
		return "", true, fmt.Errorf("malformed Authorization header (want \"Bearer <token>\")")
	}
	return strings.TrimSpace(rest), true, nil
}

// writeUnauthorized answers 401 with the structured error body plus the
// challenge header the status code requires.
func writeUnauthorized(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="sdiqd"`)
	writeError(w, http.StatusUnauthorized, format, args...)
}

// authenticate resolves the request's token against the token file,
// answering 401 itself on failure. ok is false when the response has
// been written.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (auth.Principal, bool) {
	token, present, err := bearerToken(r)
	if err != nil {
		s.met.authFailures.Add(1)
		writeUnauthorized(w, "%v", err)
		return auth.Principal{}, false
	}
	if !present {
		s.met.authFailures.Add(1)
		writeUnauthorized(w, "authentication required")
		return auth.Principal{}, false
	}
	p, found := s.cfg.Auth.Lookup(token)
	if !found {
		s.met.authFailures.Add(1)
		writeUnauthorized(w, "unknown token")
		return auth.Principal{}, false
	}
	return p, true
}

// requireRole gates a handler on an authenticated principal of the
// given role (401 no/bad token, 403 wrong role). A no-op when auth is
// off.
func (s *Server) requireRole(role auth.Role, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Auth == nil {
			h(w, r)
			return
		}
		p, ok := s.authenticate(w, r)
		if !ok {
			return
		}
		if p.Role != role {
			s.met.authFailures.Add(1)
			writeError(w, http.StatusForbidden, "principal %q has role %q, endpoint requires %q", p.Name, p.Role, role)
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), principalKey{}, p)))
	}
}

// optionalAuth admits requests with any valid token or none at all, but
// still 401s a token that is presented and wrong — a scraper with a
// rotated-out credential should hear about it, not silently degrade.
func (s *Server) optionalAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Auth == nil {
			h(w, r)
			return
		}
		token, present, err := bearerToken(r)
		if err != nil {
			s.met.authFailures.Add(1)
			writeUnauthorized(w, "%v", err)
			return
		}
		if !present {
			h(w, r)
			return
		}
		p, found := s.cfg.Auth.Lookup(token)
		if !found {
			s.met.authFailures.Add(1)
			writeUnauthorized(w, "unknown token")
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), principalKey{}, p)))
	}
}

// clientOf resolves the submitting client's identity for quotas,
// ownership and durable metadata. With auth on it is the authenticated
// principal, never a header. With auth off it is the X-Sdiq-Client
// header when present (validated — the name flows into quota maps and,
// under tenant isolation, cache paths), else a sanitized host:port of
// the remote address: keeping the port means two NAT'd clients behind
// one address get separate quota buckets instead of sharing one, and a
// restart-reassigned address does not inherit a stranger's.
func (s *Server) clientOf(r *http.Request) (string, error) {
	if s.cfg.Auth != nil {
		p, ok := principalFrom(r)
		if !ok {
			// The middleware always runs first on authed routes; reaching
			// here is a programming error, not a client mistake.
			return "", fmt.Errorf("no authenticated principal on request")
		}
		return p.Name, nil
	}
	if id := r.Header.Get("X-Sdiq-Client"); id != "" {
		if !auth.ValidName(id) {
			return "", fmt.Errorf("invalid client id %q (want [a-z0-9._-]{1,64})", id)
		}
		return id, nil
	}
	return sanitizeClient(r.RemoteAddr), nil
}

// sanitizeClient maps an arbitrary string (a remote host:port) into the
// principal-name charset so it is safe in quota maps, metrics labels
// and tenant paths.
func sanitizeClient(addr string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(addr) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 64 {
			break
		}
	}
	out := b.String()
	if !auth.ValidName(out) {
		return "unknown"
	}
	return out
}

// ownsCampaign reports whether the request's principal may see rc. With
// auth off everyone sees everything (the pre-auth service behaviour);
// with auth on a tenant sees only its own campaigns.
func (s *Server) ownsCampaign(r *http.Request, rc *campaignRun) bool {
	if s.cfg.Auth == nil {
		return true
	}
	p, ok := principalFrom(r)
	return ok && p.Name == rc.client
}
