// Checkpoint store integration: artifact shipping endpoints, DELETE-time
// garbage collection, and fleet-wide warm-state sharing. The sharing test
// ends on the same oracle as the failure suite — a remote campaign that
// resumed from shipped artifacts must export byte-identically to a plain
// local run — and the whole file runs under -race in CI.
package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/worker"
)

// sampledSpec is a small sampled sweep: benchmarks x techniques x an IQ
// axis whose cells share warming identities.
func sampledSpec(name string, benches []string, iqEntries ...int) campaign.Spec {
	spec := campaign.DefaultSpec(20_000)
	spec.Name = name
	spec.Benchmarks = benches
	spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
	spec.Axes = []campaign.Axis{{Name: "iq.entries", Values: iqEntries}}
	spec.Sampling = &campaign.Sampling{Window: 500, Period: 4000, Warmup: 1000, DetailWarmup: 250}
	return spec
}

// rawCkpt issues a bare HTTP request against the checkpoint endpoints,
// returning status and body (no client-side error mapping).
func rawCkpt(t *testing.T, cl *Client, method, key string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, cl.Base+"/v1/checkpoints/"+key, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// grantKey marks key as leased, the precondition for uploads.
func grantKey(s *Server, key string) {
	s.disp.mu.Lock()
	s.disp.ckptGranted[key] = s.ckpt
	s.disp.mu.Unlock()
}

func TestCheckpointEndpoints(t *testing.T) {
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), CkptDir: t.TempDir(), Workers: 2})
	key := "1111222233334444555566667777888899990000aaaabbbbccccddddeeeeffff"

	if code, _ := rawCkpt(t, cl, http.MethodGet, key, nil); code != http.StatusNotFound {
		t.Errorf("GET missing artifact = %d, want 404", code)
	}
	if code, _ := rawCkpt(t, cl, http.MethodGet, "..%2F..%2Fetc%2Fpasswd", nil); code != http.StatusNotFound {
		t.Errorf("GET traversal key = %d, want 404", code)
	}
	// An upload for a key the server never leased is refused outright.
	if code, _ := rawCkpt(t, cl, http.MethodPut, key, []byte("data")); code != http.StatusForbidden {
		t.Errorf("PUT unleased key = %d, want 403", code)
	}

	// Once granted, the container is still validated before publishing.
	grantKey(s, key)
	if code, _ := rawCkpt(t, cl, http.MethodPut, key, []byte("not an artifact")); code != http.StatusUnprocessableEntity {
		t.Errorf("PUT garbage = %d, want 422", code)
	}
	if s.ckpt.Has(key) {
		t.Fatal("garbage upload was published")
	}

	// A genuine artifact round-trips: PUT, then GET returns the bytes.
	side, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := side.Create(key, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(ckpt.Trailer{TotalReal: 1000}); err != nil {
		t.Fatal(err)
	}
	artifact, err := side.ReadRaw(key)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := rawCkpt(t, cl, http.MethodPut, key, artifact); code != http.StatusNoContent {
		t.Errorf("PUT artifact = %d, want 204", code)
	}
	// Re-upload of a published key is first-writer-wins, not an error.
	if code, _ := rawCkpt(t, cl, http.MethodPut, key, artifact); code != http.StatusNoContent {
		t.Errorf("second PUT = %d, want 204", code)
	}
	code, got := rawCkpt(t, cl, http.MethodGet, key, nil)
	if code != http.StatusOK || !bytes.Equal(got, artifact) {
		t.Errorf("GET after PUT = %d, %d bytes; want 200 with the uploaded %d bytes",
			code, len(got), len(artifact))
	}

	text := fetchMetrics(t, cl)
	if v := metricValue(t, text, "sdiqd_ckpt_artifacts"); v != 1 {
		t.Errorf("sdiqd_ckpt_artifacts = %g, want 1", v)
	}
	if v := metricValue(t, text, "sdiqd_ckpt_bytes_shipped_total"); v < float64(2*len(artifact)) {
		t.Errorf("sdiqd_ckpt_bytes_shipped_total = %g, want >= %d (one PUT + one GET)",
			v, 2*len(artifact))
	}
}

func TestCheckpointEndpointsWithoutStore(t *testing.T) {
	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	key := "1111222233334444555566667777888899990000aaaabbbbccccddddeeeeffff"
	if code, _ := rawCkpt(t, cl, http.MethodGet, key, nil); code != http.StatusNotFound {
		t.Errorf("GET without store = %d, want 404", code)
	}
	if code, _ := rawCkpt(t, cl, http.MethodPut, key, []byte("x")); code != http.StatusNotFound {
		t.Errorf("PUT without store = %d, want 404", code)
	}
}

// TestDeleteEvictsOrphanedArtifacts: DELETE of a campaign evicts the
// artifacts only it references; anything a surviving campaign still
// names stays published.
func TestDeleteEvictsOrphanedArtifacts(t *testing.T) {
	s, cl := startServer(t, Config{CacheDir: t.TempDir(), CkptDir: t.TempDir(), Workers: 2})
	ctx := context.Background()

	// A references gzip's two warm classes (plain, noop); B references
	// the same two — the IQ axis is excluded from the key, so a different
	// sweep point shares them — plus mcf's two.
	if _, err := cl.Run(ctx, sampledSpec("ckpt-gc-a", []string{"gzip"}, 48)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ctx, sampledSpec("ckpt-gc-b", []string{"gzip", "mcf"}, 64)); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.ckpt.DiskStat(); n != 4 {
		t.Fatalf("%d artifacts after both campaigns, want 4 (gzip+mcf x plain+noop)", n)
	}

	// Campaign ids are sequential; B is the second submission. Deleting
	// it must evict only mcf's artifacts: gzip's are still A's.
	if err := cl.Delete(ctx, "c0002"); err != nil {
		t.Fatalf("delete campaign B: %v", err)
	}
	if n, _ := s.ckpt.DiskStat(); n != 2 {
		t.Fatalf("%d artifacts after deleting B, want 2 — gzip is still referenced by A", n)
	}
	if err := cl.Delete(ctx, "c0001"); err != nil {
		t.Fatalf("delete campaign A: %v", err)
	}
	if n, _ := s.ckpt.DiskStat(); n != 0 {
		t.Fatalf("%d artifacts after deleting both campaigns, want 0", n)
	}
	if v := metricValue(t, fetchMetrics(t, cl), "sdiqd_ckpt_evicted_total"); v != 4 {
		t.Errorf("sdiqd_ckpt_evicted_total = %g, want 4", v)
	}
}

// TestWorkerCheckpointSharing is the distributed acceptance gate: a
// sampled sweep executed by two remote workers, each with its own local
// checkpoint store, must ship warm state through the server (generate
// once, fetch everywhere) and still export byte-identically to a plain
// local warm-from-scratch run.
func TestWorkerCheckpointSharing(t *testing.T) {
	s, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		CkptDir:      t.TempDir(),
		Workers:      2,
		LeaseTTL:     2 * time.Second,
		OfferTimeout: 30 * time.Second,
		WorkerTTL:    60 * time.Second,
		JobRetries:   2,
	})
	ctx := context.Background()
	spec := sampledSpec("ckpt-fleet", []string{"gzip"}, 48, 80)

	startWorker(t, cl.Base, "wa", 1, func(w *worker.Worker) { w.Ckpt = t.TempDir() })
	startWorker(t, cl.Base, "wb", 1, func(w *worker.Worker) { w.Ckpt = t.TempDir() })
	waitMetric(t, cl, "sdiqd_workers_connected", 2)

	rs, err := cl.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var remoteCSV bytes.Buffer
	if err := rs.WriteCSV(&remoteCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteCSV.Bytes(), localCSV(t, spec)) {
		t.Error("fleet run with checkpoint sharing is not byte-identical to a local warm-from-scratch run")
	}

	text := fetchMetrics(t, cl)
	if v := metricValue(t, text, "sdiqd_jobs_remote_total"); v != 4 {
		t.Errorf("sdiqd_jobs_remote_total = %g, want 4 — the fleet must run the whole grid", v)
	}
	// The sweep has two warming identities (plain, noop); workers must
	// have pushed generated artifacts to the server.
	if n, _ := s.ckpt.DiskStat(); n != 2 {
		t.Errorf("%d artifacts on the server, want 2 (one per warm class)", n)
	}
	if v := metricValue(t, text, "sdiqd_ckpt_bytes_shipped_total"); v <= 0 {
		t.Errorf("sdiqd_ckpt_bytes_shipped_total = %g, want > 0 — no artifact ever crossed the wire", v)
	}
}
