package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Event is one progress record of a campaign: its submission, every job
// state transition, and its completion. Events are totally ordered per
// campaign (Seq starts at 0) and are replayed from the beginning to
// every stream subscriber, so a client that connects late still sees
// the whole history.
type Event struct {
	Seq      int       `json:"seq"`
	Time     time.Time `json:"time"`
	Type     string    `json:"type"` // "submitted", "job", "done"
	Campaign string    `json:"campaign"`
	// Job carries the transition for "job" events.
	Job *campaign.JobStatus `json:"job,omitempty"`
	// Status summarises progress (without the per-job list).
	Status *campaign.Status `json:"status,omitempty"`
	// Error is set on "done" events of failed campaigns.
	Error string `json:"error,omitempty"`
}

// Event types.
const (
	EventSubmitted = "submitted"
	EventJob       = "job"
	EventDone      = "done"
)

// hub is a per-campaign append-only event log with broadcast: publish
// appends and wakes every waiting subscriber; subscribers read the log
// by index so no event is ever dropped or reordered.
type hub struct {
	mu     sync.Mutex
	events []Event
	closed bool
	wake   chan struct{} // closed and replaced on every publish/close
}

func newHub() *hub {
	return &hub{wake: make(chan struct{})}
}

// publish stamps and appends ev. Publishing after close is a no-op (the
// campaign is over; late stragglers have nothing to say).
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev.Seq = len(h.events)
	ev.Time = time.Now().UTC()
	h.events = append(h.events, ev)
	close(h.wake)
	h.wake = make(chan struct{})
}

// close marks the log complete and wakes all subscribers one last time.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.wake)
	h.wake = make(chan struct{})
}

// since returns the events at index >= from, whether the log is
// complete, and a channel that signals the next change.
func (h *hub) since(from int) ([]Event, bool, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var evs []Event
	if from < len(h.events) {
		evs = h.events[from:len(h.events):len(h.events)]
	}
	return evs, h.closed, h.wake
}

// streamEvents writes a campaign's event log to w as it grows — NDJSON
// (one JSON event per line) by default, server-sent events when the
// client asks via Accept: text/event-stream or ?format=sse — returning
// when the campaign completes or the client goes away.
func streamEvents(w http.ResponseWriter, r *http.Request, h *hub) {
	sse := r.URL.Query().Get("format") == "sse" ||
		r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		evs, closed, wake := h.since(next)
		for _, ev := range evs {
			blob, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, blob)
			} else {
				fmt.Fprintf(w, "%s\n", blob)
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed && len(evs) == 0 {
			return
		}
		if closed {
			continue // drain whatever landed between since() calls
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
