package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Event is one progress record of a campaign: its submission, every job
// state transition, and its completion. Events are totally ordered per
// campaign (Seq starts at 0) and are replayed from the beginning to
// every stream subscriber, so a client that connects late still sees
// the whole history.
type Event struct {
	Seq      int       `json:"seq"`
	Time     time.Time `json:"time"`
	Type     string    `json:"type"` // "submitted", "job", "done"
	Campaign string    `json:"campaign"`
	// Job carries the transition for "job" events.
	Job *campaign.JobStatus `json:"job,omitempty"`
	// Status summarises progress (without the per-job list).
	Status *campaign.Status `json:"status,omitempty"`
	// Error is set on "done" events of failed campaigns.
	Error string `json:"error,omitempty"`
}

// Event types. "snapshot" is synthetic: it replaces a compacted prefix
// of the log with each folded job's latest status (in Status.Jobs), so
// late joiners replay O(jobs + recent tail) instead of O(transitions).
const (
	EventSubmitted = "submitted"
	EventJob       = "job"
	EventDone      = "done"
	EventSnapshot  = "snapshot"
)

// defaultCompactAfter bounds the in-memory tail of a campaign's event
// log before it is folded into a snapshot. Large enough that small
// campaigns never compact (their full history stays replayable event by
// event), small enough that a million-job sweep doesn't hold — or
// replay — a million transitions.
const defaultCompactAfter = 4096

// hub is a per-campaign append-only event log with broadcast: publish
// appends and wakes every waiting subscriber; subscribers read the log
// by sequence number so no event is ever dropped or reordered. Once the
// log outgrows compactAfter, the older half is folded into a single
// snapshot event; replay then serves snapshot + tail.
type hub struct {
	mu           sync.Mutex
	compactAfter int
	total        int    // campaign job count, for snapshot Pending math
	base         int    // Seq of events[0]; earlier history lives in snap
	snap         *Event // folded prefix (nil until first compaction)
	events       []Event
	closed       bool
	wake         chan struct{} // closed and replaced on every publish/close
}

func newHub(total, compactAfter int) *hub {
	if compactAfter <= 0 {
		compactAfter = defaultCompactAfter
	}
	return &hub{total: total, compactAfter: compactAfter, wake: make(chan struct{})}
}

// publish stamps and appends ev. Publishing after close is a no-op (the
// campaign is over; late stragglers have nothing to say).
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev.Seq = h.base + len(h.events)
	ev.Time = time.Now().UTC()
	h.events = append(h.events, ev)
	if len(h.events) > h.compactAfter {
		h.compactLocked()
	}
	close(h.wake)
	h.wake = make(chan struct{})
}

// compactLocked folds all but the newest compactAfter/2 events into the
// snapshot: per job, only the latest status survives. The tail keeps
// real events so attached subscribers never see a synthetic snapshot
// mid-stream — only late joiners start from one. The just-published
// newest event is always in the kept tail, so a "done" event is never
// folded away (close follows it immediately).
func (h *hub) compactLocked() {
	keep := h.compactAfter / 2
	if keep < 1 {
		keep = 1
	}
	if len(h.events) <= keep {
		return
	}
	fold := h.events[:len(h.events)-keep]

	// Seed the roster from the previous snapshot, then overlay the
	// folded transitions; first-touch order keeps replay deterministic.
	var roster []campaign.JobStatus
	index := make(map[string]int)
	if h.snap != nil && h.snap.Status != nil {
		roster = append(roster, h.snap.Status.Jobs...)
		for i, js := range roster {
			index[js.ID] = i
		}
	}
	for _, ev := range fold {
		if ev.Job == nil {
			continue // submitted/done markers fold into the status itself
		}
		if i, ok := index[ev.Job.ID]; ok {
			roster[i] = *ev.Job
		} else {
			index[ev.Job.ID] = len(roster)
			roster = append(roster, *ev.Job)
		}
	}

	st := &campaign.Status{Total: h.total, Pending: h.total - len(roster), Jobs: roster}
	for _, js := range roster {
		switch js.State {
		case campaign.JobPending:
			st.Pending++
		case campaign.JobRunning:
			st.Running++
		case campaign.JobDone:
			st.Done++
			switch {
			case js.Dedup:
				st.DedupHits++
			case js.Cached:
				st.CacheHits++
			default:
				st.Executed++
			}
		case campaign.JobFailed:
			st.Failed++
		case campaign.JobSkipped:
			st.Skipped++
		}
	}

	last := fold[len(fold)-1]
	h.snap = &Event{
		Seq:      last.Seq,
		Time:     last.Time,
		Type:     EventSnapshot,
		Campaign: last.Campaign,
		Status:   st,
	}
	h.base += len(fold)
	h.events = append([]Event(nil), h.events[len(fold):]...)
}

// close marks the log complete and wakes all subscribers one last time.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.wake)
	h.wake = make(chan struct{})
}

// since returns the events with Seq >= from, the cursor to resume from,
// whether the log is complete, and a channel signalling the next
// change. A cursor that predates the compacted tail gets the snapshot
// event first — the replayed history is equivalent, just pre-folded.
func (h *hub) since(from int) (evs []Event, next int, closed bool, wake <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < h.base {
		if h.snap != nil {
			evs = append(evs, *h.snap)
		}
		evs = append(evs, h.events...)
		return evs, h.base + len(h.events), h.closed, h.wake
	}
	if i := from - h.base; i < len(h.events) {
		evs = h.events[i:len(h.events):len(h.events)]
	}
	return evs, from + len(evs), h.closed, h.wake
}

// streamEvents writes a campaign's event log to w as it grows — NDJSON
// (one JSON event per line) by default, server-sent events when the
// client asks via Accept: text/event-stream or ?format=sse — returning
// when the campaign completes or the client goes away.
func streamEvents(w http.ResponseWriter, r *http.Request, h *hub) {
	sse := r.URL.Query().Get("format") == "sse" ||
		r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		evs, cursor, closed, wake := h.since(next)
		for _, ev := range evs {
			blob, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, blob)
			} else {
				fmt.Fprintf(w, "%s\n", blob)
			}
		}
		next = cursor
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed && len(evs) == 0 {
			return
		}
		if closed {
			continue // drain whatever landed between since() calls
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
