package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
)

// Client talks to a campaign service. It is what `sdiq -remote` uses:
// submit the spec, follow the event stream, fetch the finished export.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// ID identifies this client for the server's per-client quotas
	// (sent as X-Sdiq-Client when non-empty). Against a server running
	// with -auth the header is ignored: identity is the token's
	// principal.
	ID string
	// Token is a tenant-role bearer credential, sent as
	// "Authorization: Bearer" when non-empty — required against a server
	// running with -auth.
	Token string
	// OnEvent, when non-nil, observes every event Run receives — the
	// hook CLI progress output hangs off.
	OnEvent func(Event)

	// RetryBase/RetryMax shape the jittered exponential backoff Run uses
	// to survive server restarts (defaults 200ms / 5s). MaxOffline
	// bounds how long Run keeps retrying an unreachable server before
	// giving up (default 2m).
	RetryBase  time.Duration
	RetryMax   time.Duration
	MaxOffline time.Duration
}

// HTTPError is an answered non-2xx API response. Errors from the client
// are *HTTPError whenever the server replied at all; transport failures
// stay plainly wrapped — the distinction is what Run's reconnect logic
// keys off (an answered 404 means the server is alive but forgot the
// campaign; a refused connection means it may be restarting).
type HTTPError struct {
	Code   int
	Method string
	Path   string
	Msg    string // server-provided error body, may be empty
	Status string // e.g. "404 Not Found"
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("serve: %s %s: %s (%s)", e.Method, e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("serve: %s %s: %s", e.Method, e.Path, e.Status)
}

// httpStatus returns err's status code when it is an *HTTPError, 0 for
// transport errors.
func httpStatus(err error) int {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Code
	}
	return 0
}

// backoff returns the nth (0-based) retry delay: exponential from
// RetryBase, capped at RetryMax, with ±25% jitter.
func (c *Client) backoff(n int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	ceil := c.RetryMax
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	d := base
	for i := 0; i < n && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return d*3/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

func (c *Client) maxOffline() time.Duration {
	if c.MaxOffline > 0 {
		return c.MaxOffline
	}
	return 2 * time.Minute
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ID != "" {
		req.Header.Set("X-Sdiq-Client", c.ID)
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		var apiErr apiError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr)
		return nil, &HTTPError{
			Code: resp.StatusCode, Method: method, Path: path,
			Msg: apiErr.Error, Status: resp.Status,
		}
	}
	return resp, nil
}

// Submit posts a campaign spec and returns the server's handle.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (Submitted, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return Submitted{}, fmt.Errorf("serve: encoding spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/campaigns", bytes.NewReader(blob))
	if err != nil {
		return Submitted{}, err
	}
	defer resp.Body.Close()
	var sub Submitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return Submitted{}, fmt.Errorf("serve: decoding submission: %w", err)
	}
	return sub, nil
}

// Status fetches a campaign's snapshot.
func (c *Client) Status(ctx context.Context, id string) (CampaignInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil)
	if err != nil {
		return CampaignInfo{}, err
	}
	defer resp.Body.Close()
	var info CampaignInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return CampaignInfo{}, fmt.Errorf("serve: decoding status: %w", err)
	}
	return info, nil
}

// Stream follows a campaign's NDJSON event stream from the beginning,
// calling fn for every event until the stream ends (the campaign is
// done) or fn returns an error.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("serve: bad event %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Export fetches a finished campaign's export in the given format
// ("csv" or "json") — the bytes the CLI's local -export would write.
func (c *Client) Export(ctx context.Context, id, format string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/export?format="+format, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Delete drops a finished campaign from the server's registry (its
// events and results are gone; the disk cache keeps the simulations).
func (c *Client) Delete(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// ResultSet fetches and decodes a finished campaign.
func (c *Client) ResultSet(ctx context.Context, id string) (*campaign.ResultSet, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/export?format=json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return campaign.ReadJSON(resp.Body)
}

// Run is the remote analogue of Engine.Run: submit the spec, follow its
// progress (relaying to OnEvent), and return the finished ResultSet.
// Run survives server restarts: a broken stream is re-opened with
// jittered backoff (events already relayed are filtered by sequence
// number; a durable server replays history, possibly pre-folded into a
// snapshot event), a server that came back with no memory of the
// campaign gets the spec resubmitted (the shared result cache makes the
// re-run cheap), and an unreachable server is retried for up to
// MaxOffline before Run gives up. A failed campaign returns its
// server-side error.
func (c *Client) Run(ctx context.Context, spec campaign.Spec) (*campaign.ResultSet, error) {
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}

	var done *Event
	lastSeq := -1
	var offlineSince time.Time
	fails := 0
	for done == nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		_ = c.Stream(ctx, sub.ID, func(ev Event) error {
			if ev.Type == EventSnapshot {
				// A compaction snapshot stands in for folded history;
				// relay it even when it overlaps what we saw live.
				if ev.Seq > lastSeq {
					lastSeq = ev.Seq
				}
			} else {
				if ev.Seq <= lastSeq {
					return nil // replayed history we already relayed
				}
				lastSeq = ev.Seq
			}
			if c.OnEvent != nil {
				c.OnEvent(ev)
			}
			if ev.Type == EventDone {
				ev := ev
				done = &ev
			}
			return nil
		})
		if done != nil {
			// The stream's transport error is deliberately dropped once
			// the done event is in hand: the outcome is known, and the
			// export fetch below stands on its own connection.
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The stream broke mid-campaign (server restart, network hiccup).
		// Probe the status to decide how to resume.
		info, serr := c.Status(ctx, sub.ID)
		switch {
		case serr == nil:
			offlineSince, fails = time.Time{}, 0
			if info.Done {
				if info.Error != "" {
					return nil, fmt.Errorf("%w: %s", errCampaignFailed, info.Error)
				}
				done = &Event{Type: EventDone, Campaign: sub.ID}
			}
			continue // server is alive: re-attach the stream
		case httpStatus(serr) == http.StatusNotFound:
			// The server restarted without durable state — the campaign
			// is gone. Resubmit and follow the new one from scratch.
			if sub, err = c.Submit(ctx, spec); err != nil {
				return nil, err
			}
			lastSeq, offlineSince, fails = -1, time.Time{}, 0
			continue
		case httpStatus(serr) != 0:
			return nil, serr // answered with an error waiting cannot fix
		}
		// Transport error: the server may be restarting. Back off, bounded.
		if offlineSince.IsZero() {
			offlineSince = time.Now()
		}
		if time.Since(offlineSince) > c.maxOffline() {
			return nil, fmt.Errorf("serve: server unreachable for %v: %w", c.maxOffline(), serr)
		}
		fails++
		select {
		case <-time.After(c.backoff(fails - 1)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if done.Error != "" {
		return nil, fmt.Errorf("%w: %s", errCampaignFailed, done.Error)
	}

	// Fetch the export, surviving a restart racing it: a just-recovered
	// server briefly re-runs the campaign from cache (409 while it
	// finishes) or may still be coming up (transport error).
	offlineSince, fails = time.Time{}, 0
	for {
		rs, err := c.ResultSet(ctx, sub.ID)
		if err == nil {
			return rs, nil
		}
		if code := httpStatus(err); code != 0 && code != http.StatusConflict {
			return nil, err
		}
		if offlineSince.IsZero() {
			offlineSince = time.Now()
		}
		if time.Since(offlineSince) > c.maxOffline() {
			return nil, err
		}
		fails++
		select {
		case <-time.After(c.backoff(fails - 1)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
