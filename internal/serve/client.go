package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
)

// Client talks to a campaign service. It is what `sdiq -remote` uses:
// submit the spec, follow the event stream, fetch the finished export.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// ID identifies this client for the server's per-client quotas
	// (sent as X-Sdiq-Client when non-empty).
	ID string
	// OnEvent, when non-nil, observes every event Run receives — the
	// hook CLI progress output hangs off.
	OnEvent func(Event)
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ID != "" {
		req.Header.Set("X-Sdiq-Client", c.ID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		var apiErr apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("serve: %s %s: %s (%s)", method, path, apiErr.Error, resp.Status)
		}
		return nil, fmt.Errorf("serve: %s %s: %s", method, path, resp.Status)
	}
	return resp, nil
}

// Submit posts a campaign spec and returns the server's handle.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (Submitted, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return Submitted{}, fmt.Errorf("serve: encoding spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/campaigns", bytes.NewReader(blob))
	if err != nil {
		return Submitted{}, err
	}
	defer resp.Body.Close()
	var sub Submitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return Submitted{}, fmt.Errorf("serve: decoding submission: %w", err)
	}
	return sub, nil
}

// Status fetches a campaign's snapshot.
func (c *Client) Status(ctx context.Context, id string) (CampaignInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil)
	if err != nil {
		return CampaignInfo{}, err
	}
	defer resp.Body.Close()
	var info CampaignInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return CampaignInfo{}, fmt.Errorf("serve: decoding status: %w", err)
	}
	return info, nil
}

// Stream follows a campaign's NDJSON event stream from the beginning,
// calling fn for every event until the stream ends (the campaign is
// done) or fn returns an error.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("serve: bad event %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Export fetches a finished campaign's export in the given format
// ("csv" or "json") — the bytes the CLI's local -export would write.
func (c *Client) Export(ctx context.Context, id, format string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/export?format="+format, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Delete drops a finished campaign from the server's registry (its
// events and results are gone; the disk cache keeps the simulations).
func (c *Client) Delete(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// ResultSet fetches and decodes a finished campaign.
func (c *Client) ResultSet(ctx context.Context, id string) (*campaign.ResultSet, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/export?format=json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return campaign.ReadJSON(resp.Body)
}

// Run is the remote analogue of Engine.Run: submit the spec, follow its
// progress (relaying to OnEvent), and return the finished ResultSet. A
// broken event stream degrades to polling; a failed campaign returns
// its server-side error.
func (c *Client) Run(ctx context.Context, spec campaign.Spec) (*campaign.ResultSet, error) {
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	var done *Event
	// The stream's transport error is deliberately dropped once the
	// done event is in hand: the outcome is known, and the export fetch
	// below stands on its own connection.
	_ = c.Stream(ctx, sub.ID, func(ev Event) error {
		if c.OnEvent != nil {
			c.OnEvent(ev)
		}
		if ev.Type == EventDone {
			ev := ev
			done = &ev
		}
		return nil
	})
	if done == nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The stream broke mid-campaign; fall back to polling status.
		var info CampaignInfo
		for !info.Done {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(200 * time.Millisecond):
			}
			if info, err = c.Status(ctx, sub.ID); err != nil {
				return nil, err
			}
		}
		if info.Error != "" {
			return nil, fmt.Errorf("%w: %s", errCampaignFailed, info.Error)
		}
	} else if done.Error != "" {
		return nil, fmt.Errorf("%w: %s", errCampaignFailed, done.Error)
	}
	return c.ResultSet(ctx, sub.ID)
}
