// Package serve is the campaign service: a long-running HTTP/JSON
// server (cmd/sdiqd) that accepts campaign.Spec submissions from many
// clients, expands and schedules their jobs on one shared bounded
// executor backed by a single on-disk result cache, deduplicates
// identical in-flight jobs fleet-wide (singleflight on the job content
// hash), streams per-job progress as NDJSON or server-sent events, and
// serves finished campaigns through the exact JSON/CSV exporters the
// CLI uses locally — so a server-side export is byte-identical to the
// same spec run with `sdiq -export`.
//
// API (all JSON):
//
//	POST /v1/campaigns               submit a campaign.Spec → 202 {id,...}
//	GET  /v1/campaigns               list campaigns
//	GET  /v1/campaigns/{id}          status snapshot with per-job detail
//	GET  /v1/campaigns/{id}/events   NDJSON stream (?format=sse for SSE)
//	GET  /v1/campaigns/{id}/export   finished ResultSet (?format=csv|json)
//	GET  /metrics                    Prometheus text metrics
//	GET  /healthz                    liveness
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/store"
)

// Config parameterises a Server.
type Config struct {
	// CacheDir is the shared on-disk result cache ("" disables caching,
	// which also disables cross-campaign result reuse — set it).
	CacheDir string
	// CkptDir is the shared checkpoint artifact store ("" disables it):
	// sampled sweep cells then share one functional-warming pass per
	// warming identity instead of each recomputing it, locally and
	// across the worker fleet (artifacts ship over /v1/checkpoints).
	CkptDir string
	// Workers bounds concurrent simulations fleet-wide (the shared
	// executor); 0 means GOMAXPROCS.
	Workers int
	// QuotaPerClient caps campaigns a single client may have active at
	// once; 0 means unlimited.
	QuotaPerClient int

	// Remote worker pool (all zero values take defaults):

	// LeaseTTL is how long a worker's job lease lives without a
	// heartbeat before the worker is presumed dead and the job is
	// re-queued. Default 15s.
	LeaseTTL time.Duration
	// OfferTimeout bounds how long a job waits on the lease queue before
	// it is reclaimed for local execution. Default: LeaseTTL.
	OfferTimeout time.Duration
	// WorkerTTL is the staleness window after which a silent registered
	// worker stops counting as connected. Default: LeaseTTL.
	WorkerTTL time.Duration
	// JobRetries is how many times a job is re-leased after a failed
	// lease (expiry, worker error, rejected upload) before falling back
	// to local execution. Default 2; negative means no retries.
	JobRetries int

	// Durability and state bounds (all zero values take defaults):

	// StateDir roots the durable control-plane state: per-campaign
	// submission records plus a write-ahead log of job-state
	// transitions. "" disables durability — a restart then forgets all
	// campaigns, exactly the pre-durability behaviour.
	StateDir string
	// SnapshotEvery is the WAL-append count between snapshot
	// compactions; 0 means store.DefaultSnapshotEvery.
	SnapshotEvery int
	// EventCompactAfter bounds a campaign's in-memory event tail before
	// older events fold into a snapshot event; 0 means the default
	// (4096). Only tests should need to lower it.
	EventCompactAfter int
	// RegistryTTL evicts finished campaigns from the registry (and their
	// durable state) this long after they finish; 0 keeps them until
	// DELETE.
	RegistryTTL time.Duration
	// CacheMaxBytes bounds the on-disk result cache, evicting least
	// recently used entries; 0 means unbounded.
	CacheMaxBytes int64
	// GCInterval is how often the registry-TTL and cache-size bounds are
	// enforced; 0 means every minute. Irrelevant when neither bound is
	// set.
	GCInterval time.Duration

	// Identity and multi-tenancy:

	// Auth, when non-nil, turns authentication on: every /v1/* request
	// must present a bearer token resolving to a principal of the
	// route's role (tenant for campaign endpoints, worker for the lease
	// and checkpoint protocol), and client identity comes from the
	// authenticated principal, never a header. Nil leaves the service
	// open, exactly the pre-auth behaviour.
	Auth *auth.Authenticator
	// TenantIsolation namespaces the result cache, in-flight dedup and
	// checkpoint store per client: tenants then never share artifacts —
	// each pays for its own simulations — and CacheMaxBytes bounds each
	// tenant's cache separately.
	TenantIsolation bool
}

// Server owns the campaign registry, the shared executor gate, the
// fleet-wide dedup group and the metrics. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg    Config
	gate   campaign.Gate
	flight *campaign.Flight
	met    metrics
	disp   *dispatcher
	ckpt   *ckpt.Store     // nil when CkptDir is unset or unusable
	store  *store.Store    // nil when StateDir is unset or unusable
	rcache *campaign.Cache // GC handle on CacheDir; nil when cache is off

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	draining  bool // guarded by mu so no submission can slip past Drain
	seq       int
	campaigns map[string]*campaignRun
	order     []string
	active    map[string]int // running campaigns per client

	// tenants is per-client accounting plus, under TenantIsolation, each
	// tenant's private stores. Guarded by tmu (not mu: tenant stores are
	// opened lazily on paths that also take mu).
	tmu     sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is one client's accounting and, when isolation is on, its
// private result cache, checkpoint store and dedup group.
type tenantState struct {
	submitted, done, failed int64 // guarded by Server.tmu

	// Isolation-only (nil/zero otherwise):
	flight *campaign.Flight
	ckpt   *ckpt.Store     // may stay nil (no CkptDir, or open failed)
	rcache *campaign.Cache // GC handle on the tenant's cache dir
}

// campaignRun is one submitted campaign's full lifecycle state.
type campaignRun struct {
	id        string
	client    string
	spec      campaign.Spec
	jobs      int
	submitted time.Time
	tracker   *campaign.Tracker
	hub       *hub
	// ckptKeys are the checkpoint artifact keys this campaign's sampled
	// jobs can reference (computed once at submission). DELETE uses them
	// to evict artifacts no remaining campaign references.
	ckptKeys map[string]struct{}
	// wal is the campaign's durable transition log; nil when durability
	// is off (nil is safe to append to).
	wal *store.Log

	mu       sync.Mutex
	done     bool
	finished time.Time
	rs       *campaign.ResultSet
	err      error
}

func (rc *campaignRun) finish(rs *campaign.ResultSet, err error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.done, rc.finished, rc.rs, rc.err = true, time.Now().UTC(), rs, err
}

func (rc *campaignRun) state() (done bool, finished time.Time, rs *campaign.ResultSet, err error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.done, rc.finished, rc.rs, rc.err
}

// New returns a ready Server; callers then serve s.Handler().
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		gate:      campaign.NewGate(workers),
		flight:    &campaign.Flight{},
		met:       metrics{start: time.Now()},
		ctx:       ctx,
		cancel:    cancel,
		campaigns: make(map[string]*campaignRun),
		active:    make(map[string]int),
		tenants:   make(map[string]*tenantState),
	}
	// A store that fails to open degrades to checkpointing-off rather
	// than refusing to serve: the feature is an optimization, not a
	// correctness dependency. But say so — a typo'd -ckpt silently
	// costing the fleet its shared warming is a debugging trap.
	var err error
	ckptRoot := cfg.CkptDir
	if cfg.TenantIsolation && ckptRoot != "" {
		// Tenant stores live under CkptDir/tenants/<client>; the shared
		// store moves aside so its recursive accounting (DiskStat, GC)
		// never reaches into a tenant's namespace.
		ckptRoot = filepath.Join(ckptRoot, "shared")
	}
	if s.ckpt, err = ckpt.Open(ckptRoot); err != nil {
		log.Printf("sdiqd: checkpoint store disabled: %v", err)
	}
	if s.store, err = store.Open(cfg.StateDir, cfg.SnapshotEvery); err != nil {
		log.Printf("sdiqd: durable state disabled: %v", err)
	}
	if s.store != nil && cfg.CacheDir == "" {
		log.Printf("sdiqd: durable state without a result cache: recovered campaigns will re-simulate finished jobs")
	}
	if s.rcache, err = campaign.OpenCache(cfg.CacheDir); err != nil {
		log.Printf("sdiqd: result cache GC disabled: %v", err)
	}
	s.disp = newDispatcher(cfg, s.gate, &s.met, s.ckpt)
	s.recover()
	s.startJanitor()
	return s
}

// recover folds the durable state back into the registry. Campaigns
// that finished cleanly or were still running are resumed — re-running
// the engine turns every already-finished job into a cache hit (the
// cache is the durable home of results; the WAL only proves which jobs
// finished), re-simulates only genuinely unfinished jobs, and rebuilds
// the in-memory ResultSet so exports work again. Campaigns that failed
// terminally come back as tombstones: status, events and the recorded
// error are served, nothing re-runs.
func (s *Server) recover() {
	if s.store == nil {
		return
	}
	recs, err := s.store.Recover()
	if err != nil {
		log.Printf("sdiqd: state recovery (intact campaigns still recovered): %v", err)
	}
	// Registry and quota mutations happen under s.mu, and the resumed
	// campaigns' run goroutines start only after the whole loop: a
	// fast-finishing recovered campaign decrements s.active[client]
	// under the lock, and starting it mid-loop would race the remaining
	// increments — leaking (or double-freeing) quota slots.
	var resumed []*campaignRun
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		for _, rc := range resumed {
			go s.run(rc)
		}
	}()
	for _, rec := range recs {
		if n, ok := campaignSeq(rec.Meta.ID); ok && n > s.seq {
			s.seq = n // never reissue a recovered campaign's ID
		}
		jobs, jerr := rec.Meta.Spec.Jobs()
		if jerr != nil {
			log.Printf("sdiqd: recover %s: spec no longer expands: %v", rec.Meta.ID, jerr)
			continue
		}
		// Durable records from before name validation may carry a client
		// that the grammar now refuses (an IPv6 remote address, say);
		// sanitize before the name reaches quota maps or tenant paths.
		client := rec.Meta.Client
		if !auth.ValidName(client) {
			client = sanitizeClient(client)
		}
		rc := &campaignRun{
			id:        rec.Meta.ID,
			client:    client,
			spec:      rec.Meta.Spec,
			jobs:      len(jobs),
			submitted: rec.Meta.Submitted,
			tracker:   campaign.NewTracker(jobs),
			hub:       newHub(len(jobs), s.cfg.EventCompactAfter),
			ckptKeys:  ckptKeysOf(s.ckptStoreOf(client), jobs),
		}
		s.campaigns[rc.id] = rc
		s.order = append(s.order, rc.id)

		if rec.Snap.Done && rec.Snap.Error != "" {
			// Terminal failure: restore the recorded job states and
			// replay them as events, then close the log. No ResultSet
			// survives a restart, so exports answer 422 with the error —
			// same as they did before the crash.
			rc.tracker.Restore(rec.Snap.Jobs)
			rc.done, rc.finished = true, rec.Snap.Finished
			rc.err = errors.New(rec.Snap.Error)
			rc.hub.publish(Event{Type: EventSubmitted, Campaign: rc.id})
			for i := range rec.Snap.Jobs {
				rc.hub.publish(Event{Type: EventJob, Campaign: rc.id, Job: &rec.Snap.Jobs[i]})
			}
			st := rc.tracker.Snapshot()
			st.Jobs = nil
			rc.hub.publish(Event{Type: EventDone, Campaign: rc.id, Status: &st, Error: rec.Snap.Error})
			rc.hub.close()
			continue
		}

		var rerr error
		if rc.wal, rerr = s.store.Resume(rec); rerr != nil {
			log.Printf("sdiqd: recover %s: wal resume: %v (re-running without durability)", rc.id, rerr)
		}
		s.active[rc.client]++
		s.wg.Add(1)
		s.met.campaignsRecovered.Add(1)
		s.met.campaignsActive.Add(1)
		rc.hub.publish(Event{Type: EventSubmitted, Campaign: rc.id})
		resumed = append(resumed, rc)
	}
}

// campaignSeq parses the numeric suffix of a "c%04d" campaign ID.
func campaignSeq(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "c%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// startJanitor enforces the registry-TTL and cache-size bounds on a
// timer until the server closes. No bounds, no goroutine.
func (s *Server) startJanitor() {
	if s.cfg.RegistryTTL <= 0 && s.cfg.CacheMaxBytes <= 0 {
		return
	}
	interval := s.cfg.GCInterval
	if interval <= 0 {
		interval = time.Minute
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.gcOnce()
			}
		}
	}()
}

// gcOnce applies both state bounds: finished campaigns past the
// registry TTL are dropped (registry, durable state, orphaned
// checkpoint artifacts), and the result cache is trimmed to its byte
// bound, LRU first — per tenant under isolation, so one tenant's churn
// cannot evict another's results.
func (s *Server) gcOnce() {
	if ttl := s.cfg.RegistryTTL; ttl > 0 {
		cutoff := time.Now().Add(-ttl)
		s.mu.Lock()
		var victims []string
		for id, rc := range s.campaigns {
			if done, finished, _, _ := rc.state(); done && finished.Before(cutoff) {
				victims = append(victims, id)
			}
		}
		s.mu.Unlock()
		// Durable state goes first: a crash between the two removals
		// must forget the campaign, not resurrect a half-evicted one.
		for _, id := range victims {
			s.store.Remove(id)
			s.met.campaignsEvicted.Add(1)
		}
		type evictSet struct {
			keys   []string
			client string
		}
		var evict []evictSet
		s.mu.Lock()
		for _, id := range victims {
			if keys, client := s.dropLocked(id); len(keys) > 0 {
				evict = append(evict, evictSet{keys, client})
			}
		}
		s.mu.Unlock()
		for _, e := range evict {
			st := s.ckptStoreOf(e.client)
			for _, k := range e.keys {
				st.Remove(k)
			}
		}
	}
	if max := s.cfg.CacheMaxBytes; max > 0 {
		caches := []*campaign.Cache{s.rcache}
		if s.cfg.TenantIsolation {
			// Each tenant's cache is bounded separately; the root handle
			// would enforce one shared LRU bound across all of them.
			caches = caches[:0]
			s.tmu.Lock()
			for _, ts := range s.tenants {
				if ts.rcache != nil {
					caches = append(caches, ts.rcache)
				}
			}
			s.tmu.Unlock()
		}
		for _, c := range caches {
			if n, _, err := c.GC(max); err != nil {
				log.Printf("sdiqd: result cache gc: %v", err)
			} else if n > 0 {
				s.met.cacheEvictions.Add(int64(n))
			}
		}
	}
}

// tenant returns (creating if needed) the client's accounting record,
// lazily opening its private stores when isolation is on.
func (s *Server) tenant(client string) *tenantState {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	ts, ok := s.tenants[client]
	if !ok {
		ts = &tenantState{}
		if s.cfg.TenantIsolation {
			ts.flight = &campaign.Flight{}
			if s.cfg.CkptDir != "" {
				var err error
				if ts.ckpt, err = ckpt.Open(filepath.Join(s.cfg.CkptDir, "tenants", client)); err != nil {
					log.Printf("sdiqd: tenant %s: checkpoint store disabled: %v", client, err)
				}
			}
			if dir := s.tenantCacheDir(client); dir != "" {
				var err error
				if ts.rcache, err = campaign.OpenCache(dir); err != nil {
					log.Printf("sdiqd: tenant %s: result cache gc disabled: %v", client, err)
				}
			}
		}
		s.tenants[client] = ts
	}
	return ts
}

// tenantCacheDir is where the client's results cache: a per-tenant
// subdirectory under isolation, the shared cache otherwise.
func (s *Server) tenantCacheDir(client string) string {
	if !s.cfg.TenantIsolation || s.cfg.CacheDir == "" {
		return s.cfg.CacheDir
	}
	return filepath.Join(s.cfg.CacheDir, "tenants", client)
}

// ckptStoreOf is the checkpoint store the client's campaigns use.
func (s *Server) ckptStoreOf(client string) *ckpt.Store {
	if !s.cfg.TenantIsolation {
		return s.ckpt
	}
	return s.tenant(client).ckpt
}

// flightOf is the in-flight dedup group the client's campaigns share:
// fleet-wide normally, per-tenant under isolation (cross-tenant dedup
// would hand one tenant another's results).
func (s *Server) flightOf(client string) *campaign.Flight {
	if !s.cfg.TenantIsolation {
		return s.flight
	}
	return s.tenant(client).flight
}

// Handler returns the service's HTTP routes. With Config.Auth set,
// every /v1/* route is gated on a bearer token of the route's role
// (tenant for the campaign surface — SSE and export included — worker
// for the lease protocol and checkpoint shipping); /metrics takes an
// optional token and /healthz stays open for load balancers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.requireRole(auth.RoleTenant, s.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns", s.requireRole(auth.RoleTenant, s.handleList))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.requireRole(auth.RoleTenant, s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.requireRole(auth.RoleTenant, s.handleEvents))
	mux.HandleFunc("GET /v1/campaigns/{id}/export", s.requireRole(auth.RoleTenant, s.handleExport))
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.requireRole(auth.RoleTenant, s.handleDelete))
	mux.HandleFunc("POST /v1/workers", s.requireRole(auth.RoleWorker, s.handleWorkerRegister))
	mux.HandleFunc("DELETE /v1/workers/{id}", s.requireRole(auth.RoleWorker, s.handleWorkerDeregister))
	mux.HandleFunc("POST /v1/leases", s.requireRole(auth.RoleWorker, s.handleLease))
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.requireRole(auth.RoleWorker, s.handleHeartbeat))
	mux.HandleFunc("POST /v1/leases/{id}/result", s.requireRole(auth.RoleWorker, s.handleLeaseResult))
	mux.HandleFunc("GET /v1/checkpoints/{key}", s.requireRole(auth.RoleWorker, s.handleCkptGet))
	mux.HandleFunc("PUT /v1/checkpoints/{key}", s.requireRole(auth.RoleWorker, s.handleCkptPut))
	mux.HandleFunc("GET /metrics", s.optionalAuth(s.handleMetrics))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Drain stops accepting submissions and waits for running campaigns.
// If ctx ends first the remaining campaigns are cancelled (they stop at
// job granularity) and ctx's error is returned. Drain is what SIGTERM
// triggers in cmd/sdiqd. The draining flag flips under the same lock
// handleSubmit registers under, so every accepted campaign is
// guaranteed to be inside the wait group before Drain starts waiting.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels every running campaign immediately.
func (s *Server) Close() { s.cancel() }

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// Submitted is the POST /v1/campaigns response.
type Submitted struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
	// Convenience URLs, relative to the server root.
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	ExportURL string `json:"export_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, "spec expands to no jobs")
		return
	}

	client, cerr := s.clientOf(r)
	if cerr != nil {
		writeError(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	ckptKeys := ckptKeysOf(s.ckptStoreOf(client), jobs)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.campaignsRejected.Add(1)
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if q := s.cfg.QuotaPerClient; q > 0 && s.active[client] >= q {
		s.mu.Unlock()
		s.met.campaignsRejected.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests,
			"client %q already has %d active campaigns (quota %d)", client, q, q)
		return
	}
	s.seq++
	id := fmt.Sprintf("c%04d", s.seq)
	rc := &campaignRun{
		id:        id,
		client:    client,
		spec:      spec,
		jobs:      len(jobs),
		submitted: time.Now().UTC(),
		tracker:   campaign.NewTracker(jobs),
		hub:       newHub(len(jobs), s.cfg.EventCompactAfter),
		ckptKeys:  ckptKeys,
	}
	s.campaigns[id] = rc
	s.order = append(s.order, id)
	s.active[client]++
	// Registered in the wait group before releasing the lock, so a
	// concurrent Drain either rejected this submission or waits for it.
	s.wg.Add(1)
	s.mu.Unlock()

	// Persist the submission before acknowledging it. A WAL that fails
	// to open degrades this campaign to in-memory only — same trade as
	// the checkpoint store: durability is a feature, not a gate.
	var werr error
	if rc.wal, werr = s.store.Create(store.Meta{
		ID: id, Client: client, Submitted: rc.submitted, Jobs: len(jobs), Spec: spec,
	}); werr != nil {
		log.Printf("sdiqd: %s: durable state disabled for this campaign: %v", id, werr)
	}

	s.met.campaignsSubmitted.Add(1)
	s.met.campaignsActive.Add(1)
	ts := s.tenant(client)
	s.tmu.Lock()
	ts.submitted++
	s.tmu.Unlock()
	rc.hub.publish(Event{Type: EventSubmitted, Campaign: id})
	go s.run(rc)

	writeJSON(w, http.StatusAccepted, Submitted{
		ID:        id,
		Jobs:      len(jobs),
		StatusURL: "/v1/campaigns/" + id,
		EventsURL: "/v1/campaigns/" + id + "/events",
		ExportURL: "/v1/campaigns/" + id + "/export",
	})
}

// run executes one campaign on the shared executor, feeding the
// tracker, event hub and metrics.
func (s *Server) run(rc *campaignRun) {
	defer s.wg.Done()
	// Everything tenant-scoped is resolved once per campaign: under
	// isolation the cache dir, checkpoint store and dedup group are the
	// owner's private ones, and the runner pins jobs (local or remote) to
	// the same store so a worker's uploaded artifact lands in the right
	// namespace.
	tckpt := s.ckptStoreOf(rc.client)
	eng := &campaign.Engine{
		// Per-campaign parallelism: the local gate bounds in-process
		// simulations; live remote capacity is added on top so a fleet
		// actually raises throughput instead of idling behind the gate.
		Workers:  cap(s.gate) + s.disp.extraCapacity(),
		CacheDir: s.tenantCacheDir(rc.client),
		Ckpt:     tckpt,
		Flight:   s.flightOf(rc.client),
		Gate:     s.gate,
		Runner:   &tenantRunner{d: s.disp, ckpt: tckpt}, // remote-or-local routing per cache-missed job
		OnResult: func(r campaign.Result) {
			switch {
			case r.Dedup:
				s.met.dedupHits.Add(1)
			case r.Cached:
				s.met.cacheHits.Add(1)
			default:
				s.met.jobsExecuted.Add(1)
				s.met.instsCommitted.Add(r.Stats.CommittedReal)
				s.met.simNanos.Add(r.FinishedAt.Sub(r.StartedAt).Nanoseconds())
			}
		},
		OnJobError: func(j campaign.Job, err error) {
			s.met.jobsFailed.Add(1)
		},
	}
	rc.tracker.OnChange = func(js campaign.JobStatus) {
		rc.hub.publish(Event{Type: EventJob, Campaign: rc.id, Job: &js})
		if rc.wal == nil {
			return
		}
		// The engine writes results to the cache before this callback
		// fires, so a crash between cache write and WAL append recovers
		// the job as a cache hit — never a duplicate simulation.
		if werr := rc.wal.JobChanged(js); werr != nil {
			log.Printf("sdiqd: %s: wal append: %v", rc.id, werr)
		} else {
			s.met.walAppends.Add(1)
		}
	}
	rc.tracker.Attach(eng)

	rs, err := eng.Run(s.ctx, rc.spec)
	rc.tracker.FinishSkipped()
	rc.finish(rs, err)

	// The terminal record is written only when the campaign genuinely
	// ended. A failure caused by server shutdown (drain deadline, test
	// kill — the crash-injection suite relies on this) leaves no done
	// record, so the next boot resumes the campaign instead of
	// tombstoning a failure the campaign never earned.
	if err == nil || s.ctx.Err() == nil {
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		_, finished, _, _ := rc.state()
		if werr := rc.wal.Done(errMsg, finished); werr != nil {
			log.Printf("sdiqd: %s: wal done record: %v", rc.id, werr)
		}
	}
	rc.wal.Close()

	st := rc.tracker.Snapshot()
	st.Jobs = nil // the done event carries the summary, not the roster
	done := Event{Type: EventDone, Campaign: rc.id, Status: &st}
	if err != nil {
		done.Error = err.Error()
		s.met.campaignsFailed.Add(1)
	} else {
		s.met.campaignsDone.Add(1)
	}
	rc.hub.publish(done)
	rc.hub.close()

	ts := s.tenant(rc.client)
	s.tmu.Lock()
	if err != nil {
		ts.failed++
	} else {
		ts.done++
	}
	s.tmu.Unlock()

	s.met.campaignsActive.Add(-1)
	s.mu.Lock()
	if s.active[rc.client]--; s.active[rc.client] <= 0 {
		delete(s.active, rc.client)
	}
	s.mu.Unlock()
}

// CampaignInfo is the status view of one campaign.
type CampaignInfo struct {
	ID        string          `json:"id"`
	Client    string          `json:"client,omitempty"`
	Name      string          `json:"name,omitempty"`
	Jobs      int             `json:"jobs"`
	Submitted time.Time       `json:"submitted"`
	Done      bool            `json:"done"`
	Finished  time.Time       `json:"finished,omitzero"`
	Error     string          `json:"error,omitempty"`
	Status    campaign.Status `json:"status"`
}

func (s *Server) info(rc *campaignRun, withJobs bool) CampaignInfo {
	done, finished, _, err := rc.state()
	info := CampaignInfo{
		ID:        rc.id,
		Client:    rc.client,
		Name:      rc.spec.Name,
		Jobs:      rc.jobs,
		Submitted: rc.submitted,
		Done:      done,
		Finished:  finished,
	}
	if withJobs {
		info.Status = rc.tracker.Snapshot()
	} else {
		info.Status = rc.tracker.Summary()
	}
	if err != nil {
		info.Error = err.Error()
	}
	return info
}

// lookup resolves {id} to a campaign the request's principal may see.
// A campaign owned by another tenant reads as absent — status, events,
// export and delete all answer 404, never 403, so tenants cannot probe
// each other's ID space.
func (s *Server) lookup(r *http.Request) (*campaignRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc, ok := s.campaigns[r.PathValue("id")]
	if !ok || !s.ownsCampaign(r, rc) {
		return nil, false
	}
	return rc, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.order))
	for _, id := range s.order {
		if rc := s.campaigns[id]; s.ownsCampaign(r, rc) {
			runs = append(runs, rc)
		}
	}
	s.mu.Unlock()
	out := make([]CampaignInfo, 0, len(runs))
	for _, rc := range runs {
		out = append(out, s.info(rc, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.info(rc, true))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	streamEvents(w, r, rc.hub)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	done, _, rs, cerr := rc.state()
	if !done {
		writeError(w, http.StatusConflict, "campaign %s is still running", rc.id)
		return
	}
	if rs == nil {
		msg := "campaign produced no results"
		if cerr != nil {
			msg = cerr.Error()
		}
		writeError(w, http.StatusUnprocessableEntity, "campaign %s: %s", rc.id, msg)
		return
	}
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		err = rs.WriteCSV(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		err = rs.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (csv, json)", format)
		return
	}
	if err != nil {
		// Headers are gone and part of the body may be written; abort
		// the connection so the client sees a transport error instead
		// of a clean EOF on a truncated export.
		panic(http.ErrAbortHandler)
	}
}

// ckptKeysOf derives the distinct checkpoint keys a job roster can
// reference; nil when the store is off (no GC bookkeeping needed then).
func ckptKeysOf(store *ckpt.Store, jobs []campaign.Job) map[string]struct{} {
	if store == nil {
		return nil
	}
	keys := make(map[string]struct{})
	for i := range jobs {
		if k, err := campaign.CheckpointKey(&jobs[i]); err == nil && k != "" {
			keys[k] = struct{}{}
		}
	}
	if len(keys) == 0 {
		return nil
	}
	return keys
}

// handleMetrics renders the counters plus the dispatcher's live worker
// and lease gauges, the checkpoint store's counters, and — when
// identity is in play — per-tenant labeled rows.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rows := append(s.met.rows(), s.disp.rows()...)
	writeRows(w, append(rows, s.ckptRows()...))
	writeLabelRows(w, s.tenantRows())
}

// tenantRows renders sdiqd_tenant_* per-client rows. They exist only
// when auth or isolation is on — an open single-user service keeps its
// scrape output exactly as before.
func (s *Server) tenantRows() []labelRow {
	if s.cfg.Auth == nil && !s.cfg.TenantIsolation {
		return nil
	}
	s.mu.Lock()
	active := make(map[string]int, len(s.active))
	for c, n := range s.active {
		active[c] = n
	}
	s.mu.Unlock()

	s.tmu.Lock()
	defer s.tmu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for c := range s.tenants {
		names = append(names, c)
	}
	sort.Strings(names)
	var rows []labelRow
	for _, c := range names {
		ts := s.tenants[c]
		lbl := fmt.Sprintf(`{tenant=%q}`, c)
		rows = append(rows,
			labelRow{"sdiqd_tenant_campaigns_submitted_total", "Campaigns submitted, by tenant.", "counter", lbl, float64(ts.submitted)},
			labelRow{"sdiqd_tenant_campaigns_done_total", "Campaigns finished successfully, by tenant.", "counter", lbl, float64(ts.done)},
			labelRow{"sdiqd_tenant_campaigns_failed_total", "Campaigns finished with an error, by tenant.", "counter", lbl, float64(ts.failed)},
			labelRow{"sdiqd_tenant_campaigns_active", "Campaigns currently running, by tenant.", "gauge", lbl, float64(active[c])},
		)
		if s.cfg.TenantIsolation && ts.ckpt != nil {
			artifacts, bytes := ts.ckpt.DiskStat()
			rows = append(rows,
				labelRow{"sdiqd_tenant_ckpt_artifacts", "Checkpoint artifacts on disk, by tenant.", "gauge", lbl, float64(artifacts)},
				labelRow{"sdiqd_tenant_ckpt_store_bytes", "Checkpoint artifact bytes on disk, by tenant.", "gauge", lbl, float64(bytes)},
			)
		}
	}
	return rows
}

// ckptRows renders the checkpoint store's live metrics (nil store → no
// rows, so scraping a store-less server is unchanged).
func (s *Server) ckptRows() []row {
	if s.ckpt == nil {
		return nil
	}
	m := s.ckpt.Metrics()
	artifacts, bytes := s.ckpt.DiskStat()
	return []row{
		{"sdiqd_ckpt_hits_total", "Checkpoint artifacts resumed from the store.", "counter", float64(m.Hits)},
		{"sdiqd_ckpt_misses_total", "Checkpoint artifact lookups that missed.", "counter", float64(m.Misses)},
		{"sdiqd_ckpt_generated_total", "Checkpoint artifacts generated and published locally.", "counter", float64(m.Generated)},
		{"sdiqd_ckpt_evicted_total", "Checkpoint artifacts evicted (GC or corruption).", "counter", float64(m.Evicted)},
		{"sdiqd_ckpt_bytes_shipped_total", "Checkpoint artifact bytes shipped to or from workers over HTTP.", "counter", float64(s.met.ckptBytesShipped.Load())},
		{"sdiqd_ckpt_artifacts", "Checkpoint artifacts currently on disk.", "gauge", float64(artifacts)},
		{"sdiqd_ckpt_store_bytes", "Total bytes of checkpoint artifacts on disk.", "gauge", float64(bytes)},
	}
}

// handleDelete drops a finished campaign from the in-memory registry —
// its tracker, event log and result set become garbage immediately —
// and garbage-collects checkpoint artifacts no remaining campaign
// references. Running campaigns are refused: cancel-by-delete would
// silently change other observers' results, and the engine owns
// cancellation. Exports wanted later must be fetched (or re-submitted —
// the disk cache makes that cheap) before deletion.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rc, ok := s.campaigns[id]
	if !ok || !s.ownsCampaign(r, rc) {
		// Another tenant's campaign answers 404, not 403: the ID space
		// must not leak across tenants.
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	if done, _, _, _ := rc.state(); !done {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "campaign %s is still running", id)
		return
	}
	orphans, client := s.dropLocked(id)
	s.mu.Unlock()
	s.store.Remove(id)
	st := s.ckptStoreOf(client)
	for _, k := range orphans {
		st.Remove(k)
	}
	s.met.campaignsDeleted.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// dropLocked removes a campaign from the registry (the caller holds
// s.mu) and returns the checkpoint keys orphaned by its departure — the
// campaign's keys minus every key a surviving campaign (running or
// finished) can still reference — plus the owning client, so the caller
// evicts from that tenant's store. Under isolation the reference check
// only counts same-tenant campaigns: another tenant referencing the
// same key holds its own copy in its own store.
func (s *Server) dropLocked(id string) (orphans []string, client string) {
	rc, ok := s.campaigns[id]
	if !ok {
		return nil, ""
	}
	client = rc.client
	delete(s.campaigns, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
	for k := range rc.ckptKeys {
		referenced := false
		for _, other := range s.campaigns {
			if s.cfg.TenantIsolation && other.client != rc.client {
				continue
			}
			if _, ok := other.ckptKeys[k]; ok {
				referenced = true
				break
			}
		}
		if !referenced {
			orphans = append(orphans, k)
		}
	}
	return orphans, client
}

// errCampaignFailed wraps a failed campaign's server-side error for
// clients.
var errCampaignFailed = errors.New("campaign failed")
