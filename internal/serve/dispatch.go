package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/worker"
)

// dispatcher is the server side of the remote worker pool. It sits
// behind the campaign engines as their campaign.Runner: every
// cache-missed, dedup-missed job lands in RunJob, which either offers
// it to the lease queue (workers connected) or runs it in-process on
// the shared gate. Workers pull jobs with long-poll leases, heartbeat
// while they run, and upload results; a lease that misses its TTL is
// presumed dead and its job is re-queued (bounded retries, then local
// fallback), so a campaign always finishes — byte-identically — no
// matter how much of the fleet dies under it.
type dispatcher struct {
	ttl       time.Duration // lease lifetime between heartbeats
	offer     time.Duration // max queue wait before local fallback
	workerTTL time.Duration // registered-worker staleness window
	retries   int           // re-lease attempts after a failed lease
	gate      campaign.Gate // shared simulation gate (local executions)
	met       *metrics
	ckpt      *ckpt.Store // shared checkpoint artifact store (may be nil)
	// nonce is a per-boot random tag baked into every worker and lease
	// ID. Without it a restarted coordinator reissues the same IDs from
	// zero ("w0001", "l000001"), and a zombie worker's late upload —
	// carrying pre-restart IDs for a JobKey that is valid again — would
	// be accepted against the new boot's lease. With the nonce, stale
	// IDs can never collide with freshly issued ones: they 410.
	nonce string

	mu      sync.Mutex
	wseq    int
	lseq    int
	workers map[string]*workerState
	queue   []*task
	wake    chan struct{} // closed+replaced when the queue gains a task
	leases  map[string]*lease
	// ckptGranted records every checkpoint key ever handed out in a
	// lease, mapped to the store the lease's campaign draws from — the
	// set of keys a worker PUT may legitimately name, and where each
	// upload must land (the owning tenant's store under isolation). Keys
	// are content hashes, so the set grows with distinct sweep warming
	// identities, not with jobs; it is the gate that keeps the artifact
	// store write surface closed to anything the server never asked for.
	ckptGranted map[string]*ckpt.Store
}

// Dispatcher protocol defaults (overridable via Config).
const (
	defaultLeaseTTL   = 15 * time.Second
	defaultJobRetries = 2
)

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	capacity int
	lastSeen time.Time
	active   int     // leases currently held
	rate     float64 // last reported insts/sec
}

// taskState is a queued job's lifecycle under the dispatcher.
type taskState int

const (
	taskQueued taskState = iota
	taskLeased
	taskDone // outcome delivered (or abandoned by its campaign)
)

// task is one job offered to the fleet. Its owner (the engine worker
// goroutine blocked in RunJob) waits on outcome; the dispatcher's state
// machine guarantees exactly one delivery.
type task struct {
	job     *campaign.Job
	key     string
	ckptKey string      // checkpoint artifact key ("" = none)
	ckpt    *ckpt.Store // store this job reads/publishes warm state in
	params  power.Params
	ctx     context.Context // the campaign's context

	state    taskState
	attempts int         // leases granted so far
	offerT   *time.Timer // fires while queued → local fallback
	outcome  chan taskOutcome
}

// taskOutcome resolves a task: a worker's validated result, an error
// (the campaign died), or fallback (run it locally).
type taskOutcome struct {
	res      campaign.Result
	err      error
	fallback bool
}

// lease is one job handed to one worker, kept alive by heartbeats.
type lease struct {
	id       string
	workerID string
	t        *task
	deadline time.Time
	timer    *time.Timer
	granted  time.Time
}

func newDispatcher(cfg Config, gate campaign.Gate, met *metrics, store *ckpt.Store) *dispatcher {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	offer := cfg.OfferTimeout
	if offer <= 0 {
		offer = ttl
	}
	wttl := cfg.WorkerTTL
	if wttl <= 0 {
		wttl = ttl
	}
	retries := cfg.JobRetries
	if retries < 0 {
		retries = 0
	} else if retries == 0 {
		retries = defaultJobRetries
	}
	var nb [4]byte
	if _, err := rand.Read(nb[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant just restores the old (colliding) behaviour, so don't
		// crash the coordinator over it.
		copy(nb[:], "boot")
	}
	return &dispatcher{
		ttl:         ttl,
		offer:       offer,
		workerTTL:   wttl,
		retries:     retries,
		gate:        gate,
		met:         met,
		ckpt:        store,
		nonce:       hex.EncodeToString(nb[:]),
		workers:     make(map[string]*workerState),
		wake:        make(chan struct{}),
		leases:      make(map[string]*lease),
		ckptGranted: make(map[string]*ckpt.Store),
	}
}

// --- campaign.Runner ---

// RunJob routes one cache-missed job: to the fleet when live workers
// are registered (falling back locally if the offer times out, the
// campaign is cancelled, or remote attempts are exhausted), otherwise
// straight to the in-process gate. Jobs run through the dispatcher
// directly use the shared checkpoint store; tenant-scoped campaigns go
// through a tenantRunner instead.
func (d *dispatcher) RunJob(ctx context.Context, job *campaign.Job, key string, params power.Params) (campaign.Result, error) {
	return d.runJobWith(ctx, job, key, params, d.ckpt)
}

// runJobWith is RunJob with an explicit checkpoint store: the one the
// owning campaign's tenant reads warm state from and publishes it to,
// locally and (via the granted-keys map) across the fleet.
func (d *dispatcher) runJobWith(ctx context.Context, job *campaign.Job, key string, params power.Params, store *ckpt.Store) (campaign.Result, error) {
	if key != "" && d.hasWorkers() {
		res, err, done := d.runRemote(ctx, job, key, params, store)
		if done {
			return res, err
		}
		d.met.jobsFellBack.Add(1)
	}
	return d.runLocal(ctx, job, store)
}

// tenantRunner is the campaign.Runner a tenant-scoped campaign gets:
// the shared dispatcher with every job pinned to the tenant's own
// checkpoint store.
type tenantRunner struct {
	d    *dispatcher
	ckpt *ckpt.Store
}

func (tr *tenantRunner) RunJob(ctx context.Context, job *campaign.Job, key string, params power.Params) (campaign.Result, error) {
	return tr.d.runJobWith(ctx, job, key, params, tr.ckpt)
}

// runRemote offers the job to the lease queue and waits it out. done is
// false when the job should fall back to local execution.
func (d *dispatcher) runRemote(ctx context.Context, job *campaign.Job, key string, params power.Params, store *ckpt.Store) (campaign.Result, error, bool) {
	t := &task{
		job:     job,
		key:     key,
		ckpt:    store,
		params:  params,
		ctx:     ctx,
		outcome: make(chan taskOutcome, 1),
	}
	if store != nil {
		// Sampled jobs carry their checkpoint identity into the lease so
		// a worker can fetch (or publish) the sweep's shared warm state.
		t.ckptKey, _ = campaign.CheckpointKey(job)
	}
	d.mu.Lock()
	d.enqueueLocked(t, false)
	d.mu.Unlock()
	select {
	case out := <-t.outcome:
		if out.fallback {
			return campaign.Result{}, nil, false
		}
		return out.res, out.err, true
	case <-ctx.Done():
		d.abandon(t)
		return campaign.Result{}, ctx.Err(), true
	}
}

// runLocal executes in-process under the shared gate — the exact path
// the server ran every job through before the worker pool existed.
func (d *dispatcher) runLocal(ctx context.Context, job *campaign.Job, store *ckpt.Store) (campaign.Result, error) {
	if err := d.gate.Acquire(ctx); err != nil {
		return campaign.Result{}, err
	}
	defer d.gate.Release()
	d.met.jobsLocal.Add(1)
	return campaign.ExecuteStored(ctx, job, store)
}

// enqueueLocked puts a task on the queue (front for retries, so a
// recovered job overtakes fresh work) and arms its offer timer.
func (d *dispatcher) enqueueLocked(t *task, front bool) {
	t.state = taskQueued
	if front {
		d.queue = append([]*task{t}, d.queue...)
	} else {
		d.queue = append(d.queue, t)
	}
	t.offerT = time.AfterFunc(d.offer, func() { d.offerExpired(t) })
	close(d.wake)
	d.wake = make(chan struct{})
}

// removeLocked drops a task from the queue slice.
func (d *dispatcher) removeLocked(t *task) {
	for i, q := range d.queue {
		if q == t {
			d.queue = append(d.queue[:i:i], d.queue[i+1:]...)
			return
		}
	}
}

// offerExpired fires when a task sat unleased for the full offer
// window: the fleet is too slow (or dead) — reclaim it for local
// execution.
func (d *dispatcher) offerExpired(t *task) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t.state != taskQueued {
		return
	}
	d.removeLocked(t)
	t.state = taskDone
	t.outcome <- taskOutcome{fallback: true}
}

// abandon detaches a task whose campaign stopped waiting. A queued task
// leaves the queue; a leased one stays with its worker, whose next
// heartbeat is told to cancel and whose upload is discarded.
func (d *dispatcher) abandon(t *task) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t.state == taskQueued {
		d.removeLocked(t)
		t.offerT.Stop()
	}
	t.state = taskDone
}

// requeueLocked returns a leased task to the queue after its lease
// failed (expiry, worker-reported error, rejected upload) — or, past
// the retry budget, resolves it to local fallback.
func (d *dispatcher) requeueLocked(t *task) {
	if t.state != taskLeased {
		return
	}
	if err := t.ctx.Err(); err != nil {
		t.state = taskDone
		t.outcome <- taskOutcome{err: err}
		return
	}
	if t.attempts > d.retries {
		t.state = taskDone
		t.outcome <- taskOutcome{fallback: true}
		return
	}
	d.met.leaseRequeues.Add(1)
	d.enqueueLocked(t, true)
}

// --- worker registry ---

// register admits a worker and returns its id and timing contract.
func (d *dispatcher) register(req worker.RegisterRequest) (worker.RegisterResponse, error) {
	if req.Protocol != worker.ProtocolVersion {
		return worker.RegisterResponse{}, fmt.Errorf(
			"worker speaks protocol %d, server speaks %d", req.Protocol, worker.ProtocolVersion)
	}
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pruneLocked()
	d.wseq++
	w := &workerState{
		id:       fmt.Sprintf("w%s-%04d", d.nonce, d.wseq),
		name:     req.Name,
		capacity: capacity,
		lastSeen: time.Now(),
	}
	d.workers[w.id] = w
	d.met.workersRegistered.Add(1)
	if req.Reconnects > 0 {
		d.met.workerReconnects.Add(1)
	}
	return worker.RegisterResponse{
		WorkerID:    w.id,
		LeaseTTLMS:  d.ttl.Milliseconds(),
		HeartbeatMS: max64(d.ttl.Milliseconds()/3, 1),
		MaxPollMS:   max64(d.workerTTL.Milliseconds()/2, 1),
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// deregister removes a worker; leases it still holds are re-queued
// immediately rather than waiting out their TTLs.
func (d *dispatcher) deregister(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.workers[id]; !ok {
		return false
	}
	delete(d.workers, id)
	for lid, l := range d.leases {
		if l.workerID != id {
			continue
		}
		delete(d.leases, lid)
		l.timer.Stop()
		d.requeueLocked(l.t)
	}
	return true
}

// pruneLocked evicts workers that went stale with no leases left —
// hard-killed workers never deregister, so without this a server with
// fleet churn would accumulate dead registry entries forever. Run on
// every registration: churn (crash + respawn) is exactly when new dead
// entries appear. A stale worker still holding leases survives until
// they expire (expiry drives active back to zero).
func (d *dispatcher) pruneLocked() {
	for id, w := range d.workers {
		if !d.freshLocked(w) && w.active <= 0 {
			delete(d.workers, id)
		}
	}
}

// touchLocked refreshes a worker's liveness stamp.
func (d *dispatcher) touchLocked(w *workerState) { w.lastSeen = time.Now() }

// freshLocked reports whether a worker has been heard from recently.
func (d *dispatcher) freshLocked(w *workerState) bool {
	return time.Since(w.lastSeen) <= d.workerTTL
}

// hasWorkers reports whether any live worker is registered — the
// remote-vs-local routing signal.
func (d *dispatcher) hasWorkers() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.workers {
		if d.freshLocked(w) {
			return true
		}
	}
	return false
}

// extraCapacity is the fleet's concurrent-job headroom — added to each
// campaign engine's worker count so remote capacity actually raises
// campaign parallelism beyond the local gate.
func (d *dispatcher) extraCapacity() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for _, w := range d.workers {
		if d.freshLocked(w) {
			total += w.capacity
		}
	}
	if total > 256 {
		total = 256
	}
	return total
}

// --- lease protocol ---

// nextLease blocks up to wait for a job to offer the worker. A nil
// lease with nil error means the wait expired empty (→ 204).
func (d *dispatcher) nextLease(ctx context.Context, workerID string, wait time.Duration) (*lease, *task, error) {
	maxWait := d.workerTTL / 2
	if wait <= 0 || wait > maxWait {
		wait = maxWait
	}
	timeout := time.NewTimer(wait)
	defer timeout.Stop()
	for {
		d.mu.Lock()
		w, ok := d.workers[workerID]
		if !ok {
			d.mu.Unlock()
			return nil, nil, fmt.Errorf("unknown worker %q (register first)", workerID)
		}
		d.touchLocked(w)
		if len(d.queue) > 0 {
			t := d.queue[0]
			d.queue = d.queue[1:]
			t.offerT.Stop()
			t.state = taskLeased
			t.attempts++
			d.lseq++
			l := &lease{
				id:       fmt.Sprintf("l%s-%06d", d.nonce, d.lseq),
				workerID: workerID,
				t:        t,
				deadline: time.Now().Add(d.ttl),
				granted:  time.Now(),
			}
			l.timer = time.AfterFunc(d.ttl, func() { d.expire(l.id) })
			d.leases[l.id] = l
			w.active++
			if t.ckptKey != "" {
				d.ckptGranted[t.ckptKey] = t.ckpt
			}
			d.met.leasesGranted.Add(1)
			d.mu.Unlock()
			return l, t, nil
		}
		wake := d.wake
		d.mu.Unlock()
		select {
		case <-wake:
		case <-timeout.C:
			d.touch(workerID)
			return nil, nil, nil
		case <-ctx.Done():
			return nil, nil, nil
		}
	}
}

func (d *dispatcher) touch(workerID string) {
	d.mu.Lock()
	if w, ok := d.workers[workerID]; ok {
		d.touchLocked(w)
	}
	d.mu.Unlock()
}

// expire fires when a lease outlived its TTL without a heartbeat: the
// worker is presumed dead and the job goes back on the queue.
func (d *dispatcher) expire(leaseID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok {
		return
	}
	if now := time.Now(); now.Before(l.deadline) {
		// A heartbeat renewed the deadline while this callback was
		// waiting on the lock (timer-fire vs Reset race): the worker is
		// alive — re-arm for the remainder instead of tearing down a
		// lease that was just renewed.
		l.timer.Reset(l.deadline.Sub(now))
		return
	}
	delete(d.leases, leaseID)
	if w, ok := d.workers[l.workerID]; ok {
		w.active--
	}
	d.met.leasesExpired.Add(1)
	d.requeueLocked(l.t)
}

// heartbeat re-arms a lease. gone means the server no longer holds it.
func (d *dispatcher) heartbeat(leaseID string, hb worker.Heartbeat) (worker.HeartbeatResponse, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.workerID != hb.WorkerID {
		return worker.HeartbeatResponse{}, false
	}
	if w, ok := d.workers[hb.WorkerID]; ok {
		d.touchLocked(w)
		w.rate = hb.InstsPerSec
	}
	l.deadline = time.Now().Add(d.ttl)
	l.timer.Reset(d.ttl)
	return worker.HeartbeatResponse{
		Cancel:     l.t.state == taskDone || l.t.ctx.Err() != nil,
		DeadlineMS: d.ttl.Milliseconds(),
	}, true
}

// complete resolves a lease from a result upload. gone means the lease
// already expired (the upload is late; its job is elsewhere by now).
// The upload is validated against the leased job's own identity — its
// JobKey and result coordinates — before the result is accepted; an
// upload that fails validation counts as a failed lease and the job is
// re-queued.
func (d *dispatcher) complete(leaseID string, up worker.ResultUpload) (worker.ResultResponse, error, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.workerID != up.WorkerID {
		d.met.lateUploads.Add(1)
		return worker.ResultResponse{}, nil, false
	}
	delete(d.leases, leaseID)
	l.timer.Stop()
	if w, ok := d.workers[up.WorkerID]; ok {
		d.touchLocked(w)
		w.active--
	}
	t := l.t
	if t.state != taskLeased {
		// The campaign stopped waiting; nothing to deliver to.
		return worker.ResultResponse{}, nil, true
	}
	if up.Error != "" {
		d.met.workerJobFailures.Add(1)
		d.requeueLocked(t)
		return worker.ResultResponse{Requeued: t.state == taskQueued}, nil, true
	}
	if err := validateUpload(t, up); err != nil {
		d.met.resultsRejected.Add(1)
		d.requeueLocked(t)
		return worker.ResultResponse{Requeued: t.state == taskQueued}, err, true
	}
	res := *up.Result
	res.Point = t.job.Point // canonical coordinates, as the engine stamps them
	t.state = taskDone
	d.met.jobsRemote.Add(1)
	t.outcome <- taskOutcome{res: res}
	return worker.ResultResponse{Accepted: true}, nil, true
}

// validateUpload checks a worker's result against the job the lease
// actually carried: the echoed JobKey must match the one the server
// derived when it offered the job, and the result's identity fields
// must name that job. This is the gate between the fleet and the shared
// cache — a confused or malicious worker is rejected here, never
// cached.
func validateUpload(t *task, up worker.ResultUpload) error {
	if up.Result == nil {
		return fmt.Errorf("upload carries neither result nor error")
	}
	if up.Key != t.key {
		return fmt.Errorf("job key mismatch: lease %.12s, upload %.12s", t.key, up.Key)
	}
	if up.Result.Bench != t.job.Bench || up.Result.Tech != t.job.Tech {
		return fmt.Errorf("result identity mismatch: leased %s/%s, uploaded %s/%s",
			t.job.Bench, t.job.Tech, up.Result.Bench, up.Result.Tech)
	}
	if (up.Result.Sampled != nil) != (t.job.Sampling != nil) {
		return fmt.Errorf("result sampling mode mismatch")
	}
	return nil
}

// grantedStore resolves a checkpoint key a worker names to the store
// its lease granted access to: only keys the dispatcher itself handed
// out in leases are reachable from outside (and WriteRaw still
// validates the container). Under tenant isolation the store is the
// owning tenant's, so a worker's upload lands in the right namespace
// and its fetch can never read another tenant's artifact.
func (d *dispatcher) grantedStore(key string) (*ckpt.Store, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.ckptGranted[key]
	return st, ok
}

// --- metrics ---

// rows renders the dispatcher's live gauges for /metrics.
func (d *dispatcher) rows() []row {
	d.mu.Lock()
	connected, capacity, rate := 0, 0, 0.0
	for _, w := range d.workers {
		if d.freshLocked(w) {
			connected++
			capacity += w.capacity
			rate += w.rate
		}
	}
	queued, active := len(d.queue), len(d.leases)
	d.mu.Unlock()
	return []row{
		{"sdiqd_workers_connected", "Live registered workers.", "gauge", float64(connected)},
		{"sdiqd_worker_capacity", "Total concurrent-job capacity of live workers.", "gauge", float64(capacity)},
		{"sdiqd_worker_insts_per_second", "Fleet simulation rate as last reported by worker heartbeats.", "gauge", rate},
		{"sdiqd_lease_queue_depth", "Jobs waiting to be leased.", "gauge", float64(queued)},
		{"sdiqd_leases_active", "Leases currently held by workers.", "gauge", float64(active)},
	}
}
