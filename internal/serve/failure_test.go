// Failure injection for the remote worker pool. The campaign engine's
// results are deterministic and content-addressed, so correctness under
// worker failure has a brutal, simple oracle: no matter which workers
// die, which leases expire, and which uploads are rejected, a campaign
// must finish with a CSV export byte-identical to the same spec run
// fully locally — and no JobKey may ever be simulated-and-delivered
// twice. Every test here runs under -race in CI.
package serve

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/worker"
)

// startWorker runs an in-process worker against the test server,
// hard-stopped (like a machine death) at test cleanup.
func startWorker(t *testing.T, base, name string, conc int, hook func(*worker.Worker)) {
	t.Helper()
	w := &worker.Worker{Server: base, Name: name, Scratch: t.TempDir(), Concurrency: conc}
	if hook != nil {
		hook(w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// waitMetric polls /metrics until name reaches at least want.
func waitMetric(t *testing.T, cl *Client, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v := metricValue(t, fetchMetrics(t, cl), name); v >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %g:\n%s", name, want, fetchMetrics(t, cl))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// localCSV runs spec on a plain local engine and returns its CSV bytes
// — the byte-identity oracle every failure scenario is judged against.
func localCSV(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	rs, err := (&campaign.Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// failureSpec is the four-job grid the failure scenarios run.
func failureSpec() campaign.Spec {
	spec := campaign.DefaultSpec(5_000)
	spec.Name = "failure-injection"
	spec.Benchmarks = []string{"gzip", "mcf"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
	return spec
}

// TestWorkerDeathMidJobReleased is the PR's acceptance gate: a worker
// that takes a lease and dies — context cancelled, heartbeats gone,
// nothing uploaded, exactly like a yanked power cord — must not cost
// the campaign anything. The server's lease TTL expires, the job is
// re-leased exactly once onto the surviving worker, the campaign
// completes, and the export is byte-for-byte what a pure-local run
// produces, with no JobKey simulated twice.
func TestWorkerDeathMidJobReleased(t *testing.T) {
	_, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		Workers:      2,
		LeaseTTL:     250 * time.Millisecond,
		OfferTimeout: 30 * time.Second, // never reclaim: recovery must come from re-leasing
		WorkerTTL:    60 * time.Second,
		JobRetries:   2,
	})
	ctx := context.Background()
	spec := failureSpec()

	// The doomed worker: its own context dies the instant it is handed
	// its first lease, before any heartbeat or upload — from the
	// server's side it simply goes silent with a job checked out.
	dctx, kill := context.WithCancel(context.Background())
	doomed := &worker.Worker{Server: cl.Base, Name: "doomed", Scratch: t.TempDir(), Concurrency: 1}
	leased := make(chan worker.Lease, 1)
	var once sync.Once
	doomed.OnLease = func(l worker.Lease) {
		once.Do(func() {
			leased <- l
			kill()
		})
	}
	doomedDone := make(chan struct{})
	go func() { defer close(doomedDone); _ = doomed.Run(dctx) }()
	t.Cleanup(func() { kill(); <-doomedDone })
	waitMetric(t, cl, "sdiqd_workers_connected", 1)

	sub, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	killedLease := <-leased // the doomed worker is now dead, holding this lease

	// The survivor arrives after the death and inherits the fleet.
	startWorker(t, cl.Base, "survivor", 2, nil)

	if err := cl.Stream(ctx, sub.ID, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Done || info.Error != "" || info.Status.Done != 4 {
		t.Fatalf("campaign after worker death: %+v", info)
	}

	remote, err := cl.Export(ctx, sub.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if local := localCSV(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("export after worker death differs from pure-local run:\nremote:\n%s\nlocal:\n%s",
			remote, local)
	}

	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_leases_expired_total"); got != 1 {
		t.Errorf("leases expired = %g, want exactly 1 (the killed lease %s)", got, killedLease.ID)
	}
	if got := metricValue(t, text, "sdiqd_lease_requeues_total"); got != 1 {
		t.Errorf("requeues = %g, want exactly 1: the dead worker's job re-leased exactly once", got)
	}
	if got := metricValue(t, text, "sdiqd_leases_granted_total"); got != 5 {
		t.Errorf("leases granted = %g, want 5 (4 jobs + 1 recovery re-lease)", got)
	}
	// No duplicate simulation of any JobKey: the four unique jobs were
	// each delivered exactly once, all by workers, none twice.
	if got := metricValue(t, text, "sdiqd_jobs_executed_total"); got != 4 {
		t.Errorf("executed = %g, want 4 — a killed job was simulated twice or lost", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_remote_total"); got != 4 {
		t.Errorf("remote jobs = %g, want 4", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_local_total"); got != 0 {
		t.Errorf("local jobs = %g, want 0 (recovery must come from the fleet, not fallback)", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_failed_total"); got != 0 {
		t.Errorf("%g jobs failed", got)
	}
}

// TestLeaseExpiryLocalFallbackAndLateUpload: with no retry budget and a
// fleet that leases a job and then drops every heartbeat, the job must
// be reclaimed for local execution (the campaign never hangs on a dead
// fleet), and the dead worker's eventual late upload must be answered
// 410 and discarded — the locally-computed result already stands.
func TestLeaseExpiryLocalFallbackAndLateUpload(t *testing.T) {
	_, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		Workers:      1,
		LeaseTTL:     200 * time.Millisecond,
		OfferTimeout: 250 * time.Millisecond,
		WorkerTTL:    60 * time.Second,
		JobRetries:   -1, // no re-leasing: expiry goes straight to local fallback
	})
	ctx := context.Background()
	spec := failureSpec()
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline}

	api := worker.NewAPI(cl.Base)
	reg, err := api.Register(ctx, worker.RegisterRequest{Name: "zombie", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}

	sub, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var l worker.Lease
	for ok := false; !ok; {
		if l, ok, err = api.Lease(ctx, worker.LeaseRequest{WorkerID: reg.WorkerID, WaitMS: 2000}); err != nil {
			t.Fatal(err)
		}
	}
	// Never heartbeat, never upload: the lease dies of silence, and the
	// server — out of retries — runs the job itself.
	if err := cl.Stream(ctx, sub.ID, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}

	remote, err := cl.Export(ctx, sub.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if local := localCSV(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("fallback export differs from pure-local run")
	}

	// The zombie finally reports in; its lease is long gone.
	if _, err := api.Complete(ctx, l.ID, worker.ResultUpload{
		WorkerID: reg.WorkerID, Key: l.Key, Error: "zombie waking up",
	}); err != worker.ErrLeaseGone {
		t.Errorf("late upload error = %v, want ErrLeaseGone", err)
	}
	if _, err := api.Heartbeat(ctx, l.ID, worker.Heartbeat{WorkerID: reg.WorkerID}); err != worker.ErrLeaseGone {
		t.Errorf("late heartbeat error = %v, want ErrLeaseGone", err)
	}

	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_leases_expired_total"); got != 1 {
		t.Errorf("leases expired = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_fellback_total"); got != 1 {
		t.Errorf("fallbacks = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_local_total"); got != 1 {
		t.Errorf("local jobs = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_lease_requeues_total"); got != 0 {
		t.Errorf("requeues = %g, want 0 (no retry budget)", got)
	}
	if got := metricValue(t, text, "sdiqd_late_uploads_total"); got != 1 {
		t.Errorf("late uploads = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_executed_total"); got != 1 {
		t.Errorf("executed = %g, want 1 — the job must be simulated exactly once", got)
	}
}

// TestCorruptUploadRejectedThenRecovered: an upload whose JobKey does
// not match the leased job is the one thing that must never reach the
// shared cache. The server rejects it with 422, re-queues the job, and
// a subsequent honest upload completes the campaign with the correct
// bytes.
func TestCorruptUploadRejectedThenRecovered(t *testing.T) {
	_, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		Workers:      1,
		LeaseTTL:     60 * time.Second,
		OfferTimeout: 60 * time.Second,
		WorkerTTL:    60 * time.Second,
		JobRetries:   1,
	})
	ctx := context.Background()
	spec := failureSpec()
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline}

	api := worker.NewAPI(cl.Base)
	reg, err := api.Register(ctx, worker.RegisterRequest{Name: "byzantine", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var l worker.Lease
	for ok := false; !ok; {
		if l, ok, err = api.Lease(ctx, worker.LeaseRequest{WorkerID: reg.WorkerID, WaitMS: 2000}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Attempt != 1 {
		t.Fatalf("first lease attempt = %d", l.Attempt)
	}

	// A result for some other job entirely: wrong key, wrong bench.
	bogus := campaign.Result{Bench: "mcf", Tech: campaign.TechBaseline}
	_, err = api.Complete(ctx, l.ID, worker.ResultUpload{
		WorkerID: reg.WorkerID,
		Key:      strings.Repeat("00", 32),
		Result:   &bogus,
	})
	if err == nil || err == worker.ErrLeaseGone || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("corrupt upload error = %v, want a 422 rejection", err)
	}

	// The job is back on the queue; lease it again and play it straight
	// this time, running the real executor like a worker would.
	var l2 worker.Lease
	for ok := false; !ok; {
		if l2, ok, err = api.Lease(ctx, worker.LeaseRequest{WorkerID: reg.WorkerID, WaitMS: 2000}); err != nil {
			t.Fatal(err)
		}
	}
	if l2.Attempt != 2 || l2.Key != l.Key {
		t.Fatalf("re-lease attempt=%d key match=%v, want attempt 2 of the same job", l2.Attempt, l2.Key == l.Key)
	}
	job := l2.Job.Job()
	res, err := campaign.Execute(ctx, &job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := api.Complete(ctx, l2.ID, worker.ResultUpload{
		WorkerID: reg.WorkerID, Key: l2.Key, Result: &res,
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("honest upload: %+v, %v", resp, err)
	}

	if err := cl.Stream(ctx, sub.ID, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	remote, err := cl.Export(ctx, sub.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if local := localCSV(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("post-recovery export differs from pure-local run")
	}
	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_results_rejected_total"); got != 1 {
		t.Errorf("rejected = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_lease_requeues_total"); got != 1 {
		t.Errorf("requeues = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_remote_total"); got != 1 {
		t.Errorf("remote jobs = %g, want 1", got)
	}
}

// TestWorkerJobErrorFallsBackToAuthoritativeError: a job that fails on
// the workers (here: an unknown benchmark) is retried remotely within
// budget, then falls back locally — whose execution produces the
// authoritative error the campaign reports, exactly as a fleet-less
// server would.
func TestWorkerJobErrorFallsBackToAuthoritativeError(t *testing.T) {
	_, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		Workers:      1,
		LeaseTTL:     5 * time.Second,
		OfferTimeout: 5 * time.Second,
		WorkerTTL:    60 * time.Second,
		JobRetries:   1,
	})
	ctx := context.Background()
	startWorker(t, cl.Base, "honest", 1, nil)
	waitMetric(t, cl, "sdiqd_workers_connected", 1)

	spec := failureSpec()
	spec.Benchmarks = []string{"nosuchbench"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline}
	if _, err := cl.Run(ctx, spec); err == nil || !strings.Contains(err.Error(), "nosuchbench") {
		t.Fatalf("failed-job campaign error = %v, want the benchmark error", err)
	}
	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_worker_job_failures_total"); got != 2 {
		t.Errorf("worker failures = %g, want 2 (initial + one retry)", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_fellback_total"); got != 1 {
		t.Errorf("fallbacks = %g, want 1", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_failed_total"); got != 1 {
		t.Errorf("failed jobs = %g, want 1", got)
	}
}

// TestWorkerReregistersAfterRegistryLoss: a server that forgets a
// worker's registration (modelling a sdiqd restart under a live fleet)
// answers its next lease poll 404; the worker must register afresh and
// keep serving jobs rather than spinning on a dead identity.
func TestWorkerReregistersAfterRegistryLoss(t *testing.T) {
	s, cl := startServer(t, Config{
		CacheDir:     t.TempDir(),
		Workers:      1,
		LeaseTTL:     2 * time.Second,
		OfferTimeout: 30 * time.Second,
		// Short staleness window → short poll interval, so the worker's
		// next (404ing) poll lands quickly after the wipe below.
		WorkerTTL: 500 * time.Millisecond,
	})
	ctx := context.Background()
	startWorker(t, cl.Base, "amnesiac-victim", 1, nil)
	waitMetric(t, cl, "sdiqd_workers_connected", 1)

	// Wipe the registry out from under the worker, like a restart would.
	s.disp.mu.Lock()
	for id := range s.disp.workers {
		delete(s.disp.workers, id)
	}
	s.disp.mu.Unlock()

	// The worker's next poll 404s and it registers afresh.
	waitMetric(t, cl, "sdiqd_workers_registered_total", 2)
	waitMetric(t, cl, "sdiqd_workers_connected", 1)

	// The re-registered worker serves the fleet as before.
	spec := failureSpec()
	spec.Benchmarks = []string{"gzip"}
	rs, err := cl.Run(ctx, spec)
	if err != nil || !rs.Complete() {
		t.Fatalf("campaign after registry loss: %v", err)
	}
	text := fetchMetrics(t, cl)
	if got := metricValue(t, text, "sdiqd_workers_registered_total"); got != 2 {
		t.Errorf("registrations = %g, want 2 (original + re-registration)", got)
	}
	if got := metricValue(t, text, "sdiqd_jobs_remote_total"); got != 2 {
		t.Errorf("remote jobs = %g, want 2 — the re-registered worker must serve the fleet", got)
	}
}
