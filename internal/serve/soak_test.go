package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/campaign"
)

// TestServiceSoakConcurrentCampaigns is the PR's acceptance gate and
// the regression cover for the singleflight path and the atomic cache
// writes: ten campaigns from ten clients hit one server — eight
// identical grids plus two sweeps whose single point (iq.entries=80)
// derives the *same* configurations as the base grid — all sharing one
// cache directory and one in-flight dedup group.
//
// Required outcomes:
//   - every campaign completes with a full result set;
//   - zero duplicate simulations of identical JobKeys fleet-wide: the
//     number of executed jobs equals the number of unique keys, and
//     every other delivery is a cache or dedup hit (>= 1 of each kind
//     of reuse overall);
//   - the eight identical campaigns' CSV exports are byte-identical to
//     each other and to the same spec run locally with the engine.
//
// Run under -race (CI does) this also soaks the engine's shared-state
// paths: Flight, Gate, tracker callbacks and the on-disk cache.
func TestServiceSoakConcurrentCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseSpec := func() campaign.Spec {
		spec := campaign.DefaultSpec(5_000)
		spec.Name = "soak"
		spec.Benchmarks = []string{"gzip", "mcf"}
		spec.Techniques = []campaign.Technique{campaign.TechBaseline, campaign.TechNOOP}
		return spec
	}
	sweepSpec := func() campaign.Spec {
		spec := baseSpec()
		spec.Name = "soak-sweep"
		// One sweep point at the base IQ size: different campaign and
		// sweep coordinates, identical derived configurations — the
		// overlapping-grid case the dedup key is designed to collapse.
		spec.Axes = []campaign.Axis{{Name: "iq.entries", Values: []int{80}}}
		return spec
	}
	// Sanity: the sweep really does collapse onto the base grid's keys.
	base, sweep := baseSpec(), sweepSpec()
	baseJobs, err := base.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	sweepJobs, err := sweep.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	uniqueKeys := map[string]bool{}
	for _, jobs := range [][]campaign.Job{baseJobs, sweepJobs} {
		for i := range jobs {
			k, err := campaign.JobKey(&jobs[i], baseSpec().Params)
			if err != nil {
				t.Fatal(err)
			}
			uniqueKeys[k] = true
		}
	}
	if len(uniqueKeys) != len(baseJobs) {
		t.Fatalf("sweep point does not collapse onto base keys: %d unique, want %d",
			len(uniqueKeys), len(baseJobs))
	}

	_, cl := startServer(t, Config{CacheDir: t.TempDir(), Workers: 4})
	ctx := context.Background()

	const identical = 8
	const sweeps = 2
	type outcome struct {
		id  string
		csv []byte
		err error
	}
	outs := make([]outcome, identical+sweeps)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(cl.Base)
			c.ID = fmt.Sprintf("client-%d", i)
			spec := baseSpec()
			if i >= identical {
				spec = sweepSpec()
			}
			sub, err := c.Submit(ctx, spec)
			if err != nil {
				outs[i].err = err
				return
			}
			outs[i].id = sub.ID
			if err := c.Stream(ctx, sub.ID, func(Event) error { return nil }); err != nil {
				outs[i].err = err
				return
			}
			outs[i].csv, outs[i].err = c.Export(ctx, sub.ID, "csv")
		}(i)
	}
	wg.Wait()

	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("campaign %d: %v", i, o.err)
		}
	}

	// Byte-identical exports across the identical campaigns, and vs a
	// local engine run of the same spec.
	local, err := (&campaign.Engine{Workers: 2}).Run(ctx, baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	var localCSV bytes.Buffer
	if err := local.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < identical; i++ {
		if !bytes.Equal(outs[i].csv, localCSV.Bytes()) {
			t.Errorf("campaign %d CSV differs from the local run:\n%s\nvs local:\n%s",
				i, outs[i].csv, localCSV.String())
		}
	}
	for i := identical + 1; i < identical+sweeps; i++ {
		if !bytes.Equal(outs[i].csv, outs[identical].csv) {
			t.Errorf("sweep campaign %d CSV differs from sweep campaign %d", i, identical)
		}
	}

	// Zero duplicate simulations: executed == unique keys; everything
	// else was served from cache or a concurrent identical execution.
	text := fetchMetrics(t, cl)
	executed := metricValue(t, text, "sdiqd_jobs_executed_total")
	cacheHits := metricValue(t, text, "sdiqd_job_cache_hits_total")
	dedupHits := metricValue(t, text, "sdiqd_job_dedup_hits_total")
	totalJobs := float64((identical + sweeps) * len(baseJobs))
	if executed != float64(len(uniqueKeys)) {
		t.Errorf("executed %g simulations for %d unique keys: duplicate simulation slipped through dedup",
			executed, len(uniqueKeys))
	}
	if executed+cacheHits+dedupHits != totalJobs {
		t.Errorf("job accounting off: %g executed + %g cache + %g dedup != %g total",
			executed, cacheHits, dedupHits, totalJobs)
	}
	if cacheHits+dedupHits == 0 {
		t.Error("no cache or dedup reuse at all in a 10-campaign soak")
	}
	if failed := metricValue(t, text, "sdiqd_jobs_failed_total"); failed != 0 {
		t.Errorf("%g jobs failed", failed)
	}
}
