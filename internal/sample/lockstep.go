package sample

import (
	"context"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/prog"
	"repro/internal/sim"
)

// This file is the lockstep sweep engine: ONE emulator + functional-
// warming stream drives the sampling schedule, and each detailed window
// fans out to K sim.NewResumable cores with different configurations —
// K per-cell reports from one functional pass. The warm state a window
// starts from is a pure function of the stream position and the warming
// regime, never of any cell's detailed configuration (the same invariant
// checkpoint sharing rests on), so every cell's report is bit-identical
// to what a solo run of that configuration would produce; the
// differential suite in lockstep_test.go holds both engines to that.
//
// Cells must share their warming identity — cache geometry and branch-
// predictor configuration — because the single stream warms one
// hierarchy. That is exactly the equivalence class the campaign layer's
// CheckpointKey hashes, so grouping jobs by that key is always safe.
// Axes that only touch the detailed core (IQ geometry, power knobs,
// ROB size) are free to differ per cell.

// Cell is one configuration's outcome of a lockstep run. A cell fails
// alone: its Err is set and its Report finalized at the failure point,
// while the remaining cells keep measuring.
type Cell struct {
	Report *Report
	Err    error
}

// RunLockstep executes a sampled simulation of the program under K
// processor configurations in lockstep over one functional stream. It
// is RunLockstepStored without a checkpoint store.
func RunLockstep(ctx context.Context, cfgs []sim.Config, p *prog.Program, budget int64, sc Config) ([]Cell, error) {
	return RunLockstepStored(ctx, cfgs, p, budget, sc, nil, "")
}

// RunLockstepStored is the K-configuration generalisation of RunStored:
// one warming pass (resumed from the store when the artifact exists,
// generated write-through when not) feeds every cell's detailed
// windows. The returned error reports setup problems or cancellation;
// per-cell simulation failures land in the cells, leaving the others
// unharmed. The single-configuration entry points are the K=1 special
// case of this function, so the two paths cannot drift apart.
func RunLockstepStored(ctx context.Context, cfgs []sim.Config, p *prog.Program, budget int64, sc Config, store *ckpt.Store, key string) ([]Cell, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sample: lockstep run needs at least one configuration")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("sample: sampled runs need a positive budget, got %d", budget)
	}
	for i := range cfgs {
		if cfgs[i].Caches != cfgs[0].Caches || cfgs[i].Bpred != cfgs[0].Bpred {
			return nil, fmt.Errorf("sample: lockstep cell %d has a different warming identity (cache/bpred geometry) than cell 0", i)
		}
	}
	if store == nil || key == "" {
		return generateK(ctx, cfgs, p, budget, sc, nil, "")
	}
	if cells, err, ok := resumeK(ctx, cfgs, p, budget, sc, store, key); ok {
		return cells, err
	}
	// Miss. Serialize in-process generation per key: the winner
	// generates, everyone who blocked here resumes from the published
	// artifact (re-read from disk so each job attaches its own program).
	unlock := store.Lock(key)
	defer unlock()
	if cells, err, ok := resumeK(ctx, cfgs, p, budget, sc, store, key); ok {
		return cells, err
	}
	return generateK(ctx, cfgs, p, budget, sc, store, key)
}

// cellsOf zips reports and errors into the caller-facing form.
func cellsOf(reports []*Report, errs []error) []Cell {
	cells := make([]Cell, len(reports))
	for i := range reports {
		cells[i] = Cell{Report: reports[i], Err: errs[i]}
	}
	return cells
}

// oneCell converts a K=1 lockstep result to the single-run signature:
// the global error when set, else the cell's own.
func oneCell(cells []Cell, err error) (*Report, error) {
	if len(cells) == 0 {
		return nil, err
	}
	if err == nil {
		err = cells[0].Err
	}
	return cells[0].Report, err
}
