package sample

import (
	"context"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// gateBenches is the standard three-benchmark sweep of the accuracy
// gate: a loop-dominated, a memory-bound and a branchy workload, chosen
// to stress the three state classes warming must keep hot (I-side
// locality, D-cache, predictor).
var gateBenches = []string{"gzip", "mcf", "crafty"}

// gateBudget is large enough that sampling statistics settle (about 100
// windows per benchmark under the default regime) while keeping the
// exact reference runs to roughly a second each.
const gateBudget = 2_000_000

// totalEnergy is the composite relative-energy figure the gate bounds:
// the technique-side accounting of the power model (gated wakeup, banked
// leakage) summed over the issue queue and the integer register file.
func totalEnergy(st *sim.Stats, cfg *sim.Config) float64 {
	p := power.DefaultParams()
	iqBanks := cfg.IQ.Entries / cfg.IQ.BankSize
	rfBanks := cfg.IntRF.Regs / cfg.IntRF.BankSize
	return p.IQDynamic(st, power.Gated) + p.IQStatic(st, iqBanks, false) +
		p.RFDynamic(st, rfBanks, true) + p.RFStatic(st, rfBanks, false)
}

func relErrPct(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return 100 * math.Abs(got-want) / math.Abs(want)
}

// TestAccuracyGate is the in-repo accuracy gate: sampled-mode IPC and
// energy must land within 2% of the exact run, as a mean over the
// standard three-benchmark sweep, and every per-benchmark error must
// stay within twice the gate. CI runs this on every push.
func TestAccuracyGate(t *testing.T) {
	if raceEnabled {
		t.Skip("accuracy gate runs natively in the dedicated CI job; see race_off.go")
	}
	const gatePct = 2.0
	var ipcErrs, energyErrs []float64
	cfg := sim.DefaultConfig()
	for _, name := range gateBenches {
		b, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		exact, err := sim.RunProgram(cfg, b.Build(42), gateBudget)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), cfg, b.Build(42), gateBudget, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ipcErr := relErrPct(rep.Stats.IPC(), exact.IPC())
		energyErr := relErrPct(totalEnergy(&rep.Stats, &cfg), totalEnergy(&exact, &cfg))
		t.Logf("%-8s exact IPC %.4f  sampled %.4f ±%.2f%%  IPC err %.2f%%  energy err %.2f%%  (%d windows, %.1f%% sampled)",
			name, exact.IPC(), rep.Stats.IPC(), rep.IPC.RelHalfPct(),
			ipcErr, energyErr, len(rep.Windows), 100*rep.SampledFraction())
		if ipcErr > 2*gatePct {
			t.Errorf("%s: per-benchmark IPC error %.2f%% exceeds %.1f%%", name, ipcErr, 2*gatePct)
		}
		if energyErr > 2*gatePct {
			t.Errorf("%s: per-benchmark energy error %.2f%% exceeds %.1f%%", name, energyErr, 2*gatePct)
		}
		ipcErrs = append(ipcErrs, ipcErr)
		energyErrs = append(energyErrs, energyErr)
	}
	meanIPC := stats.Mean(ipcErrs)
	meanEnergy := stats.Mean(energyErrs)
	t.Logf("mean |IPC err| %.2f%%  mean |energy err| %.2f%% (gate %.1f%%)", meanIPC, meanEnergy, gatePct)
	if meanIPC > gatePct {
		t.Errorf("mean IPC error %.2f%% exceeds the %.1f%% gate", meanIPC, gatePct)
	}
	if meanEnergy > gatePct {
		t.Errorf("mean energy error %.2f%% exceeds the %.1f%% gate", meanEnergy, gatePct)
	}
}

// TestAccuracyGateLockstep re-runs the accuracy gate with the sampled
// side executing as a lockstep batch: each benchmark's default
// configuration rides in an IQ-sweep batch of four cells, and the
// default cell must meet the same bounds as the solo gate. The batch
// path is proven bit-identical to the solo path by the differential
// suite (lockstep_test.go); this gate guards the other half — that the
// shared-stream results stay accurate against exact simulation, not
// merely self-consistent. It arms only in the dedicated CI job
// (SAMPLE_GATE=1): it repeats the full gate workload.
func TestAccuracyGateLockstep(t *testing.T) {
	if raceEnabled {
		t.Skip("accuracy gate runs natively in the dedicated CI job; see race_off.go")
	}
	if os.Getenv("SAMPLE_GATE") != "1" {
		t.Skip("SAMPLE_GATE not set; the solo gate already runs on every push")
	}
	const gatePct = 2.0
	iqSweep := []int{80, 48, 32, 16} // cell 0 is the default configuration
	var ipcErrs, energyErrs []float64
	for _, name := range gateBenches {
		b, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		cfgs := make([]sim.Config, len(iqSweep))
		for i, n := range iqSweep {
			cfgs[i] = sim.DefaultConfig()
			cfgs[i].IQ.Entries = n
		}
		exact, err := sim.RunProgram(cfgs[0], b.Build(42), gateBudget)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := RunLockstep(context.Background(), cfgs, b.Build(42), gateBudget, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i, cell := range cells {
			if cell.Err != nil {
				t.Fatalf("%s: lockstep cell iq=%d: %v", name, iqSweep[i], cell.Err)
			}
		}
		rep := cells[0].Report
		ipcErr := relErrPct(rep.Stats.IPC(), exact.IPC())
		energyErr := relErrPct(totalEnergy(&rep.Stats, &cfgs[0]), totalEnergy(&exact, &cfgs[0]))
		t.Logf("%-8s exact IPC %.4f  lockstep %.4f ±%.2f%%  IPC err %.2f%%  energy err %.2f%%  (%d windows, %d cells)",
			name, exact.IPC(), rep.Stats.IPC(), rep.IPC.RelHalfPct(),
			ipcErr, energyErr, len(rep.Windows), len(cells))
		if ipcErr > 2*gatePct {
			t.Errorf("%s: per-benchmark IPC error %.2f%% exceeds %.1f%%", name, ipcErr, 2*gatePct)
		}
		if energyErr > 2*gatePct {
			t.Errorf("%s: per-benchmark energy error %.2f%% exceeds %.1f%%", name, energyErr, 2*gatePct)
		}
		ipcErrs = append(ipcErrs, ipcErr)
		energyErrs = append(energyErrs, energyErr)
	}
	meanIPC := stats.Mean(ipcErrs)
	meanEnergy := stats.Mean(energyErrs)
	t.Logf("lockstep mean |IPC err| %.2f%%  mean |energy err| %.2f%% (gate %.1f%%)", meanIPC, meanEnergy, gatePct)
	if meanIPC > gatePct {
		t.Errorf("mean IPC error %.2f%% exceeds the %.1f%% gate", meanIPC, gatePct)
	}
	if meanEnergy > gatePct {
		t.Errorf("mean energy error %.2f%% exceeds the %.1f%% gate", meanEnergy, gatePct)
	}
}

// TestSampledSpeedup measures the wall-clock speedup of sampled over
// exact simulation on the standard sweep and requires >=5x. Wall-clock
// assertions are inherently machine- and load-sensitive, so the check
// only arms when SAMPLE_GATE=1 (the dedicated CI job sets it); without
// it the measurement still runs and logs.
func TestSampledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are meaningless under the race detector; see race_off.go")
	}
	cfg := sim.DefaultConfig()
	var tExact, tSampled time.Duration
	for _, name := range gateBenches {
		b, _ := workload.ByName(name)
		p := b.Build(42)
		t0 := time.Now()
		if _, err := sim.RunProgram(cfg, p, gateBudget); err != nil {
			t.Fatal(err)
		}
		tExact += time.Since(t0)
		t0 = time.Now()
		if _, err := Run(context.Background(), cfg, b.Build(42), gateBudget, Config{}); err != nil {
			t.Fatal(err)
		}
		tSampled += time.Since(t0)
	}
	speedup := float64(tExact) / float64(tSampled)
	t.Logf("exact %v, sampled %v: %.1fx speedup", tExact, tSampled, speedup)
	if os.Getenv("SAMPLE_GATE") != "1" {
		t.Logf("SAMPLE_GATE not set; speedup threshold not enforced")
		return
	}
	if speedup < 5 {
		t.Errorf("sampled speedup %.1fx below the 5x gate", speedup)
	}
}
