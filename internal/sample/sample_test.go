package sample

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testConfig() Config {
	// Small regime so unit tests stay fast: 200-inst windows every 2k.
	return Config{WindowInsts: 200, PeriodInsts: 2000, WarmupInsts: 400, DetailWarmupInsts: 200}
}

func TestRunDeterministic(t *testing.T) {
	b, _ := workload.ByName("vpr")
	cfg := sim.DefaultConfig()
	a, err := Run(context.Background(), cfg, b.Build(42), 100_000, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(context.Background(), cfg, b.Build(42), 100_000, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("two identical sampled runs produced different reports")
	}
	if len(a.Windows) == 0 {
		t.Fatal("no windows measured")
	}
	if a.SampledReal == 0 || a.TotalReal < a.SampledReal {
		t.Fatalf("accounting broken: sampled %d of total %d", a.SampledReal, a.TotalReal)
	}
	if a.Stats.Cycles == 0 || a.Stats.CommittedReal == 0 {
		t.Fatal("extrapolated stats empty")
	}
	// Extrapolated committed-real must land near the budget.
	if got := a.Stats.CommittedReal; got < 90_000 || got > 110_000 {
		t.Errorf("extrapolated CommittedReal = %d, want ~100000", got)
	}
}

// TestRunStoredGenerateResume: the first stored run generates the
// artifact; a second run resumes from it and must produce the exact
// same report — the bit-identity contract the checkpoint store's whole
// value rests on. (The broader cross-config differential suite lives in
// internal/campaign.)
func TestRunStoredGenerateResume(t *testing.T) {
	b, _ := workload.ByName("gzip")
	cfg := sim.DefaultConfig()
	sc := testConfig()
	st, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "ab12cd34ab12cd34ab12cd34ab12cd34"

	cold, err := RunStored(context.Background(), cfg, b.Build(42), 50_000, sc, st, key)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatal("generate pass did not publish the artifact")
	}
	if m := st.Metrics(); m.Generated != 1 || m.Misses == 0 {
		t.Fatalf("generate metrics: %+v", m)
	}

	warm, err := RunStored(context.Background(), cfg, b.Build(42), 50_000, sc, st, key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("resumed report differs from generating report:\ncold %+v\nwarm %+v", cold, warm)
	}
	if m := st.Metrics(); m.Hits == 0 {
		t.Fatalf("resume did not hit the store: %+v", m)
	}

	// Both must equal the store-less run too.
	plain, err := Run(context.Background(), cfg, b.Build(42), 50_000, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) {
		t.Fatal("stored run differs from plain run")
	}

	// Window starts must be strictly increasing along the stream.
	for i := 1; i < len(cold.Windows); i++ {
		if cold.Windows[i].StartSeq <= cold.Windows[i-1].StartSeq {
			t.Fatalf("window starts not increasing: %d then %d",
				cold.Windows[i-1].StartSeq, cold.Windows[i].StartSeq)
		}
	}
}

// TestRunStoredCorruptArtifact: a mangled artifact must be evicted and
// regenerated, not trusted.
func TestRunStoredCorruptArtifact(t *testing.T) {
	b, _ := workload.ByName("gzip")
	cfg := sim.DefaultConfig()
	sc := testConfig()
	dir := t.TempDir()
	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "ab12cd34ab12cd34ab12cd34ab12cd34"
	want, err := RunStored(context.Background(), cfg, b.Build(42), 50_000, sc, st, key)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".ckpt")
	if err := os.WriteFile(path, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := RunStored(context.Background(), cfg, b.Build(42), 50_000, sc, st, key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("regenerated report differs after corruption")
	}
	if !st.Has(key) {
		t.Fatal("regeneration did not republish the artifact")
	}
}

func TestRunPureFastForward(t *testing.T) {
	b, _ := workload.ByName("gzip")
	sc := testConfig()
	sc.PureFastForward = true
	rep, err := Run(context.Background(), sim.DefaultConfig(), b.Build(42), 50_000, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) == 0 || rep.Stats.IPC() <= 0 {
		t.Fatalf("pure fast-forward run broken: %d windows, IPC %v",
			len(rep.Windows), rep.Stats.IPC())
	}
}

func TestRunValidation(t *testing.T) {
	b, _ := workload.ByName("gzip")
	p := b.Build(42)
	cfg := sim.DefaultConfig()
	if _, err := Run(context.Background(), cfg, p, 0, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Run(context.Background(), cfg, p, 1000, Config{WindowInsts: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Run(context.Background(), cfg, p, 1000,
		Config{WindowInsts: 1000, PeriodInsts: 500}); err == nil {
		t.Error("period < window accepted")
	}
	if _, err := Run(context.Background(), cfg, p, 1000, Config{JitterPct: 95}); err == nil {
		t.Error("jitter > 90% accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	b, _ := workload.ByName("gzip")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, sim.DefaultConfig(), b.Build(42), 1<<40, Config{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled sampled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sampled run did not notice cancellation")
	}
}

func TestCounterArithmetic(t *testing.T) {
	var a, b sim.Stats
	a.Cycles, a.CommittedReal, a.IQ.Issues, a.DL1.Misses = 100, 50, 40, 7
	b.Cycles, b.CommittedReal, b.IQ.Issues, b.DL1.Misses = 10, 5, 4, 2
	var sum sim.Stats
	addStats(&sum, &a)
	addStats(&sum, &b)
	if sum.Cycles != 110 || sum.IQ.Issues != 44 || sum.DL1.Misses != 9 {
		t.Fatalf("addStats: %+v", sum)
	}
	d := subStats(&sum, &b)
	if d.Cycles != 100 || d.IQ.Issues != 40 || d.DL1.Misses != 7 {
		t.Fatalf("subStats: %+v", d)
	}
	s := scaleStats(&a, 2.5)
	if s.Cycles != 250 || s.CommittedReal != 125 || s.IQ.Issues != 100 {
		t.Fatalf("scaleStats: %+v", s)
	}
	// Scaling preserves derived ratios.
	if got, want := s.IPC(), a.IPC(); got != want {
		t.Fatalf("scaled IPC %v != %v", got, want)
	}
}

func TestDetailedFraction(t *testing.T) {
	c := Config{WindowInsts: 1000, PeriodInsts: 50000, WarmupInsts: 2000, DetailWarmupInsts: 1500}
	if got := c.DetailedFraction(); got != 0.05 {
		t.Fatalf("DetailedFraction = %v, want 0.05", got)
	}
}
