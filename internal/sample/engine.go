package sample

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/trace"
)

// countedStream wraps the emulator, counting committed real (non-hint)
// instructions and tracking the most recent issue-queue hint so a
// detailed window can start with the enclosing region's hint applied
// (Core.PresetHint) instead of an uncontrolled queue. The functional
// phases update the counters inline (see generate) to avoid a call and
// a record copy per fast-forwarded instruction.
type countedStream struct {
	e        *emu.Emulator
	real     int64
	lastHint int
}

// observe applies the phase-independent bookkeeping for one record.
func (s *countedStream) observe(d *trace.DynInst) {
	if d.Hint > 0 {
		s.lastHint = d.Hint
	}
	if d.Op != isa.HintNop {
		s.real++
	}
}

// Next implements trace.Stream.
func (s *countedStream) Next() (trace.DynInst, bool) {
	d, ok := s.e.Next()
	if !ok {
		return d, ok
	}
	s.observe(&d)
	return d, ok
}

// warmer drives the update-only warming paths of the cache hierarchy and
// branch predictor for one dynamic instruction, mirroring what the
// detailed core's front end and memory pipeline would touch: one I-cache
// access per line transition, predictor training for every control
// transfer, and D-cache state transitions for every load and store. It
// runs once per fast-forwarded instruction, so it is written for the hot
// path: the instruction class is resolved once and the I-line check uses
// a shift when the line size is a power of two.
type warmer struct {
	mem       *cache.Hierarchy
	bp        *bpred.Predictor
	lineBytes int
	lineShift int // log2(lineBytes) when a power of two, else -1
	lastLine  int
}

func newWarmer(mem *cache.Hierarchy, bp *bpred.Predictor) *warmer {
	w := &warmer{mem: mem, bp: bp, lineBytes: mem.IL1.Config().LineBytes, lastLine: -1, lineShift: -1}
	if lb := w.lineBytes; lb > 0 && lb&(lb-1) == 0 {
		w.lineShift = bits.TrailingZeros(uint(lb))
	}
	return w
}

func (w *warmer) observe(d *trace.DynInst) {
	var line int
	if w.lineShift >= 0 {
		line = d.PC >> uint(w.lineShift)
	} else {
		line = d.PC / w.lineBytes
	}
	if line != w.lastLine {
		w.lastLine = line
		w.mem.WarmFetch(d.PC)
	}
	switch d.Op.Class() {
	case isa.ClassLoad:
		w.mem.WarmLoad(d.Addr)
	case isa.ClassStore:
		w.mem.WarmStore(d.Addr)
	case isa.ClassBranch:
		w.bp.TrainCond(d.PC, d.Taken)
		if d.Taken {
			w.bp.WarmBTB(d.PC, d.NextPC)
		}
	case isa.ClassCtrl:
		switch {
		case d.Op == isa.Jmp:
			w.bp.WarmBTB(d.PC, d.NextPC)
		case d.Op.IsCall():
			w.bp.WarmCall(d.PC + isa.InstBytes)
			w.bp.WarmBTB(d.PC, d.NextPC)
		case d.Op == isa.Ret:
			w.bp.WarmReturn()
		}
	}
}

// Run executes a sampled simulation of the program under the processor
// configuration, over budget committed real instructions (the same
// budget semantics as sim.RunProgram: the emulator restarts the program
// as needed). It returns the extrapolated statistics with per-window
// detail; on cancellation the partial report accumulated so far is
// returned alongside ctx's error.
//
// The caller's cfg.MaxInsts and cfg.MaxCycles are ignored: windows set
// their own commit targets and per-window cycle safety nets. cfg.Probe,
// if any, observes detailed windows only, with cycle numbers restarting
// at each window.
func Run(ctx context.Context, cfg sim.Config, p *prog.Program, budget int64, sc Config) (*Report, error) {
	return RunStored(ctx, cfg, p, budget, sc, nil, "")
}

// RunStored is Run with a checkpoint store attached. When the store
// holds an artifact under key, the run resumes its detailed windows
// directly from the stored warm state — skipping fast-forward and
// functional warming entirely; otherwise it generates the artifact
// write-through while running. A nil store or empty key disables
// checkpointing. Resumed runs are bit-identical to warm-from-scratch
// runs: the window schedule is a pure function of (budget, regime), and
// each window executes on a fork of the stream state at its start, so
// neither path can perturb the other's numbers.
func RunStored(ctx context.Context, cfg sim.Config, p *prog.Program, budget int64, sc Config, store *ckpt.Store, key string) (*Report, error) {
	return oneCell(RunLockstepStored(ctx, []sim.Config{cfg}, p, budget, sc, store, key))
}

// runWindow executes one detailed window on a fork of the stream: a
// fresh emulator restored from the window's architectural checkpoint
// and the window's own warm hierarchy/predictor (the caller hands over
// ownership; stats are reset here). Both the generate and resume paths
// measure every window through this one function — that shared path is
// what makes their reports bit-identical.
func runWindow(ctx context.Context, cfg sim.Config, p *prog.Program, win *ckpt.Window, detail int64, sc Config) (sim.Stats, error) {
	fe, err := emu.NewFromCheckpoint(p, win.Ckpt)
	if err != nil {
		return sim.Stats{}, err
	}
	fe.Restart = true
	mem, bp := win.Mem, win.Bp
	// The window's measurement must hold this window's traffic only
	// (warming charges nothing by construction).
	mem.IL1.Stats, mem.DL1.Stats, mem.L2.Stats = cache.Stats{}, cache.Stats{}, cache.Stats{}
	bp.Stats = bpred.Stats{}

	measured := sc.WindowInsts
	if measured > detail {
		measured = detail
	}
	dwarm := detail - measured

	wcfg := cfg
	wcfg.MaxInsts = detail
	wcfg.MaxCycles = sim.SafetyCycles(detail)
	core, err := sim.NewResumable(wcfg, fe, mem, bp)
	if err != nil {
		return sim.Stats{}, err
	}
	core.PresetHint(win.LastHint)
	var fillSnap sim.Stats
	if dwarm > 0 {
		if fillSnap, err = core.RunSegment(ctx, dwarm); err != nil {
			return sim.Stats{}, err
		}
	}
	full, err := core.RunSegment(ctx, detail)
	return subStats(&full, &fillSnap), err
}

// windowDetail returns a window's detailed length (unmeasured pipeline
// fill plus measured unit), shrunk at the end of the budget. Both paths
// derive it from the window's stream position with this one formula.
func windowDetail(sc Config, startReal, budget int64) int64 {
	detail := sc.DetailWarmupInsts + sc.WindowInsts
	if remaining := budget - startReal; detail > remaining {
		detail = remaining
	}
	return detail
}

// generateK runs the full functional stream — fast-forward, warming,
// and a fork-per-window detailed measurement fanned out to every cell —
// writing each window's resume state through to the store when one is
// attached. The stream is shared: each of the K configurations only
// pays for its own detailed windows.
func generateK(ctx context.Context, cfgs []sim.Config, p *prog.Program, budget int64, sc Config, store *ckpt.Store, key string) ([]Cell, error) {
	e, err := emu.New(p)
	if err != nil {
		return nil, err
	}
	e.Restart = true
	mem, err := cache.NewHierarchy(cfgs[0].Caches)
	if err != nil {
		return nil, err
	}
	bp := bpred.New(cfgs[0].Bpred)
	cs := &countedStream{e: e}
	warm := newWarmer(mem, bp)
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	for i := range reports {
		reports[i] = &Report{Confidence: sc.Confidence}
	}
	live := len(cfgs)
	// fail retires one cell: its report ends at the failure's stream
	// position, the rest of the grid keeps measuring.
	fail := func(i int, err error, at int64) {
		errs[i] = err
		reports[i].finalize(at)
		live--
	}

	var w *ckpt.Writer
	if store != nil && key != "" {
		// A failed Create just means no artifact gets published; the run
		// itself must not care.
		w, _ = store.Create(key, budget)
	}
	defer func() { w.Abort() }() // no-op once committed

	ffPerPeriod := sc.PeriodInsts - sc.WarmupInsts - sc.DetailWarmupInsts - sc.WindowInsts
	// Deterministic per-run jitter source: windows must not alias with
	// loop periodicity in the workload, and re-runs must land identical
	// results for the campaign cache. Seeded from the regime so equal
	// jobs sample equal positions.
	jitterState := uint64(budget)*2654435761 + uint64(sc.PeriodInsts) + 1
	jitteredGap := func() int64 {
		if sc.JitterPct <= 0 || ffPerPeriod == 0 {
			return ffPerPeriod
		}
		jitterState ^= jitterState << 13
		jitterState ^= jitterState >> 7
		jitterState ^= jitterState << 17
		span := ffPerPeriod * int64(sc.JitterPct) / 100
		return ffPerPeriod - span + int64(jitterState%uint64(2*span+1))
	}

	for cs.real < budget {
		if err := ctx.Err(); err != nil {
			for i := range errs {
				if errs[i] == nil {
					fail(i, err, cs.real)
				}
			}
			return cellsOf(reports, errs), err
		}

		// Functional warming: architectural execution plus cache and
		// predictor state transitions, no statistics.
		warmStart := cs.real
		stop := warmStart + sc.WarmupInsts
		if stop > budget {
			stop = budget
		}
		for cs.real < stop {
			d, ok := e.Next()
			if !ok {
				break
			}
			cs.observe(&d)
			warm.observe(&d)
		}
		warmed := cs.real - warmStart
		for i := range reports {
			if errs[i] == nil {
				reports[i].WarmedReal += warmed
			}
		}
		if cs.real >= budget || e.Halted() {
			break
		}

		// Detailed window on a fork of the stream state at this position.
		// The window's resume state is serialized before any cell runs,
		// so the published artifact holds exactly what every measurement
		// saw. Each live cell then measures on its own fork of the warm
		// state; the last one consumes the snapshot itself, which makes
		// K=1 byte-for-byte the pre-lockstep single-run path.
		detail := windowDetail(sc, cs.real, budget)
		win := &ckpt.Window{
			StartReal: cs.real,
			LastHint:  cs.lastHint,
			Ckpt:      e.Checkpoint(),
			Mem:       mem.Clone(),
			Bp:        bp.Clone(),
		}
		if w != nil {
			if err := w.Append(win); err != nil {
				w.Abort()
				w = nil
			}
		}
		forks := live
		for i := range cfgs {
			if errs[i] != nil {
				continue
			}
			cw := win
			if forks--; forks > 0 {
				cw = &ckpt.Window{
					StartReal: win.StartReal,
					LastHint:  win.LastHint,
					Ckpt:      win.Ckpt,
					Mem:       win.Mem.Clone(),
					Bp:        win.Bp.Clone(),
				}
			}
			winStats, werr := runWindow(ctx, cfgs[i], p, cw, detail, sc)
			reports[i].Windows = append(reports[i].Windows, Window{StartSeq: win.Ckpt.Seq(), Stats: winStats})
			if werr != nil {
				fail(i, werr, cs.real)
			}
		}
		if live == 0 {
			return cellsOf(reports, errs), nil
		}

		// The main stream re-executes the window's region functionally —
		// with warming, regardless of PureFastForward, so the state every
		// later window starts from is a pure function of the stream
		// position and never of this cell's detailed configuration.
		stop = cs.real + detail
		for cs.real < stop {
			d, ok := e.Next()
			if !ok {
				break
			}
			cs.observe(&d)
			warm.observe(&d)
		}

		// Fast-forward: architectural state always; cache and predictor
		// warming too unless PureFastForward.
		ffStart := cs.real
		stop = ffStart + jitteredGap()
		if stop > budget {
			stop = budget
		}
		if sc.PureFastForward {
			for cs.real < stop {
				d, ok := e.Next()
				if !ok {
					break
				}
				cs.observe(&d)
			}
		} else {
			for cs.real < stop {
				d, ok := e.Next()
				if !ok {
					break
				}
				cs.observe(&d)
				warm.observe(&d)
			}
		}
		ffwd := cs.real - ffStart
		for i := range reports {
			if errs[i] == nil {
				reports[i].FastForwardReal += ffwd
			}
		}
		if e.Halted() {
			break
		}
	}
	var done *Report
	for i := range reports {
		if errs[i] == nil {
			reports[i].finalize(cs.real)
			done = reports[i]
		}
	}
	if w != nil && done != nil {
		// Publish only a complete artifact; a commit failure is a cache
		// miss for the next job, not an error for this one. The stream
		// accounting is cell-independent, so any finished cell's report
		// supplies the trailer.
		_ = w.Commit(ckpt.Trailer{
			TotalReal:       done.TotalReal,
			WarmedReal:      done.WarmedReal,
			FastForwardReal: done.FastForwardReal,
		})
		w = nil
	}
	return cellsOf(reports, errs), nil
}

// resumeK replays a run's detailed windows from a stored artifact for
// every cell, skipping the functional stream entirely — a warm-resumed
// lockstep batch touches the artifact once. ok is false when the
// artifact is missing or unusable (an unusable one is evicted so the
// caller regenerates it); otherwise the returned cells and error are
// final.
func resumeK(ctx context.Context, cfgs []sim.Config, p *prog.Program, budget int64, sc Config, store *ckpt.Store, key string) (cells []Cell, err error, ok bool) {
	r, oerr := store.OpenArtifact(key, p, cfgs[0].Caches, cfgs[0].Bpred)
	if oerr != nil {
		if !errors.Is(oerr, fs.ErrNotExist) {
			store.Remove(key)
		}
		return nil, nil, false
	}
	defer r.Close()
	if r.Budget() != budget {
		// A key collision across budgets cannot happen through the
		// campaign keying (budget is part of the key); treat direct-API
		// mismatches as a miss without evicting the artifact.
		return nil, nil, false
	}
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	for i := range reports {
		reports[i] = &Report{Confidence: sc.Confidence}
	}
	live := len(cfgs)
	for {
		if cerr := ctx.Err(); cerr != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = cerr
					reports[i].finalize(budget)
				}
			}
			return cellsOf(reports, errs), cerr, true
		}
		win, rerr := r.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Corrupt mid-stream: evict and regenerate — windows are
			// deterministic, so the rerun is always safe.
			store.Remove(key)
			return nil, nil, false
		}
		detail := windowDetail(sc, win.StartReal, budget)
		forks := live
		for i := range cfgs {
			if errs[i] != nil {
				continue
			}
			cw := win
			if forks--; forks > 0 {
				cw = &ckpt.Window{
					StartReal: win.StartReal,
					LastHint:  win.LastHint,
					Ckpt:      win.Ckpt,
					Mem:       win.Mem.Clone(),
					Bp:        win.Bp.Clone(),
				}
			}
			winStats, werr := runWindow(ctx, cfgs[i], p, cw, detail, sc)
			reports[i].Windows = append(reports[i].Windows, Window{StartSeq: win.Ckpt.Seq(), Stats: winStats})
			if werr != nil {
				errs[i] = werr
				reports[i].finalize(budget)
				live--
			}
		}
		if live == 0 {
			return cellsOf(reports, errs), nil, true
		}
	}
	tr, got := r.Trailer()
	if !got {
		store.Remove(key)
		return nil, nil, false
	}
	for i := range reports {
		if errs[i] == nil {
			reports[i].WarmedReal = tr.WarmedReal
			reports[i].FastForwardReal = tr.FastForwardReal
			reports[i].finalize(tr.TotalReal)
		}
	}
	return cellsOf(reports, errs), nil, true
}
