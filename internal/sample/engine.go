package sample

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/trace"
)

// countedStream wraps the emulator, counting committed real (non-hint)
// instructions and tracking the most recent issue-queue hint so a
// detailed window can start with the enclosing region's hint applied
// (Core.PresetHint) instead of an uncontrolled queue. The detailed
// windows consume it as their trace.Stream; the functional phases update
// the same counters inline (see Run) to avoid a call and a record copy
// per fast-forwarded instruction.
type countedStream struct {
	e        *emu.Emulator
	real     int64
	lastHint int
}

// observe applies the phase-independent bookkeeping for one record.
func (s *countedStream) observe(d *trace.DynInst) {
	if d.Hint > 0 {
		s.lastHint = d.Hint
	}
	if d.Op != isa.HintNop {
		s.real++
	}
}

// Next implements trace.Stream.
func (s *countedStream) Next() (trace.DynInst, bool) {
	d, ok := s.e.Next()
	if !ok {
		return d, ok
	}
	s.observe(&d)
	return d, ok
}

// warmer drives the update-only warming paths of the cache hierarchy and
// branch predictor for one dynamic instruction, mirroring what the
// detailed core's front end and memory pipeline would touch: one I-cache
// access per line transition, predictor training for every control
// transfer, and D-cache state transitions for every load and store. It
// runs once per fast-forwarded instruction, so it is written for the hot
// path: the instruction class is resolved once and the I-line check uses
// a shift when the line size is a power of two.
type warmer struct {
	mem       *cache.Hierarchy
	bp        *bpred.Predictor
	lineBytes int
	lineShift int // log2(lineBytes) when a power of two, else -1
	lastLine  int
}

func newWarmer(mem *cache.Hierarchy, bp *bpred.Predictor) *warmer {
	w := &warmer{mem: mem, bp: bp, lineBytes: mem.IL1.Config().LineBytes, lastLine: -1, lineShift: -1}
	if lb := w.lineBytes; lb > 0 && lb&(lb-1) == 0 {
		w.lineShift = bits.TrailingZeros(uint(lb))
	}
	return w
}

func (w *warmer) observe(d *trace.DynInst) {
	var line int
	if w.lineShift >= 0 {
		line = d.PC >> uint(w.lineShift)
	} else {
		line = d.PC / w.lineBytes
	}
	if line != w.lastLine {
		w.lastLine = line
		w.mem.WarmFetch(d.PC)
	}
	switch d.Op.Class() {
	case isa.ClassLoad:
		w.mem.WarmLoad(d.Addr)
	case isa.ClassStore:
		w.mem.WarmStore(d.Addr)
	case isa.ClassBranch:
		w.bp.TrainCond(d.PC, d.Taken)
		if d.Taken {
			w.bp.WarmBTB(d.PC, d.NextPC)
		}
	case isa.ClassCtrl:
		switch {
		case d.Op == isa.Jmp:
			w.bp.WarmBTB(d.PC, d.NextPC)
		case d.Op.IsCall():
			w.bp.WarmCall(d.PC + isa.InstBytes)
			w.bp.WarmBTB(d.PC, d.NextPC)
		case d.Op == isa.Ret:
			w.bp.WarmReturn()
		}
	}
}

// Run executes a sampled simulation of the program under the processor
// configuration, over budget committed real instructions (the same
// budget semantics as sim.RunProgram: the emulator restarts the program
// as needed). It returns the extrapolated statistics with per-window
// detail; on cancellation the partial report accumulated so far is
// returned alongside ctx's error.
//
// The caller's cfg.MaxInsts and cfg.MaxCycles are ignored: windows set
// their own commit targets and per-window cycle safety nets. cfg.Probe,
// if any, observes detailed windows only, with cycle numbers restarting
// at each window.
func Run(ctx context.Context, cfg sim.Config, p *prog.Program, budget int64, sc Config) (*Report, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("sample: sampled runs need a positive budget, got %d", budget)
	}
	e, err := emu.New(p)
	if err != nil {
		return nil, err
	}
	e.Restart = true
	mem, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	bp := bpred.New(cfg.Bpred)
	cs := &countedStream{e: e}
	warm := newWarmer(mem, bp)
	rep := &Report{Confidence: sc.Confidence}
	ffPerPeriod := sc.PeriodInsts - sc.WarmupInsts - sc.DetailWarmupInsts - sc.WindowInsts
	// Deterministic per-run jitter source: windows must not alias with
	// loop periodicity in the workload, and re-runs must land identical
	// results for the campaign cache. Seeded from the regime so equal
	// jobs sample equal positions.
	jitterState := uint64(budget)*2654435761 + uint64(sc.PeriodInsts) + 1
	jitteredGap := func() int64 {
		if sc.JitterPct <= 0 || ffPerPeriod == 0 {
			return ffPerPeriod
		}
		jitterState ^= jitterState << 13
		jitterState ^= jitterState >> 7
		jitterState ^= jitterState << 17
		span := ffPerPeriod * int64(sc.JitterPct) / 100
		return ffPerPeriod - span + int64(jitterState%uint64(2*span+1))
	}

	for cs.real < budget {
		if err := ctx.Err(); err != nil {
			rep.finalize(cs.real)
			return rep, err
		}

		// Functional warming: architectural execution plus cache and
		// predictor state transitions, no statistics.
		warmStart := cs.real
		stop := warmStart + sc.WarmupInsts
		if stop > budget {
			stop = budget
		}
		for cs.real < stop {
			d, ok := e.Next()
			if !ok {
				break
			}
			cs.observe(&d)
			warm.observe(&d)
		}
		rep.WarmedReal += cs.real - warmStart
		if cs.real >= budget || e.Halted() {
			break
		}

		// Detailed window over the shared warmed state. The window may
		// shrink at the end of the budget; the measured unit shrinks last.
		detail := sc.DetailWarmupInsts + sc.WindowInsts
		if remaining := budget - cs.real; detail > remaining {
			detail = remaining
		}
		measured := sc.WindowInsts
		if measured > detail {
			measured = detail
		}
		dwarm := detail - measured

		if sc.KeepCheckpoints {
			rep.Checkpoints = append(rep.Checkpoints, e.Checkpoint())
		}
		startSeq := e.Seq()
		// Reset the shared state's counters so segment snapshots hold this
		// window's traffic only (warming charges nothing by construction).
		mem.IL1.Stats, mem.DL1.Stats, mem.L2.Stats = cache.Stats{}, cache.Stats{}, cache.Stats{}
		bp.Stats = bpred.Stats{}

		wcfg := cfg
		wcfg.MaxInsts = detail
		wcfg.MaxCycles = sim.SafetyCycles(detail)
		core, err := sim.NewResumable(wcfg, cs, mem, bp)
		if err != nil {
			return nil, err
		}
		core.PresetHint(cs.lastHint)
		var fillSnap sim.Stats
		if dwarm > 0 {
			if fillSnap, err = core.RunSegment(ctx, dwarm); err != nil {
				rep.finalize(cs.real)
				return rep, err
			}
		}
		full, err := core.RunSegment(ctx, detail)
		win := subStats(&full, &fillSnap)
		rep.Windows = append(rep.Windows, Window{StartSeq: startSeq, Stats: win})
		if err != nil {
			rep.finalize(cs.real)
			return rep, err
		}

		// Fast-forward: architectural state always; cache and predictor
		// warming too unless PureFastForward. (Instructions the window
		// core fetched but did not commit were already consumed from the
		// stream and executed architecturally; they simply join the gap.)
		ffStart := cs.real
		stop = ffStart + jitteredGap()
		if stop > budget {
			stop = budget
		}
		if sc.PureFastForward {
			for cs.real < stop {
				d, ok := e.Next()
				if !ok {
					break
				}
				cs.observe(&d)
			}
		} else {
			for cs.real < stop {
				d, ok := e.Next()
				if !ok {
					break
				}
				cs.observe(&d)
				warm.observe(&d)
			}
		}
		rep.FastForwardReal += cs.real - ffStart
		if e.Halted() {
			break
		}
	}
	rep.finalize(cs.real)
	return rep, nil
}
