// Lockstep differential suite: the lockstep executor fans ONE emulator +
// functional-warming stream out to K detailed cores, and its entire
// claim to correctness is bit-identity with the per-cell path. These
// tests run the same 8-cell IQ sweep both ways — at the engine level
// (sample.RunLockstepStored vs sample.RunStored) and at the campaign
// level (Engine.Lockstep on vs off, exact and sampled, checkpoint store
// on and off) — and require identical per-cell Stats and byte-identical
// exports. The suite runs under -race in CI: the per-window fan-out
// clones memory and predictor state per cell, and a missed clone shows
// up here as a divergence or a race report.
//
// External test package: campaign imports sample, so the campaign-level
// differentials must live outside package sample.
package sample_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/workload"
)

// iqAxis is the 8-cell sweep every differential here runs: IQ sizes are
// invisible to functional warming, so all eight cells share one
// CheckpointKey and form a single lockstep batch.
var iqAxis = []int{16, 24, 32, 40, 48, 56, 64, 80}

// testRegime keeps windows dense enough that a 60k budget yields a
// multi-window report while the suite stays fast.
func testRegime() sample.Config {
	return sample.Config{WindowInsts: 500, PeriodInsts: 4000, WarmupInsts: 1000, DetailWarmupInsts: 250}
}

const testBudget = 60_000

func buildGzip(t *testing.T) *workload.Benchmark {
	t.Helper()
	b, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip benchmark missing")
	}
	return &b
}

func iqConfigs() []sim.Config {
	cfgs := make([]sim.Config, len(iqAxis))
	for i, n := range iqAxis {
		cfgs[i] = sim.DefaultConfig()
		cfgs[i].IQ.Entries = n
	}
	return cfgs
}

// TestLockstepEngineDifferential is the core claim at the sample-engine
// level: RunLockstepStored over K configs returns, cell for cell, the
// exact Report RunStored produces for that config alone — storeless,
// generating into a cold store, and resuming from a warm one.
func TestLockstepEngineDifferential(t *testing.T) {
	ctx := context.Background()
	b := buildGzip(t)
	cfgs := iqConfigs()
	sc := testRegime()

	want := make([]*sample.Report, len(cfgs))
	for i, cfg := range cfgs {
		rep, err := sample.RunStored(ctx, cfg, b.Build(42), testBudget, sc, nil, "")
		if err != nil {
			t.Fatalf("per-cell iq=%d: %v", iqAxis[i], err)
		}
		want[i] = rep
	}

	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Keys are content hashes in production (campaign.CheckpointKey);
	// any lowercase-hex string works at this layer.
	const key = "beefbeefbeefbeefbeefbeefbeefbeef"
	runs := []struct {
		name  string
		store *ckpt.Store
		key   string
	}{
		{"storeless", nil, ""},
		{"cold store", store, key},
		{"warm store", store, key},
	}
	for _, run := range runs {
		cells, err := sample.RunLockstepStored(ctx, cfgs, b.Build(42), testBudget, sc, run.store, run.key)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(cells) != len(cfgs) {
			t.Fatalf("%s: %d cells for %d configs", run.name, len(cells), len(cfgs))
		}
		for i, cell := range cells {
			if cell.Err != nil {
				t.Fatalf("%s: cell iq=%d: %v", run.name, iqAxis[i], cell.Err)
			}
			if !reflect.DeepEqual(cell.Report, want[i]) {
				t.Errorf("%s: cell iq=%d report diverges from per-cell run", run.name, iqAxis[i])
			}
		}
	}
	// The batch shares one warming pass: one artifact generated, one
	// resume for the warm run.
	if m := store.Metrics(); m.Generated != 1 || m.Hits != 1 {
		t.Errorf("store metrics = %+v, want 1 generate + 1 hit for the whole batch", m)
	}
}

// TestLockstepWarmingIdentityGuard: cells whose warm state would differ
// (cache or predictor geometry) must be refused, not silently shared.
func TestLockstepWarmingIdentityGuard(t *testing.T) {
	ctx := context.Background()
	b := buildGzip(t)
	sc := testRegime()

	cfgs := []sim.Config{sim.DefaultConfig(), sim.DefaultConfig()}
	cfgs[1].Caches.DL1.SizeBytes *= 2
	if _, err := sample.RunLockstep(ctx, cfgs, b.Build(42), testBudget, sc); err == nil {
		t.Error("differing cache geometry accepted into one lockstep batch")
	}

	cfgs = []sim.Config{sim.DefaultConfig(), sim.DefaultConfig()}
	cfgs[1].Bpred.BTBEntries *= 2
	if _, err := sample.RunLockstep(ctx, cfgs, b.Build(42), testBudget, sc); err == nil {
		t.Error("differing predictor geometry accepted into one lockstep batch")
	}

	if _, err := sample.RunLockstep(ctx, nil, b.Build(42), testBudget, sc); err == nil {
		t.Error("empty batch accepted")
	}
}

// --- campaign-level differential ---

// lockstepSpec is the 8-cell IQ sweep as a campaign: one benchmark, the
// baseline technique, the iq.entries axis.
func lockstepSpec(sampled bool) campaign.Spec {
	spec := campaign.Spec{
		Name:       "lockstep-differential",
		Benchmarks: []string{"gzip"},
		Techniques: []campaign.Technique{campaign.TechBaseline},
		Budget:     testBudget,
		Seed:       42,
		Base:       sim.DefaultConfig(),
		Params:     power.DefaultParams(),
		Axes:       []campaign.Axis{{Name: "iq.entries", Values: iqAxis}},
	}
	if sampled {
		spec.Sampling = &campaign.Sampling{Window: 500, Period: 4000, Warmup: 1000, DetailWarmup: 250}
	}
	return spec
}

// normalizeWallClock zeroes the timing metadata two executions of the
// same campaign legitimately differ in, so the JSON export comparison
// tests identity of everything else.
func normalizeWallClock(rs *campaign.ResultSet) {
	for i := range rs.Results {
		r := &rs.Results[i]
		r.CompileMS, r.GenMS = 0, 0
		r.StartedAt, r.FinishedAt = time.Time{}, time.Time{}
	}
}

// exports renders a result set's CSV as written and its JSON after
// wall-clock normalisation, without mutating rs.
func exports(t *testing.T, rs *campaign.ResultSet) (csv, js []byte) {
	t.Helper()
	var c bytes.Buffer
	if err := rs.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	norm := *rs
	norm.Results = append([]campaign.Result(nil), rs.Results...)
	normalizeWallClock(&norm)
	var j bytes.Buffer
	if err := norm.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return c.Bytes(), j.Bytes()
}

// diffCampaigns requires got to be result-for-result and export-for-
// export identical to want (CSV byte-identical as written; JSON after
// wall-clock normalisation).
func diffCampaigns(t *testing.T, name string, want, got *campaign.ResultSet) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", name, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := &want.Results[i], &got.Results[i]
		if !reflect.DeepEqual(w.Stats, g.Stats) {
			t.Errorf("%s: %s/%s/%s: stats diverge", name, g.Bench, g.Tech, g.Point)
		}
		if !reflect.DeepEqual(w.Sampled, g.Sampled) {
			t.Errorf("%s: %s/%s/%s: sampling meta diverges", name, g.Bench, g.Tech, g.Point)
		}
	}
	wantCSV, wantJSON := exports(t, want)
	gotCSV, gotJSON := exports(t, got)
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Errorf("%s: CSV export is not byte-identical", name)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("%s: JSON export is not byte-identical", name)
	}
}

// TestLockstepCampaignDifferential runs the 8-cell sweep per-cell
// (Lockstep off — the reference) and lockstep, sampled and exact, with
// and without a checkpoint store, and requires bit-identical campaigns
// throughout.
func TestLockstepCampaignDifferential(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		sampled bool
	}{{"sampled", true}, {"exact", false}} {
		t.Run(mode.name, func(t *testing.T) {
			spec := lockstepSpec(mode.sampled)
			ref, err := (&campaign.Engine{Workers: 2}).Run(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Executed != len(iqAxis) {
				t.Fatalf("reference executed %d of %d cells", ref.Executed, len(iqAxis))
			}

			store, err := ckpt.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			runs := []struct {
				name   string
				engine *campaign.Engine
			}{
				{"lockstep storeless", &campaign.Engine{Workers: 2, Lockstep: true}},
				{"lockstep cold store", &campaign.Engine{Workers: 2, Lockstep: true, Ckpt: store}},
				{"lockstep warm store", &campaign.Engine{Workers: 2, Lockstep: true, Ckpt: store}},
			}
			for _, run := range runs {
				rs, err := run.engine.Run(ctx, spec)
				if err != nil {
					t.Fatalf("%s: %v", run.name, err)
				}
				if rs.Executed != len(iqAxis) {
					t.Errorf("%s: executed %d of %d cells", run.name, rs.Executed, len(iqAxis))
				}
				diffCampaigns(t, run.name, ref, rs)
			}
			if mode.sampled {
				// All eight cells share one warming identity: the whole
				// batch generated one artifact and the warm run resumed it
				// with a single store read.
				if m := store.Metrics(); m.Generated != 1 || m.Hits != 1 {
					t.Errorf("store metrics = %+v, want 1 generate + 1 hit", m)
				}
			}
		})
	}
}
