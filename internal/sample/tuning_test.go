package sample

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestTuneRegimes sweeps sampling regimes and prints the accuracy/speed
// frontier on the gate benchmarks — a development aid for choosing
// DefaultConfig, armed only with SAMPLE_TUNE=1.
func TestTuneRegimes(t *testing.T) {
	if os.Getenv("SAMPLE_TUNE") != "1" {
		t.Skip("set SAMPLE_TUNE=1 to run the regime sweep")
	}
	cfg := sim.DefaultConfig()
	type exactRes struct {
		ipc float64
		dur time.Duration
	}
	exact := map[string]exactRes{}
	for _, name := range gateBenches {
		b, _ := workload.ByName(name)
		p := b.Build(42)
		t0 := time.Now()
		st, err := sim.RunProgram(cfg, p, gateBudget)
		if err != nil {
			t.Fatal(err)
		}
		exact[name] = exactRes{st.IPC(), time.Since(t0)}
	}
	regimes := []Config{
		{WindowInsts: 1000, PeriodInsts: 20000, WarmupInsts: 2000, DetailWarmupInsts: 500},
		{WindowInsts: 1000, PeriodInsts: 30000, WarmupInsts: 2000, DetailWarmupInsts: 500},
		{WindowInsts: 1000, PeriodInsts: 40000, WarmupInsts: 1000, DetailWarmupInsts: 500},
		{WindowInsts: 1000, PeriodInsts: 20000, WarmupInsts: 2000, DetailWarmupInsts: 1000},
		{WindowInsts: 1000, PeriodInsts: 50000, WarmupInsts: 2000, DetailWarmupInsts: 1000},
		{WindowInsts: 1000, PeriodInsts: 100000, WarmupInsts: 2000, DetailWarmupInsts: 1000},
		{WindowInsts: 2000, PeriodInsts: 50000, WarmupInsts: 2000, DetailWarmupInsts: 1000},
		{WindowInsts: 500, PeriodInsts: 50000, WarmupInsts: 2000, DetailWarmupInsts: 1000},
		{WindowInsts: 1000, PeriodInsts: 50000, WarmupInsts: 2000, DetailWarmupInsts: 2000},
		{WindowInsts: 1000, PeriodInsts: 60000, WarmupInsts: 2000, DetailWarmupInsts: 2000},
		{WindowInsts: 1000, PeriodInsts: 75000, WarmupInsts: 2000, DetailWarmupInsts: 2000},
	}
	for _, sc := range regimes {
		var sumAbsErr, worst float64
		var tSampled, tExact time.Duration
		for _, name := range gateBenches {
			b, _ := workload.ByName(name)
			t0 := time.Now()
			rep, err := Run(context.Background(), cfg, b.Build(42), gateBudget, sc)
			if err != nil {
				t.Fatal(err)
			}
			d := time.Since(t0)
			tSampled += d
			tExact += exact[name].dur
			e := relErrPct(rep.Stats.IPC(), exact[name].ipc)
			sumAbsErr += e
			if e > worst {
				worst = e
			}
		}
		fmt.Printf("w=%-5d p=%-6d warm=%-5d dwarm=%-5d det=%4.1f%%  meanErr %.2f%%  worst %.2f%%  speedup %.1fx\n",
			sc.WindowInsts, sc.PeriodInsts, sc.WarmupInsts, sc.DetailWarmupInsts,
			100*sc.DetailedFraction(), sumAbsErr/float64(len(gateBenches)), worst,
			float64(tExact)/float64(tSampled))
	}
}
