//go:build !race

package sample

// raceEnabled reports whether the race detector is compiled in; the
// accuracy-gate tests skip under it (10-20x slowdown makes the runs
// expensive and the wall-clock speedup measurement meaningless — the
// dedicated CI accuracy-gate job runs them natively).
const raceEnabled = false
