package sample

import (
	"math"
	"reflect"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Window is one measured detailed window.
type Window struct {
	// StartSeq is the emulator sequence number at the window start (after
	// functional warming, before detailed pipeline fill).
	StartSeq int64
	// Stats are the window's own event counts (pipeline-fill segment
	// excluded).
	Stats sim.Stats
}

// Metric is a sampled quantity with its confidence half-width: the
// population value is Mean ± Half at the report's confidence level.
type Metric struct {
	Mean float64 `json:"mean"`
	Half float64 `json:"half"`
}

// RelHalfPct returns the half-width as a percentage of the mean (0 when
// the mean is 0) — the "±x%" form the reports print.
func (m Metric) RelHalfPct() float64 {
	if m.Mean == 0 {
		return 0
	}
	return 100 * m.Half / math.Abs(m.Mean)
}

// Report is the outcome of a sampled run.
type Report struct {
	// Stats are the population-extrapolated totals: every counter of the
	// summed window statistics scaled by TotalReal/SampledReal, so the
	// report plugs into the power model and exporters like an exact run.
	Stats sim.Stats

	// Windows holds the per-window measurements.
	Windows []Window

	// TotalReal is the committed real instructions the run covered
	// (sampled + warmed + fast-forwarded + pipeline fill); SampledReal of
	// them were measured in detailed windows.
	TotalReal   int64
	SampledReal int64
	// WarmedReal and FastForwardReal break down the functional phases.
	WarmedReal      int64
	FastForwardReal int64

	// Confidence is the level of every interval below.
	Confidence float64

	// Per-metric interval estimates over the window population.
	IPC            Metric
	DL1MissRate    Metric
	L2MissRate     Metric
	MispredictRate Metric
}

// SampledFraction returns the measured share of the instruction stream.
func (r *Report) SampledFraction() float64 {
	if r.TotalReal == 0 {
		return 0
	}
	return float64(r.SampledReal) / float64(r.TotalReal)
}

// finalize computes the extrapolated totals and interval estimates from
// the accumulated windows.
func (r *Report) finalize(totalReal int64) {
	r.TotalReal = totalReal
	var sum sim.Stats
	ipcs := make([]float64, 0, len(r.Windows))
	dl1 := make([]float64, 0, len(r.Windows))
	l2 := make([]float64, 0, len(r.Windows))
	mpred := make([]float64, 0, len(r.Windows))
	for i := range r.Windows {
		w := &r.Windows[i].Stats
		addStats(&sum, w)
		r.SampledReal += w.CommittedReal
		ipcs = append(ipcs, w.IPC())
		dl1 = append(dl1, w.DL1.MissRate())
		l2 = append(l2, w.L2.MissRate())
		mpred = append(mpred, w.Bpred.MispredictRate())
	}
	scale := 1.0
	if r.SampledReal > 0 {
		scale = float64(totalReal) / float64(r.SampledReal)
	}
	r.Stats = scaleStats(&sum, scale)
	metric := func(xs []float64) Metric {
		mean, half := stats.MeanCI(xs, r.Confidence)
		return Metric{Mean: mean, Half: half}
	}
	r.IPC = metric(ipcs)
	r.DL1MissRate = metric(dl1)
	r.L2MissRate = metric(l2)
	r.MispredictRate = metric(mpred)
}

// --- counter arithmetic over the sim.Stats tree ---
// sim.Stats is a tree of int64 event counters (top level plus the iq,
// regfile, bpred and cache sub-structs). The three operations below walk
// it with reflection so new counters are picked up automatically.

// zipInt64 sets every int64 field of dst to f(a, b) over the matching
// fields; all three values must share dst's struct type.
func zipInt64(dst, a, b reflect.Value, f func(x, y int64) int64) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			zipInt64(dst.Field(i), a.Field(i), b.Field(i), f)
		}
	case reflect.Int64:
		dst.SetInt(f(a.Int(), b.Int()))
	}
}

// addStats accumulates src's counters into dst.
func addStats(dst, src *sim.Stats) {
	d := reflect.ValueOf(dst).Elem()
	zipInt64(d, d, reflect.ValueOf(src).Elem(), func(x, y int64) int64 { return x + y })
}

// subStats returns a - b per counter.
func subStats(a, b *sim.Stats) sim.Stats {
	var out sim.Stats
	zipInt64(reflect.ValueOf(&out).Elem(), reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem(),
		func(x, y int64) int64 { return x - y })
	return out
}

// scaleStats returns s with every counter scaled by f (rounded to
// nearest) — the population extrapolation.
func scaleStats(s *sim.Stats, f float64) sim.Stats {
	var out sim.Stats
	src := reflect.ValueOf(s).Elem()
	zipInt64(reflect.ValueOf(&out).Elem(), src, src,
		func(x, _ int64) int64 { return int64(math.Round(float64(x) * f)) })
	return out
}
