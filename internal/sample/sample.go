// Package sample is the sampled-simulation engine: a SMARTS-style
// harness that trades tightly bounded statistical accuracy for a large
// wall-clock speedup over exact cycle-level simulation.
//
// An exact run feeds every committed instruction through the detailed
// out-of-order core (internal/sim), which is ~14x slower than the
// functional emulator (internal/emu). A sampled run instead alternates
// three phases over one continuous emulator stream:
//
//   - fast-forward: the emulator advances architectural state only
//     (registers, memory, control flow) at full functional speed;
//   - functional warming: the emulator still advances at near-functional
//     speed, but every instruction also drives the update-only paths of
//     the cache hierarchy and branch predictor (cache.Hierarchy.Warm*,
//     bpred.Predictor.TrainCond and friends), so long-lived
//     microarchitectural state is hot when detailed simulation resumes;
//   - detailed window: a fresh sim.Core is built over the warmed
//     hierarchy and predictor (sim.NewResumable) and consumes the next
//     instructions of the stream — first an unmeasured pipeline warm-up
//     segment that fills the ROB, queues and in-flight machinery, then
//     the measured unit whose sim.Stats are recorded.
//
// Per-window statistics are accumulated into population-extrapolated
// totals (every counter scaled by total/sampled instructions) and
// per-metric confidence intervals (internal/stats.MeanCI), so a sampled
// Report plugs into the power model and the campaign exporters exactly
// like an exact run, with error bars attached.
//
// Every detailed window executes on a fork of the stream state at its
// start — a fresh emulator restored from an architectural checkpoint
// plus clones of the warmed hierarchy and predictor — while the main
// stream re-executes the window's region functionally. The warm state
// at every window start is therefore a pure function of the stream
// position and the sampling regime, never of the cell's detailed
// configuration, which is what lets a checkpoint store (internal/ckpt)
// share one artifact across an entire sweep grid: RunStored resumes
// windows directly from stored state, bit-identical to a
// warm-from-scratch run.
package sample

import (
	"fmt"
)

// Config sets the sampling regime, in committed real (non-hint)
// instructions. Each period of PeriodInsts consists of WarmupInsts of
// functional warming, a detailed window of DetailWarmupInsts (unmeasured
// pipeline fill) plus WindowInsts (measured), and fast-forward for the
// remainder.
type Config struct {
	// WindowInsts is the measured detailed-window length.
	WindowInsts int64
	// PeriodInsts is the sampling period: one window per period.
	PeriodInsts int64
	// WarmupInsts is the functional-warming length before each window.
	// Zero means the default; negative means explicitly none.
	WarmupInsts int64
	// DetailWarmupInsts is the unmeasured detailed prefix of each window
	// that refills the pipeline before measurement starts. Zero means the
	// default; negative means explicitly none.
	DetailWarmupInsts int64
	// Confidence is the level for the per-metric intervals (default 0.95).
	Confidence float64
	// JitterPct randomises each period's fast-forward gap by up to ±this
	// percentage (0..90), drawn from a deterministic per-run generator, so
	// windows cannot alias with loop periodicity in the workload (the
	// systematic-sampling failure mode SMARTS § 3 warns about). The
	// expected period — and therefore the detailed fraction and the cache
	// identity of a campaign job — is unchanged. Default 25.
	JitterPct int
	// PureFastForward disables functional warming during the fast-forward
	// phase (architectural state only, maximum functional speed). The
	// default — warming throughout, as SMARTS does — is what keeps
	// long-lived cache state truthful; pure fast-forward lets caches age
	// too slowly and overestimates hit rates on memory-bound programs
	// (mcf-like), so enable it only for small-footprint workloads or when
	// chasing maximum throughput over accuracy.
	PureFastForward bool
}

// DefaultConfig is the standard regime: 1k-instruction measured windows
// every 60k instructions, preceded by 2k of functional warming and 2k of
// detailed pipeline fill, with ±25% period jitter — a 5% detailed
// fraction that lands the standard three-benchmark sweep at ~5-6x over
// exact with well under 1% mean IPC error at a 2M budget (see README
// "Sampling"). Budgets under ~1M instructions yield few windows and
// proportionally wider confidence intervals; check Report.IPC.Half.
func DefaultConfig() Config {
	return Config{
		WindowInsts:       1_000,
		PeriodInsts:       60_000,
		WarmupInsts:       2_000,
		DetailWarmupInsts: 2_000,
		Confidence:        0.95,
		JitterPct:         25,
	}
}

// WithDefaults resolves the regime Run will actually execute: zero
// fields take DefaultConfig values; a negative WarmupInsts,
// DetailWarmupInsts or JitterPct means explicitly none and resolves to
// 0. Validate the resolved config, not the raw one — Run does.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.WindowInsts == 0 {
		c.WindowInsts = d.WindowInsts
	}
	if c.PeriodInsts == 0 {
		c.PeriodInsts = d.PeriodInsts
	}
	if c.WarmupInsts == 0 {
		c.WarmupInsts = d.WarmupInsts
	}
	if c.WarmupInsts < 0 {
		c.WarmupInsts = 0 // explicit "no functional warming"
	}
	if c.DetailWarmupInsts == 0 {
		c.DetailWarmupInsts = d.DetailWarmupInsts
	}
	if c.DetailWarmupInsts < 0 {
		c.DetailWarmupInsts = 0 // explicit "no pipeline fill"
	}
	if c.Confidence == 0 {
		c.Confidence = d.Confidence
	}
	if c.JitterPct == 0 {
		c.JitterPct = d.JitterPct
	}
	if c.JitterPct < 0 {
		c.JitterPct = 0 // explicit "no jitter"
	}
	return c
}

// Validate checks the regime's arithmetic. Call it on the resolved
// regime (WithDefaults); Run validates the resolved form itself.
func (c *Config) Validate() error {
	if c.WindowInsts <= 0 {
		return fmt.Errorf("sample: window must be positive, got %d", c.WindowInsts)
	}
	if min := c.WarmupInsts + c.DetailWarmupInsts + c.WindowInsts; c.PeriodInsts < min {
		return fmt.Errorf("sample: period %d shorter than warmup+window %d",
			c.PeriodInsts, min)
	}
	if c.JitterPct > 90 {
		return fmt.Errorf("sample: jitter %d%% exceeds 90%%", c.JitterPct)
	}
	return nil
}

// DetailedFraction returns the fraction of instructions that run through
// the detailed core (including the unmeasured pipeline fill) — the
// first-order determinant of the speedup over exact simulation.
func (c *Config) DetailedFraction() float64 {
	cc := c.WithDefaults()
	return float64(cc.DetailWarmupInsts+cc.WindowInsts) / float64(cc.PeriodInsts)
}
