//go:build race

package sample

// raceEnabled: see race_off.go.
const raceEnabled = true
