// Package campaign is the simulation-campaign engine: it expands a
// declarative specification (benchmarks × techniques × configuration-axis
// sweeps) into a deterministic job set, executes the jobs on a
// context-cancellable work-stealing worker pool, aggregates per-job
// results into a queryable store, and caches completed results on disk
// keyed by a content hash of everything that determines the outcome —
// so re-runs and re-plots of an unchanged campaign are near-instant.
//
// The experiment harness (internal/exp), the CLI drivers (cmd/sdiq,
// cmd/sdiqsim) and the examples are thin views over this engine: they
// build a Spec, hand it to an Engine, and render the ResultSet.
package campaign

import (
	"fmt"
	"strings"
)

// Technique identifies one experimental configuration, in the paper's
// naming. The string form is the canonical identity: it appears in cache
// keys, exports, and CLI flags.
type Technique string

// Techniques of the paper's evaluation.
const (
	// TechBaseline: uncontrolled 80-entry queue (the reference).
	TechBaseline Technique = "baseline"
	// TechNOOP: compiler hints via special NOOPs (section 5.2).
	TechNOOP Technique = "NOOP"
	// TechExtension: compiler hints via instruction tags (section 5.3).
	TechExtension Technique = "Extension"
	// TechImproved: tags plus inter-procedural FU contention analysis.
	TechImproved Technique = "Improved"
	// TechAbella: hardware-adaptive IqRob64 (Abella & González).
	TechAbella Technique = "abella"
)

// AllTechniques lists every technique including the baseline, in the
// paper's figure order.
func AllTechniques() []Technique {
	return []Technique{TechBaseline, TechNOOP, TechExtension, TechImproved, TechAbella}
}

// Valid reports whether t names a known technique.
func (t Technique) Valid() bool {
	switch t {
	case TechBaseline, TechNOOP, TechExtension, TechImproved, TechAbella:
		return true
	}
	return false
}

// ParseTechnique resolves a user-facing name, accepting the canonical
// names case-insensitively plus the CLI shorthands ("noop", "tag",
// "improved").
func ParseTechnique(s string) (Technique, error) {
	switch strings.ToLower(s) {
	case "baseline", "base":
		return TechBaseline, nil
	case "noop":
		return TechNOOP, nil
	case "extension", "tag":
		return TechExtension, nil
	case "improved":
		return TechImproved, nil
	case "abella", "adaptive":
		return TechAbella, nil
	}
	return "", fmt.Errorf("campaign: unknown technique %q", s)
}
