package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/power"
)

// smallSpec is a fast two-benchmark grid for engine tests.
func smallSpec() Spec {
	spec := DefaultSpec(5_000)
	spec.Benchmarks = []string{"gzip", "mcf"}
	spec.Techniques = []Technique{TechBaseline, TechNOOP}
	return spec
}

// TestEngineDeterminism: the same spec must produce identical statistics
// at any worker count, and results must come back in spec job order.
func TestEngineDeterminism(t *testing.T) {
	spec := smallSpec()
	serial, err := (&Engine{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Engine{Workers: 8}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != 4 || len(parallel.Results) != 4 {
		t.Fatalf("results = %d/%d, want 4", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		a, b := serial.Results[i], parallel.Results[i]
		if a.Bench != b.Bench || a.Tech != b.Tech {
			t.Fatalf("result %d ordering diverges: %s/%s vs %s/%s", i, a.Bench, a.Tech, b.Bench, b.Tech)
		}
		if a.Stats != b.Stats {
			t.Errorf("result %d stats diverge between worker counts", i)
		}
		if a.Hints != b.Hints {
			t.Errorf("result %d hints diverge: %d vs %d", i, a.Hints, b.Hints)
		}
	}
}

// TestEngineErrorCancelsAndJoins is the regression test for the old
// RunSuite failure mode, where workers kept draining jobs after the
// first error and only one error survived: a failing job must cancel the
// remaining queue, the failure must be reported, and skipped work must
// be visible.
func TestEngineErrorCancelsAndJoins(t *testing.T) {
	spec := smallSpec()
	// An unknown benchmark fails at execution time; it sits first in job
	// order so with one worker everything behind it must be skipped.
	spec.Benchmarks = []string{"nosuchbench", "gzip", "mcf"}
	rs, err := (&Engine{Workers: 1}).Run(context.Background(), spec)
	if err == nil {
		t.Fatal("campaign with failing job returned nil error")
	}
	if !strings.Contains(err.Error(), "nosuchbench") {
		t.Errorf("error does not name the failing job: %v", err)
	}
	if !strings.Contains(err.Error(), "skipped") {
		t.Errorf("error does not report skipped jobs: %v", err)
	}
	if rs == nil {
		t.Fatal("partial result set not returned")
	}
	if rs.Skipped == 0 {
		t.Error("no jobs skipped: workers kept draining after the error")
	}
	if rs.Skipped+rs.Executed+len(errsOf(err)) < 2 {
		t.Errorf("accounting off: skipped=%d executed=%d", rs.Skipped, rs.Executed)
	}
}

// errsOf unwraps a joined error into its parts.
func errsOf(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// TestEngineJoinedErrors: with every job failing and full parallelism,
// more than one failure can land before cancellation; all observed
// failures must survive into the joined error (not just the first).
func TestEngineJoinedErrors(t *testing.T) {
	spec := smallSpec()
	spec.Benchmarks = []string{"badA", "badB", "badC", "badD"}
	spec.Techniques = []Technique{TechBaseline}
	_, err := (&Engine{Workers: 4}).Run(context.Background(), spec)
	if err == nil {
		t.Fatal("want error")
	}
	var named int
	for _, b := range spec.Benchmarks {
		if strings.Contains(err.Error(), b) {
			named++
		}
	}
	if named == 0 {
		t.Errorf("joined error names no failing benchmark: %v", err)
	}
	// Each failure that was observed must be joined, and each part must
	// still be a distinct error value.
	if parts := errsOf(err); len(parts) < 2 { // >=1 job error + skip report
		t.Errorf("errors not joined: %v", err)
	}
}

// TestEngineContextCancellation: a pre-cancelled context runs nothing.
func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := smallSpec()
	rs, err := (&Engine{Workers: 2}).Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs.Executed != 0 || len(rs.Results) != 0 {
		t.Errorf("cancelled campaign executed %d jobs", rs.Executed)
	}
	if rs.Skipped != 4 {
		t.Errorf("skipped = %d, want 4", rs.Skipped)
	}
}

// TestEngineEmptyCampaign: a spec with no benchmarks resolves to the
// full suite, but an explicit empty technique list is the caller saying
// "nothing" — exercised via a zero-point sweep instead.
func TestEngineOnResultCallback(t *testing.T) {
	spec := smallSpec()
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	var seen []string
	e := &Engine{Workers: 2, OnResult: func(r Result) { seen = append(seen, r.Bench) }}
	if _, err := e.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "gzip" {
		t.Errorf("OnResult saw %v", seen)
	}
}

// TestEngineSweepGrid runs a real multi-point sweep end to end: every
// (bench, tech, point) cell must land, and the derived per-point metrics
// must be queryable.
func TestEngineSweepGrid(t *testing.T) {
	spec := DefaultSpec(4_000)
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline, TechExtension}
	spec.Axes = []Axis{{Name: "iq.entries", Values: []int{16, 80}}}
	rs, err := (&Engine{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Complete() {
		t.Fatalf("incomplete sweep: %d results", len(rs.Results))
	}
	for _, pt := range rs.Points() {
		if _, ok := rs.Get("gzip", TechBaseline, pt); !ok {
			t.Errorf("missing baseline at %s", pt)
		}
		loss := rs.IPCLossPct("gzip", TechExtension, pt)
		if loss < -50 || loss > 100 {
			t.Errorf("implausible IPC loss %f at %s", loss, pt)
		}
		if _, err := rs.Savings("gzip", TechExtension, pt); err != nil {
			t.Errorf("savings at %s: %v", pt, err)
		}
	}
	cfg, err := rs.ConfigAt(rs.Points()[0])
	if err != nil || cfg.IQ.Entries != 16 {
		t.Errorf("ConfigAt = %d entries, %v", cfg.IQ.Entries, err)
	}
}

// fakeRunner records every job the engine hands it and executes inline,
// standing in for the campaign service's remote dispatcher.
type fakeRunner struct {
	mu     sync.Mutex
	keys   []string
	params []power.Params
}

func (f *fakeRunner) RunJob(ctx context.Context, job *Job, key string, params power.Params) (Result, error) {
	f.mu.Lock()
	f.keys = append(f.keys, key)
	f.params = append(f.params, params)
	f.mu.Unlock()
	return Execute(ctx, job)
}

// TestEngineRunnerIndirection: with a Runner installed, every
// cache-missed job is routed through it (with its JobKey and the
// campaign's power params), its results land exactly like inline ones,
// and a cache-warm re-run never consults the runner at all.
func TestEngineRunnerIndirection(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	fr := &fakeRunner{}
	eng := &Engine{Workers: 2, CacheDir: dir, Runner: fr}
	rs, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Complete() || rs.Executed != 4 {
		t.Fatalf("runner campaign incomplete: %d results, %d executed", len(rs.Results), rs.Executed)
	}
	if len(fr.keys) != 4 {
		t.Fatalf("runner saw %d jobs, want 4", len(fr.keys))
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := range jobs {
		k, err := JobKey(&jobs[i], spec.Params)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	for i, k := range fr.keys {
		if !want[k] {
			t.Errorf("runner key %d = %.12s not a campaign JobKey", i, k)
		}
		if fr.params[i] != spec.Params {
			t.Errorf("runner call %d got wrong power params", i)
		}
	}
	// Inline reference run: identical stats.
	ref, err := (&Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Results {
		if ref.Results[i].Stats != rs.Results[i].Stats {
			t.Errorf("result %d stats diverge between runner and inline execution", i)
		}
	}
	// Warm cache: the runner must not be consulted again.
	rs2, err := (&Engine{Workers: 2, CacheDir: dir, Runner: fr}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.CacheHits != 4 || len(fr.keys) != 4 {
		t.Errorf("warm re-run: %d cache hits, runner saw %d total jobs (want 4, 4)",
			rs2.CacheHits, len(fr.keys))
	}
}
