package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
)

// ckptSchema versions the checkpoint key layout. Bump it whenever the
// keyed slice or the artifact semantics change incompatibly; old
// artifacts then age out as unreferenced keys instead of being resumed
// wrongly.
const ckptSchema = 1

// warmClass names the slice of a technique that the functional warming
// stream can observe: the instrumentation mode of the program it
// executes. Techniques in the same class run byte-identical programs
// with identical hint evolution, so they share a warming stream — and
// therefore a checkpoint artifact:
//
//   - "plain": uninstrumented binaries (baseline, abella);
//   - "noop": hint NOOPs inserted (distinct PCs and stream);
//   - "tag"/"tag-improved": instruction tags — same PCs, but the hint
//     values differ between the two passes, and the active hint at a
//     window start is part of the stored resume state, so they key
//     separately.
func (t Technique) warmClass() string {
	opt, ok := t.instrumentOptions()
	switch {
	case !ok:
		return "plain"
	case opt.Mode == core.ModeNOOP:
		return "noop"
	case opt.Improved:
		return "tag-improved"
	default:
		return "tag"
	}
}

// CheckpointKey derives the content address of the checkpoint artifact
// a sampled job can generate or resume from: a SHA-256 over the
// benchmark identity (name + seed + budget), the warming-relevant
// config slice — cache geometry, predictor configuration and the
// technique's instrumentation class, with the IQ/power axes a sweep
// varies deliberately excluded — and the resolved sampling regime.
// Everything excluded from the key is, by the sampled engine's
// fork-per-window construction, unable to influence the stored state;
// everything included invalidates the artifact when it changes.
//
// Exact (unsampled) jobs have no artifact: the key is "" and nil error.
func CheckpointKey(job *Job) (string, error) {
	if job.Sampling == nil {
		return "", nil
	}
	ec := job.Sampling.engineConfig().WithDefaults()
	blob, err := json.Marshal(struct {
		Schema          int
		Bench           string
		Seed            int64
		Budget          int64
		Class           string
		Caches          cache.HierarchyConfig
		Bpred           bpred.Config
		Window          int64
		Period          int64
		Warmup          int64
		DetailWarmup    int64
		JitterPct       int
		PureFastForward bool
	}{
		Schema:          ckptSchema,
		Bench:           job.Bench,
		Seed:            job.Seed,
		Budget:          job.Budget,
		Class:           job.Tech.warmClass(),
		Caches:          job.Config.Caches.WithDefaults(),
		Bpred:           job.Config.Bpred.WithDefaults(),
		Window:          ec.WindowInsts,
		Period:          ec.PeriodInsts,
		Warmup:          ec.WarmupInsts,
		DetailWarmup:    ec.DetailWarmupInsts,
		JitterPct:       ec.JitterPct,
		PureFastForward: ec.PureFastForward,
	})
	if err != nil {
		return "", fmt.Errorf("campaign: hashing checkpoint identity of %s: %w", job.ID(), err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
