package campaign

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSpecExpansionOrderAndCount(t *testing.T) {
	spec := DefaultSpec(1000)
	spec.Benchmarks = []string{"gzip", "mcf"}
	spec.Techniques = []Technique{TechBaseline, TechNOOP}
	spec.Axes = []Axis{{Name: "iq.entries", Values: []int{16, 80}}}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2 {
		t.Fatalf("jobs = %d, want 8", len(jobs))
	}
	// Points outermost, then benchmarks, then techniques.
	wantIDs := []string{
		"gzip/baseline/iq.entries=16", "gzip/NOOP/iq.entries=16",
		"mcf/baseline/iq.entries=16", "mcf/NOOP/iq.entries=16",
		"gzip/baseline/iq.entries=80", "gzip/NOOP/iq.entries=80",
		"mcf/baseline/iq.entries=80", "mcf/NOOP/iq.entries=80",
	}
	for i, want := range wantIDs {
		if got := jobs[i].ID(); got != want {
			t.Errorf("job %d = %s, want %s", i, got, want)
		}
	}
	// Axis values land in the derived config.
	if jobs[0].Config.IQ.Entries != 16 || jobs[4].Config.IQ.Entries != 80 {
		t.Errorf("axis not applied: %d/%d", jobs[0].Config.IQ.Entries, jobs[4].Config.IQ.Entries)
	}
	// Techniques set the control mode.
	if jobs[0].Config.Control == jobs[1].Config.Control {
		t.Error("baseline and NOOP jobs share a control mode")
	}
}

func TestSpecDefaultsToFullGrid(t *testing.T) {
	spec := DefaultSpec(1000)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.Suite()) * len(AllTechniques())
	if len(jobs) != want {
		t.Errorf("jobs = %d, want %d", len(jobs), want)
	}
}

func TestSpecCrossProductPoints(t *testing.T) {
	spec := DefaultSpec(1000)
	spec.Axes = []Axis{
		{Name: "iq.entries", Values: []int{16, 32, 48}},
		{Name: "fetchwidth", Values: []int{4, 8}},
	}
	pts := spec.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	if pts[0].String() != "iq.entries=16,fetchwidth=4" {
		t.Errorf("first point = %q", pts[0])
	}
	if pts[5].String() != "iq.entries=48,fetchwidth=8" {
		t.Errorf("last point = %q", pts[5])
	}
}

func TestSpecValidation(t *testing.T) {
	spec := DefaultSpec(1000)
	spec.Axes = []Axis{{Name: "warp.speed", Values: []int{9}}}
	if _, err := spec.Jobs(); err == nil || !strings.Contains(err.Error(), "unknown axis") {
		t.Errorf("unknown axis not rejected: %v", err)
	}
	spec = DefaultSpec(1000)
	spec.Techniques = []Technique{"quantum"}
	if _, err := spec.Jobs(); err == nil || !strings.Contains(err.Error(), "unknown technique") {
		t.Errorf("unknown technique not rejected: %v", err)
	}
	spec = DefaultSpec(1000)
	spec.Axes = []Axis{{Name: "iq.entries", Values: []int{12}}} // not a multiple of bank size 8
	if _, err := spec.Jobs(); err == nil || !strings.Contains(err.Error(), "bank") {
		t.Errorf("bad bank multiple not rejected: %v", err)
	}
}

func TestParseTechnique(t *testing.T) {
	cases := map[string]Technique{
		"baseline": TechBaseline, "noop": TechNOOP, "NOOP": TechNOOP,
		"tag": TechExtension, "Extension": TechExtension,
		"improved": TechImproved, "abella": TechAbella, "adaptive": TechAbella,
	}
	for in, want := range cases {
		got, err := ParseTechnique(in)
		if err != nil || got != want {
			t.Errorf("ParseTechnique(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseTechnique("nope"); err == nil {
		t.Error("bad technique accepted")
	}
}

func TestParseAxes(t *testing.T) {
	axes, err := ParseAxes("iq.entries=16,32,48,64,80; fetchwidth=4,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || len(axes[0].Values) != 5 || axes[1].Name != "fetchwidth" {
		t.Errorf("axes = %+v", axes)
	}
	if axes, err := ParseAxes("  "); err != nil || axes != nil {
		t.Errorf("blank sweep = %v, %v", axes, err)
	}
	if _, err := ParseAxes("iq.entries"); err == nil {
		t.Error("missing values accepted")
	}
	if _, err := ParseAxes("iq.entries=a,b"); err == nil {
		t.Error("non-numeric values accepted")
	}
}

func TestJobKeyIdentity(t *testing.T) {
	spec := DefaultSpec(1000)
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := JobKey(&jobs[0], spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := JobKey(&jobs[0], spec.Params)
	if k1 != k2 {
		t.Error("key not deterministic")
	}
	// Any identity-bearing change must move the key.
	mut := jobs[0]
	mut.Budget++
	if k, _ := JobKey(&mut, spec.Params); k == k1 {
		t.Error("budget change kept the key")
	}
	mut = jobs[0]
	mut.Config.IQ.Entries = 16
	if k, _ := JobKey(&mut, spec.Params); k == k1 {
		t.Error("config change kept the key")
	}
	params := spec.Params
	params.IQBankLeak *= 2
	if k, _ := JobKey(&jobs[0], params); k == k1 {
		t.Error("power-params change kept the key")
	}
}
