package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestCacheHitServesIdenticalResults: the second run of an unchanged
// spec must execute nothing, serve every job from disk, and export
// byte-identically to the first run.
func TestCacheHitServesIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	e := &Engine{Workers: 4, CacheDir: dir}

	first, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 4 || first.CacheHits != 0 {
		t.Fatalf("first run: executed=%d hits=%d", first.Executed, first.CacheHits)
	}

	second, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.CacheHits != 4 {
		t.Fatalf("second run: executed=%d hits=%d, want all served from cache",
			second.Executed, second.CacheHits)
	}
	for i := range second.Results {
		if !second.Results[i].Cached {
			t.Errorf("result %d not marked cached", i)
		}
		if second.Results[i].Stats != first.Results[i].Stats {
			t.Errorf("result %d stats differ from the run that populated the cache", i)
		}
	}

	var a, b bytes.Buffer
	if err := first.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cached re-run does not export byte-identically")
	}
	var ac, bc bytes.Buffer
	if err := first.WriteCSV(&ac); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteCSV(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Error("cached re-run CSV differs")
	}
}

// TestCacheKeyedByIdentity: changing anything that determines the
// outcome — here the budget — must miss the old entries.
func TestCacheKeyedByIdentity(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	e := &Engine{CacheDir: dir}
	if _, err := e.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	spec.Budget += 1000
	rs, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 0 || rs.Executed != 1 {
		t.Errorf("changed budget hit the cache: executed=%d hits=%d", rs.Executed, rs.CacheHits)
	}
}

// TestCacheCorruptEntryIsAMiss: a torn or garbage entry must be treated
// as a miss and re-simulated, never surfaced as an error or bad data.
func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	e := &Engine{CacheDir: dir}
	first, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 1 || second.CacheHits != 0 {
		t.Errorf("corrupt entry not treated as a miss: executed=%d hits=%d",
			second.Executed, second.CacheHits)
	}
	if second.Results[0].Stats != first.Results[0].Stats {
		t.Error("re-simulated result diverges")
	}
}

// TestCacheSharedAcrossSpecs: a sweep point whose derived configuration
// equals an already-cached base run reuses it — the cache is keyed by
// content, not by campaign.
func TestCacheSharedAcrossSpecs(t *testing.T) {
	dir := t.TempDir()
	base := smallSpec()
	base.Benchmarks = []string{"gzip"}
	base.Techniques = []Technique{TechBaseline}
	e := &Engine{CacheDir: dir}
	if _, err := e.Run(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	sweep := base
	sweep.Axes = []Axis{{Name: "iq.entries", Values: []int{80}}} // equals the default
	rs, err := e.Run(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 1 {
		t.Errorf("identical derived config missed the cache: executed=%d hits=%d",
			rs.Executed, rs.CacheHits)
	}
}
