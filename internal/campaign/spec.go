package campaign

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/power"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Spec declares a campaign: which benchmarks to run under which
// techniques, at what instruction budget and generator seed, on what base
// processor configuration, swept along zero or more configuration axes.
// A Spec is plain data — it marshals to JSON and two equal Specs always
// expand to the same jobs in the same order.
type Spec struct {
	// Name labels the campaign in exports and logs.
	Name string `json:"name,omitempty"`
	// Benchmarks to run; empty means the full suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Techniques to run; empty means all five.
	Techniques []Technique `json:"techniques,omitempty"`
	// Budget is the committed real instructions per run.
	Budget int64 `json:"budget"`
	// Seed feeds the workload generators.
	Seed int64 `json:"seed"`
	// Base is the processor configuration every job starts from; axis
	// values and the technique's control mode are applied on top.
	Base sim.Config `json:"base"`
	// Params is the power model the campaign's savings are computed with.
	// It does not affect simulation, but it is part of the cache identity
	// because exported figures depend on it.
	Params power.Params `json:"params"`
	// Axes are the configuration sweeps; the job set is the cross
	// product of all axis values.
	Axes []Axis `json:"axes,omitempty"`
	// Sampling, when non-nil, runs every job through the sampled
	// simulation engine (internal/sample) instead of exact cycle-level
	// simulation: detailed windows of Window instructions every Period
	// instructions, with functional warming between them. Results carry
	// confidence intervals (Result.Sampled) and the sampling parameters
	// are part of the job cache key — a sampled and an exact run of the
	// same cell never share a cache entry. Nil (the default) is exact
	// mode, whose results and exports are unchanged by this field.
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Sampling is the campaign-level sampled-simulation regime; zero fields
// take the engine defaults (sample.DefaultConfig), and a negative
// Warmup or DetailWarmup means explicitly none. All lengths are in
// committed real instructions.
type Sampling struct {
	// Window is the measured detailed-window length.
	Window int64 `json:"window,omitempty"`
	// Period is the sampling period (one window per period).
	Period int64 `json:"period,omitempty"`
	// Warmup is the functional-warming length before each window
	// (0 = engine default, negative = none).
	Warmup int64 `json:"warmup,omitempty"`
	// DetailWarmup is the unmeasured detailed pipeline fill per window
	// (0 = engine default, negative = none).
	DetailWarmup int64 `json:"detail_warmup,omitempty"`
}

// DefaultSampling is the engine's standard regime, stated explicitly so
// it is pinned in specs, exports and cache keys rather than drifting
// with the engine default.
func DefaultSampling() Sampling {
	d := sample.DefaultConfig()
	return Sampling{
		Window:       d.WindowInsts,
		Period:       d.PeriodInsts,
		Warmup:       d.WarmupInsts,
		DetailWarmup: d.DetailWarmupInsts,
	}
}

// engineConfig converts to the sampling engine's configuration.
func (s *Sampling) engineConfig() sample.Config {
	return sample.Config{
		WindowInsts:       s.Window,
		PeriodInsts:       s.Period,
		WarmupInsts:       s.Warmup,
		DetailWarmupInsts: s.DetailWarmup,
	}
}

// Validate checks the regime via the engine's rules, on the resolved
// form the engine will actually run (zero fields filled with defaults),
// so spec validation and runtime agree.
func (s *Sampling) Validate() error {
	cfg := s.engineConfig().WithDefaults()
	return cfg.Validate()
}

// ParseSampling parses the CLI sampling syntax: "on"/"default" for the
// standard regime, "window/period/warmup" or
// "window=N,period=N,warmup=N,detailwarmup=N" for a custom one. An empty
// string means exact simulation (nil).
func ParseSampling(s string) (*Sampling, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "off") {
		return nil, nil
	}
	if strings.EqualFold(s, "on") || strings.EqualFold(s, "default") {
		d := DefaultSampling()
		return &d, nil
	}
	out := DefaultSampling()
	// A user-supplied 0 means "none", which the zero-means-default field
	// convention expresses as a negative value.
	explicitZero := func(n int64) int64 {
		if n == 0 {
			return -1
		}
		return n
	}
	if strings.Contains(s, "=") {
		for _, part := range strings.Split(s, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return nil, fmt.Errorf("campaign: bad sampling field %q (want name=N)", part)
			}
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("campaign: sampling %s: bad value %q", name, val)
			}
			switch strings.ToLower(strings.TrimSpace(name)) {
			case "window", "w":
				if n == 0 {
					return nil, fmt.Errorf("campaign: sampling window must be positive")
				}
				out.Window = n
			case "period", "p":
				if n == 0 {
					return nil, fmt.Errorf("campaign: sampling period must be positive")
				}
				out.Period = n
			case "warmup", "u":
				out.Warmup = explicitZero(n)
			case "detailwarmup", "dw":
				out.DetailWarmup = explicitZero(n)
			default:
				return nil, fmt.Errorf("campaign: unknown sampling field %q (window, period, warmup, detailwarmup)", name)
			}
		}
	} else {
		parts := strings.Split(s, "/")
		if len(parts) > 3 {
			return nil, fmt.Errorf("campaign: bad sampling %q (want window/period[/warmup])", s)
		}
		for i, p := range parts {
			n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil || n < 0 || (n == 0 && i < 2) {
				return nil, fmt.Errorf("campaign: bad sampling %q: field %d", s, i)
			}
			switch i {
			case 0:
				out.Window = n
			case 1:
				out.Period = n
			case 2:
				out.Warmup = explicitZero(n)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// Axis sweeps one named configuration parameter over a list of values.
type Axis struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// AxisValue is one coordinate of a sweep point.
type AxisValue struct {
	Axis  string `json:"axis"`
	Value int    `json:"value"`
}

// Point is one assignment of every axis — the sweep coordinates of a
// job. The base (no-axes) campaign has the empty Point.
type Point []AxisValue

// String renders the point as "axis=value,axis=value" ("" for the base
// point); the form is stable and used in result keys and CSV exports.
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, av := range p {
		parts[i] = fmt.Sprintf("%s=%d", av.Axis, av.Value)
	}
	return strings.Join(parts, ",")
}

// Job is one fully-resolved simulation: a benchmark prepared under a
// technique on a concrete configuration.
type Job struct {
	Bench  string
	Tech   Technique
	Point  Point
	Config sim.Config
	Budget int64
	Seed   int64
	// Sampling selects sampled simulation for this job (nil = exact).
	Sampling *Sampling
}

// ID names the job uniquely within its campaign.
func (j *Job) ID() string {
	if len(j.Point) == 0 {
		return j.Bench + "/" + string(j.Tech)
	}
	return j.Bench + "/" + string(j.Tech) + "/" + j.Point.String()
}

// axisSetters maps axis names to configuration fields. Names are
// lower-case dotted paths mirroring the sim.Config structure.
var axisSetters = map[string]func(*sim.Config, int){
	"iq.entries":     func(c *sim.Config, v int) { c.IQ.Entries = v },
	"iq.banksize":    func(c *sim.Config, v int) { c.IQ.BankSize = v },
	"intrf.regs":     func(c *sim.Config, v int) { c.IntRF.Regs = v },
	"intrf.banksize": func(c *sim.Config, v int) { c.IntRF.BankSize = v },
	"fetchwidth":     func(c *sim.Config, v int) { c.FetchWidth = v },
	"dispatchwidth":  func(c *sim.Config, v int) { c.DispatchWidth = v },
	"issuewidth":     func(c *sim.Config, v int) { c.IssueWidth = v },
	"commitwidth":    func(c *sim.Config, v int) { c.CommitWidth = v },
	"robsize":        func(c *sim.Config, v int) { c.ROBSize = v },
	"lsqsize":        func(c *sim.Config, v int) { c.LSQSize = v },
	"fetchqueuesize": func(c *sim.Config, v int) { c.FetchQueueSize = v },
	"memports":       func(c *sim.Config, v int) { c.MemPorts = v },
}

// AxisNames lists the sweepable configuration axes, sorted.
func AxisNames() []string {
	names := make([]string, 0, len(axisSetters))
	for n := range axisSetters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultSpec is the paper's evaluation: full suite, all techniques,
// table-1 configuration, calibrated power model.
func DefaultSpec(budget int64) Spec {
	return Spec{
		Name:   "paper-evaluation",
		Budget: budget,
		Seed:   42,
		Base:   sim.DefaultConfig(),
		Params: power.DefaultParams(),
	}
}

// benchmarks resolves the benchmark list (empty = full suite). Unknown
// names are kept: they fail at execution time so the engine's error path
// reports them per-job.
func (s *Spec) benchmarks() []string {
	if len(s.Benchmarks) > 0 {
		return s.Benchmarks
	}
	names := []string{}
	for _, b := range workload.Suite() {
		names = append(names, b.Name)
	}
	return names
}

// techniques resolves the technique list (empty = all).
func (s *Spec) techniques() []Technique {
	if len(s.Techniques) > 0 {
		return s.Techniques
	}
	return AllTechniques()
}

// Validate checks the spec's static structure: techniques and axis names
// must be known and axis value lists non-empty.
func (s *Spec) Validate() error {
	for _, t := range s.techniques() {
		if !t.Valid() {
			return fmt.Errorf("campaign: unknown technique %q", t)
		}
	}
	for _, ax := range s.Axes {
		if _, ok := axisSetters[ax.Name]; !ok {
			return fmt.Errorf("campaign: unknown axis %q (known: %s)",
				ax.Name, strings.Join(AxisNames(), ", "))
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("campaign: axis %q has no values", ax.Name)
		}
	}
	if s.Budget < 0 {
		return fmt.Errorf("campaign: negative budget %d", s.Budget)
	}
	if s.Sampling != nil {
		if err := s.Sampling.Validate(); err != nil {
			return err
		}
		if s.Budget == 0 {
			return fmt.Errorf("campaign: sampled campaigns need a positive budget")
		}
	}
	return nil
}

// Points expands the axes into their cross product, in axis order with
// the last axis varying fastest. No axes yields the single base point.
func (s *Spec) Points() []Point {
	points := []Point{nil}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				np := make(Point, len(p), len(p)+1)
				copy(np, p)
				np = append(np, AxisValue{Axis: ax.Name, Value: v})
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}

// Jobs expands the spec into its job set: points × benchmarks ×
// techniques, in that nesting order. The order is deterministic and is
// the order of ResultSet.Results.
func (s *Spec) Jobs() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	for _, pt := range s.Points() {
		cfg, err := s.configAt(pt)
		if err != nil {
			return nil, err
		}
		for _, bench := range s.benchmarks() {
			for _, tech := range s.techniques() {
				jc := cfg
				jc.Control = tech.controlMode()
				jobs = append(jobs, Job{
					Bench:    bench,
					Tech:     tech,
					Point:    pt,
					Config:   jc,
					Budget:   s.Budget,
					Seed:     s.Seed,
					Sampling: s.Sampling,
				})
			}
		}
	}
	return jobs, nil
}

// configAt applies a sweep point to the base configuration.
func (s *Spec) configAt(pt Point) (sim.Config, error) {
	cfg := s.Base
	cfg.Probe = nil // probes are per-run attachments, never part of a spec
	for _, av := range pt {
		set, ok := axisSetters[av.Axis]
		if !ok {
			return sim.Config{}, fmt.Errorf("campaign: unknown axis %q", av.Axis)
		}
		set(&cfg, av.Value)
	}
	if cfg.IQ.Entries < 1 || cfg.IQ.BankSize < 1 || cfg.IQ.Entries%cfg.IQ.BankSize != 0 {
		return sim.Config{}, fmt.Errorf("campaign: point %q: issue queue (%d entries, bank %d) must be a positive multiple of its bank size",
			pt, cfg.IQ.Entries, cfg.IQ.BankSize)
	}
	return cfg, nil
}

// controlMode maps a technique to the simulator's issue-queue control.
func (t Technique) controlMode() sim.ControlMode {
	switch t {
	case TechNOOP, TechExtension, TechImproved:
		return sim.ControlHints
	case TechAbella:
		return sim.ControlAdaptive
	default:
		return sim.ControlNone
	}
}

// ParseAxes parses the CLI sweep syntax: semicolon-separated axes, each
// "name=v1,v2,...", e.g. "iq.entries=16,32,48,64,80;fetchwidth=4,8".
func ParseAxes(s string) ([]Axis, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var axes []Axis
	for _, part := range strings.Split(s, ";") {
		name, vals, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("campaign: bad axis %q (want name=v1,v2,...)", part)
		}
		ax := Axis{Name: strings.ToLower(strings.TrimSpace(name))}
		for _, v := range strings.Split(vals, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return nil, fmt.Errorf("campaign: axis %s: bad value %q", ax.Name, v)
			}
			ax.Values = append(ax.Values, n)
		}
		axes = append(axes, ax)
	}
	return axes, nil
}
