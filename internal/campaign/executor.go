package campaign

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Result is the outcome of one job: the simulator statistics plus the
// preparation metadata the paper's compile-time tables report. Results
// are what the cache stores and the exporters emit.
type Result struct {
	Bench string    `json:"bench"`
	Tech  Technique `json:"tech"`
	Point Point     `json:"point,omitempty"`
	Stats sim.Stats `json:"stats"`
	// CompileMS is the instrumentation/analysis wall time.
	CompileMS float64 `json:"compile_ms"`
	// GenMS is the program generation+link wall time.
	GenMS float64 `json:"gen_ms"`
	// Hints is the number of static hints materialised.
	Hints int `json:"hints"`
	// Sampled carries the sampling detail when the job ran sampled:
	// Stats then holds the population-extrapolated totals and Sampled the
	// error bars. Nil for exact runs, and omitted from their JSON.
	Sampled *SampledMeta `json:"sampled,omitempty"`
	// StartedAt and FinishedAt bracket the job's execution (preparation
	// through simulation), stamped by Execute. Like CompileMS/GenMS they
	// are wall-clock metadata, not part of the result's identity: cache
	// keys ignore them, and a cached result carries the stamps of the
	// run that populated it. The CSV export omits them, so exact-mode
	// CSV output is byte-stable across their introduction.
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// Cached marks a result served from the on-disk cache, Dedup one
	// shared from a concurrent identical execution (Engine.Flight).
	// Neither is serialised: a cache or dedup hit must export
	// byte-identically to the run that populated it.
	Cached bool `json:"-"`
	Dedup  bool `json:"-"`
}

// SampledMeta summarises a sampled run for results and exports. All
// fields are deterministic for a deterministic job, so cached and fresh
// sampled results export identically.
type SampledMeta struct {
	// Windows is the number of measured detailed windows.
	Windows int `json:"windows"`
	// SampledInsts of TotalInsts committed real instructions were
	// measured in detailed windows.
	SampledInsts int64 `json:"sampled_insts"`
	TotalInsts   int64 `json:"total_insts"`
	// Confidence is the level of the interval half-widths below.
	Confidence float64 `json:"confidence"`
	// IPC is the per-window IPC estimate: mean ± half.
	IPC sample.Metric `json:"ipc"`
	// DL1MissRate, L2MissRate and MispredictRate are the corresponding
	// per-window interval estimates.
	DL1MissRate    sample.Metric `json:"dl1_miss_rate"`
	L2MissRate     sample.Metric `json:"l2_miss_rate"`
	MispredictRate sample.Metric `json:"mispredict_rate"`
}

// instrumentOptions maps a technique to the compiler pass configuration;
// ok is false for techniques that run uninstrumented binaries.
func (t Technique) instrumentOptions() (opt core.Options, ok bool) {
	switch t {
	case TechNOOP:
		return core.Options{Mode: core.ModeNOOP}, true
	case TechExtension:
		return core.Options{Mode: core.ModeTag}, true
	case TechImproved:
		return core.Options{Mode: core.ModeTag, Improved: true}, true
	}
	return core.Options{}, false
}

// Prepare builds and, for the compiler techniques, instruments the job's
// benchmark program. It is exposed for drivers (cmd/sdiqsim) that attach
// probes and run the program themselves.
func Prepare(job *Job) (*prog.Program, Result, error) {
	res := Result{Bench: job.Bench, Tech: job.Tech, Point: job.Point}
	b, ok := workload.ByName(job.Bench)
	if !ok {
		return nil, res, fmt.Errorf("%s: unknown benchmark", job.ID())
	}
	t0 := time.Now()
	p := b.Build(job.Seed)
	res.GenMS = float64(time.Since(t0).Microseconds()) / 1000

	if opt, ok := job.Tech.instrumentOptions(); ok {
		t1 := time.Now()
		rep, err := core.Instrument(p, opt)
		if err != nil {
			return nil, res, fmt.Errorf("%s: %w", job.ID(), err)
		}
		res.CompileMS = float64(time.Since(t1).Microseconds()) / 1000
		res.Hints = rep.HintsInserted + rep.TagsApplied
	}
	return p, res, nil
}

// Execute runs one job to completion: prepare, simulate (exact or
// sampled, by job.Sampling), collect stats. The simulator polls ctx
// mid-run, so cancellation takes effect mid-job, not just between jobs.
// The result's StartedAt/FinishedAt bracket the whole execution (UTC,
// monotonic-free so they JSON-roundtrip exactly).
func Execute(ctx context.Context, job *Job) (Result, error) {
	return ExecuteStored(ctx, job, nil)
}

// ExecuteStored is Execute with a checkpoint store attached: a sampled
// job resumes its detailed windows from the store's artifact when one
// exists under the job's CheckpointKey, and generates it write-through
// otherwise. Results are bit-identical either way; a nil store simply
// runs everything warm-from-scratch.
func ExecuteStored(ctx context.Context, job *Job, store *ckpt.Store) (res Result, err error) {
	if err := ctx.Err(); err != nil {
		return Result{Bench: job.Bench, Tech: job.Tech, Point: job.Point}, err
	}
	started := time.Now().UTC()
	defer func() {
		res.StartedAt = started
		res.FinishedAt = time.Now().UTC()
	}()
	p, res, err := Prepare(job)
	if err != nil {
		return res, err
	}
	if job.Sampling != nil {
		var key string
		if store != nil {
			// An unkeyable job still runs; it just can't share warm state.
			key, _ = CheckpointKey(job)
		}
		rep, err := sample.RunStored(ctx, job.Config, p, job.Budget, job.Sampling.engineConfig(), store, key)
		if err != nil {
			return res, fmt.Errorf("%s: %w", job.ID(), err)
		}
		res.Stats = rep.Stats
		res.Sampled = sampledMetaOf(rep)
		return res, nil
	}
	st, err := sim.RunProgramContext(ctx, job.Config, p, job.Budget)
	if err != nil {
		return res, fmt.Errorf("%s: %w", job.ID(), err)
	}
	res.Stats = st
	return res, nil
}

// sampledMetaOf converts a sampling report to the result view; shared by
// the solo and lockstep executors so both populate it identically.
func sampledMetaOf(rep *sample.Report) *SampledMeta {
	return &SampledMeta{
		Windows:        len(rep.Windows),
		SampledInsts:   rep.SampledReal,
		TotalInsts:     rep.TotalReal,
		Confidence:     rep.Confidence,
		IPC:            rep.IPC,
		DL1MissRate:    rep.DL1MissRate,
		L2MissRate:     rep.L2MissRate,
		MispredictRate: rep.MispredictRate,
	}
}

// ExecuteBatchStored runs a lockstep batch: sampled jobs sharing one
// functional identity (equal CheckpointKey — same benchmark, seed,
// budget, warming class, cache/predictor geometry and regime) execute as
// K cells over ONE emulator + functional-warming stream, paying the
// shared work once. The program is prepared once (within a warming class
// the instrumentation is identical), and with a store attached the whole
// batch touches the checkpoint artifact once.
//
// Per-cell results are bit-identical to ExecuteStored running each job
// alone — the differential suites in internal/sample assert this. The
// returned errs slice (nil when every cell succeeded) carries per-cell
// failures: one broken cell does not sink its batchmates. A non-nil
// global error reports setup failures or cancellation that apply to
// every cell.
func ExecuteBatchStored(ctx context.Context, jobs []*Job, store *ckpt.Store) (results []Result, errs []error, err error) {
	results = make([]Result, len(jobs))
	for i, job := range jobs {
		results[i] = Result{Bench: job.Bench, Tech: job.Tech, Point: job.Point}
	}
	if err := ctx.Err(); err != nil {
		return results, nil, err
	}
	if jobs[0].Sampling == nil {
		return results, nil, fmt.Errorf("campaign: lockstep batch needs sampled jobs")
	}
	started := time.Now().UTC()
	p, prep, perr := Prepare(jobs[0])
	if perr != nil {
		return results, nil, perr
	}
	cfgs := make([]sim.Config, len(jobs))
	for i, job := range jobs {
		cfgs[i] = job.Config
	}
	var key string
	if store != nil {
		// An unkeyable job still runs; it just can't share warm state.
		key, _ = CheckpointKey(jobs[0])
	}
	cells, gerr := sample.RunLockstepStored(ctx, cfgs, p, jobs[0].Budget, jobs[0].Sampling.engineConfig(), store, key)
	if cells == nil {
		return results, nil, gerr
	}
	finished := time.Now().UTC()
	errs = make([]error, len(jobs))
	failed := false
	for i, job := range jobs {
		res := &results[i]
		res.GenMS, res.CompileMS, res.Hints = prep.GenMS, prep.CompileMS, prep.Hints
		res.StartedAt, res.FinishedAt = started, finished
		if cells[i].Err != nil {
			errs[i] = fmt.Errorf("%s: %w", job.ID(), cells[i].Err)
			failed = true
			continue
		}
		rep := cells[i].Report
		res.Stats = rep.Stats
		res.Sampled = sampledMetaOf(rep)
	}
	if !failed {
		errs = nil
	}
	return results, errs, gerr
}
