package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedups: concurrent Do calls with one key run fn exactly once
// and every other caller shares the result.
func TestFlightDedups(t *testing.T) {
	var f Flight
	var execs atomic.Int32
	release := make(chan struct{})
	const callers = 16

	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, shared, err := f.Do(context.Background(), "k", func() (Result, error) {
				execs.Add(1)
				<-release // hold the call open so every caller piles up
				return Result{Bench: "b", Hints: 7}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if res.Hints != 7 {
				t.Errorf("result not shared: %+v", res)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the callers arrive, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != callers-1 {
		t.Errorf("%d callers saw shared=true, want %d", n, callers-1)
	}
}

// TestFlightDistinctKeysRunIndependently: different keys never wait on
// each other.
func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	var execs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shared, err := f.Do(context.Background(), key, func() (Result, error) {
				execs.Add(1)
				return Result{}, nil
			})
			if err != nil || shared {
				t.Errorf("key %s: shared=%v err=%v", key, shared, err)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 4 {
		t.Errorf("executed %d, want 4", n)
	}
}

// TestFlightWaiterCancellation: a waiter whose own context ends stops
// waiting with its context's error while the leader keeps running.
func TestFlightWaiterCancellation(t *testing.T) {
	var f Flight
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		f.Do(context.Background(), "k", func() (Result, error) {
			close(leaderIn)
			<-release
			return Result{}, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err := f.Do(ctx, "k", func() (Result, error) {
		t.Error("waiter must not execute")
		return Result{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestFlightRetriesAfterLeaderCancelled: when the executing caller is
// cancelled, a live waiter must not inherit the foreign cancellation —
// it retries and becomes the new executor.
func TestFlightRetriesAfterLeaderCancelled(t *testing.T) {
	var f Flight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	go func() {
		f.Do(leaderCtx, "k", func() (Result, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return Result{}, fmt.Errorf("job: %w", leaderCtx.Err())
		})
	}()
	<-leaderIn

	done := make(chan struct{})
	var res Result
	var shared bool
	var err error
	go func() {
		defer close(done)
		res, shared, err = f.Do(context.Background(), "k", func() (Result, error) {
			return Result{Hints: 3}, nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enqueue
	cancelLeader()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never retried after leader cancellation")
	}
	if err != nil || shared || res.Hints != 3 {
		t.Errorf("retry: res=%+v shared=%v err=%v, want own execution", res, shared, err)
	}
}

// TestGateBoundsConcurrency: a shared gate keeps the number of
// simultaneously running executions at its slot count.
func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(2)
	var running, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer g.Release()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds gate size 2", p)
	}
}

// TestGateAcquireHonoursContext: waiting for a slot ends with the
// context.
func TestGateAcquireHonoursContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	g.Release()
}

// TestJobKeyExactModePinned pins the exact-mode cache key of the
// canonical paper job. The key is a content hash of (schema, bench,
// tech, derived config, budget, seed, power params); if this test
// breaks, every pre-existing on-disk cache is invalidated and the
// change must either be reverted or ship with a cacheSchema bump and a
// regenerated constant.
func TestJobKeyExactModePinned(t *testing.T) {
	const want = "f28e8df2b4d1a3e9270cb3fb475f72fbb8a28b7693686e459ad342b9f5746c01"
	spec := DefaultSpec(500_000)
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	got, err := JobKey(&jobs[0], spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("exact-mode JobKey drifted:\n got %s\nwant %s", got, want)
	}
}

// TestEngineFlightDedupAcrossEngines is the in-process model of the
// campaign service: two engines run the same spec concurrently over one
// cache directory and one Flight. Every JobKey must be simulated at
// most once fleet-wide, the loser's jobs landing as dedup or cache
// hits, and both result sets must agree exactly.
func TestEngineFlightDedupAcrossEngines(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	flight := &Flight{}
	gate := NewGate(4)

	var mu sync.Mutex
	started := map[string]int{}
	onStart := func(j Job) {
		k, err := JobKey(&j, spec.Params)
		if err != nil {
			t.Errorf("JobKey: %v", err)
			return
		}
		mu.Lock()
		started[k]++
		mu.Unlock()
	}

	const engines = 4
	rss := make([]*ResultSet, engines)
	errs := make([]error, engines)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Engine{Workers: 2, CacheDir: dir, Flight: flight, Gate: gate, OnJobStart: onStart}
			rss[i], errs[i] = e.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()

	jobs, _ := spec.Jobs()
	for i := 0; i < engines; i++ {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if len(rss[i].Results) != len(jobs) {
			t.Fatalf("engine %d: %d results, want %d", i, len(rss[i].Results), len(jobs))
		}
	}
	for k, n := range started {
		if n > 1 {
			t.Errorf("job key %s simulated %d times across engines, want at most 1", k[:12], n)
		}
	}
	var executed, served int
	for i := 0; i < engines; i++ {
		executed += rss[i].Executed
		served += rss[i].CacheHits + rss[i].DedupHits
	}
	if executed != len(jobs) {
		t.Errorf("fleet executed %d simulations, want exactly %d", executed, len(jobs))
	}
	if served != (engines-1)*len(jobs) {
		t.Errorf("fleet served %d jobs from cache+dedup, want %d", served, (engines-1)*len(jobs))
	}
	// Identical campaigns must agree result for result, however each
	// engine's copy was obtained.
	for i := 1; i < engines; i++ {
		for j := range rss[0].Results {
			a, b := rss[0].Results[j], rss[i].Results[j]
			if a.Bench != b.Bench || a.Tech != b.Tech || a.Stats != b.Stats {
				t.Errorf("engine %d result %d diverges from engine 0", i, j)
			}
		}
	}
}

// TestExecuteStampsTimestamps: per-job wall-clock meta must be real and
// ordered, and must survive the disk cache so a cache hit exports the
// populating run's stamps byte-identically.
func TestExecuteStampsTimestamps(t *testing.T) {
	spec := smallSpec()
	spec.Benchmarks, spec.Techniques = []string{"gzip"}, []Technique{TechBaseline}
	dir := t.TempDir()
	run := func() Result {
		rs, err := (&Engine{Workers: 1, CacheDir: dir}).Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return rs.Results[0]
	}
	fresh := run()
	if fresh.StartedAt.IsZero() || fresh.FinishedAt.IsZero() {
		t.Fatalf("executed result missing timestamps: %+v", fresh)
	}
	if fresh.FinishedAt.Before(fresh.StartedAt) {
		t.Errorf("finished %v before started %v", fresh.FinishedAt, fresh.StartedAt)
	}
	cached := run()
	if !cached.Cached {
		t.Fatal("second run did not hit the cache")
	}
	if !cached.StartedAt.Equal(fresh.StartedAt) || !cached.FinishedAt.Equal(fresh.FinishedAt) {
		t.Errorf("cache hit re-stamped timestamps: fresh %v/%v cached %v/%v",
			fresh.StartedAt, fresh.FinishedAt, cached.StartedAt, cached.FinishedAt)
	}
}
