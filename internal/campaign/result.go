package campaign

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sim"
)

// ResultSet holds every completed result of a campaign, in the spec's
// deterministic job order, with an index for point queries. It is the
// queryable store the harness and exporters read; a set loaded from a
// JSON export is indistinguishable from a freshly-simulated one.
type ResultSet struct {
	Spec    Spec     `json:"spec"`
	Results []Result `json:"results"`

	// Executed counts jobs actually simulated, CacheHits jobs served
	// from the on-disk cache, DedupHits jobs shared from a concurrent
	// identical execution, Skipped jobs abandoned after cancellation.
	Executed  int `json:"-"`
	CacheHits int `json:"-"`
	DedupHits int `json:"-"`
	Skipped   int `json:"-"`

	index map[string]int
}

func resultKey(bench string, tech Technique, pt Point) string {
	return bench + "\x00" + string(tech) + "\x00" + pt.String()
}

// reindex rebuilds the lookup index from Results.
func (rs *ResultSet) reindex() {
	rs.index = make(map[string]int, len(rs.Results))
	for i := range rs.Results {
		r := &rs.Results[i]
		rs.index[resultKey(r.Bench, r.Tech, r.Point)] = i
	}
}

// Get returns the result for one (benchmark, technique, point); the base
// campaign's single point is nil.
func (rs *ResultSet) Get(bench string, tech Technique, pt Point) (Result, bool) {
	if rs.index == nil {
		rs.reindex()
	}
	i, ok := rs.index[resultKey(bench, tech, pt)]
	if !ok {
		return Result{}, false
	}
	return rs.Results[i], true
}

// MustGet is Get for callers that have already checked completeness.
func (rs *ResultSet) MustGet(bench string, tech Technique, pt Point) Result {
	r, ok := rs.Get(bench, tech, pt)
	if !ok {
		panic(fmt.Sprintf("campaign: no result for %s/%s/%s", bench, tech, pt))
	}
	return r
}

// Benchmarks lists the campaign's benchmarks in spec order.
func (rs *ResultSet) Benchmarks() []string { return rs.Spec.benchmarks() }

// Techniques lists the campaign's techniques in spec order.
func (rs *ResultSet) Techniques() []Technique { return rs.Spec.techniques() }

// Points lists the campaign's sweep points in expansion order.
func (rs *ResultSet) Points() []Point { return rs.Spec.Points() }

// Complete reports whether every job of the spec has a result.
func (rs *ResultSet) Complete() bool {
	jobs, err := rs.Spec.Jobs()
	if err != nil {
		return false
	}
	return len(rs.Results) == len(jobs)
}

// ConfigAt returns the concrete configuration at a sweep point.
func (rs *ResultSet) ConfigAt(pt Point) (sim.Config, error) { return rs.Spec.configAt(pt) }

// --- derived metrics ---
// The reference for every "vs baseline" metric is the TechBaseline run
// of the same benchmark at the same sweep point.

// IPCLossPct returns the IPC loss of tech vs the baseline at a point.
func (rs *ResultSet) IPCLossPct(bench string, tech Technique, pt Point) float64 {
	base, ok1 := rs.Get(bench, TechBaseline, pt)
	t, ok2 := rs.Get(bench, tech, pt)
	if !ok1 || !ok2 || base.Stats.IPC() == 0 {
		return 0
	}
	return (1 - t.Stats.IPC()/base.Stats.IPC()) * 100
}

// OccupancyReductionPct returns the IQ occupancy reduction vs baseline.
func (rs *ResultSet) OccupancyReductionPct(bench string, tech Technique, pt Point) float64 {
	base, ok1 := rs.Get(bench, TechBaseline, pt)
	t, ok2 := rs.Get(bench, tech, pt)
	if !ok1 || !ok2 || base.Stats.AvgIQOccupancy() == 0 {
		return 0
	}
	return (1 - t.Stats.AvgIQOccupancy()/base.Stats.AvgIQOccupancy()) * 100
}

// Savings returns the power savings of tech vs the baseline at a point,
// computed with the spec's power parameters on the point's bank counts.
func (rs *ResultSet) Savings(bench string, tech Technique, pt Point) (power.Savings, error) {
	cfg, err := rs.ConfigAt(pt)
	if err != nil {
		return power.Savings{}, err
	}
	base, ok1 := rs.Get(bench, TechBaseline, pt)
	t, ok2 := rs.Get(bench, tech, pt)
	if !ok1 || !ok2 {
		return power.Savings{}, fmt.Errorf("campaign: missing results for %s/%s/%s", bench, tech, pt)
	}
	iqBanks := cfg.IQ.Entries / cfg.IQ.BankSize
	rfBanks := cfg.IntRF.Regs / cfg.IntRF.BankSize
	return rs.Spec.Params.Compute(&base.Stats, &t.Stats, iqBanks, rfBanks), nil
}
