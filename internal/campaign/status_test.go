package campaign

import (
	"context"
	"sync"
	"testing"
)

// TestTrackerLifecycle drives a real campaign through a Tracker and
// checks the snapshot arithmetic and per-job terminal states.
func TestTrackerLifecycle(t *testing.T) {
	spec := smallSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(jobs)

	before := tr.Snapshot()
	if before.Total != 4 || before.Pending != 4 || len(before.Jobs) != 4 {
		t.Fatalf("initial snapshot off: %+v", before)
	}

	var mu sync.Mutex
	var changes []JobState
	tr.OnChange = func(js JobStatus) {
		mu.Lock()
		changes = append(changes, js.State)
		mu.Unlock()
	}

	e := &Engine{Workers: 2}
	tr.Attach(e)
	if _, err := e.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	tr.FinishSkipped()

	after := tr.Snapshot()
	if after.Done != 4 || after.Pending != 0 || after.Running != 0 || after.Skipped != 0 {
		t.Errorf("final snapshot off: %+v", after)
	}
	if after.Executed != 4 || after.CacheHits != 0 || after.DedupHits != 0 {
		t.Errorf("hit accounting off: %+v", after)
	}
	if after.CommittedInsts < 4*spec.Budget {
		t.Errorf("committed insts %d below 4 budgets", after.CommittedInsts)
	}
	for _, js := range after.Jobs {
		if js.State != JobDone {
			t.Errorf("job %s state %s, want done", js.ID, js.State)
		}
		if js.StartedAt.IsZero() || js.FinishedAt.IsZero() {
			t.Errorf("job %s missing timestamps", js.ID)
		}
		if js.IPC <= 0 {
			t.Errorf("job %s IPC %f", js.ID, js.IPC)
		}
	}
	// Every job emits running then done: 8 transitions in total.
	mu.Lock()
	defer mu.Unlock()
	if len(changes) != 8 {
		t.Errorf("saw %d transitions, want 8 (%v)", len(changes), changes)
	}
}

// TestTrackerFailuresAndSkips: a failing job must land failed with its
// error, and jobs the cancellation abandoned must end skipped, not
// pending.
func TestTrackerFailuresAndSkips(t *testing.T) {
	spec := smallSpec()
	spec.Benchmarks = []string{"nosuchbench", "gzip"}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(jobs)
	e := &Engine{Workers: 1}
	tr.Attach(e)
	if _, err := e.Run(context.Background(), spec); err == nil {
		t.Fatal("campaign with bad benchmark succeeded")
	}
	tr.FinishSkipped()

	st := tr.Snapshot()
	if st.Failed == 0 {
		t.Error("no job marked failed")
	}
	if st.Pending != 0 || st.Running != 0 {
		t.Errorf("abandoned jobs left pending/running: %+v", st)
	}
	if st.Failed+st.Done+st.Skipped != st.Total {
		t.Errorf("states do not partition the campaign: %+v", st)
	}
	var sawError bool
	for _, js := range st.Jobs {
		if js.State == JobFailed && js.Error != "" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("failed job carries no error text")
	}
}
