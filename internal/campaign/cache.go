package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/power"
)

// cacheSchema versions the cached-result format; bump it when Result or
// the simulator's statistics change shape or meaning, which invalidates
// every prior entry at once.
const cacheSchema = 1

// JobKey returns the content hash that identifies a job's result: a
// SHA-256 over everything the outcome depends on — benchmark, technique,
// the fully-derived simulator configuration, budget, seed, the sampling
// regime (when sampled), and the power parameters the campaign's figures
// will be computed with. The sweep point is deliberately absent: it is
// already folded into the derived configuration, so a sweep cell and a
// base run with equal configurations share one cache entry. The sampling
// field is omitted entirely for exact jobs, so exact keys are unchanged
// from before sampled mode existed and pre-existing caches stay valid.
func JobKey(job *Job, params power.Params) (string, error) {
	cfg := job.Config
	cfg.Probe = nil // runtime attachment, not identity
	blob, err := json.Marshal(struct {
		Schema   int
		Bench    string
		Tech     Technique
		Config   any
		Budget   int64
		Seed     int64
		Params   power.Params
		Sampling *Sampling `json:",omitempty"`
	}{cacheSchema, job.Bench, job.Tech, cfg, job.Budget, job.Seed, params, job.Sampling})
	if err != nil {
		return "", fmt.Errorf("campaign: hashing job %s: %w", job.ID(), err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is the exported handle on a result cache directory — the same
// store the engine uses internally, for drivers that manage results by
// JobKey themselves (the remote worker's scratch cache). A nil *Cache
// (from an empty dir) is safe to use and never hits.
type Cache struct {
	dc *diskCache
}

// OpenCache opens (creating if needed) a result cache at dir. An empty
// dir returns a nil Cache whose Get always misses and Put discards.
func OpenCache(dir string) (*Cache, error) {
	dc, err := newDiskCache(dir)
	if err != nil {
		return nil, err
	}
	if dc == nil {
		return nil, nil
	}
	return &Cache{dc: dc}, nil
}

// Get loads the cached result for a JobKey; ok is false on a miss or a
// corrupt entry. Hits come back with Cached set, like the engine's.
func (c *Cache) Get(key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	return c.dc.get(key)
}

// Put stores a result under a JobKey (atomically, like the engine's
// writes). Errors are the caller's to ignore: a failed write only costs
// a future re-simulation.
func (c *Cache) Put(key string, res Result) error {
	if c == nil || key == "" {
		return nil
	}
	return c.dc.put(key, res)
}

// GC bounds the cache directory to maxBytes by evicting entries least
// recently used first (every hit refreshes an entry's mtime, so mtime
// order is recency order). Eviction is an accelerator trade, never a
// correctness event: an evicted result simply re-simulates on its next
// request. Returns how many entries were evicted and how many bytes
// they held. A nil cache or non-positive bound is a no-op.
func (c *Cache) GC(maxBytes int64) (evicted int, reclaimed int64, err error) {
	if c == nil || maxBytes <= 0 {
		return 0, 0, nil
	}
	return c.dc.gc(maxBytes)
}

// cacheEntry is one on-disk result during a GC scan.
type cacheEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// gc walks the sharded cache directory and deletes oldest-mtime entries
// until the total is at or under maxBytes. Concurrent readers of a
// deleted entry observe a miss, concurrent writers win the race
// harmlessly (their fresh mtime puts them at the back of the LRU).
func (c *diskCache) gc(maxBytes int64) (int, int64, error) {
	var entries []cacheEntry
	var total int64
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") || strings.HasPrefix(d.Name(), ".") {
			return nil // temp files and foreign droppings are not ours to evict
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		entries = append(entries, cacheEntry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("campaign: cache gc: %w", err)
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	evicted, reclaimed := 0, int64(0)
	for _, e := range entries {
		if total-reclaimed <= maxBytes {
			break
		}
		if os.Remove(e.path) != nil {
			continue // already gone (racing GC or manual cleanup)
		}
		evicted++
		reclaimed += e.size
	}
	return evicted, reclaimed, nil
}

// diskCache persists one Result per content hash under a directory,
// sharded by the key's first byte to keep directories small. A missing
// or unreadable entry is a miss, never an error: the cache is an
// accelerator, not a source of truth.
type diskCache struct {
	dir string
}

func newDiskCache(dir string) (*diskCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// get loads a cached result; ok is false on miss or a corrupt entry.
// Hits refresh the entry's mtime (best-effort) so the GC's mtime order
// approximates least-recently-used rather than least-recently-written.
func (c *diskCache) get(key string) (Result, bool) {
	p := c.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return Result{}, false
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	res.Cached = true
	return res, true
}

// put stores a result atomically (write-to-temp, rename) so concurrent
// campaigns over the same cache directory never observe torn entries.
func (c *diskCache) put(key string, res Result) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), p)
}
