package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestExportJSONRoundTrip(t *testing.T) {
	spec := smallSpec()
	rs, err := (&Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec.Budget != spec.Budget || loaded.Spec.Seed != spec.Seed {
		t.Error("spec not preserved")
	}
	if !loaded.Complete() {
		t.Error("loaded campaign incomplete")
	}
	for _, b := range spec.Benchmarks {
		for _, tech := range spec.Techniques {
			want, ok1 := rs.Get(b, tech, nil)
			got, ok2 := loaded.Get(b, tech, nil)
			if !ok1 || !ok2 || want.Stats != got.Stats {
				t.Errorf("%s/%s lost in round trip", b, tech)
			}
		}
	}
	// Derived metrics work on a loaded campaign — re-plot without re-sim.
	if loaded.IPCLossPct("gzip", TechNOOP, nil) != rs.IPCLossPct("gzip", TechNOOP, nil) {
		t.Error("derived metric differs after reload")
	}
}

func TestExportReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"spec":{},"results":[{"bench":"x","tech":"quantum"}]}`)); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestExportCSVShape(t *testing.T) {
	spec := smallSpec()
	rs, err := (&Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(rs.Results) {
		t.Fatalf("csv lines = %d, want header + %d rows", len(lines), len(rs.Results))
	}
	header := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(header) {
			t.Errorf("row has %d fields, header %d: %s", got, len(header), row)
		}
	}
	if !strings.Contains(lines[0], "ipc_loss_pct") {
		t.Errorf("header missing derived metrics: %s", lines[0])
	}
	// Baseline rows carry zero loss; technique rows carry a number.
	if !strings.Contains(buf.String(), "gzip,NOOP") {
		t.Error("missing gzip NOOP row")
	}
}
