package campaign

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/sim"
)

// keyedJob returns a sampled job at the paper's base configuration.
func keyedJob() Job {
	s := DefaultSampling()
	return Job{
		Bench:    "gzip",
		Tech:     TechBaseline,
		Config:   sim.DefaultConfig(),
		Budget:   100_000,
		Seed:     42,
		Sampling: &s,
	}
}

func TestCheckpointKeyExactJobHasNone(t *testing.T) {
	j := keyedJob()
	j.Sampling = nil
	key, err := CheckpointKey(&j)
	if err != nil || key != "" {
		t.Fatalf("exact job key = %q, %v; want \"\", nil", key, err)
	}
}

func TestCheckpointKeyFormat(t *testing.T) {
	j := keyedJob()
	key, err := CheckpointKey(&j)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			t.Fatalf("key %q is not lowercase hex", key)
		}
	}
}

// TestCheckpointKeySharing pins down which job fields share an artifact
// and which invalidate it. The sweep axes a grid varies (IQ geometry,
// issue width — anything the functional warming stream cannot observe)
// must share; anything the warm state depends on must not.
func TestCheckpointKeySharing(t *testing.T) {
	base := keyedJob()
	baseKey, err := CheckpointKey(&base)
	if err != nil {
		t.Fatal(err)
	}
	same := map[string]func(*Job){
		"iq entries":                func(j *Job) { j.Config.IQ.Entries = 32 },
		"iq bank size":              func(j *Job) { j.Config.IQ.BankSize = 8 },
		"issue width":               func(j *Job) { j.Config.IssueWidth = 2 },
		"rob size":                  func(j *Job) { j.Config.ROBSize = 64 },
		"abella (also plain class)": func(j *Job) { j.Tech = TechAbella },
		"sweep point label":         func(j *Job) { j.Point = Point{{Axis: "iq.entries", Value: 80}} },
	}
	for name, mutate := range same {
		j := keyedJob()
		mutate(&j)
		key, err := CheckpointKey(&j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key != baseKey {
			t.Errorf("%s: changed the key but cannot influence warm state", name)
		}
	}
	diff := map[string]func(*Job){
		"benchmark":          func(j *Job) { j.Bench = "mcf" },
		"seed":               func(j *Job) { j.Seed = 7 },
		"budget":             func(j *Job) { j.Budget = 200_000 },
		"dl1 size":           func(j *Job) { j.Config.Caches.DL1.SizeBytes = 128 << 10 },
		"l2 assoc":           func(j *Job) { j.Config.Caches.L2.Assoc = 16 },
		"btb entries":        func(j *Job) { j.Config.Bpred.BTBEntries = 4096 },
		"history bits":       func(j *Job) { j.Config.Bpred.HistoryBits = 8 },
		"noop class":         func(j *Job) { j.Tech = TechNOOP },
		"tag class":          func(j *Job) { j.Tech = TechExtension },
		"tag-improved class": func(j *Job) { j.Tech = TechImproved },
		"sampling period":    func(j *Job) { j.Sampling.Period = j.Sampling.Period * 2 },
		"sampling window":    func(j *Job) { j.Sampling.Window = j.Sampling.Window * 2 },
		"warmup length":      func(j *Job) { j.Sampling.Warmup = -1 },
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range diff {
		j := keyedJob()
		mutate(&j)
		key, err := CheckpointKey(&j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: collides with %s", name, prev)
		}
		seen[key] = name
	}
	// The two tag passes must key apart from each other, not just from
	// the base: their hint values at window starts differ.
	ext, imp := keyedJob(), keyedJob()
	ext.Tech, imp.Tech = TechExtension, TechImproved
	ke, _ := CheckpointKey(&ext)
	ki, _ := CheckpointKey(&imp)
	if ke == ki {
		t.Error("Extension and Improved share a key; their stored hints differ")
	}
}

// normalizeWallClock zeroes the fields that record when and how long a
// run executed — legitimate differences between two executions of the
// same campaign that the bit-identity comparison must ignore.
func normalizeWallClock(rs *ResultSet) {
	for i := range rs.Results {
		r := &rs.Results[i]
		r.CompileMS, r.GenMS = 0, 0
		r.StartedAt, r.FinishedAt = time.Time{}, time.Time{}
	}
}

// TestCampaignDifferentialWithStore is the tentpole's correctness gate:
// a mixed sweep over three benchmarks, every technique and an IQ axis,
// run three ways — no store, cold store (generating), warm store
// (resuming) — must produce bit-identical campaigns.
func TestCampaignDifferentialWithStore(t *testing.T) {
	spec := Spec{
		Name:       "ckpt-differential",
		Benchmarks: []string{"gzip", "mcf", "crafty"},
		Budget:     20_000,
		Seed:       42,
		Base:       sim.DefaultConfig(),
		Params:     power.DefaultParams(),
		Axes:       []Axis{{Name: "iq.entries", Values: []int{48, 80}}},
		Sampling:   &Sampling{Window: 500, Period: 4000, Warmup: 1000, DetailWarmup: 250},
	}
	ctx := context.Background()

	plain, err := (&Engine{Workers: 2}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := (&Engine{Workers: 2, Ckpt: store}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := (&Engine{Workers: 2, Ckpt: store}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	jobs, _ := spec.Jobs()
	if len(plain.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(plain.Results), len(jobs))
	}
	for _, run := range []struct {
		name string
		rs   *ResultSet
	}{{"cold store", cold}, {"warm store", warm}} {
		for i := range plain.Results {
			want, got := &plain.Results[i], &run.rs.Results[i]
			if !reflect.DeepEqual(want.Stats, got.Stats) {
				t.Errorf("%s: %s/%s/%s: stats diverge from storeless run",
					run.name, got.Bench, got.Tech, got.Point)
			}
			if !reflect.DeepEqual(want.Sampled, got.Sampled) {
				t.Errorf("%s: %s/%s/%s: sampling meta diverges from storeless run",
					run.name, got.Bench, got.Tech, got.Point)
			}
		}
	}

	// Export bit-identity: CSV directly, JSON after dropping wall-clock.
	var wantCSV bytes.Buffer
	if err := plain.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	normalizeWallClock(plain)
	var wantJSON bytes.Buffer
	if err := plain.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	for _, run := range []struct {
		name string
		rs   *ResultSet
	}{{"cold store", cold}, {"warm store", warm}} {
		var csv bytes.Buffer
		if err := run.rs.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), wantCSV.Bytes()) {
			t.Errorf("%s: CSV export is not byte-identical to the storeless run", run.name)
		}
		normalizeWallClock(run.rs)
		var js bytes.Buffer
		if err := run.rs.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js.Bytes(), wantJSON.Bytes()) {
			t.Errorf("%s: JSON export is not byte-identical to the storeless run", run.name)
		}
	}

	// Store accounting: the grid has 3 benchmarks x 4 warm classes
	// (baseline and abella share "plain") = 12 artifacts; the 2 IQ points
	// deliberately share. Cold run: 12 generates + 18 resumes; warm run:
	// 30 resumes.
	m := store.Metrics()
	if m.Generated != 12 {
		t.Errorf("Generated = %d, want 12 (one artifact per warm identity)", m.Generated)
	}
	if want := int64(len(jobs)*2 - 12); m.Hits != want {
		t.Errorf("Hits = %d, want %d", m.Hits, want)
	}
	if n, _ := store.DiskStat(); n != 12 {
		t.Errorf("%d artifacts on disk, want 12", n)
	}
}
