package campaign

import (
	"sync"
	"time"
)

// JobState is the lifecycle of one job within a running campaign.
type JobState string

// Job lifecycle states. A job goes pending → running → done/failed when
// it is actually simulated; cache and dedup hits jump straight from
// pending to done; jobs abandoned after a cancellation end skipped.
const (
	JobPending JobState = "pending"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	JobSkipped JobState = "skipped"
)

// JobStatus is the observable state of one job — what the campaign
// service streams to clients and reports in status snapshots.
type JobStatus struct {
	ID    string    `json:"id"`
	Bench string    `json:"bench"`
	Tech  Technique `json:"tech"`
	Point string    `json:"point,omitempty"`
	State JobState  `json:"state"`
	// Cached marks a result served from the on-disk cache, Dedup one
	// shared from a concurrent identical execution.
	Cached bool   `json:"cached,omitempty"`
	Dedup  bool   `json:"dedup,omitempty"`
	Error  string `json:"error,omitempty"`
	// IPC is the headline result metric, set once the job is done.
	IPC        float64   `json:"ipc,omitempty"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

// Status is a point-in-time snapshot of a campaign's progress.
type Status struct {
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Skipped int `json:"skipped"`
	// Executed counts jobs actually simulated; CacheHits and DedupHits
	// count jobs served from the disk cache or a concurrent execution.
	Executed  int `json:"executed"`
	CacheHits int `json:"cache_hits"`
	DedupHits int `json:"dedup_hits"`
	// CommittedInsts totals Stats.CommittedReal over executed jobs — the
	// service's instruction-throughput accounting.
	CommittedInsts int64       `json:"committed_insts"`
	Jobs           []JobStatus `json:"jobs,omitempty"`
}

// Tracker turns an Engine's callbacks into a queryable progress
// snapshot plus a per-change event feed. Create it with the campaign's
// job list, Attach it to the engine, and call Snapshot whenever a
// client asks; OnChange (if set) observes every job transition in
// order.
type Tracker struct {
	mu    sync.Mutex
	order []string
	jobs  map[string]*JobStatus
	stat  Status

	// OnChange, when non-nil, is called after every job state change
	// with a copy of the job's new status. Calls are serialised.
	OnChange func(JobStatus)
}

// NewTracker returns a tracker primed with every job pending.
func NewTracker(jobs []Job) *Tracker {
	t := &Tracker{jobs: make(map[string]*JobStatus, len(jobs))}
	for i := range jobs {
		j := &jobs[i]
		id := j.ID()
		t.order = append(t.order, id)
		t.jobs[id] = &JobStatus{
			ID:    id,
			Bench: j.Bench,
			Tech:  j.Tech,
			Point: j.Point.String(),
			State: JobPending,
		}
	}
	t.stat.Total = len(jobs)
	t.stat.Pending = len(jobs)
	return t
}

// Attach wires the tracker into an engine's progress callbacks,
// chaining any callbacks already installed.
func (t *Tracker) Attach(e *Engine) {
	prevStart, prevResult, prevError := e.OnJobStart, e.OnResult, e.OnJobError
	e.OnJobStart = func(j Job) {
		t.jobStarted(&j)
		if prevStart != nil {
			prevStart(j)
		}
	}
	e.OnResult = func(r Result) {
		t.jobDone(r)
		if prevResult != nil {
			prevResult(r)
		}
	}
	e.OnJobError = func(j Job, err error) {
		t.jobFailed(&j, err)
		if prevError != nil {
			prevError(j, err)
		}
	}
}

// update applies fn to the job's status under the lock and emits the
// change. Unknown IDs (a result restamped onto a point the tracker
// never saw) are ignored rather than invented.
func (t *Tracker) update(id string, fn func(*JobStatus)) {
	t.mu.Lock()
	js, ok := t.jobs[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	t.leave(js.State)
	fn(js)
	t.enter(js.State)
	out := *js
	cb := t.OnChange
	t.mu.Unlock()
	if cb != nil {
		cb(out)
	}
}

func (t *Tracker) leave(s JobState) { t.bucket(s, -1) }
func (t *Tracker) enter(s JobState) { t.bucket(s, +1) }

func (t *Tracker) bucket(s JobState, d int) {
	switch s {
	case JobPending:
		t.stat.Pending += d
	case JobRunning:
		t.stat.Running += d
	case JobDone:
		t.stat.Done += d
	case JobFailed:
		t.stat.Failed += d
	case JobSkipped:
		t.stat.Skipped += d
	}
}

func (t *Tracker) jobStarted(j *Job) {
	t.update(j.ID(), func(js *JobStatus) {
		js.State = JobRunning
		js.StartedAt = time.Now().UTC()
	})
}

func (t *Tracker) jobDone(r Result) {
	id := (&Job{Bench: r.Bench, Tech: r.Tech, Point: r.Point}).ID()
	// The hit counters move inside the same critical section as the
	// state change, so a Snapshot never sees Done ahead of
	// Executed+CacheHits+DedupHits.
	t.update(id, func(js *JobStatus) {
		js.State = JobDone
		js.Cached = r.Cached
		js.Dedup = r.Dedup
		js.IPC = r.Stats.IPC()
		switch {
		case r.Dedup:
			t.stat.DedupHits++
		case r.Cached:
			t.stat.CacheHits++
		default:
			t.stat.Executed++
			t.stat.CommittedInsts += r.Stats.CommittedReal
		}
		if r.Cached || r.Dedup {
			// Served, not simulated: the result's own stamps belong to
			// the execution that populated it.
			js.FinishedAt = time.Now().UTC()
		} else {
			js.StartedAt, js.FinishedAt = r.StartedAt, r.FinishedAt
		}
	})
}

func (t *Tracker) jobFailed(j *Job, err error) {
	t.update(j.ID(), func(js *JobStatus) {
		js.State = JobFailed
		js.Error = err.Error()
		js.FinishedAt = time.Now().UTC()
	})
}

// Restore primes the tracker with job statuses recovered from durable
// state (the campaign service's WAL): each known job's status is
// replaced wholesale and the aggregate counters are rebuilt from it, as
// if the transitions had been observed live. Unknown IDs are ignored
// (spec drift across restarts loses those jobs' history, nothing more).
// OnChange is not fired: restoration is priming, not progress.
func (t *Tracker) Restore(jobs []JobStatus) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, js := range jobs {
		cur, ok := t.jobs[js.ID]
		if !ok {
			continue
		}
		t.leave(cur.State)
		*cur = js
		t.enter(js.State)
		if js.State == JobDone {
			switch {
			case js.Dedup:
				t.stat.DedupHits++
			case js.Cached:
				t.stat.CacheHits++
			default:
				t.stat.Executed++
			}
		}
	}
}

// FinishSkipped marks every job still pending or running as skipped —
// called once the campaign has returned, so a cancelled campaign's
// status doesn't report abandoned jobs as forever pending.
func (t *Tracker) FinishSkipped() {
	t.mu.Lock()
	var changed []JobStatus
	for _, id := range t.order {
		js := t.jobs[id]
		if js.State == JobPending || js.State == JobRunning {
			t.leave(js.State)
			js.State = JobSkipped
			t.enter(JobSkipped)
			changed = append(changed, *js)
		}
	}
	cb := t.OnChange
	t.mu.Unlock()
	if cb != nil {
		for _, js := range changed {
			cb(js)
		}
	}
}

// Snapshot returns the current progress, with per-job detail in
// campaign job order.
func (t *Tracker) Snapshot() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stat
	out.Jobs = make([]JobStatus, 0, len(t.order))
	for _, id := range t.order {
		out.Jobs = append(out.Jobs, *t.jobs[id])
	}
	return out
}

// Summary is Snapshot without the per-job roster — O(1), for listings
// over many large campaigns.
func (t *Tracker) Summary() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stat
}
