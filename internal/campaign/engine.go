package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Engine executes campaigns. The zero value runs with GOMAXPROCS workers
// and no cache; set CacheDir to persist results across runs.
type Engine struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// OnResult, when non-nil, observes every completed result as it
	// lands (from worker goroutines, serialised by the engine). CLI
	// drivers use it for progress reporting.
	OnResult func(Result)
}

// jobQueue is one worker's share of the campaign. The owner pops from
// the front; idle workers steal from the back, so an owner and a thief
// contend only on the last job of a queue.
type jobQueue struct {
	mu   sync.Mutex
	jobs []int // indices into the campaign's job slice
}

func (q *jobQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return 0, false
	}
	idx := q.jobs[0]
	q.jobs = q.jobs[1:]
	return idx, true
}

func (q *jobQueue) steal() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return 0, false
	}
	idx := q.jobs[len(q.jobs)-1]
	q.jobs = q.jobs[:len(q.jobs)-1]
	return idx, true
}

// Run expands the spec and executes every job. The returned ResultSet
// lists completed results in the spec's deterministic job order
// regardless of completion order or worker count.
//
// On the first job error the engine cancels the campaign: in-flight jobs
// finish, queued jobs are skipped and counted in ResultSet.Skipped, and
// the error return joins every job error observed (errors.Join). The
// partial ResultSet is returned alongside the error so a driver can
// still export what completed. Cancelling ctx stops the campaign the
// same way and surfaces ctx's error.
func (e *Engine) Run(ctx context.Context, spec Spec) (*ResultSet, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	cache, err := newDiskCache(e.CacheDir)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Spec: spec}
	if len(jobs) == 0 {
		return rs, nil
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queues := make([]*jobQueue, workers)
	for w := range queues {
		queues[w] = &jobQueue{}
	}
	for i := range jobs {
		q := queues[i%workers]
		q.jobs = append(q.jobs, i)
	}

	results := make([]Result, len(jobs))
	filled := make([]bool, len(jobs))
	var (
		mu        sync.Mutex // guards errs, executed, cacheHits, OnResult
		errs      []error
		executed  int
		cacheHits int
	)

	runJob := func(idx int) {
		job := &jobs[idx]
		var key string
		if cache != nil {
			k, err := JobKey(job, spec.Params)
			if err == nil {
				// Unhashable jobs still run; they just can't be cached.
				key = k
			}
		}
		if cache != nil && key != "" {
			if res, ok := cache.get(key); ok {
				// The key omits the sweep point (it is encoded in the
				// derived config); restamp the requester's coordinates.
				res.Point = job.Point
				mu.Lock()
				results[idx], filled[idx] = res, true
				cacheHits++
				if e.OnResult != nil {
					e.OnResult(res)
				}
				mu.Unlock()
				return
			}
		}
		res, err := Execute(ctx, job)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return // cancelled before/while running: skipped, not failed
			}
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			cancel()
			return
		}
		if cache != nil && key != "" {
			// A failed write only costs the next run a re-simulation.
			_ = cache.put(key, res)
		}
		mu.Lock()
		results[idx], filled[idx] = res, true
		executed++
		if e.OnResult != nil {
			e.OnResult(res)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				idx, ok := queues[w].pop()
				for off := 1; !ok && off < workers; off++ {
					idx, ok = queues[(w+off)%workers].steal()
				}
				if !ok {
					return
				}
				runJob(idx)
			}
		}(w)
	}
	wg.Wait()

	rs.Executed, rs.CacheHits = executed, cacheHits
	rs.Results = make([]Result, 0, len(jobs))
	for i := range results {
		if filled[i] {
			rs.Results = append(rs.Results, results[i])
		} else {
			rs.Skipped++
		}
	}
	rs.reindex()
	if len(errs) > 0 {
		if rs.Skipped > 0 {
			errs = append(errs, fmt.Errorf("campaign: %d job(s) skipped after cancellation", rs.Skipped))
		}
		return rs, errors.Join(errs...)
	}
	if err := ctx.Err(); err != nil {
		return rs, err
	}
	return rs, nil
}
