package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/power"
)

// Runner is the engine's execution indirection: it is handed every job
// that survived the cache and dedup layers and decides where the job
// actually simulates — inline, or on a remote worker fleet (the campaign
// service's dispatcher). key is the job's content hash ("" when the job
// is unhashable) and params the campaign's power parameters, which are
// part of that hash; a remote runner ships both so the far side can
// validate the work against the same identity the cache uses.
//
// The returned Result is cached and delivered exactly as an inline
// execution's would be. A Runner must honour ctx: when it ends the job
// is abandoned, and the runner returns ctx's error.
type Runner interface {
	RunJob(ctx context.Context, job *Job, key string, params power.Params) (Result, error)
}

// Engine executes campaigns. The zero value runs with GOMAXPROCS workers
// and no cache; set CacheDir to persist results across runs.
type Engine struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// OnResult, when non-nil, observes every completed result as it
	// lands (from worker goroutines, serialised by the engine). CLI
	// drivers use it for progress reporting.
	OnResult func(Result)
	// OnJobStart, when non-nil, observes every job as its simulation
	// actually begins — after a cache miss and dedup, holding the Gate
	// slot. Serialised like OnResult.
	OnJobStart func(Job)
	// OnJobError, when non-nil, observes per-job failures (serialised).
	// Cancellation-induced skips are not failures and are not reported.
	OnJobError func(Job, error)
	// Flight, when non-nil, deduplicates concurrent executions of
	// identical jobs (same JobKey) across every engine sharing it.
	Flight *Flight
	// Gate, when non-nil, bounds concurrent simulations across every
	// engine sharing it; cache and dedup hits bypass it.
	Gate Gate
	// Runner, when non-nil, executes cache-missed jobs instead of the
	// inline simulate path. The engine still owns caching and dedup: the
	// runner only sees jobs that genuinely need executing, and its
	// results enter the shared cache like any other. The engine's own
	// Gate is not applied around a Runner — bounding execution is then
	// the runner's job (the service dispatcher gates its local fallback
	// with the same shared Gate).
	Runner Runner
	// Ckpt, when non-nil, is the checkpoint artifact store inline
	// executions run against (ExecuteStored): sampled cells of a sweep
	// share one warming pass per CheckpointKey instead of each
	// recomputing it. A Runner is expected to carry its own store.
	Ckpt *ckpt.Store
	// Lockstep groups cache-missed sampled jobs that share a
	// CheckpointKey (one functional identity: benchmark, seed, budget,
	// warming class, geometry, regime) into lockstep batches: one
	// emulator + warming stream fans each detailed window out to every
	// cell's core (sample.RunLockstepStored), so the sweep axis becomes
	// a batch dimension of the hot loop. Per-cell JobKeys, caching,
	// delivery and exports are unchanged, and per-cell results are
	// bit-identical to the per-job path. Only inline local execution
	// batches: an engine with a Runner (the campaign service) or a
	// shared Flight schedules per job, where fleet-wide dedup owns the
	// sharing. Batches never span Run calls, so two tenants' campaigns
	// can never share one.
	Lockstep bool
}

// lockstepUnits plans the campaign's work units: each unit is a list of
// job indices executed together. Jobs sharing a non-empty CheckpointKey
// form one lockstep batch (in deterministic first-seen order); exact
// and unkeyable jobs stay solo.
func lockstepUnits(jobs []Job) [][]int {
	groups := map[string]int{}
	var units [][]int
	for i := range jobs {
		var key string
		if jobs[i].Sampling != nil {
			key, _ = CheckpointKey(&jobs[i])
		}
		if key == "" {
			units = append(units, []int{i})
			continue
		}
		if u, ok := groups[key]; ok {
			units[u] = append(units[u], i)
		} else {
			groups[key] = len(units)
			units = append(units, []int{i})
		}
	}
	return units
}

// jobQueue is one worker's share of the campaign. The owner pops from
// the front; idle workers steal from the back, so an owner and a thief
// contend only on the last unit of a queue.
type jobQueue struct {
	mu   sync.Mutex
	jobs []int // indices into the campaign's work-unit slice
}

func (q *jobQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return 0, false
	}
	idx := q.jobs[0]
	q.jobs = q.jobs[1:]
	return idx, true
}

func (q *jobQueue) steal() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return 0, false
	}
	idx := q.jobs[len(q.jobs)-1]
	q.jobs = q.jobs[:len(q.jobs)-1]
	return idx, true
}

// Run expands the spec and executes every job. The returned ResultSet
// lists completed results in the spec's deterministic job order
// regardless of completion order or worker count.
//
// On the first job error the engine cancels the campaign: in-flight jobs
// finish, queued jobs are skipped and counted in ResultSet.Skipped, and
// the error return joins every job error observed (errors.Join). The
// partial ResultSet is returned alongside the error so a driver can
// still export what completed. Cancelling ctx stops the campaign the
// same way and surfaces ctx's error.
func (e *Engine) Run(ctx context.Context, spec Spec) (*ResultSet, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	cache, err := newDiskCache(e.CacheDir)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Spec: spec}
	if len(jobs) == 0 {
		return rs, nil
	}

	// Work units: normally one job each; with lockstep active, jobs
	// sharing a functional identity form one multi-cell batch unit.
	// Engines with a Runner or a shared Flight schedule per job — there
	// the service dispatcher and fleet-wide dedup own the sharing.
	var units [][]int
	if e.Lockstep && e.Runner == nil && e.Flight == nil {
		units = lockstepUnits(jobs)
	} else {
		units = make([][]int, len(jobs))
		for i := range jobs {
			units[i] = []int{i}
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queues := make([]*jobQueue, workers)
	for w := range queues {
		queues[w] = &jobQueue{}
	}
	for i := range units {
		q := queues[i%workers]
		q.jobs = append(q.jobs, i)
	}

	results := make([]Result, len(jobs))
	filled := make([]bool, len(jobs))
	var (
		mu        sync.Mutex // guards errs, counters, callbacks
		errs      []error
		executed  int
		cacheHits int
		dedupHits int
	)

	// deliver records a finished job and fires OnResult; how selects the
	// counter the job lands in.
	const (
		howExecuted = iota
		howCached
		howDedup
	)
	deliver := func(idx int, res Result, how int) {
		mu.Lock()
		results[idx], filled[idx] = res, true
		switch how {
		case howCached:
			cacheHits++
		case howDedup:
			dedupHits++
		default:
			executed++
		}
		if e.OnResult != nil {
			e.OnResult(res)
		}
		mu.Unlock()
	}

	runJob := func(idx int) {
		job := &jobs[idx]
		var key string
		if cache != nil || e.Flight != nil {
			k, err := JobKey(job, spec.Params)
			if err == nil {
				// Unhashable jobs still run; they just can't be cached
				// or deduplicated.
				key = k
			}
		}
		fromCache := func() (Result, bool) {
			if cache == nil || key == "" {
				return Result{}, false
			}
			res, ok := cache.get(key)
			if ok {
				// The key omits the sweep point (it is encoded in the
				// derived config); restamp the requester's coordinates.
				res.Point = job.Point
			}
			return res, ok
		}
		if res, ok := fromCache(); ok {
			deliver(idx, res, howCached)
			return
		}
		// exec is the one path that simulates: it re-checks the cache (a
		// concurrent identical job may have finished and written its
		// entry between our miss and this flight turn), takes a Gate
		// slot, runs, and persists.
		exec := func() (Result, error) {
			if res, ok := fromCache(); ok {
				return res, nil
			}
			if e.Runner != nil {
				if e.OnJobStart != nil {
					mu.Lock()
					e.OnJobStart(*job)
					mu.Unlock()
				}
				res, err := e.Runner.RunJob(ctx, job, key, spec.Params)
				if err != nil {
					return res, err
				}
				if cache != nil && key != "" {
					_ = cache.put(key, res)
				}
				return res, nil
			}
			if e.Gate != nil {
				if err := e.Gate.Acquire(ctx); err != nil {
					return Result{}, err
				}
				defer e.Gate.Release()
			}
			if e.OnJobStart != nil {
				mu.Lock()
				e.OnJobStart(*job)
				mu.Unlock()
			}
			res, err := ExecuteStored(ctx, job, e.Ckpt)
			if err != nil {
				return res, err
			}
			if cache != nil && key != "" {
				// A failed write only costs the next run a re-simulation.
				_ = cache.put(key, res)
			}
			return res, nil
		}
		var (
			res    Result
			shared bool
			err    error
		)
		if e.Flight != nil && key != "" {
			res, shared, err = e.Flight.Do(ctx, key, exec)
		} else {
			res, err = exec()
		}
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return // cancelled before/while running: skipped, not failed
			}
			mu.Lock()
			errs = append(errs, err)
			if e.OnJobError != nil {
				e.OnJobError(*job, err)
			}
			mu.Unlock()
			cancel()
			return
		}
		how := howExecuted
		switch {
		case shared:
			// Another caller's execution (possibly of a job with a
			// different sweep point but identical derived config):
			// restamp our coordinates, as for a cache hit.
			res.Point = job.Point
			res.Dedup = true
			how = howDedup
		case res.Cached:
			how = howCached
		}
		deliver(idx, res, how)
	}

	// runBatch executes one lockstep unit. Cells served by the cache
	// leave the batch first; whatever remains runs as one shared-stream
	// execution under a single Gate slot (the batch is one simulation's
	// worth of functional work — that sharing is the point), delivering,
	// caching and error-reporting per cell exactly like runJob.
	runBatch := func(idxs []int) {
		run := idxs[:0:0]
		keys := make(map[int]string, len(idxs))
		for _, idx := range idxs {
			job := &jobs[idx]
			var key string
			if cache != nil {
				if k, err := JobKey(job, spec.Params); err == nil {
					key = k
				}
			}
			keys[idx] = key
			if key != "" {
				if res, ok := cache.get(key); ok {
					res.Point = job.Point
					deliver(idx, res, howCached)
					continue
				}
			}
			run = append(run, idx)
		}
		if len(run) == 0 {
			return
		}
		if len(run) == 1 {
			// A one-cell batch is just a job; the solo path also re-probes
			// the cache and keeps the two executors trivially aligned.
			runJob(run[0])
			return
		}
		if e.Gate != nil {
			if err := e.Gate.Acquire(ctx); err != nil {
				return // cancelled while queued: skipped, not failed
			}
		}
		if e.OnJobStart != nil {
			mu.Lock()
			for _, idx := range run {
				e.OnJobStart(jobs[idx])
			}
			mu.Unlock()
		}
		bjobs := make([]*Job, len(run))
		for i, idx := range run {
			bjobs[i] = &jobs[idx]
		}
		results, cerrs, gerr := ExecuteBatchStored(ctx, bjobs, e.Ckpt)
		if e.Gate != nil {
			e.Gate.Release()
		}
		fail := func(idx int, err error) {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return // cancellation is a skip, not a failure
			}
			mu.Lock()
			errs = append(errs, err)
			if e.OnJobError != nil {
				e.OnJobError(jobs[idx], err)
			}
			mu.Unlock()
			cancel()
		}
		if gerr != nil && cerrs == nil {
			// Setup failed before any cell could run: every cell reports it.
			for _, idx := range run {
				fail(idx, fmt.Errorf("%s: %w", jobs[idx].ID(), gerr))
			}
			return
		}
		for i, idx := range run {
			if cerrs != nil && cerrs[i] != nil {
				// A mid-batch cell failure sinks only its own cell; its
				// batchmates' results still land below.
				fail(idx, cerrs[i])
				continue
			}
			if cache != nil && keys[idx] != "" {
				_ = cache.put(keys[idx], results[i])
			}
			deliver(idx, results[i], howExecuted)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				idx, ok := queues[w].pop()
				for off := 1; !ok && off < workers; off++ {
					idx, ok = queues[(w+off)%workers].steal()
				}
				if !ok {
					return
				}
				if u := units[idx]; len(u) == 1 {
					runJob(u[0])
				} else {
					runBatch(u)
				}
			}
		}(w)
	}
	wg.Wait()

	rs.Executed, rs.CacheHits, rs.DedupHits = executed, cacheHits, dedupHits
	rs.Results = make([]Result, 0, len(jobs))
	for i := range results {
		if filled[i] {
			rs.Results = append(rs.Results, results[i])
		} else {
			rs.Skipped++
		}
	}
	rs.reindex()
	if len(errs) > 0 {
		if rs.Skipped > 0 {
			errs = append(errs, fmt.Errorf("campaign: %d job(s) skipped after cancellation", rs.Skipped))
		}
		return rs, errors.Join(errs...)
	}
	if err := ctx.Err(); err != nil {
		return rs, err
	}
	return rs, nil
}
