package campaign

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
)

// legacyJobKey reproduces the pre-sampling hash layout (no Sampling
// field) byte for byte.
func legacyJobKey(job *Job, params power.Params) (string, error) {
	cfg := job.Config
	cfg.Probe = nil
	blob, err := json.Marshal(struct {
		Schema int
		Bench  string
		Tech   Technique
		Config any
		Budget int64
		Seed   int64
		Params power.Params
	}{cacheSchema, job.Bench, job.Tech, cfg, job.Budget, job.Seed, params})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

func sampledSpec(budget int64) Spec {
	s := DefaultSpec(budget)
	s.Benchmarks = []string{"gzip"}
	s.Techniques = []Technique{TechBaseline}
	d := DefaultSampling()
	s.Sampling = &d
	return s
}

func TestSamplingInJobKey(t *testing.T) {
	spec := DefaultSpec(100_000)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	exact := jobs[0]
	exactKey, err := JobKey(&exact, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	sampled := exact
	d := DefaultSampling()
	sampled.Sampling = &d
	sampledKey, err := JobKey(&sampled, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if exactKey == sampledKey {
		t.Fatal("sampled and exact jobs share a cache key")
	}
	// Different regimes hash differently.
	d2 := d
	d2.Window *= 2
	sampled2 := exact
	sampled2.Sampling = &d2
	key2, err := JobKey(&sampled2, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if key2 == sampledKey {
		t.Fatal("different sampling regimes share a cache key")
	}
	// Equal regimes behind distinct pointers hash identically.
	d3 := d
	sampled3 := exact
	sampled3.Sampling = &d3
	key3, err := JobKey(&sampled3, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if key3 != sampledKey {
		t.Fatal("equal sampling regimes hash differently")
	}
}

func TestSampledCampaignRuns(t *testing.T) {
	eng := &Engine{Workers: 2}
	rs, err := eng.Run(context.Background(), sampledSpec(200_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 1 {
		t.Fatalf("got %d results", len(rs.Results))
	}
	r := rs.Results[0]
	if r.Sampled == nil {
		t.Fatal("sampled run carries no SampledMeta")
	}
	if r.Sampled.Windows == 0 || r.Sampled.SampledInsts == 0 {
		t.Fatalf("empty sampling meta: %+v", r.Sampled)
	}
	if r.Stats.IPC() <= 0 {
		t.Fatalf("extrapolated IPC = %v", r.Stats.IPC())
	}

	// JSON round trip preserves the sampling spec and meta.
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec.Sampling == nil || *loaded.Spec.Sampling != *rs.Spec.Sampling {
		t.Fatal("sampling spec lost in JSON round trip")
	}
	lr := loaded.Results[0]
	if lr.Sampled == nil || lr.Sampled.IPC != r.Sampled.IPC {
		t.Fatal("sampling meta lost in JSON round trip")
	}

	// CSV gains the error-bar columns for sampled campaigns only.
	var csv bytes.Buffer
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"ipc_ci_half", "windows", "sampled_pct"} {
		if !strings.Contains(header, col) {
			t.Errorf("sampled CSV header missing %q: %s", col, header)
		}
	}
	exact := DefaultSpec(1000)
	exact.Benchmarks, exact.Techniques = []string{"gzip"}, []Technique{TechBaseline}
	exactRS := &ResultSet{Spec: exact}
	csv.Reset()
	if err := exactRS.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "ipc_ci_half") {
		t.Error("exact CSV header gained sampling columns")
	}
}

func TestSampledResultCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := sampledSpec(200_000)
	eng := &Engine{Workers: 1, CacheDir: dir}
	fresh, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Executed != 1 || fresh.CacheHits != 0 {
		t.Fatalf("first run: executed %d, hits %d", fresh.Executed, fresh.CacheHits)
	}
	again, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != 1 {
		t.Fatalf("second run: hits %d, want 1", again.CacheHits)
	}
	a, b := fresh.Results[0], again.Results[0]
	a.Cached, b.Cached = false, false
	if a.Stats != b.Stats || *a.Sampled != *b.Sampled {
		t.Fatal("cached sampled result differs from fresh run")
	}
}

func TestSampledSpecValidation(t *testing.T) {
	s := sampledSpec(0) // sampling needs a budget
	if _, err := s.Jobs(); err == nil {
		t.Error("zero-budget sampled spec accepted")
	}
	s = sampledSpec(1000)
	s.Sampling.Period = 10 // shorter than window+warmup
	if _, err := s.Jobs(); err == nil {
		t.Error("degenerate sampling regime accepted")
	}
}

func TestParseSampling(t *testing.T) {
	if got, err := ParseSampling(""); err != nil || got != nil {
		t.Errorf("empty: %v, %v", got, err)
	}
	if got, err := ParseSampling("off"); err != nil || got != nil {
		t.Errorf("off: %v, %v", got, err)
	}
	got, err := ParseSampling("on")
	if err != nil || got == nil || *got != DefaultSampling() {
		t.Errorf("on: %+v, %v", got, err)
	}
	got, err = ParseSampling("2000/80000/4000")
	if err != nil || got.Window != 2000 || got.Period != 80000 || got.Warmup != 4000 {
		t.Errorf("slash form: %+v, %v", got, err)
	}
	got, err = ParseSampling("window=500,period=40000,warmup=1000,detailwarmup=1500")
	if err != nil || got.Window != 500 || got.Period != 40000 || got.Warmup != 1000 || got.DetailWarmup != 1500 {
		t.Errorf("kv form: %+v, %v", got, err)
	}
	for _, bad := range []string{"nope", "10/5", "window=x", "foo=1", "1/2/3/4", "window=-5"} {
		if _, err := ParseSampling(bad); err == nil {
			t.Errorf("ParseSampling(%q) accepted", bad)
		}
	}
	// An explicit zero warmup means none, not "take the default".
	got, err = ParseSampling("window=1000,period=60000,warmup=0,detailwarmup=0")
	if err != nil || got.Warmup >= 0 || got.DetailWarmup >= 0 {
		t.Errorf("explicit zero warmup: %+v, %v", got, err)
	}
}

// TestSamplingValidateMatchesRuntime pins that Spec-level validation
// judges the same resolved regime the engine runs: partial regimes whose
// defaults overflow the period fail up front, and default-completed
// regimes pass.
func TestSamplingValidateMatchesRuntime(t *testing.T) {
	// Raw 500+3000 looks fine, but default warmups (2000+2000) overflow
	// the 3000-instruction period — must be rejected at spec time.
	bad := Sampling{Window: 500, Period: 3000}
	if err := bad.Validate(); err == nil {
		t.Error("under-period regime passed spec validation")
	}
	// Period alone: every other field takes engine defaults.
	good := Sampling{Period: 120_000}
	if err := good.Validate(); err != nil {
		t.Errorf("default-completed regime rejected: %v", err)
	}
	// Explicitly-zero warmups resolve to 0, not to the defaults.
	zero := Sampling{Window: 1000, Period: 1000, Warmup: -1, DetailWarmup: -1}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero-warmup regime rejected: %v", err)
	}
}

// TestCampaignCancelsMidJob verifies engine cancellation interrupts a
// running simulation rather than waiting for job completion — the
// executor limitation this PR removes.
func TestCampaignCancelsMidJob(t *testing.T) {
	spec := DefaultSpec(1 << 40) // a job that would run ~forever
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []Technique{TechBaseline}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		eng := &Engine{Workers: 1}
		_, err := eng.Run(ctx, spec)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled campaign returned nil error")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("campaign did not stop mid-job on cancellation")
	}
}

// TestExactKeyUnchangedBySamplingField pins that adding the Sampling
// field did not shift exact-job cache keys: the key must be stable
// against a reference computed from the pre-sampling hash layout.
func TestExactKeyUnchangedBySamplingField(t *testing.T) {
	spec := DefaultSpec(100_000)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	key, err := JobKey(&jobs[0], spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyJobKey(&jobs[0], spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if key != want {
		t.Fatalf("exact job key changed: %s != legacy %s", key, want)
	}
}
