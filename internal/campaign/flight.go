package campaign

import (
	"context"
	"errors"
	"sync"
)

// Flight deduplicates concurrent executions of identical jobs: callers
// that ask for the same key while an execution is in flight wait for it
// and share its result instead of simulating again. One Flight can be
// shared by any number of Engines (the campaign service hands every
// campaign the same group), so two clients sweeping overlapping grids
// each simulate a shared cell at most once fleet-wide. The zero value is
// ready to use.
//
// Flight covers the in-flight window only: a completed call is
// forgotten, and a later identical request relies on the engine's disk
// cache for reuse. The strict at-most-once guarantee therefore needs
// Flight and a shared CacheDir together, which is how the service runs.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when res/err are final
	res  Result
	err  error
}

// Do executes fn exactly once among all concurrent callers with the same
// key, returning fn's result to every waiter. shared reports that the
// result came from another caller's execution (a dedup hit).
//
// Cancellation is per caller: a waiter whose own ctx ends stops waiting
// with ctx's error, and if the executing caller was cancelled the
// survivors retry (one of them becoming the new executor) rather than
// inheriting a cancellation that was never theirs.
func (f *Flight) Do(ctx context.Context, key string, fn func() (Result, error)) (res Result, shared bool, err error) {
	for {
		f.mu.Lock()
		if f.calls == nil {
			f.calls = make(map[string]*flightCall)
		}
		if c, ok := f.calls[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
				if isCancellation(c.err) && ctx.Err() == nil {
					continue // the executor was cancelled, not us: retry
				}
				return c.res, true, c.err
			case <-ctx.Done():
				return Result{}, false, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{})}
		f.calls[key] = c
		f.mu.Unlock()

		c.res, c.err = fn()
		// Remove before signalling: a caller that arrives after the
		// removal starts a fresh call, and the engine's in-flight cache
		// re-check keeps that from re-simulating a finished job.
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.res, false, c.err
	}
}

// isCancellation reports whether err is (or wraps) a context ending.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Gate is a counting semaphore bounding how many jobs simulate at once
// across every Engine sharing it — the campaign service's one bounded
// executor. Cache and dedup hits bypass the gate; only real simulations
// hold a slot.
type Gate chan struct{}

// NewGate returns a gate with n slots (n <= 0 panics: a gate exists to
// bound concurrency, and a zero bound would deadlock every campaign).
func NewGate(n int) Gate {
	if n <= 0 {
		panic("campaign: NewGate needs a positive slot count")
	}
	return make(Gate, n)
}

// Acquire takes a slot, abandoning the wait when ctx ends. It is
// exported for runners outside the engine (the service dispatcher's
// local-fallback path) that must share the same simulation bound.
func (g Gate) Acquire(ctx context.Context) error {
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot.
func (g Gate) Release() { <-g }
