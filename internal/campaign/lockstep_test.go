package campaign

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/sim"
)

// lockstepSweep is an IQ sweep whose sampled cells all share one
// functional identity: with Lockstep on they form a single batch.
func lockstepSweep(values []int) Spec {
	return Spec{
		Name:       "lockstep-batching",
		Benchmarks: []string{"gzip"},
		Techniques: []Technique{TechBaseline},
		Budget:     30_000,
		Seed:       42,
		Base:       sim.DefaultConfig(),
		Params:     power.DefaultParams(),
		Axes:       []Axis{{Name: "iq.entries", Values: values}},
		Sampling:   &Sampling{Window: 500, Period: 4000, Warmup: 1000, DetailWarmup: 250},
	}
}

// TestLockstepUnits pins the unit planner: sampled jobs sharing a
// CheckpointKey form one batch in first-seen order; exact jobs (no key)
// stay solo; distinct warming identities stay apart.
func TestLockstepUnits(t *testing.T) {
	spec := lockstepSweep([]int{16, 48, 80})
	spec.Benchmarks = []string{"gzip", "mcf"} // two warming identities
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Job order is points x benchmarks: gzip sits at even indices, mcf at
	// odd; the batches collect each benchmark's cells in first-seen order.
	units := lockstepUnits(jobs)
	want := [][]int{{0, 2, 4}, {1, 3, 5}}
	if !reflect.DeepEqual(units, want) {
		t.Errorf("sampled units = %v, want %v", units, want)
	}

	spec.Sampling = nil // exact: no checkpoint identity, no batching
	jobs, err = spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	units = lockstepUnits(jobs)
	if len(units) != len(jobs) {
		t.Fatalf("exact jobs formed %d units, want %d singletons", len(units), len(jobs))
	}
	for i, u := range units {
		if len(u) != 1 || u[0] != i {
			t.Errorf("exact unit %d = %v, want [%d]", i, u, i)
		}
	}
}

// TestLockstepTenantIsolation runs the same sweep as two tenants — two
// engines with private caches and checkpoint stores, concurrently, the
// way the service isolates per-tenant state. Each tenant must execute
// the full grid itself (no cross-tenant batch or cache sharing), and a
// re-run within one tenant must serve entirely from that tenant's cache.
func TestLockstepTenantIsolation(t *testing.T) {
	spec := lockstepSweep([]int{16, 32, 48, 64})
	ctx := context.Background()

	type tenant struct {
		engine *Engine
		rs     *ResultSet
		store  *ckpt.Store
		err    error
	}
	tenants := make([]*tenant, 2)
	for i := range tenants {
		store, err := ckpt.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = &tenant{
			engine: &Engine{Workers: 2, Lockstep: true, CacheDir: t.TempDir(), Ckpt: store},
			store:  store,
		}
	}
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			tn.rs, tn.err = tn.engine.Run(ctx, spec)
		}(tn)
	}
	wg.Wait()

	jobs, _ := spec.Jobs()
	for i, tn := range tenants {
		if tn.err != nil {
			t.Fatalf("tenant %d: %v", i, tn.err)
		}
		// jobs_executed arithmetic: a tenant that shared anything with its
		// neighbour would show cache or dedup hits here.
		if tn.rs.Executed != len(jobs) || tn.rs.CacheHits != 0 || tn.rs.DedupHits != 0 {
			t.Errorf("tenant %d: executed/cached/dedup = %d/%d/%d, want %d/0/0",
				i, tn.rs.Executed, tn.rs.CacheHits, tn.rs.DedupHits, len(jobs))
		}
		// Each tenant generated its own warming artifact: the batch is
		// also proof the grid ran as ONE lockstep unit per tenant.
		if m := tn.store.Metrics(); m.Generated != 1 {
			t.Errorf("tenant %d: generated %d artifacts, want 1", i, m.Generated)
		}
	}

	// Within a tenant the cache does its job: the re-run simulates nothing.
	rerun, err := tenants[0].engine.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Executed != 0 || rerun.CacheHits != len(jobs) {
		t.Errorf("re-run executed/cached = %d/%d, want 0/%d", rerun.Executed, rerun.CacheHits, len(jobs))
	}
	for i := range rerun.Results {
		if !reflect.DeepEqual(rerun.Results[i].Stats, tenants[0].rs.Results[i].Stats) {
			t.Errorf("re-run result %d diverges from the original", i)
		}
	}
}

// TestLockstepMidBatchError: one poisoned cell (robsize=0 survives spec
// validation but the detailed core refuses it) must fail alone; its
// batchmates' results still land, and the executed/skipped arithmetic
// accounts for exactly one lost cell.
func TestLockstepMidBatchError(t *testing.T) {
	spec := lockstepSweep([]int{16, 48, 80})
	spec.Axes = []Axis{{Name: "robsize", Values: []int{128, 0, 256}}}

	var (
		mu     sync.Mutex
		failed []Job
	)
	eng := &Engine{
		Workers:  1,
		Lockstep: true,
		OnJobError: func(j Job, err error) {
			mu.Lock()
			failed = append(failed, j)
			mu.Unlock()
		},
	}
	rs, err := eng.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("poisoned cell did not surface an error")
	}
	if !strings.Contains(err.Error(), "robsize=0") {
		t.Errorf("error %q does not name the poisoned cell", err)
	}
	if rs.Executed != 2 || rs.Skipped != 1 || rs.CacheHits != 0 {
		t.Errorf("executed/skipped/cached = %d/%d/%d, want 2/1/0", rs.Executed, rs.Skipped, rs.CacheHits)
	}
	if len(rs.Results) != 2 {
		t.Fatalf("%d results delivered, want the 2 healthy cells", len(rs.Results))
	}
	for _, r := range rs.Results {
		if len(r.Point) != 1 || r.Point[0].Value == 0 {
			t.Errorf("delivered result at %s; the poisoned cell must not land", r.Point)
		}
		if r.Sampled == nil || r.Stats.CommittedReal == 0 {
			t.Errorf("healthy cell %s delivered an empty result", r.Point)
		}
	}
	if len(failed) != 1 || len(failed[0].Point) != 1 || failed[0].Point[0].Value != 0 {
		t.Errorf("OnJobError saw %v, want exactly the robsize=0 cell", failed)
	}
}
