package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON exports the campaign — spec and results — as indented JSON.
// The output is deterministic for a deterministic ResultSet, so a
// cache-served re-run exports byte-identically to the run that populated
// the cache. A written campaign reloads with ReadJSON; figures can then
// be regenerated without re-simulating.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadJSON loads a campaign previously written by WriteJSON.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	dec := json.NewDecoder(r)
	var rs ResultSet
	if err := dec.Decode(&rs); err != nil {
		return nil, fmt.Errorf("campaign: load: %w", err)
	}
	for i := range rs.Results {
		if !rs.Results[i].Tech.Valid() {
			return nil, fmt.Errorf("campaign: load: result %d has unknown technique %q",
				i, rs.Results[i].Tech)
		}
	}
	rs.reindex()
	return &rs, nil
}

// csvEscape quotes a field if it contains CSV metacharacters.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV exports one row per result with the headline quantities the
// paper's figures plot, plus the baseline-relative metrics where the
// point's baseline run is present. Sampled campaigns append error-bar
// columns (the IPC confidence half-width, window count and measured
// fraction); exact campaigns emit exactly the historical columns, so
// their exports are byte-stable across the introduction of sampling.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cols := []string{
		"bench", "tech", "point",
		"cycles", "committed", "ipc",
		"iq_occupancy", "iq_banks_on",
		"hints", "hints_applied",
		"ipc_loss_pct", "occ_reduction_pct",
		"iq_dynamic_save_pct", "iq_static_save_pct",
		"rf_dynamic_save_pct", "rf_static_save_pct",
	}
	sampled := rs.Spec.Sampling != nil
	if sampled {
		cols = append(cols, "ipc_ci_half", "windows", "sampled_pct")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range rs.Results {
		r := &rs.Results[i]
		row := []string{
			csvEscape(r.Bench),
			csvEscape(string(r.Tech)),
			csvEscape(r.Point.String()),
			fmt.Sprintf("%d", r.Stats.Cycles),
			fmt.Sprintf("%d", r.Stats.CommittedReal),
			fmt.Sprintf("%.4f", r.Stats.IPC()),
			fmt.Sprintf("%.2f", r.Stats.AvgIQOccupancy()),
			fmt.Sprintf("%.2f", r.Stats.AvgIQBanksOn()),
			fmt.Sprintf("%d", r.Hints),
			fmt.Sprintf("%d", r.Stats.HintsApplied),
		}
		if _, ok := rs.Get(r.Bench, TechBaseline, r.Point); ok {
			sv, err := rs.Savings(r.Bench, r.Tech, r.Point)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.3f", rs.IPCLossPct(r.Bench, r.Tech, r.Point)),
				fmt.Sprintf("%.3f", rs.OccupancyReductionPct(r.Bench, r.Tech, r.Point)),
				fmt.Sprintf("%.3f", sv.IQDynamicPct),
				fmt.Sprintf("%.3f", sv.IQStaticPct),
				fmt.Sprintf("%.3f", sv.RFDynamicPct),
				fmt.Sprintf("%.3f", sv.RFStaticPct),
			)
		} else {
			row = append(row, "", "", "", "", "", "")
		}
		if sampled {
			if r.Sampled != nil {
				frac := 0.0
				if r.Sampled.TotalInsts > 0 {
					frac = 100 * float64(r.Sampled.SampledInsts) / float64(r.Sampled.TotalInsts)
				}
				row = append(row,
					fmt.Sprintf("%.4f", r.Sampled.IPC.Half),
					fmt.Sprintf("%d", r.Sampled.Windows),
					fmt.Sprintf("%.2f", frac),
				)
			} else {
				row = append(row, "", "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
