package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
	"time"
)

// gcKey mints a distinct well-formed cache key per index.
func gcKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("gc-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestCacheGCEvictsOldestFirst: entries are evicted in mtime order
// until the directory fits the bound, and survivors stay readable.
func TestCacheGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	var size int64
	for i := 0; i < n; i++ {
		if err := c.Put(gcKey(i), Result{Bench: fmt.Sprintf("b%d", i), Hints: i}); err != nil {
			t.Fatal(err)
		}
		// Stagger mtimes explicitly: filesystem timestamp granularity is
		// far coarser than this loop.
		mt := time.Now().Add(time.Duration(i-n) * time.Minute)
		if err := os.Chtimes(c.dc.path(gcKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
		if fi, err := os.Stat(c.dc.path(gcKey(i))); err == nil && i == 0 {
			size = fi.Size()
		}
	}

	// Bound to roughly half: the oldest entries must go, newest stay.
	evicted, reclaimed, err := c.GC(size*3 + size/2)
	if err != nil {
		t.Fatal(err)
	}
	if evicted < 2 || evicted >= n {
		t.Fatalf("evicted %d of %d entries (reclaimed %d bytes), want a strict subset >= 2", evicted, n, reclaimed)
	}
	for i := 0; i < evicted; i++ {
		if _, ok := c.Get(gcKey(i)); ok {
			t.Errorf("entry %d (oldest) survived GC that evicted %d", i, evicted)
		}
	}
	for i := evicted; i < n; i++ {
		if _, ok := c.Get(gcKey(i)); !ok {
			t.Errorf("entry %d (newer) evicted out of order", i)
		}
	}
}

// TestCacheGCTouchOnGet: a hit refreshes recency, so the LRU order
// follows use, not write order.
func TestCacheGCTouchOnGet(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(gcKey(i), Result{Bench: fmt.Sprintf("b%d", i)}); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(c.dc.path(gcKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Use the oldest entry: it must now outrank the middle one.
	if _, ok := c.Get(gcKey(0)); !ok {
		t.Fatal("priming get missed")
	}
	var size int64
	if fi, err := os.Stat(c.dc.path(gcKey(0))); err == nil {
		size = fi.Size()
	}
	if _, _, err := c.GC(size * 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(gcKey(0)); !ok {
		t.Error("recently used entry evicted despite oldest write time")
	}
	if _, ok := c.Get(gcKey(1)); ok {
		t.Error("least recently used entry survived")
	}
}

// TestCacheGCNilAndUnbounded: the nil cache and a zero bound are
// no-ops, like every other cache operation.
func TestCacheGCNilAndUnbounded(t *testing.T) {
	var nilCache *Cache
	if n, _, err := nilCache.GC(1); n != 0 || err != nil {
		t.Fatalf("nil cache GC = (%d, %v)", n, err)
	}
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(gcKey(0), Result{Bench: "b"}); err != nil {
		t.Fatal(err)
	}
	if n, _, err := c.GC(0); n != 0 || err != nil {
		t.Fatalf("unbounded GC = (%d, %v), want no-op", n, err)
	}
	if _, ok := c.Get(gcKey(0)); !ok {
		t.Error("unbounded GC evicted an entry")
	}
}
