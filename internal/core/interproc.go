package core

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// procSummary captures what a callee does to shared machine resources —
// the information the paper's hand-applied "Improved" analysis used for
// inter-procedural functional-unit contention (section 5.3). fuPressure
// estimates how many units of each class the callee keeps busy in steady
// state, computed from its instruction mix and an issue-width-bound
// schedule estimate.
type procSummary struct {
	fuPressure fuCounts
	insts      int
}

// minus returns unit availability reduced by a callee's steady pressure,
// floored at one unit per class so the analysis always terminates.
func (f fuCounts) minus(p fuCounts) fuCounts {
	return fuCounts{
		intALU:   f.intALU - p.intALU,
		intMul:   f.intMul - p.intMul,
		fpALU:    f.fpALU - p.fpALU,
		fpMulDiv: f.fpMulDiv - p.fpMulDiv,
		memPorts: f.memPorts - p.memPorts,
	}.clampMin1()
}

// inlineBody returns up to max of a procedure's computational
// instructions in layout order (control transfers and NOOPs dropped) for
// depth-1 inlining into a caller's loop-body analysis.
func inlineBody(pr *prog.Proc, max int) []prog.Inst {
	var out []prog.Inst
	for _, blk := range pr.Blocks {
		for _, in := range blk.Insts {
			cl := in.Op.Class()
			if cl == isa.ClassNop || cl == isa.ClassCtrl || cl == isa.ClassBranch || cl == isa.ClassHalt {
				continue
			}
			out = append(out, in)
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}

// summarizeProcs computes per-procedure resource summaries. Recursion and
// call order do not matter because the summary is purely local (callee
// bodies only); the paper's manual analysis likewise considered "the most
// heavily used procedures" in isolation.
func summarizeProcs(p *prog.Program, opt Options) map[int]procSummary {
	out := make(map[int]procSummary, len(p.Procs))
	for _, pr := range p.Procs {
		if pr.IsLib {
			continue
		}
		var perClass [isa.NumClasses]int
		total := 0
		for _, blk := range pr.Blocks {
			for i := range blk.Insts {
				cl := blk.Insts[i].Op.Class()
				if cl == isa.ClassNop {
					continue
				}
				perClass[cl]++
				total++
			}
		}
		if total == 0 {
			continue
		}
		// Steady-state cycles ≈ insts / issue width (optimistic: real
		// schedules are longer, making this an upper bound on pressure,
		// which is the conservative direction for entry sizing).
		cycles := ceilDiv(total, opt.IssueWidth)
		press := func(c isa.Class) int {
			return ceilDiv(perClass[c], cycles)
		}
		out[pr.ID] = procSummary{
			insts: total,
			fuPressure: fuCounts{
				intALU:   press(isa.ClassIntALU) + press(isa.ClassBranch) + press(isa.ClassCtrl),
				intMul:   press(isa.ClassIntMul),
				fpALU:    press(isa.ClassFPALU),
				fpMulDiv: press(isa.ClassFPMulDiv),
				memPorts: press(isa.ClassLoad) + press(isa.ClassStore),
			},
		}
	}
	return out
}
