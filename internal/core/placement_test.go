package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// hintsIn returns the number of HintNops in a block.
func hintsIn(blk *prog.Block) int {
	n := 0
	for i := range blk.Insts {
		if blk.Insts[i].Op == isa.HintNop {
			n++
		}
	}
	return n
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}
	o.fill()
	if o.IssueWidth != 8 || o.IQCapacity != 80 || o.IntALU != 6 {
		t.Errorf("defaults not filled: %+v", o)
	}
	if o.DispatchSlack != 4 {
		t.Errorf("default slack = %d, want DispatchWidth/2 = 4", o.DispatchSlack)
	}
	neg := Options{DispatchSlack: -1}
	neg.fill()
	if neg.DispatchSlack != 0 {
		t.Errorf("negative slack = %d, want 0 (disabled)", neg.DispatchSlack)
	}
	custom := Options{DispatchSlack: 2}
	custom.fill()
	if custom.DispatchSlack != 2 {
		t.Errorf("explicit slack overridden: %d", custom.DispatchSlack)
	}
}

func TestSlackAppliedToHintValues(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("slacky")
		pb := b.Proc("main").Entry()
		for i := 0; i < 6; i++ {
			pb.Addi(isa.R(2), isa.R(2), 1) // serial: tiny analytic need
		}
		pb.Halt()
		return pb.MustBuild()
	}
	noSlack := build()
	if _, err := Instrument(noSlack, Options{Mode: ModeNOOP, DispatchSlack: -1}); err != nil {
		t.Fatal(err)
	}
	withSlack := build()
	if _, err := Instrument(withSlack, Options{Mode: ModeNOOP, DispatchSlack: 8}); err != nil {
		t.Fatal(err)
	}
	hv := func(p *prog.Program) int64 {
		for _, blk := range p.Procs[0].Blocks {
			for i := range blk.Insts {
				if blk.Insts[i].Op == isa.HintNop {
					return blk.Insts[i].Imm
				}
			}
		}
		return -1
	}
	a, b := hv(noSlack), hv(withSlack)
	if b != a+8 {
		t.Errorf("slack 8 hint %d, want %d+8", b, a)
	}
}

// TestLoopEntryEdgeHintPlacement: a loop's hint must sit at the end of
// the entering block, not inside the loop.
func TestLoopEntryEdgeHintPlacement(t *testing.T) {
	b := prog.NewBuilder("edges")
	b.Proc("main").Entry().
		Li(isa.R(1), 100).
		Li(isa.R(9), 5).
		Label("hdr").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "hdr").
		Halt()
	p := b.MustBuild()
	if _, err := Instrument(p, Options{Mode: ModeNOOP}); err != nil {
		t.Fatal(err)
	}
	main := p.Procs[0]
	var hdr, entry *prog.Block
	for _, blk := range main.Blocks {
		if blk.Label == "hdr" {
			hdr = blk
		}
	}
	entry = main.Blocks[0]
	if hintsIn(hdr) != 0 {
		t.Error("loop header carries a hint (would re-open the region every iteration)")
	}
	// The entry block carries its own top hint plus the loop hint at its
	// end (it is the loop's entering block).
	if hintsIn(entry) < 2 {
		t.Errorf("entering block has %d hints, want its own + the loop's", hintsIn(entry))
	}
	if entry.Insts[len(entry.Insts)-1].Op != isa.HintNop {
		t.Error("loop hint must be the last instruction of the entering block")
	}
}

// TestPostCallRestartInsideLoop: after a call inside a loop the region
// must restart (the callee installed its own hints).
func TestPostCallRestartInsideLoop(t *testing.T) {
	b := prog.NewBuilder("postcall")
	b.Proc("main").Entry().
		Li(isa.R(1), 100).
		Label("loop").
		Addi(isa.R(2), isa.R(2), 1).
		Call("leaf").
		Addi(isa.R(3), isa.R(3), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	b.Proc("leaf").
		Muli(isa.R(4), isa.R(4), 3).
		Ret()
	p := b.MustBuild()
	if _, err := Instrument(p, Options{Mode: ModeNOOP}); err != nil {
		t.Fatal(err)
	}
	main := p.Procs[0]
	// Find the block after the call block.
	restartHinted := false
	for bi, blk := range main.Blocks {
		if last := blk.Last(); last != nil && last.Op == isa.Call {
			next := main.Blocks[bi+1]
			if next.Insts[0].Op == isa.HintNop {
				restartHinted = true
			}
		}
	}
	if !restartHinted {
		t.Error("post-call block inside loop must restart the region with a hint")
	}
	// The callee's entry must carry its own hint.
	leaf := p.ProcByName("leaf")
	if leaf.Blocks[0].Insts[0].Op != isa.HintNop {
		t.Error("callee entry must carry its own hint (section 4.4)")
	}
}

// TestLibProcsNotInstrumented: library procedures are opaque; no hints
// inside them.
func TestLibProcsNotInstrumented(t *testing.T) {
	b := prog.NewBuilder("libby")
	b.Proc("main").Entry().
		CallLib("ext").
		Halt()
	b.LibProc("ext").
		Addi(isa.R(2), isa.R(2), 1).
		Ret()
	p := b.MustBuild()
	if _, err := Instrument(p, Options{Mode: ModeNOOP}); err != nil {
		t.Fatal(err)
	}
	ext := p.ProcByName("ext")
	for _, blk := range ext.Blocks {
		if hintsIn(blk) != 0 {
			t.Error("library procedure was instrumented")
		}
	}
	// The calllib block's hint must allow the maximum queue size.
	main := p.Procs[0]
	maxSeen := 0
	for _, blk := range main.Blocks {
		for i := range blk.Insts {
			if blk.Insts[i].Op == isa.HintNop && int(blk.Insts[i].Imm) > maxSeen {
				maxSeen = int(blk.Insts[i].Imm)
			}
		}
	}
	if maxSeen != 80 {
		t.Errorf("library call hint = %d, want the full 80", maxSeen)
	}
}

// TestInstrumentIdempotentStructure: instrumenting an already
// instrumented program must not error and must keep it runnable (hints
// are replaced or duplicated, never corrupting control flow).
func TestInstrumentTwiceStillLinks(t *testing.T) {
	b := prog.NewBuilder("twice")
	b.Proc("main").Entry().
		Li(isa.R(1), 3).
		Label("l").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "l").
		Halt()
	p := b.MustBuild()
	if _, err := Instrument(p, Options{Mode: ModeNOOP}); err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(p, Options{Mode: ModeNOOP}); err != nil {
		t.Fatalf("second instrumentation: %v", err)
	}
	if !p.Linked() {
		t.Error("program not linked after double instrumentation")
	}
}

// TestCallSegmentWrapsBackEdge: the segment for a post-call restart must
// include blocks from the next iteration up to the next call.
func TestCallSegmentWrapsBackEdge(t *testing.T) {
	b := prog.NewBuilder("seg")
	b.Proc("main").Entry().
		Li(isa.R(1), 10).
		Label("loop").
		Addi(isa.R(2), isa.R(2), 1). // pre-call: 1 inst + call
		Call("f").
		Addi(isa.R(3), isa.R(3), 1). // post-call: 3 insts + branch
		Addi(isa.R(4), isa.R(4), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	b.Proc("f").Ret()
	p := b.MustBuild()
	rep, err := AnalyzeOnly(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := rep.Procs[0]
	if len(main.PostCallNeeds) != 1 {
		t.Fatalf("post-call needs = %v, want one entry", main.PostCallNeeds)
	}
	for _, v := range main.PostCallNeeds {
		// The wrap-around segment is 4 post-call + 2 pre-call+call insts:
		// its need must be at least the post-call block alone (3 adds + 1
		// branch dispatchable at once) and at most the capacity.
		if v < 2 || v > 80 {
			t.Errorf("segment need %d out of plausible range", v)
		}
	}
}
