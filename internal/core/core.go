// Package core implements the paper's primary contribution: the compiler
// analysis that determines, per program region, the maximum number of
// issue-queue entries needed to execute without delaying the critical
// path, and the instrumentation pass that communicates those numbers to
// the processor — either as special hint NOOPs inserted into the code
// (the base technique) or as tags in redundant instruction bits (the
// "Extension" of section 5.3). The "Improved" variant adds automated
// inter-procedural functional-unit contention analysis, which the paper
// applied by hand to its worst benchmarks.
//
// The pass follows the paper's figure 5: find natural loops; form DAGs
// from the remaining blocks, starting at the procedure entry or after a
// call; build dependence graphs; run the pseudo-issue-queue analysis on
// each DAG block (figure 3) and the cyclic-dependence-set equations on
// each loop (figure 4); and encode each region's requirement in a hint.
package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Mode selects how hints reach the hardware.
type Mode int

// Instrumentation modes.
const (
	// ModeNOOP inserts special hint NOOPs (stripped at decode; costs a
	// dispatch slot — the paper's base technique).
	ModeNOOP Mode = iota
	// ModeTag encodes hints in redundant bits of existing instructions
	// (the paper's Extension; no dispatch-slot cost).
	ModeTag
)

// Options configures the analysis; zero values take the paper's machine.
type Options struct {
	Mode     Mode
	Improved bool // inter-procedural FU contention (section 5.3)

	IssueWidth    int // 8
	DispatchWidth int // 8
	IQCapacity    int // 80

	// DispatchSlack is added to every materialised hint: dispatch is
	// bundled (up to DispatchWidth per cycle), so a region sized exactly
	// to the analytic requirement bounces dispatch at region boundaries.
	// 0 selects the default (DispatchWidth/2); negative means no slack
	// (used by the ablation benchmarks).
	DispatchSlack int

	IntALU   int // 6
	IntMul   int // 3
	FPALU    int // 4
	FPMulDiv int // 2
	MemPorts int // 2
}

// DefaultOptions matches the paper's table 1 processor.
func DefaultOptions() Options {
	return Options{
		IssueWidth:    8,
		DispatchWidth: 8,
		IQCapacity:    80,
		IntALU:        6,
		IntMul:        3,
		FPALU:         4,
		FPMulDiv:      2,
		MemPorts:      2,
	}
}

func (o *Options) fill() {
	d := DefaultOptions()
	if o.IssueWidth == 0 {
		o.IssueWidth = d.IssueWidth
	}
	if o.DispatchWidth == 0 {
		o.DispatchWidth = d.DispatchWidth
	}
	if o.IQCapacity == 0 {
		o.IQCapacity = d.IQCapacity
	}
	if o.IntALU == 0 {
		o.IntALU = d.IntALU
	}
	if o.IntMul == 0 {
		o.IntMul = d.IntMul
	}
	if o.FPALU == 0 {
		o.FPALU = d.FPALU
	}
	if o.FPMulDiv == 0 {
		o.FPMulDiv = d.FPMulDiv
	}
	if o.MemPorts == 0 {
		o.MemPorts = d.MemPorts
	}
	if o.DispatchSlack == 0 {
		o.DispatchSlack = o.DispatchWidth / 2
	} else if o.DispatchSlack < 0 {
		o.DispatchSlack = 0
	}
}

func (o Options) fuCounts() fuCounts {
	return fuCounts{o.IntALU, o.IntMul, o.FPALU, o.FPMulDiv, o.MemPorts}
}

// ProcReport records the analysis outcome for one procedure.
type ProcReport struct {
	Proc       string
	BlockNeeds []int // per block: effective entries needed
	LoopNeeds  []LoopNeed
	Hints      int // hints materialised in this procedure
	// PostCallNeeds holds the region-restart value for in-loop blocks
	// that follow a call (section 4.4: analysis restarts on return). The
	// base technique sizes the restart from the remainder block alone —
	// losing the loop's cross-iteration window, the deficiency the paper
	// saw on call-dense benchmarks; Improved restores the full window
	// computed with the callee inlined.
	PostCallNeeds map[int]int
}

// LoopNeed is one loop's result.
type LoopNeed struct {
	Header  int
	Need    int
	II      int
	CDSSize int
}

// Report is the whole-program analysis outcome.
type Report struct {
	Procs         []ProcReport
	HintsInserted int
	TagsApplied   int
}

// Instrument analyses the program and installs hints in place, then
// relinks. The program must already be linked.
func Instrument(p *prog.Program, opt Options) (*Report, error) {
	opt.fill()
	if !p.Linked() {
		return nil, fmt.Errorf("core: program %q not linked", p.Name)
	}
	rep := &Report{}
	var summaries map[int]procSummary
	if opt.Improved {
		summaries = summarizeProcs(p, opt)
	}
	for _, pr := range p.Procs {
		if pr.IsLib {
			rep.Procs = append(rep.Procs, ProcReport{Proc: pr.Name})
			continue
		}
		prep := analyzeProc(p, pr, opt, summaries)
		placeHints(pr, prep, opt, rep)
		rep.Procs = append(rep.Procs, *prep)
	}
	if err := p.Link(); err != nil {
		return nil, fmt.Errorf("core: relink after instrumentation: %w", err)
	}
	return rep, nil
}

// AnalyzeOnly runs the analysis without mutating the program (used by
// tools to display requirements).
func AnalyzeOnly(p *prog.Program, opt Options) (*Report, error) {
	opt.fill()
	if !p.Linked() {
		return nil, fmt.Errorf("core: program %q not linked", p.Name)
	}
	rep := &Report{}
	var summaries map[int]procSummary
	if opt.Improved {
		summaries = summarizeProcs(p, opt)
	}
	for _, pr := range p.Procs {
		if pr.IsLib {
			rep.Procs = append(rep.Procs, ProcReport{Proc: pr.Name})
			continue
		}
		rep.Procs = append(rep.Procs, *analyzeProc(p, pr, opt, summaries))
	}
	return rep, nil
}

// analyzeProc computes each block's effective issue-queue requirement.
func analyzeProc(p *prog.Program, pr *prog.Proc, opt Options, summaries map[int]procSummary) *ProcReport {
	rep := &ProcReport{
		Proc:          pr.Name,
		BlockNeeds:    make([]int, len(pr.Blocks)),
		PostCallNeeds: map[int]int{},
	}
	a := cfg.Analyze(pr)

	// Loops first (inner loops are already first in a.Loops): every
	// block owned by a loop takes the loop's requirement.
	la := &loopAnalysis{opt: opt}
	loopNeedOf := make([]int, len(a.Loops))
	for li, l := range a.Loops {
		var body []prog.Inst
		for _, b := range l.Exclusive {
			for _, in := range pr.Blocks[b].Insts {
				// Improved inter-procedural analysis: a call inside the
				// loop keeps its callee's instructions in flight every
				// iteration — inline them (depth 1) so the cyclic
				// analysis sees their queue residency and FU demand.
				// The base technique treats the call as a leaf
				// (section 4.4), which understates the requirement —
				// the deficiency the paper observed on bzip2/vortex.
				if opt.Improved && in.Op == isa.Call {
					if _, ok := summaries[in.Target]; ok {
						body = append(body, inlineBody(p.Procs[in.Target], 64)...)
						continue
					}
				}
				body = append(body, in)
			}
		}
		need, ii := la.loopNeed(body)
		// A loop enclosing an inner loop must admit at least the inner
		// loop's requirement (control passes through it).
		for inner := 0; inner < li; inner++ {
			if a.Loops[inner].Parent == li && loopNeedOf[inner] > need {
				need = loopNeedOf[inner]
			}
		}
		loopNeedOf[li] = need
		rep.LoopNeeds = append(rep.LoopNeeds, LoopNeed{Header: l.Header, Need: need, II: ii})
		for _, b := range l.Exclusive {
			rep.BlockNeeds[b] = need
		}
	}

	// DAG regions: walk blocks in layout order propagating residual
	// summaries between blocks of the same region (conservative max over
	// predecessors in the region).
	for _, dag := range a.DAGs {
		inRegion := map[int]bool{}
		for _, b := range dag {
			inRegion[b] = true
		}
		residualOf := map[int]map[isa.Reg]int{}
		pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
		for _, b := range dag {
			blk := pr.Blocks[b]
			// Improved: a region that begins after a call analyses under
			// reduced unit availability, modelling overlap with the
			// callee's in-flight tail (the paper's inter-procedural
			// functional-unit contention).
			units := opt.fuCounts()
			if opt.Improved && b > 0 {
				if last := pr.Blocks[b-1].Last(); last != nil && last.Op == isa.Call {
					if s, ok := summaries[last.Target]; ok {
						units = units.minus(s.fuPressure)
					}
				}
			}
			pq.effUnits = units
			// Conservative path summary: max residual over in-region preds.
			residuals := map[isa.Reg]int{}
			for _, pred := range blk.Preds {
				if !inRegion[pred] {
					continue
				}
				for r, v := range residualOf[pred] {
					if v > residuals[r] {
						residuals[r] = v
					}
				}
			}
			res := pq.analyzeBlock(blk.Insts, residuals)
			residualOf[b] = res.residuals
			need := res.need
			if need > opt.IQCapacity {
				need = opt.IQCapacity
			}
			rep.BlockNeeds[b] = need
		}
	}

	// Region restarts after calls inside loops (section 4.4): on return
	// the analysis restarts "for the remainder" — the region reaching
	// from the post-call block around the back edge to the next call
	// site. The base technique sizes the restart from that straight-line
	// segment alone, losing the loop's cross-iteration window (the
	// deficiency the paper observed on call-dense benchmarks); Improved
	// restores the full window computed with the callee inlined.
	for _, l := range a.Loops {
		for _, bi := range l.Exclusive {
			if bi == 0 {
				continue
			}
			last := pr.Blocks[bi-1].Last()
			if last == nil || !last.Op.IsCall() {
				continue
			}
			if opt.Improved {
				rep.PostCallNeeds[bi] = rep.BlockNeeds[bi]
				continue
			}
			pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
			res := pq.analyzeBlock(callSegment(pr, l, bi), nil)
			need := res.need
			if need > opt.IQCapacity {
				need = opt.IQCapacity
			}
			if need < 1 {
				need = 1
			}
			rep.PostCallNeeds[bi] = need
		}
	}

	// Library calls: the queue goes to its maximum immediately before the
	// call (section 4.4). Improved keeps accurate values elsewhere.
	for bi, blk := range pr.Blocks {
		if last := blk.Last(); last != nil && last.Op == isa.CallLib {
			rep.BlockNeeds[bi] = opt.IQCapacity
		}
	}

	for bi := range rep.BlockNeeds {
		if rep.BlockNeeds[bi] < 1 {
			rep.BlockNeeds[bi] = 1
		}
	}
	_ = p
	return rep
}

// placeHints materialises hint NOOPs or tags so that every region sees
// the correct max_new_range, following the paper's figure 5:
//   - every DAG block gets its own hint (the paper analyses and encodes
//     each basic block individually), which also restarts the region
//     after procedure calls (section 4.4);
//   - a loop gets ONE hint, on each entry edge (at the end of every
//     non-back-edge predecessor of the header), never inside the loop —
//     a hint in the header would re-open the region every iteration and
//     defeat the cross-iteration window of figure 4;
//   - a block inside a loop still needs a hint when control re-enters it
//     from elsewhere: after a call returns (the callee placed its own
//     hints) or after an inner loop exits.
func placeHints(pr *prog.Proc, rep *ProcReport, opt Options, global *Report) {
	a := cfg.Analyze(pr)
	isHeader := map[int]bool{}
	for _, l := range a.Loops {
		isHeader[l.Header] = true
	}

	atTop := map[int]int{} // block -> hint value at top
	atEnd := map[int]int{} // block -> hint value before terminator
	need := rep.BlockNeeds

	for bi, blk := range pr.Blocks {
		inLoop := a.LoopOf[bi] != -1
		switch {
		case isHeader[bi]:
			_, outside := loopForHeader(a, bi).BackEdgePreds(pr)
			for _, p := range outside {
				atEnd[p] = need[bi]
			}
			if len(outside) == 0 || bi == 0 {
				// Entry block that is also a header: unavoidable top hint.
				atTop[bi] = need[bi]
			}
		case !inLoop:
			atTop[bi] = need[bi]
		default:
			// Inside a loop: restart the region after calls and after
			// inner-loop exits.
			if bi > 0 {
				if last := pr.Blocks[bi-1].Last(); last != nil && last.Op.IsCall() {
					if v, ok := rep.PostCallNeeds[bi]; ok {
						atTop[bi] = v
					} else {
						atTop[bi] = need[bi]
					}
					break
				}
			}
			for _, p := range blk.Preds {
				if a.LoopOf[p] != a.LoopOf[bi] && !isHeader[bi] {
					atTop[bi] = need[bi]
					break
				}
			}
		}
	}

	// Materialised hints carry dispatch slack: dispatch is bundled (up to
	// 8 per cycle), so a region sized exactly to the analytic requirement
	// would bounce dispatch at every region transition without saving
	// anything further. See Options.DispatchSlack and the ablation bench.
	slack := opt.DispatchSlack
	clamp := func(v int) int {
		v += slack
		if v > opt.IQCapacity {
			v = opt.IQCapacity
		}
		return v
	}
	for bi, blk := range pr.Blocks {
		if v, ok := atTop[bi]; ok {
			applyHint(blk, clamp(v), opt.Mode, true, global)
			rep.Hints++
		}
		if v, ok := atEnd[bi]; ok {
			applyHint(blk, clamp(v), opt.Mode, false, global)
			rep.Hints++
		}
	}
}

// callSegment linearises the loop region a post-call restart governs: the
// blocks from bi to the loop's layout end, wrapping around the back edge
// through the blocks before bi, stopping after the first call on each
// side (the next hint). A straight-line approximation of the region
// between consecutive hints.
func callSegment(pr *prog.Proc, l *cfg.Loop, bi int) []prog.Inst {
	var seg []prog.Inst
	appendRun := func(blocks []int) (hitCall bool) {
		for _, b := range blocks {
			seg = append(seg, pr.Blocks[b].Insts...)
			if last := pr.Blocks[b].Last(); last != nil && last.Op.IsCall() {
				return true
			}
		}
		return false
	}
	var after, before []int
	for _, b := range l.Exclusive {
		if b >= bi {
			after = append(after, b)
		} else {
			before = append(before, b)
		}
	}
	if !appendRun(after) {
		appendRun(before)
	}
	return seg
}

func loopForHeader(a *cfg.Analysis, header int) *cfg.Loop {
	for _, l := range a.Loops {
		if l.Header == header {
			return l
		}
	}
	return nil
}

// applyHint installs one hint in a block, at the top or just before the
// terminator.
func applyHint(blk *prog.Block, value int, mode Mode, top bool, global *Report) {
	switch mode {
	case ModeNOOP:
		h := prog.NewInst(isa.HintNop)
		h.Imm = int64(value)
		h.Hint = value
		if top {
			blk.Insts = append([]prog.Inst{h}, blk.Insts...)
		} else {
			n := len(blk.Insts)
			if n > 0 && blk.Insts[n-1].Terminates() {
				blk.Insts = append(blk.Insts[:n-1], h, blk.Insts[n-1])
			} else {
				blk.Insts = append(blk.Insts, h)
			}
		}
		global.HintsInserted++
	case ModeTag:
		tag := func(in *prog.Inst) {
			if in.Hint == 0 {
				global.TagsApplied++
			}
			in.Hint = value
		}
		if top {
			for i := range blk.Insts {
				if blk.Insts[i].Op.Class() != isa.ClassNop {
					tag(&blk.Insts[i])
					return
				}
			}
			// Block of NOOPs only: tag the first instruction regardless.
			if len(blk.Insts) > 0 {
				tag(&blk.Insts[0])
			}
		} else {
			if n := len(blk.Insts); n > 0 {
				tag(&blk.Insts[n-1])
			}
		}
	}
}
