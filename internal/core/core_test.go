package core

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

func instImm(op isa.Op, d, a int, imm int64) prog.Inst {
	in := prog.NewInst(op)
	in.Dst, in.Src1, in.Imm = isa.R(d), isa.R(a), imm
	return in
}

// TestFigure1BlockNeedsTwoEntries: the paper's figure 1 block executes
// without slowdown in 2 entries.
func TestFigure1BlockNeedsTwoEntries(t *testing.T) {
	insts := []prog.Inst{
		instImm(isa.Addi, 1, 1, 1), // a
		instImm(isa.Addi, 2, 2, 2), // b
		instImm(isa.Muli, 3, 1, 5), // c
		instImm(isa.Muli, 4, 2, 5), // d
		func() prog.Inst { // e: add r5, r3, r4
			in := prog.NewInst(isa.Add)
			in.Dst, in.Src1, in.Src2 = isa.R(5), isa.R(3), isa.R(4)
			return in
		}(),
		func() prog.Inst { // f: add r6, r2, r4
			in := prog.NewInst(isa.Add)
			in.Dst, in.Src1, in.Src2 = isa.R(6), isa.R(2), isa.R(4)
			return in
		}(),
	}
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(insts, nil)
	if res.need != 2 {
		t.Errorf("figure 1 block need = %d, want 2", res.need)
	}
}

// TestFigure3DAGAnalysis reproduces the paper's figure 3: the 6-inst DAG
// needs 4 entries.
func TestFigure3DAGAnalysis(t *testing.T) {
	// a; b<-a; c<-b; d<-a; e<-d; f<-d (all 1-cycle).
	insts := []prog.Inst{
		instImm(isa.Addi, 1, 1, 1), // a
		instImm(isa.Addi, 2, 1, 1), // b <- a
		instImm(isa.Addi, 3, 2, 1), // c <- b
		instImm(isa.Addi, 4, 1, 2), // d <- a
		instImm(isa.Addi, 5, 4, 1), // e <- d
		instImm(isa.Addi, 6, 4, 2), // f <- d
	}
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(insts, nil)
	if res.need != 4 {
		t.Errorf("figure 3 DAG need = %d, want 4", res.need)
	}
}

// TestFigure4LoopAnalysis reproduces the paper's figure 4: the
// self-recurrent 6-inst loop needs 15 entries (II = 1, max offset 3).
func TestFigure4LoopAnalysis(t *testing.T) {
	body := []prog.Inst{
		instImm(isa.Addi, 1, 1, 1), // a = a_{i-1}+1
		instImm(isa.Addi, 2, 1, 1), // b = a+1
		instImm(isa.Addi, 3, 2, 1), // c = b+1
		instImm(isa.Addi, 4, 2, 1), // d = b+1
		instImm(isa.Addi, 5, 4, 1), // e = d+1
		instImm(isa.Addi, 6, 3, 1), // f = c+1
	}
	la := &loopAnalysis{opt: DefaultOptions()}
	// The analytical equations method reproduces the paper's 15 exactly.
	eqNeed, ii := la.equationsNeed(body)
	if ii != 1 {
		t.Errorf("II = %d, want 1", ii)
	}
	if eqNeed != 15 {
		t.Errorf("figure 4 equations need = %d, want 15", eqNeed)
	}
	// The resident-population measurement (which the instrumentation
	// uses) counts filled entries with hardware dispatch timing; for this
	// body it lands near the analytical 15.
	need, _ := la.loopNeed(body)
	if need < 12 || need > 20 {
		t.Errorf("figure 4 measured need = %d, want within [12,20]", need)
	}
}

func TestLoopNeedCappedAtQueueSize(t *testing.T) {
	// A wide DOALL-style body with a trivial recurrence: requirement must
	// clamp to the 80-entry capacity.
	var body []prog.Inst
	body = append(body, instImm(isa.Addi, 1, 1, 1)) // counter recurrence
	for i := 0; i < 30; i++ {
		body = append(body, instImm(isa.Muli, 2+i%20, 1, int64(i)))
	}
	la := &loopAnalysis{opt: DefaultOptions()}
	need, _ := la.loopNeed(body)
	if need < 1 || need > 80 {
		t.Errorf("need = %d, want within [1,80]", need)
	}
}

func TestSerialChainNeedsFewEntries(t *testing.T) {
	var insts []prog.Inst
	for i := 0; i < 20; i++ {
		insts = append(insts, instImm(isa.Addi, 2, 2, 1))
	}
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(insts, nil)
	if res.need > 2 {
		t.Errorf("serial chain need = %d, want <= 2", res.need)
	}
}

func TestThroughputBoundBlockNeedsFewEntries(t *testing.T) {
	// 16 independent multiplies on 3 units: issue is unit-bound at 3 per
	// cycle, so 3 entries sustain full throughput — holding more buys
	// nothing (the essence of the paper's measure).
	var insts []prog.Inst
	for i := 0; i < 16; i++ {
		insts = append(insts, instImm(isa.Muli, 2+i%16, 1, int64(i)))
	}
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(insts, nil)
	if res.need != 3 {
		t.Errorf("mul burst need = %d, want 3 (unit throughput)", res.need)
	}
}

func TestYoungOvertakersNeedManyEntries(t *testing.T) {
	// A serial multiply chain followed by independent adds: the adds
	// issue past the stalled chain, so old and young instructions must be
	// resident together.
	var insts []prog.Inst
	insts = append(insts, instImm(isa.Muli, 2, 1, 3))
	insts = append(insts, instImm(isa.Muli, 2, 2, 3))
	insts = append(insts, instImm(isa.Muli, 2, 2, 3))
	for i := 0; i < 10; i++ {
		insts = append(insts, instImm(isa.Addi, 10+i, 9, 1))
	}
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(insts, nil)
	if res.need < 8 {
		t.Errorf("overtaking block need = %d, want >= 8", res.need)
	}
}

func TestResidualsDelayDependentBlock(t *testing.T) {
	// Block defining r2 with a long-latency op must export a residual,
	// and a consumer block given that residual must not need fewer
	// entries than with none.
	producer := []prog.Inst{instImm(isa.Muli, 2, 1, 3)} // wb at +3, end at 1
	opt := DefaultOptions()
	pq := &pseudoIQ{opt: opt, effUnits: opt.fuCounts()}
	res := pq.analyzeBlock(producer, nil)
	if res.residuals[isa.R(2)] < 1 {
		t.Errorf("mul residual = %d, want >= 1", res.residuals[isa.R(2)])
	}
	consumer := []prog.Inst{
		instImm(isa.Addi, 3, 2, 1), // waits for r2
		instImm(isa.Addi, 4, 4, 1),
		instImm(isa.Addi, 5, 5, 1),
		instImm(isa.Addi, 6, 6, 1),
	}
	with := pq.analyzeBlock(consumer, res.residuals)
	without := pq.analyzeBlock(consumer, nil)
	if with.need < without.need {
		t.Errorf("residual-aware need %d < residual-free %d", with.need, without.need)
	}
}

func buildLoopProgram() *prog.Program {
	b := prog.NewBuilder("loopy")
	b.Proc("main").Entry().
		Li(isa.R(1), 100).
		Label("loop").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(3), isa.R(2), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Call("leaf").
		Addi(isa.R(9), isa.R(9), 1).
		Halt()
	b.Proc("leaf").
		Mul(isa.R(4), isa.R(4), isa.R(4)).
		Ret()
	return b.MustBuild()
}

func TestInstrumentNOOPMode(t *testing.T) {
	p := buildLoopProgram()
	before := p.NumInsts()
	rep, err := Instrument(p, Options{Mode: ModeNOOP})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HintsInserted == 0 {
		t.Fatal("no hints inserted")
	}
	if got := p.NumInsts(); got != before+rep.HintsInserted {
		t.Errorf("inst count %d, want %d + %d hints", got, before, rep.HintsInserted)
	}
	if !p.Linked() {
		t.Fatal("program must be relinked")
	}
	// The loop header must NOT begin with a hint (it would re-execute
	// every iteration); the entering block must carry it at its end.
	main := p.Procs[p.Entry]
	var header *prog.Block
	for _, blk := range main.Blocks {
		if blk.Label == "loop" {
			header = blk
		}
	}
	if header == nil {
		t.Fatal("loop header lost")
	}
	if header.Insts[0].Op == isa.HintNop {
		t.Error("hint NOOP placed inside the loop header")
	}
	entry := main.Blocks[0]
	if entry.Insts[0].Op != isa.HintNop {
		t.Error("procedure entry must start with a hint")
	}
	foundPreheaderHint := false
	for _, in := range entry.Insts {
		if in.Op == isa.HintNop && in != entry.Insts[0] {
			foundPreheaderHint = true
		}
	}
	_ = foundPreheaderHint // placement verified structurally below
	// Emulate: hints must appear in the dynamic stream exactly once per
	// static location execution.
	tr, err := emu.Run(p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	hintCount := 0
	for _, d := range tr {
		if d.Op == isa.HintNop {
			hintCount++
			if d.Hint < 1 || d.Hint > 80 {
				t.Errorf("hint value %d out of range", d.Hint)
			}
		}
	}
	if hintCount == 0 {
		t.Error("no hints in dynamic stream")
	}
	// The loop executes 100 iterations: per-iteration hints would show
	// up as >100 dynamic hints.
	if hintCount > 50 {
		t.Errorf("dynamic hint count %d suggests per-iteration hints", hintCount)
	}
}

func TestInstrumentTagMode(t *testing.T) {
	p := buildLoopProgram()
	before := p.NumInsts()
	rep, err := Instrument(p, Options{Mode: ModeTag})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TagsApplied == 0 {
		t.Fatal("no tags applied")
	}
	if rep.HintsInserted != 0 {
		t.Errorf("NOOPs inserted in tag mode: %d", rep.HintsInserted)
	}
	if got := p.NumInsts(); got != before {
		t.Errorf("tag mode changed instruction count %d -> %d", before, got)
	}
	tagged := 0
	for _, pr := range p.Procs {
		for _, blk := range pr.Blocks {
			for i := range blk.Insts {
				if blk.Insts[i].Hint > 0 {
					tagged++
				}
			}
		}
	}
	if tagged != rep.TagsApplied {
		t.Errorf("tagged insts %d != reported %d", tagged, rep.TagsApplied)
	}
}

func TestLibraryCallForcesMaxSize(t *testing.T) {
	b := prog.NewBuilder("lib")
	b.Proc("main").Entry().
		Addi(isa.R(1), isa.R(1), 1).
		CallLib("helper").
		Addi(isa.R(2), isa.R(2), 1).
		Halt()
	b.LibProc("helper").Ret()
	p := b.MustBuild()
	rep, err := AnalyzeOnly(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	main := rep.Procs[0]
	// The block ending in calllib must need the full queue.
	callBlock := -1
	for bi, blk := range p.Procs[0].Blocks {
		if last := blk.Last(); last != nil && last.Op == isa.CallLib {
			callBlock = bi
		}
	}
	if callBlock == -1 {
		t.Fatal("calllib block not found")
	}
	if main.BlockNeeds[callBlock] != 80 {
		t.Errorf("calllib block need = %d, want 80", main.BlockNeeds[callBlock])
	}
}

func TestImprovedIncreasesPostCallNeeds(t *testing.T) {
	// Caller resumes with a mul burst right after calling a mul-heavy
	// leaf: Improved must size the post-call region at least as large.
	b := prog.NewBuilder("improved")
	pb := b.Proc("main").Entry().
		Call("mulleaf")
	for i := 0; i < 8; i++ {
		pb.Muli(isa.R(2+i), isa.R(1), int64(i))
	}
	pb.Halt()
	lb := b.Proc("mulleaf")
	for i := 0; i < 12; i++ {
		lb.Muli(isa.R(10+i%6), isa.R(10+i%6), 3)
	}
	lb.Ret()
	p := b.MustBuild()

	base, err := AnalyzeOnly(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := AnalyzeOnly(p, Options{Improved: true})
	if err != nil {
		t.Fatal(err)
	}
	// Post-call block is block 1 of main (call terminates block 0).
	if imp.Procs[0].BlockNeeds[1] < base.Procs[0].BlockNeeds[1] {
		t.Errorf("Improved post-call need %d < base %d",
			imp.Procs[0].BlockNeeds[1], base.Procs[0].BlockNeeds[1])
	}
}

func TestNeedsAlwaysInRange(t *testing.T) {
	p := buildLoopProgram()
	rep, err := AnalyzeOnly(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Procs {
		for bi, n := range pr.BlockNeeds {
			if n < 1 || n > 80 {
				t.Errorf("proc %s block %d need %d out of [1,80]", pr.Proc, bi, n)
			}
		}
	}
}

func TestInstrumentedProgramStillExecutesCorrectly(t *testing.T) {
	// Instrumentation must not change program semantics: compare final
	// architectural state against the uninstrumented run.
	mk := func() *prog.Program {
		b := prog.NewBuilder("sem")
		b.Proc("main").Entry().
			Li(isa.R(1), 20).
			Li(isa.R(2), 0).
			Label("loop").
			Add(isa.R(2), isa.R(2), isa.R(1)).
			Addi(isa.R(1), isa.R(1), -1).
			Bne(isa.R(1), isa.RZero, "loop").
			St(isa.R(2), isa.RZero, 64).
			Halt()
		return b.MustBuild()
	}
	ref := mk()
	e1 := emu.MustNew(ref)
	for {
		if _, ok := e1.Next(); !ok {
			break
		}
	}
	ins := mk()
	if _, err := Instrument(ins, Options{Mode: ModeNOOP}); err != nil {
		t.Fatal(err)
	}
	e2 := emu.MustNew(ins)
	for {
		if _, ok := e2.Next(); !ok {
			break
		}
	}
	if e1.Mem().Load(64) != e2.Mem().Load(64) {
		t.Errorf("instrumentation changed semantics: %d vs %d",
			e1.Mem().Load(64), e2.Mem().Load(64))
	}
	if e1.Mem().Load(64) != 210 {
		t.Errorf("sum = %d, want 210", e1.Mem().Load(64))
	}
}
