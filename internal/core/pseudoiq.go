package core

import (
	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/prog"
)

// pseudoIQ performs the paper's DAG analysis (section 4.2, figure 3): it
// simulates the scheduler's behaviour on one basic block with a pseudo
// issue queue. Instructions are dispatched up to dispatchWidth per
// iteration, issue when their DDG parents have written back (operation
// latencies; cache hits assumed) subject to the issue width and
// functional-unit counts, and the block's issue-queue requirement is the
// maximum, over iterations, of the distance between the oldest unissued
// instruction and the youngest instruction issuing that iteration.
type pseudoIQ struct {
	opt Options
	// effUnits allows the Improved analysis to model inter-procedural
	// functional-unit contention by reducing availability.
	effUnits fuCounts
}

type fuCounts struct {
	intALU, intMul, fpALU, fpMulDiv, memPorts int
}

func (f fuCounts) unitsFor(c isa.Class) int {
	switch c {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassCtrl:
		return f.intALU
	case isa.ClassIntMul:
		return f.intMul
	case isa.ClassFPALU:
		return f.fpALU
	case isa.ClassFPMulDiv:
		return f.fpMulDiv
	case isa.ClassLoad, isa.ClassStore:
		return f.memPorts
	default:
		return 1 << 30
	}
}

func (f fuCounts) clampMin1() fuCounts {
	m := func(x int) int {
		if x < 1 {
			return 1
		}
		return x
	}
	return fuCounts{m(f.intALU), m(f.intMul), m(f.fpALU), m(f.fpMulDiv), m(f.memPorts)}
}

// blockResult is the outcome of analysing one block.
type blockResult struct {
	// need is the number of issue-queue entries the block requires.
	need int
	// residuals gives, for each register defined in the block, how many
	// cycles after the block's last issue its value becomes available —
	// the conservative summary passed to successor blocks.
	residuals map[isa.Reg]int
	// cycles is the block's schedule length (for interprocedural
	// summaries).
	cycles int
}

// analyzeBlock runs the pseudo issue queue over insts. residuals carries
// the ready-time summary of values produced by predecessor blocks
// (cycles after block entry at which each live-in register arrives).
func (pq *pseudoIQ) analyzeBlock(insts []prog.Inst, residuals map[isa.Reg]int) blockResult {
	g := ddg.BuildBlock(insts)
	n := g.N()
	if n == 0 {
		return blockResult{need: 1, residuals: map[isa.Reg]int{}}
	}
	units := pq.effUnits.clampMin1()

	const unscheduled = -1
	issueTime := make([]int, n)
	writeback := make([]int, n)
	// externalReady is the cycle each instruction's external (live-in)
	// operands arrive.
	externalReady := make([]int, n)
	for i := 0; i < n; i++ {
		issueTime[i] = unscheduled
		in := &g.Insts[i]
		// Sources with no in-block producer take the predecessor residual.
		hasProducer := map[isa.Reg]bool{}
		for _, e := range g.In[i] {
			src := g.Insts[e.From].Dst
			hasProducer[src] = true
		}
		for _, s := range in.Sources() {
			if hasProducer[s] {
				continue
			}
			if r, ok := residuals[s]; ok && r > externalReady[i] {
				externalReady[i] = r
			}
		}
	}

	need := 1
	dispatched := 0
	issued := 0
	oldestUnissued := 0
	lastIssueCycle := 0
	for t := 0; issued < n; t++ {
		if t > 12*n+300 {
			// Defensive: 12 is the longest operation latency, so even a
			// fully serial block schedules within this bound; with
			// clamped unit counts every ready instruction issues.
			break
		}
		// Issue stage: oldest-first, bounded by issue width and units.
		// Only instructions dispatched on an earlier iteration are
		// candidates — dispatch happens at the end of the cycle, like
		// the hardware, so nothing issues the cycle it enters.
		var unitsUsed [isa.NumClasses]int
		issuedThisCycle := 0
		youngest := -1
		for i := oldestUnissued; i < dispatched; i++ {
			if issueTime[i] != unscheduled {
				continue
			}
			if issuedThisCycle >= pq.opt.IssueWidth {
				break
			}
			if externalReady[i] > t {
				continue
			}
			ready := true
			for _, e := range g.In[i] {
				if e.Distance != 0 {
					continue
				}
				if issueTime[e.From] == unscheduled || writeback[e.From] > t {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			cl := g.Insts[i].Op.Class()
			if unitsUsed[cl] >= units.unitsFor(cl) {
				continue
			}
			unitsUsed[cl]++
			issueTime[i] = t
			writeback[i] = t + g.Insts[i].Op.Latency()
			issuedThisCycle++
			issued++
			if i > youngest {
				youngest = i
			}
			lastIssueCycle = t
		}
		if issuedThisCycle > 0 {
			// oldestUnissued still holds the cycle-start value: the
			// paper's distance runs from the oldest instruction resident
			// this iteration to the youngest issuing now (figure 3).
			if span := youngest - oldestUnissued + 1; span > need {
				need = span
			}
		}
		for oldestUnissued < n && issueTime[oldestUnissued] != unscheduled {
			oldestUnissued++
		}
		// Dispatch stage: the paper places "the first few instructions"
		// and adds new ones at the tail each iteration.
		add := pq.opt.DispatchWidth
		for add > 0 && dispatched < n {
			dispatched++
			add--
		}
	}

	// Residuals for successors: cycles past the block's schedule end at
	// which each defined register becomes available.
	out := map[isa.Reg]int{}
	end := lastIssueCycle + 1
	for i := 0; i < n; i++ {
		in := &g.Insts[i]
		if !in.HasDst() || issueTime[i] == unscheduled {
			continue
		}
		r := writeback[i] - end
		if r < 0 {
			r = 0
		}
		out[in.Dst] = r // later definitions overwrite earlier ones
	}
	return blockResult{need: need, residuals: out, cycles: end}
}

// scheduleLength runs the pseudo-issue-queue schedule over a prebuilt
// dependence graph with a dispatch budget — the maximum number of
// dispatched-but-unissued instructions allowed in the queue (0 =
// unlimited) — and returns the schedule length in cycles. The budget
// models max_new_range over a single region exactly: in-order greedy
// dispatch (up to DispatchWidth per cycle, at cycle end, so nothing
// issues the cycle it enters), entries freed at issue.
func (pq *pseudoIQ) scheduleLength(g *ddg.Graph, budget int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	units := pq.effUnits.clampMin1()
	const unscheduled = -1
	issueTime := make([]int, n)
	writeback := make([]int, n)
	for i := range issueTime {
		issueTime[i] = unscheduled
	}
	dispatched := 0
	issued := 0
	oldestUnissued := 0
	last := 0
	for t := 0; issued < n; t++ {
		if t > 14*n+400 {
			break
		}
		var unitsUsed [isa.NumClasses]int
		issuedThisCycle := 0
		for i := oldestUnissued; i < dispatched; i++ {
			if issueTime[i] != unscheduled {
				continue
			}
			if issuedThisCycle >= pq.opt.IssueWidth {
				break
			}
			ready := true
			for _, e := range g.In[i] {
				if issueTime[e.From] == unscheduled || writeback[e.From] > t {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			cl := g.Insts[i].Op.Class()
			if unitsUsed[cl] >= units.unitsFor(cl) {
				continue
			}
			unitsUsed[cl]++
			issueTime[i] = t
			writeback[i] = t + g.Insts[i].Op.Latency()
			issuedThisCycle++
			issued++
			if t > last {
				last = t
			}
		}
		for oldestUnissued < n && issueTime[oldestUnissued] != unscheduled {
			oldestUnissued++
		}
		// Dispatch stage, budget-limited: resident = dispatched - issued.
		add := pq.opt.DispatchWidth
		for add > 0 && dispatched < n {
			if budget > 0 && dispatched-issued >= budget {
				break
			}
			dispatched++
			add--
		}
	}
	return last + 1
}

// minBudgetNoSlowdown finds, by binary search, the smallest dispatch
// budget whose schedule is no slower than the unconstrained one (within
// a small pipeline-fill tolerance). This is precisely the paper's
// question — "the maximum number of IQ entries needed [to] execute in
// the same number of cycles" — answered by measurement, and it is what
// the loop analysis installs as max_new_range.
func (pq *pseudoIQ) minBudgetNoSlowdown(insts []prog.Inst) int {
	g := ddg.BuildBlock(insts)
	if g.N() == 0 {
		return 1
	}
	unconstrained := pq.scheduleLength(g, 0)
	allowed := unconstrained + 1 // strict: at most pipeline-fill skew
	lo, hi := 1, pq.opt.IQCapacity
	if pq.scheduleLength(g, hi) > allowed {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if pq.scheduleLength(g, mid) <= allowed {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
