package core

import (
	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/prog"
)

// LoopEquationsNeed exposes the paper's analytical loop method (figure 4)
// for tools and examples: the issue-queue entries needed to keep the
// critical cyclic dependence set at full speed, and the initiation
// interval.
func LoopEquationsNeed(body []prog.Inst, opt Options) (need, ii int) {
	opt.fill()
	la := &loopAnalysis{opt: opt}
	return la.equationsNeed(body)
}

// CombinedLoopNeed exposes the combined loop estimate (equations capped by the
// resident-population measurement) used by the instrumentation pass.
func CombinedLoopNeed(body []prog.Inst, opt Options) int {
	opt.fill()
	la := &loopAnalysis{opt: opt}
	need, _ := la.loopNeed(body)
	return need
}

// loopAnalysis implements the paper's loop analysis (section 4.3,
// figure 4). Out-of-order execution overlaps loop iterations, so the
// issue-queue requirement must cover instructions from several iterations
// at once. The cyclic dependence sets (CDSs) of the body's dependence
// graph bound how fast iterations can start (the recurrence initiation
// interval); every instruction's issue time is then expressed as an
// equation relative to the critical CDS — an iteration offset — and the
// entry requirement follows from how many whole iterations separate an
// instruction from the CDS instance it issues with.
type loopAnalysis struct {
	opt Options
}

// loopNeed computes the issue-queue entries a loop body requires for
// unimpeded pipelined execution, plus the recurrence II (for
// diagnostics). Two estimators exist:
//
//   - equationsNeed: the paper's figure-4 CDS/equations method, which
//     assumes the recurrence II is achieved exactly and derives the
//     cross-iteration window analytically from iteration offsets;
//   - simulateNeed: a binary search for the smallest dispatch budget
//     whose pseudo-issue-queue schedule over several unrolled iterations
//     is no slower than the unconstrained one — a direct measurement of
//     the paper's definition ("the maximum number of IQ entries needed
//     [to] execute in the same number of cycles").
//
// The measurement is authoritative: it models the hardware's
// max_new_range check exactly (in-order bundled dispatch, one-cycle
// dispatch-to-issue gap, entries freed at issue) and, unlike the
// analytical method, it neither over-serves non-critical instructions
// that merely *could* issue early (e.g. loop counters racing ahead of a
// pointer chase) nor ignores residency that resource contention creates.
// The analytical method remains the paper-fidelity diagnostic.
func (la *loopAnalysis) loopNeed(body []prog.Inst) (need, ii int) {
	_, ii = la.equationsNeed(body)
	need = la.simulateNeed(body)
	if need < 1 {
		need = 1
	}
	if need > la.opt.IQCapacity {
		need = la.opt.IQCapacity
	}
	return need, ii
}

// equationsNeed is the paper's analytical loop method (figure 4).
func (la *loopAnalysis) equationsNeed(body []prog.Inst) (need, ii int) {
	g := ddg.BuildLoop(body)
	n := g.N()
	if n == 0 {
		return 1, 1
	}

	ii = la.resourceII(g)
	for _, comp := range g.CyclicSCCs() {
		if rec := g.RecurrenceII(comp); rec > ii {
			ii = rec
		}
	}

	// Steady-state issue times under initiation interval ii: relax
	// t[to] = max(t[to], t[from] + lat - ii*dist). With ii at least the
	// maximum cycle ratio there are no positive cycles, so this converges
	// within n passes.
	t := make([]int, n)
	for pass := 0; pass < n+1; pass++ {
		changed := false
		for v := 0; v < n; v++ {
			for _, e := range g.Out[v] {
				nt := t[v] + e.Latency - ii*e.Distance
				if nt > t[e.To] {
					t[e.To] = nt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Iteration offsets (the equations of figure 4(c) with the cycle
	// offsets eliminated): instruction x issues alongside the critical
	// CDS's instance from k = floor(t_x / ii) iterations in the future.
	need = 1
	for x := 0; x < n; x++ {
		k := t[x] / ii
		var entries int
		if k >= 1 {
			// x's iteration i must coexist with the anchor from
			// iteration i+k: everything from x to the end of the body
			// (n - pos), the k-1 whole iterations between, and the
			// anchor instruction itself (paper's 15-entry example).
			entries = (n - x) + (k-1)*n + 1
		} else {
			entries = 1
		}
		if entries > need {
			need = entries
		}
	}

	// An intra-iteration burst can still exceed the recurrence-derived
	// figure (e.g. wide independent bodies): take the DAG requirement of
	// one bare iteration as a floor.
	pq := &pseudoIQ{opt: la.opt, effUnits: la.opt.fuCounts()}
	if r := pq.analyzeBlock(body, nil); r.need > need {
		need = r.need
	}

	if need > la.opt.IQCapacity {
		need = la.opt.IQCapacity
	}
	return need, ii
}

// simulateNeed unrolls the body and searches for the smallest dispatch
// budget that does not slow the unrolled schedule; register definitions
// in copy i reach uses in copy i+1, so loop-carried dependences appear
// naturally.
func (la *loopAnalysis) simulateNeed(body []prog.Inst) int {
	n := len(body)
	if n == 0 {
		return 1
	}
	// Enough iterations that a window of up to twice the queue capacity
	// can form after the warm-up iteration, bounded for compile time.
	copies := (2*la.opt.IQCapacity+4*n)/n + 1
	if copies < 8 {
		copies = 8
	}
	if n*copies > 4096 {
		copies = 4096 / n
		if copies < 2 {
			copies = 2
		}
	}
	unrolled := make([]prog.Inst, 0, n*copies)
	for c := 0; c < copies; c++ {
		unrolled = append(unrolled, body...)
	}
	pq := &pseudoIQ{opt: la.opt, effUnits: la.opt.fuCounts()}
	return pq.minBudgetNoSlowdown(unrolled)
}

// resourceII is the initiation interval forced by the machine's width and
// functional-unit counts, independent of dependences.
func (la *loopAnalysis) resourceII(g *ddg.Graph) int {
	n := g.N()
	ii := ceilDiv(n, la.opt.IssueWidth)
	var perClass [isa.NumClasses]int
	for i := 0; i < n; i++ {
		perClass[g.Insts[i].Op.Class()]++
	}
	units := la.opt.fuCounts().clampMin1()
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if perClass[c] == 0 {
			continue
		}
		if r := ceilDiv(perClass[c], units.unitsFor(c)); r > ii {
			ii = r
		}
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
