// Warm-state cloning and serialization for the checkpoint store
// (internal/ckpt): a sampled run's functional warming leaves the
// hierarchy in a state that is expensive to recompute and cheap to
// snapshot. Clone serves the in-process fork-per-window engine;
// MarshalState/UnmarshalState serve the on-disk artifact. Both carry
// the complete microarchitectural state — every line's valid/tag/lru
// plus the LRU tick — so a restored hierarchy behaves bit-identically
// to the original under any subsequent access sequence.
package cache

import (
	"fmt"

	"repro/internal/binio"
)

// WithDefaults resolves zero-valued levels to table 1 (the same
// resolution NewHierarchy applies), so two configs that build identical
// hierarchies serialize identically — the property checkpoint keying
// needs.
func (cfg HierarchyConfig) WithDefaults() HierarchyConfig {
	d := DefaultHierarchyConfig()
	if cfg.IL1.SizeBytes == 0 {
		cfg.IL1 = d.IL1
	}
	if cfg.DL1.SizeBytes == 0 {
		cfg.DL1 = d.DL1
	}
	if cfg.L2.SizeBytes == 0 {
		cfg.L2 = d.L2
	}
	if cfg.MemCycles == 0 {
		cfg.MemCycles = d.MemCycles
	}
	return cfg
}

// Clone returns an independent deep copy of the cache: later accesses
// to either do not affect the other.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.lines = append([]line(nil), c.lines...)
	return &cp
}

// Clone returns an independent deep copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		IL1:       h.IL1.Clone(),
		DL1:       h.DL1.Clone(),
		L2:        h.L2.Clone(),
		MemCycles: h.MemCycles,
	}
}

// appendState writes the cache's mutable state plus a geometry
// fingerprint, so a restore into a differently-shaped cache fails
// loudly instead of silently misplacing lines.
func (c *Cache) appendState(w *binio.Writer) {
	w.U32(uint32(c.sets))
	w.U32(uint32(c.cfg.Assoc))
	w.U32(uint32(c.cfg.LineBytes))
	w.I64(c.tick)
	w.U32(uint32(len(c.lines)))
	for i := range c.lines {
		ln := &c.lines[i]
		w.Bool(ln.valid)
		w.U64(ln.tag)
		w.I64(ln.lru)
	}
}

// readState restores the cache's mutable state, validating the geometry
// fingerprint against this cache's configuration.
func (c *Cache) readState(r *binio.Reader) error {
	sets, assoc, lineBytes := int(r.U32()), int(r.U32()), int(r.U32())
	tick := r.I64()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.sets || assoc != c.cfg.Assoc || lineBytes != c.cfg.LineBytes || n != len(c.lines) {
		return fmt.Errorf("cache %s: serialized geometry %dx%d/%dB (%d lines) does not match %dx%d/%dB (%d lines)",
			c.cfg.Name, sets, assoc, lineBytes, n, c.sets, c.cfg.Assoc, c.cfg.LineBytes, len(c.lines))
	}
	for i := 0; i < n; i++ {
		c.lines[i] = line{valid: r.Bool(), tag: r.U64(), lru: r.I64()}
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.tick = tick
	return nil
}

// MarshalState serializes the hierarchy's warm state (all three levels'
// lines and LRU clocks; Stats are not state and are excluded).
func (h *Hierarchy) MarshalState() []byte {
	var w binio.Writer
	h.IL1.appendState(&w)
	h.DL1.appendState(&w)
	h.L2.appendState(&w)
	return w.Bytes()
}

// UnmarshalState restores warm state serialized by MarshalState into a
// hierarchy built from the same configuration. Stats are reset.
func (h *Hierarchy) UnmarshalState(data []byte) error {
	r := binio.NewReader(data)
	if err := h.IL1.readState(r); err != nil {
		return fmt.Errorf("cache: restore IL1: %w", err)
	}
	if err := h.DL1.readState(r); err != nil {
		return fmt.Errorf("cache: restore DL1: %w", err)
	}
	if err := h.L2.readState(r); err != nil {
		return fmt.Errorf("cache: restore L2: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("cache: %d trailing bytes after hierarchy state", r.Remaining())
	}
	h.IL1.Stats, h.DL1.Stats, h.L2.Stats = Stats{}, Stats{}, Stats{}
	return nil
}
