package cache

import (
	"math/rand"
	"testing"
)

// TestTouchMatchesAccessState drives an identical random address stream
// through two caches, one via Access and one via Touch, and requires the
// resulting contents to agree at every step — Touch is Access minus
// statistics, nothing else.
func TestTouchMatchesAccessState(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2, HitCycles: 1}
	a, b := MustNew(cfg), MustNew(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<14)) &^ 7
		ha := a.Access(addr)
		hb := b.Touch(addr)
		if ha != hb {
			t.Fatalf("step %d addr %#x: Access hit=%v Touch hit=%v", i, addr, ha, hb)
		}
	}
	if b.Stats.Accesses != 0 || b.Stats.Misses != 0 {
		t.Fatalf("Touch charged stats: %+v", b.Stats)
	}
	if a.Stats.Accesses != 20000 {
		t.Fatalf("Access stats = %+v", a.Stats)
	}
	// Final contents agree under probe.
	for i := 0; i < 1000; i++ {
		addr := uint64(rng.Intn(1<<14)) &^ 7
		if a.Contains(addr) != b.Contains(addr) {
			t.Fatalf("contents diverge at %#x", addr)
		}
	}
}

// TestHierarchyWarmPaths verifies warming fills both levels and leaves
// every Stats counter untouched, so a detailed window starting after
// warming sees hits where warming ran.
func TestHierarchyWarmPaths(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		h.WarmLoad(uint64(i * 32))
		h.WarmStore(uint64(1<<20 + i*32))
		h.WarmFetch(1<<16 + i*32)
	}
	if h.DL1.Stats.Accesses != 0 || h.IL1.Stats.Accesses != 0 || h.L2.Stats.Accesses != 0 {
		t.Fatalf("warming charged stats: dl1=%+v il1=%+v l2=%+v",
			h.DL1.Stats, h.IL1.Stats, h.L2.Stats)
	}
	// Warmed lines now hit on the detailed path.
	if got := h.LoadLatency(0); got != h.DL1.Config().HitCycles {
		t.Errorf("warmed load latency = %d, want DL1 hit %d", got, h.DL1.Config().HitCycles)
	}
	if got := h.FetchLatency(1 << 16); got != h.IL1.Config().HitCycles {
		t.Errorf("warmed fetch latency = %d, want IL1 hit %d", got, h.IL1.Config().HitCycles)
	}
}
