package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 32B lines = 256 bytes.
	return MustNew(Config{Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 2, HitCycles: 1})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x100) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x11F) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(0x120) {
		t.Fatal("next line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v, want 4 accesses 2 misses", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (set stride = 4 sets * 32B = 128B).
	a, b, d := uint64(0x000), uint64(0x080*4), uint64(0x080*8)
	// set = block % 4; choose addresses with block%4 == 0: 0, 128*4? block = addr/32.
	// block(a)=0, need block%4==0 -> addr = 0, 512, 1024.
	a, b, d = 0, 512, 1024
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Error("a (MRU) must survive")
	}
	if c.Contains(b) {
		t.Error("b (LRU) must be evicted")
	}
	if !c.Contains(d) {
		t.Error("d must be resident")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	cases := []Config{
		{Name: "x", SizeBytes: 100, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 64, LineBytes: 32, Assoc: 4}, // 2 lines, assoc 4
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted bad geometry %+v", cfg)
		}
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitCycles: 1})
	// Touch 1024 bytes twice; second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 1024; addr += 32 {
			c.Access(addr)
		}
	}
	if c.Stats.Misses != 32 {
		t.Errorf("misses = %d, want 32 (cold only)", c.Stats.Misses)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Cold: miss everywhere.
	if lat := h.LoadLatency(0x4000); lat != 2+10+50 {
		t.Errorf("cold load latency = %d, want 62", lat)
	}
	// Now L1 hit.
	if lat := h.LoadLatency(0x4000); lat != 2 {
		t.Errorf("warm load latency = %d, want 2", lat)
	}
	// Evict from a tiny custom L1 to see an L2 hit.
	h2, _ := NewHierarchy(HierarchyConfig{
		DL1: Config{Name: "dl1", SizeBytes: 64, LineBytes: 32, Assoc: 1, HitCycles: 2},
	})
	h2.LoadLatency(0x0)   // cold
	h2.LoadLatency(0x800) // maps to same L1 set (64B direct-mapped, 2 sets)
	// 0x0 and 0x800: block 0 and 64; 2 sets -> both set 0. 0x0 evicted from L1 but in L2.
	if lat := h2.LoadLatency(0x0); lat != 2+10 {
		t.Errorf("L2 hit latency = %d, want 12", lat)
	}
}

func TestFetchLatency(t *testing.T) {
	h, _ := NewHierarchy(HierarchyConfig{})
	if lat := h.FetchLatency(0x100); lat != 1+10+50 {
		t.Errorf("cold fetch = %d, want 61", lat)
	}
	if lat := h.FetchLatency(0x104); lat != 1 {
		t.Errorf("same-line fetch = %d, want 1", lat)
	}
	if !h.SameLine(0x100, 0x11C) || h.SameLine(0x100, 0x120) {
		t.Error("SameLine geometry wrong for 32B lines")
	}
}

func TestStatsPropertyAccessesGrow(t *testing.T) {
	c := small()
	f := func(addrs []uint64) bool {
		before := c.Stats.Accesses
		for _, a := range addrs {
			c.Access(a & 0xFFFF)
		}
		return c.Stats.Accesses == before+int64(len(addrs)) &&
			c.Stats.Misses <= c.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestContainsAfterAccessProperty(t *testing.T) {
	c := small()
	f := func(addr uint64) bool {
		addr &= 0xFFFFF
		c.Access(addr)
		return c.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats must have 0 miss rate")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %f", s.MissRate())
	}
}
