// Package cache implements the memory hierarchy of the paper's processor
// (table 1): a 64KB 2-way L1 instruction cache with 32-byte lines, a 64KB
// 4-way L1 data cache with 32-byte lines, and a 512KB 8-way unified L2
// with 64-byte lines. Caches are LRU and latency is returned per access so
// the out-of-order core can model variable load latency without blocking.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	HitCycles int
}

// Stats counts accesses per cache.
type Stats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid bool
	tag   uint64
	lru   int64
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	cfg   Config
	sets  int
	lines []line // sets*assoc, set-major
	tick  int64
	Stats Stats
}

// New builds a cache; the geometry must divide evenly.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry", cfg.Name)
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if linesTotal*cfg.LineBytes != cfg.SizeBytes {
		return nil, fmt.Errorf("cache %s: size %d not a multiple of line %d",
			cfg.Name, cfg.SizeBytes, cfg.LineBytes)
	}
	sets := linesTotal / cfg.Assoc
	if sets*cfg.Assoc != linesTotal || sets == 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by assoc %d",
			cfg.Name, linesTotal, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, lines: make([]line, linesTotal)}, nil
}

// MustNew is New that panics on bad geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access probes the cache for addr, filling on miss, and reports whether
// it hit. It is Touch plus statistics.
func (c *Cache) Access(addr uint64) bool {
	c.Stats.Accesses++
	hit := c.Touch(addr)
	if !hit {
		c.Stats.Misses++
	}
	return hit
}

// Touch is the functional-warming access path: it performs exactly the
// state transitions of Access — LRU promotion on hit, fill and victim
// eviction on miss — but charges nothing to Stats, so warming traffic
// between detailed sample windows keeps the cache hot without polluting
// the window's measured hit rates. It reports whether the access hit.
func (c *Cache) Touch(addr uint64) bool {
	set, tag := c.locate(addr)
	base := set * c.cfg.Assoc
	victim := base
	for i := 0; i < c.cfg.Assoc; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			c.tick++
			ln.lru = c.tick
			return true
		}
		if !ln.valid {
			victim = base + i
		} else if c.lines[victim].valid && ln.lru < c.lines[victim].lru {
			victim = base + i
		}
	}
	c.tick++
	c.lines[victim] = line{valid: true, tag: tag, lru: c.tick}
	return false
}

// Contains probes without filling or touching LRU state (for tests).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(addr)
	base := set * c.cfg.Assoc
	for i := 0; i < c.cfg.Assoc; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) locate(addr uint64) (set int, tag uint64) {
	block := addr / uint64(c.cfg.LineBytes)
	return int(block % uint64(c.sets)), block / uint64(c.sets)
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Hierarchy is the full memory system: split L1s over a unified L2 over
// flat memory. Latencies are total cycles from access start to data.
type Hierarchy struct {
	IL1, DL1, L2 *Cache
	// MemCycles is the total latency of an access that misses everywhere.
	MemCycles int
}

// HierarchyConfig parameterises NewHierarchy; zero values take table 1.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	MemCycles    int
}

// DefaultHierarchyConfig is the paper's table 1 memory system. The paper
// quotes L2 "10 cycles hit, 50 cycles miss"; we interpret latencies as
// totals: L1 hit 2 (data) / 1 (inst), L2 hit 10+L1 probe, memory 50+prior
// probes.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:       Config{Name: "il1", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitCycles: 1},
		DL1:       Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 4, HitCycles: 2},
		L2:        Config{Name: "l2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, HitCycles: 10},
		MemCycles: 50,
	}
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	cfg = cfg.WithDefaults()
	il1, err := New(cfg.IL1)
	if err != nil {
		return nil, err
	}
	dl1, err := New(cfg.DL1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{IL1: il1, DL1: dl1, L2: l2, MemCycles: cfg.MemCycles}, nil
}

// LoadLatency models a data read at addr and returns its total latency.
func (h *Hierarchy) LoadLatency(addr uint64) int {
	if h.DL1.Access(addr) {
		return h.DL1.Config().HitCycles
	}
	if h.L2.Access(addr) {
		return h.DL1.Config().HitCycles + h.L2.Config().HitCycles
	}
	return h.DL1.Config().HitCycles + h.L2.Config().HitCycles + h.MemCycles
}

// StoreAccess models a store's cache write at commit (write-allocate).
// The returned latency is informational; stores buffer and do not stall.
func (h *Hierarchy) StoreAccess(addr uint64) int {
	return h.LoadLatency(addr)
}

// WarmLoad performs a data read's state transitions (DL1, then L2 on a
// DL1 miss) without statistics or latency — the functional-warming path
// the sampled-simulation engine drives between detailed windows.
func (h *Hierarchy) WarmLoad(addr uint64) {
	if !h.DL1.Touch(addr) {
		h.L2.Touch(addr)
	}
}

// WarmStore performs a store's state transitions without statistics
// (write-allocate, like StoreAccess).
func (h *Hierarchy) WarmStore(addr uint64) {
	h.WarmLoad(addr)
}

// WarmFetch performs an instruction fetch's state transitions (IL1, then
// L2 on an IL1 miss) without statistics.
func (h *Hierarchy) WarmFetch(pc int) {
	addr := uint64(pc)
	if !h.IL1.Touch(addr) {
		h.L2.Touch(addr)
	}
}

// FetchLatency models an instruction fetch of the line containing pc.
func (h *Hierarchy) FetchLatency(pc int) int {
	addr := uint64(pc)
	if h.IL1.Access(addr) {
		return h.IL1.Config().HitCycles
	}
	if h.L2.Access(addr) {
		return h.IL1.Config().HitCycles + h.L2.Config().HitCycles
	}
	return h.IL1.Config().HitCycles + h.L2.Config().HitCycles + h.MemCycles
}

// SameLine reports whether two PCs share an I-cache line (one fetch).
func (h *Hierarchy) SameLine(pcA, pcB int) bool {
	lb := uint64(h.IL1.Config().LineBytes)
	return uint64(pcA)/lb == uint64(pcB)/lb
}
