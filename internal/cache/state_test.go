package cache

import (
	"bytes"
	"testing"
)

// warmed builds a default hierarchy and drives a deterministic mixed
// access pattern through the warm paths.
func warmed(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		h.WarmLoad(uint64(0x10_0000 + 64*i*(i%7+1)))
		h.WarmStore(uint64(0x40_0000 + 32*i))
		h.WarmFetch((i * 13) % 5000)
	}
	return h
}

func TestStateRoundTrip(t *testing.T) {
	h := warmed(t)
	data := h.MarshalState()

	fresh, err := NewHierarchy(HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.UnmarshalState(data); err != nil {
		t.Fatal(err)
	}
	// The restored state must re-serialize byte-identically — the
	// property resume bit-identity rests on.
	if !bytes.Equal(fresh.MarshalState(), data) {
		t.Fatal("restored hierarchy re-serializes differently")
	}
	// And must behave identically: the same access stream produces the
	// same hits/misses, hence the same subsequent state.
	for i := 0; i < 1000; i++ {
		addr := uint64(0x10_0000 + 64*i*3)
		if a, b := h.LoadLatency(addr), fresh.LoadLatency(addr); a != b {
			t.Fatalf("access %d: latency %d on original, %d on restored", i, a, b)
		}
	}
	if !bytes.Equal(h.MarshalState(), fresh.MarshalState()) {
		t.Fatal("original and restored diverged under identical accesses")
	}
}

func TestCloneIsolation(t *testing.T) {
	h := warmed(t)
	snap := h.MarshalState()
	c := h.Clone()
	if !bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("clone does not match original")
	}
	// Mutating the original must not leak into the clone, and vice versa.
	for i := 0; i < 2000; i++ {
		h.WarmLoad(uint64(0x90_0000 + 64*i))
	}
	if !bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("mutating the original changed the clone")
	}
	for i := 0; i < 2000; i++ {
		c.WarmFetch(9000 + i)
	}
	if bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("mutating the clone had no effect (shared storage?)")
	}
}

func TestUnmarshalStateGeometryMismatch(t *testing.T) {
	h := warmed(t)
	data := h.MarshalState()

	cfg := DefaultHierarchyConfig()
	cfg.DL1.SizeBytes *= 2
	bigger, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bigger.UnmarshalState(data); err == nil {
		t.Fatal("state restored into a differently-shaped hierarchy")
	}
}

func TestUnmarshalStateCorrupt(t *testing.T) {
	h := warmed(t)
	data := h.MarshalState()
	fresh, err := NewHierarchy(HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.UnmarshalState(data[:len(data)/2]); err == nil {
		t.Error("truncated state accepted")
	}
	if err := fresh.UnmarshalState(append(append([]byte(nil), data...), 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if err := fresh.UnmarshalState(nil); err == nil {
		t.Error("empty state accepted")
	}
}

// TestStateExcludesStats: statistics are measurements, not state — they
// must neither serialize nor survive a restore.
func TestStateExcludesStats(t *testing.T) {
	h := warmed(t)
	h.DL1.Stats = Stats{Accesses: 999, Misses: 42}
	withStats := h.MarshalState()
	h2 := warmed(t)
	if !bytes.Equal(withStats, h2.MarshalState()) {
		t.Fatal("statistics leaked into serialized warm state")
	}
	fresh, _ := NewHierarchy(HierarchyConfig{})
	if err := fresh.UnmarshalState(withStats); err != nil {
		t.Fatal(err)
	}
	if fresh.DL1.Stats.Accesses != 0 {
		t.Fatalf("restored hierarchy carries %d DL1 accesses", fresh.DL1.Stats.Accesses)
	}
}
