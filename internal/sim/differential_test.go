// Differential harness: the fast scheduler (indexed wakeup, ready-list
// select, counter/map disambiguation) must produce bit-identical Stats to
// the original scan-based reference scheduler on every control mode and
// benchmark. Any divergence — one extra wakeup, one reordered pick, one
// mis-forwarded load — shifts cycle counts or power populations and fails
// the reflect.DeepEqual.
package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// diffBudget is large enough to fill the machine, wrap every ring, and
// exercise hint regions, mispredicts and cache misses many times over.
const diffBudget = 30_000

// diffMode is one of the paper's issue-queue control configurations.
type diffMode struct {
	name        string
	instrument  bool
	instrumentO core.Options
	control     sim.ControlMode
}

func diffModes() []diffMode {
	return []diffMode{
		{name: "baseline", control: sim.ControlNone},
		{name: "noop", instrument: true, instrumentO: core.Options{Mode: core.ModeNOOP}, control: sim.ControlHints},
		{name: "tag", instrument: true, instrumentO: core.Options{Mode: core.ModeTag}, control: sim.ControlHints},
		{name: "abella", control: sim.ControlAdaptive},
	}
}

// runScheduler builds + optionally instruments the benchmark and runs it
// under the fast or reference scheduler (mirroring sim.RunProgram, which
// has no pre-Run hook).
func runScheduler(t *testing.T, bench string, m diffMode, reference bool) sim.Stats {
	t.Helper()
	b, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	p := b.Build(42)
	if m.instrument {
		if _, err := core.Instrument(p, m.instrumentO); err != nil {
			t.Fatal(err)
		}
	}
	cfg := sim.DefaultConfig()
	cfg.Control = m.control
	cfg.MaxInsts = diffBudget
	cfg.MaxCycles = diffBudget * 20
	e, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Restart = true
	c, err := sim.New(cfg, e)
	if err != nil {
		t.Fatal(err)
	}
	if reference {
		c.UseReferenceScheduler()
	}
	return c.Run()
}

// statsDiff names the fields in which two Stats differ (the test failure
// would otherwise be an unreadable struct dump).
func statsDiff(a, b sim.Stats) []string {
	var diffs []string
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i).Interface(), vb.Field(i).Interface()
		if !reflect.DeepEqual(fa, fb) {
			diffs = append(diffs, fmt.Sprintf("%s: fast=%+v ref=%+v",
				va.Type().Field(i).Name, fa, fb))
		}
	}
	return diffs
}

// TestFastSchedulerMatchesReference is the PR's acceptance gate: every
// control mode × benchmark must have bit-identical Stats — including the
// IQ wakeup/power populations and both register files' counters — under
// the fast and reference schedulers.
func TestFastSchedulerMatchesReference(t *testing.T) {
	benches := []string{"gzip", "perlbmk", "twolf"}
	for _, m := range diffModes() {
		for _, bench := range benches {
			m, bench := m, bench
			t.Run(m.name+"/"+bench, func(t *testing.T) {
				t.Parallel()
				fast := runScheduler(t, bench, m, false)
				ref := runScheduler(t, bench, m, true)
				if !reflect.DeepEqual(fast, ref) {
					for _, d := range statsDiff(fast, ref) {
						t.Errorf("stats diverge: %s", d)
					}
				}
			})
		}
	}
}

// TestFastSchedulerMatchesReferenceCollapsible covers the collapsible-
// queue ablation, whose larger ring exercises the wakeup index's ready
// bitset and slot-reuse validation across a wrapped, holey window.
func TestFastSchedulerMatchesReferenceCollapsible(t *testing.T) {
	m := diffMode{name: "baseline", control: sim.ControlNone}
	for _, bench := range []string{"gzip"} {
		run := func(reference bool) sim.Stats {
			b, _ := workload.ByName(bench)
			p := b.Build(42)
			cfg := sim.DefaultConfig()
			cfg.IQ.Collapsible = true
			cfg.Control = m.control
			cfg.MaxInsts = diffBudget
			cfg.MaxCycles = diffBudget * 20
			e, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			e.Restart = true
			c, err := sim.New(cfg, e)
			if err != nil {
				t.Fatal(err)
			}
			if reference {
				c.UseReferenceScheduler()
			}
			return c.Run()
		}
		fast, ref := run(false), run(true)
		if !reflect.DeepEqual(fast, ref) {
			for _, d := range statsDiff(fast, ref) {
				t.Errorf("%s collapsible: stats diverge: %s", bench, d)
			}
		}
	}
}
