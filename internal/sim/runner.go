package sim

import (
	"repro/internal/emu"
	"repro/internal/prog"
)

// RunProgram emulates a linked program and simulates its timing in one
// call. With budget > 0 the emulator restarts the program as needed and
// the run stops after budget committed real instructions (the paper's
// fixed-instruction-window methodology); with budget == 0 the program
// runs once to completion.
func RunProgram(cfg Config, p *prog.Program, budget int64) (Stats, error) {
	e, err := emu.New(p)
	if err != nil {
		return Stats{}, err
	}
	if budget > 0 {
		e.Restart = true
		cfg.MaxInsts = budget
		if cfg.MaxCycles == 0 {
			// Safety net: no sane run needs fewer than 0.05 IPC.
			cfg.MaxCycles = budget * 20
		}
	}
	core, err := New(cfg, e)
	if err != nil {
		return Stats{}, err
	}
	return core.Run(), nil
}
