package sim

import (
	"context"
	"math"

	"repro/internal/emu"
	"repro/internal/prog"
)

// SafetyCycles returns the default MaxCycles for a budgeted run: no sane
// run needs fewer than 0.05 IPC, so 20 cycles per instruction is a pure
// hang detector. The product saturates at MaxInt64 instead of wrapping
// negative for budgets above 2^63/20, which would otherwise disable the
// `MaxCycles > 0` check entirely.
func SafetyCycles(budget int64) int64 {
	const factor = 20
	if budget > math.MaxInt64/factor {
		return math.MaxInt64
	}
	return budget * factor
}

// RunProgram emulates a linked program and simulates its timing in one
// call. With budget > 0 the emulator restarts the program as needed and
// the run stops after budget committed real instructions (the paper's
// fixed-instruction-window methodology); with budget == 0 the program
// runs once to completion.
func RunProgram(cfg Config, p *prog.Program, budget int64) (Stats, error) {
	return RunProgramContext(context.Background(), cfg, p, budget)
}

// RunProgramContext is RunProgram with cooperative cancellation: the
// simulator polls ctx mid-run, returning the partial statistics and
// ctx's error when cancelled.
func RunProgramContext(ctx context.Context, cfg Config, p *prog.Program, budget int64) (Stats, error) {
	e, err := emu.New(p)
	if err != nil {
		return Stats{}, err
	}
	if budget > 0 {
		e.Restart = true
		cfg.MaxInsts = budget
		if cfg.MaxCycles == 0 {
			cfg.MaxCycles = SafetyCycles(budget)
		}
	}
	core, err := New(cfg, e)
	if err != nil {
		return Stats{}, err
	}
	return core.RunContext(ctx)
}
