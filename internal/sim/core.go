package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/adaptive"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/trace"
)

// fpTagBase separates the floating-point physical tag space from the
// integer one on the shared wakeup broadcast.
const fpTagBase = 1 << 12

// completionRing must exceed the longest possible operation latency.
const completionRing = 128

type uopState uint8

const (
	uopInIQ uopState = iota
	uopIssued
	uopDone
)

type uop struct {
	d        trace.DynInst
	class    isa.Class
	state    uopState
	iqPos    int64
	destPhys int // -1 = none
	prevPhys int
	destFP   bool
	srcPhys  [2]int // -1 = none
	srcFP    [2]bool

	isLoad, isStore bool
	addrResolved    bool
	blocksFetch     bool  // mispredicted control transfer: fetch waits on it
	storeIdx        int64 // virtual store-ring index (stores only)
}

type fqEntry struct {
	d           trace.DynInst
	readyCycle  int64 // decode complete
	blocksFetch bool
}

// Core is one simulated processor instance.
type Core struct {
	cfg Config

	q    *iq.Queue
	irf  *regfile.File
	frf  *regfile.File
	mem  *cache.Hierarchy
	bp   *bpred.Predictor
	ctrl *adaptive.Controller

	stream     trace.Stream
	streamDone bool

	rob      []uop
	robHead  int
	robTail  int
	robCount int

	fq      []fqEntry
	fqHead  int
	fqTail  int
	fqCount int

	complete [completionRing][]int // cycle%ring -> rob indexes

	// Stores in flight (dispatch..commit), a FIFO in program order kept in
	// a fixed ring indexed by virtual position (storeHead..storeTail), like
	// the issue queue. unresolved counts in-flight stores without a
	// resolved address; unresolvedFrom is a cursor at the oldest position
	// that may still be unresolved, advanced lazily — together they answer
	// loadMayIssue in O(1) amortised instead of a FIFO scan. lastStoreTo
	// maps an address to the youngest in-flight store writing it; each
	// store chains to the previous same-address store (prevSameAddr), so
	// forwarding walks only same-address stores, youngest first.
	stores         []storeRec
	storeHead      int64
	storeTail      int64
	unresolved     int
	unresolvedFrom int64
	lastStoreTo    map[uint64]int64
	loads          int // loads in flight for LSQ occupancy

	picks []pick // issue-cycle scratch, reused across cycles

	// segTarget stops the run at a total committed-real count (see
	// RunSegment); 0 = unset.
	segTarget int64

	// refSched selects the original scan-based scheduler (linear wakeup,
	// full-window select, FIFO-scan disambiguation) for differential
	// testing; see UseReferenceScheduler.
	refSched bool

	cycle           int64
	fetchStallUntil int64 // next cycle fetch may proceed (icache miss/bubble)
	fetchBlocked    bool  // waiting on a mispredicted control transfer
	lastFetchLine   int   // last I-cache line touched, -1 initially
	fetchLineShift  int   // log2(IL1 line bytes) when a power of two, else -1

	committedReal  int64
	committedHints int64

	st Stats
}

type storeRec struct {
	seq          int64
	addr         uint64
	resolved     bool
	prevSameAddr int64 // virtual index of the previous store to addr, -1 none
}

// pick is one selected (issue-queue position, ROB index) pair.
type pick struct {
	pos int64
	idx int
}

// storeAt returns the in-flight store at virtual index i. The ring is a
// power of two so the slot computes with a mask, not a division.
func (c *Core) storeAt(i int64) *storeRec {
	return &c.stores[int(i)&(len(c.stores)-1)]
}

// storeCount returns the number of stores in flight.
func (c *Core) storeCount() int { return int(c.storeTail - c.storeHead) }

// Stats are the run's raw event counts, consumed by the power model and
// the experiment harness.
type Stats struct {
	Cycles         int64
	CommittedReal  int64 // real instructions committed
	CommittedHints int64 // hint NOOPs consumed (dispatch slots spent)

	FetchedInsts int64
	Mispredicts  int64
	BTBBubbles   int64

	// Dispatch stall attribution (cycles in which at least one dispatch
	// slot went unused for the reason).
	StallIQFull     int64
	StallHintLimit  int64
	StallSizeLimit  int64
	StallROBFull    int64
	StallNoPhysReg  int64
	StallLSQFull    int64
	StallFetchEmpty int64

	HintsApplied int64
	Resizes      int64

	// LatencyClamped counts operations whose execution latency exceeded
	// the completion ring and was clamped to its span (see Core.issue).
	LatencyClamped int64

	IQ    iq.Stats
	IntRF regfile.Stats
	FPRF  regfile.Stats
	Bpred bpred.Stats
	IL1   cache.Stats
	DL1   cache.Stats
	L2    cache.Stats
}

// IPC returns committed real instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.CommittedReal) / float64(s.Cycles)
}

// AvgIQOccupancy returns the mean number of valid issue-queue entries.
func (s *Stats) AvgIQOccupancy() float64 {
	if s.IQ.Cycles == 0 {
		return 0
	}
	return float64(s.IQ.OccupancySum) / float64(s.IQ.Cycles)
}

// AvgIQBanksOn returns the mean number of enabled issue-queue banks.
func (s *Stats) AvgIQBanksOn() float64 {
	if s.IQ.Cycles == 0 {
		return 0
	}
	return float64(s.IQ.BanksOnSum) / float64(s.IQ.Cycles)
}

// AvgIntRFBanksOn returns the mean number of live integer regfile banks.
func (s *Stats) AvgIntRFBanksOn() float64 {
	if s.IntRF.Cycles == 0 {
		return 0
	}
	return float64(s.IntRF.BanksOnSum) / float64(s.IntRF.Cycles)
}

// AvgIntRFLive returns the mean number of live integer physical registers.
func (s *Stats) AvgIntRFLive() float64 {
	if s.IntRF.Cycles == 0 {
		return 0
	}
	return float64(s.IntRF.LiveSum) / float64(s.IntRF.Cycles)
}

// New builds a core over a dynamic instruction stream.
func New(cfg Config, stream trace.Stream) (*Core, error) {
	mem, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	return NewResumable(cfg, stream, mem, bpred.New(cfg.Bpred))
}

// NewResumable builds a core over a pre-existing memory hierarchy and
// branch predictor — the entry point of the sampled-simulation engine,
// which functionally warms both between detailed windows and hands them
// to a fresh core per window. The stream may resume mid-run: nothing in
// the core assumes sequence numbers start at 0 (store ordering and
// forwarding use only relative Seq comparisons), and the caller's
// MaxInsts counts commits within this run, not absolute positions.
func NewResumable(cfg Config, stream trace.Stream, mem *cache.Hierarchy, bp *bpred.Predictor) (*Core, error) {
	q, err := iq.New(cfg.IQ)
	if err != nil {
		return nil, err
	}
	irf, err := regfile.New(cfg.IntRF)
	if err != nil {
		return nil, err
	}
	frf, err := regfile.New(cfg.FPRF)
	if err != nil {
		return nil, err
	}
	if mem == nil || bp == nil {
		return nil, fmt.Errorf("sim: nil hierarchy or predictor")
	}
	if cfg.ROBSize <= 0 || cfg.FetchQueueSize <= 0 {
		return nil, fmt.Errorf("sim: non-positive ROB or fetch queue size")
	}
	// Ring capacity: next power of two >= LSQSize (the LSQ check in
	// dispatch bounds occupancy; extra slots are just unused storage).
	storeCap := 1
	for storeCap < cfg.LSQSize {
		storeCap <<= 1
	}
	c := &Core{
		cfg:           cfg,
		q:             q,
		irf:           irf,
		frf:           frf,
		mem:           mem,
		bp:            bp,
		stream:        stream,
		rob:           make([]uop, cfg.ROBSize),
		fq:            make([]fqEntry, cfg.FetchQueueSize),
		stores:        make([]storeRec, storeCap),
		lastStoreTo:   make(map[uint64]int64),
		picks:         make([]pick, 0, cfg.IssueWidth),
		lastFetchLine: -1,
	}
	c.fetchLineShift = -1
	if lb := mem.IL1.Config().LineBytes; lb > 0 && lb&(lb-1) == 0 {
		c.fetchLineShift = bits.TrailingZeros(uint(lb))
	}
	if cfg.Control == ControlAdaptive {
		c.ctrl = adaptive.New(cfg.Adaptive, q.Banks(), cfg.IQ.BankSize)
		q.SetSizeLimit(c.ctrl.Limit())
	}
	return c, nil
}

// UseReferenceScheduler switches this core (and its issue queue) to the
// original scan-based scheduler: CAM-style linear wakeup, full-window
// oldest-first select, and linear store-FIFO disambiguation. It exists so
// the differential tests can prove the fast paths produce bit-identical
// Stats; call it before Run.
func (c *Core) UseReferenceScheduler() {
	c.refSched = true
	c.q.SetReference(true)
}

// PresetHint seeds the issue queue's max_new_range before the run, as if
// a hint had just been dispatched. The sampled-simulation engine uses it
// to carry the last hint observed during fast-forward into a detailed
// window, which would otherwise start each window with an uncontrolled
// queue under ControlHints. It is a no-op unless hints control the queue.
func (c *Core) PresetHint(entries int) {
	if c.cfg.Control == ControlHints && entries > 0 {
		c.q.SetHint(entries)
	}
}

// robCap returns the effective ROB capacity (abella caps it at 64).
func (c *Core) robCap() int {
	if c.cfg.Control == ControlAdaptive && c.cfg.Adaptive.ROBLimit > 0 &&
		c.cfg.Adaptive.ROBLimit < c.cfg.ROBSize {
		return c.cfg.Adaptive.ROBLimit
	}
	return c.cfg.ROBSize
}

// ctxPollCycles is how often RunContext polls for cancellation. A power
// of two so the check is a mask; 4096 cycles is microseconds of wall
// time, far below human-visible cancellation latency, while keeping the
// branch essentially free in the cycle loop.
const ctxPollCycles = 4096

// Run simulates until the stream is exhausted and the pipeline drains, or
// a configured limit is reached, and returns the statistics.
func (c *Core) Run() Stats {
	st, _ := c.RunContext(context.Background())
	return st
}

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every ctxPollCycles cycles, so campaign cancellation takes effect
// mid-job instead of at job granularity. On cancellation the partial
// statistics accumulated so far are returned alongside ctx's error.
func (c *Core) RunContext(ctx context.Context) (Stats, error) {
	return c.RunSegment(ctx, 0)
}

// RunSegment runs until target total committed real instructions (0 =
// no segment limit), the configured limits, or cancellation — whichever
// comes first — and returns a snapshot of the cumulative statistics. It
// may be called repeatedly with increasing targets: the sampled
// simulation engine runs each detailed window as two segments (detailed
// pipeline warm-up, then the measured unit) and differences the
// snapshots, so the measured unit starts from a full pipeline.
func (c *Core) RunSegment(ctx context.Context, target int64) (Stats, error) {
	c.segTarget = target
	var err error
	for !c.done() {
		c.step()
		if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
			break
		}
		if c.cycle&(ctxPollCycles-1) == 0 {
			if err = ctx.Err(); err != nil {
				break
			}
		}
	}
	c.st.Cycles = c.cycle
	c.st.CommittedReal = c.committedReal
	c.st.CommittedHints = c.committedHints
	c.st.IQ = c.q.Stats
	c.st.IntRF = c.irf.Stats
	c.st.FPRF = c.frf.Stats
	c.st.Bpred = c.bp.Stats
	c.st.IL1 = c.mem.IL1.Stats
	c.st.DL1 = c.mem.DL1.Stats
	c.st.L2 = c.mem.L2.Stats
	if c.ctrl != nil {
		c.st.Resizes = c.ctrl.Resizes()
	}
	return c.st, err
}

func (c *Core) done() bool {
	if c.segTarget > 0 && c.committedReal >= c.segTarget {
		return true
	}
	if c.cfg.MaxInsts > 0 && c.committedReal >= c.cfg.MaxInsts {
		return true
	}
	return c.streamDone && c.robCount == 0 && c.fqCount == 0
}

// step advances one cycle through all pipeline stages, oldest first.
func (c *Core) step() {
	c.cycle++
	c.q.BeginCycle()
	c.commit()
	c.writeback()
	c.issue()
	c.dispatch()
	c.fetch()
	c.irf.Tick()
	c.frf.Tick()
	if c.ctrl != nil {
		limit, changed := c.ctrl.OnCycle(c.q.SizeLimitBlocked())
		if changed {
			c.q.SetSizeLimit(limit)
		}
	}
	if c.cfg.Probe != nil {
		c.cfg.Probe.Sample(c.cycle, ProbeSample{
			IQCount:     c.q.Count(),
			IQBanksOn:   c.q.BanksOn(),
			MaxNewRange: c.q.MaxNewRange(),
			IntRFLive:   c.irf.Live(),
			ROBCount:    c.robCount,
			FetchQueue:  c.fqCount,
		})
	}
}

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		u := &c.rob[c.robHead]
		if u.state != uopDone {
			return
		}
		if u.isStore {
			c.mem.StoreAccess(u.d.Addr)
			// The store at the head of the store FIFO is this one.
			s := c.storeAt(c.storeHead)
			if li, ok := c.lastStoreTo[s.addr]; ok && li == c.storeHead {
				delete(c.lastStoreTo, s.addr)
			}
			c.storeHead++
			if c.unresolvedFrom < c.storeHead {
				c.unresolvedFrom = c.storeHead
			}
		}
		if u.isLoad {
			c.loads--
		}
		if u.prevPhys >= 0 {
			c.file(u.destFP).Free(u.prevPhys)
		}
		c.committedReal++
		c.robHead++
		if c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCount--
		if c.segTarget > 0 && c.committedReal >= c.segTarget {
			return
		}
		if c.cfg.MaxInsts > 0 && c.committedReal >= c.cfg.MaxInsts {
			return
		}
	}
}

func (c *Core) file(fp bool) *regfile.File {
	if fp {
		return c.frf
	}
	return c.irf
}

func (c *Core) writeback() {
	slot := int(c.cycle % completionRing)
	for _, idx := range c.complete[slot] {
		u := &c.rob[idx]
		u.state = uopDone
		if u.destPhys >= 0 {
			f := c.file(u.destFP)
			f.MarkReady(u.destPhys)
			f.Write()
			tag := u.destPhys
			if u.destFP {
				tag += fpTagBase
			}
			c.q.Broadcast(tag)
		}
		if u.blocksFetch {
			c.fetchBlocked = false
			if c.fetchStallUntil <= c.cycle {
				c.fetchStallUntil = c.cycle + 1
			}
		}
	}
	c.complete[slot] = c.complete[slot][:0]
}

// issue selects up to IssueWidth ready instructions oldest-first, subject
// to functional-unit and memory-port limits and load/store ordering. The
// fast path walks only the issue queue's ready list; the reference path
// scans the whole window filtering on readiness. Both apply the same
// selection rules in the same order, so the picks are identical.
func (c *Core) issue() {
	var unitsUsed [isa.NumClasses]int
	memPortsUsed := 0
	issued := 0
	loadsBlocked := false
	c.picks = c.picks[:0]
	sel := func(pos int64, e *iq.Entry) bool {
		if issued >= c.cfg.IssueWidth {
			return false
		}
		idx := int(e.ID)
		u := &c.rob[idx]
		cl := u.class
		if u.isLoad || u.isStore {
			if memPortsUsed >= c.cfg.MemPorts {
				return true
			}
			if u.isLoad {
				// Selection never resolves stores (that happens in the
				// pick loop below), so once one load is blocked by an
				// older unresolved store, every younger load is too.
				if !c.refSched && loadsBlocked {
					return true
				}
				if !c.loadMayIssue(u) {
					loadsBlocked = true
					return true
				}
			}
			memPortsUsed++
		} else {
			if unitsUsed[cl] >= c.cfg.FU.unitsFor(cl) {
				return true
			}
			unitsUsed[cl]++
		}
		c.picks = append(c.picks, pick{pos, idx})
		issued++
		return true
	}
	if c.refSched {
		c.q.ForEachValid(func(pos int64, e *iq.Entry) bool {
			if !e.Ready() {
				return true
			}
			return sel(pos, e)
		})
	} else {
		c.q.ForEachReady(sel)
	}
	for _, p := range c.picks {
		u := &c.rob[p.idx]
		if c.ctrl != nil {
			young := c.q.Tail()-p.pos <= int64(c.cfg.IQ.BankSize)
			c.ctrl.OnIssue(young)
		}
		c.q.Issue(p.pos)
		for i := 0; i < 2; i++ {
			if u.srcPhys[i] >= 0 {
				c.file(u.srcFP[i]).Read()
			}
		}
		u.state = uopIssued
		lat := c.execLatency(u)
		if u.isStore {
			u.addrResolved = true
			c.resolveStore(u)
		}
		if lat > completionRing {
			// An L2-miss chain can in principle exceed the ring span; a
			// longer latency would alias an earlier slot and complete the
			// op far too early. Clamp and count instead.
			lat = completionRing
			c.st.LatencyClamped++
		}
		due := (c.cycle + int64(lat)) % completionRing
		c.complete[due] = append(c.complete[due], p.idx)
	}
}

// loadMayIssue enforces conservative memory disambiguation: every older
// in-flight store must have a resolved address; a matching one forwards.
// The fast path answers from the unresolved-store counter and cursor; the
// reference path scans the FIFO in program order.
func (c *Core) loadMayIssue(u *uop) bool {
	if c.refSched {
		for i := c.storeHead; i < c.storeTail; i++ {
			s := c.storeAt(i)
			if s.seq >= u.d.Seq {
				break
			}
			if !s.resolved {
				return false
			}
		}
		return true
	}
	if c.unresolved == 0 {
		return true
	}
	for c.unresolvedFrom < c.storeTail && c.storeAt(c.unresolvedFrom).resolved {
		c.unresolvedFrom++
	}
	if c.unresolvedFrom >= c.storeTail {
		return true
	}
	// The oldest unresolved store must be younger than the load.
	return c.storeAt(c.unresolvedFrom).seq >= u.d.Seq
}

func (c *Core) resolveStore(u *uop) {
	if c.refSched {
		for i := c.storeHead; i < c.storeTail; i++ {
			if s := c.storeAt(i); s.seq == u.d.Seq {
				s.resolved = true
				c.unresolved--
				return
			}
		}
		return
	}
	c.storeAt(u.storeIdx).resolved = true
	c.unresolved--
}

// execLatency computes the operation latency, consulting the cache model
// for loads (with store forwarding).
func (c *Core) execLatency(u *uop) int {
	if u.isLoad {
		// Forward from the youngest older store to the same word.
		if c.refSched {
			for i := c.storeTail - 1; i >= c.storeHead; i-- {
				s := c.storeAt(i)
				if s.seq < u.d.Seq && s.addr == u.d.Addr {
					return c.mem.DL1.Config().HitCycles
				}
			}
			return c.mem.LoadLatency(u.d.Addr)
		}
		// Walk the same-address chain youngest-first; in-order commit
		// guarantees that once an index drops below storeHead the rest of
		// the chain has committed too.
		if idx, ok := c.lastStoreTo[u.d.Addr]; ok {
			for idx >= c.storeHead {
				s := c.storeAt(idx)
				if s.seq < u.d.Seq {
					return c.mem.DL1.Config().HitCycles
				}
				idx = s.prevSameAddr
			}
		}
		return c.mem.LoadLatency(u.d.Addr)
	}
	return u.d.Op.Latency()
}

// dispatch moves up to DispatchWidth decoded instructions from the fetch
// queue into the ROB and issue queue, renaming their registers. Hint
// NOOPs are stripped here — consuming a dispatch slot, as the paper notes
// (section 5.2.1) — and set max_new_range.
func (c *Core) dispatch() {
	if c.fqCount == 0 {
		c.st.StallFetchEmpty++
		return
	}
	for n := 0; n < c.cfg.DispatchWidth && c.fqCount > 0; n++ {
		fe := &c.fq[c.fqHead]
		if fe.readyCycle > c.cycle {
			return
		}
		d := fe.d
		if d.Op == isa.HintNop {
			// Stripped at the final decode stage; costs this slot.
			if c.cfg.Control == ControlHints {
				c.q.SetHint(d.Hint)
				c.st.HintsApplied++
			}
			c.committedHints++
			c.popFQ()
			continue
		}
		// Extension tags apply before the carrying instruction dispatches.
		if c.cfg.Control == ControlHints && d.Hint > 0 {
			c.q.SetHint(d.Hint)
			c.st.HintsApplied++
		}
		if c.robCount >= c.robCap() {
			c.st.StallROBFull++
			return
		}
		if !c.q.CanDispatch() {
			switch {
			case c.q.HintBlocked():
				c.st.StallHintLimit++
			case c.q.SizeLimitBlocked():
				c.st.StallSizeLimit++
			default:
				c.st.StallIQFull++
			}
			return
		}
		isMem := d.Op.IsMem()
		if isMem && c.loads+c.storeCount() >= c.cfg.LSQSize {
			c.st.StallLSQFull++
			return
		}
		if !c.rename(d, fe.blocksFetch) {
			c.st.StallNoPhysReg++
			return
		}
		c.popFQ()
	}
}

// rename allocates the ROB entry, renames sources and destination, and
// places the uop in the issue queue. Returns false on physical-register
// exhaustion (nothing is consumed).
func (c *Core) rename(d trace.DynInst, blocksFetch bool) bool {
	u := uop{
		d:           d,
		class:       d.Op.Class(),
		destPhys:    -1,
		prevPhys:    -1,
		srcPhys:     [2]int{-1, -1},
		isLoad:      d.Op.IsLoad(),
		isStore:     d.Op.IsStore(),
		blocksFetch: blocksFetch,
	}
	var tags [2]int
	var waiting [2]bool
	tags[0], tags[1] = -1, -1
	srcs := [2]isa.Reg{d.Src1, d.Src2}
	for i, s := range srcs {
		if !s.Valid() || s == isa.RZero {
			continue
		}
		fp := s.IsFP()
		f := c.file(fp)
		arch := int(s)
		if fp {
			arch -= isa.IntRegs
		}
		phys := f.Rename(arch)
		u.srcPhys[i] = phys
		u.srcFP[i] = fp
		tags[i] = phys
		if fp {
			tags[i] += fpTagBase
		}
		waiting[i] = !f.IsReady(phys)
	}
	if d.Dst.Valid() && d.Dst != isa.RZero {
		fp := d.Dst.IsFP()
		f := c.file(fp)
		phys, ok := f.Allocate()
		if !ok {
			return false
		}
		arch := int(d.Dst)
		if fp {
			arch -= isa.IntRegs
		}
		u.destPhys = phys
		u.destFP = fp
		u.prevPhys = f.SetRename(arch, phys)
	}
	idx := c.robTail
	pos, ok := c.q.Dispatch(int64(idx), tags, waiting)
	if !ok {
		// Should not happen: CanDispatch was checked. Roll back rename.
		if u.destPhys >= 0 {
			f := c.file(u.destFP)
			arch := int(d.Dst)
			if u.destFP {
				arch -= isa.IntRegs
			}
			f.SetRename(arch, u.prevPhys)
			f.Free(u.destPhys)
		}
		return false
	}
	u.iqPos = pos
	u.state = uopInIQ
	c.rob[idx] = u
	c.robTail++
	if c.robTail == len(c.rob) {
		c.robTail = 0
	}
	c.robCount++
	if u.isStore {
		prev := int64(-1)
		if p, ok := c.lastStoreTo[d.Addr]; ok {
			prev = p
		}
		*c.storeAt(c.storeTail) = storeRec{seq: d.Seq, addr: d.Addr, prevSameAddr: prev}
		c.lastStoreTo[d.Addr] = c.storeTail
		c.rob[idx].storeIdx = c.storeTail
		c.storeTail++
		c.unresolved++
	}
	if u.isLoad {
		c.loads++
	}
	return true
}

func (c *Core) popFQ() {
	c.fqHead++
	if c.fqHead == len(c.fq) {
		c.fqHead = 0
	}
	c.fqCount--
}

// fetch brings up to FetchWidth instructions from the stream into the
// fetch queue, consulting the I-cache, branch predictor, BTB and RAS.
// A mispredicted control transfer blocks fetch until it executes.
func (c *Core) fetch() {
	if c.fetchBlocked || c.streamDone {
		return
	}
	if c.fetchStallUntil > c.cycle {
		return
	}
	lineBytes := c.mem.IL1.Config().LineBytes
	transfers := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqCount >= len(c.fq) {
			return
		}
		d, ok := c.stream.Next()
		if !ok {
			c.streamDone = true
			return
		}
		// I-cache: one access per line transition.
		var line int
		if c.fetchLineShift >= 0 {
			line = d.PC >> uint(c.fetchLineShift)
		} else {
			line = d.PC / lineBytes
		}
		if line != c.lastFetchLine {
			c.lastFetchLine = line
			lat := c.mem.FetchLatency(d.PC)
			if lat > c.mem.IL1.Config().HitCycles {
				// Miss: this instruction arrives when the line does.
				c.fetchStallUntil = c.cycle + int64(lat)
				c.pushFQ(d, c.fetchStallUntil)
				c.predict(d)
				return
			}
		}
		c.pushFQ(d, c.cycle)
		if redirected := c.predict(d); redirected {
			// The fetch unit follows one predicted-taken transfer per
			// cycle (a two-block fetch group); a second ends the group,
			// as do mispredict blocks and BTB bubbles.
			transfers++
			if transfers >= 2 || c.fetchBlocked || c.fetchStallUntil > c.cycle {
				return
			}
		}
	}
}

// pushFQ inserts a fetched instruction; it becomes dispatchable after the
// decode pipeline.
func (c *Core) pushFQ(d trace.DynInst, fetchCycle int64) {
	c.fq[c.fqTail] = fqEntry{d: d, readyCycle: fetchCycle + int64(c.cfg.DecodeStages)}
	c.fqTail++
	if c.fqTail == len(c.fq) {
		c.fqTail = 0
	}
	c.fqCount++
	c.st.FetchedInsts++
}

// predict runs the front-end predictors for d and returns whether fetch
// must stop this cycle (taken transfer, bubble, or mispredict block).
func (c *Core) predict(d trace.DynInst) bool {
	switch {
	case d.Op.IsBranch():
		predTaken := c.bp.PredictCond(d.PC)
		c.bp.UpdateCond(d.PC, d.Taken)
		if d.Taken {
			tgt, hit := c.bp.LookupBTB(d.PC)
			c.bp.UpdateBTB(d.PC, d.NextPC)
			if predTaken && (!hit || tgt != d.NextPC) {
				// Right direction, unknown target: one-cycle bubble.
				c.st.BTBBubbles++
				if c.fetchStallUntil <= c.cycle {
					c.fetchStallUntil = c.cycle + 1
				}
			}
		}
		if predTaken != d.Taken {
			c.blockFetchOn()
			return true
		}
		return d.Taken
	case d.Op == isa.Jmp:
		_, hit := c.bp.LookupBTB(d.PC)
		c.bp.UpdateBTB(d.PC, d.NextPC)
		if !hit {
			c.st.BTBBubbles++
			if c.fetchStallUntil <= c.cycle {
				c.fetchStallUntil = c.cycle + 1
			}
		}
		return true
	case d.Op.IsCall():
		c.bp.PushRAS(d.PC + isa.InstBytes)
		_, hit := c.bp.LookupBTB(d.PC)
		c.bp.UpdateBTB(d.PC, d.NextPC)
		if !hit {
			c.st.BTBBubbles++
			if c.fetchStallUntil <= c.cycle {
				c.fetchStallUntil = c.cycle + 1
			}
		}
		return true
	case d.Op == isa.Ret:
		if _, correct := c.bp.PopRAS(d.NextPC); !correct {
			c.blockFetchOn()
		}
		return true
	}
	return false
}

// blockFetchOn marks the most recently fetched instruction as the one
// fetch waits for (it is at the fetch-queue tail).
func (c *Core) blockFetchOn() {
	c.st.Mispredicts++
	c.fetchBlocked = true
	idx := (c.fqTail - 1 + len(c.fq)) % len(c.fq)
	c.fq[idx].blocksFetch = true
}
