package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

// independentALUProgram builds n fully independent single-cycle adds
// inside a long loop: an 8-wide machine should sustain high IPC on it.
func independentALUProgram() *prog.Program {
	b := prog.NewBuilder("ilp")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1_000_000).
		Label("loop")
	for i := 0; i < 16; i++ {
		pb.Addi(isa.R(2+i%12), isa.R(2+i%12), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	return b.MustBuild()
}

// dependentChainProgram builds a serial dependence chain: IPC ~1 at best.
func dependentChainProgram() *prog.Program {
	b := prog.NewBuilder("chain")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1_000_000).
		Label("loop")
	for i := 0; i < 16; i++ {
		pb.Addi(isa.R(2), isa.R(2), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	return b.MustBuild()
}

func run(t *testing.T, cfg Config, p *prog.Program, budget int64) Stats {
	t.Helper()
	st, err := RunProgram(cfg, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHighILPThroughput(t *testing.T) {
	st := run(t, DefaultConfig(), independentALUProgram(), 50_000)
	if ipc := st.IPC(); ipc < 4.0 {
		t.Errorf("independent adds IPC = %.2f, want >= 4 on an 8-wide core", ipc)
	}
	if st.CommittedReal != 50_000 {
		t.Errorf("committed = %d, want exactly the budget", st.CommittedReal)
	}
}

func TestSerialChainBoundsIPC(t *testing.T) {
	st := run(t, DefaultConfig(), dependentChainProgram(), 50_000)
	ipc := st.IPC()
	if ipc > 1.35 {
		t.Errorf("serial chain IPC = %.2f, want close to 1 (chain-bound)", ipc)
	}
	if ipc < 0.5 {
		t.Errorf("serial chain IPC = %.2f, unexpectedly low", ipc)
	}
}

func TestILPOrderingSanity(t *testing.T) {
	ind := run(t, DefaultConfig(), independentALUProgram(), 30_000)
	dep := run(t, DefaultConfig(), dependentChainProgram(), 30_000)
	if ind.IPC() <= dep.IPC() {
		t.Errorf("independent IPC %.2f must exceed dependent IPC %.2f", ind.IPC(), dep.IPC())
	}
}

func TestHintLimitingReducesOccupancyNotIPC(t *testing.T) {
	// The serial chain needs almost no queue: a small hint must slash
	// occupancy and wakeups while leaving IPC nearly untouched — the
	// paper's core claim in miniature.
	p := dependentChainProgram()
	base := run(t, DefaultConfig(), p, 40_000)

	// Same program with a tight hint at the loop head.
	b := prog.NewBuilder("chainhint")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1_000_000).
		Label("loop").
		Hint(4)
	for i := 0; i < 16; i++ {
		pb.Addi(isa.R(2), isa.R(2), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	hp := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Control = ControlHints
	limited := run(t, cfg, hp, 40_000)

	if limited.HintsApplied == 0 {
		t.Fatal("no hints applied")
	}
	occBase, occLim := base.AvgIQOccupancy(), limited.AvgIQOccupancy()
	if occLim > occBase*0.5 {
		t.Errorf("occupancy %.1f -> %.1f: hint did not shrink the queue", occBase, occLim)
	}
	lossPct := (base.IPC() - limited.IPC()) / base.IPC() * 100
	if lossPct > 8 {
		t.Errorf("IPC loss %.1f%% too high for a chain that needs no queue", lossPct)
	}
	wakeBase := float64(base.IQ.GatedWakeups) / float64(base.CommittedReal)
	wakeLim := float64(limited.IQ.GatedWakeups) / float64(limited.CommittedReal)
	if wakeLim > wakeBase*0.6 {
		t.Errorf("wakeups/inst %.2f -> %.2f: expected large reduction", wakeBase, wakeLim)
	}
}

func TestHintsIgnoredWithoutControl(t *testing.T) {
	b := prog.NewBuilder("ignored")
	pb := b.Proc("main").Entry().Li(isa.R(1), 100_000).Label("loop").Hint(2)
	for i := 0; i < 8; i++ {
		pb.Addi(isa.R(2+i), isa.R(2+i), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).Bne(isa.R(1), isa.RZero, "loop").Halt()
	p := pb.MustBuild()
	cfg := DefaultConfig() // ControlNone
	st := run(t, cfg, p, 20_000)
	if st.HintsApplied != 0 {
		t.Errorf("hints applied under ControlNone: %d", st.HintsApplied)
	}
	if st.CommittedHints == 0 {
		t.Error("hint NOOPs must still consume dispatch slots")
	}
}

func TestMispredictionCostsCycles(t *testing.T) {
	// Data-dependent unpredictable branches (xorshift parity) vs the same
	// loop with an always-taken pattern.
	mk := func(noisy bool) *prog.Program {
		b := prog.NewBuilder("br")
		pb := b.Proc("main").Entry().
			Li(isa.R(1), 1_000_000).
			Li(isa.R(2), 88172645463325252).
			Label("loop")
		if noisy {
			// xorshift64 step, then branch on bit 0.
			pb.Shli(isa.R(3), isa.R(2), 13).Xor(isa.R(2), isa.R(2), isa.R(3)).
				Shri(isa.R(3), isa.R(2), 7).Xor(isa.R(2), isa.R(2), isa.R(3)).
				Shli(isa.R(3), isa.R(2), 17).Xor(isa.R(2), isa.R(2), isa.R(3)).
				Andi(isa.R(4), isa.R(2), 1).
				Beq(isa.R(4), isa.RZero, "skip").
				Addi(isa.R(5), isa.R(5), 1).
				Label("skip")
		} else {
			pb.Addi(isa.R(5), isa.R(5), 1).
				Addi(isa.R(6), isa.R(6), 1).
				Addi(isa.R(7), isa.R(7), 1).
				Addi(isa.R(8), isa.R(8), 1).
				Addi(isa.R(9), isa.R(9), 1).
				Addi(isa.R(10), isa.R(10), 1)
		}
		pb.Addi(isa.R(1), isa.R(1), -1).
			Bne(isa.R(1), isa.RZero, "loop").
			Halt()
		return pb.MustBuild()
	}
	noisy := run(t, DefaultConfig(), mk(true), 40_000)
	steady := run(t, DefaultConfig(), mk(false), 40_000)
	if noisy.Mispredicts < steady.Mispredicts {
		t.Errorf("noisy mispredicts %d < steady %d", noisy.Mispredicts, steady.Mispredicts)
	}
	if noisy.IPC() >= steady.IPC() {
		t.Errorf("noisy IPC %.2f must be below steady %.2f", noisy.IPC(), steady.IPC())
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	// Pointer-chase through a large ring (D-cache hostile) vs a tiny ring.
	mk := func(words int64) *prog.Program {
		b := prog.NewBuilder("chase")
		// Data: ring of pointers with stride 8 lines to defeat locality.
		n := words
		data := make([]int64, n)
		stride := int64(37) // co-prime walk
		for i := int64(0); i < n; i++ {
			next := (i + stride) % n
			data[i] = 0x10000 + next*8
		}
		b.SetData(data)
		pb := b.Proc("main").Entry().
			Li(isa.R(1), 1_000_000).
			Li(isa.R(2), 0x10000).
			Label("loop").
			Ld(isa.R(2), isa.R(2), 0). // p = *p
			Addi(isa.R(1), isa.R(1), -1).
			Bne(isa.R(1), isa.RZero, "loop").
			Halt()
		return pb.MustBuild()
	}
	big := run(t, DefaultConfig(), mk(1<<17), 20_000)  // 1MiB working set
	small := run(t, DefaultConfig(), mk(1<<9), 20_000) // 4KiB working set
	if big.DL1.MissRate() < 0.5 {
		t.Errorf("big ring DL1 miss rate %.2f, want >= 0.5", big.DL1.MissRate())
	}
	if small.DL1.MissRate() > 0.05 {
		t.Errorf("small ring DL1 miss rate %.2f, want tiny", small.DL1.MissRate())
	}
	if big.IPC() >= small.IPC()*0.7 {
		t.Errorf("cache misses must hurt: big %.3f vs small %.3f", big.IPC(), small.IPC())
	}
}

func TestCompletionRingClampsLongLatencies(t *testing.T) {
	// A memory latency pushing loads past the completion ring's span used
	// to alias an earlier ring slot and complete the load far too early.
	// With MemCycles=500 every DL1+L2 miss costs 512 cycles > 128: the
	// guard must clamp (and count) rather than corrupt, and the run must
	// still commit its full budget.
	b := prog.NewBuilder("chase")
	n := int64(1 << 17)
	data := make([]int64, n)
	for i := int64(0); i < n; i++ {
		data[i] = 0x10000 + ((i+37)%n)*8
	}
	b.SetData(data)
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1_000_000).
		Li(isa.R(2), 0x10000).
		Label("loop").
		Ld(isa.R(2), isa.R(2), 0).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	cfg := DefaultConfig()
	cfg.Caches.MemCycles = 500
	cfg.MaxCycles = 10_000 * 600 // chase at ~512 cycles/load needs headroom
	st := run(t, cfg, pb.MustBuild(), 10_000)
	if st.LatencyClamped == 0 {
		t.Error("expected clamped latencies with MemCycles=500, got none")
	}
	if st.CommittedReal != 10_000 {
		t.Errorf("committed %d, want 10000", st.CommittedReal)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store then immediately load the same address in a loop: must make
	// progress and commit the right count (correctness of disambiguation).
	b := prog.NewBuilder("fwd")
	b.Proc("main").Entry().
		Li(isa.R(1), 100_000).
		Li(isa.R(2), 0x20000).
		Label("loop").
		St(isa.R(1), isa.R(2), 0).
		Ld(isa.R(3), isa.R(2), 0).
		Add(isa.R(4), isa.R(4), isa.R(3)).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	st := run(t, DefaultConfig(), b.MustBuild(), 30_000)
	if st.CommittedReal != 30_000 {
		t.Errorf("committed %d, want 30000", st.CommittedReal)
	}
	if st.IPC() < 0.8 {
		t.Errorf("forwarding loop IPC %.2f suspiciously low", st.IPC())
	}
}

func TestAdaptiveControlShrinksQueue(t *testing.T) {
	// A low-ILP workload under the abella controller: the queue must be
	// resized down, cutting occupancy against baseline.
	p := dependentChainProgram()
	base := run(t, DefaultConfig(), p, 60_000)
	cfg := DefaultConfig()
	cfg.Control = ControlAdaptive
	// A permissive threshold isolates the mechanism from the production
	// tuning: the serial chain's young-issue share is ~10%.
	cfg.Adaptive.ShrinkThreshold = 0.2
	ad := run(t, cfg, p, 60_000)
	if ad.Resizes == 0 {
		t.Fatal("adaptive controller never resized")
	}
	if ad.AvgIQOccupancy() >= base.AvgIQOccupancy() {
		t.Errorf("adaptive occupancy %.1f not below baseline %.1f",
			ad.AvgIQOccupancy(), base.AvgIQOccupancy())
	}
}

func TestROBLimitConstrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Control = ControlAdaptive
	cfg.Adaptive.ROBLimit = 16 // extreme cap to make the effect visible
	st := run(t, cfg, independentALUProgram(), 30_000)
	base := run(t, DefaultConfig(), independentALUProgram(), 30_000)
	if st.IPC() >= base.IPC() {
		t.Errorf("ROB cap 16 IPC %.2f must be below uncapped %.2f", st.IPC(), base.IPC())
	}
	if st.StallROBFull == 0 {
		t.Error("expected ROB-full stalls under a 16-entry cap")
	}
}

func TestDrainAfterStreamEnds(t *testing.T) {
	// Run a short program to natural completion (budget 0).
	b := prog.NewBuilder("short")
	pb := b.Proc("main").Entry()
	for i := 0; i < 40; i++ {
		pb.Addi(isa.R(1+i%10), isa.R(1+i%10), 1)
	}
	pb.Halt()
	st := run(t, DefaultConfig(), pb.MustBuild(), 0)
	if st.CommittedReal != 41 { // 40 adds + halt
		t.Errorf("committed = %d, want 41", st.CommittedReal)
	}
	if st.Cycles == 0 || st.Cycles > 300 {
		t.Errorf("cycles = %d, implausible for 41 instructions", st.Cycles)
	}
}

func TestStatsConsistency(t *testing.T) {
	st := run(t, DefaultConfig(), independentALUProgram(), 20_000)
	if st.IQ.Dispatches < st.CommittedReal {
		t.Errorf("IQ dispatches %d < committed %d", st.IQ.Dispatches, st.CommittedReal)
	}
	if st.IQ.Issues != st.IQ.Dispatches {
		// Every dispatched instruction issues in a drained/cut run within
		// a small tail still in flight at the cut.
		diff := st.IQ.Dispatches - st.IQ.Issues
		if diff < 0 || diff > int64(DefaultConfig().IQ.Entries) {
			t.Errorf("issues %d vs dispatches %d: tail too large", st.IQ.Issues, st.IQ.Dispatches)
		}
	}
	if st.IQ.UngatedWakeups < st.IQ.NonEmptyWakeups || st.IQ.NonEmptyWakeups < st.IQ.GatedWakeups {
		t.Errorf("gating hierarchy violated: %d >= %d >= %d expected",
			st.IQ.UngatedWakeups, st.IQ.NonEmptyWakeups, st.IQ.GatedWakeups)
	}
}

func TestSliceStreamDirectly(t *testing.T) {
	// Drive the core with a handmade two-instruction stream.
	mkInst := func(seq int64, pc int) trace.DynInst {
		return trace.DynInst{
			Seq: seq, PC: pc, Op: isa.Addi,
			Dst: isa.R(1), Src1: isa.R(1), Src2: isa.RegNone,
			NextPC: pc + 4,
		}
	}
	s := &trace.SliceStream{Insts: []trace.DynInst{mkInst(0, 0), mkInst(1, 4)}}
	core, err := New(DefaultConfig(), s)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Run()
	if st.CommittedReal != 2 {
		t.Errorf("committed = %d, want 2", st.CommittedReal)
	}
}
