package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestPhysRegExhaustionStalls: with a tiny physical register file the
// renamer must stall dispatch rather than deadlock or misrename.
func TestPhysRegExhaustionStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntRF.Regs = 40 // 32 arch + 8 spare
	cfg.IntRF.BankSize = 8
	st := run(t, cfg, independentALUProgram(), 20_000)
	if st.StallNoPhysReg == 0 {
		t.Error("expected rename stalls with 8 spare registers")
	}
	if st.CommittedReal != 20_000 {
		t.Errorf("committed %d, want full budget despite stalls", st.CommittedReal)
	}
	base := run(t, DefaultConfig(), independentALUProgram(), 20_000)
	if st.IPC() >= base.IPC() {
		t.Errorf("tiny PRF IPC %.2f must be below full PRF %.2f", st.IPC(), base.IPC())
	}
}

// TestLSQCapacityStalls: a tiny LSQ must throttle memory-dense code.
func TestLSQCapacityStalls(t *testing.T) {
	b := prog.NewBuilder("memdense")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Li(isa.R(2), 0x10000).
		Label("loop")
	for i := 0; i < 12; i++ {
		pb.Ld(isa.R(3+i%8), isa.R(2), int64(8*i))
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	p := pb.MustBuild()
	cfg := DefaultConfig()
	cfg.LSQSize = 4
	st := run(t, cfg, p, 20_000)
	if st.StallLSQFull == 0 {
		t.Error("expected LSQ-full stalls with a 4-entry LSQ")
	}
	base := run(t, DefaultConfig(), p, 20_000)
	if st.IPC() >= base.IPC() {
		t.Errorf("LSQ-4 IPC %.2f must be below LSQ-64 %.2f", st.IPC(), base.IPC())
	}
}

// TestICacheColdMissesStallFetch: a program whose static footprint
// exceeds the I-cache must show fetch-side misses and lower IPC than a
// tiny-footprint equivalent doing the same work.
func TestICacheColdMissesStallFetch(t *testing.T) {
	big := func() *prog.Program {
		b := prog.NewBuilder("bigcode")
		pb := b.Proc("main").Entry().
			Li(isa.R(1), 1<<30).
			Label("loop")
		// ~24k instructions of straight-line code: 96KB > 64KB L1I.
		for i := 0; i < 24_000; i++ {
			pb.Addi(isa.R(2+i%12), isa.R(2+i%12), 1)
		}
		pb.Addi(isa.R(1), isa.R(1), -1).
			Bne(isa.R(1), isa.RZero, "loop").
			Halt()
		return pb.MustBuild()
	}()
	st := run(t, DefaultConfig(), big, 50_000)
	if st.IL1.Misses == 0 {
		t.Fatal("no I-cache misses on a 96KB loop")
	}
	if st.IL1.MissRate() < 0.01 {
		t.Errorf("I-miss rate %.4f suspiciously low for a thrashing loop", st.IL1.MissRate())
	}
}

// TestTagHintsApplyAtRuntime: Extension-style tags (no NOOPs) must set
// max_new_range when the carrying instruction dispatches.
func TestTagHintsApplyAtRuntime(t *testing.T) {
	b := prog.NewBuilder("tagged")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Label("loop")
	for i := 0; i < 16; i++ {
		pb.Addi(isa.R(2), isa.R(2), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	p := pb.MustBuild()
	// Tag the loop's first instruction by hand.
	p.Procs[0].Blocks[1].Insts[0].Hint = 6
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Control = ControlHints
	st := run(t, cfg, p, 30_000)
	if st.HintsApplied == 0 {
		t.Fatal("tag hints not applied")
	}
	if st.CommittedHints != 0 {
		t.Error("tag mode must not consume NOOP dispatch slots")
	}
	base := run(t, DefaultConfig(), p, 30_000)
	if st.AvgIQOccupancy() >= base.AvgIQOccupancy()*0.8 {
		t.Errorf("tag hint did not shrink occupancy: %.1f vs %.1f",
			st.AvgIQOccupancy(), base.AvgIQOccupancy())
	}
}

// TestWakeupHierarchyOnRealWorkload: the gating accounting invariant
// ungated >= nonEmpty >= gated must hold cycle-accumulated on real runs.
func TestWakeupHierarchyOnRealWorkload(t *testing.T) {
	st := run(t, DefaultConfig(), dependentChainProgram(), 30_000)
	if st.IQ.UngatedWakeups < st.IQ.NonEmptyWakeups {
		t.Errorf("ungated %d < nonEmpty %d", st.IQ.UngatedWakeups, st.IQ.NonEmptyWakeups)
	}
	if st.IQ.NonEmptyWakeups < st.IQ.GatedWakeups {
		t.Errorf("nonEmpty %d < gated %d", st.IQ.NonEmptyWakeups, st.IQ.GatedWakeups)
	}
	if st.IQ.Woken > st.IQ.GatedWakeups {
		t.Errorf("woken %d exceeds gated comparisons %d", st.IQ.Woken, st.IQ.GatedWakeups)
	}
	// Every instruction with a destination broadcasts exactly once.
	if st.IQ.Broadcasts == 0 || st.IQ.Broadcasts > st.CommittedReal {
		t.Errorf("broadcasts %d vs committed %d implausible", st.IQ.Broadcasts, st.CommittedReal)
	}
}

// TestRegfileBankPacking: a serial chain fills the ROB and saturates the
// register file in the baseline (the paper's motivation for the regfile
// side effect); throttling dispatch with a hint must empty high banks,
// which the lowest-first allocator keeps packed.
func TestRegfileBankPacking(t *testing.T) {
	base := run(t, DefaultConfig(), dependentChainProgram(), 30_000)
	if on := base.AvgIntRFBanksOn(); on < 12 {
		t.Errorf("baseline serial chain keeps %.1f banks live, want near all 14 (full ROB)", on)
	}
	// Same chain with a tight hint: in-flight population collapses.
	b := prog.NewBuilder("chainhint2")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Label("loop").
		Hint(4)
	for i := 0; i < 16; i++ {
		pb.Addi(isa.R(2), isa.R(2), 1)
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	cfg := DefaultConfig()
	cfg.Control = ControlHints
	hinted := run(t, cfg, pb.MustBuild(), 30_000)
	if hinted.AvgIntRFBanksOn() > base.AvgIntRFBanksOn()-3 {
		t.Errorf("hinted banks %.1f not clearly below baseline %.1f",
			hinted.AvgIntRFBanksOn(), base.AvgIntRFBanksOn())
	}
	if hinted.AvgIntRFLive() >= base.AvgIntRFLive() {
		t.Errorf("hinted live regs %.1f not below baseline %.1f",
			hinted.AvgIntRFLive(), base.AvgIntRFLive())
	}
}

// TestFPPipeline: floating-point code must flow through the FP units and
// FP register file.
func TestFPPipeline(t *testing.T) {
	b := prog.NewBuilder("fp")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Li(isa.R(2), 3).
		ItoF(isa.FP(0), isa.R(2)).
		Label("loop").
		FMul(isa.FP(1), isa.FP(0), isa.FP(0)).
		FAdd(isa.FP(2), isa.FP(1), isa.FP(0)).
		FDiv(isa.FP(3), isa.FP(2), isa.FP(1)).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	st := run(t, DefaultConfig(), pb.MustBuild(), 20_000)
	if st.FPRF.Writes == 0 {
		t.Error("no FP register writes")
	}
	if st.CommittedReal != 20_000 {
		t.Errorf("committed %d", st.CommittedReal)
	}
}

// TestHintStallAttribution: dispatch blocked by max_new_range must be
// attributed to the hint, not the physical queue.
func TestHintStallAttribution(t *testing.T) {
	b := prog.NewBuilder("tight")
	pb := b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Label("loop").
		Hint(2)
	for i := 0; i < 12; i++ {
		pb.Muli(isa.R(2), isa.R(2), 3) // serial muls: drain slowly
	}
	pb.Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	cfg := DefaultConfig()
	cfg.Control = ControlHints
	st := run(t, cfg, pb.MustBuild(), 10_000)
	if st.StallHintLimit == 0 {
		t.Error("expected hint-limit stalls with hint=2 over serial muls")
	}
	if st.StallIQFull > st.StallHintLimit {
		t.Errorf("stalls attributed to IQ-full (%d) instead of hint (%d)",
			st.StallIQFull, st.StallHintLimit)
	}
}

// TestCommitWidthBoundsIPC: IPC can never exceed the commit width.
func TestCommitWidthBoundsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitWidth = 2
	st := run(t, cfg, independentALUProgram(), 20_000)
	if st.IPC() > 2.0001 {
		t.Errorf("IPC %.3f exceeds commit width 2", st.IPC())
	}
}

// TestMaxCyclesSafetyStop: a configured cycle cap must end the run.
func TestMaxCyclesSafetyStop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 500
	st := run(t, cfg, independentALUProgram(), 1_000_000)
	if st.Cycles > 500 {
		t.Errorf("cycles %d exceed MaxCycles 500", st.Cycles)
	}
}
