package sim

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// TestSafetyCyclesClamp pins the MaxCycles safety-net arithmetic: the
// budget*20 product must saturate, not wrap negative, for huge budgets
// (a negative MaxCycles would silently disable the hang detector).
func TestSafetyCyclesClamp(t *testing.T) {
	cases := []struct {
		budget int64
		want   int64
	}{
		{1, 20},
		{500_000, 10_000_000},
		{math.MaxInt64 / 20, math.MaxInt64 / 20 * 20},
		{math.MaxInt64/20 + 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := SafetyCycles(c.budget); got != c.want {
			t.Errorf("SafetyCycles(%d) = %d, want %d", c.budget, got, c.want)
		}
		if got := SafetyCycles(c.budget); got <= 0 {
			t.Errorf("SafetyCycles(%d) = %d overflowed", c.budget, got)
		}
	}
}

// loopProgram is a tight endless-ish loop for cancellation tests.
func loopProgram() *prog.Program {
	b := prog.NewBuilder("loop")
	b.Proc("main").Entry().
		Li(isa.R(1), 1<<40).
		Label("l").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "l").
		Halt()
	return b.MustBuild()
}

// TestRunContextCancelsMidJob verifies the cycle loop notices
// cancellation long before a huge budget completes — the property
// campaign cancellation relies on.
func TestRunContextCancelsMidJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Stats, 1)
	go func() {
		// A budget that would take minutes to simulate.
		st, err := RunProgramContext(ctx, DefaultConfig(), loopProgram(), 1<<40)
		if err == nil {
			t.Error("cancelled run returned nil error")
		}
		done <- st
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case st := <-done:
		if st.Cycles == 0 {
			t.Error("cancelled run returned no partial stats")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not take effect mid-job")
	}
}

// TestRunContextAlreadyCancelled verifies an already-cancelled context
// stops the run almost immediately.
func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunProgramContext(ctx, DefaultConfig(), loopProgram(), 1<<40)
	if err == nil {
		t.Fatal("want context error")
	}
	if st.Cycles > 2*ctxPollCycles {
		t.Fatalf("ran %d cycles after pre-cancelled ctx; want <= %d", st.Cycles, 2*ctxPollCycles)
	}
}

// storeLoadProgram mixes stores, dependent loads and branches so the
// disambiguation paths (which compare DynInst.Seq values) are exercised.
func storeLoadProgram() *prog.Program {
	b := prog.NewBuilder("mem")
	base := b.AppendData(make([]int64, 32)...)
	b.Proc("main").Entry().
		Li(isa.R(1), 1<<40).
		Li(isa.R(2), int64(base)).
		Label("loop").
		Addi(isa.R(3), isa.R(3), 8).
		Andi(isa.R(3), isa.R(3), 31*8).
		Add(isa.R(4), isa.R(2), isa.R(3)).
		St(isa.R(5), isa.R(4), 0).
		Ld(isa.R(6), isa.R(4), 0).
		Add(isa.R(5), isa.R(5), isa.R(6)).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	return b.MustBuild()
}

// TestResumableMidStream verifies a core built over a mid-run emulator
// checkpoint (non-zero starting Seq) simulates correctly: same number of
// committed instructions as requested and loads/stores disambiguate
// without assuming Seq 0.
func TestResumableMidStream(t *testing.T) {
	p := storeLoadProgram()
	e := emu.MustNew(p)
	e.Restart = true
	// Advance half a million instructions so Seq is far from zero.
	for i := 0; i < 500_000; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatal("program halted early")
		}
	}
	cp := e.Checkpoint()
	if cp.Seq() == 0 {
		t.Fatal("checkpoint at Seq 0; test needs a mid-stream position")
	}
	resumed, err := emu.NewFromCheckpoint(p, cp)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Restart = true
	cfg := DefaultConfig()
	cfg.MaxInsts = 10_000
	cfg.MaxCycles = SafetyCycles(cfg.MaxInsts)
	core, err := New(cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Run()
	if st.CommittedReal != 10_000 {
		t.Fatalf("mid-stream core committed %d, want 10000", st.CommittedReal)
	}
	if st.IPC() <= 0 {
		t.Fatalf("mid-stream IPC = %v", st.IPC())
	}
}
