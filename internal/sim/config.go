// Package sim is the cycle-level out-of-order superscalar timing model —
// the reproduction's equivalent of SimpleScalar's sim-outorder extended
// with the paper's issue-queue mechanisms. It consumes the committed-path
// dynamic instruction stream from the functional emulator and models
// fetch (with branch prediction and I-cache), a decoupled fetch/decode
// queue, rename, dispatch into the banked issue queue, wakeup/select
// issue, functional-unit execution with variable-latency loads, writeback
// broadcast, and in-order commit from a reorder buffer.
package sim

import (
	"repro/internal/adaptive"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// ControlMode selects who controls the issue-queue size.
type ControlMode int

// Control modes.
const (
	// ControlNone: the 80-entry queue runs unconstrained (baseline).
	ControlNone ControlMode = iota
	// ControlHints: compiler hints (NOOPs or tags) set max_new_range
	// (the paper's technique).
	ControlHints
	// ControlAdaptive: a hardware controller resizes the queue at bank
	// granularity (the abella baseline); see AdaptiveConfig.
	ControlAdaptive
)

// Config is the full processor configuration (paper table 1 defaults).
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	FetchQueueSize int
	DecodeStages   int // cycles an instruction spends decoding

	ROBSize int
	LSQSize int

	IQ       iq.Config
	IntRF    regfile.Config
	FPRF     regfile.Config
	Caches   cache.HierarchyConfig
	Bpred    bpred.Config
	FU       FUConfig
	MemPorts int

	Control  ControlMode
	Adaptive adaptive.Config

	// MaxInsts stops the run after this many committed real (non-NOOP)
	// instructions; 0 = run until the stream ends.
	MaxInsts int64
	// MaxCycles is a safety stop (0 = none).
	MaxCycles int64

	// Probe, when non-nil, receives a sample every cycle — the hook the
	// inspection tools use for occupancy histograms and time series.
	Probe Probe
}

// Probe observes per-cycle machine state. Implementations must be cheap;
// they run inside the simulation loop.
type Probe interface {
	Sample(cycle int64, s ProbeSample)
}

// ProbeSample is one cycle's observable state.
type ProbeSample struct {
	IQCount     int // valid issue-queue entries
	IQBanksOn   int
	MaxNewRange int // current hint (0 = uncontrolled)
	IntRFLive   int
	ROBCount    int
	FetchQueue  int
}

// FUConfig gives the number of units per class. All units are fully
// pipelined; latencies come from isa.Op.Latency plus the cache model for
// loads.
type FUConfig struct {
	IntALU   int // also executes branches, jumps, calls, returns
	IntMul   int
	FPALU    int
	FPMulDiv int
}

// DefaultConfig is the paper's table 1 processor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:     8,
		DispatchWidth:  8,
		IssueWidth:     8,
		CommitWidth:    8,
		FetchQueueSize: 32,
		DecodeStages:   3,
		ROBSize:        128,
		LSQSize:        64,
		IQ:             iq.DefaultConfig(),
		IntRF:          regfile.DefaultConfig(),
		FPRF:           regfile.DefaultConfig(),
		Caches:         cache.DefaultHierarchyConfig(),
		Bpred:          bpred.DefaultConfig(),
		FU:             FUConfig{IntALU: 6, IntMul: 3, FPALU: 4, FPMulDiv: 2},
		MemPorts:       2,
		Control:        ControlNone,
		Adaptive:       adaptive.DefaultConfig(),
	}
}

// unitsFor returns how many units serve a class.
func (f *FUConfig) unitsFor(c isa.Class) int {
	switch c {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassCtrl:
		return f.IntALU
	case isa.ClassIntMul:
		return f.IntMul
	case isa.ClassFPALU:
		return f.FPALU
	case isa.ClassFPMulDiv:
		return f.FPMulDiv
	case isa.ClassLoad, isa.ClassStore:
		// memory ops are limited by MemPorts, handled separately
		return 1 << 30
	default:
		return 1 << 30
	}
}
