package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestReturnAddressPredictionAccuracy: deeply alternating call/return
// patterns must be predicted by the RAS, not mispredicted.
func TestReturnAddressPredictionAccuracy(t *testing.T) {
	b := prog.NewBuilder("calls")
	b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Label("loop").
		Call("a").
		Call("b").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	b.Proc("a").
		Addi(isa.R(2), isa.R(2), 1).
		Call("c").
		Ret()
	b.Proc("b").
		Addi(isa.R(3), isa.R(3), 1).
		Ret()
	b.Proc("c").
		Addi(isa.R(4), isa.R(4), 1).
		Ret()
	st := run(t, DefaultConfig(), b.MustBuild(), 30_000)
	if st.Bpred.RASReturns == 0 {
		t.Fatal("no returns predicted")
	}
	if rate := float64(st.Bpred.RASMispredict) / float64(st.Bpred.RASReturns); rate > 0.01 {
		t.Errorf("RAS mispredict rate %.3f, want ~0 for nested non-recursive calls", rate)
	}
}

// TestDeepRecursionOverflowsRAS: recursion deeper than the 16-entry RAS
// must cause return mispredicts but still execute correctly.
func TestDeepRecursionOverflowsRAS(t *testing.T) {
	b := prog.NewBuilder("recurse")
	b.Proc("main").Entry().
		Li(isa.R(1), 1<<30).
		Label("loop").
		Li(isa.R(2), 40). // recursion depth > RAS 16
		Call("down").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "loop").
		Halt()
	b.Proc("down").
		Addi(isa.R(2), isa.R(2), -1).
		Beq(isa.R(2), isa.RZero, "out").
		Call("down").
		Label("out").
		Addi(isa.R(3), isa.R(3), 1).
		Ret()
	st := run(t, DefaultConfig(), b.MustBuild(), 30_000)
	if st.Bpred.RASMispredict == 0 {
		t.Error("40-deep recursion must overflow the 16-entry RAS")
	}
	if st.CommittedReal != 30_000 {
		t.Errorf("committed %d, want full budget", st.CommittedReal)
	}
}

// TestROBWrapsManyTimes: a long run must cycle the ROB ring repeatedly
// without index corruption (committed count exact, no stalls beyond the
// expected ones).
func TestROBWrapsManyTimes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 16 // small ring wraps thousands of times
	st := run(t, cfg, independentALUProgram(), 50_000)
	if st.CommittedReal != 50_000 {
		t.Errorf("committed %d, want 50000", st.CommittedReal)
	}
	if st.IPC() <= 0.5 {
		t.Errorf("IPC %.2f suspiciously low for a 16-entry ROB on ALU code", st.IPC())
	}
}

// TestFetchQueueSizeLimitsRun: a tiny fetch queue throttles supply.
func TestFetchQueueSizeLimitsRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchQueueSize = 4
	small := run(t, cfg, independentALUProgram(), 30_000)
	full := run(t, DefaultConfig(), independentALUProgram(), 30_000)
	if small.IPC() >= full.IPC() {
		t.Errorf("4-entry fetch queue IPC %.2f not below 32-entry %.2f", small.IPC(), full.IPC())
	}
}

// TestProbeReceivesSamples: the per-cycle probe hook must fire every
// cycle with sane values.
func TestProbeReceivesSamples(t *testing.T) {
	var samples int64
	var maxIQ int
	probe := probeFunc(func(cycle int64, s ProbeSample) {
		samples++
		if s.IQCount > maxIQ {
			maxIQ = s.IQCount
		}
		if s.IQCount < 0 || s.IQCount > 80 || s.ROBCount < 0 || s.ROBCount > 128 {
			t.Fatalf("cycle %d: insane sample %+v", cycle, s)
		}
	})
	cfg := DefaultConfig()
	cfg.Probe = probe
	st := run(t, cfg, dependentChainProgram(), 10_000)
	if samples != st.Cycles {
		t.Errorf("samples %d != cycles %d", samples, st.Cycles)
	}
	if maxIQ == 0 {
		t.Error("probe never saw a non-empty issue queue")
	}
}

type probeFunc func(int64, ProbeSample)

func (f probeFunc) Sample(c int64, s ProbeSample) { f(c, s) }
