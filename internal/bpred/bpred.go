// Package bpred implements the branch prediction hardware of the paper's
// processor (table 1): a hybrid predictor with a 2K-entry gshare, a
// 2K-entry bimodal, and a 1K-entry selector; a 2048-entry 4-way BTB; and a
// return address stack for calls and returns.
package bpred

import "repro/internal/isa"

// Config sizes the predictor; zero values take the paper's configuration.
type Config struct {
	GshareEntries   int // 2-bit counters indexed by PC^history
	BimodalEntries  int // 2-bit counters indexed by PC
	SelectorEntries int // 2-bit chooser counters
	HistoryBits     int
	BTBEntries      int
	BTBAssoc        int
	RASEntries      int
}

// DefaultConfig is the paper's table 1 configuration.
func DefaultConfig() Config {
	return Config{
		GshareEntries:   2048,
		BimodalEntries:  2048,
		SelectorEntries: 1024,
		HistoryBits:     11,
		BTBEntries:      2048,
		BTBAssoc:        4,
		RASEntries:      16,
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.GshareEntries == 0 {
		c.GshareEntries = d.GshareEntries
	}
	if c.BimodalEntries == 0 {
		c.BimodalEntries = d.BimodalEntries
	}
	if c.SelectorEntries == 0 {
		c.SelectorEntries = d.SelectorEntries
	}
	if c.HistoryBits == 0 {
		c.HistoryBits = d.HistoryBits
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = d.BTBEntries
	}
	if c.BTBAssoc == 0 {
		c.BTBAssoc = d.BTBAssoc
	}
	if c.RASEntries == 0 {
		c.RASEntries = d.RASEntries
	}
}

// Stats counts prediction outcomes.
type Stats struct {
	CondLookups   int64
	CondMispred   int64
	BTBLookups    int64
	BTBMisses     int64
	RASReturns    int64
	RASMispredict int64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target int
	lru    int64
}

// Predictor is the full front-end prediction unit.
type Predictor struct {
	cfg      Config
	gshare   []uint8
	bimodal  []uint8
	selector []uint8
	history  uint64
	btb      []btbEntry // BTBEntries/BTBAssoc sets of BTBAssoc ways
	ras      []int
	tick     int64
	Stats    Stats
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	cfg.fill()
	p := &Predictor{
		cfg:      cfg,
		gshare:   make([]uint8, cfg.GshareEntries),
		bimodal:  make([]uint8, cfg.BimodalEntries),
		selector: make([]uint8, cfg.SelectorEntries),
		btb:      make([]btbEntry, cfg.BTBEntries),
	}
	// Weakly taken initial state avoids a long cold-start ramp.
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 2
	}
	return p
}

func pcIndex(pc int) uint64 { return uint64(pc) / isa.InstBytes }

func (p *Predictor) gshareIdx(pc int) int {
	return int((pcIndex(pc) ^ p.history) % uint64(len(p.gshare)))
}

func (p *Predictor) bimodalIdx(pc int) int {
	return int(pcIndex(pc) % uint64(len(p.bimodal)))
}

func (p *Predictor) selectorIdx(pc int) int {
	return int(pcIndex(pc) % uint64(len(p.selector)))
}

// PredictCond predicts a conditional branch at pc. The caller must follow
// with UpdateCond for the same branch before the next prediction.
func (p *Predictor) PredictCond(pc int) bool {
	p.Stats.CondLookups++
	g := p.gshare[p.gshareIdx(pc)] >= 2
	b := p.bimodal[p.bimodalIdx(pc)] >= 2
	if p.selector[p.selectorIdx(pc)] >= 2 {
		return g
	}
	return b
}

// UpdateCond trains the predictor with the actual outcome.
func (p *Predictor) UpdateCond(pc int, taken bool) {
	gi, bi, si := p.gshareIdx(pc), p.bimodalIdx(pc), p.selectorIdx(pc)
	g := p.gshare[gi] >= 2
	b := p.bimodal[bi] >= 2
	pred := g
	if p.selector[si] < 2 {
		pred = b
	}
	if pred != taken {
		p.Stats.CondMispred++
	}
	p.train(gi, bi, si, g, b, taken)
}

// TrainCond is the functional-warming update: it performs exactly the
// state transitions of UpdateCond — counters, chooser, global history —
// but charges nothing to Stats, so warming branches between detailed
// sample windows keep the predictor hot without polluting the window's
// measured misprediction rate.
func (p *Predictor) TrainCond(pc int, taken bool) {
	gi, bi, si := p.gshareIdx(pc), p.bimodalIdx(pc), p.selectorIdx(pc)
	p.train(gi, bi, si, p.gshare[gi] >= 2, p.bimodal[bi] >= 2, taken)
}

// train applies the component, chooser and history updates shared by
// UpdateCond and TrainCond.
func (p *Predictor) train(gi, bi, si int, g, b, taken bool) {
	// Chooser trains toward the component that was right (when they differ).
	if g != b {
		if g == taken {
			p.selector[si] = satInc(p.selector[si])
		} else {
			p.selector[si] = satDec(p.selector[si])
		}
	}
	if taken {
		p.gshare[gi] = satInc(p.gshare[gi])
		p.bimodal[bi] = satInc(p.bimodal[bi])
	} else {
		p.gshare[gi] = satDec(p.gshare[gi])
		p.bimodal[bi] = satDec(p.bimodal[bi])
	}
	p.history = ((p.history << 1) | boolBit(taken)) & ((1 << p.cfg.HistoryBits) - 1)
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// LookupBTB returns the predicted target for a taken control transfer at
// pc, or ok=false on a BTB miss.
func (p *Predictor) LookupBTB(pc int) (target int, ok bool) {
	p.Stats.BTBLookups++
	set, tag := p.btbSet(pc)
	for i := 0; i < p.cfg.BTBAssoc; i++ {
		e := &p.btb[set+i]
		if e.valid && e.tag == tag {
			p.tick++
			e.lru = p.tick
			return e.target, true
		}
	}
	p.Stats.BTBMisses++
	return 0, false
}

// UpdateBTB installs the target of a taken control transfer.
func (p *Predictor) UpdateBTB(pc, target int) {
	set, tag := p.btbSet(pc)
	victim := set
	for i := 0; i < p.cfg.BTBAssoc; i++ {
		e := &p.btb[set+i]
		if e.valid && e.tag == tag {
			victim = set + i
			break
		}
		if !e.valid {
			victim = set + i
			break
		}
		if e.lru < p.btb[victim].lru {
			victim = set + i
		}
	}
	p.tick++
	p.btb[victim] = btbEntry{valid: true, tag: tag, target: target, lru: p.tick}
}

func (p *Predictor) btbSet(pc int) (base int, tag uint64) {
	sets := p.cfg.BTBEntries / p.cfg.BTBAssoc
	idx := pcIndex(pc)
	return int(idx%uint64(sets)) * p.cfg.BTBAssoc, idx / uint64(sets)
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(retPC int) {
	if len(p.ras) >= p.cfg.RASEntries {
		copy(p.ras, p.ras[1:])
		p.ras = p.ras[:len(p.ras)-1]
	}
	p.ras = append(p.ras, retPC)
}

// PopRAS predicts a return target; reports whether the prediction matched
// actual and counts stats.
func (p *Predictor) PopRAS(actual int) (predicted int, correct bool) {
	p.Stats.RASReturns++
	if len(p.ras) == 0 {
		p.Stats.RASMispredict++
		return 0, false
	}
	predicted = p.ras[len(p.ras)-1]
	p.ras = p.ras[:len(p.ras)-1]
	if predicted != actual {
		p.Stats.RASMispredict++
		return predicted, false
	}
	return predicted, true
}

// WarmBTB installs a taken transfer's target on the warming path. It is
// UpdateBTB by another name — BTB installation is already stat-free — and
// exists so warming call sites read uniformly.
func (p *Predictor) WarmBTB(pc, target int) { p.UpdateBTB(pc, target) }

// WarmCall records a call's return address on the warming path.
func (p *Predictor) WarmCall(retPC int) { p.PushRAS(retPC) }

// WarmReturn pops the return-address stack on the warming path without
// charging prediction statistics.
func (p *Predictor) WarmReturn() {
	if len(p.ras) > 0 {
		p.ras = p.ras[:len(p.ras)-1]
	}
}

// MispredictRate returns the conditional-branch misprediction fraction.
func (s *Stats) MispredictRate() float64 {
	if s.CondLookups == 0 {
		return 0
	}
	return float64(s.CondMispred) / float64(s.CondLookups)
}
