// Warm-state cloning and serialization for the checkpoint store
// (internal/ckpt), mirroring internal/cache: Clone serves the
// fork-per-window sampled engine, MarshalState/UnmarshalState the
// on-disk artifact. The serialized state is everything a restored
// predictor needs to behave bit-identically — component counters,
// chooser, global history, BTB contents with LRU clocks, and the
// return-address stack. Stats are measurements, not state, and are
// excluded.
package bpred

import (
	"fmt"

	"repro/internal/binio"
)

// WithDefaults resolves zero fields to the paper's table 1
// configuration — the same resolution New applies — so configurations
// that build identical predictors compare (and key) identically.
func (c Config) WithDefaults() Config {
	c.fill()
	return c
}

// Clone returns an independent deep copy of the predictor.
func (p *Predictor) Clone() *Predictor {
	cp := *p
	cp.gshare = append([]uint8(nil), p.gshare...)
	cp.bimodal = append([]uint8(nil), p.bimodal...)
	cp.selector = append([]uint8(nil), p.selector...)
	cp.btb = append([]btbEntry(nil), p.btb...)
	cp.ras = append([]int(nil), p.ras...)
	return &cp
}

// MarshalState serializes the predictor's warm state.
func (p *Predictor) MarshalState() []byte {
	var w binio.Writer
	w.U32(uint32(len(p.gshare)))
	w.Raw(p.gshare)
	w.U32(uint32(len(p.bimodal)))
	w.Raw(p.bimodal)
	w.U32(uint32(len(p.selector)))
	w.Raw(p.selector)
	w.U64(p.history)
	w.U32(uint32(len(p.btb)))
	for i := range p.btb {
		e := &p.btb[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.I64(int64(e.target))
		w.I64(e.lru)
	}
	w.U32(uint32(len(p.ras)))
	for _, v := range p.ras {
		w.I64(int64(v))
	}
	w.I64(p.tick)
	return w.Bytes()
}

// UnmarshalState restores state serialized by MarshalState into a
// predictor built from the same configuration. Stats are reset.
func (p *Predictor) UnmarshalState(data []byte) error {
	r := binio.NewReader(data)
	readTable := func(name string, dst []uint8) error {
		n := int(r.U32())
		if err := r.Err(); err != nil {
			return err
		}
		if n != len(dst) {
			return fmt.Errorf("bpred: serialized %s has %d entries, predictor has %d", name, n, len(dst))
		}
		copy(dst, r.Raw(n))
		return r.Err()
	}
	if err := readTable("gshare", p.gshare); err != nil {
		return err
	}
	if err := readTable("bimodal", p.bimodal); err != nil {
		return err
	}
	if err := readTable("selector", p.selector); err != nil {
		return err
	}
	history := r.U64()
	nbtb := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nbtb != len(p.btb) {
		return fmt.Errorf("bpred: serialized BTB has %d entries, predictor has %d", nbtb, len(p.btb))
	}
	for i := 0; i < nbtb; i++ {
		p.btb[i] = btbEntry{valid: r.Bool(), tag: r.U64(), target: int(r.I64()), lru: r.I64()}
	}
	nras := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if nras > p.cfg.RASEntries {
		return fmt.Errorf("bpred: serialized RAS depth %d exceeds capacity %d", nras, p.cfg.RASEntries)
	}
	ras := make([]int, nras)
	for i := range ras {
		ras[i] = int(r.I64())
	}
	tick := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("bpred: %d trailing bytes after predictor state", r.Remaining())
	}
	p.history = history
	p.ras = ras
	p.tick = tick
	p.Stats = Stats{}
	return nil
}
