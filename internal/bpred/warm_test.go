package bpred

import (
	"math/rand"
	"testing"
)

// TestTrainCondMatchesUpdateCond drives an identical outcome stream
// through two predictors — one trained via UpdateCond, one via the
// warming path TrainCond — and requires every subsequent prediction to
// agree: the warming path is UpdateCond minus statistics.
func TestTrainCondMatchesUpdateCond(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	rng := rand.New(rand.NewSource(11))
	pcs := make([]int, 32)
	for i := range pcs {
		pcs[i] = 4 * (i*37 + 5)
	}
	for i := 0; i < 50000; i++ {
		pc := pcs[rng.Intn(len(pcs))]
		taken := rng.Intn(3) != 0
		a.UpdateCond(pc, taken)
		b.TrainCond(pc, taken)
		// After equal training, both must predict alike on any pc.
		probe := pcs[rng.Intn(len(pcs))]
		if b.PredictCond(probe) != a.PredictCond(probe) {
			t.Fatalf("step %d: predictions diverge at pc %d", i, probe)
		}
	}
	if b.Stats.CondMispred != 0 {
		t.Fatalf("TrainCond charged mispredicts: %+v", b.Stats)
	}
}

// TestWarmRAS verifies the warming call/return paths mirror a call stack
// without charging return statistics.
func TestWarmRAS(t *testing.T) {
	p := New(Config{})
	p.WarmCall(100)
	p.WarmCall(200)
	p.WarmReturn() // consumes 200
	pred, correct := p.PopRAS(100)
	if !correct || pred != 100 {
		t.Fatalf("after warm call/return, PopRAS = %d,%v; want 100,true", pred, correct)
	}
	if p.Stats.RASReturns != 1 || p.Stats.RASMispredict != 0 {
		t.Fatalf("warming charged RAS stats: %+v", p.Stats)
	}
	// Warm pop on an empty stack is a no-op.
	p.WarmReturn()
	p.WarmReturn()
	if p.Stats.RASMispredict != 0 {
		t.Fatalf("empty warm pop charged stats: %+v", p.Stats)
	}
}

// TestWarmBTB verifies warming installs targets that later hit without
// warming having charged lookup statistics.
func TestWarmBTB(t *testing.T) {
	p := New(Config{})
	p.WarmBTB(64, 1024)
	if p.Stats.BTBLookups != 0 {
		t.Fatalf("warming charged BTB stats: %+v", p.Stats)
	}
	tgt, ok := p.LookupBTB(64)
	if !ok || tgt != 1024 {
		t.Fatalf("warm-installed target = %d,%v; want 1024,true", tgt, ok)
	}
}
