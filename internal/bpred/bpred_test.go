package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenConverges(t *testing.T) {
	p := New(Config{})
	pc := 400
	for i := 0; i < 100; i++ {
		p.PredictCond(pc)
		p.UpdateCond(pc, true)
	}
	mis := p.Stats.CondMispred
	for i := 0; i < 100; i++ {
		if !p.PredictCond(pc) {
			t.Fatalf("iteration %d: trained predictor predicted not-taken", i)
		}
		p.UpdateCond(pc, true)
	}
	if p.Stats.CondMispred != mis {
		t.Errorf("mispredicts after convergence: %d", p.Stats.CondMispred-mis)
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	// Strict alternation is history-predictable: after warmup the hybrid
	// must do far better than 50%.
	p := New(Config{})
	pc := 800
	taken := false
	for i := 0; i < 500; i++ {
		p.PredictCond(pc)
		p.UpdateCond(pc, taken)
		taken = !taken
	}
	start := p.Stats
	for i := 0; i < 1000; i++ {
		p.PredictCond(pc)
		p.UpdateCond(pc, taken)
		taken = !taken
	}
	window := Stats{
		CondLookups: p.Stats.CondLookups - start.CondLookups,
		CondMispred: p.Stats.CondMispred - start.CondMispred,
	}
	if r := window.MispredictRate(); r > 0.1 {
		t.Errorf("alternating mispredict rate = %.2f, want < 0.1", r)
	}
}

func TestLoopBranchAccuracy(t *testing.T) {
	// A 20-iteration loop branch: taken 19x, not-taken 1x. Bimodal alone
	// gets ~95%; the hybrid must be at least that good.
	p := New(Config{})
	pc := 1200
	for rounds := 0; rounds < 100; rounds++ {
		for i := 0; i < 19; i++ {
			p.PredictCond(pc)
			p.UpdateCond(pc, true)
		}
		p.PredictCond(pc)
		p.UpdateCond(pc, false)
	}
	if r := p.Stats.MispredictRate(); r > 0.12 {
		t.Errorf("loop branch mispredict rate = %.3f, want <= 0.12", r)
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	p := New(Config{})
	if _, ok := p.LookupBTB(400); ok {
		t.Fatal("cold BTB must miss")
	}
	p.UpdateBTB(400, 1200)
	tgt, ok := p.LookupBTB(400)
	if !ok || tgt != 1200 {
		t.Fatalf("BTB lookup = %d,%v want 1200,true", tgt, ok)
	}
	// Update with a new target replaces in place.
	p.UpdateBTB(400, 2000)
	tgt, ok = p.LookupBTB(400)
	if !ok || tgt != 2000 {
		t.Fatalf("BTB re-lookup = %d,%v want 2000,true", tgt, ok)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	sets := cfg.BTBEntries / cfg.BTBAssoc
	p := New(cfg)
	// Fill one set beyond its associativity: 5 branches mapping to set 0.
	pcs := make([]int, 5)
	for i := range pcs {
		pcs[i] = i * sets * 4 // same set, different tags
		p.UpdateBTB(pcs[i], 100+i)
	}
	hits := 0
	for _, pc := range pcs {
		if _, ok := p.LookupBTB(pc); ok {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("hits = %d, want exactly assoc=4 after eviction", hits)
	}
}

func TestRASMatchesCallStack(t *testing.T) {
	p := New(Config{})
	p.PushRAS(100)
	p.PushRAS(200)
	if tgt, ok := p.PopRAS(200); !ok || tgt != 200 {
		t.Errorf("pop = %d,%v want 200,true", tgt, ok)
	}
	if tgt, ok := p.PopRAS(100); !ok || tgt != 100 {
		t.Errorf("pop = %d,%v want 100,true", tgt, ok)
	}
	if _, ok := p.PopRAS(300); ok {
		t.Error("empty RAS must mispredict")
	}
	if p.Stats.RASMispredict != 1 {
		t.Errorf("RAS mispredicts = %d, want 1", p.Stats.RASMispredict)
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	p := New(Config{RASEntries: 4})
	for i := 0; i < 6; i++ {
		p.PushRAS(i * 100)
	}
	// Stack now holds 200,300,400,500; pops must match LIFO of the newest 4.
	for want := 500; want >= 200; want -= 100 {
		if tgt, ok := p.PopRAS(want); !ok || tgt != want {
			t.Fatalf("pop = %d,%v want %d,true", tgt, ok, want)
		}
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	// Unpredictable branches should land near 50% — far from 0% or 100% —
	// sanity that the predictor does not cheat.
	p := New(Config{})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		pc := 4 * (rng.Intn(64) + 1)
		p.PredictCond(pc)
		p.UpdateCond(pc, rng.Intn(2) == 0)
	}
	r := p.Stats.MispredictRate()
	if r < 0.35 || r > 0.65 {
		t.Errorf("random mispredict rate = %.3f, want near 0.5", r)
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	p := New(Config{})
	if len(p.gshare) != 2048 || len(p.bimodal) != 2048 || len(p.selector) != 1024 {
		t.Errorf("default table sizes wrong: %d %d %d",
			len(p.gshare), len(p.bimodal), len(p.selector))
	}
	if len(p.btb) != 2048 {
		t.Errorf("BTB size = %d, want 2048", len(p.btb))
	}
}
