package bpred

import (
	"bytes"
	"testing"
)

// trained builds a default predictor and drives a deterministic mix of
// conditional training, BTB updates and RAS traffic through it.
func trained(t *testing.T) *Predictor {
	t.Helper()
	p := New(Config{})
	for i := 0; i < 6000; i++ {
		p.TrainCond((i*37)%4096, i%3 != 0)
		p.UpdateBTB((i*53)%4096, (i*7)%65536)
		if i%11 == 0 {
			p.WarmCall(i + 1)
		}
		if i%23 == 0 {
			p.WarmReturn()
		}
	}
	return p
}

func TestStateRoundTrip(t *testing.T) {
	p := trained(t)
	data := p.MarshalState()

	fresh := New(Config{})
	if err := fresh.UnmarshalState(data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.MarshalState(), data) {
		t.Fatal("restored predictor re-serializes differently")
	}
	// Behavioral equivalence: identical queries and updates keep both
	// predictors in lockstep.
	for i := 0; i < 2000; i++ {
		pc := (i * 17) % 4096
		if a, b := p.PredictCond(pc), fresh.PredictCond(pc); a != b {
			t.Fatalf("pc %d: prediction %v vs %v after restore", pc, a, b)
		}
		ta, oka := p.LookupBTB(pc)
		tb, okb := fresh.LookupBTB(pc)
		if ta != tb || oka != okb {
			t.Fatalf("pc %d: BTB (%d,%v) vs (%d,%v) after restore", pc, ta, oka, tb, okb)
		}
		p.UpdateCond(pc, i%5 == 0)
		fresh.UpdateCond(pc, i%5 == 0)
	}
	if !bytes.Equal(p.MarshalState(), fresh.MarshalState()) {
		t.Fatal("original and restored diverged under identical updates")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := trained(t)
	snap := p.MarshalState()
	c := p.Clone()
	if !bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("clone does not match original")
	}
	for i := 0; i < 3000; i++ {
		p.TrainCond(i%4096, true)
		p.UpdateBTB(i%4096, i)
	}
	if !bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("training the original changed the clone")
	}
	for i := 0; i < 3000; i++ {
		c.TrainCond((i*3)%4096, false)
	}
	if bytes.Equal(c.MarshalState(), snap) {
		t.Fatal("training the clone had no effect (shared tables?)")
	}
}

func TestUnmarshalStateConfigMismatch(t *testing.T) {
	p := trained(t)
	data := p.MarshalState()
	cfg := DefaultConfig()
	cfg.BTBEntries *= 2
	bigger := New(cfg)
	if err := bigger.UnmarshalState(data); err == nil {
		t.Fatal("state restored into a differently-configured predictor")
	}
}

func TestUnmarshalStateCorrupt(t *testing.T) {
	p := trained(t)
	data := p.MarshalState()
	fresh := New(Config{})
	if err := fresh.UnmarshalState(data[:len(data)/3]); err == nil {
		t.Error("truncated state accepted")
	}
	if err := fresh.UnmarshalState(append(append([]byte(nil), data...), 1, 2, 3)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if err := fresh.UnmarshalState(nil); err == nil {
		t.Error("empty state accepted")
	}
}

func TestStateExcludesStats(t *testing.T) {
	p := trained(t)
	p.Stats.CondLookups = 1234
	withStats := p.MarshalState()
	if !bytes.Equal(withStats, trained(t).MarshalState()) {
		t.Fatal("statistics leaked into serialized predictor state")
	}
	fresh := New(Config{})
	if err := fresh.UnmarshalState(withStats); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.CondLookups != 0 {
		t.Fatalf("restored predictor carries %d lookups", fresh.Stats.CondLookups)
	}
}
