package cfg

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// diamond builds: entry -> (then | else) -> join -> exit.
func diamond(t *testing.T) *prog.Proc {
	t.Helper()
	b := prog.NewBuilder("diamond")
	b.Proc("main").Entry().
		Blt(isa.R(1), isa.R(2), "thenB").
		Label("elseB").Addi(isa.R(3), isa.R(3), 1).Jmp("join").
		Label("thenB").Addi(isa.R(3), isa.R(3), 2).
		Label("join").Addi(isa.R(4), isa.R(3), 0).
		Halt()
	p := b.MustBuild()
	return p.Procs[0]
}

// nestedLoops builds a doubly nested loop:
//
//	outer header -> inner header -> inner body (back to inner) -> outer latch
//	(back to outer) -> exit.
func nestedLoops(t *testing.T) *prog.Proc {
	t.Helper()
	b := prog.NewBuilder("nest")
	b.Proc("main").Entry().
		Li(isa.R(1), 0).
		Label("outer").
		Li(isa.R(2), 0).
		Label("inner").
		Addi(isa.R(2), isa.R(2), 1).
		Blt(isa.R(2), isa.R(9), "inner").
		Addi(isa.R(1), isa.R(1), 1).
		Blt(isa.R(1), isa.R(8), "outer").
		Halt()
	return b.MustBuild().Procs[0]
}

func TestDominatorsDiamond(t *testing.T) {
	p := diamond(t)
	d := ComputeDominators(p)
	// Entry dominates everything.
	for b := range p.Blocks {
		if !d.Dominates(0, b) {
			t.Errorf("entry must dominate block %d", b)
		}
	}
	// Join block: find the block labelled "join" — neither arm dominates it.
	var join, thenB, elseB int
	for _, blk := range p.Blocks {
		switch blk.Label {
		case "join":
			join = blk.ID
		case "thenB":
			thenB = blk.ID
		case "elseB":
			elseB = blk.ID
		}
	}
	if d.Dominates(thenB, join) || d.Dominates(elseB, join) {
		t.Errorf("neither arm may dominate the join")
	}
	if d.Idom[join] != 0 {
		t.Errorf("idom(join) = %d, want 0", d.Idom[join])
	}
}

func TestDominatorsProperties(t *testing.T) {
	p := nestedLoops(t)
	d := ComputeDominators(p)
	// Property: every reachable block is dominated by its idom, and the
	// idom chain reaches the entry.
	for b := range p.Blocks {
		if d.Idom[b] == -1 {
			continue
		}
		if !d.Dominates(d.Idom[b], b) {
			t.Errorf("idom(%d)=%d does not dominate %d", b, d.Idom[b], b)
		}
		steps := 0
		for x := b; x != 0; x = d.Idom[x] {
			if steps++; steps > len(p.Blocks) {
				t.Fatalf("idom chain from %d does not reach entry", b)
			}
		}
	}
}

func TestNestedLoopDetection(t *testing.T) {
	p := nestedLoops(t)
	a := Analyze(p)
	if len(a.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(a.Loops))
	}
	inner, outer := a.Loops[0], a.Loops[1]
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Fatalf("loops not sorted inner-first: %d vs %d blocks", len(inner.Blocks), len(outer.Blocks))
	}
	if inner.Parent != 1 {
		t.Errorf("inner.Parent = %d, want 1", inner.Parent)
	}
	if outer.Parent != -1 {
		t.Errorf("outer.Parent = %d, want -1", outer.Parent)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d,%d want 2,1", inner.Depth, outer.Depth)
	}
	// Exclusive blocks partition: inner blocks not in outer's exclusive set.
	for _, b := range inner.Blocks {
		for _, e := range outer.Exclusive {
			if e == b {
				t.Errorf("block %d owned by both loops", b)
			}
		}
	}
	// LoopOf of the inner header is the inner loop.
	if a.LoopOf[inner.Header] != 0 {
		t.Errorf("LoopOf(inner header) = %d, want 0", a.LoopOf[inner.Header])
	}
}

func TestDAGsSplitAtCalls(t *testing.T) {
	b := prog.NewBuilder("dags")
	b.Proc("main").Entry().
		Addi(isa.R(1), isa.R(1), 1).
		Call("f").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(3), isa.R(3), 1).
		Call("f").
		Addi(isa.R(4), isa.R(4), 1).
		Halt()
	b.Proc("f").Ret()
	p := b.MustBuild().Procs[0]
	a := Analyze(p)
	if len(a.Loops) != 0 {
		t.Fatalf("unexpected loops: %d", len(a.Loops))
	}
	// Regions: [entry, callblock], [after-call1, callblock2], [after-call2..halt].
	if len(a.DAGs) != 3 {
		t.Fatalf("DAGs = %v, want 3 regions", a.DAGs)
	}
	if a.DAGs[0][0] != 0 {
		t.Errorf("first DAG must start at entry")
	}
}

func TestDAGsExcludeLoopBlocks(t *testing.T) {
	p := nestedLoops(t)
	a := Analyze(p)
	for _, dag := range a.DAGs {
		for _, b := range dag {
			if a.LoopOf[b] != -1 {
				t.Errorf("DAG contains loop block %d", b)
			}
		}
	}
	// Every block is either in a loop or in exactly one DAG.
	seen := make([]int, len(p.Blocks))
	for _, dag := range a.DAGs {
		for _, b := range dag {
			seen[b]++
		}
	}
	for b := range p.Blocks {
		inLoop := a.LoopOf[b] != -1
		if inLoop && seen[b] != 0 {
			t.Errorf("loop block %d also in a DAG", b)
		}
		if !inLoop && seen[b] != 1 {
			t.Errorf("non-loop block %d in %d DAGs", b, seen[b])
		}
	}
}

func TestLoopEdgesAndExits(t *testing.T) {
	p := nestedLoops(t)
	a := Analyze(p)
	outer := a.Loops[1]
	inside, outside := outer.BackEdgePreds(p)
	if len(inside) != 1 || len(outside) != 1 {
		t.Fatalf("outer header preds: inside=%v outside=%v", inside, outside)
	}
	exits := outer.ExitTargets(p)
	if len(exits) != 1 {
		t.Fatalf("outer exits = %v, want 1", exits)
	}
	if outer.Contains(exits[0]) {
		t.Errorf("exit target inside loop")
	}
}

func TestReversePostorderProperty(t *testing.T) {
	// For DAG-shaped (acyclic) CFGs every edge goes forward in RPO.
	p := diamond(t)
	rpo := ReversePostorder(p)
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, blk := range p.Blocks {
		for _, s := range blk.Succs {
			if pos[s] <= pos[blk.ID] {
				t.Errorf("edge %d->%d not forward in RPO", blk.ID, s)
			}
		}
	}
}

// TestRandomChainPrograms exercises dominator invariants on generated
// straight-line programs with random forward branches.
func TestRandomChainPrograms(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%13) + 3
		b := prog.NewBuilder("rand")
		pb := b.Proc("main").Entry()
		for i := 0; i < n; i++ {
			pb.Addi(isa.R(1), isa.R(1), 1)
			if (seed>>(i%24))&1 == 1 && i < n-1 {
				pb.Blt(isa.R(1), isa.R(2), labelFor(i+1))
			}
			pb.Label(labelFor(i + 1))
		}
		pb.Halt()
		p, err := b.Build()
		if err != nil {
			return true // builder rejected a degenerate shape; fine
		}
		pr := p.Procs[0]
		d := ComputeDominators(pr)
		// Entry dominates all reachable blocks; idom is a proper dominator.
		for blk := range pr.Blocks {
			if d.Idom[blk] == -1 {
				continue
			}
			if !d.Dominates(0, blk) {
				return false
			}
			if blk != 0 && !d.Dominates(d.Idom[blk], blk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func labelFor(i int) string {
	return "L" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
