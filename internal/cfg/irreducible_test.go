package cfg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestIrreducibleGraphDoesNotPanic: a multi-entry cycle (irreducible
// control flow — jumping into the middle of a loop) has no natural loop
// by definition. The analysis must classify its blocks as DAG blocks
// rather than looping or crashing; the instrumentation then treats them
// per-block, which is safe (hints are performance hints, never
// correctness-bearing).
func TestIrreducibleGraphDoesNotPanic(t *testing.T) {
	// entry -> (A | B); A -> B; B -> A (via conditional); B -> exit.
	// The A<->B cycle has two entries, so neither header dominates the
	// other: no back edge in the dominator sense on the A->B->A cycle...
	// except the one whose header dominates. Construct carefully:
	b := prog.NewBuilder("irreducible")
	b.Proc("main").Entry().
		Blt(isa.R(1), isa.R(2), "B"). // jump into the "middle"
		Label("A").
		Addi(isa.R(3), isa.R(3), 1).
		Label("B").
		Addi(isa.R(4), isa.R(4), 1).
		Blt(isa.R(4), isa.R(9), "A"). // cycle A<->B entered at both A and B
		Halt()
	p := b.MustBuild()
	pr := p.Procs[0]
	a := Analyze(pr)
	// Whatever the loop classification, every block must be covered
	// exactly once (loop-exclusive or DAG).
	covered := make([]int, len(pr.Blocks))
	for _, l := range a.Loops {
		for _, blk := range l.Exclusive {
			covered[blk]++
		}
	}
	for _, dag := range a.DAGs {
		for _, blk := range dag {
			covered[blk]++
		}
	}
	for blk, c := range covered {
		if c != 1 {
			t.Errorf("block %d covered %d times", blk, c)
		}
	}
}

// TestUnreachableBlocksTolerated: blocks never reached (dead code after
// an unconditional jump) must not break dominators or loop finding.
func TestUnreachableBlocksTolerated(t *testing.T) {
	b := prog.NewBuilder("dead")
	b.Proc("main").Entry().
		Jmp("end").
		Label("orphan"). // unreachable
		Addi(isa.R(1), isa.R(1), 1).
		Label("end").
		Halt()
	p := b.MustBuild()
	pr := p.Procs[0]
	d := ComputeDominators(pr)
	var orphan int
	for _, blk := range pr.Blocks {
		if blk.Label == "orphan" {
			orphan = blk.ID
		}
	}
	if d.Idom[orphan] != -1 {
		t.Errorf("unreachable block has idom %d, want -1", d.Idom[orphan])
	}
	if d.Dominates(orphan, 0) {
		t.Error("unreachable block must dominate nothing reachable")
	}
	a := Analyze(pr)
	if len(a.Loops) != 0 {
		t.Errorf("dead code created loops: %v", a.Loops)
	}
}

// TestSelfLoop: a block branching to itself is a one-block natural loop.
func TestSelfLoop(t *testing.T) {
	b := prog.NewBuilder("self")
	b.Proc("main").Entry().
		Li(isa.R(1), 10).
		Label("spin").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "spin").
		Halt()
	p := b.MustBuild()
	a := Analyze(p.Procs[0])
	if len(a.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(a.Loops))
	}
	l := a.Loops[0]
	if len(l.Blocks) != 1 || l.Blocks[0] != l.Header {
		t.Errorf("self loop blocks = %v header %d", l.Blocks, l.Header)
	}
	inside, outside := l.BackEdgePreds(p.Procs[0])
	if len(inside) != 1 || len(outside) != 1 {
		t.Errorf("self loop preds: inside=%v outside=%v", inside, outside)
	}
}
