// Package cfg provides the control-flow analyses the paper's compiler pass
// needs (section 4.1): dominator computation, natural-loop identification
// with proper nesting (an inner loop's blocks are analysed once, in the
// inner loop only), and decomposition of the remaining blocks into DAGs
// that start at the procedure entry or immediately after a procedure call.
package cfg

import (
	"sort"

	"repro/internal/prog"
)

// Dominators holds the immediate-dominator tree of a procedure's CFG.
// Idom[b] is the immediate dominator of block b; the entry block's idom is
// itself. Unreachable blocks have Idom -1.
type Dominators struct {
	Idom []int
}

// ComputeDominators computes dominators with the Cooper/Harvey/Kennedy
// iterative algorithm over a reverse postorder.
func ComputeDominators(p *prog.Proc) *Dominators {
	n := len(p.Blocks)
	rpo := ReversePostorder(p)
	order := make([]int, n) // block -> rpo position; -1 if unreachable
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, pred := range p.Blocks[b].Preds {
				if idom[pred] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pred
				} else {
					newIdom = intersect(idom, order, pred, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &Dominators{Idom: idom}
}

func intersect(idom, order []int, a, b int) int {
	for a != b {
		for order[a] > order[b] {
			a = idom[a]
		}
		for order[b] > order[a] {
			b = idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b.
func (d *Dominators) Dominates(a, b int) bool {
	if d.Idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = d.Idom[b]
	}
}

// ReversePostorder returns the reachable blocks of p in reverse postorder
// (entry first, predecessors generally before successors).
func ReversePostorder(p *prog.Proc) []int {
	n := len(p.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range p.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Loop is one natural loop of a procedure. Blocks is sorted ascending and
// includes the header. Exclusive holds the blocks belonging to this loop
// but not to any nested inner loop — those are the blocks the paper's loop
// analysis owns (section 4.1: inner loops are considered separately).
type Loop struct {
	Header    int
	Blocks    []int
	Exclusive []int
	Parent    int // index into Loops; -1 for top-level loops
	Depth     int // 1 = outermost
}

// Analysis bundles the control-flow structure of one procedure: its
// dominator tree, natural loops (inner loops first), and the DAG regions
// covering all blocks not owned by any loop.
type Analysis struct {
	Proc  *prog.Proc
	Dom   *Dominators
	Loops []*Loop
	// LoopOf maps each block to the index of the innermost loop owning
	// it, or -1 if the block belongs to a DAG region.
	LoopOf []int
	// DAGs are the maximal regions of non-loop blocks, each starting at
	// the procedure entry or the block after a call, in layout order.
	DAGs [][]int
}

// Analyze computes the full control-flow structure of a procedure.
func Analyze(p *prog.Proc) *Analysis {
	dom := ComputeDominators(p)
	loops := findLoops(p, dom)
	loopOf := make([]int, len(p.Blocks))
	for i := range loopOf {
		loopOf[i] = -1
	}
	// Loops are sorted inner-first (by block count ascending), so the
	// first loop claiming a block is the innermost.
	for li, l := range loops {
		for _, b := range l.Blocks {
			if loopOf[b] == -1 {
				loopOf[b] = li
			}
		}
	}
	for li, l := range loops {
		for _, b := range l.Blocks {
			if loopOf[b] == li {
				l.Exclusive = append(l.Exclusive, b)
			}
		}
	}
	nestLoops(loops)
	return &Analysis{
		Proc:   p,
		Dom:    dom,
		Loops:  loops,
		LoopOf: loopOf,
		DAGs:   findDAGs(p, loopOf),
	}
}

// findLoops identifies natural loops from back edges (edge t->h where h
// dominates t), merging loops that share a header.
func findLoops(p *prog.Proc, dom *Dominators) []*Loop {
	byHeader := map[int]map[int]bool{}
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if dom.Dominates(s, b.ID) {
				body := byHeader[s]
				if body == nil {
					body = map[int]bool{s: true}
					byHeader[s] = body
				}
				collectLoop(p, body, b.ID)
			}
		}
	}
	var loops []*Loop
	for h, body := range byHeader {
		l := &Loop{Header: h, Parent: -1}
		for b := range body {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Ints(l.Blocks)
		loops = append(loops, l)
	}
	// Inner loops (fewer blocks) first; ties by header for determinism.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return loops[i].Header < loops[j].Header
	})
	return loops
}

// collectLoop walks predecessors from the back-edge tail until the header.
func collectLoop(p *prog.Proc, body map[int]bool, tail int) {
	if body[tail] {
		return
	}
	body[tail] = true
	stack := []int{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pred := range p.Blocks[b].Preds {
			if !body[pred] {
				body[pred] = true
				stack = append(stack, pred)
			}
		}
	}
}

func nestLoops(loops []*Loop) {
	contains := func(outer, inner *Loop) bool {
		m := map[int]bool{}
		for _, b := range outer.Blocks {
			m[b] = true
		}
		for _, b := range inner.Blocks {
			if !m[b] {
				return false
			}
		}
		return true
	}
	for i, l := range loops {
		// The smallest strictly-larger loop containing l is its parent;
		// loops are sorted by size so scan forward.
		for j := i + 1; j < len(loops); j++ {
			if len(loops[j].Blocks) > len(l.Blocks) && contains(loops[j], l) {
				l.Parent = j
				break
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != -1; p = loops[p].Parent {
			d++
		}
		l.Depth = d
	}
}

// findDAGs groups non-loop blocks into DAG regions. A region starts at the
// procedure entry or at a block whose layout predecessor ends in a call
// (paper section 4.1), and extends in layout order over consecutive
// non-loop blocks.
func findDAGs(p *prog.Proc, loopOf []int) [][]int {
	var dags [][]int
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			dags = append(dags, cur)
			cur = nil
		}
	}
	for i, b := range p.Blocks {
		if loopOf[i] != -1 {
			flush()
			continue
		}
		if i > 0 {
			prev := p.Blocks[i-1]
			if last := prev.Last(); last != nil && last.Op.IsCall() {
				flush() // a new DAG starts immediately after a call
			}
		}
		cur = append(cur, b.ID)
	}
	flush()
	return dags
}

// BackEdgePreds returns the predecessors of the loop header that are
// inside the loop (back edges), and those outside (entry edges).
func (l *Loop) BackEdgePreds(p *prog.Proc) (inside, outside []int) {
	in := map[int]bool{}
	for _, b := range l.Blocks {
		in[b] = true
	}
	for _, pred := range p.Blocks[l.Header].Preds {
		if in[pred] {
			inside = append(inside, pred)
		} else {
			outside = append(outside, pred)
		}
	}
	return inside, outside
}

// Contains reports whether the loop contains block b.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// ExitTargets returns the blocks outside the loop that are successors of
// loop blocks (the places control goes when the loop finishes).
func (l *Loop) ExitTargets(p *prog.Proc) []int {
	var out []int
	seen := map[int]bool{}
	for _, b := range l.Blocks {
		for _, s := range p.Blocks[b].Succs {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Ints(out)
	return out
}

// IsLoopExitBlock is a convenience for hint placement: it reports whether
// block b (not in any loop) is a target of a loop exit edge.
func IsLoopExitBlock(a *Analysis, b int) bool {
	for _, l := range a.Loops {
		for _, t := range l.ExitTargets(a.Proc) {
			if t == b {
				return true
			}
		}
	}
	return false
}
