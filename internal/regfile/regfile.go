// Package regfile implements a banked physical register file with a
// rename map and a lowest-first free list. The paper's processor (table 1)
// has 112 integer and 112 floating-point physical registers arranged as 14
// banks of 8; banks holding no live register are gated off for static
// power, and the paper's technique shrinks the live-register population by
// throttling dispatch (section 5.2.3). Lowest-first allocation keeps live
// registers packed in the low banks so that reduced pressure actually
// empties banks, matching the banked organisations of Abella & González.
package regfile

import (
	"fmt"
	"math/bits"
)

// Config sizes the file.
type Config struct {
	Regs     int // physical registers
	BankSize int
	ArchRegs int // architectural registers initially mapped and live
}

// DefaultConfig is the paper's integer register file: 112 regs in 14
// banks of 8, backing 32 architectural registers.
func DefaultConfig() Config { return Config{Regs: 112, BankSize: 8, ArchRegs: 32} }

// Stats accumulates power-relevant events.
type Stats struct {
	Reads      int64
	Writes     int64
	Allocs     int64
	AllocFails int64
	// Per-cycle samples via Tick.
	Cycles       int64
	LiveSum      int64
	BanksOnSum   int64
	BanksOnReads int64 // banks-on sample at each read, for access energy
}

// File is one physical register file.
type File struct {
	cfg       Config
	banks     int
	freeMask  []uint64 // bit set = free
	ready     []bool
	bankCount []int
	banksOn   int // banks with bankCount > 0
	live      int
	renameMap []int
	Stats     Stats
}

// New builds a file with the architectural registers mapped to physical
// 0..ArchRegs-1, all ready.
func New(cfg Config) (*File, error) {
	if cfg.Regs <= 0 || cfg.BankSize <= 0 || cfg.Regs%cfg.BankSize != 0 {
		return nil, fmt.Errorf("regfile: bad geometry regs=%d bankSize=%d", cfg.Regs, cfg.BankSize)
	}
	if cfg.ArchRegs < 0 || cfg.ArchRegs > cfg.Regs {
		return nil, fmt.Errorf("regfile: %d arch regs exceed %d physical", cfg.ArchRegs, cfg.Regs)
	}
	f := &File{
		cfg:       cfg,
		banks:     cfg.Regs / cfg.BankSize,
		freeMask:  make([]uint64, (cfg.Regs+63)/64),
		ready:     make([]bool, cfg.Regs),
		bankCount: make([]int, cfg.Regs/cfg.BankSize),
		renameMap: make([]int, cfg.ArchRegs),
	}
	for r := 0; r < cfg.Regs; r++ {
		f.setFree(r, true)
	}
	for a := 0; a < cfg.ArchRegs; a++ {
		f.setFree(a, false)
		f.ready[a] = true
		if f.bankCount[a/cfg.BankSize] == 0 {
			f.banksOn++
		}
		f.bankCount[a/cfg.BankSize]++
		f.live++
		f.renameMap[a] = a
	}
	return f, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *File {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *File) setFree(r int, free bool) {
	if free {
		f.freeMask[r/64] |= 1 << (r % 64)
	} else {
		f.freeMask[r/64] &^= 1 << (r % 64)
	}
}

// Capacity returns the physical register count.
func (f *File) Capacity() int { return f.cfg.Regs }

// Banks returns the bank count.
func (f *File) Banks() int { return f.banks }

// Live returns the number of allocated physical registers.
func (f *File) Live() int { return f.live }

// FreeCount returns the number of free physical registers.
func (f *File) FreeCount() int { return f.cfg.Regs - f.live }

// BanksOn returns the number of banks holding at least one live register.
// The count is maintained incrementally on allocate and free: it is read
// on every register access for the power accounting, so it must be O(1).
func (f *File) BanksOn() int { return f.banksOn }

// Allocate claims the lowest-numbered free register, not ready, and
// returns it; ok=false if none are free (a rename stall).
func (f *File) Allocate() (reg int, ok bool) {
	for w, mask := range f.freeMask {
		if mask == 0 {
			continue
		}
		r := w*64 + bits.TrailingZeros64(mask)
		if r >= f.cfg.Regs {
			break
		}
		f.setFree(r, false)
		f.ready[r] = false
		if f.bankCount[r/f.cfg.BankSize] == 0 {
			f.banksOn++
		}
		f.bankCount[r/f.cfg.BankSize]++
		f.live++
		f.Stats.Allocs++
		return r, true
	}
	f.Stats.AllocFails++
	return -1, false
}

// Free releases a register (at commit of the overwriting instruction).
func (f *File) Free(r int) {
	if r < 0 || r >= f.cfg.Regs {
		panic(fmt.Sprintf("regfile: free of bad register %d", r))
	}
	if f.isFree(r) {
		panic(fmt.Sprintf("regfile: double free of register %d", r))
	}
	f.setFree(r, true)
	f.ready[r] = false
	f.bankCount[r/f.cfg.BankSize]--
	if f.bankCount[r/f.cfg.BankSize] == 0 {
		f.banksOn--
	}
	f.live--
}

func (f *File) isFree(r int) bool { return f.freeMask[r/64]&(1<<(r%64)) != 0 }

// MarkReady records that the producer of r has written back.
func (f *File) MarkReady(r int) { f.ready[r] = true }

// IsReady reports whether the value in r is available.
func (f *File) IsReady(r int) bool { return f.ready[r] }

// Rename returns the current physical mapping of an architectural
// register.
func (f *File) Rename(arch int) int { return f.renameMap[arch] }

// SetRename installs a new mapping and returns the previous physical
// register (to be freed when the renaming instruction commits).
func (f *File) SetRename(arch, phys int) (prev int) {
	prev = f.renameMap[arch]
	f.renameMap[arch] = phys
	return prev
}

// Read counts a register read (at issue) with the current bank-on
// population, which scales access energy in the power model.
func (f *File) Read() {
	f.Stats.Reads++
	f.Stats.BanksOnReads += int64(f.BanksOn())
}

// Write counts a register write (at writeback).
func (f *File) Write() { f.Stats.Writes++ }

// Tick samples per-cycle occupancy statistics.
func (f *File) Tick() {
	f.Stats.Cycles++
	f.Stats.LiveSum += int64(f.live)
	f.Stats.BanksOnSum += int64(f.BanksOn())
}

// CheckInvariants recomputes derived state; tests call it after random
// operation sequences.
func (f *File) CheckInvariants() error {
	live := 0
	bank := make([]int, f.banks)
	for r := 0; r < f.cfg.Regs; r++ {
		if !f.isFree(r) {
			live++
			bank[r/f.cfg.BankSize]++
		}
	}
	if live != f.live {
		return fmt.Errorf("live %d != recomputed %d", f.live, live)
	}
	banksOn := 0
	for _, c := range f.bankCount {
		if c > 0 {
			banksOn++
		}
	}
	if banksOn != f.banksOn {
		return fmt.Errorf("banksOn %d != recomputed %d", f.banksOn, banksOn)
	}
	for b := range bank {
		if bank[b] != f.bankCount[b] {
			return fmt.Errorf("bank %d count %d != recomputed %d", b, f.bankCount[b], bank[b])
		}
	}
	seen := map[int]bool{}
	for a, p := range f.renameMap {
		if p < 0 || p >= f.cfg.Regs {
			return fmt.Errorf("arch %d maps to bad phys %d", a, p)
		}
		if f.isFree(p) {
			return fmt.Errorf("arch %d maps to free phys %d", a, p)
		}
		if seen[p] {
			return fmt.Errorf("phys %d mapped twice", p)
		}
		seen[p] = true
	}
	return nil
}
