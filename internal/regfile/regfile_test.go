package regfile

import (
	"math/rand"
	"testing"
)

func TestInitialState(t *testing.T) {
	f := MustNew(DefaultConfig())
	if f.Live() != 32 {
		t.Errorf("live = %d, want 32 arch regs", f.Live())
	}
	if f.BanksOn() != 4 {
		t.Errorf("banks on = %d, want 4 (32 regs / 8 per bank)", f.BanksOn())
	}
	for a := 0; a < 32; a++ {
		if f.Rename(a) != a {
			t.Errorf("arch %d maps to %d initially", a, f.Rename(a))
		}
		if !f.IsReady(a) {
			t.Errorf("initial arch reg %d not ready", a)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocateLowestFirst(t *testing.T) {
	f := MustNew(DefaultConfig())
	r, ok := f.Allocate()
	if !ok || r != 32 {
		t.Fatalf("first alloc = %d,%v want 32 (lowest free)", r, ok)
	}
	r2, _ := f.Allocate()
	if r2 != 33 {
		t.Fatalf("second alloc = %d, want 33", r2)
	}
	f.Free(r)
	r3, _ := f.Allocate()
	if r3 != 32 {
		t.Fatalf("alloc after free = %d, want 32 (reuse lowest)", r3)
	}
}

func TestExhaustion(t *testing.T) {
	f := MustNew(Config{Regs: 40, BankSize: 8, ArchRegs: 32})
	var got []int
	for {
		r, ok := f.Allocate()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 8 {
		t.Fatalf("allocated %d, want 8", len(got))
	}
	if f.Stats.AllocFails != 1 {
		t.Errorf("alloc fails = %d, want 1", f.Stats.AllocFails)
	}
	f.Free(got[3])
	if _, ok := f.Allocate(); !ok {
		t.Error("allocation after free must succeed")
	}
}

func TestBankGatingTracksPressure(t *testing.T) {
	f := MustNew(DefaultConfig())
	var regs []int
	// Allocate 40 more: live = 72 -> 9 banks.
	for i := 0; i < 40; i++ {
		r, ok := f.Allocate()
		if !ok {
			t.Fatal("unexpected exhaustion")
		}
		regs = append(regs, r)
	}
	if f.BanksOn() != 9 {
		t.Errorf("banks on = %d, want 9", f.BanksOn())
	}
	// Free them all: back to 4 banks.
	for _, r := range regs {
		f.Free(r)
	}
	if f.BanksOn() != 4 {
		t.Errorf("banks on after free = %d, want 4", f.BanksOn())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRenameCycle(t *testing.T) {
	f := MustNew(DefaultConfig())
	// Rename arch 5 twice as a pipeline would.
	p1, _ := f.Allocate()
	prev1 := f.SetRename(5, p1)
	if prev1 != 5 {
		t.Fatalf("prev mapping = %d, want 5", prev1)
	}
	p2, _ := f.Allocate()
	prev2 := f.SetRename(5, p2)
	if prev2 != p1 {
		t.Fatalf("prev mapping = %d, want %d", prev2, p1)
	}
	// Commit of the second renamer frees prev2.
	f.MarkReady(p1)
	f.MarkReady(p2)
	f.Free(prev1) // first renamer commits, frees original arch mapping
	f.Free(prev2)
	if f.Live() != 32 {
		t.Errorf("live = %d, want 32 after both commits", f.Live())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	f := MustNew(DefaultConfig())
	r, _ := f.Allocate()
	f.Free(r)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	f.Free(r)
}

func TestReadyLifecycle(t *testing.T) {
	f := MustNew(DefaultConfig())
	r, _ := f.Allocate()
	if f.IsReady(r) {
		t.Error("fresh allocation must not be ready")
	}
	f.MarkReady(r)
	if !f.IsReady(r) {
		t.Error("MarkReady did not take")
	}
	f.Free(r)
	r2, _ := f.Allocate()
	if r2 == r && f.IsReady(r2) {
		t.Error("reused register leaked ready state")
	}
}

func TestStatsSampling(t *testing.T) {
	f := MustNew(DefaultConfig())
	f.Read()
	f.Read()
	f.Write()
	f.Tick()
	if f.Stats.Reads != 2 || f.Stats.Writes != 1 || f.Stats.Cycles != 1 {
		t.Errorf("stats = %+v", f.Stats)
	}
	if f.Stats.LiveSum != 32 || f.Stats.BanksOnSum != 4 {
		t.Errorf("samples = live %d banks %d", f.Stats.LiveSum, f.Stats.BanksOnSum)
	}
	if f.Stats.BanksOnReads != 8 {
		t.Errorf("banksOnReads = %d, want 8", f.Stats.BanksOnReads)
	}
}

func TestRandomisedLifecycleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := MustNew(Config{Regs: 48, BankSize: 8, ArchRegs: 16})
	var allocated []int
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 {
			if r, ok := f.Allocate(); ok {
				allocated = append(allocated, r)
				if rng.Intn(2) == 0 {
					f.MarkReady(r)
				}
			}
		} else if len(allocated) > 0 {
			i := rng.Intn(len(allocated))
			f.Free(allocated[i])
			allocated[i] = allocated[len(allocated)-1]
			allocated = allocated[:len(allocated)-1]
		}
		if step%500 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if f.Live() != 16+len(allocated) {
		t.Errorf("live = %d, want %d", f.Live(), 16+len(allocated))
	}
}

func TestBadGeometry(t *testing.T) {
	if _, err := New(Config{Regs: 50, BankSize: 8, ArchRegs: 32}); err == nil {
		t.Error("accepted regs not multiple of bank size")
	}
	if _, err := New(Config{Regs: 16, BankSize: 8, ArchRegs: 32}); err == nil {
		t.Error("accepted arch > phys")
	}
}
