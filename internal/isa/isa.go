// Package isa defines the instruction set architecture used throughout the
// reproduction: a small load/store RISC ISA with integer and floating-point
// register files, compare-and-branch control flow, direct calls, and a
// special hint NOOP that carries an issue-queue size in otherwise unused
// bits (the mechanism of Jones et al., HPCA 2005, section 3). Every real
// instruction also has spare encoding bits that can carry the same hint,
// which implements the paper's "Extension" tagging scheme.
package isa

import "fmt"

// Reg names an architectural register. Registers 0..IntRegs-1 are the
// integer file (R0 is hardwired to zero); registers IntRegs..IntRegs+FPRegs-1
// are the floating-point file. RegNone marks an absent operand.
type Reg uint8

// Architectural register file sizes.
const (
	IntRegs = 32
	FPRegs  = 32

	// RegNone marks "no register" for unused operand slots.
	RegNone Reg = 255
)

// RZero is the hardwired-zero integer register.
const RZero Reg = 0

// IsInt reports whether r is an integer architectural register.
func (r Reg) IsInt() bool { return r < IntRegs }

// IsFP reports whether r is a floating-point architectural register.
func (r Reg) IsFP() bool { return r >= IntRegs && r < IntRegs+FPRegs }

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < IntRegs+FPRegs }

// FP returns the i'th floating-point register.
func FP(i int) Reg { return Reg(IntRegs + i) }

// R returns the i'th integer register.
func R(i int) Reg { return Reg(i) }

// String returns the assembler name of the register (r0..r31, f0..f31).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-IntRegs)
	default:
		return fmt.Sprintf("reg?%d", int(r))
	}
}

// Op is an operation code.
type Op uint8

// Operation codes. The set intentionally mirrors what the paper's analysis
// distinguishes: single-cycle integer ALU ops, multi-cycle multiplies and
// divides, floating point ops with their own units, memory operations,
// control flow, and the special hint NOOP.
const (
	Nop Op = iota
	// HintNop is the paper's special NOOP: it encodes max_new_range in
	// unused bits, is never executed, and is stripped at the final decode
	// stage before dispatch (consuming a dispatch slot).
	HintNop

	// Integer ALU (1 cycle).
	Li   // dst = imm
	Mov  // dst = src1
	Add  // dst = src1 + src2
	Sub  // dst = src1 - src2
	And  // dst = src1 & src2
	Or   // dst = src1 | src2
	Xor  // dst = src1 ^ src2
	Shl  // dst = src1 << (src2 & 63)
	Shr  // dst = src1 >> (src2 & 63) (logical)
	Slt  // dst = src1 < src2 ? 1 : 0
	Addi // dst = src1 + imm
	Andi // dst = src1 & imm
	Xori // dst = src1 ^ imm
	Shli // dst = src1 << imm
	Shri // dst = src1 >> imm
	Slti // dst = src1 < imm ? 1 : 0

	// Integer multiply/divide (multi-cycle, uses the Mul units).
	Mul  // dst = src1 * src2
	Muli // dst = src1 * imm
	Div  // dst = src1 / src2 (0 if src2 == 0)
	Rem  // dst = src1 % src2 (0 if src2 == 0)

	// Floating point.
	FAdd // dst = src1 + src2
	FSub // dst = src1 - src2
	FMul // dst = src1 * src2
	FDiv // dst = src1 / src2
	FMov // dst = src1
	ItoF // dst(fp) = float(src1(int))
	FtoI // dst(int) = int(src1(fp))

	// Memory. Effective address = src1 + imm. Ld/St move integer words;
	// LdF/StF move floats. St stores src2 to [src1+imm].
	Ld
	St
	LdF
	StF

	// Control flow. Conditional branches compare src1 against src2 and
	// jump to Target (a block index before linking, a PC after).
	Beq
	Bne
	Blt // signed less-than
	Bge // signed greater-or-equal
	Jmp

	// Call transfers to procedure Target; Ret returns to the caller.
	// CallLib marks a call to an opaque "library" routine: the paper's
	// analysis gives up before these and allows the IQ its maximum size.
	Call
	CallLib
	Ret

	// Halt terminates the program.
	Halt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Class groups opcodes by the functional unit / pipeline treatment they
// receive; it matches the resource classes of the paper's table 1.
type Class uint8

// Functional-unit classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // the "3 Mul" units; also used (with longer latency) by Div/Rem
	ClassFPALU
	ClassFPMulDiv
	ClassLoad
	ClassStore
	ClassBranch // executes on an integer ALU
	ClassCtrl   // call/ret/jmp; executes on an integer ALU
	ClassHalt
	NumClasses
)

var opClass = [NumOps]Class{
	Nop:     ClassNop,
	HintNop: ClassNop,
	Li:      ClassIntALU, Mov: ClassIntALU, Add: ClassIntALU, Sub: ClassIntALU,
	And: ClassIntALU, Or: ClassIntALU, Xor: ClassIntALU, Shl: ClassIntALU,
	Shr: ClassIntALU, Slt: ClassIntALU, Addi: ClassIntALU, Andi: ClassIntALU,
	Xori: ClassIntALU, Shli: ClassIntALU, Shri: ClassIntALU, Slti: ClassIntALU,
	Mul: ClassIntMul, Muli: ClassIntMul, Div: ClassIntMul, Rem: ClassIntMul,
	FAdd: ClassFPALU, FSub: ClassFPALU, FMov: ClassFPALU, ItoF: ClassFPALU, FtoI: ClassFPALU,
	FMul: ClassFPMulDiv, FDiv: ClassFPMulDiv,
	Ld: ClassLoad, LdF: ClassLoad,
	St: ClassStore, StF: ClassStore,
	Beq: ClassBranch, Bne: ClassBranch, Blt: ClassBranch, Bge: ClassBranch,
	Jmp: ClassCtrl, Call: ClassCtrl, CallLib: ClassCtrl, Ret: ClassCtrl,
	Halt: ClassHalt,
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() Class {
	if int(o) < NumOps {
		return opClass[o]
	}
	return ClassNop
}

// Latency returns the execution latency, in cycles, the compiler assumes
// for the opcode (paper table 1; loads assume an L1 hit, per section 4.2).
func (o Op) Latency() int {
	switch o.Class() {
	case ClassIntALU, ClassBranch, ClassCtrl:
		return 1
	case ClassIntMul:
		if o == Div || o == Rem {
			return 12
		}
		return 3
	case ClassFPALU:
		return 2
	case ClassFPMulDiv:
		if o == FDiv {
			return 12
		}
		return 4
	case ClassLoad:
		return 2 // L1 D-cache hit
	case ClassStore:
		return 1 // address generation
	default:
		return 1
	}
}

// IsBranch reports whether the op is a conditional branch.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCtrl reports whether the op unconditionally changes control flow.
func (o Op) IsCtrl() bool { return o.Class() == ClassCtrl }

// IsCall reports whether the op is a procedure call (library or not).
func (o Op) IsCall() bool { return o == Call || o == CallLib }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { c := o.Class(); return c == ClassLoad || c == ClassStore }

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// HasImm reports whether the opcode uses its immediate operand.
func (o Op) HasImm() bool {
	switch o {
	case Li, Addi, Andi, Xori, Shli, Shri, Slti, Muli, Ld, St, LdF, StF, HintNop:
		return true
	}
	return false
}

var opNames = [NumOps]string{
	Nop: "nop", HintNop: "hint",
	Li: "li", Mov: "mov", Add: "add", Sub: "sub", And: "and", Or: "or",
	Xor: "xor", Shl: "shl", Shr: "shr", Slt: "slt",
	Addi: "addi", Andi: "andi", Xori: "xori", Shli: "shli", Shri: "shri", Slti: "slti",
	Mul: "mul", Muli: "muli", Div: "div", Rem: "rem",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FMov: "fmov",
	ItoF: "itof", FtoI: "ftoi",
	Ld: "ld", St: "st", LdF: "ldf", StF: "stf",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Jmp: "jmp",
	Call: "call", CallLib: "calllib", Ret: "ret", Halt: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// OpByName maps assembler mnemonics back to opcodes; unknown names return
// (0, false).
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

var classNames = [NumClasses]string{
	ClassNop: "nop", ClassIntALU: "ialu", ClassIntMul: "imul",
	ClassFPALU: "falu", ClassFPMulDiv: "fmul", ClassLoad: "load",
	ClassStore: "store", ClassBranch: "branch", ClassCtrl: "ctrl",
	ClassHalt: "halt",
}

// String returns a short class name.
func (c Class) String() string {
	if int(c) < int(NumClasses) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", int(c))
}

// InstBytes is the size of one encoded instruction; program counters
// advance by this amount and instruction-cache lines are multiples of it.
const InstBytes = 4
