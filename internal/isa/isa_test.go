package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	if !R(0).IsInt() || R(0) != RZero {
		t.Fatalf("r0 must be the integer zero register")
	}
	if !R(31).IsInt() || R(31).IsFP() {
		t.Errorf("r31 misclassified")
	}
	if !FP(0).IsFP() || FP(0).IsInt() {
		t.Errorf("f0 misclassified")
	}
	if !FP(31).Valid() || FP(31).String() != "f31" {
		t.Errorf("f31: valid=%v string=%q", FP(31).Valid(), FP(31).String())
	}
	if RegNone.Valid() {
		t.Errorf("RegNone must be invalid")
	}
	if got := RegNone.String(); got != "-" {
		t.Errorf("RegNone.String() = %q, want -", got)
	}
	if got := R(7).String(); got != "r7" {
		t.Errorf("r7 string = %q", got)
	}
}

func TestOpClassesTotal(t *testing.T) {
	// Every op must have a class and a name.
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
		if op.Latency() < 1 {
			t.Errorf("op %v latency %d < 1", op, op.Latency())
		}
	}
}

func TestOpRoundTripNames(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Errorf("OpByName accepted bogus mnemonic")
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		op                                       Op
		branch, ctrl, call, mem, load, store, im bool
	}{
		{Add, false, false, false, false, false, false, false},
		{Addi, false, false, false, false, false, false, true},
		{Beq, true, false, false, false, false, false, false},
		{Jmp, false, true, false, false, false, false, false},
		{Call, false, true, true, false, false, false, false},
		{CallLib, false, true, true, false, false, false, false},
		{Ret, false, true, false, false, false, false, false},
		{Ld, false, false, false, true, true, false, true},
		{St, false, false, false, true, false, true, true},
		{LdF, false, false, false, true, true, false, true},
		{StF, false, false, false, true, false, true, true},
		{HintNop, false, false, false, false, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v IsBranch=%v want %v", c.op, c.op.IsBranch(), c.branch)
		}
		if c.op.IsCtrl() != c.ctrl {
			t.Errorf("%v IsCtrl=%v want %v", c.op, c.op.IsCtrl(), c.ctrl)
		}
		if c.op.IsCall() != c.call {
			t.Errorf("%v IsCall=%v want %v", c.op, c.op.IsCall(), c.call)
		}
		if c.op.IsMem() != c.mem {
			t.Errorf("%v IsMem=%v want %v", c.op, c.op.IsMem(), c.mem)
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%v IsLoad=%v want %v", c.op, c.op.IsLoad(), c.load)
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v IsStore=%v want %v", c.op, c.op.IsStore(), c.store)
		}
		if c.op.HasImm() != c.im {
			t.Errorf("%v HasImm=%v want %v", c.op, c.op.HasImm(), c.im)
		}
	}
}

func TestLatenciesMatchTable1(t *testing.T) {
	// Paper table 1: int ALU 1 cycle, Mul 3 cycles, FP ALU 2 cycles,
	// FP mult 4 cycles, FP div 12 cycles; L1 D hit 2 cycles.
	if Add.Latency() != 1 {
		t.Errorf("int alu latency %d want 1", Add.Latency())
	}
	if Mul.Latency() != 3 {
		t.Errorf("int mul latency %d want 3", Mul.Latency())
	}
	if FAdd.Latency() != 2 {
		t.Errorf("fp alu latency %d want 2", FAdd.Latency())
	}
	if FMul.Latency() != 4 {
		t.Errorf("fp mul latency %d want 4", FMul.Latency())
	}
	if FDiv.Latency() != 12 {
		t.Errorf("fp div latency %d want 12", FDiv.Latency())
	}
	if Ld.Latency() != 2 {
		t.Errorf("load latency %d want 2", Ld.Latency())
	}
}

func TestRegStringNeverPanics(t *testing.T) {
	f := func(r uint8) bool {
		return Reg(r).String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpClassNeverPanics(t *testing.T) {
	f := func(o uint8) bool {
		op := Op(o)
		_ = op.Class()
		_ = op.String()
		return op.Latency() >= 1 || !false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}
