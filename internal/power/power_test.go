package power

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// mkStats builds a synthetic stats record with the given IQ activity.
func mkStats(cycles, insts, broadcasts, gated, nonEmpty, ungated, banksOnSum int64) sim.Stats {
	var s sim.Stats
	s.Cycles = cycles
	s.CommittedReal = insts
	s.IQ.Broadcasts = broadcasts
	s.IQ.GatedWakeups = gated
	s.IQ.NonEmptyWakeups = nonEmpty
	s.IQ.UngatedWakeups = ungated
	s.IQ.Issues = insts
	s.IQ.Dispatches = insts
	s.IQ.BanksOnSum = banksOnSum
	s.IQ.Cycles = cycles
	s.IntRF.Reads = 2 * insts
	s.IntRF.Writes = insts
	s.IntRF.Cycles = cycles
	s.IntRF.BanksOnSum = 14 * cycles
	s.IntRF.BanksOnReads = 14 * 2 * insts
	return s
}

func TestGatingHierarchyOrdersEnergy(t *testing.T) {
	p := DefaultParams()
	s := mkStats(1000, 2000, 2000, 10_000, 50_000, 320_000, 10_000)
	eU := p.IQDynamic(&s, Ungated)
	eN := p.IQDynamic(&s, NonEmpty)
	eG := p.IQDynamic(&s, Gated)
	if !(eU > eN && eN > eG) {
		t.Errorf("energy ordering violated: %f %f %f", eU, eN, eG)
	}
}

func TestIdenticalRunsZeroSavings(t *testing.T) {
	p := DefaultParams()
	s := mkStats(1000, 2000, 2000, 320_000, 320_000, 320_000, 10*1000)
	// Technique identical to baseline (same wakeups, all banks on):
	sv := p.Compute(&s, &s, 10, 14)
	if math.Abs(sv.IQDynamicPct) > 1e-9 {
		t.Errorf("IQ dynamic savings = %f, want 0", sv.IQDynamicPct)
	}
	if math.Abs(sv.IQStaticPct) > 1e-9 {
		t.Errorf("IQ static savings = %f, want 0", sv.IQStaticPct)
	}
	if math.Abs(sv.RFStaticPct) > 1e-9 {
		t.Errorf("RF static savings = %f, want 0", sv.RFStaticPct)
	}
	// RF dynamic: baseline ungateable vs technique with all banks on:
	// alpha + (1-alpha)*1 = 1 -> zero saving.
	if math.Abs(sv.RFDynamicPct) > 1e-9 {
		t.Errorf("RF dynamic savings = %f, want 0", sv.RFDynamicPct)
	}
}

func TestStaticSavingTracksBanksOff(t *testing.T) {
	p := DefaultParams()
	base := mkStats(1000, 2000, 2000, 0, 0, 320_000, 10*1000)
	tech := base
	// Technique keeps 6.3 of 10 banks on (37% off).
	tech.IQ.BanksOnSum = 6300
	sv := p.Compute(&base, &tech, 10, 14)
	// Expected: banked leakage falls 37%, fixed overhead (15%) unaffected:
	// saving = 0.85 * 37% = 31.45% — the paper's internal consistency
	// (37% banks off -> 31% static saving).
	if math.Abs(sv.IQStaticPct-31.45) > 0.5 {
		t.Errorf("IQ static saving = %.2f%%, want ~31.4%%", sv.IQStaticPct)
	}
}

func TestWakeupShareCalibration(t *testing.T) {
	// At IPC=2 with ~2 broadcasts/cycle, the ungated baseline should be
	// wakeup-dominated at roughly the calibrated 55/30/15 split.
	p := DefaultParams()
	cycles := int64(1000)
	insts := 2 * cycles
	s := mkStats(cycles, insts, insts, 0, 0, insts*160, 10*cycles)
	wake := p.IQWakeupPerOp * float64(s.IQ.UngatedWakeups)
	ram := p.IQReadPerIssue*float64(s.IQ.Issues) + p.IQWritePerDispatch*float64(s.IQ.Dispatches)
	sel := p.IQSelectPerIssue * float64(s.IQ.Issues)
	total := wake + ram + sel
	if share := wake / total; share < 0.55 || share > 0.7 {
		t.Errorf("wakeup share = %.2f, want ~0.6", share)
	}
	if share := ram / total; share < 0.15 || share > 0.3 {
		t.Errorf("RAM share = %.2f, want ~0.22", share)
	}
}

func TestNonEmptyBarBetweenZeroAndGatedSaving(t *testing.T) {
	p := DefaultParams()
	base := mkStats(1000, 2000, 2000, 30_000, 180_000, 320_000, 10_000)
	ne := p.NonEmptySavings(&base)
	full := pct(p.IQDynamic(&base, Ungated), p.IQDynamic(&base, Gated))
	if ne <= 0 || ne >= full {
		t.Errorf("nonEmpty %.1f%% must be within (0, %.1f%%)", ne, full)
	}
}

func TestRFDynamicScalesWithBanks(t *testing.T) {
	p := DefaultParams()
	s := mkStats(1000, 2000, 2000, 0, 0, 0, 10_000)
	full := p.RFDynamic(&s, 14, true) // all 14 banks on at every read
	s.IntRF.BanksOnReads = 7 * 2 * 2000
	s.IntRF.BanksOnSum = 7 * 1000
	half := p.RFDynamic(&s, 14, true)
	if half >= full {
		t.Errorf("halving banks-on must cut access energy: %f vs %f", half, full)
	}
	// With alpha=0.2, halving banks saves (1-0.2)*0.5 = 40%.
	saving := 1 - half/full
	if math.Abs(saving-0.4) > 0.01 {
		t.Errorf("saving = %.3f, want 0.40", saving)
	}
}

func TestSlowerRunLeaksMore(t *testing.T) {
	p := DefaultParams()
	fast := mkStats(1000, 2000, 2000, 0, 0, 0, 10*1000)
	slow := mkStats(1300, 2000, 2000, 0, 0, 0, 10*1300)
	if p.IQStatic(&slow, 10, false) <= p.IQStatic(&fast, 10, false) {
		t.Error("a slower run must accumulate more leakage energy")
	}
}

func TestOverallUsesPaperShares(t *testing.T) {
	p := DefaultParams()
	base := mkStats(1000, 2000, 2000, 30_000, 180_000, 320_000, 10*1000)
	tech := mkStats(1020, 2000, 2000, 20_000, 120_000, 320_000, 6_300)
	tech.IntRF.BanksOnReads = 10 * 2 * 2000
	tech.IntRF.BanksOnSum = 10 * 1020
	sv := p.Compute(&base, &tech, 10, 14)
	want := 0.22*sv.IQDynamicPct + 0.11*sv.RFDynamicPct
	if math.Abs(sv.OverallDynamicPct-want) > 1e-9 {
		t.Errorf("overall = %f, want %f", sv.OverallDynamicPct, want)
	}
}

func TestZeroBaseGuard(t *testing.T) {
	if pct(0, 5) != 0 {
		t.Error("pct must guard against zero base")
	}
}
