package power

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestEnergyMonotonicInActivity: more of any activity can never reduce
// energy under any gating scheme — the foundational sanity property of
// the model.
func TestEnergyMonotonicInActivity(t *testing.T) {
	p := DefaultParams()
	f := func(cyc, insts, gated, nonEmpty, ungated uint16, extra uint8) bool {
		base := mkStats(int64(cyc)+1, int64(insts), int64(insts),
			int64(gated), int64(gated)+int64(nonEmpty), int64(gated)+int64(nonEmpty)+int64(ungated),
			(int64(cyc)+1)*5)
		more := base
		more.IQ.GatedWakeups += int64(extra)
		more.IQ.NonEmptyWakeups += int64(extra)
		more.IQ.UngatedWakeups += int64(extra)
		for _, g := range []GatingScheme{Ungated, NonEmpty, Gated} {
			if p.IQDynamic(&more, g) < p.IQDynamic(&base, g) {
				return false
			}
		}
		more2 := base
		more2.IQ.Issues += int64(extra)
		if p.IQDynamic(&more2, Gated) < p.IQDynamic(&base, Gated) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStaticMonotonicInBanks: leakage grows with banks-on time.
func TestStaticMonotonicInBanks(t *testing.T) {
	p := DefaultParams()
	f := func(cyc uint16, on1, on2 uint16) bool {
		var a, b sim.Stats
		a.Cycles, b.Cycles = int64(cyc)+1, int64(cyc)+1
		a.IQ.BanksOnSum = int64(on1)
		b.IQ.BanksOnSum = int64(on1) + int64(on2)
		return p.IQStatic(&b, 10, false) >= p.IQStatic(&a, 10, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSavingsBounded: savings against a baseline with strictly more
// activity are always within (-inf, 100]; and a technique that does
// strictly less of everything saves a positive amount.
func TestSavingsBounded(t *testing.T) {
	p := DefaultParams()
	base := mkStats(1000, 2000, 2000, 40_000, 90_000, 320_000, 10_000)
	tech := mkStats(1010, 2000, 2000, 20_000, 60_000, 320_000, 6_000)
	tech.IntRF.BanksOnReads = 10 * 2 * 2000
	tech.IntRF.BanksOnSum = 10 * 1010
	sv := p.Compute(&base, &tech, 10, 14)
	for name, v := range map[string]float64{
		"iqDyn": sv.IQDynamicPct, "iqStat": sv.IQStaticPct,
		"rfDyn": sv.RFDynamicPct, "rfStat": sv.RFStaticPct,
	} {
		if v <= 0 || v > 100 {
			t.Errorf("%s = %.2f, want within (0,100]", name, v)
		}
	}
}

// TestParamsDocumentedConsistency: the calibrated static overhead must
// reproduce the paper's internal identity saving ≈ 0.85 × banks-off at
// the default parameters, for both structures.
func TestParamsDocumentedConsistency(t *testing.T) {
	p := DefaultParams()
	check := func(banks int, fixed float64) {
		total := float64(banks)*1.0 + fixed
		if overhead := fixed / total; overhead < 0.13 || overhead > 0.17 {
			t.Errorf("%d banks: fixed-leak share %.3f, want ~0.15", banks, overhead)
		}
	}
	check(10, p.IQFixedLeak)
	check(14, p.RFFixedLeak)
}
